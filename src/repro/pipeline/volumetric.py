"""Batched volumetric APF — the 3-D throughput engine behind the pipeline.

:class:`BatchedVolumetricPatcher` runs the octree APF stages for a whole
batch of volumes and produces **bit-identical** :class:`VolumeSequence`s to
the per-volume :class:`~repro.patching.volumetric.VolumetricAdaptivePatcher`
(the readable reference implementation), including the random drop stream.
The speed comes from four places:

1. **Exact-replay gradient detail** — the reference's
   ``np.gradient`` / magnitude / quantile cascade allocates ~8 full-volume
   float64 temporaries per call and pays an O(N log N) sort for the
   threshold. The batched kernel replays the same ufunc arithmetic into
   reusable scratch buffers and derives the threshold decision from two
   order statistics obtained via ``np.partition`` (O(N)): the quantile's
   interpolated value always lies between two *adjacent* order statistics
   ``a ≤ b`` of the magnitude, so ``mag > thr`` equals ``mag² > a²`` when
   ``thr < b`` and ``mag² > b²`` otherwise — no full-volume ``sqrt`` and no
   sort, same mask bit-for-bit.
2. **Level-synchronous batched octree** via
   :func:`~repro.quadtree.octree.build_octree_batch`: one shared frontier
   and a single region-sums lookup per depth across all volumes.
3. **Vectorized cube gather**: leaves are gathered per size group with one
   fancy-index + reshape-mean per group instead of a Python loop per leaf
   (the multi-axis mean reduces each cube in the same element order as the
   reference's per-cube reduction, so values match bit-for-bit).
4. **Buffer reuse**: smoothing output, gradient planes, and the partition
   scratch persist across the volumes of a batch.

Dense per-volume work (Gaussian smoothing, gradients) deliberately stays
inside the batch loop: on bandwidth-bound hosts, streaming a (B, Z, Z, Z)
float64 stack through elementwise ops evicts cache to no benefit, while the
small-array tree stage genuinely amortizes across the shared frontier.
"""

from __future__ import annotations

from dataclasses import replace
from typing import List, Optional, Sequence

import numpy as np
from scipy import ndimage

from ..patching.volumetric import VolumeSequence, VolumetricAdaptivePatcher
from ..quadtree.octree import OctreeLeaves, octree_frontier_batch
from .batched import _Scratch

__all__ = ["BatchedVolumetricPatcher"]


def _gradient_axis_undivided(f: np.ndarray, axis: int,
                             out: np.ndarray) -> np.ndarray:
    """One axis of ``2 · np.gradient(f)`` (unit spacing), exactly.

    Interior: the undivided central difference ``f[i+1] - f[i-1]`` — exactly
    twice :func:`np.gradient`'s value, since division by two is exact in
    IEEE arithmetic. Edges: one-sided differences doubled (also exact). The
    caller works in these 2x units and rescales only the two scalar order
    statistics, saving a full-volume divide per axis.
    """
    a = np.moveaxis(f, axis, 0)
    o = np.moveaxis(out, axis, 0)
    np.subtract(a[2:], a[:-2], out=o[1:-1])
    np.subtract(a[1], a[0], out=o[0])
    o[0] *= 2.0
    np.subtract(a[-1], a[-2], out=o[-1])
    o[-1] *= 2.0
    return out


def _detail_mask_exact(v: np.ndarray, sigma: float, quantile: float,
                       sc: _Scratch) -> np.ndarray:
    """Detail mask bit-identical to ``VolumetricAdaptivePatcher.detail_map``.

    Replays blur → gradient → squared-magnitude with scratch buffers, then
    resolves the quantile threshold from two adjacent order statistics of
    the squared magnitude (see module docstring for why this is exact).
    Gradients are carried in undivided (2x) units: powers of two scale IEEE
    doubles exactly, so ``m2 = 4·(gz² + gy² + gx²)`` element-for-element and
    only the two scalar order statistics need rescaling. The returned
    boolean array lives in a scratch buffer — consume it before the next
    call.
    """
    smooth = sc.get("smooth", v.shape)
    ndimage.gaussian_filter(v, sigma, output=smooth)
    g = sc.get("grad", v.shape)
    t = sc.get("gsq", v.shape)
    m2 = sc.get("m2", v.shape)
    # m2 = (2gz)² + (2gy)² + (2gx)², accumulated in the reference's
    # evaluation order (left-to-right), so m2 == 4·reference bit-for-bit.
    _gradient_axis_undivided(smooth, 0, g)
    np.multiply(g, g, out=m2)
    _gradient_axis_undivided(smooth, 1, g)
    np.multiply(g, g, out=t)
    np.add(m2, t, out=m2)
    _gradient_axis_undivided(smooth, 2, g)
    np.multiply(g, g, out=t)
    np.add(m2, t, out=m2)

    n = m2.size
    virt = quantile * (n - 1)
    k = int(np.floor(virt))
    gamma = virt - np.floor(virt)
    kk = min(k + 1, n - 1)
    part = sc.get("part", (n,))
    np.copyto(part, m2.reshape(-1))
    part.partition([k, kk])
    a2, b2 = part[k], part[kk]
    # Adjacent order statistics of |∇|: sqrt(4x)/2 == sqrt(x) exactly.
    a, b = 0.5 * np.sqrt(a2), 0.5 * np.sqrt(b2)
    # np.quantile's linear interpolation (numpy's _lerp), on scalars.
    thr = a + gamma * (b - a)
    if gamma >= 0.5:
        thr = b - (b - a) * (1.0 - gamma)
    # No magnitude value lies strictly between a and b, so the elementwise
    # comparison against thr ∈ [a, b] collapses to one of two exact cuts
    # (expressed directly in the 4x units of m2).
    cut = b2 if thr >= b else a2
    return m2 > cut


class BatchedVolumetricPatcher(VolumetricAdaptivePatcher):
    """Octree APF over whole batches of same-shape volumes.

    A drop-in superset of :class:`VolumetricAdaptivePatcher`: single-volume
    calls behave identically, and :meth:`extract_batch` processes ``B``
    volumes at once. For a fresh patcher, ``extract_batch(volumes)`` returns
    byte-identical sequences to a fresh reference patcher looping over the
    same volumes::

        ref = VolumetricAdaptivePatcher(cfg)
        [ref.extract(v) for v in volumes]

    — including the random drop stream, which both consume from one shared
    RNG in volume order (constructing a new reference patcher per volume
    would reseed the stream each time and diverge from volume 1 onward).

    Examples
    --------
    >>> patcher = BatchedVolumetricPatcher(VolumeAPFConfig(patch_size=4))
    >>> seqs = patcher.extract_batch(volumes)      # list of VolumeSequence
    """

    def detail_map_batch(self, volumes: Sequence[np.ndarray]) -> np.ndarray:
        """Detail masks for a batch: (B, Z, Z, Z) float64 stack.

        Each slice is bit-identical to ``self.detail_map(volumes[b])``.
        """
        if len(volumes) == 0:
            return np.empty((0, 0, 0, 0), dtype=np.float64)
        cfg = self.config
        scratch = _Scratch()
        out = None
        for i, volume in enumerate(volumes):
            v = np.asarray(volume, dtype=np.float64)
            if v.ndim != 3:
                raise ValueError(f"expected a 3-D volume, got shape {v.shape}")
            if out is None:
                out = np.empty((len(volumes),) + v.shape, dtype=np.float64)
            elif v.shape != out.shape[1:]:
                raise ValueError("all volumes in a batch must share one shape")
            out[i] = _detail_mask_exact(v, cfg.blur_sigma,
                                        cfg.detail_quantile, scratch)
        return out

    def build_tree_batch(
            self, volumes: Sequence[np.ndarray]) -> List[OctreeLeaves]:
        """One level-synchronous octree build over all volumes.

        The detail masks are written straight into the stacked summed-volume
        table (in-place cumulative sums) — no intermediate float64 detail
        stack, no per-volume integral temporaries.
        """
        if len(volumes) == 0:
            return []
        cfg = self.config
        scratch = _Scratch()
        ii = None
        n = 0
        for i, volume in enumerate(volumes):
            v = np.asarray(volume, dtype=np.float64)
            if v.ndim != 3:
                raise ValueError(f"expected a 3-D volume, got shape {v.shape}")
            if ii is None:
                n = v.shape[0]
                if v.shape != (n, n, n):
                    raise ValueError(f"detail map must be a cube, got {v.shape}")
                if n & (n - 1):
                    raise ValueError(
                        f"volume size must be a power of two, got {n}")
                ii = np.zeros((len(volumes), n + 1, n + 1, n + 1),
                              dtype=np.float64)
            elif v.shape != (n, n, n):
                raise ValueError("all volumes in a batch must share one shape")
            inner = ii[i, 1:, 1:, 1:]
            inner[...] = _detail_mask_exact(v, cfg.blur_sigma,
                                            cfg.detail_quantile, scratch)
            for ax in range(3):
                np.cumsum(inner, axis=ax, out=inner)
        depth = (cfg.max_depth if cfg.max_depth is not None
                 else int(np.log2(n // cfg.patch_size)))
        return octree_frontier_batch(ii, cfg.split_value, depth,
                                     min_size=cfg.patch_size)

    def _gather(self, v: np.ndarray, leaves: OctreeLeaves,
                pm: int) -> np.ndarray:
        """Vectorized per-size-group cube gather + area downscale.

        Leaves are cube-aligned, so each size group is one fancy-index into
        an ``(Z/s)³`` block view — the gathered copy is laid out exactly like
        the reference's per-leaf slices, and the multi-axis mean reduces each
        cube in the same element order, keeping values bit-identical.
        """
        n = len(leaves)
        z = v.shape[0]
        patches = np.zeros((n, pm, pm, pm), dtype=np.float64)
        for s in np.unique(leaves.sizes):
            s = int(s)
            idx = np.flatnonzero(leaves.sizes == s)
            g = z // s
            blocks = v.reshape(g, s, g, s, g, s).transpose(0, 2, 4, 1, 3, 5)
            stack = blocks[leaves.zs[idx] // s, leaves.ys[idx] // s,
                           leaves.xs[idx] // s]         # (k, s, s, s) copy
            if s > pm:
                f = s // pm
                stack = stack.reshape(len(idx), pm, f, pm, f, pm, f
                                      ).mean(axis=(2, 4, 6))
            patches[idx] = stack
        return patches

    def extract_batch(self, volumes: Sequence[np.ndarray],
                      trees: Optional[Sequence[OctreeLeaves]] = None,
                      natural: bool = False) -> List[VolumeSequence]:
        """Full pipeline for a batch of same-shape volumes.

        Parameters
        ----------
        volumes:
            Sequence of (Z, Z, Z) arrays, all one shape.
        trees:
            Optional precomputed partitions (one per volume) to reuse.
        natural:
            Skip the pad/drop stage (like :meth:`extract_natural`).

        Returns
        -------
        One :class:`VolumeSequence` per volume, in input order.
        """
        if len(volumes) == 0:
            return []
        if trees is None:
            trees = self.build_tree_batch(volumes)
        cfg = self.config
        if natural and cfg.target_length is not None:
            cfg = replace(cfg, target_length=None)
        pm = cfg.patch_size
        out = []
        # fit_length consumes the shared RNG in volume order — bit-identical
        # to the reference per-volume loop by construction.
        for volume, tree in zip(volumes, trees):
            v = np.asarray(volume, dtype=np.float64)
            leaves = tree.sorted_by_morton()
            patches = self._gather(v, leaves, pm)
            seq = VolumeSequence(patches, leaves.zs.copy(), leaves.ys.copy(),
                                 leaves.xs.copy(), leaves.sizes.copy(),
                                 v.shape[0], pm,
                                 details=None if leaves.details is None
                                 else leaves.details.copy())
            if cfg.target_length is not None:
                seq = self.fit_length(seq, cfg.target_length)
            out.append(seq)
        return out

    def extract_natural_batch(
            self, volumes: Sequence[np.ndarray]) -> List[VolumeSequence]:
        """Batch variant of :meth:`extract_natural` (no pad/drop stage)."""
        return self.extract_batch(volumes, natural=True)
