"""Table IV regeneration: BTCV-like 13-organ segmentation, five models.

Paper (from scratch): APF-UNETR-2 ≥ UNETR-4 in dice at far less time;
Swin-UNETR's lead exists only with external pre-training (not replicated).
"""


def test_table4_btcv_multiorgan(once):
    from repro.experiments import ExperimentScale, run_table4

    scale = ExperimentScale(resolution=64, n_samples=10, epochs=10, dim=32,
                            depth=2)
    r = once(run_table4, scale)
    print("\n" + r.rows())
    # Core claim: APF lets UNETR use patch 2 and match/beat uniform patch 4.
    assert r.row("APF-UNETR").dice >= r.row("UNETR").dice * 0.95
    # From scratch (no pre-training), Swin-UNETR loses its paper advantage.
    assert r.row("APF-UNETR").dice >= r.row("Swin-UNETR").dice
    for row in r.rows_:
        assert row.seconds_total > 0
