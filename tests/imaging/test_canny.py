"""Tests for Canny edge detection: synthetic shapes with known edges."""

import numpy as np
import pytest

from repro.imaging import canny_edges
from repro.imaging.canny import hysteresis, nonmax_suppression


def square_image(size=64, lo=0.1, hi=0.9):
    img = np.full((size, size), lo)
    img[16:48, 16:48] = hi
    return img


class TestCanny:
    def test_flat_image_no_edges(self):
        assert canny_edges(np.full((32, 32), 0.5)).sum() == 0

    def test_square_produces_boundary_edges(self):
        edges = canny_edges(square_image())
        assert edges.sum() > 0
        # Edges should hug the square border: nothing deep inside or far outside.
        assert edges[28:36, 28:36].sum() == 0  # interior
        assert edges[:8, :8].sum() == 0        # far corner

    def test_edge_count_scales_with_perimeter_not_area(self):
        e64 = canny_edges(square_image(64)).sum()
        img128 = np.full((128, 128), 0.1)
        img128[32:96, 32:96] = 0.9
        e128 = canny_edges(img128).sum()
        ratio = e128 / e64
        assert 1.5 < ratio < 3.0  # perimeter doubles; area would quadruple

    def test_accepts_0_255_range(self):
        e01 = canny_edges(square_image())
        e255 = canny_edges(square_image() * 255.0)
        np.testing.assert_array_equal(e01, e255)

    def test_threshold_ordering_enforced(self):
        with pytest.raises(ValueError):
            canny_edges(square_image(), low=200, high=100)

    def test_rejects_color_input(self):
        with pytest.raises(ValueError):
            canny_edges(np.zeros((8, 8, 3)))

    def test_higher_thresholds_fewer_edges(self):
        rng = np.random.default_rng(0)
        img = rng.random((64, 64))
        loose = canny_edges(img, low=20, high=40).sum()
        strict = canny_edges(img, low=150, high=250).sum()
        assert strict <= loose

    def test_returns_boolean(self):
        assert canny_edges(square_image()).dtype == bool


class TestNms:
    def test_thins_thick_response(self):
        # A ramp produces a wide Sobel response; NMS should keep one ridge.
        img = np.zeros((16, 16))
        img[:, 8:] = 1.0
        from repro.imaging.filters import sobel_gradients
        _, _, mag, ang = sobel_gradients(img)
        nms = nonmax_suppression(mag, ang)
        assert (nms > 0).sum() <= (mag > 0).sum()
        assert (nms > 0).any()


class TestHysteresis:
    def test_weak_connected_to_strong_survives(self):
        nms = np.zeros((8, 8))
        nms[4, 2] = 250.0  # strong
        nms[4, 3] = 150.0  # weak, adjacent → kept
        nms[1, 6] = 150.0  # weak, isolated → dropped
        out = hysteresis(nms, low=100, high=200)
        assert out[4, 2] and out[4, 3]
        assert not out[1, 6]

    def test_all_below_low_empty(self):
        out = hysteresis(np.full((8, 8), 50.0), low=100, high=200)
        assert out.sum() == 0

    def test_empty_input(self):
        assert hysteresis(np.zeros((4, 4)), 100, 200).sum() == 0
