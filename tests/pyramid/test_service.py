"""Tests for PyramidService: cache/join/submit ladder, priority ordering,
speculative prefetch, and stale-viewport cancellation hygiene."""

import numpy as np
import pytest

from repro.models.vit import ViTSegmenter
from repro.pipeline import PatchPipeline
from repro.pyramid import PyramidService, PyramidTile, TileCache, TilePyramid
from repro.quadtree.hilbert import hilbert_encode
from repro.serve import InferenceEngine, Predictor, ServiceModel, SimClock
from repro.stream.source import ArraySource


def _pyramid(res=256, tile=32, seed=0):
    rng = np.random.default_rng(seed)
    return TilePyramid(ArraySource(rng.random((res, res, 3))), tile=tile)


def _engine(clock, **kw):
    model = ViTSegmenter(patch_size=4, channels=1, dim=16, depth=1, heads=2,
                         max_len=256, rng=np.random.default_rng(1))
    pipe = PatchPipeline(patch_size=4, split_value=8.0, channels=1,
                         cache_items=64)
    pred = Predictor(model, pipe, max_batch=kw.pop("max_batch", 4), bucket=16)
    args = dict(clock=clock.now, service_model=ServiceModel(),
                result_cache_items=32)
    args.update(kw)
    return InferenceEngine(pred, **args)


def _service(**kw):
    clock = SimClock()
    pyramid = kw.pop("pyramid", None) or _pyramid()
    engine = _engine(clock, **{k: kw.pop(k) for k in ("max_queue", "max_batch")
                               if k in kw})
    svc = PyramidService(pyramid, engine, clock=clock.now, **kw)
    return svc, engine, clock


class TestTileCache:
    def test_lru_and_stats(self):
        cache = TileCache(items=2)
        a, b, c = (np.full((2, 2), v) for v in (1.0, 2.0, 3.0))
        cache.put("a", a)
        cache.put("b", b)
        assert cache.get("a") is not None      # refresh a
        cache.put("c", c)                      # evicts b
        assert cache.get("b") is None
        assert cache.get("c") is not None
        stats = cache.stats()
        assert stats["evictions"] == 1
        assert stats["hits"] == 2 and stats["misses"] == 1
        assert 0 < stats["hit_rate"] < 1

    def test_values_frozen_and_copied(self):
        cache = TileCache()
        src = np.zeros((2, 2))
        cache.put("k", src)
        src[0, 0] = 99.0                       # caller mutation isolated
        got = cache.get("k")
        assert got[0, 0] == 0.0
        with pytest.raises(ValueError):
            got[0, 0] = 1.0

    def test_rejects_zero_capacity(self):
        with pytest.raises(ValueError):
            TileCache(items=0)


class TestResolveLadder:
    def test_submit_then_cache_hit(self):
        svc, engine, _ = _service(prefetch_tiles=0)
        first = svc.request_viewport("a", 0, (0, 0), (64, 64))
        assert first.submitted == len(first.tasks) == 4
        engine.drain()
        again = svc.request_viewport("a", 0, (0, 0), (64, 64))
        assert again.cache_hits == 4 and again.submitted == 0
        assert all(t.cached and t.done_t == t.submit_t for t in again.tasks)
        assert svc.outstanding == 0

    def test_cross_session_join(self):
        svc, engine, _ = _service(prefetch_tiles=0)
        a = svc.request_viewport("a", 0, (0, 0), (64, 64))
        b = svc.request_viewport("b", 0, (0, 0), (64, 64))
        assert b.joined == 4 and b.submitted == 0
        assert {id(t) for t in a.tasks} == {id(t) for t in b.tasks}
        assert all(t.sessions == {"a", "b"} for t in b.tasks)
        # one execution serves both: engine saw exactly 4 submissions
        assert engine.stats()["engine"]["submitted"] == 4
        engine.drain()
        assert svc.outstanding == 0

    def test_results_bit_identical_to_direct_prediction(self):
        svc, engine, _ = _service(prefetch_tiles=0, max_batch=1)
        report = svc.request_viewport("a", 1, (0, 0), (64, 64))
        engine.drain()
        for task in report.tasks:
            ref = engine.predictor.predict_image(
                svc.pyramid.tile_pixels(task.tile))
            np.testing.assert_array_equal(svc.tile_result(task), ref)

    def test_visible_rejection_surfaces(self):
        svc, engine, _ = _service(prefetch_tiles=0, max_queue=2)
        report = svc.request_viewport("a", 0, (0, 0), (128, 128))
        assert report.submitted == 2
        assert report.rejected == len(report.tasks) - 2
        rejected = [t for t in report.tasks if t.rejected]
        assert all(t.future is None for t in rejected)
        engine.drain()
        # re-request: completed tiles hit the cache, the rest resubmit
        again = svc.request_viewport("a", 0, (0, 0), (128, 128))
        assert again.cache_hits == 2 and again.submitted == 2
        engine.drain()

    def test_tile_result_without_result_raises(self):
        svc, _, _ = _service(prefetch_tiles=0, max_queue=1)
        report = svc.request_viewport("a", 0, (0, 0), (64, 64))
        dropped = [t for t in report.tasks if t.rejected]
        with pytest.raises(LookupError):
            svc.tile_result(dropped[0])


class TestOrdering:
    def test_priority_is_center_out(self):
        svc, _, _ = _service(prefetch_tiles=0)
        report = svc.request_viewport("a", 0, (0, 0), (96, 96))
        first = report.tasks[0].tile
        assert (first.ty, first.tx) == (1, 1)   # center tile of a 3x3 cover
        # window center (48, 48) = tile coordinate (1, 1) in tile units
        dist = [(t.tile.ty - 1) ** 2 + (t.tile.tx - 1) ** 2
                for t in report.tasks]
        assert dist == sorted(dist)

    def test_fifo_is_row_major(self):
        svc, _, _ = _service(policy="fifo", prefetch_tiles=0)
        report = svc.request_viewport("a", 0, (0, 0), (96, 96))
        order = [(t.tile.ty, t.tile.tx) for t in report.tasks]
        assert order == sorted(order)

    def test_unknown_policy_rejected(self):
        with pytest.raises(ValueError):
            _service(policy="lifo")
        with pytest.raises(ValueError):
            _service(prefetch_order="zorder")


class TestPrefetch:
    def test_pan_direction_extrapolation(self):
        svc, engine, _ = _service(prefetch_tiles=8)
        svc.request_viewport("a", 0, (0, 0), (64, 64))
        engine.drain()
        report = svc.request_viewport("a", 0, (0, 32), (64, 64))
        # motion is +x: speculation covers the next shift (0, 64)..(64, 128)
        assert report.prefetched
        assert {t.tile for t in report.prefetched} == {
            PyramidTile(0, 0, 3), PyramidTile(0, 1, 3)}
        assert all(t.lane == "bulk" and t.prefetch
                   for t in report.prefetched)
        engine.drain()
        assert svc.outstanding == 0

    def test_zoom_adjacent_without_motion(self):
        svc, engine, _ = _service(prefetch_tiles=8)
        report = svc.request_viewport("a", 0, (0, 0), (64, 64))
        # no pan history: speculate the parent level (zoom-out is one
        # click away) and the center tile's children (none at level 0)
        assert {t.tile.level for t in report.prefetched} == {1}
        engine.drain()

    def test_prefetch_order_follows_curve(self):
        pyramid = _pyramid(res=512)
        svc, engine, _ = _service(pyramid=pyramid, prefetch_tiles=16)
        svc.request_viewport("a", 0, (128, 128), (64, 64))
        engine.drain()
        report = svc.request_viewport("a", 0, (160, 160), (64, 64))
        tiles = [t.tile for t in report.prefetched]
        assert len(tiles) >= 2
        codes = hilbert_encode(np.array([t.ty for t in tiles]),
                               np.array([t.tx for t in tiles]))
        assert list(codes) == sorted(codes)
        engine.drain()

    def test_prefetch_rejection_is_silent(self):
        svc, engine, _ = _service(prefetch_tiles=8, max_queue=4)
        report = svc.request_viewport("a", 0, (0, 0), (64, 64))
        assert report.rejected == 0             # visible tiles all admitted
        assert report.prefetch_rejected > 0     # speculation shed silently
        engine.drain()

    def test_prefetch_never_duplicates_visible_or_cached(self):
        svc, engine, _ = _service(prefetch_tiles=16)
        first = svc.request_viewport("a", 1, (0, 0), (64, 64))
        engine.drain()
        report = svc.request_viewport("a", 1, (0, 0), (64, 64))
        visible = {t.tile for t in report.tasks}
        speculative = {t.tile for t in report.prefetched}
        assert not (visible & speculative)
        cached = {t.tile for t in first.tasks}
        assert not (cached & speculative)
        engine.drain()


class TestStaleCancellation:
    def test_pan_away_cancels_queued_tiles(self):
        svc, engine, _ = _service(prefetch_tiles=0)
        first = svc.request_viewport("a", 0, (0, 0), (64, 64))
        report = svc.request_viewport("a", 0, (160, 160), (64, 64))
        assert report.cancelled_stale == len(first.tasks)
        assert all(t.cancelled and t.future.cancelled()
                   for t in first.tasks)
        engine.drain()
        assert svc.outstanding == 0
        assert engine.stats()["engine"]["cancelled"] == len(first.tasks)

    def test_overlap_is_kept(self):
        svc, engine, _ = _service(prefetch_tiles=0)
        first = svc.request_viewport("a", 0, (0, 0), (64, 64))
        report = svc.request_viewport("a", 0, (32, 32), (64, 64))
        kept = {t.tile for t in first.tasks} & {t.tile for t in report.tasks}
        assert kept                              # overlapping pan
        assert report.cancelled_stale == len(first.tasks) - len(kept)
        assert report.joined == len(kept)
        engine.drain()
        assert svc.outstanding == 0

    def test_shared_tiles_survive_other_sessions(self):
        svc, engine, _ = _service(prefetch_tiles=0)
        a = svc.request_viewport("a", 0, (0, 0), (64, 64))
        svc.request_viewport("b", 0, (0, 0), (64, 64))
        moved = svc.request_viewport("a", 0, (160, 160), (64, 64))
        # session b still wants those tiles: nothing may be cancelled
        assert moved.cancelled_stale == 0
        assert all(not t.cancelled for t in a.tasks)
        engine.drain()
        assert all(t.future.done() and not t.future.cancelled()
                   for t in a.tasks)

    def test_no_poisoned_cache_after_cancel(self):
        # A cancelled tile, when requested again, re-executes and matches
        # the direct prediction bit for bit (reservations torn down).
        svc, engine, _ = _service(prefetch_tiles=0, max_batch=1)
        first = svc.request_viewport("a", 0, (0, 0), (32, 32))
        svc.request_viewport("a", 0, (224, 224), (32, 32))
        assert first.tasks[0].cancelled
        again = svc.request_viewport("a", 0, (0, 0), (32, 32))
        assert again.submitted == 1
        engine.drain()
        ref = engine.predictor.predict_image(
            svc.pyramid.tile_pixels(first.tasks[0].tile))
        np.testing.assert_array_equal(svc.tile_result(again.tasks[0]), ref)
        assert svc.outstanding == 0

    def test_fifo_never_cancels(self):
        svc, engine, _ = _service(policy="fifo", prefetch_tiles=0)
        first = svc.request_viewport("a", 0, (0, 0), (64, 64))
        report = svc.request_viewport("a", 0, (160, 160), (64, 64))
        assert report.cancelled_stale == 0
        engine.drain()
        assert all(t.future.done() and not t.future.cancelled()
                   for t in first.tasks)

    def test_dispatched_work_is_not_cancelled(self):
        svc, engine, clock = _service(prefetch_tiles=0)
        first = svc.request_viewport("a", 0, (0, 0), (32, 32))
        engine.drain()                           # already executed
        report = svc.request_viewport("a", 0, (224, 224), (32, 32))
        assert report.cancelled_stale == 0
        assert not first.tasks[0].cancelled

    def test_stats_shape(self):
        svc, engine, _ = _service()
        svc.request_viewport("a", 0, (0, 0), (64, 64))
        engine.drain()
        stats = svc.stats()
        assert stats["outstanding"] == 0
        assert stats["policy"] == "priority"
        assert stats["tile_cache"]["capacity"] == 512
        assert stats["service"]["viewports"] == 1
