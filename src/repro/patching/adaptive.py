"""The Adaptive Patch Framework (APF) — the paper's core contribution.

Pipeline (paper Fig. 1 / Algorithm 1 lines 3-5):

1. Gaussian blur the image (kernel per resolution, §III-A).
2. Canny edge detection with thresholds ``(t_l, t_h) = (100, 200)``.
3. Quadtree partition of the edge map: split while edge mass > ``v`` and
   depth < ``H`` (Eq. 6).
4. Order leaves along the Morton z-curve.
5. Project every leaf patch down to the common minimum size ``Pm`` (area
   downscale) — step 4' in Fig. 1.
6. Randomly drop or zero-pad to the fixed sequence length ``L``.

The result is a :class:`~repro.patching.sequence.PatchSequence` identical in
interface to uniform patching, so any transformer model consumes it
unchanged.
"""

from __future__ import annotations

from dataclasses import dataclass, replace
from typing import Optional

import numpy as np

from ..imaging import canny_edges, downscale_pow2, gaussian_blur, to_grayscale
from ..imaging.filters import KSIZE_FOR_RESOLUTION
from ..quadtree import QuadtreeLeaves, balance_2to1, build_quadtree
from .sequence import PatchSequence

__all__ = ["APFConfig", "AdaptivePatcher"]


def _variance_detail(gray: np.ndarray, window: int = 4) -> np.ndarray:
    """Ablation criterion: local variance in non-overlapping windows,
    spread back to pixel resolution."""
    z = gray.shape[0]
    w = window
    if z % w:
        raise ValueError(f"window {w} must divide image size {z}")
    blocks = gray.reshape(z // w, w, z // w, w)
    var = blocks.var(axis=(1, 3))
    return np.repeat(np.repeat(var, w, axis=0), w, axis=1)


@dataclass
class APFConfig:
    """Hyper-parameters of the adaptive patcher.

    Defaults follow the paper: thresholds (100, 200), kernel size chosen per
    resolution from §III-A's table, split driven by edge-pixel count.
    """

    #: Model patch size Pm every leaf is projected to.
    patch_size: int = 4
    #: Quadtree split value v (edge-pixel mass threshold).
    split_value: float = 8.0
    #: Maximum quadtree depth H; None derives it from patch_size (leaves stop
    #: at Pm so no leaf needs upscaling).
    max_depth: Optional[int] = None
    #: Fixed sequence length L. None keeps the natural length (no pad/drop).
    target_length: Optional[int] = None
    #: Gaussian kernel size; 0 picks from the paper's per-resolution table.
    blur_ksize: int = 0
    #: Canny hysteresis thresholds.
    canny_low: float = 100.0
    canny_high: float = 200.0
    #: Detail criterion: "canny" (paper) or "variance" (ablation).
    criterion: str = "canny"
    #: Token ordering: "morton" (paper), "hilbert" or "rowmajor" (ablations).
    order: str = "morton"
    #: Over-length policy: "random" (paper) drops uniformly; "coarsest-first"
    #: drops the largest (least detailed) leaves first — an extension that
    #: preserves the fine structure the quadtree refined for.
    drop_strategy: str = "random"
    #: Enforce the AMR 2:1 balance constraint (optional extension, §II-A).
    balance: bool = False
    #: RNG seed for the random drop/pad step.
    seed: int = 0

    def __post_init__(self) -> None:
        p = self.patch_size
        if p < 1 or (p & (p - 1)):
            raise ValueError(f"patch_size must be a positive power of two, got {p}")
        if self.criterion not in ("canny", "variance"):
            raise ValueError(f"unknown criterion {self.criterion!r}")
        if self.order not in ("morton", "hilbert", "rowmajor"):
            raise ValueError(f"unknown order {self.order!r}")
        if self.drop_strategy not in ("random", "coarsest-first"):
            raise ValueError(f"unknown drop strategy {self.drop_strategy!r}")


class AdaptivePatcher:
    """Callable implementing APF preprocessing for one image at a time.

    Examples
    --------
    >>> patcher = AdaptivePatcher(APFConfig(patch_size=4, split_value=8.0))
    >>> seq = patcher(image)              # image: (Z, Z) or (Z, Z, C) in [0,1]
    >>> tokens = seq.tokens()             # (L, C*Pm*Pm) for the embedding layer
    """

    def __init__(self, config: Optional[APFConfig] = None, **overrides):
        if config is None:
            config = APFConfig(**overrides)
        elif overrides:
            raise ValueError("pass either a config object or keyword overrides")
        self.config = config
        self._rng = np.random.default_rng(config.seed)

    # -- pipeline stages (exposed individually for tests & benches) -------
    def detail_map(self, image: np.ndarray) -> np.ndarray:
        """Stages 1-2: blur + edge detection → detail density map."""
        gray = to_grayscale(np.asarray(image, dtype=np.float64))
        z = gray.shape[0]
        cfg = self.config
        k = cfg.blur_ksize or KSIZE_FOR_RESOLUTION.get(z, 3)
        blurred = gaussian_blur(gray, k)
        if cfg.criterion == "canny":
            return canny_edges(blurred, cfg.canny_low, cfg.canny_high).astype(np.float64)
        return _variance_detail(blurred, window=max(cfg.patch_size, 2)) * 16.0

    def build_tree(self, image: np.ndarray) -> QuadtreeLeaves:
        """Stage 3: quadtree over the detail map (Eq. 6)."""
        detail = self.detail_map(image)
        z = detail.shape[0]
        cfg = self.config
        if cfg.max_depth is None:
            depth = int(np.log2(z // cfg.patch_size))
        else:
            depth = cfg.max_depth
        leaves = build_quadtree(detail, cfg.split_value, depth,
                                min_size=cfg.patch_size)
        if cfg.balance:
            leaves = balance_2to1(leaves)
        return leaves

    def __call__(self, image: np.ndarray) -> PatchSequence:
        return self.extract(image)

    def extract(self, image: np.ndarray,
                leaves: Optional[QuadtreeLeaves] = None,
                config: Optional[APFConfig] = None) -> PatchSequence:
        """Full pipeline: image → model-ready :class:`PatchSequence`.

        ``leaves`` may be supplied to reuse a tree (e.g. to patchify the
        label mask with the same partition as the input image).
        ``config`` overrides ``self.config`` for this call only — the shared
        config object is never mutated, so concurrent callers are safe.
        """
        img = np.asarray(image, dtype=np.float64)
        if img.ndim == 2:
            img = img[:, :, None]
        h, w, c = img.shape
        if h != w:
            raise ValueError(f"expected square image, got {img.shape}")
        if leaves is None:
            leaves = self.build_tree(image)
        cfg = config if config is not None else self.config

        if cfg.order == "morton":
            leaves = leaves.sorted_by_morton()
        elif cfg.order == "hilbert":
            leaves = leaves.sorted_by_hilbert()

        pm = cfg.patch_size
        n = len(leaves)
        patches = np.zeros((n, c, pm, pm), dtype=np.float64)
        # Group leaves by size so each group downsamples in one vector op.
        for s in np.unique(leaves.sizes):
            idx = np.flatnonzero(leaves.sizes == s)
            s = int(s)
            # Gather all leaves of side s into one (k, s, s, c) stack.
            offs_y = leaves.ys[idx][:, None, None]
            offs_x = leaves.xs[idx][:, None, None]
            yy = offs_y + np.arange(s)[None, :, None]
            xx = offs_x + np.arange(s)[None, None, :]
            stack = img[yy, xx]                          # (k, s, s, c)
            if s > pm:
                f = s // pm
                stack = stack.reshape(len(idx), pm, f, pm, f, c).mean(axis=(2, 4))
            elif s < pm:  # cannot happen: builder enforces min_size=pm
                raise AssertionError("leaf smaller than model patch size")
            patches[idx] = stack.transpose(0, 3, 1, 2)

        seq = PatchSequence(
            patches=patches,
            ys=leaves.ys.copy(), xs=leaves.xs.copy(), sizes=leaves.sizes.copy(),
            valid=np.ones(n, dtype=bool),
            image_size=h, patch_size=pm, n_real=n,
            details=None if leaves.details is None else leaves.details.copy(),
        )
        if cfg.target_length is not None:
            seq = self.fit_length(seq, cfg.target_length)
        return seq

    def extract_natural(self, image: np.ndarray) -> PatchSequence:
        """Full pipeline *without* the pad/drop step (stage 6).

        Used at inference: a single image needs no batching, so the natural
        sequence avoids the coverage holes random dropping would leave in the
        reconstructed mask.
        """
        cfg = self.config
        if cfg.target_length is None:
            return self.extract(image)
        # Per-call config copy: mutating the shared config in place would race
        # with concurrent extracts (the pipeline worker pool shares a patcher).
        return self.extract(image, config=replace(cfg, target_length=None))

    def fit_length(self, seq: PatchSequence, length: int,
                   rng: Optional[np.random.Generator] = None) -> PatchSequence:
        """Stage 6: randomly drop (too long) or zero-pad (too short) to ``length``.

        ``rng`` overrides the patcher's own stream — the pipeline uses
        per-image generators so results are independent of worker count.
        """
        rng = rng if rng is not None else self._rng
        n = len(seq)
        if n == length:
            return seq
        if n > length:
            if self.config.drop_strategy == "coarsest-first":
                # Drop the largest (lowest-detail) leaves first; ties broken
                # randomly so repeated epochs still vary.
                jitter = rng.random(n)
                priority = np.lexsort((jitter, -seq.sizes))  # big sizes first
                keep = np.sort(priority[n - length:])
            else:
                keep = np.sort(rng.choice(n, size=length, replace=False))
            return PatchSequence(
                patches=seq.patches[keep], ys=seq.ys[keep], xs=seq.xs[keep],
                sizes=seq.sizes[keep], valid=seq.valid[keep],
                image_size=seq.image_size, patch_size=seq.patch_size,
                n_real=seq.n_real, n_dropped=n - length,
                details=None if seq.details is None else seq.details[keep],
            )
        pad = length - n
        c, pm = seq.channels, seq.patch_size
        return PatchSequence(
            patches=np.concatenate([seq.patches, np.zeros((pad, c, pm, pm))]),
            ys=np.concatenate([seq.ys, np.zeros(pad, dtype=np.int64)]),
            xs=np.concatenate([seq.xs, np.zeros(pad, dtype=np.int64)]),
            sizes=np.concatenate([seq.sizes, np.zeros(pad, dtype=np.int64)]),
            valid=np.concatenate([seq.valid, np.zeros(pad, dtype=bool)]),
            image_size=seq.image_size, patch_size=seq.patch_size,
            n_real=seq.n_real, n_dropped=seq.n_dropped,
            details=None if seq.details is None
            else np.concatenate([seq.details, np.zeros(pad)]),
        )

    def patchify_labels(self, mask: np.ndarray, seq: PatchSequence) -> np.ndarray:
        """Project a full-resolution label mask onto the token layout of ``seq``.

        Returns (L, 1, Pm, Pm) soft targets: each leaf's mask region is
        area-downscaled to Pm, so supervision is aligned with the inputs
        (large homogeneous leaves yield fractional coverage values).
        Padded slots are zeros.
        """
        m = np.asarray(mask, dtype=np.float64)
        if m.ndim == 3:
            m = m[:, :, 0]
        pm = seq.patch_size
        out = np.zeros((len(seq), 1, pm, pm), dtype=np.float64)
        for i in np.flatnonzero(seq.valid):
            s = int(seq.sizes[i])
            y, x = int(seq.ys[i]), int(seq.xs[i])
            region = m[y:y + s, x:x + s]
            if s > pm:
                region = downscale_pow2(region, s // pm)
            out[i, 0] = region
        return out
