"""Tests for the serving metrics registry (counters + streaming histograms)."""

import threading

import numpy as np
import pytest

from repro.serve import Counter, Histogram, MetricsRegistry


class TestCounter:
    def test_inc_and_value(self):
        c = Counter("x")
        c.inc()
        c.inc(4)
        assert c.value == 5

    def test_negative_rejected(self):
        with pytest.raises(ValueError):
            Counter("x").inc(-1)


class TestHistogram:
    def test_quantiles_track_numpy_percentile(self):
        rng = np.random.default_rng(0)
        samples = rng.lognormal(mean=-3.0, sigma=1.0, size=5000)
        h = Histogram("lat")
        for s in samples:
            h.observe(float(s))
        for p in (50, 95, 99):
            exact = np.percentile(samples, p)
            approx = h.percentile(p)
            # log-bucketed: relative error bounded by the growth factor
            assert abs(approx - exact) / exact < 0.15, (p, approx, exact)

    def test_extremes_are_exact(self):
        h = Histogram("lat")
        for x in (0.5, 0.001, 2.0, 0.25):
            h.observe(x)
        assert h.min == 0.001
        assert h.max == 2.0
        assert h.count == 4
        assert h.mean == pytest.approx((0.5 + 0.001 + 2.0 + 0.25) / 4)
        # quantiles clamp into [min, max]
        assert h.percentile(0) >= h.min
        assert h.percentile(100) <= h.max

    def test_zero_and_tiny_observations(self):
        h = Histogram("lat")
        h.observe(0.0)
        h.observe(1e-12)       # below lo -> first bucket
        assert h.count == 2
        assert h.percentile(99) <= 1e-6 + 1e-12

    def test_empty_and_validation(self):
        h = Histogram("lat")
        assert h.percentile(99) == 0.0
        assert h.summary()["count"] == 0
        with pytest.raises(ValueError):
            h.observe(-1.0)
        with pytest.raises(ValueError):
            h.percentile(101)
        with pytest.raises(ValueError):
            Histogram("bad", lo=1.0, hi=0.5)
        with pytest.raises(ValueError):
            Histogram("bad", growth=1.0)

    def test_summary_keys(self):
        h = Histogram("lat")
        h.observe(0.1)
        assert set(h.summary()) == {"count", "mean", "min", "max",
                                    "p50", "p95", "p99"}

    def test_overflow_clamps_to_last_bucket(self):
        h = Histogram("lat", hi=1.0)
        h.observe(50.0)
        assert h.max == 50.0
        assert h.percentile(99) == 50.0   # clamped to tracked max


class TestRegistry:
    def test_idempotent_names_and_snapshot(self):
        reg = MetricsRegistry()
        assert reg.counter("a") is reg.counter("a")
        assert reg.histogram("h") is reg.histogram("h")
        reg.inc("a", 2)
        reg.observe("h", 0.5)
        snap = reg.snapshot()
        assert snap["a"] == 2
        assert snap["h"]["count"] == 1
        assert list(reg.names()) == ["a", "h"]

    def test_concurrent_recording(self):
        reg = MetricsRegistry()
        n, threads = 500, 8

        def work(k):
            for i in range(n):
                reg.inc("total")
                reg.observe("lat", 0.001 * (k + 1))

        ts = [threading.Thread(target=work, args=(k,)) for k in range(threads)]
        for t in ts:
            t.start()
        for t in ts:
            t.join()
        assert reg.counter("total").value == n * threads
        assert reg.histogram("lat").count == n * threads


class TestGauge:
    def test_value_and_peak(self):
        from repro.serve import Gauge
        g = Gauge("depth")
        assert g.value == 0 and g.peak == 0
        g.set(5)
        g.set(2)
        assert g.value == 2
        assert g.peak == 5
        assert g.summary() == {"value": 2, "peak": 5}

    def test_registry_integration(self):
        reg = MetricsRegistry()
        assert reg.gauge("depth") is reg.gauge("depth")
        reg.gauge("depth").set(7)
        reg.gauge("depth").set(3)
        snap = reg.snapshot()
        assert snap["depth"] == {"value": 3, "peak": 7}
        assert "depth" in reg.names()

    def test_concurrent_sets_keep_true_peak(self):
        g = MetricsRegistry().gauge("depth")

        def work(k):
            for i in range(300):
                g.set(k * 1000 + i)

        ts = [threading.Thread(target=work, args=(k,)) for k in range(4)]
        for t in ts:
            t.start()
        for t in ts:
            t.join()
        assert g.peak == 3299
