"""Viewer and streaming instrumentation: the obs layer above the engine.

The pyramid service emits viewport/tile-ladder instants on the ``viewer``
track and the streaming runner emits read/submit/retire events on the
``stream`` track — all against the same tracer the backend engine uses,
so one timeline covers the whole request path.
"""

import numpy as np

from repro.models.vit import ViTSegmenter
from repro.obs import Tracer, chrome_trace, validate_trace
from repro.pipeline import PatchPipeline
from repro.pyramid import PyramidService, TilePyramid
from repro.serve import (InferenceEngine, Predictor, ServiceModel, SimClock)
from repro.stream import MemorySink, VirtualWSISource, plan_scene
from repro.stream.runner import StreamingRunner
from repro.stream.source import ArraySource


def _model():
    return ViTSegmenter(patch_size=4, channels=1, dim=16, depth=1, heads=2,
                        max_len=256, rng=np.random.default_rng(1))


def _predictor():
    pipe = PatchPipeline(patch_size=4, split_value=8.0, channels=1,
                         cache_items=64)
    return Predictor(_model(), pipe, max_batch=4, bucket=16)


def _events(tracer, name):
    return [ev for ev in tracer.events if ev["name"] == name]


class TestViewerTrace:
    def _service(self, **engine_kw):
        clock = SimClock()
        tracer = Tracer(clock=clock.now)
        engine = InferenceEngine(_predictor(), clock=clock.now,
                                 service_model=ServiceModel(),
                                 result_cache_items=32, tracer=tracer,
                                 **engine_kw)
        rng = np.random.default_rng(0)
        pyramid = TilePyramid(ArraySource(rng.random((256, 256, 3))),
                              tile=32)
        svc = PyramidService(pyramid, engine, clock=clock.now,
                             prefetch_tiles=0)
        assert svc.tracer is tracer      # inherited from the backend
        return svc, engine, clock, tracer

    def test_viewport_and_submit_instants(self):
        svc, engine, clock, tracer = self._service()
        report = svc.request_viewport("a", 0, (0, 0), (64, 64))
        vps = _events(tracer, "viewport")
        assert len(vps) == 1 and vps[0]["track"] == "viewer"
        assert vps[0]["args"]["tiles"] == len(report.tasks)
        subs = _events(tracer, "tile.submit")
        assert len(subs) == report.submitted == 4
        assert all(ev["args"]["session"] == "a" and not ev["args"]["prefetch"]
                   for ev in subs)

    def test_cache_hit_and_join_instants(self):
        svc, engine, clock, tracer = self._service()
        svc.request_viewport("a", 0, (0, 0), (64, 64))
        joined = svc.request_viewport("b", 0, (0, 0), (64, 64))
        assert len(_events(tracer, "tile.join")) == joined.joined == 4
        engine.drain()
        hit = svc.request_viewport("a", 0, (0, 0), (64, 64))
        assert len(_events(tracer, "tile.cache_hit")) == hit.cache_hits == 4
        # viewer instants coexist with the engine's request intervals in
        # one structurally valid trace
        assert validate_trace(chrome_trace(tracer)) == []

    def test_pan_away_emits_cancel_instants(self):
        svc, engine, clock, tracer = self._service(max_batch=1)
        svc.request_viewport("a", 0, (0, 0), (64, 64))
        svc.request_viewport("a", 0, (128, 128), (64, 64))   # pan away
        cancels = _events(tracer, "tile.cancel")
        assert cancels and all(ev["track"] == "viewer" for ev in cancels)
        assert all(ev["args"]["session"] == "a" for ev in cancels)
        engine.drain()

    def test_overload_emits_reject_instants(self):
        svc, engine, clock, tracer = self._service(max_queue=2)
        report = svc.request_viewport("a", 0, (0, 0), (128, 128))
        assert report.rejected > 0
        rejects = _events(tracer, "tile.reject")
        assert len(rejects) == report.rejected
        engine.drain()

    def test_untraced_service_emits_nothing(self):
        clock = SimClock()
        engine = InferenceEngine(_predictor(), clock=clock.now,
                                 service_model=ServiceModel())
        rng = np.random.default_rng(0)
        pyramid = TilePyramid(ArraySource(rng.random((128, 128, 3))),
                              tile=32)
        svc = PyramidService(pyramid, engine, clock=clock.now,
                             prefetch_tiles=0)
        assert svc.tracer is None
        svc.request_viewport("a", 0, (0, 0), (64, 64))
        engine.drain()


class TestViewerDESTrace:
    def test_kill_mid_pan_marks_fault_on_loadgen_track(self):
        from repro.pyramid import run_viewer_load, viewer_trace
        from repro.serve import ReplicaKill, build_fleet
        from repro.stream.source import VirtualWSISource

        res, tile = 1024, 32
        clock = SimClock()
        tracer = Tracer(clock=clock.now)
        model = _model().eval()

        def factory(rank):
            pipe = PatchPipeline(patch_size=4, split_value=8.0, channels=1,
                                 cache_items=64)
            return Predictor(model, pipe, max_batch=1, bucket=16)

        router = build_fleet(factory, replicas=2, clock=clock.now,
                             service_model=ServiceModel(), max_queue=64,
                             result_cache_items=64, tracer=tracer)
        pyramid = TilePyramid(VirtualWSISource(res, seed=7, tile=256,
                                               cache_tiles=8),
                              tile=tile, max_level=3)
        svc = PyramidService(pyramid, router, clock=clock.now,
                             prefetch_tiles=2)
        assert svc.tracer is tracer          # inherited through the router
        events = viewer_trace((res, res), 4, sessions=3,
                              events_per_session=5, viewport=(64, 64),
                              tile=tile, seed=11)
        mid = events[len(events) // 2].time
        report = run_viewer_load(svc, events, clock,
                                 events=[ReplicaKill(mid, 0)])
        assert report["failed"] == 0 and report["leaked"] == 0
        faults = _events(tracer, "fault.kill")
        assert len(faults) == 1 and faults[0]["track"] == "loadgen"
        assert faults[0]["args"] == {"rank": 0}
        assert len(_events(tracer, "viewport")) == report["viewports"]
        assert validate_trace(chrome_trace(tracer)) == []


class TestStreamTrace:
    RES, TILE = 256, 128

    def _run(self, tracer, sink=None, resume=True, runner_kw=None):
        src = VirtualWSISource(self.RES, seed=5, organ=2, tile=self.TILE)
        plan = plan_scene((self.RES, self.RES, 3), tile=self.TILE,
                          max_len=256)
        runner = StreamingRunner(_predictor(), tracer=tracer,
                                 **(runner_kw or {}))
        assert runner.tracer is (tracer if tracer and tracer.enabled
                                 else None)
        report = runner.run(src, plan, sink if sink is not None
                            else MemorySink(), resume=resume)
        return report, plan

    def test_read_spans_and_retire_instants(self):
        tracer = Tracer()
        report, plan = self._run(tracer)
        reads = _events(tracer, "tile.read")
        assert len(reads) == report.tiles_run == len(plan.tiles)
        assert all(ev["ph"] == "X" and ev["track"] == "stream"
                   and ev["dur"] >= 0 and ev["args"]["bytes"] > 0
                   for ev in reads)
        retires = _events(tracer, "tile.retire")
        assert len(retires) == report.tiles_run
        assert validate_trace(chrome_trace(tracer)) == []

    def test_resume_emits_skip_instants(self):
        sink = MemorySink()
        self._run(None, sink=sink)               # first full pass
        tracer = Tracer()
        report, plan = self._run(tracer, sink=sink, resume=True)
        assert report.tiles_skipped == len(plan.tiles)
        skips = _events(tracer, "tile.skip")
        assert len(skips) == len(plan.tiles)
        assert not _events(tracer, "tile.read")

    def test_disabled_tracer_normalized_away(self):
        report, _ = self._run(Tracer(enabled=False))
        assert report.tiles_run > 0

    def test_engine_mode_inherits_engine_tracer(self):
        tracer = Tracer()
        engine = InferenceEngine(_predictor(), tracer=tracer)
        runner = StreamingRunner(engine=engine, max_inflight=2)
        assert runner.tracer is tracer
        src = VirtualWSISource(self.RES, seed=5, organ=2, tile=self.TILE)
        plan = plan_scene((self.RES, self.RES, 3), tile=self.TILE,
                          max_len=256)
        report = runner.run(src, plan, MemorySink())
        assert report.tiles_run == len(plan.tiles)
        subs = _events(tracer, "tile.submit")
        assert len(subs) == report.tiles_run
        assert all(ev["args"]["lane"] == "bulk" for ev in subs)
        assert len(_events(tracer, "tile.retire")) == report.tiles_run
        assert validate_trace(chrome_trace(tracer)) == []
