"""Tests for the Eq. 6 quadtree builder: tiling invariants, split semantics,
depth limits, and the 2:1 balance pass."""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.quadtree import (balance_2to1, build_quadtree, max_depth_for,
                            morton_encode)


def center_blob(z=64, r=6):
    """Detail map with a dense blob in the center — classic APF-friendly input."""
    d = np.zeros((z, z))
    c = z // 2
    yy, xx = np.mgrid[0:z, 0:z]
    d[(yy - c) ** 2 + (xx - c) ** 2 < r * r] = 1.0
    return d


class TestMaxDepthFor:
    def test_paper_examples(self):
        # 512 with 2x2 minimum patches → depth 8
        assert max_depth_for(512, 2) == 8
        assert max_depth_for(512, 4) == 7
        assert max_depth_for(16384, 2) == 13

    def test_rejects_non_divisor(self):
        with pytest.raises(ValueError):
            max_depth_for(512, 3)

    def test_rejects_non_pow2_ratio(self):
        with pytest.raises(ValueError):
            max_depth_for(768, 256)  # ratio 3 is not a power of two


class TestBuildBasics:
    def test_empty_detail_single_leaf(self):
        leaves = build_quadtree(np.zeros((32, 32)), split_value=0.0, max_depth=5)
        assert len(leaves) == 1
        assert leaves.sizes[0] == 32
        assert leaves.covers_exactly()

    def test_full_detail_fully_refines(self):
        leaves = build_quadtree(np.ones((16, 16)), split_value=0.0, max_depth=4)
        assert len(leaves) == 256  # all 1x1
        assert (leaves.sizes == 1).all()
        assert leaves.covers_exactly()

    def test_depth_limit_respected(self):
        leaves = build_quadtree(np.ones((16, 16)), split_value=0.0, max_depth=2)
        assert (leaves.sizes == 4).all()
        assert leaves.depths.max() == 2

    def test_min_size_respected(self):
        leaves = build_quadtree(np.ones((16, 16)), split_value=0.0, max_depth=10,
                                min_size=4)
        assert leaves.sizes.min() == 4

    def test_blob_refines_center_only(self):
        leaves = build_quadtree(center_blob(), split_value=2.0, max_depth=6)
        assert leaves.covers_exactly()
        # Smallest leaves concentrate near the center blob.
        small = leaves.sizes == leaves.sizes.min()
        cy = leaves.ys[small] + leaves.sizes[small] / 2
        cx = leaves.xs[small] + leaves.sizes[small] / 2
        assert np.abs(cy - 32).max() < 24 and np.abs(cx - 32).max() < 24
        # Far corners stay coarse.
        corner = (leaves.ys == 0) & (leaves.xs == 0)
        assert leaves.sizes[corner].max() >= 16

    def test_split_value_monotonicity(self):
        d = center_blob()
        lens = [build_quadtree(d, v, max_depth=6).sequence_length
                for v in (0.5, 2, 8, 32, 128)]
        assert lens == sorted(lens, reverse=True)

    def test_sequence_shorter_than_uniform(self):
        # The headline claim: adaptive ≪ uniform at the same minimum patch size.
        z, p = 64, 2
        leaves = build_quadtree(center_blob(z), split_value=2.0,
                                max_depth=max_depth_for(z, p))
        uniform = (z // p) ** 2
        assert leaves.sequence_length < uniform / 4

    def test_eq6_split_criterion_exact(self):
        # A region with detail mass exactly equal to v must NOT split (<= v keeps).
        d = np.zeros((8, 8))
        d[0, 0] = 5.0
        keep = build_quadtree(d, split_value=5.0, max_depth=3)
        assert len(keep) == 1
        split = build_quadtree(d, split_value=4.999, max_depth=3)
        assert len(split) > 1

    def test_rejects_bad_inputs(self):
        with pytest.raises(ValueError):
            build_quadtree(np.zeros((8, 4)), 1.0, 3)
        with pytest.raises(ValueError):
            build_quadtree(np.zeros((12, 12)), 1.0, 3)
        with pytest.raises(ValueError):
            build_quadtree(np.zeros((8, 8)), -1.0, 3)
        with pytest.raises(ValueError):
            build_quadtree(np.zeros((8, 8)), 1.0, 3, min_size=3)

    def test_nodes_visited_counts(self):
        leaves = build_quadtree(np.ones((8, 8)), 0.0, 3)
        # Full tree: 1 + 4 + 16 + 64 = 85 nodes.
        assert leaves.nodes_visited == 85


class TestLeafProperties:
    def test_sizes_are_powers_of_two(self):
        leaves = build_quadtree(center_blob(), split_value=3.0, max_depth=6)
        assert all(s & (s - 1) == 0 for s in leaves.sizes)

    def test_depth_size_relation(self):
        leaves = build_quadtree(center_blob(), split_value=3.0, max_depth=6)
        np.testing.assert_array_equal(leaves.sizes, 64 >> leaves.depths)

    def test_histogram_totals(self):
        leaves = build_quadtree(center_blob(), split_value=3.0, max_depth=6)
        hist = leaves.size_histogram()
        assert sum(hist.values()) == len(leaves)
        assert sum(s * s * c for s, c in hist.items()) == 64 * 64

    def test_morton_order_sorted_codes(self):
        leaves = build_quadtree(center_blob(), split_value=3.0, max_depth=6)
        z = leaves.sorted_by_morton()
        codes = morton_encode(z.ys, z.xs)
        assert (np.diff(codes.astype(np.int64)) > 0).all()

    def test_mean_patch_size(self):
        leaves = build_quadtree(np.zeros((32, 32)), 0.0, 5)
        assert leaves.mean_patch_size == 32.0


class TestBalance:
    def test_balanced_tree_unchanged(self):
        leaves = build_quadtree(np.zeros((16, 16)), 0.0, 4)
        bal = balance_2to1(leaves)
        assert len(bal) == len(leaves)

    def test_unbalanced_neighbor_split(self):
        # Deep refinement in one corner next to a huge leaf violates 2:1.
        d = np.zeros((32, 32))
        d[0:2, 0:2] = 10.0
        leaves = build_quadtree(d, split_value=0.5, max_depth=5)
        sizes_before = sorted(set(leaves.sizes))
        bal = balance_2to1(leaves)
        assert bal.covers_exactly()
        # Verify constraint: rasterize and compare edge-adjacent sizes.
        size_map = np.zeros((32, 32), dtype=int)
        for y, x, s in zip(bal.ys, bal.xs, bal.sizes):
            size_map[y:y + s, x:x + s] = s
        ratio_v = size_map[1:, :] / size_map[:-1, :]
        ratio_h = size_map[:, 1:] / size_map[:, :-1]
        assert max(ratio_v.max(), 1 / ratio_v.min(),
                   ratio_h.max(), 1 / ratio_h.min()) <= 2.0
        assert len(bal) >= len(leaves)
        assert min(sizes_before) == bal.sizes.min()  # finest level untouched


class TestProperties:
    @given(st.integers(0, 10 ** 6), st.integers(1, 5), st.integers(0, 3))
    @settings(max_examples=40, deadline=None)
    def test_property_exact_tiling(self, seed, depth, blob_count):
        rng = np.random.default_rng(seed)
        z = 32
        d = np.zeros((z, z))
        for _ in range(blob_count):
            y, x = rng.integers(0, z, 2)
            d[max(0, y - 2):y + 2, max(0, x - 2):x + 2] = rng.random()
        leaves = build_quadtree(d, split_value=float(rng.random() * 4),
                                max_depth=depth)
        assert leaves.covers_exactly()

    @given(st.integers(0, 10 ** 6))
    @settings(max_examples=20, deadline=None)
    def test_property_split_value_monotone(self, seed):
        rng = np.random.default_rng(seed)
        d = (rng.random((32, 32)) > 0.8).astype(float)
        prev = None
        for v in (0.0, 1.0, 4.0, 16.0, 64.0):
            n = build_quadtree(d, v, max_depth=5).sequence_length
            if prev is not None:
                assert n <= prev
            prev = n

    @given(st.integers(0, 10 ** 6))
    @settings(max_examples=20, deadline=None)
    def test_property_morton_is_permutation(self, seed):
        rng = np.random.default_rng(seed)
        d = (rng.random((16, 16)) > 0.7).astype(float)
        leaves = build_quadtree(d, 1.0, 4)
        order = leaves.morton_order()
        assert sorted(order) == list(range(len(leaves)))
