"""Tests for the simulated-clock load harness (determinism above all)."""

import numpy as np
import pytest

from repro.data import SyntheticPAIP
from repro.models.vit import ViTSegmenter
from repro.pipeline import PatchPipeline
from repro.serve import (Arrival, InferenceEngine, Predictor, ReplicaDrain,
                         ReplicaKill, ServiceModel, SimClock, build_fleet,
                         merge_traces, poisson_trace, run_fleet_load,
                         run_load, serial_baseline)


def _setup(n=6, **engine_kw):
    ds = SyntheticPAIP(64, n)
    imgs = [ds[i].image for i in range(n)]
    model = ViTSegmenter(patch_size=4, channels=1, dim=16, depth=1, heads=2,
                         max_len=256, rng=np.random.default_rng(1))
    pipe = PatchPipeline(patch_size=4, split_value=8.0, channels=1,
                         cache_items=32)
    pred = Predictor(model, pipe, max_batch=4, bucket=16)
    clock = SimClock()
    args = dict(clock=clock.now, service_model=ServiceModel(),
                flush_deadline=0.02, result_cache_items=0)
    args.update(engine_kw)
    return imgs, InferenceEngine(pred, **args), clock


class TestTraces:
    def test_poisson_trace_is_seeded_and_sorted(self):
        a = poisson_trace(10.0, 20, seed=7, n_items=4)
        b = poisson_trace(10.0, 20, seed=7, n_items=4)
        assert a == b
        assert a != poisson_trace(10.0, 20, seed=8, n_items=4)
        times = [x.time for x in a]
        assert times == sorted(times)
        assert all(0 <= x.item < 4 for x in a)
        # mean inter-arrival ~ 1/rate
        gaps = np.diff([0.0] + times)
        assert 0.03 < gaps.mean() < 0.3

    def test_merge_traces_orders_by_time(self):
        a = poisson_trace(5.0, 5, seed=1)
        b = poisson_trace(5.0, 5, seed=2, lane="bulk")
        merged = merge_traces(a, b)
        assert len(merged) == 10
        assert [x.time for x in merged] == sorted(x.time for x in merged)

    def test_trace_validation(self):
        with pytest.raises(ValueError):
            poisson_trace(0.0, 5, seed=1)
        with pytest.raises(ValueError):
            poisson_trace(1.0, 0, seed=1)


class TestServiceModel:
    def test_cost_model_shape(self):
        sm = ServiceModel(batch_seconds=0.03, token_seconds=1e-5,
                          item_seconds=0.002)
        assert sm.serial(100) == pytest.approx(0.03 + 0.001 + 0.002)
        assert sm.cost(8, 100) == pytest.approx(0.03 + 8 * 0.003)
        # batching amortizes the fixed term: 8 items cheaper than 8 singles
        assert sm.cost(8, 100) < 8 * sm.serial(100)
        with pytest.raises(ValueError):
            sm.cost(0, 100)


class TestSimClock:
    def test_forward_only(self):
        c = SimClock(5.0)
        c.set(4.0)
        assert c.now() == 5.0
        c.advance(1.5)
        assert c.now() == 6.5
        with pytest.raises(ValueError):
            c.advance(-1.0)


class TestRunLoad:
    def test_deterministic_across_runs(self):
        reports = []
        for _ in range(2):
            imgs, engine, clock = _setup()
            trace = merge_traces(*[poisson_trace(8.0, 6, seed=10 + c,
                                                 n_items=len(imgs))
                                   for c in range(3)])
            reports.append(run_load(engine, trace, imgs, clock))
        a, b = reports
        assert a["throughput"] == b["throughput"]
        assert a["latency"] == b["latency"]
        assert a["batches"] == b["batches"]
        assert a["rejected_submissions"] == b["rejected_submissions"]

    def test_all_accepted_requests_complete(self):
        imgs, engine, clock = _setup()
        trace = poisson_trace(20.0, 15, seed=3, n_items=len(imgs))
        report = run_load(engine, trace, imgs, clock)
        assert report["offered"] == 15
        assert (report["requests_completed"] + report["rejected_submissions"]
                == 15)
        assert report["makespan"] > 0
        assert report["latency"]["count"] == report["requests_completed"]

    def test_overload_sheds_and_hints(self):
        imgs, engine, clock = _setup(max_queue=4)
        trace = poisson_trace(500.0, 40, seed=5, n_items=len(imgs))
        report = run_load(engine, trace, imgs, clock)
        assert report["rejected_submissions"] > 0
        assert report["mean_retry_after"] > 0

    def test_empty_trace_rejected(self):
        imgs, engine, clock = _setup()
        with pytest.raises(ValueError):
            run_load(engine, [], imgs, clock)

    def test_batching_beats_serial_baseline(self):
        imgs, engine, clock = _setup()
        pred = engine.predictor
        trace = merge_traces(*[poisson_trace(15.0, 8, seed=20 + c,
                                             n_items=len(imgs))
                               for c in range(4)])
        report = run_load(engine, trace, imgs, clock)
        ordered = sorted(trace, key=lambda a: (a.time, a.lane, a.item))
        lengths = [pred.bucket_length(len(pred._naturals([imgs[a.item]],
                                                         [a.item])[0]))
                   for a in ordered]
        serial = serial_baseline(trace, lengths, ServiceModel())
        assert report["throughput"] > serial["throughput"]


def _fleet_setup(n_imgs=6, replicas=3, **opts):
    ds = SyntheticPAIP(64, n_imgs)
    imgs = [ds[i].image for i in range(n_imgs)]
    model = ViTSegmenter(patch_size=4, channels=1, dim=16, depth=1, heads=2,
                         max_len=256, rng=np.random.default_rng(1))

    def factory(rank):
        pipe = PatchPipeline(patch_size=4, split_value=8.0, channels=1,
                             cache_items=32)
        return Predictor(model, pipe, max_batch=4, bucket=16)

    clock = SimClock()
    args = dict(service_model=ServiceModel(), flush_deadline=0.02,
                result_cache_items=16)
    args.update(opts)
    router = build_fleet(factory, replicas=replicas, clock=clock.now, **args)
    return imgs, router, clock


class TestRunFleetLoad:
    def test_deterministic_across_runs(self):
        reports = []
        for _ in range(2):
            imgs, router, clock = _fleet_setup()
            trace = merge_traces(*[poisson_trace(30.0, 10, seed=40 + c,
                                                 n_items=len(imgs))
                                   for c in range(3)])
            reports.append(run_fleet_load(router, trace, imgs, clock))
        a, b = reports
        assert a["throughput"] == b["throughput"]
        assert a["latency"] == b["latency"]
        assert a["per_replica"] == b["per_replica"]
        assert a["cache_hit_rate"] == b["cache_hit_rate"]

    def test_accounting_closes(self):
        imgs, router, clock = _fleet_setup()
        trace = poisson_trace(50.0, 30, seed=4, n_items=len(imgs))
        report = run_fleet_load(router, trace, imgs, clock)
        assert report["offered"] == 30
        assert (report["requests_completed"]
                + report["rejected_submissions"] == 30)
        assert report["failed"] == 0
        assert report["latency"]["count"] == report["requests_completed"]

    def test_replica_kill_loses_no_requests(self):
        """Regression: a mid-trace kill re-hashes the backlog; every
        accepted request still completes (the ISSUE's no-loss gate)."""
        imgs, router, clock = _fleet_setup()
        trace = poisson_trace(200.0, 40, seed=9, n_items=len(imgs))
        kill_t = trace[len(trace) // 2].time
        report = run_fleet_load(router, trace, imgs, clock,
                                events=[ReplicaKill(kill_t, 1)])
        assert report["kills"] == 1
        assert report["failed"] == 0
        assert (report["requests_completed"]
                + report["rejected_submissions"] == report["offered"])
        assert report["per_replica"][1]["state"] == "down"
        assert report["per_replica"][1]["queue_depth"] == 0

    def test_replica_drain_event(self):
        imgs, router, clock = _fleet_setup()
        trace = poisson_trace(100.0, 30, seed=11, n_items=len(imgs))
        drain_t = trace[len(trace) // 3].time
        report = run_fleet_load(router, trace, imgs, clock,
                                events=[ReplicaDrain(drain_t, 0)])
        assert report["drains"] == 1
        assert report["failed"] == 0
        assert report["per_replica"][0]["state"] == "draining"
        # the drained replica's queue still retired through the batcher
        assert report["per_replica"][0]["queue_depth"] == 0
        # no new work after the drain point: rank 0 routed less than peers
        routed = {rank: rep["routed"]
                  for rank, rep in report["per_replica"].items()}
        assert routed[0] <= max(routed[1], routed[2])

    def test_routing_delay_adds_latency(self):
        imgs, fast_router, clock0 = _fleet_setup()
        trace = poisson_trace(20.0, 12, seed=13, n_items=len(imgs))
        base = run_fleet_load(fast_router, trace, imgs, clock0)
        imgs2, slow_router, clock1 = _fleet_setup()
        slow_router.route_seconds = 0.05
        slow = run_fleet_load(slow_router, trace, imgs2, clock1)
        # a constant hop shifts every submission equally: engine-visible
        # latency (measured from post-hop submit) is unchanged, but the
        # timeline — and so the makespan from first *arrival* — stretches
        assert slow["latency"]["mean"] == pytest.approx(
            base["latency"]["mean"])
        assert slow["makespan"] > base["makespan"]

    def test_unknown_event_rejected(self):
        imgs, router, clock = _fleet_setup()
        trace = poisson_trace(10.0, 3, seed=2, n_items=len(imgs))
        with pytest.raises(TypeError):
            run_fleet_load(router, trace, imgs, clock,
                           events=[Arrival(0.0, 0)])

    def test_empty_trace_rejected(self):
        imgs, router, clock = _fleet_setup()
        with pytest.raises(ValueError):
            run_fleet_load(router, [], imgs, clock)

    def test_fleet_outscales_single_engine(self):
        trace = merge_traces(*[poisson_trace(60.0, 25, seed=60 + c, n_items=6)
                               for c in range(4)])
        throughput = {}
        for n in (1, 4):
            imgs, router, clock = _fleet_setup(replicas=n,
                                               result_cache_items=0)
            throughput[n] = run_fleet_load(router, trace, imgs,
                                           clock)["throughput"]
        assert throughput[4] > throughput[1]


class TestSerialBaseline:
    def test_fifo_queueing_math(self):
        sm = ServiceModel(batch_seconds=0.03, token_seconds=0.0,
                          item_seconds=0.01)
        trace = [Arrival(0.0, 0), Arrival(0.01, 0), Arrival(10.0, 0)]
        out = serial_baseline(trace, [32, 32, 32], sm)
        # svc = 0.04: req2 queues behind req1; req3 arrives to an idle server
        assert out["p50"] == pytest.approx(0.04)
        assert out["mean"] == pytest.approx((0.04 + 0.07 + 0.04) / 3)
        assert out["makespan"] == pytest.approx(10.04)
        assert out["completed"] == 3

    def test_queue_bound_sheds(self):
        sm = ServiceModel(batch_seconds=1.0, token_seconds=0.0,
                          item_seconds=0.0)
        trace = [Arrival(0.0, 0), Arrival(0.1, 0), Arrival(0.2, 0)]
        out = serial_baseline(trace, [32, 32, 32], sm, queue_bound=1)
        assert out["shed"] == 1
        assert out["completed"] == 2

    def test_length_mismatch(self):
        with pytest.raises(ValueError):
            serial_baseline([Arrival(0.0, 0)], [32, 32], ServiceModel())
