"""Simulated synchronous data-parallel training.

Each optimizer step shards the batch across ``world_size`` simulated ranks,
computes per-rank gradients sequentially (the ranks share one model replica —
parameters are identical across ranks in synchronous SGD, so one set of
weights suffices), averages gradients with a *real* ring all-reduce, and
applies the update once. The resulting parameter trajectory is exactly that
of single-process training on the full batch, which the test-suite asserts.

Wall-clock is *simulated*: per-rank compute is measured, the step time is
``max(rank compute) + allreduce_time(grad bytes)`` from the α–β cost model.
"""

from __future__ import annotations

import time
from dataclasses import dataclass
from typing import List, Optional, Sequence

import numpy as np

from ..perf.costmodel import CostModel
from .collectives import CommStats, SimCluster

__all__ = ["DataParallelSimulator", "StepReport"]


@dataclass
class StepReport:
    """Outcome of one simulated distributed optimizer step."""

    loss: float
    measured_compute_seconds: float     #: max over ranks (critical path)
    simulated_comm_seconds: float       #: α–β model of the gradient all-reduce
    comm_bytes_per_rank: float

    @property
    def simulated_step_seconds(self) -> float:
        return self.measured_compute_seconds + self.simulated_comm_seconds


class DataParallelSimulator:
    """Drives a task/optimizer pair as if on ``world_size`` ranks."""

    def __init__(self, task, optimizer, world_size: int,
                 cost_model: Optional[CostModel] = None,
                 time_fn=time.perf_counter):
        self.task = task
        self.optimizer = optimizer
        self.cluster = SimCluster(world_size)
        self.cost_model = cost_model or CostModel()
        self.time_fn = time_fn

    @property
    def world_size(self) -> int:
        return self.cluster.world_size

    def step(self, samples: Sequence) -> StepReport:
        """One synchronous step over ``samples`` sharded across ranks."""
        w = self.world_size
        if len(samples) < w:
            raise ValueError(f"batch of {len(samples)} cannot feed {w} ranks")
        params = self.optimizer.params
        rank_grads: List[List[np.ndarray]] = []
        shard_sizes: List[int] = []
        losses: List[float] = []
        compute_times: List[float] = []
        for rank in range(w):
            idx = self.cluster.shard_indices(len(samples), rank)
            shard = [samples[i] for i in idx]
            shard_sizes.append(len(shard))
            t0 = self.time_fn()
            self.optimizer.zero_grad()
            loss = self.task.batch_loss(shard)
            loss.backward()
            compute_times.append(self.time_fn() - t0)
            losses.append(float(loss.data) * len(shard))
            rank_grads.append([p.grad.copy() if p.grad is not None
                               else np.zeros_like(p.data) for p in params])

        # Weighted all-reduce: full-batch gradient = sum_r (n_r/n) * g_r.
        n = len(samples)
        stats = CommStats()
        for pi, p in enumerate(params):
            buffers = [rank_grads[r][pi] * (shard_sizes[r] / n) for r in range(w)]
            reduced, s = self.cluster.ring_all_reduce(buffers)
            stats.merge(s)
            p.grad = reduced[0].astype(p.data.dtype)
        self.optimizer.step()

        comm_time = self.cost_model.allreduce_seconds(
            sum(p.data.nbytes for p in params), w)
        return StepReport(
            loss=float(np.sum(losses) / n),
            measured_compute_seconds=max(compute_times),
            simulated_comm_seconds=comm_time,
            comm_bytes_per_rank=stats.bytes_sent_per_rank,
        )
