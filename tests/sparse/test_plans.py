"""Tests for sparse execution plans: masks, row maps, reductions."""

import numpy as np

from repro.patching import (AdaptivePatcher, UniformPatcher,
                            VolumetricAdaptivePatcher)
from repro.sparse import (background_mask, merge_plan, shortcircuit_plan,
                          take_tokens, token_digests)


def corner_image(z=64, seed=0):
    img = np.full((z, z), 0.25)
    img[:8, :8] = np.random.default_rng(seed).random((8, 8))
    return img


def corner_seq(z=64, seed=0, split=8.0):
    return AdaptivePatcher(patch_size=4, split_value=split)(
        corner_image(z, seed))


class TestBackgroundMask:
    def test_none_without_detail_metadata(self):
        seq = UniformPatcher(4)(corner_image())
        assert seq.details is None
        assert background_mask(seq, 0.0) is None

    def test_quadtree_flat_leaves_are_background(self):
        seq = corner_seq()
        bg = background_mask(seq, 0.0)
        assert bg is not None and bg.any() and not bg.all()
        # The mask is exactly the zero-detail leaves — and those leaves
        # really are flat content.
        np.testing.assert_array_equal(bg, seq.details == 0.0)
        for i in np.flatnonzero(bg):
            assert float(np.ptp(seq.patches[i])) == 0.0

    def test_threshold_widens_the_mask(self):
        seq = corner_seq()
        assert background_mask(seq, 1e9).sum() >= \
            background_mask(seq, 0.0).sum()

    def test_respects_validity(self):
        seq = corner_seq()
        padded = AdaptivePatcher(patch_size=4).fit_length(seq, len(seq) + 5)
        bg = background_mask(padded, 0.0)
        assert not bg[~padded.valid].any()


class TestTakeTokens:
    def test_subset_is_well_formed(self):
        seq = corner_seq()
        idx = np.arange(len(seq))[::2]
        sub = take_tokens(seq, idx)
        assert len(sub) == len(idx)
        np.testing.assert_array_equal(sub.ys, seq.ys[idx])
        np.testing.assert_array_equal(sub.sizes, seq.sizes[idx])
        np.testing.assert_array_equal(sub.details, seq.details[idx])
        np.testing.assert_array_equal(sub.tokens(), seq.tokens()[idx])
        assert sub.image_size == seq.image_size

    def test_volumetric_subset(self):
        vol = np.full((16, 16, 16), 0.3)
        vol[:4, :4, :4] = np.random.default_rng(0).random((4, 4, 4))
        seq = VolumetricAdaptivePatcher(patch_size=4, split_value=2.0)(vol)
        assert seq.details is not None
        idx = np.arange(len(seq))[1::2]
        sub = take_tokens(seq, idx)
        np.testing.assert_array_equal(sub.zs, seq.zs[idx])
        np.testing.assert_array_equal(sub.details, seq.details[idx])
        assert sub.volume_size == seq.volume_size


class TestShortcircuitPlan:
    def test_warm_table_routes_all_background_to_minus_one(self):
        seq = corner_seq()
        digests = token_digests(seq.tokens(), 256)
        bg = background_mask(seq, 0.0)
        plan = shortcircuit_plan(seq, digests, bg, known=bg.copy())
        assert plan.kind == "shortcircuit"
        assert plan.n_skipped == int(bg.sum()) and plan.n_merged == 0
        assert len(plan.seeds) == 0                  # nothing new to seed
        assert len(plan.reduced_seq) == len(seq) - plan.n_skipped
        np.testing.assert_array_equal(plan.rows == -1, bg)
        kept = plan.rows[plan.rows >= 0]
        np.testing.assert_array_equal(kept, np.arange(len(kept)))
        # Kept rows read back exactly the tokens that ran.
        np.testing.assert_array_equal(plan.reduced_seq.tokens(),
                                      seq.tokens()[~bg])

    def test_cold_table_keeps_one_representative_per_digest(self):
        seq = corner_seq()
        digests = token_digests(seq.tokens(), 256)
        bg = background_mask(seq, 0.0)
        plan = shortcircuit_plan(seq, digests, bg,
                                 known=np.zeros(len(seq), dtype=bool))
        # Nothing known -> nothing leaves for the table, but duplicate
        # digests still collapse onto their first occurrence.
        assert plan.n_skipped == 0
        assert (plan.rows >= 0).all()
        groups = {(digests[i].tobytes(), int(seq.sizes[i]))
                  for i in np.flatnonzero(bg)}
        assert len(plan.seeds) == len(groups)
        assert plan.n_merged == int(bg.sum()) - len(groups)
        assert len(plan.reduced_seq) == len(seq) - plan.n_merged
        # Every background token reads a reduced row with its own digest,
        # and every seed is a background token that stayed in-sequence.
        red = token_digests(plan.reduced_seq.tokens(), 256)
        for i in np.flatnonzero(bg):
            assert red[plan.rows[i]] == digests[i]
        assert bg[plan.seeds].all()

    def test_mixed_known_and_unknown_digests(self):
        seq = corner_seq()
        digests = token_digests(seq.tokens(), 256)
        bg = background_mask(seq, 0.0)
        idx = np.flatnonzero(bg)
        known = np.zeros(len(seq), dtype=bool)
        known[idx[: len(idx) // 2]] = True
        plan = shortcircuit_plan(seq, digests, bg, known)
        assert plan.n_skipped == int((bg & known).sum())
        np.testing.assert_array_equal(plan.rows == -1, bg & known)
        # Unknown background tokens resolve in-sequence via representatives.
        red = token_digests(plan.reduced_seq.tokens(), 256)
        for i in idx[len(idx) // 2:]:
            assert red[plan.rows[i]] == digests[i]


class TestMergePlan:
    def _run_seq(self):
        # A mostly-flat image yields runs of identical flat tokens at the
        # same leaf size once ordered along the curve.
        seq = corner_seq(z=128)
        digests = token_digests(seq.tokens(), 256)
        return seq, digests

    def test_runs_collapse_onto_first_member(self):
        seq, digests = self._run_seq()
        plan = merge_plan(seq, digests, seq.sizes, min_run=2)
        assert plan is not None and plan.n_merged > 0
        assert len(plan.reduced_seq) == len(seq) - plan.n_merged
        red = token_digests(plan.reduced_seq.tokens(), 256)
        for i in range(len(seq)):
            # Every full-row token maps to a reduced row with its digest.
            assert red[plan.rows[i]] == digests[i]
        # Representatives are the run heads, in original order.
        assert (np.diff(plan.rows) >= 0).all()

    def test_min_run_gates_merging(self):
        seq, digests = self._run_seq()
        loose = merge_plan(seq, digests, seq.sizes, min_run=2)
        strict = merge_plan(seq, digests, seq.sizes, min_run=64)
        assert strict is None or strict.n_merged < loose.n_merged

    def test_none_when_nothing_merges(self):
        rng = np.random.default_rng(0)
        seq = UniformPatcher(4)(rng.random((32, 32)))
        digests = token_digests(seq.tokens(), 0)      # exact: all distinct
        assert merge_plan(seq, digests, seq.sizes, min_run=2) is None

    def test_size_mismatch_breaks_a_run(self):
        digests = np.array([b"a", b"a", b"a", b"a"], dtype="V1")
        sizes = np.array([4, 4, 8, 8])
        seq = corner_seq()
        sub = take_tokens(seq, np.arange(4))
        plan = merge_plan(sub, digests, sizes, min_run=2)
        # Two runs of two — each collapses one token.
        assert plan.n_merged == 2
        np.testing.assert_array_equal(plan.rows, [0, 0, 1, 1])
