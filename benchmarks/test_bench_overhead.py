"""§IV-G.3 regeneration: APF preprocessing overhead is negligible.

Paper: whole-dataset preprocessing takes seconds ([4.2 ... 286.6]s across
resolutions) vs hours of training — amortized over epochs it vanishes.
"""


def test_overhead_negligible(once):
    from repro.experiments import run_overhead

    r = once(run_overhead, resolutions=(32, 64, 128, 256), n_images=3)
    print("\n" + r.rows())
    # Preprocessing cost grows with resolution but stays sub-second/image.
    assert r.preprocess_seconds == sorted(r.preprocess_seconds)
    assert r.preprocess_seconds[-1] < 1.0
    # The amortized overhead over a paper-length (200 epoch) run is < 2%.
    assert r.overhead_fraction < 0.02
