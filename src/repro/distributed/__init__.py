"""``repro.distributed`` — simulated multi-GPU substrate (DESIGN.md §1).

* :mod:`repro.distributed.collectives` — real ring all-reduce on in-process buffers
* :mod:`repro.distributed.data_parallel` — exact synchronous DP simulation
* :mod:`repro.distributed.sequence_parallel` — Ulysses reference (comparison)
"""

from .collectives import CommStats, SimCluster
from .data_parallel import DataParallelSimulator, StepReport
from .sequence_parallel import UlyssesReport, ulysses_attention

__all__ = ["SimCluster", "CommStats", "DataParallelSimulator", "StepReport",
           "ulysses_attention", "UlyssesReport"]
