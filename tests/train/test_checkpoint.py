"""Tests for checkpoint save/load: bit-exact resume of model + optimizer."""

import numpy as np
import pytest

from repro import nn
from repro.train import load_checkpoint, save_checkpoint


def make_model(seed=0):
    return nn.Sequential(nn.Linear(6, 8, rng=np.random.default_rng(seed)),
                         nn.Linear(8, 2, rng=np.random.default_rng(seed + 1)))


def train_steps(model, opt, n, seed=0):
    rng = np.random.default_rng(seed)
    for _ in range(n):
        x = nn.Tensor(rng.normal(size=(4, 6)))
        y = nn.Tensor(rng.normal(size=(4, 2)))
        opt.zero_grad()
        diff = model(x) - y
        (diff * diff).mean().backward()
        opt.step()


class TestCheckpoint:
    def test_model_roundtrip(self, tmp_path):
        m1, m2 = make_model(0), make_model(99)
        path = str(tmp_path / "ckpt.npz")
        save_checkpoint(path, m1, epoch=7, extra={"note": "hi"})
        meta = load_checkpoint(path, m2)
        assert meta["epoch"] == 7
        assert meta["extra"]["note"] == "hi"
        for (_, a), (_, b) in zip(m1.named_parameters(), m2.named_parameters()):
            np.testing.assert_array_equal(a.data, b.data)

    def test_adamw_resume_bit_exact(self, tmp_path):
        # Train 3 steps, checkpoint, train 3 more == train 6 straight.
        m_ref = make_model(0)
        opt_ref = nn.AdamW(m_ref.parameters(), lr=1e-2)
        train_steps(m_ref, opt_ref, 6)

        m_a = make_model(0)
        opt_a = nn.AdamW(m_a.parameters(), lr=1e-2)
        train_steps(m_a, opt_a, 3)
        path = str(tmp_path / "mid.npz")
        save_checkpoint(path, m_a, opt_a, epoch=3)

        m_b = make_model(123)  # different init, will be overwritten
        opt_b = nn.AdamW(m_b.parameters(), lr=5.0)  # wrong lr, overwritten
        load_checkpoint(path, m_b, opt_b)
        # Resume with the same data stream the reference saw for steps 4-6.
        rng = np.random.default_rng(0)
        for _ in range(3):  # skip the consumed batches
            rng.normal(size=(4, 6))
            rng.normal(size=(4, 2))
        for _ in range(3):
            x = nn.Tensor(rng.normal(size=(4, 6)))
            y = nn.Tensor(rng.normal(size=(4, 2)))
            opt_b.zero_grad()
            diff = m_b(x) - y
            (diff * diff).mean().backward()
            opt_b.step()
        for (_, a), (_, b) in zip(m_ref.named_parameters(),
                                  m_b.named_parameters()):
            np.testing.assert_allclose(a.data, b.data, rtol=1e-12)

    def test_sgd_momentum_state_saved(self, tmp_path):
        m = make_model(0)
        opt = nn.SGD(m.parameters(), lr=1e-2, momentum=0.9)
        train_steps(m, opt, 2)
        path = str(tmp_path / "sgd.npz")
        save_checkpoint(path, m, opt)
        m2 = make_model(1)
        opt2 = nn.SGD(m2.parameters(), lr=1e-2, momentum=0.9)
        load_checkpoint(path, m2, opt2)
        for v1, v2 in zip(opt._velocity, opt2._velocity):
            np.testing.assert_array_equal(v1, v2)

    def test_optimizer_type_mismatch_raises(self, tmp_path):
        m = make_model(0)
        opt = nn.AdamW(m.parameters(), lr=1e-3)
        path = str(tmp_path / "x.npz")
        save_checkpoint(path, m, opt)
        with pytest.raises(ValueError):
            load_checkpoint(path, make_model(0),
                            nn.SGD(make_model(0).parameters(), lr=1e-3))

    def test_missing_optimizer_state_raises(self, tmp_path):
        m = make_model(0)
        path = str(tmp_path / "noopt.npz")
        save_checkpoint(path, m)
        with pytest.raises(ValueError):
            load_checkpoint(path, make_model(0),
                            nn.AdamW(make_model(0).parameters(), lr=1e-3))
