"""Finite-difference gradient checking for the autograd engine.

Used heavily by the test-suite: every op and every model path is validated
against central differences in float64 before being trusted in experiments.
"""

from __future__ import annotations

from typing import Callable, Sequence

import numpy as np

from .tensor import Tensor

__all__ = ["numeric_grad", "check_gradients"]


def numeric_grad(fn: Callable[..., Tensor], tensors: Sequence[Tensor],
                 index: int, eps: float = 1e-6) -> np.ndarray:
    """Central-difference gradient of ``float(fn(*tensors))`` w.r.t. tensor ``index``."""
    t = tensors[index]
    grad = np.zeros_like(t.data)
    flat = t.data.reshape(-1)
    gflat = grad.reshape(-1)
    for i in range(flat.size):
        orig = flat[i]
        flat[i] = orig + eps
        f_plus = float(fn(*tensors).data)
        flat[i] = orig - eps
        f_minus = float(fn(*tensors).data)
        flat[i] = orig
        gflat[i] = (f_plus - f_minus) / (2 * eps)
    return grad


def check_gradients(fn: Callable[..., Tensor], tensors: Sequence[Tensor],
                    eps: float = 1e-6, rtol: float = 1e-4,
                    atol: float = 1e-6) -> None:
    """Assert analytic gradients of a scalar-valued ``fn`` match finite differences.

    All ``tensors`` with ``requires_grad`` are checked. Inputs should be
    float64 for the tolerances to be meaningful.
    """
    for t in tensors:
        t.grad = None
    out = fn(*tensors)
    if out.size != 1:
        raise ValueError("check_gradients requires a scalar-valued function")
    out.backward()
    for i, t in enumerate(tensors):
        if not t.requires_grad:
            continue
        num = numeric_grad(fn, tensors, i, eps=eps)
        ana = t.grad if t.grad is not None else np.zeros_like(t.data)
        if not np.allclose(ana, num, rtol=rtol, atol=atol):
            err = np.abs(ana - num).max()
            raise AssertionError(
                f"gradient mismatch for input {i}: max abs err {err:.3e}\n"
                f"analytic:\n{ana}\nnumeric:\n{num}")
