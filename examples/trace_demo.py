"""End-to-end request tracing demo: DES fleet -> Chrome trace timeline.

Walks the observability layer end to end:
1. build a 2-replica fleet sharing one ``Tracer`` over the DES virtual
   clock, replay a seeded Poisson arrival trace (with a mid-run replica
   kill, so eviction/adoption markers appear in the timeline),
2. export ``trace.json`` — load it in Perfetto (https://ui.perfetto.dev)
   or ``chrome://tracing`` to see per-replica batch/execute/stitch spans
   and per-request async intervals,
3. print the text flame summary and per-request critical-path breakdown
   (queue / batch-form / plan / execute / stitch),
4. rerun one image wall-clock with kernel profiling on and report
   achieved GFLOP/s per compiled kernel.

Run:  PYTHONPATH=src python examples/trace_demo.py
"""

import numpy as np

from repro.data import SyntheticPAIP
from repro.models import ViTSegmenter
from repro.obs import (Tracer, critical_paths, flame_text, validate_trace,
                       write_chrome_trace)
from repro.pipeline import PatchPipeline
from repro.serve import (Predictor, ReplicaKill, ServiceModel, SimClock,
                         build_fleet, merge_traces, poisson_trace,
                         run_fleet_load)

RES, N_IMAGES, SPLIT = 64, 8, 8.0


def make_model():
    return ViTSegmenter(patch_size=4, channels=1, dim=32, depth=2, heads=4,
                        max_len=512, rng=np.random.default_rng(0)).eval()


def predictor_factory(model):
    def make(rank):
        pipe = PatchPipeline(patch_size=4, split_value=SPLIT, channels=1,
                             cache_items=64)
        return Predictor(model, pipe, max_batch=4, bucket=32)
    return make


def main():
    ds = SyntheticPAIP(RES, N_IMAGES)
    imgs = [ds[i].image for i in range(N_IMAGES)]
    model = make_model()

    # -- 1. traced fleet DES replay with a mid-run kill ------------------
    clock = SimClock()
    tracer = Tracer(clock=clock.now)     # virtual timestamps -> determinism
    router = build_fleet(predictor_factory(model), replicas=2,
                         clock=clock.now, service_model=ServiceModel(),
                         flush_deadline=0.02, result_cache_items=16,
                         tracer=tracer)
    arrivals = merge_traces(*[poisson_trace(60.0, 20, seed=100 + c,
                                            n_items=N_IMAGES)
                              for c in range(3)])
    kill_t = arrivals[len(arrivals) // 2].time
    report = run_fleet_load(router, arrivals, imgs, clock,
                            events=[ReplicaKill(kill_t, 1)])
    print(f"fleet replay: {report['requests_completed']} completed, "
          f"{report['rejected_submissions']} rejected, "
          f"{report['kills']} kill(s), throughput "
          f"{report['throughput']:.1f}/s (virtual)")

    # -- 2. export the Chrome trace --------------------------------------
    trace = write_chrome_trace(tracer, "trace.json")
    errors = validate_trace(trace)
    print(f"trace.json: {len(trace['traceEvents'])} events across "
          f"tracks {list(tracer.tracks)} "
          f"({'valid' if not errors else errors[:3]})")
    print("open it in https://ui.perfetto.dev or chrome://tracing")

    # -- 3. terminal views: flame summary + critical paths ---------------
    print("\n== flame summary (virtual seconds) ==")
    print(flame_text(tracer, min_seconds=1e-9))
    paths = critical_paths(tracer)
    batched = {rid: row for rid, row in paths.items() if "queue" in row}
    rid, row = max(batched.items(), key=lambda kv: kv[1]["total"])
    print(f"\n== slowest batched request (rid={rid}) ==")
    for field in ("queue", "batch_form", "plan", "execute", "stitch",
                  "total"):
        print(f"  {field:<11s} {row[field] * 1e3:8.3f} ms")
    outcomes = {}
    for row in paths.values():
        outcomes[row["outcome"]] = outcomes.get(row["outcome"], 0) + 1
    print(f"  outcomes: {outcomes}")

    # -- 4. wall-clock kernel profiling ----------------------------------
    prof = Tracer(profile_kernels=True)
    pred = Predictor(model, PatchPipeline(patch_size=4, split_value=SPLIT,
                                          channels=1, cache_items=64),
                     max_batch=4, bucket=32, tracer=prof)
    pred.predict_image(imgs[0])
    print("\n== kernel profile (real time, one image) ==")
    print(f"  {'op':<14s} {'calls':>5s} {'ms':>9s} {'GFLOP/s':>9s} "
          f"{'GB/s':>7s}")
    for op, row in prof.kernels.summary().items():
        print(f"  {op:<14s} {row['calls']:>5d} "
              f"{row['seconds'] * 1e3:>9.3f} {row['gflop_per_s']:>9.2f} "
              f"{row['gb_per_s']:>7.2f}")


if __name__ == "__main__":
    main()
