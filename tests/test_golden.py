"""Golden regression tests: checked-in digests of kernel outputs.

The equivalence suites prove the *batched* engines match the *reference*
implementations — but both could drift together if a refactor changed the
reference itself. These digests pin the reference outputs for fixed seeds:
Canny edge masks, quadtree leaf layouts, and octree leaf layouts. A kernel
refactor that silently changes any output (one flipped edge pixel, one
re-ordered leaf) fails here.

If a change is *intentional* (e.g. a deliberate algorithm fix), regenerate
the digests with the snippet in each test's docstring and update the tables
in the same commit, explaining why in the commit message.
"""

import hashlib

import numpy as np

from repro.data import generate_ct_volume, generate_wsi
from repro.imaging import gaussian_blur, to_grayscale
from repro.imaging.canny import canny_edges
from repro.patching import (AdaptivePatcher, APFConfig, VolumeAPFConfig,
                            VolumetricAdaptivePatcher)


def digest(*arrays) -> str:
    """Order-, shape- and dtype-sensitive blake2b digest of arrays."""
    h = hashlib.blake2b(digest_size=16)
    for a in arrays:
        a = np.ascontiguousarray(a)
        h.update(str(a.shape).encode())
        h.update(a.dtype.str.encode())
        h.update(a.tobytes())
    return h.hexdigest()


# Golden digests, pinned on x86_64 / numpy≥1.24. All inputs are fully
# deterministic (seeded synthetic data, integer leaf geometry, boolean edge
# masks), so these are stable across platforms unless a kernel changes.
CANNY_GOLDEN = {
    0: "943bbe44e1d6f7040c5c31379817b52f",
    1: "356a1ab1239e89effd39e2cfcaf51680",
    2: "20298dbeabf4b60038705c20dd85ea79",
}

QUADTREE_GOLDEN = {
    0: "90733a729ce48887f2f55d0a0358d6dc",
    1: "752fa938c026efc0d8e7321dfeb58e4c",
    2: "36390d1415632ab984e71ae9b37f53d9",
}

OCTREE_GOLDEN = {
    0: "17bc436d2f8c22a98846de6a9962fba3",
    1: "26b4048c78989a28a5735cd211bcc2e1",
}


class TestCannyGolden:
    def test_edge_masks_match_golden(self):
        """Regenerate: digest(canny_edges(gaussian_blur(gray, 3) * 255,
        100, 200)) for generate_wsi(64, seed)."""
        for seed, expected in CANNY_GOLDEN.items():
            g = to_grayscale(np.asarray(generate_wsi(64, seed=seed).image,
                                        dtype=np.float64))
            edges = canny_edges(gaussian_blur(g, 3) * 255.0, 100.0, 200.0)
            assert digest(edges) == expected, (
                f"Canny output changed for seed {seed} — if intentional, "
                f"update CANNY_GOLDEN (new digest {digest(edges)})")


class TestQuadtreeGolden:
    def test_leaf_layouts_match_golden(self):
        """Regenerate: digest(ys, xs, sizes, depths) of the Morton-sorted
        build_tree leaves for APFConfig(patch_size=4, split_value=8.0)."""
        for seed, expected in QUADTREE_GOLDEN.items():
            p = AdaptivePatcher(APFConfig(patch_size=4, split_value=8.0))
            leaves = p.build_tree(
                generate_wsi(64, seed=seed).image).sorted_by_morton()
            got = digest(leaves.ys, leaves.xs, leaves.sizes, leaves.depths)
            assert got == expected, (
                f"quadtree layout changed for seed {seed} — if intentional, "
                f"update QUADTREE_GOLDEN (new digest {got})")


class TestOctreeGolden:
    def test_leaf_layouts_match_golden(self):
        """Regenerate: digest(zs, ys, xs, sizes, depths) of the Morton-sorted
        build_tree leaves for VolumeAPFConfig(patch_size=4, split_value=8.0)
        on generate_ct_volume(32, 32, seed)."""
        for seed, expected in OCTREE_GOLDEN.items():
            p = VolumetricAdaptivePatcher(
                VolumeAPFConfig(patch_size=4, split_value=8.0))
            leaves = p.build_tree(
                generate_ct_volume(32, 32, seed=seed).volume
            ).sorted_by_morton()
            got = digest(leaves.zs, leaves.ys, leaves.xs, leaves.sizes,
                         leaves.depths)
            assert got == expected, (
                f"octree layout changed for seed {seed} — if intentional, "
                f"update OCTREE_GOLDEN (new digest {got})")

    def test_batched_paths_hit_the_same_goldens(self):
        """The batched engines must land on the identical golden layouts —
        ties the golden pins to the equivalence suite."""
        from repro.pipeline import BatchedVolumetricPatcher

        bp = BatchedVolumetricPatcher(
            VolumeAPFConfig(patch_size=4, split_value=8.0))
        vols = [generate_ct_volume(32, 32, seed=s).volume
                for s in sorted(OCTREE_GOLDEN)]
        for seed, tree in zip(sorted(OCTREE_GOLDEN),
                              bp.build_tree_batch(vols)):
            leaves = tree.sorted_by_morton()
            got = digest(leaves.zs, leaves.ys, leaves.xs, leaves.sizes,
                         leaves.depths)
            assert got == OCTREE_GOLDEN[seed]
