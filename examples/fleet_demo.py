"""Sharded serving fleet demo: router -> N engine replicas.

Walks the fleet layer end to end:
1. start a threaded fleet (``build_fleet`` stamps out N engines over
   per-replica Predictors), serve concurrent client threads through the
   router, and health-check every replica,
2. show digest affinity: repeated payloads route to the same replica, so
   the per-replica LRU result caches shard the working set instead of
   duplicating it,
3. lifecycle: drain a replica (finishes its queue, admits nothing new),
   restore it, then fail-stop a replica with a live backlog and watch the
   router re-hash its queue onto the survivors — futures resolve, nothing
   is lost,
4. rerun the workload **deterministically** on the fleet DES
   (``run_fleet_load`` under a simulated clock) at 1 vs 4 replicas, with
   a mid-run ``ReplicaKill``, and print the scaling factor.

Run:  PYTHONPATH=src python examples/fleet_demo.py
"""

import json
import threading

import numpy as np

from repro.data import SyntheticPAIP
from repro.models import ViTSegmenter
from repro.pipeline import PatchPipeline
from repro.serve import (Predictor, ReplicaKill, ServiceModel, SimClock,
                         build_fleet, merge_traces, poisson_trace,
                         run_fleet_load)

RES, N_IMAGES, SPLIT = 64, 12, 8.0


def make_factory(model):
    def factory(rank):
        pipe = PatchPipeline(patch_size=4, split_value=SPLIT, channels=1,
                             cache_items=64)
        return Predictor(model, pipe, max_batch=8, bucket=32)
    return factory


def sim_fleet(model, clock, replicas, **opts):
    return build_fleet(make_factory(model), replicas=replicas,
                       clock=clock.now, service_model=ServiceModel(),
                       flush_deadline=0.02, max_queue=64, **opts)


def main():
    ds = SyntheticPAIP(RES, N_IMAGES)
    imgs = [ds[i].image for i in range(N_IMAGES)]
    model = ViTSegmenter(patch_size=4, channels=1, dim=32, depth=2, heads=4,
                         max_len=512, rng=np.random.default_rng(0)).eval()

    # -- 1. threaded fleet: concurrent clients over 3 replicas -----------
    router = build_fleet(make_factory(model), replicas=3,
                         flush_deadline=0.01, max_queue=64,
                         result_cache_items=16)
    router.start(warmup=False)              # spawns one batcher per replica
    results = {}

    def client(i):
        results[i] = router.submit(imgs[i % N_IMAGES]).result(timeout=60)

    threads = [threading.Thread(target=client, args=(i,)) for i in range(16)]
    for t in threads:
        t.start()
    for t in threads:
        t.join()
    snap = router.stats()
    per_rank = {rank: rep["routed"] for rank, rep in snap["replicas"].items()}
    print(f"threaded fleet: {len(results)} futures resolved, "
          f"health {router.check()}, routed per replica {per_rank}")

    # -- 2. digest affinity: repeats hit the sharded caches --------------
    for fut in [router.submit(im) for im in imgs]:
        fut.result(timeout=60)
    router.drain_all()
    snap = router.stats()
    cache = snap["result_cache"]
    print(f"affinity: {snap['router']['affinity_hit']} repeat routes stayed "
          f"on their home replica; sharded caches hold {cache['items']} "
          f"items total, hit rate {cache['hit_rate']:.2f}")
    router.stop()

    # -- 3. lifecycle: drain / restore, then kill with re-homing ---------
    clock = SimClock()
    fleet = sim_fleet(model, clock, replicas=3)
    fleet.drain(0)
    print(f"drain:   replica 0 -> {fleet.check()[0]!r}, "
          f"drained={fleet.is_drained(0)}")
    fleet.restore(0)
    futures = [fleet.submit(im) for im in imgs]
    victim = max(fleet.replicas, key=lambda r: r.engine.pending)
    backlog = victim.engine.pending
    rerouted = fleet.kill(victim.rank)
    fleet.drain_all()                       # survivors retire the backlog
    assert all(f.exception() is None for f in futures)
    print(f"kill:    replica {victim.rank} failed with {backlog} queued -> "
          f"{rerouted} re-hashed onto survivors, all "
          f"{len(futures)} futures resolved "
          f"(reroute_failed={fleet.stats()['router'].get('reroute_failed', 0)})")

    # -- 4. deterministic fleet DES: 1 vs 4 replicas + mid-run kill ------
    trace = merge_traces(*[poisson_trace(60.0, 20, seed=200 + c,
                                         n_items=N_IMAGES)
                           for c in range(8)])
    ordered = sorted(trace, key=lambda a: (a.time, a.lane, a.item))
    reports = {}
    for n in (1, 4):
        clock = SimClock()
        fleet = sim_fleet(model, clock, replicas=n, result_cache_items=0)
        events = ()
        if n == 4:                          # fail-stop rank 1 a third in
            t_kill = ordered[0].time + (ordered[-1].time - ordered[0].time) / 3
            events = (ReplicaKill(time=t_kill, rank=1),)
        reports[n] = run_fleet_load(fleet, trace, imgs, clock, events=events)
    r1, r4 = reports[1], reports[4]
    print(f"fleet DES (8 clients): 4 replicas {r4['throughput']:.1f} req/s "
          f"vs 1 replica {r1['throughput']:.1f} req/s -> "
          f"{r4['throughput'] / r1['throughput']:.2f}x "
          f"(kills={r4['kills']}, rerouted={r4['rerouted']}, "
          f"failed={r4['failed']})")
    print("virtual latency @4: " + json.dumps(
        {k: round(r4['latency'][k], 4) for k in ('p50', 'p95', 'p99')}))


if __name__ == "__main__":
    main()
