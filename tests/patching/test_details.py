"""Per-leaf detail scores riding the quadtree/octree into sequences.

ISSUE 8: the Eq. 6 region mass that decided *not* to split a leaf is now
retained as ``details`` on the leaves and propagated through extraction,
batch kernels, and length fitting — the signal the sparsity fast path
grounds its background claims on. Zero must mean provably flat.
"""

import numpy as np

from repro.data import generate_wsi
from repro.patching import AdaptivePatcher, VolumetricAdaptivePatcher
from repro.quadtree import (balance_2to1, build_octree, build_quadtree,
                            build_quadtree_batch)
from repro.quadtree.octree import build_octree_batch


def corner_image(z=64, seed=0):
    img = np.full((z, z), 0.25)
    img[:8, :8] = np.random.default_rng(seed).random((8, 8))
    return img


def detail_map(img):
    return AdaptivePatcher(patch_size=4, split_value=8.0).detail_map(img)


class TestQuadtreeDetails:
    def test_details_are_the_leaf_region_sums(self):
        d = detail_map(generate_wsi(64, seed=0).image)
        leaves = build_quadtree(d, split_value=8.0, max_depth=10, min_size=4)
        assert leaves.details.shape == leaves.ys.shape
        for i in range(len(leaves.ys)):
            y, x, s = leaves.ys[i], leaves.xs[i], leaves.sizes[i]
            assert leaves.details[i] == d[y:y + s, x:x + s].sum()

    def test_flat_detail_map_scores_zero(self):
        leaves = build_quadtree(np.zeros((32, 32)), split_value=8.0,
                                max_depth=10, min_size=4)
        np.testing.assert_array_equal(leaves.details, 0.0)

    def test_reorder_permutes_details_with_geometry(self):
        d = detail_map(generate_wsi(64, seed=1).image)
        leaves = build_quadtree(d, split_value=8.0, max_depth=10, min_size=4)
        srt = leaves.sorted_by_morton()
        lut = {(y, x): m for y, x, m in
               zip(leaves.ys, leaves.xs, leaves.details)}
        for y, x, m in zip(srt.ys, srt.xs, srt.details):
            assert lut[(y, x)] == m

    def test_batch_builder_matches_reference_bitwise(self):
        ds = [detail_map(generate_wsi(64, seed=s).image) for s in range(3)]
        batched = build_quadtree_batch(np.stack(ds), split_value=8.0,
                                       max_depth=10, min_size=4)
        for d, got in zip(ds, batched):
            ref = build_quadtree(d, split_value=8.0, max_depth=10, min_size=4)
            np.testing.assert_array_equal(got.sorted_by_morton().details,
                                          ref.sorted_by_morton().details)

    def test_balance_drops_the_scores(self):
        # 2:1 balancing re-splits leaves; the split-time mass no longer
        # describes them, so balanced trees carry no details.
        d = detail_map(generate_wsi(64, seed=0).image)
        leaves = balance_2to1(build_quadtree(d, split_value=8.0, max_depth=10, min_size=4))
        assert leaves.details is None


class TestOctreeDetails:
    def _vol(self, seed=0):
        vol = np.zeros((16, 16, 16))
        vol[:4, :4, :4] = np.random.default_rng(seed).random((4, 4, 4))
        return vol

    def test_details_are_the_region_sums(self):
        d = self._vol()
        leaves = build_octree(d, split_value=0.5, max_depth=6, min_size=4)
        assert leaves.details.shape == leaves.ys.shape
        for i in range(len(leaves.ys)):
            z, y, x, s = (leaves.zs[i], leaves.ys[i], leaves.xs[i],
                          leaves.sizes[i])
            # The builder sums through the integral table — same value up
            # to float association.
            np.testing.assert_allclose(leaves.details[i],
                                       d[z:z + s, y:y + s, x:x + s].sum(),
                                       rtol=1e-10, atol=1e-12)

    def test_batch_frontier_matches_reference(self):
        ds = np.stack([self._vol(0), self._vol(1)])
        for ref_d, got in zip(ds, build_octree_batch(ds, split_value=0.5,
                                                     max_depth=6, min_size=4)):
            ref = build_octree(ref_d, split_value=0.5, max_depth=6, min_size=4)
            np.testing.assert_array_equal(got.sorted_by_morton().details,
                                          ref.sorted_by_morton().details)


class TestSequenceDetails:
    def test_extract_carries_details(self):
        seq = AdaptivePatcher(patch_size=4, split_value=8.0)(corner_image())
        assert seq.details is not None and len(seq.details) == len(seq)
        assert (seq.details == 0).any() and (seq.details > 0).any()
        # Zero score really is flat content.
        for i in np.flatnonzero(seq.details == 0):
            assert float(np.ptp(seq.patches[i])) == 0.0

    def test_pad_appends_zero_background_rows(self):
        p = AdaptivePatcher(patch_size=4, split_value=8.0)
        seq = p(corner_image())
        padded = p.fit_length(seq, len(seq) + 7)
        np.testing.assert_array_equal(padded.details[:len(seq)], seq.details)
        np.testing.assert_array_equal(padded.details[len(seq):], 0.0)

    def test_drop_subsets_details_with_geometry(self):
        p = AdaptivePatcher(patch_size=4, split_value=8.0)
        seq = p(corner_image())
        short = p.fit_length(seq, len(seq) - 3,
                             rng=np.random.default_rng(0))
        lut = {(y, x): m for y, x, m in
               zip(seq.ys, seq.xs, seq.details)}
        for y, x, m in zip(short.ys, short.xs, short.details):
            assert lut[(y, x)] == m

    def test_volumetric_extract_carries_details(self):
        vol = np.full((16, 16, 16), 0.3)
        vol[:4, :4, :4] = np.random.default_rng(0).random((4, 4, 4))
        seq = VolumetricAdaptivePatcher(patch_size=4, split_value=2.0)(vol)
        assert seq.details is not None and len(seq.details) == len(seq)
        assert (seq.details == 0).any()

    def test_pipeline_batch_matches_single_details(self):
        from repro.pipeline import PatchPipeline
        imgs = [corner_image(seed=s) for s in range(3)]
        pipe = PatchPipeline(patch_size=4, split_value=8.0, channels=1,
                             cache_items=0)
        ref = AdaptivePatcher(patch_size=4, split_value=8.0)
        for seq, img in zip(pipe.process(imgs, None), imgs):
            np.testing.assert_array_equal(seq.details, ref(img).details)
