"""End-to-end tests of the sparsity fast path through the serving stack.

The decisive properties (ISSUE 8): outputs stay shape-identical to dense;
the dense plan and the memo are *bitwise* mechanisms; short-circuit
engages exactly on quadtree-flat background; every decision is visible in
``stats["sparsity"]`` all the way up through ``engine.stats()``.
"""

import numpy as np
import pytest

from repro.models import ViTSegmenter
from repro.pipeline import PatchPipeline
from repro.serve import InferenceEngine, Predictor
from repro.sparse import SparsityConfig

SPLIT = 8.0


def corner_image(z=64, seed=0, block=8):
    """Flat slide with one noisy corner: flat siblings of detailed leaves."""
    img = np.full((z, z), 0.25)
    img[:block, :block] = np.random.default_rng(seed).random((block, block))
    return img


def _predictor(sparsity=None, bucket=4, max_len=256, cache_items=8):
    model = ViTSegmenter(patch_size=4, channels=1, dim=16, depth=1, heads=2,
                        max_len=max_len, rng=np.random.default_rng(1))
    pipe = PatchPipeline(patch_size=4, split_value=SPLIT, channels=1,
                         cache_items=cache_items)
    return Predictor(model, pipe, max_batch=3, bucket=bucket,
                     sparsity=sparsity)


class TestOffIsUntouched:
    def test_off_mode_attaches_no_runtime(self):
        p = _predictor(SparsityConfig(mode="off"))
        assert p.sparsity is None
        assert "sparsity" not in p.stats

    def test_default_is_byte_identical_to_baseline(self):
        img = corner_image()
        np.testing.assert_array_equal(_predictor().predict_image(img),
                                      _predictor(None).predict_image(img))


class TestDensePlanIsBitwise:
    def test_forced_dense_matches_no_sparsity(self):
        imgs = [corner_image(seed=s) for s in range(3)]
        base = _predictor().predict_batch(imgs)
        sparse = _predictor(SparsityConfig(mode="dense")).predict_batch(imgs)
        for a, b in zip(base, sparse):
            np.testing.assert_array_equal(a, b)

    def test_auto_on_all_detail_image_is_dense_and_bitwise(self):
        # Seed 4 splits to the patch-size floor with nonzero Eq. 6 mass in
        # every leaf — no background candidates at all.
        img = np.random.default_rng(4).random((32, 32))
        p = _predictor(SparsityConfig(mode="auto"))
        out = p.predict_image(img)
        assert p.stats["sparsity"]["plans"]["dense"] == 1
        assert p.stats["sparsity"]["plans"]["shortcircuit"] == 0
        np.testing.assert_array_equal(out, _predictor().predict_image(img))


class TestShortcircuit:
    def test_auto_engages_on_background_heavy_image(self):
        img = corner_image()
        p = _predictor(SparsityConfig(mode="auto"))
        out = p.predict_image(img)
        s = p.stats["sparsity"]
        assert s["plans"]["shortcircuit"] == 1
        # Cold table: the reduction comes from digest dedup (one in-context
        # representative per distinct flat digest), and those
        # representatives seed the table.
        assert s["tokens_merged"] >= 4
        assert s["table_seeds"] >= 1
        # Shape-identical, finite, and a probability map.
        assert out.shape == _predictor().predict_image(img).shape
        assert np.isfinite(out).all() and (out >= 0).all() and (out <= 1).all()

    def test_second_sighting_skips_via_the_table(self):
        p = _predictor(SparsityConfig(mode="auto"), cache_items=1)
        p.predict_image(corner_image(seed=0))
        assert p.stats["sparsity"]["tokens_skipped"] == 0   # cold table
        p.predict_image(corner_image(seed=1))               # same background
        s = p.stats["sparsity"]
        assert s["tokens_skipped"] > 0
        assert s["table_hits"] > 0

    def test_decision_log_carries_costs_and_deltas(self):
        p = _predictor(SparsityConfig(mode="auto"))
        p.predict_image(corner_image())
        d = p.stats["sparsity"]["last_decision"]
        assert d["plan"] == "shortcircuit"
        assert d["deltas"]["shortcircuit"] == 0.0     # provably flat only
        assert d["est_seconds"]["shortcircuit"] < d["est_seconds"]["dense"]
        assert d["n_background"] > 0

    def test_table_amortizes_across_images(self):
        p = _predictor(SparsityConfig(mode="auto"))
        p.predict_image(corner_image(seed=0))
        seeds_first = p.stats["sparsity"]["table_seeds"]
        assert seeds_first >= 1
        p.predict_image(corner_image(seed=1))
        # Same flat background content: digests repeat, nothing new to
        # seed — the second image serves straight from the table.
        assert p.stats["sparsity"]["table_seeds"] == seeds_first
        assert p.stats["sparsity"]["table_hits"] > 0

    def test_flat_regions_agree_with_dense(self):
        # Short-circuited leaves read either their digest group's
        # in-context representative row or an earlier sighting's seeded
        # row; on flat content that must stay close to the dense forward's
        # value for the same token (the residual is the global-attention
        # context of the specific sequence the row came from).
        img = corner_image()
        dense = _predictor().predict_image(img)
        sparse = _predictor(SparsityConfig(mode="auto")).predict_image(img)
        flat = np.s_[:, 32:, 32:]                     # far from the corner
        assert np.abs(dense[flat] - sparse[flat]).max() < 0.25

    def test_coarse_bucket_ties_back_to_dense(self):
        # With one giant bucket the reduced length compiles the same
        # signature — no predicted savings, so auto keeps dense.
        p = _predictor(SparsityConfig(mode="auto"), bucket=256)
        out = p.predict_image(corner_image())
        assert p.stats["sparsity"]["plans"]["dense"] == 1
        np.testing.assert_array_equal(
            out, _predictor(bucket=256).predict_image(corner_image()))

    def test_dense_plans_still_seed_the_table(self):
        # Warm-up must not depend on the chooser's verdict: a dense-plan
        # forward harvests its background rows into the table (and the
        # harvest never changes the dense output — asserted bitwise above).
        p = _predictor(SparsityConfig(mode="auto"), bucket=256)
        p.predict_image(corner_image())
        assert p.stats["sparsity"]["plans"]["dense"] == 1
        assert p.stats["sparsity"]["table_seeds"] >= 1

    def test_overflow_guard_falls_back_to_dense(self):
        # Natural length beyond the positional table would be randomly
        # dropped, destroying the row map — the runtime must run dense.
        img = np.random.default_rng(0).random((64, 64))
        img[32:, :] = 0.25                            # half flat, half detail
        p = _predictor(SparsityConfig(mode="shortcircuit"), max_len=16)
        out = p.predict_image(img)
        assert p.stats["sparsity"]["plans"]["dense"] == 1
        assert p.stats["sparsity"]["plans"]["shortcircuit"] == 0
        np.testing.assert_array_equal(
            out, _predictor(max_len=16).predict_image(img))


class TestMerge:
    def test_forced_merge_collapses_runs(self):
        p = _predictor(SparsityConfig(mode="merge"))
        out = p.predict_image(corner_image(z=128))
        s = p.stats["sparsity"]
        assert s["plans"]["merge"] == 1
        assert s["tokens_merged"] > 0
        assert out.shape == _predictor().predict_image(
            corner_image(z=128)).shape

    def test_auto_needs_epsilon_for_merge(self):
        # (Short-circuit's digest dedup also counts into tokens_merged, so
        # the epsilon gate is asserted on the plan verdict itself.)
        img = corner_image(z=128)
        p = _predictor(SparsityConfig(mode="auto"))
        p.predict_image(img)
        assert p.stats["sparsity"]["plans"]["merge"] == 0


class TestMemo:
    def test_replay_is_bitwise(self):
        p = _predictor(SparsityConfig(mode="auto"))
        img = corner_image()
        first = p.predict_image(img)
        second = p.predict_image(img)
        s = p.stats["sparsity"]
        assert s["memo_hits"] == 1
        np.testing.assert_array_equal(first, second)

    def test_memo_respects_content(self):
        p = _predictor(SparsityConfig(mode="auto"))
        p.predict_image(corner_image(seed=0))
        p.predict_image(corner_image(seed=1))
        assert p.stats["sparsity"]["memo_hits"] == 0


class TestFrontendVisibility:
    def test_engine_stats_surface_decisions(self):
        engine = InferenceEngine(_predictor(SparsityConfig(mode="auto")),
                                 max_queue=8)
        fut = engine.submit(corner_image())
        while engine.step(force=True) is not None:
            pass
        assert fut.result().shape[0] == 1
        s = engine.stats()["predictor"]["sparsity"]
        assert s["plans"]["shortcircuit"] == 1
        assert s["last_decision"]["plan"] == "shortcircuit"

    def test_streaming_report_counts_sparsity(self):
        from repro.stream import (ArraySource, MemorySink, StreamingRunner,
                                  plan_scene)
        scene = np.full((128, 128), 0.25)
        scene[:8, :8] = np.random.default_rng(0).random((8, 8))
        plan = plan_scene(scene.shape, tile=64, order="hilbert")
        runner = StreamingRunner(_predictor(SparsityConfig(mode="auto")))
        report = runner.run(ArraySource(scene), plan, MemorySink())
        assert report.sparsity is not None
        plans = {k: v for k, v in report.sparsity.items()
                 if k.startswith("plans_")}
        # Every streamed tile either got a plan or replayed from the memo.
        assert sum(plans.values()) + report.sparsity["memo_hits"] == \
            report.tiles_run
        assert report.sparsity["plans_shortcircuit"] >= 1

    def test_streaming_report_none_without_runtime(self):
        from repro.stream import (ArraySource, MemorySink, StreamingRunner,
                                  plan_scene)
        scene = np.full((64, 64), 0.25)
        plan = plan_scene(scene.shape, tile=64)
        report = StreamingRunner(_predictor()).run(
            ArraySource(scene), plan, MemorySink())
        assert report.sparsity is None


class TestValidation:
    def test_config_validation(self):
        with pytest.raises(ValueError):
            SparsityConfig(mode="sometimes")
        with pytest.raises(ValueError):
            SparsityConfig(epsilon=-0.1)
        with pytest.raises(ValueError):
            SparsityConfig(min_run=1)
        with pytest.raises(ValueError):
            SparsityConfig(table_items=0)
