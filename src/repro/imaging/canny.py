"""Canny edge detection (Canny, 1986), fully vectorized.

Pipeline: Sobel gradients → 4-direction non-maximum suppression →
double-threshold hysteresis (strong seeds grow into weak pixels via
connected-component labeling). The paper keeps thresholds at ``[100, 200]``
on 0-255 intensity scale; :func:`canny_edges` accepts either 0-1 or 0-255
inputs and normalizes thresholds accordingly.
"""

from __future__ import annotations


import numpy as np
from scipy import ndimage

from .filters import gaussian_blur, sobel_gradients

__all__ = ["canny_edges", "nonmax_suppression", "hysteresis"]


def nonmax_suppression(mag: np.ndarray, ang: np.ndarray) -> np.ndarray:
    """Thin edges: keep pixels that are local maxima along the gradient direction.

    The angle is quantized to {0°, 45°, 90°, 135°}; comparison neighbours are
    gathered with array shifts (no Python pixel loops).
    """
    h, w = mag.shape
    # Quantize angle to 4 sectors. Map to [0, pi).
    a = np.mod(ang, np.pi)
    sector = np.zeros_like(a, dtype=np.int8)
    sector[(a >= np.pi / 8) & (a < 3 * np.pi / 8)] = 1     # 45°
    sector[(a >= 3 * np.pi / 8) & (a < 5 * np.pi / 8)] = 2  # 90°
    sector[(a >= 5 * np.pi / 8) & (a < 7 * np.pi / 8)] = 3  # 135°

    padded = np.pad(mag, 1, mode="constant")

    def shift(dy: int, dx: int) -> np.ndarray:
        return padded[1 + dy:1 + dy + h, 1 + dx:1 + dx + w]

    # Neighbour pairs per sector (gradient direction, i.e. across the edge).
    n1 = [shift(0, 1), shift(-1, 1), shift(-1, 0), shift(-1, -1)]
    n2 = [shift(0, -1), shift(1, -1), shift(1, 0), shift(1, 1)]
    keep = np.zeros_like(mag, dtype=bool)
    for s in range(4):
        m = sector == s
        keep |= m & (mag >= n1[s]) & (mag >= n2[s])
    return np.where(keep, mag, 0.0)


def hysteresis(nms: np.ndarray, low: float, high: float) -> np.ndarray:
    """Double-threshold hysteresis via connected components.

    A weak pixel (``low <= m < high``) survives iff its 8-connected component
    contains at least one strong pixel (``m >= high``).
    """
    strong = nms >= high
    weak_or_strong = nms >= low
    structure = np.ones((3, 3), dtype=bool)  # 8-connectivity
    labels, n = ndimage.label(weak_or_strong, structure=structure)
    if n == 0:
        return np.zeros_like(nms, dtype=bool)
    has_strong = np.zeros(n + 1, dtype=bool)
    strong_labels = np.unique(labels[strong])
    has_strong[strong_labels] = True
    has_strong[0] = False
    return has_strong[labels]


def canny_edges(img: np.ndarray, low: float = 100.0, high: float = 200.0,
                blur_ksize: int = 0, sigma: float = 0.0) -> np.ndarray:
    """Canny edge map of a grayscale image.

    Parameters
    ----------
    img:
        (H, W) array in [0, 1] or [0, 255]. Values are rescaled internally so
        the paper's thresholds ``[100, 200]`` apply to both conventions.
    low, high:
        Hysteresis thresholds on the 0-255 gradient-magnitude scale.
    blur_ksize:
        Optional Gaussian pre-blur (0 disables; the APF pipeline blurs
        explicitly before calling this, matching Algorithm 1 lines 3-4).

    Returns
    -------
    (H, W) boolean edge mask.
    """
    f = np.asarray(img, dtype=np.float64)
    if f.ndim != 2:
        raise ValueError("canny_edges expects a grayscale (2-D) image")
    if low > high:
        raise ValueError(f"low threshold {low} exceeds high threshold {high}")
    if f.size and f.max() <= 1.0 + 1e-9:
        f = f * 255.0
    if blur_ksize:
        f = gaussian_blur(f, blur_ksize, sigma)
    _, _, mag, ang = sobel_gradients(f)
    nms = nonmax_suppression(mag, ang)
    return hysteresis(nms, low, high)
