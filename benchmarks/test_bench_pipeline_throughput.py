"""Pipeline throughput benchmark + CI regression gate.

Measures APF preprocessing throughput (images/sec) on 512x512 synthetic PAIP
WSIs at batch 32 under three configurations:

* ``single``   — the reference per-image loop, re-patching every epoch
                 (what the task adapters do without a pipeline);
* ``batched``  — :class:`BatchedAdaptivePatcher.extract_batch`, no cache;
* ``pipeline`` — :class:`PatchPipeline` with its LRU cache, i.e. the paper's
                 Algorithm-1 amortization: stages 1-5 run once per image,
                 later epochs pay a lookup plus the cheap drop stage.

The workload is a short training run (EPOCHS passes over the same 32
images). Results are written to ``BENCH_pipeline.json``; the committed
``BENCH_pipeline_baseline.json`` gates regressions: the run fails if
throughput drops below half the baseline (>2x regression) or if the pipeline
no longer clears 3x the single-image loop.
"""

import json
import os
import platform
import time
from pathlib import Path

import numpy as np
import pytest

from repro.data import generate_wsi
from repro.patching import AdaptivePatcher, APFConfig
from repro.perf import write_json_atomic
from repro.pipeline import BatchedAdaptivePatcher, PatchPipeline

BATCH = 32
RESOLUTION = 512
EPOCHS = 3
ROUNDS = 3          # median-of-N: noisy/shared hosts swing single runs 3-5x
CONFIG = dict(patch_size=8, split_value=8.0)

HERE = Path(__file__).resolve().parent
RESULT_PATH = HERE / "BENCH_pipeline.json"
BASELINE_PATH = HERE / "BENCH_pipeline_baseline.json"


def _images():
    return [generate_wsi(RESOLUTION, seed=s).image for s in range(BATCH)]


def _ips(n_images, seconds):
    return n_images / seconds if seconds > 0 else float("inf")


def _median_seconds(workload):
    """Median wall time of ROUNDS runs (each run sets up fresh state)."""
    times = []
    for _ in range(ROUNDS):
        run = workload()
        t0 = time.perf_counter()
        run()
        times.append(time.perf_counter() - t0)
    return float(np.median(times))


@pytest.mark.bench
def test_pipeline_throughput_and_regression_gate():
    imgs = _images()
    total = BATCH * EPOCHS

    # -- single-image reference loop, re-patched per epoch ----------------
    def single_workload():
        ref = AdaptivePatcher(APFConfig(**CONFIG))

        def run():
            for _ in range(EPOCHS):
                for im in imgs:
                    ref.extract_natural(im)
        return run

    single_s = _median_seconds(single_workload)

    # -- batched engine, no cache ----------------------------------------
    def batched_workload():
        bp = BatchedAdaptivePatcher(APFConfig(**CONFIG))

        def run():
            for _ in range(EPOCHS):
                bp.extract_natural_batch(imgs)
        return run

    batched_s = _median_seconds(batched_workload)

    # -- full pipeline: batched + LRU cache across epochs ----------------
    # Fresh pipeline per round so every round pays the cold first epoch.
    pipe = None

    def pipeline_workload():
        nonlocal pipe
        pipe = PatchPipeline(APFConfig(**CONFIG), cache_items=2 * BATCH)

        def run():
            for _ in range(EPOCHS):
                pipe.process(imgs, keys=list(range(BATCH)))
        return run

    pipeline_s = _median_seconds(pipeline_workload)
    ref = AdaptivePatcher(APFConfig(**CONFIG))
    bp = BatchedAdaptivePatcher(APFConfig(**CONFIG))

    # -- correctness guard: the fast path must stay bit-identical --------
    a = ref.extract_natural(imgs[0])
    b = bp.extract_natural_batch([imgs[0]])[0]
    np.testing.assert_array_equal(a.patches, b.patches)
    np.testing.assert_array_equal(a.ys, b.ys)

    result = {
        "workload": {"batch": BATCH, "resolution": RESOLUTION,
                     "epochs": EPOCHS, **CONFIG},
        "environment": {"cpus": os.cpu_count() or 1,
                        "machine": platform.machine()},
        "single_ips": round(_ips(total, single_s), 3),
        "batched_ips": round(_ips(total, batched_s), 3),
        "pipeline_ips": round(_ips(total, pipeline_s), 3),
        "speedup_batched_cold": round(single_s / batched_s, 3),
        "speedup_pipeline": round(single_s / pipeline_s, 3),
        "cache": pipe.stats,
    }
    result["cache"] = {k: (round(v, 4) if isinstance(v, float) else v)
                       for k, v in result["cache"].items()}
    # Atomic write: an interrupted run must not leave a truncated JSON that
    # would poison later regression gates.
    write_json_atomic(RESULT_PATH, result)
    print("\n" + json.dumps(result, indent=2))

    # -- acceptance: pipeline >= 3x the single-image loop ----------------
    assert result["speedup_pipeline"] >= 3.0, (
        f"pipeline speedup {result['speedup_pipeline']}x fell below the 3x "
        f"floor (single {result['single_ips']} ips, "
        f"pipeline {result['pipeline_ips']} ips)")
    # The batched engine must never be slower than the loop it replaces.
    assert result["speedup_batched_cold"] >= 1.0

    # -- regression gate vs committed baseline (>2x slowdown fails) ------
    # Absolute images/sec only compare across identical hardware; on a host
    # unlike the one that wrote the baseline, gate on the hardware-portable
    # speedup ratios instead so slower CI runners don't fail spuriously.
    if BASELINE_PATH.exists():
        baseline = json.loads(BASELINE_PATH.read_text())
        same_host = baseline.get("environment") == result["environment"]
        keys = (("single_ips", "batched_ips", "pipeline_ips") if same_host
                else ("speedup_batched_cold", "speedup_pipeline"))
        for key in keys:
            floor = baseline[key] / 2.0
            assert result[key] >= floor, (
                f"{key} regressed >2x: {result[key]} vs baseline "
                f"{baseline[key]} (floor {floor})")
