"""Batched APF preprocessing — the throughput engine behind the pipeline.

:class:`BatchedAdaptivePatcher` runs Algorithm 1's stages 1-5 for a whole
batch of images and produces **bit-identical** :class:`PatchSequence`s to the
per-image :class:`~repro.patching.adaptive.AdaptivePatcher` (the readable,
paper-faithful reference implementation). The speed comes from three places:

1. **Screened sparse Canny** (stages 1-2). Detail is spatially sparse — the
   paper's core premise — so most pixels cannot possibly reach the low
   hysteresis threshold. A cheap local bound (``|∇| ≤ 8·√2 · max₃ₓ₃ |Δ|`` for
   the 3×3 Sobel over adjacent differences) screens them out, and the exact
   Sobel / NMS / threshold arithmetic runs only on the surviving ~10%. Every
   retained computation replays the reference operations on the same scalars
   (same ufuncs, same tap order), so the resulting edge mask is equal
   bit-for-bit, not merely close.
2. **Level-synchronous batched quadtree** (stage 3) via
   :func:`~repro.quadtree.tree.build_quadtree_batch`: one shared frontier and
   a single ``_region_sums`` call per depth across all images.
3. **Buffer-reuse in the dense stages**: per-batch scratch arrays feed the
   blur/screen passes in place instead of allocating ~15 full-image
   temporaries per image.

Dense full-image work (blur, screening, gather) deliberately stays per-image
inside the batch loop: on bandwidth-bound hosts, streaming a (B, Z, Z)
float64 stack through elementwise ops is measurably *slower* than per-image
passes that fit in cache, while the small-array tree stage genuinely
amortizes across the shared frontier.
"""

from __future__ import annotations

from dataclasses import replace
from typing import List, Optional, Sequence

import numpy as np
from scipy import ndimage

from ..imaging import gaussian_blur, to_grayscale
from ..imaging.filters import KSIZE_FOR_RESOLUTION, gaussian_kernel1d
from ..patching.adaptive import AdaptivePatcher, _variance_detail
from ..patching.sequence import PatchSequence
from ..quadtree import QuadtreeLeaves, balance_2to1, build_quadtree_batch

__all__ = ["BatchedAdaptivePatcher"]

#: Sobel magnitude bound: |gx|, |gy| ≤ 8·max|Δ| over the 3×3 neighbourhood,
#: so mag = √(gx²+gy²) ≤ 8·√2·max|Δ|. The (1 - 1e-6) slack absorbs the ~1e-16
#: relative rounding of the screen itself; the bound stays a strict superset.
_SCREEN_FACTOR = 1.0 / (8.0 * np.sqrt(2.0)) * (1.0 - 1e-6)


class _Scratch:
    """Shape-keyed reusable buffer pool, allocated once per batch.

    Full-image float64 temporaries dominate the dense stages' cost on
    bandwidth-bound hosts; reusing them across the images of a batch keeps
    the working set hot instead of faulting fresh pages every image.
    """

    def __init__(self):
        self._bufs: dict = {}

    def get(self, name: str, shape, dtype=np.float64) -> np.ndarray:
        buf = self._bufs.get(name)
        if buf is None or buf.shape != shape or buf.dtype != dtype:
            buf = np.empty(shape, dtype=dtype)
            self._bufs[name] = buf
        return buf

    def get_zeros(self, name: str, shape, dtype=np.float64) -> np.ndarray:
        """Zero-filled on first allocation; callers must re-zero what they
        write so reuse stays all-zero."""
        buf = self._bufs.get(name)
        if buf is None or buf.shape != shape or buf.dtype != dtype:
            buf = np.zeros(shape, dtype=dtype)
            self._bufs[name] = buf
        return buf


def _blur3_exact(gray: np.ndarray, scratch: Optional[_Scratch] = None
                 ) -> np.ndarray:
    """3-tap separable Gaussian blur, bit-identical to ``gaussian_blur(g, 3)``.

    ``ndimage.correlate1d`` evaluates a symmetric 3-tap kernel as
    ``k₁·center + k₀·(left + right)``; replaying that exact accumulation with
    shifted whole-array ops reproduces its output bit-for-bit at a fraction
    of the cost (no per-line Python dispatch, no ndimage buffer copies).
    The result lives in a scratch buffer — consume it before the next call.
    """
    k = gaussian_kernel1d(3)
    sc = scratch if scratch is not None else _Scratch()
    pair = sc.get("blur_pair", gray.shape)
    t = sc.get("blur_t", gray.shape)
    out = sc.get("blur_out", gray.shape)
    # Vertical pass: t = k1*gray + k0*(up + down), reflect boundary.
    np.add(gray[:-2], gray[2:], out=pair[1:-1])      # rows 1..z-2
    np.add(gray[0], gray[1], out=pair[0])            # row 0: up reflects to 0
    np.add(gray[-2], gray[-1], out=pair[-1])         # row z-1: down reflects
    np.multiply(pair, k[0], out=pair)
    np.multiply(gray, k[1], out=t)
    np.add(t, pair, out=t)
    # Horizontal pass on t, same accumulation.
    np.add(t[:, :-2], t[:, 2:], out=pair[:, 1:-1])
    np.add(t[:, 0], t[:, 1], out=pair[:, 0])
    np.add(t[:, -2], t[:, -1], out=pair[:, -1])
    np.multiply(pair, k[0], out=pair)
    np.multiply(t, k[1], out=out)
    np.add(out, pair, out=out)
    return out


def _screen_candidates(f: np.ndarray, low: float,
                       scratch: Optional[_Scratch] = None) -> np.ndarray:
    """Boolean superset of ``{p : sobel_magnitude(f)(p) >= low}``.

    Built from adjacent differences and a separable 3×3 max filter — three
    cheap full-image passes instead of the full Sobel/NMS cascade.
    """
    sc = scratch if scratch is not None else _Scratch()
    d = sc.get("scr_d", f.shape)
    m = sc.get("scr_m", f.shape)
    out = sc.get("scr_out", f.shape)
    dx = sc.get("scr_dx", (f.shape[0], f.shape[1] - 1))
    dy = sc.get("scr_dy", (f.shape[0] - 1, f.shape[1]))
    np.subtract(f[:, 1:], f[:, :-1], out=dx)
    np.abs(dx, out=dx)
    np.subtract(f[1:, :], f[:-1, :], out=dy)
    np.abs(dy, out=dy)
    d.fill(0.0)
    np.maximum(d[:, :-1], dx, out=d[:, :-1])
    np.maximum(d[:, 1:], dx, out=d[:, 1:])
    np.maximum(d[:-1, :], dy, out=d[:-1, :])
    np.maximum(d[1:, :], dy, out=d[1:, :])
    m[:] = d
    np.maximum(m[:, :-1], d[:, 1:], out=m[:, :-1])
    np.maximum(m[:, 1:], d[:, :-1], out=m[:, 1:])
    out[:] = m
    np.maximum(out[:-1, :], m[1:, :], out=out[:-1, :])
    np.maximum(out[1:, :], m[:-1, :], out=out[1:, :])
    return out >= low * _SCREEN_FACTOR


def _sparse_canny(f: np.ndarray, low: float, high: float,
                  scratch: Optional[_Scratch] = None) -> np.ndarray:
    """Canny edge mask of a 0-255-scaled image, bit-identical to
    :func:`repro.imaging.canny.canny_edges` on the same input.

    Pixels outside the screen bound cannot reach ``low``; for the rest, the
    Sobel taps are accumulated in ``ndimage.correlate``'s order (zero weights
    skipped), and magnitude / angle / sector / NMS comparisons reuse the
    reference ufuncs on the gathered values. A pixel below the screen can
    never out-compare an NMS candidate (its magnitude is provably below
    ``low`` ≤ the candidate's), so treating it as 0 — exactly like the
    reference's zero padding — changes no decision.
    """
    z = f.shape[0]
    sc = scratch if scratch is not None else _Scratch()
    cand = _screen_candidates(f, low, sc)
    cy, cx = np.nonzero(cand)
    if not len(cy):
        return np.zeros((z, z), dtype=bool)

    # Symmetric pad (== ndimage mode="reflect") into a reused buffer.
    pad = sc.get("pad", (z + 2, z + 2))
    pad[1:-1, 1:-1] = f
    pad[1:-1, 0] = f[:, 0]
    pad[1:-1, -1] = f[:, -1]
    pad[0, :] = pad[1, :]
    pad[-1, :] = pad[-2, :]
    yy, xx = cy + 1, cx + 1
    v00 = pad[yy - 1, xx - 1]
    v01 = pad[yy - 1, xx]
    v02 = pad[yy - 1, xx + 1]
    v10 = pad[yy, xx - 1]
    v12 = pad[yy, xx + 1]
    v20 = pad[yy + 1, xx - 1]
    v21 = pad[yy + 1, xx]
    v22 = pad[yy + 1, xx + 1]
    # Tap order of ndimage.correlate(f, _SOBEL_X / _SOBEL_Y, mode="reflect").
    gx = (-1.0) * v00 + 1.0 * v02 + (-2.0) * v10 + 2.0 * v12 \
        + (-1.0) * v20 + 1.0 * v22
    gy = (-1.0) * v00 + (-2.0) * v01 + (-1.0) * v02 + 1.0 * v20 \
        + 2.0 * v21 + 1.0 * v22
    mag = np.hypot(gx, gy)
    ang = np.arctan2(gy, gx)

    # Sector quantization — same formulas as canny.nonmax_suppression.
    a = np.mod(ang, np.pi)
    sector = np.zeros_like(a, dtype=np.int8)
    sector[(a >= np.pi / 8) & (a < 3 * np.pi / 8)] = 1
    sector[(a >= 3 * np.pi / 8) & (a < 5 * np.pi / 8)] = 2
    sector[(a >= 5 * np.pi / 8) & (a < 7 * np.pi / 8)] = 3

    # Comparison neighbours per sector (gradient direction, across the edge).
    n1 = np.array([(0, 1), (-1, 1), (-1, 0), (-1, -1)], dtype=np.int64)
    magf = sc.get_zeros("magf", (z + 2, z + 2))
    magf[yy, xx] = mag      # 1-offset grid: out-of-image lookups read 0.0
    o1 = n1[sector]
    m1 = magf[yy + o1[:, 0], xx + o1[:, 1]]
    m2 = magf[yy - o1[:, 0], xx - o1[:, 1]]
    magf[yy, xx] = 0.0      # restore the all-zero reuse invariant
    keep = (mag >= m1) & (mag >= m2)

    weak = keep & (mag >= low)
    strong = keep & (mag >= high)
    ws = np.zeros((z, z), dtype=bool)
    ws[cy[weak], cx[weak]] = True
    labels, n = ndimage.label(ws, structure=np.ones((3, 3), dtype=bool))
    if n == 0:
        return np.zeros((z, z), dtype=bool)
    has_strong = np.zeros(n + 1, dtype=bool)
    has_strong[np.unique(labels[cy[strong], cx[strong]])] = True
    has_strong[0] = False
    return has_strong[labels]


class BatchedAdaptivePatcher(AdaptivePatcher):
    """APF preprocessing over whole batches of same-shape images.

    A drop-in superset of :class:`AdaptivePatcher`: single-image calls behave
    identically, and :meth:`extract_batch` processes ``B`` images at once.
    For a fresh patcher, ``extract_batch(images)`` returns byte-identical
    sequences to ``[AdaptivePatcher(cfg).extract(im) for im in images]`` —
    including the random drop stream, which is consumed in image order.

    Examples
    --------
    >>> patcher = BatchedAdaptivePatcher(APFConfig(patch_size=4))
    >>> seqs = patcher.extract_batch(images)        # list of PatchSequence
    """

    def detail_map_batch(self, images: Sequence[np.ndarray]) -> np.ndarray:
        """Stages 1-2 for a batch: (B, Z, Z) detail stack.

        Each slice is bit-identical to ``self.detail_map(images[b])``.
        """
        cfg = self.config
        scratch = _Scratch()
        out = None
        for i, image in enumerate(images):
            gray = to_grayscale(np.asarray(image, dtype=np.float64))
            z = gray.shape[0]
            if out is None:
                out = np.empty((len(images), z, z), dtype=np.float64)
            elif gray.shape != out.shape[1:]:
                raise ValueError("all images in a batch must share one shape")
            k = cfg.blur_ksize or KSIZE_FOR_RESOLUTION.get(z, 3)
            if k == 3 and z >= 2:
                blurred = _blur3_exact(gray, scratch)
            else:
                blurred = gaussian_blur(gray, k)
            if cfg.criterion == "canny":
                f = blurred
                # canny_edges rescales [0,1] inputs to the 0-255 scale.
                if f.size and f.max() <= 1.0 + 1e-9:
                    f = np.multiply(blurred, 255.0,
                                    out=scratch.get("fscale", blurred.shape))
                out[i] = _sparse_canny(f, cfg.canny_low, cfg.canny_high,
                                       scratch)
            else:
                out[i] = _variance_detail(
                    blurred, window=max(cfg.patch_size, 2)) * 16.0
        return out

    def build_tree_batch(
            self, images: Sequence[np.ndarray]) -> List[QuadtreeLeaves]:
        """Stage 3 for a batch: one level-synchronous build over all images."""
        detail = self.detail_map_batch(images)
        z = detail.shape[1]
        cfg = self.config
        if cfg.max_depth is None:
            depth = int(np.log2(z // cfg.patch_size))
        else:
            depth = cfg.max_depth
        trees = build_quadtree_batch(detail, cfg.split_value, depth,
                                     min_size=cfg.patch_size)
        if cfg.balance:
            trees = [balance_2to1(t) for t in trees]
        return trees

    def extract_batch(self, images: Sequence[np.ndarray],
                      trees: Optional[Sequence[QuadtreeLeaves]] = None,
                      natural: bool = False) -> List[PatchSequence]:
        """Full pipeline for a batch of same-shape images.

        Parameters
        ----------
        images:
            Sequence of (Z, Z) or (Z, Z, C) arrays, all one shape.
        trees:
            Optional precomputed partitions (one per image) to reuse.
        natural:
            Skip the pad/drop stage (like :meth:`extract_natural`).

        Returns
        -------
        One :class:`PatchSequence` per image, in input order.
        """
        if len(images) == 0:
            return []
        if trees is None:
            trees = self.build_tree_batch(images)
        cfg = self.config
        if natural and cfg.target_length is not None:
            cfg = replace(cfg, target_length=None)
        # Stages 4'-6 reuse the reference per-image gather: its leaf loops run
        # over one cache-resident image at a time (streaming a stacked
        # (B, Z, Z, C) array through the scatter-gather is slower on
        # bandwidth-bound hosts), and ``fit_length`` consumes the shared RNG
        # in image order — both bit-identical to the single-image loop by
        # construction.
        return [self.extract(im, leaves=tree, config=cfg)
                for im, tree in zip(images, trees)]

    def extract_natural_batch(
            self, images: Sequence[np.ndarray]) -> List[PatchSequence]:
        """Batch variant of :meth:`extract_natural` (no pad/drop stage)."""
        return self.extract_batch(images, natural=True)
