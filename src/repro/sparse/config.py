"""Configuration of the token-sparsity fast path."""

from __future__ import annotations

from dataclasses import dataclass

__all__ = ["SparsityConfig", "MODES", "PLANS"]

#: Valid values of :attr:`SparsityConfig.mode`.
MODES = ("off", "auto", "dense", "shortcircuit", "merge")
#: Plans the chooser ranks (``dense`` is always a candidate).
PLANS = ("dense", "shortcircuit", "merge")


@dataclass
class SparsityConfig:
    """Knobs of the inference-time token-sparsity subsystem.

    ``mode`` selects the plan policy:

    * ``"off"`` — the scheduler behaves exactly as without the subsystem
      (the :class:`~repro.serve.predictor.Predictor` default).
    * ``"auto"`` — the cost-model chooser picks the cheapest plan among
      dense / short-circuit / merge whose *predicted* quality delta is
      ``<= epsilon``. With the default ``epsilon = 0`` only plans the
      model predicts to be quality-neutral qualify: dense always, and
      short-circuit exactly when every routed-around token carries zero
      Eq. 6 detail mass (provably flat content). Merge's predicted delta
      is its merged-token fraction, so lossy merging stays **off by
      default** and needs an explicit ``epsilon > 0`` (or ``mode="merge"``).
    * ``"dense"`` / ``"shortcircuit"`` / ``"merge"`` — force one plan
      (short-circuit/merge degrade to dense when a sequence offers no
      background/merge tokens, or when the reduced sequence would still
      overflow the positional table and break the row mapping).

    Whenever ``mode != "off"`` the whole-sequence memo is also active: a
    sequence whose exact bytes were served before replays its stored
    stitched output — a pure cache, bitwise-identical to recomputation
    under the same configuration.
    """

    mode: str = "auto"
    #: Tokens with Eq. 6 detail mass <= this are background candidates.
    #: The default 0.0 admits only provably flat leaves (zero edge mass).
    detail_threshold: float = 0.0
    #: Maximum predicted quality delta a plan may carry in ``auto`` mode.
    epsilon: float = 0.0
    #: Content-quantization levels for token digests (unit range / levels).
    #: Coarser (smaller) values collapse more near-identical tokens into
    #: one digest; 0 disables quantization (exact-byte digests). Only
    #: quadtree-flat (sub-threshold Eq. 6 mass) tokens are digested for
    #: the table, and flat-but-noisy background shatters under fine grids
    #: into one-off digests that each keep a representative in-sequence —
    #: 8 keeps the table hot at a measured ~1 pp agreement cost vs 256.
    quantize: int = 8
    #: LRU capacity of the background logits table (distinct digests).
    table_items: int = 4096
    #: LRU capacity of the whole-sequence memo (stitched outputs).
    memo_items: int = 32
    #: Minimum background tokens before a short-circuit plan is formed —
    #: below this the bucket rarely shrinks, so the bookkeeping is pure
    #: overhead.
    min_background: int = 4
    #: Minimum run length (same quantized digest, same leaf size) that
    #: collapses to one representative in the merge plan.
    min_run: int = 2

    def __post_init__(self) -> None:
        if self.mode not in MODES:
            raise ValueError(f"unknown sparsity mode {self.mode!r}")
        if self.detail_threshold < 0:
            raise ValueError("detail_threshold must be >= 0")
        if self.epsilon < 0:
            raise ValueError("epsilon must be >= 0")
        if self.quantize < 0:
            raise ValueError("quantize must be >= 0")
        if self.table_items < 1 or self.memo_items < 1:
            raise ValueError("cache capacities must be >= 1")
        if self.min_background < 1:
            raise ValueError("min_background must be >= 1")
        if self.min_run < 2:
            raise ValueError("min_run must be >= 2")
