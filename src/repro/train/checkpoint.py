"""Checkpointing: save/restore model + optimizer state as ``.npz``.

Long Frontier runs checkpoint every few epochs; this module provides the
equivalent for the NumPy substrate, including exact optimizer-state resume
(Adam moments and step counter), verified bit-for-bit by the test-suite.
"""

from __future__ import annotations

import json
from typing import Dict, Optional

import numpy as np

from ..nn.modules import Module
from ..nn.optim import Adam, Optimizer, SGD

__all__ = ["save_checkpoint", "load_checkpoint"]

_META_KEY = "__checkpoint_meta__"


def save_checkpoint(path: str, model: Module,
                    optimizer: Optional[Optimizer] = None,
                    epoch: int = 0, extra: Optional[Dict] = None) -> None:
    """Write model parameters (+ optimizer state) to ``path`` (.npz)."""
    arrays: Dict[str, np.ndarray] = {}
    for name, p in model.named_parameters():
        arrays[f"param/{name}"] = p.data
    meta = {"epoch": epoch, "extra": extra or {}, "optimizer": None}
    if optimizer is not None:
        meta["optimizer"] = {"type": type(optimizer).__name__,
                             "lr": optimizer.lr}
        if isinstance(optimizer, Adam):
            meta["optimizer"]["t"] = optimizer.t
            for i, (m, v) in enumerate(zip(optimizer._m, optimizer._v)):
                arrays[f"opt/m/{i}"] = m
                arrays[f"opt/v/{i}"] = v
        elif isinstance(optimizer, SGD):
            for i, vel in enumerate(optimizer._velocity):
                arrays[f"opt/vel/{i}"] = vel
    arrays[_META_KEY] = np.frombuffer(
        json.dumps(meta).encode(), dtype=np.uint8)
    np.savez(path, **arrays)


def load_checkpoint(path: str, model: Module,
                    optimizer: Optional[Optimizer] = None) -> Dict:
    """Restore parameters (+ optimizer state) in place; returns metadata."""
    with np.load(path) as data:
        meta = json.loads(bytes(data[_META_KEY].tobytes()).decode())
        state = {name[len("param/"):]: data[name]
                 for name in data.files if name.startswith("param/")}
        model.load_state_dict(state)
        if optimizer is not None:
            opt_meta = meta.get("optimizer")
            if opt_meta is None:
                raise ValueError("checkpoint has no optimizer state")
            if opt_meta["type"] != type(optimizer).__name__:
                raise ValueError(
                    f"optimizer type mismatch: checkpoint has "
                    f"{opt_meta['type']}, got {type(optimizer).__name__}")
            optimizer.lr = opt_meta["lr"]
            if isinstance(optimizer, Adam):
                optimizer.t = opt_meta["t"]
                for i in range(len(optimizer.params)):
                    optimizer._m[i][...] = data[f"opt/m/{i}"]
                    optimizer._v[i][...] = data[f"opt/v/{i}"]
            elif isinstance(optimizer, SGD):
                for i in range(len(optimizer.params)):
                    optimizer._velocity[i][...] = data[f"opt/vel/{i}"]
    return meta
