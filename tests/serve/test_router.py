"""Tests for the fleet router: rendezvous affinity, lifecycle, re-homing."""

import numpy as np
import pytest

from repro.data import SyntheticPAIP
from repro.distributed import SimCluster
from repro.models.vit import ViTSegmenter
from repro.pipeline import PatchPipeline
from repro.pipeline.engine import _content_key
from repro.serve import (REPLICA_DOWN, REPLICA_DRAINING, REPLICA_UP,
                         EngineOverloaded, FleetRouter, InferenceEngine,
                         Predictor, ServiceModel, SimClock, rendezvous_order)

N_IMAGES = 8


def _images(n=N_IMAGES):
    ds = SyntheticPAIP(64, n)
    return [ds[i].image for i in range(n)]


def _model():
    return ViTSegmenter(patch_size=4, channels=1, dim=16, depth=1, heads=2,
                        max_len=256, rng=np.random.default_rng(1))


def _fleet(n=3, model=None, threaded=False, **engine_kw):
    model = model or _model()
    clock = SimClock()
    engines = []
    for _ in range(n):
        pipe = PatchPipeline(patch_size=4, split_value=8.0, channels=1,
                             cache_items=32)
        pred = Predictor(model, pipe, max_batch=4, bucket=16)
        if threaded:
            args = dict(flush_deadline=0.005, result_cache_items=16)
        else:
            args = dict(clock=clock.now, service_model=ServiceModel(),
                        flush_deadline=0.02, result_cache_items=16)
        args.update(engine_kw)
        engines.append(InferenceEngine(pred, **args))
    return FleetRouter(engines), clock


class TestRendezvous:
    def test_deterministic_and_order_insensitive(self):
        key = ("k", 1)
        assert rendezvous_order(key, [0, 1, 2, 3]) == \
            rendezvous_order(key, [3, 2, 1, 0])

    def test_minimal_disruption_on_removal(self):
        # dropping a rank only re-homes the keys that rank owned
        keys = [("img", i) for i in range(200)]
        full = {k: rendezvous_order(k, [0, 1, 2, 3])[0] for k in keys}
        reduced = {k: rendezvous_order(k, [0, 1, 3])[0] for k in keys}
        for k in keys:
            if full[k] != 2:
                assert reduced[k] == full[k]
            else:
                assert reduced[k] in (0, 1, 3)

    def test_spreads_keys(self):
        owners = {rendezvous_order(("img", i), [0, 1, 2, 3])[0]
                  for i in range(100)}
        assert owners == {0, 1, 2, 3}


class TestRouting:
    def test_affinity_same_digest_same_replica(self):
        router, _ = _fleet()
        imgs = _images()
        first = {}
        for rep in range(3):
            for i, im in enumerate(imgs):
                router.submit(im)
                digest = _content_key(np.asarray(im))
                rank = router.preference(digest)[0]
                first.setdefault(i, rank)
                assert first[i] == rank
            router.drain_all()
        # repeats of a payload are cache hits on its home replica
        stats = router.stats()
        assert stats["result_cache"]["hits"] == 2 * len(imgs)
        assert stats["router"]["affinity_hit"] == 3 * len(imgs)

    def test_volume_routes_whole_to_one_replica(self):
        router, _ = _fleet()
        vol = np.random.default_rng(0).random((4, 64, 64))
        fut = router.submit_volume(vol)
        routed = [r for r in router.replicas if r.engine.pending > 0]
        assert len(routed) == 1
        assert routed[0].engine.pending == vol.shape[0]
        router.drain_all()
        assert fut.result(timeout=5).shape == vol.shape

    def test_spill_on_overloaded_home(self):
        router, _ = _fleet(max_queue=1)
        imgs = _images()
        # same digest twice: second submission collapses in-flight (not a
        # spill); a *different* digest overflowing the home replica spills
        home = {i: router.preference(_content_key(np.asarray(im)))[0]
                for i, im in enumerate(imgs)}
        by_home = {}
        for i, im in enumerate(imgs):
            by_home.setdefault(home[i], []).append(i)
        crowd = max(by_home.values(), key=len)
        assert len(crowd) >= 2, "need two digests sharing a home replica"
        router.submit(imgs[crowd[0]])
        router.submit(imgs[crowd[1]])          # home full -> spills
        assert router.metrics.counter("spilled").value >= 1
        router.drain_all()

    def test_fleet_wide_rejection_carries_min_hint(self):
        router, _ = _fleet(n=2, max_queue=1)
        imgs = _images(6)
        with pytest.raises(EngineOverloaded) as exc_info:
            for im in imgs:
                router.submit(im)
        assert exc_info.value.retry_after >= 0
        assert router.metrics.counter("rejected").value == 1
        router.drain_all()

    def test_no_digest_round_robins(self):
        router, _ = _fleet(result_cache_items=0)
        for im in _images(6):
            router.submit(im)
        loads = [r.engine.pending for r in router.replicas]
        assert all(n == 2 for n in loads)
        router.drain_all()

    def test_strict_affinity_rejects_without_spill(self):
        router, _ = _fleet(max_queue=1)
        router.spill = False
        imgs = _images()
        home = {i: router.preference(_content_key(np.asarray(im)))[0]
                for i, im in enumerate(imgs)}
        by_home = {}
        for i in range(len(imgs)):
            by_home.setdefault(home[i], []).append(i)
        crowd = max(by_home.values(), key=len)
        assert len(crowd) >= 2
        router.submit(imgs[crowd[0]])
        with pytest.raises(EngineOverloaded):
            router.submit(imgs[crowd[1]])
        router.drain_all()


class TestLifecycle:
    def test_drain_stops_admission_but_retires_work(self):
        router, _ = _fleet()
        imgs = _images()
        target = router.preference(_content_key(np.asarray(imgs[0])))[0]
        router.submit(imgs[0])
        router.drain(target)
        assert router.replicas[target].state == REPLICA_DRAINING
        assert target not in router.live_ranks()
        # same digest now re-homes to the next preference
        router.submit(imgs[0])
        assert router.preference(_content_key(np.asarray(imgs[0])))[0] != target
        assert not router.is_drained(target)
        router.replicas[target].engine.drain()
        assert router.is_drained(target)
        retired = router.retire(target)
        assert retired.state == REPLICA_DOWN
        router.drain_all()

    def test_restore_returns_to_pool(self):
        router, _ = _fleet()
        router.drain(1)
        assert 1 not in router.live_ranks()
        router.restore(1)
        assert 1 in router.live_ranks()
        assert router.replicas[1].state == REPLICA_UP

    def test_retire_refuses_backlog(self):
        router, _ = _fleet()
        router.submit(_images(1)[0])
        busy = [r.rank for r in router.replicas if r.engine.pending][0]
        with pytest.raises(RuntimeError):
            router.retire(busy)
        router.drain_all()

    def test_down_replica_cannot_drain_or_restore(self):
        router, _ = _fleet()
        router.kill(2)
        with pytest.raises(ValueError):
            router.drain(2)
        with pytest.raises(ValueError):
            router.restore(2)
        assert router.kill(2) == 0          # idempotent

    def test_rank_validation(self):
        router, _ = _fleet(n=2)
        with pytest.raises(ValueError):
            router.drain(5)

    def test_topology_mismatch_rejected(self):
        router, _ = _fleet(n=2)
        engines = [r.engine for r in router.replicas]
        with pytest.raises(ValueError):
            FleetRouter(engines, cluster=SimCluster(3))
        with pytest.raises(ValueError):
            FleetRouter([])


class TestKillRehoming:
    def test_kill_rehomes_backlog_no_request_lost(self):
        """Regression: a replica kill must re-hash its queue, losing nothing."""
        router, _ = _fleet()
        imgs = _images()
        futures = [router.submit(im) for im in imgs]
        victim = max(router.replicas, key=lambda r: r.engine.pending)
        backlog = victim.engine.pending
        assert backlog > 0
        rerouted = router.kill(victim.rank)
        assert rerouted == backlog
        assert victim.engine.pending == 0
        router.drain_all()
        for fut in futures:
            assert fut.exception() is None
            assert fut.result().ndim == 3
        snap = router.stats()
        assert snap["router"]["rerouted"] == backlog
        assert snap["router"].get("reroute_failed", 0) == 0

    def test_kill_keeps_results_identical(self):
        imgs = _images()
        model = _model()
        router, _ = _fleet(model=model)
        futures = [router.submit(im) for im in imgs]
        victim = max(router.replicas, key=lambda r: r.engine.pending)
        router.kill(victim.rank)
        router.drain_all()
        pipe = PatchPipeline(patch_size=4, split_value=8.0, channels=1,
                             cache_items=32)
        reference = Predictor(model, pipe, max_batch=4,
                              bucket=16).predict_batch(imgs)
        for fut, ref in zip(futures, reference):
            np.testing.assert_array_equal(fut.result(), ref)

    def test_kill_transfers_collapsed_twins(self):
        router, _ = _fleet()
        im = _images(1)[0]
        first = router.submit(im)
        twin = router.submit(im)            # collapses onto the in-flight first
        victim = [r for r in router.replicas if r.engine.pending][0]
        router.kill(victim.rank)
        router.drain_all()
        np.testing.assert_array_equal(first.result(), twin.result())

    def test_kill_with_no_survivors_fails_futures(self):
        router, _ = _fleet(n=1)
        fut = router.submit(_images(1)[0])
        router.kill(0)
        assert isinstance(fut.exception(), EngineOverloaded)
        with pytest.raises(EngineOverloaded):
            router.submit(_images(1)[0])


class TestThreadedFleet:
    def test_start_stop_and_check(self):
        router, _ = _fleet(threaded=True)
        router.start(warmup=False)
        imgs = _images(4)
        futs = [router.submit(im) for im in imgs]
        for fut in futs:
            assert fut.result(timeout=30).ndim == 3
        assert router.check() == {0: REPLICA_UP, 1: REPLICA_UP, 2: REPLICA_UP}
        router.stop()

    def test_check_autokills_dead_batcher(self):
        router, _ = _fleet(threaded=True)
        router.start(warmup=False)
        victim = router.replicas[1].engine
        # simulate a crashed batcher: stop the thread without clearing it
        with victim._cond:
            victim._running = False
            victim._cond.notify_all()
        victim._thread.join()
        states = router.check()
        assert states[1] == REPLICA_DOWN
        router.stop()


class TestFleetStats:
    def test_merged_latency_is_fleet_wide(self):
        router, _ = _fleet()
        imgs = _images()
        for im in imgs:
            router.submit(im)
        router.drain_all()
        snap = router.stats()
        per_counts = [r.engine.metrics.histogram("latency").count
                      for r in router.replicas]
        assert snap["fleet"]["latency"]["count"] == sum(per_counts)
        assert snap["fleet"]["completed"] == len(imgs)
        assert set(snap["replicas"]) == {0, 1, 2}
        assert snap["topology"] == {"world_size": 3, "live": [0, 1, 2]}

    def test_lane_wise_queue_wait_merges_across_replicas(self):
        """stats() exposes per-lane queue-wait both per replica and merged
        fleet-wide (bucket counts add, so percentiles are true fleet
        percentiles, never averages of averages)."""
        router, _ = _fleet()
        imgs = _images()
        for i, im in enumerate(imgs):
            router.submit(im, lane="interactive" if i % 2 == 0 else "bulk")
        router.drain_all()
        snap = router.stats()
        fleet_lanes = snap["queue"]["wait_per_lane"]
        assert set(fleet_lanes) <= {"interactive", "bulk"}
        for lane, merged in fleet_lanes.items():
            per = [r["queue_wait_per_lane"].get(lane, {"count": 0})["count"]
                   for r in snap["replicas"].values()]
            assert merged["count"] == sum(per) > 0
        total = sum(m["count"] for m in fleet_lanes.values())
        assert total == len(imgs)

    def test_cache_shards_aggregate(self):
        router, _ = _fleet()
        imgs = _images(4)
        for _ in range(2):
            for im in imgs:
                router.submit(im)
            router.drain_all()
        snap = router.stats()
        cache = snap["result_cache"]
        assert cache["hits"] == len(imgs)
        assert cache["hit_rate"] == pytest.approx(0.5)
        assert cache["items"] == len(imgs)          # sharded, not duplicated
