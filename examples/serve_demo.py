"""Serving demo: trace -> compile -> work-graph scheduled Predictor.

Shows the compiled inference runtime end to end:
1. compile a ViTSegmenter forward once (trace -> plan with fused kernels
   and liveness-planned buffers) and verify it is bit-identical to the
   eager ``no_grad`` forward,
2. serve a stream of variable-length APF sequences through the
   ``Predictor`` — the synchronous-drain adapter over the shared
   ``WorkGraphScheduler`` (length bucketing, micro-batch formation,
   per-signature plan cache, vectorized stitch), the same scheduler the
   async engine, the fleet router and the streaming runner pump,
3. compare serving throughput against the pre-runtime per-image eager
   path, and run the BTCV-style slice-volume protocol.

Run:  PYTHONPATH=src python examples/serve_demo.py
"""

import time

import numpy as np

from repro import nn, runtime
from repro.data import SyntheticPAIP
from repro.models import ViTSegmenter
from repro.patching import AdaptivePatcher
from repro.pipeline import PatchPipeline
from repro.serve import Predictor
from repro.train.tasks import prepare_image

RES, N_IMAGES, EPOCHS, SPLIT = 256, 8, 3, 4.0


def main():
    ds = SyntheticPAIP(RES, N_IMAGES)
    imgs = [ds[i].image for i in range(N_IMAGES)]
    model = ViTSegmenter(patch_size=4, channels=1, dim=64, depth=4, heads=8,
                         max_len=1024, rng=np.random.default_rng(0))
    model.eval()
    pipe = PatchPipeline(patch_size=4, split_value=SPLIT, cache_items=64,
                         channels=1)

    # -- 1. one compiled plan, bit-identical to eager --------------------
    seqs = pipe.process(imgs[:4], keys=[0, 1, 2, 3])
    length = max(len(s) for s in seqs)
    fitted = [pipe.patcher.fit_length(s, length) for s in seqs]
    from repro.models.embedding import collate_sequences
    tokens, coords, valid = collate_sequences(fitted)
    cm = runtime.compile_model(model, tokens, coords, valid)
    with nn.no_grad():
        eager = model.forward(tokens, coords, valid).data
    compiled = cm(tokens, coords, valid)
    print(f"compiled plan: {cm.plan.stats}")
    print(f"bit-identical to eager forward: {np.array_equal(eager, compiled)}")

    # -- 2. micro-batched serving (a synchronous drain of the work graph:
    #       the scheduler buckets, batches, executes, stitches) ----------
    server = Predictor(model, pipe, max_batch=8, bucket=64)
    server.predict_batch(imgs, keys=list(range(N_IMAGES)))   # warm plans
    t0 = time.perf_counter()
    for epoch in range(EPOCHS):
        maps = server.predict_batch(imgs, keys=list(range(N_IMAGES)))
    t_served = time.perf_counter() - t0
    n = EPOCHS * N_IMAGES
    print(f"served {n} predictions in {t_served:.2f}s "
          f"({n / t_served:.1f} img/s); stats: {server.stats}")

    # -- 3. the pre-runtime path: per-image eager predict ----------------
    ref = AdaptivePatcher(pipe.config)
    t0 = time.perf_counter()
    for _ in range(EPOCHS):
        for im in imgs:
            seq = ref.extract_natural(prepare_image(im, 1).transpose(1, 2, 0))
            model.predict_mask(seq)
    t_eager = time.perf_counter() - t0
    print(f"eager per-image path: {t_eager:.2f}s ({n / t_eager:.1f} img/s) "
          f"-> serving speedup {t_eager / t_served:.2f}x")
    print(f"probability map shape: {maps[0].shape}")

    # -- 4. BTCV protocol: slice a volume through the 2-D server ---------
    volume = np.stack([prepare_image(im, 1)[0] for im in imgs[:6]])
    classes = server.predict_volume(volume)
    print(f"slice-volume protocol: {volume.shape} -> {classes.shape} "
          f"(classes {np.unique(classes)})")


if __name__ == "__main__":
    main()
