"""TransUNet-lite (Chen et al. 2021): CNN stem -> transformer bottleneck ->
convolutional decoder with skip connections.

Faithful at reduced width: the hybrid encoder downsamples 4x with
convolutions, runs dense self-attention on the resulting feature grid, and
decodes with two transposed-conv stages using the stem activations as skips.
Used as a baseline in Tables III and IV.
"""

from __future__ import annotations

from typing import Optional

import numpy as np

from .. import nn

__all__ = ["TransUNetLite"]


class TransUNetLite(nn.Module):
    def __init__(self, channels: int = 1, out_channels: int = 1,
                 stem_ch: int = 16, dim: int = 64, depth: int = 2,
                 heads: int = 4, max_hw: int = 256,
                 rng: Optional[np.random.Generator] = None, dtype=np.float32):
        super().__init__()
        rng = rng or np.random.default_rng(0)
        self.conv1 = nn.Conv2d(channels, stem_ch, kernel=3, stride=2, padding=1,
                               rng=rng, dtype=dtype)
        self.n1 = nn.GroupNorm(4 if stem_ch % 4 == 0 else 1, stem_ch, dtype=dtype)
        self.conv2 = nn.Conv2d(stem_ch, stem_ch * 2, kernel=3, stride=2, padding=1,
                               rng=rng, dtype=dtype)
        self.n2 = nn.GroupNorm(4 if (stem_ch * 2) % 4 == 0 else 1, stem_ch * 2,
                               dtype=dtype)
        self.proj_in = nn.Linear(stem_ch * 2, dim, rng=rng, dtype=dtype)
        self.pos = nn.Parameter(rng.normal(0, 0.02, size=(max_hw, dim)).astype(dtype))
        self.encoder = nn.TransformerEncoder(dim, depth, heads, mlp_ratio=2.0,
                                             rng=rng, dtype=dtype)
        self.proj_out = nn.Linear(dim, stem_ch * 2, rng=rng, dtype=dtype)
        self.up1 = nn.ConvTranspose2d(stem_ch * 2, stem_ch, kernel=2, stride=2,
                                      rng=rng, dtype=dtype)
        self.dec1 = nn.Conv2d(stem_ch * 2, stem_ch, kernel=3, padding=1,
                              rng=rng, dtype=dtype)
        self.nd1 = nn.GroupNorm(4 if stem_ch % 4 == 0 else 1, stem_ch, dtype=dtype)
        self.up2 = nn.ConvTranspose2d(stem_ch, stem_ch, kernel=2, stride=2,
                                      rng=rng, dtype=dtype)
        self.dec2 = nn.Conv2d(stem_ch, stem_ch, kernel=3, padding=1,
                              rng=rng, dtype=dtype)
        self.nd2 = nn.GroupNorm(4 if stem_ch % 4 == 0 else 1, stem_ch, dtype=dtype)
        self.out_conv = nn.Conv2d(stem_ch, out_channels, kernel=1, rng=rng,
                                  dtype=dtype)
        self.max_hw = max_hw
        self.dtype = dtype

    def forward(self, images) -> nn.Tensor:
        """(B, C, Z, Z) -> (B, out_channels, Z, Z) logits."""
        x = images if isinstance(images, nn.Tensor) else nn.Tensor(
            np.asarray(images, dtype=self.dtype))
        s1 = self.n1(self.conv1(x)).relu()           # (B, c, Z/2, Z/2)
        s2 = self.n2(self.conv2(s1)).relu()          # (B, 2c, Z/4, Z/4)
        b, c2, h, w = s2.shape
        n = h * w
        if n > self.max_hw:
            raise ValueError(f"feature grid {n} exceeds positional table "
                             f"{self.max_hw}; raise max_hw")
        tokens = s2.reshape(b, c2, n).transpose(0, 2, 1)   # (B, N, 2c)
        t = self.proj_in(tokens) + self.pos[:n]
        t = self.encoder(t)
        t = self.proj_out(t)                          # (B, N, 2c)
        f = t.transpose(0, 2, 1).reshape(b, c2, h, w)
        y = self.up1(f)                               # (B, c, Z/2)
        y = self.nd1(self.dec1(nn.concat([y, s1], axis=1))).relu()
        y = self.up2(y)                               # (B, c, Z)
        y = self.nd2(self.dec2(y)).relu()
        return self.out_conv(y)

    def predict_mask(self, image: np.ndarray) -> np.ndarray:
        with nn.no_grad():
            logits = self.forward(image[None])
        return 1.0 / (1.0 + np.exp(-logits.data[0]))
