"""α–β cost model projecting training time to cluster scale.

``seconds/image = training_flops / achieved_flops + allreduce(W) / imgs_per_step``

Data parallelism shards *images* across ranks, not the per-image work, so
per-image compute time does not divide by ``W`` — only the per-step gradient
all-reduce depends on world size (amortized over the images each rank
processes per step).

``achieved_flops`` is *calibrated* from a measured single-process run of this
repository's own transformer, so projections inherit the real constant factor
of the substrate; the paper-scale numbers in EXPERIMENTS.md are therefore
"shape-faithful" (who wins, by what factor) rather than absolute-time claims.
Defaults model a Frontier-like node: MI250X-class GPUs, 50 GB/s intra-node
fabric, 100 GB/s Slingshot between nodes (paper §IV-A).
"""

from __future__ import annotations

from dataclasses import dataclass

from .flops import TransformerConfig, inference_flops, training_flops

__all__ = ["ClusterSpec", "CostModel"]


@dataclass
class ClusterSpec:
    """Hardware constants of the modeled machine."""

    #: Achieved training FLOP/s per GPU (calibratable; MI250X-class default).
    achieved_flops: float = 2.0e13
    #: Per-message latency of one collective step (seconds).
    alpha: float = 10e-6
    #: Inverse bandwidth of the GPU interconnect (seconds per byte).
    beta: float = 1.0 / 50e9
    #: GPUs per node; rings larger than a node pay the slower inter-node beta.
    gpus_per_node: int = 4
    #: Inverse bandwidth between nodes (Slingshot-11: 100 GB/s).
    beta_internode: float = 1.0 / 100e9

    def __post_init__(self) -> None:
        if self.achieved_flops <= 0 or self.alpha < 0 or self.beta <= 0:
            raise ValueError("invalid cluster constants")


class CostModel:
    """Projects per-image training time for data-parallel transformer runs."""

    def __init__(self, spec: ClusterSpec = None):
        self.spec = spec or ClusterSpec()

    # -- calibration -----------------------------------------------------
    def calibrate(self, cfg: TransformerConfig, measured_seconds_per_image: float,
                  batch: int = 1) -> float:
        """Fit ``achieved_flops`` so the model reproduces a measured run.

        Returns the fitted value (also stored on the spec).
        """
        if measured_seconds_per_image <= 0:
            raise ValueError("measured time must be positive")
        flops = training_flops(cfg)
        self.spec.achieved_flops = flops / measured_seconds_per_image
        return self.spec.achieved_flops

    # -- components ------------------------------------------------------
    def compute_seconds_per_image(self, cfg: TransformerConfig) -> float:
        """Pure compute time per image.

        Independent of world size: data parallelism shards the *dataset*
        across ranks, not the per-image work. (The former ``world_size``
        parameter was accepted, validated, and never used — it is gone; rank
        effects enter only through :meth:`allreduce_seconds`.)
        """
        return training_flops(cfg) / self.spec.achieved_flops

    def inference_seconds(self, cfg: TransformerConfig) -> float:
        """Forward-only seconds for one sequence of ``cfg.seq_len`` tokens.

        The unit the sparsity plan chooser ranks candidate plans by; calibrate
        with :meth:`calibrate_inference` against a measured forward so the
        comparison inherits the substrate's real constant factor.
        """
        return inference_flops(cfg) / self.spec.achieved_flops

    def calibrate_inference(self, cfg: TransformerConfig,
                            measured_seconds: float) -> float:
        """Fit ``achieved_flops`` from a measured forward pass (stored)."""
        if measured_seconds <= 0:
            raise ValueError("measured time must be positive")
        self.spec.achieved_flops = inference_flops(cfg) / measured_seconds
        return self.spec.achieved_flops

    def allreduce_seconds(self, nbytes: float, world_size: int) -> float:
        """Ring all-reduce time: ``2(W-1)/W * bytes * beta + 2(W-1) * alpha``.

        Rings spanning nodes pay the inter-node bandwidth.
        """
        if world_size <= 1:
            return 0.0
        w = world_size
        beta = (self.spec.beta if w <= self.spec.gpus_per_node
                else self.spec.beta_internode)
        return 2.0 * (w - 1) / w * nbytes * beta + 2.0 * (w - 1) * self.spec.alpha

    # -- headline projection ----------------------------------------------
    def seconds_per_image(self, cfg: TransformerConfig, world_size: int = 1,
                          param_bytes: float = 50e6,
                          images_per_rank_step: int = 1) -> float:
        """End-to-end training seconds per image at scale.

        Data parallelism divides *images* across ranks, so per-image compute
        time is unchanged but each rank only processes ``1/W`` of the
        dataset; the per-step all-reduce is amortized over the images each
        rank handles per step.
        """
        compute = self.compute_seconds_per_image(cfg)
        comm = self.allreduce_seconds(param_bytes, world_size) / max(
            images_per_rank_step, 1)
        return compute + comm

    def speedup(self, cfg_base: TransformerConfig, cfg_new: TransformerConfig,
                world_base: int = 1, world_new: int = 1,
                param_bytes: float = 50e6) -> float:
        """Ratio of projected sec/image: base over new (paper's speedup)."""
        t_base = self.seconds_per_image(cfg_base, world_base, param_bytes)
        t_new = self.seconds_per_image(cfg_new, world_new, param_bytes)
        return t_base / t_new
