"""Concurrent-access regression test for the PatchPipeline LRU cache.

The async engine shares one pipeline between client submit threads and the
batcher thread; before the cache lock, concurrent ``process`` calls could
corrupt the LRU's OrderedDict mid-``move_to_end`` or double-count stats.
This test hammers a small, eviction-heavy cache from many threads and
checks both survival and result correctness."""

import threading

import numpy as np

from repro.data import SyntheticPAIP
from repro.pipeline import PatchPipeline


def _images(n, res=32):
    ds = SyntheticPAIP(res, n)
    return [ds[i].image for i in range(n)]


def test_concurrent_process_is_safe_and_correct():
    n_images, n_threads, rounds = 12, 8, 6
    imgs = _images(n_images)
    # tiny capacity forces constant evictions -> maximal OrderedDict churn
    pipe = PatchPipeline(patch_size=4, split_value=8.0, channels=1,
                         cache_items=4)
    reference = PatchPipeline(patch_size=4, split_value=8.0, channels=1,
                              cache_items=0)
    expected = reference.process(imgs)

    errors = []
    barrier = threading.Barrier(n_threads)

    def worker(tid):
        rng = np.random.default_rng(tid)
        try:
            barrier.wait()
            for _ in range(rounds):
                idx = rng.permutation(n_images)[:6]
                out = pipe.process([imgs[i] for i in idx], keys=list(idx))
                for i, seq in zip(idx, out):
                    np.testing.assert_array_equal(seq.tokens(),
                                                  expected[i].tokens())
                pipe.stats  # concurrent stats reads under the same lock
        except BaseException as exc:  # noqa: BLE001 - surfaced below
            errors.append((tid, exc))

    threads = [threading.Thread(target=worker, args=(t,))
               for t in range(n_threads)]
    for t in threads:
        t.start()
    for t in threads:
        t.join()
    assert not errors, f"concurrent pipeline access failed: {errors[:2]}"

    stats = pipe.stats
    assert len(pipe.cache) <= 4
    assert stats["hits"] + stats["misses"] == n_threads * rounds * 6


def test_single_thread_semantics_unchanged_by_lock():
    imgs = _images(4)
    pipe = PatchPipeline(patch_size=4, split_value=8.0, channels=1,
                         cache_items=8)
    first = pipe.process(imgs, keys=[0, 1, 2, 3])
    again = pipe.process(imgs, keys=[0, 1, 2, 3])
    for a, b in zip(first, again):
        assert a is b                     # cache hits return the same object
    assert pipe.stats["hits"] == 4
    assert pipe.stats["misses"] == 4
