"""Shared infrastructure for the per-table/figure experiment runners.

Every runner follows the same contract: a ``run_*`` function takes a
:class:`ExperimentScale` (defaults are laptop-sized; the paper's scales are
recorded alongside) and returns a result object with ``rows()`` for printing
and raw fields for the benchmark assertions. EXPERIMENTS.md records
paper-reported vs measured values for each.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Optional, Sequence

import numpy as np

from .. import nn
from ..data import SyntheticPAIP, generate_wsi, train_val_test_split
from ..models import UNETR2D, ViTSegmenter
from ..patching import AdaptivePatcher, UniformPatcher
from ..train import Trainer, TokenSegmentationTask, UNETRTask

__all__ = ["ExperimentScale", "format_table", "make_unetr_task",
           "make_vit_token_task", "paip_splits", "geomean"]


@dataclass
class ExperimentScale:
    """Knobs shrinking the paper's workloads to the measured substrate.

    The defaults complete in seconds per experiment; raise them for closer
    shapes (benchmarks use the defaults).
    """

    resolution: int = 32          #: image side (paper: 512 … 65,536)
    n_samples: int = 10           #: dataset size (paper: 2,457 WSIs)
    epochs: int = 4               #: training epochs (paper: 200-300)
    dim: int = 24                 #: model width (paper: ViT-B-ish)
    depth: int = 2                #: encoder depth (paper: 12)
    heads: int = 2
    batch_size: int = 2           #: paper: 16
    lr: float = 3e-3
    seed: int = 0


def geomean(values: Sequence[float]) -> float:
    """Geometric mean (the paper's headline aggregation for speedups)."""
    v = np.asarray(list(values), dtype=float)
    if len(v) == 0 or (v <= 0).any():
        raise ValueError("geomean needs positive values")
    return float(np.exp(np.log(v).mean()))


def format_table(headers: Sequence[str], rows: Sequence[Sequence]) -> str:
    """Plain-text table matching the paper's row layout."""
    cols = [[str(h)] + [str(r[i]) for r in rows] for i, h in enumerate(headers)]
    widths = [max(len(c) for c in col) for col in cols]
    def fmt(row):
        return "  ".join(str(c).ljust(w) for c, w in zip(row, widths))
    lines = [fmt(headers), fmt(["-" * w for w in widths])]
    lines += [fmt(r) for r in rows]
    return "\n".join(lines)


def ensure_nonempty_splits(train: list, val: list, test: list):
    """Guarantee non-empty val/test for tiny datasets by borrowing from train
    (the 0.7/0.1/0.2 fractions round to zero below 10 samples)."""
    if not val and len(train) > 1:
        val.append(train.pop())
    if not test and len(train) > 1:
        test.append(train.pop())
    if not test:
        test = list(val)
    return train, val, test


def paip_splits(scale: ExperimentScale):
    """Materialized 0.7/0.1/0.2 splits of the synthetic PAIP dataset."""
    ds = SyntheticPAIP(scale.resolution, n=scale.n_samples, base_seed=scale.seed)
    tr, va, te = train_val_test_split(ds, seed=scale.seed)
    take = lambda sub: [sub[i] for i in range(len(sub))]
    return ensure_nonempty_splits(take(tr), take(va), take(te))


def natural_target_length(scale: ExperimentScale, patch: int,
                          split_value: float, headroom: float = 1.25,
                          probes: int = 3) -> int:
    """Batching length for adaptive sequences: headroom above the empirical
    natural length so the random-drop step fires rarely (dropping real leaves
    punches coverage holes in training targets)."""
    patcher = AdaptivePatcher(patch_size=patch, split_value=split_value,
                              seed=scale.seed)
    lens = []
    for i in range(probes):
        img = generate_wsi(scale.resolution, seed=scale.seed + i).image.mean(axis=2)
        lens.append(len(patcher.extract_natural(img)))
    cap = max((scale.resolution // patch) ** 2, 4)
    return int(min(cap, max(8, np.ceil(max(lens) * headroom))))


def make_unetr_task(scale: ExperimentScale, patch: int, adaptive: bool,
                    split_value: float = 2.0,
                    target_length: Optional[int] = None) -> UNETRTask:
    """APF-UNETR or uniform-UNETR task at the given patch size."""
    max_len = max((scale.resolution // patch) ** 2, 4)
    model = UNETR2D(patch_size=patch, channels=1, dim=scale.dim,
                    depth=scale.depth, heads=scale.heads, max_len=max_len,
                    decoder_ch=8, rng=np.random.default_rng(scale.seed))
    if adaptive:
        if target_length is None:
            target_length = natural_target_length(scale, patch, split_value)
        patcher = AdaptivePatcher(patch_size=patch, split_value=split_value,
                                  target_length=target_length, seed=scale.seed)
    else:
        patcher = UniformPatcher(patch)
    return UNETRTask(model, patcher, channels=1)


def make_vit_token_task(scale: ExperimentScale, patch: int, adaptive: bool,
                        split_value: float = 2.0,
                        target_length: Optional[int] = None) -> TokenSegmentationTask:
    """APF-ViT or uniform-ViT token segmentation task."""
    max_len = max((scale.resolution // patch) ** 2, 4)
    model = ViTSegmenter(patch_size=patch, channels=1, dim=scale.dim,
                         depth=scale.depth, heads=scale.heads, max_len=max_len,
                         rng=np.random.default_rng(scale.seed))
    if adaptive:
        if target_length is None:
            target_length = natural_target_length(scale, patch, split_value)
        patcher = AdaptivePatcher(patch_size=patch, split_value=split_value,
                                  target_length=target_length, seed=scale.seed)
    else:
        patcher = UniformPatcher(patch)
    return TokenSegmentationTask(model, patcher, channels=1)


def make_trainer(task, scale: ExperimentScale) -> Trainer:
    opt = nn.AdamW(task.parameters(), lr=scale.lr)
    return Trainer(task, opt, batch_size=scale.batch_size, seed=scale.seed)
