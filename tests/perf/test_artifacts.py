"""Tests for crash-safe benchmark artifact writes."""

import json
import os

import pytest

from repro.perf import write_json_atomic


class TestWriteJsonAtomic:
    def test_round_trip(self, tmp_path):
        path = tmp_path / "BENCH_x.json"
        payload = {"speedup": 4.2, "nested": {"a": [1, 2, 3]}}
        write_json_atomic(path, payload)
        assert json.loads(path.read_text()) == payload
        assert path.read_text().endswith("\n")

    def test_overwrites_existing(self, tmp_path):
        path = tmp_path / "BENCH_x.json"
        write_json_atomic(path, {"v": 1})
        write_json_atomic(path, {"v": 2})
        assert json.loads(path.read_text()) == {"v": 2}

    def test_no_temp_file_left_behind(self, tmp_path):
        path = tmp_path / "BENCH_x.json"
        write_json_atomic(path, {"v": 1})
        assert os.listdir(tmp_path) == ["BENCH_x.json"]

    def test_unserializable_payload_keeps_old_file(self, tmp_path):
        path = tmp_path / "BENCH_x.json"
        write_json_atomic(path, {"v": 1})
        with pytest.raises(TypeError):
            write_json_atomic(path, {"v": object()})
        # Old baseline intact, no temp debris.
        assert json.loads(path.read_text()) == {"v": 1}
        assert os.listdir(tmp_path) == ["BENCH_x.json"]

    def test_accepts_str_paths(self, tmp_path):
        path = str(tmp_path / "BENCH_x.json")
        write_json_atomic(path, [1, 2])
        assert json.loads(open(path).read()) == [1, 2]
