"""Cross-module integration tests: full pipelines from synthetic data to
metrics, exercising the public API the examples use."""

import numpy as np
import pytest

from repro import nn
from repro.data import (SyntheticBTCV, SyntheticPAIP, generate_wsi,
                        train_val_test_split)
from repro.models import UNETR2D, ViTClassifier, ViTSegmenter
from repro.patching import AdaptivePatcher, CachingPatcher, UniformPatcher
from repro.train import (SequenceClassificationTask, TokenSegmentationTask,
                         Trainer, UNETRTask, load_checkpoint, save_checkpoint)


def paip(n=6, z=32):
    return [generate_wsi(z, seed=i) for i in range(n)]


class TestSegmentationPipeline:
    def test_apf_vit_learns(self):
        samples = paip(6, 64)
        patcher = AdaptivePatcher(patch_size=4, split_value=2.0,
                                  target_length=96)
        model = ViTSegmenter(patch_size=4, channels=1, dim=24, depth=2,
                             heads=2, max_len=144,
                             rng=np.random.default_rng(0))
        task = TokenSegmentationTask(model, patcher, channels=1)
        tr = Trainer(task, nn.AdamW(task.parameters(), lr=3e-3), batch_size=3)
        hist = tr.fit(samples[:4], samples[4:], epochs=6)
        assert hist.train_loss[-1] < hist.train_loss[0]
        assert hist.best_metric > 0

    def test_cached_patcher_end_to_end_matches_eval(self):
        samples = paip(4, 32)
        base = AdaptivePatcher(patch_size=4, split_value=2.0, target_length=48)
        cached = CachingPatcher(AdaptivePatcher(patch_size=4, split_value=2.0,
                                                target_length=48))
        m1 = ViTSegmenter(patch_size=4, channels=1, dim=16, depth=1, heads=2,
                          max_len=64, rng=np.random.default_rng(1))
        m2 = ViTSegmenter(patch_size=4, channels=1, dim=16, depth=1, heads=2,
                          max_len=64, rng=np.random.default_rng(1))
        t1 = TokenSegmentationTask(m1, base, channels=1)
        t2 = TokenSegmentationTask(m2, cached, channels=1)
        # Same weights → same eval dice (eval path has no randomness).
        assert t1.evaluate(samples) == pytest.approx(t2.evaluate(samples))
        assert cached.cache.misses == len(samples)

    def test_unetr_pipeline_with_dataset_splits(self):
        ds = SyntheticPAIP(32, n=8)
        tr_s, va_s, te_s = train_val_test_split(ds)
        train = [tr_s[i] for i in range(len(tr_s))]
        val = [va_s[i] for i in range(len(va_s))] or train[-1:]
        model = UNETR2D(patch_size=4, channels=1, dim=16, depth=2, heads=2,
                        max_len=64, decoder_ch=8)
        task = UNETRTask(model, UniformPatcher(4), channels=1)
        trainer = Trainer(task, nn.AdamW(task.parameters(), lr=3e-3),
                          batch_size=2)
        hist = trainer.fit(train, val, epochs=2)
        assert hist.epochs == 2
        probs = task.predict_probs(train[0])
        assert probs.shape == (1, 32, 32)


class TestClassificationPipeline:
    def test_apf_classifier_learns_training_set(self):
        # Maximal class contrast: organ 0 (few big lesions) vs 5 (specks).
        samples = [generate_wsi(64, seed=i, organ=(i % 2) * 5)
                   for i in range(8)]
        for s in samples:
            s.organ = s.organ // 5  # relabel {0,5} → {0,1}
        patcher = AdaptivePatcher(patch_size=4, split_value=2.0,
                                  target_length=192)
        model = ViTClassifier(patch_size=4, channels=3, dim=24, depth=1,
                              heads=2, max_len=192, num_classes=2,
                              rng=np.random.default_rng(2))
        task = SequenceClassificationTask(model, patcher, channels=3)
        tr = Trainer(task, nn.AdamW(task.parameters(), lr=1e-2), batch_size=4)
        losses = [tr.train_epoch(samples) for _ in range(10)]
        assert losses[-1] < losses[0]


class TestCheckpointedTraining:
    def test_trainer_resume_continues_improving(self, tmp_path):
        samples = paip(4, 32)
        patcher = UniformPatcher(8)

        def fresh():
            m = ViTSegmenter(patch_size=8, channels=1, dim=16, depth=1,
                             heads=2, max_len=16, rng=np.random.default_rng(7))
            t = TokenSegmentationTask(m, patcher, channels=1)
            return m, t, nn.AdamW(t.parameters(), lr=3e-3)

        model, task, opt = fresh()
        tr = Trainer(task, opt, batch_size=2, seed=1)
        tr.fit(samples[:3], samples[3:], epochs=2)
        path = str(tmp_path / "mid.npz")
        save_checkpoint(path, model, opt, epoch=2)

        model2, task2, opt2 = fresh()
        meta = load_checkpoint(path, model2, opt2)
        assert meta["epoch"] == 2
        tr2 = Trainer(task2, opt2, batch_size=2, seed=2)
        hist = tr2.fit(samples[:3], samples[3:], epochs=2)
        assert np.isfinite(hist.train_loss).all()


class TestBTCVVolumetricPipeline:
    def test_unet_volume_inference(self):
        from repro.models import UNet
        from repro.train import ImageSegmentationTask
        from repro.train.volumetric import slices_to_volume_task

        ds = SyntheticBTCV(32, n_subjects=2, slices_per_subject=3)
        train = [ds[i] for i in range(3)]        # subject 0's slices
        task = ImageSegmentationTask(
            UNet(channels=1, out_channels=14, widths=(8, 16)),
            channels=1, multiclass=14)
        trainer = Trainer(task, nn.AdamW(task.parameters(), lr=3e-3),
                          batch_size=3)
        trainer.fit(train, train, epochs=2)
        vol_score = slices_to_volume_task(task, [ds[i] for i in range(3, 6)])
        assert 0.0 <= vol_score <= 100.0


class TestDistributedPipeline:
    def test_multi_step_dp_training_loop(self):
        from repro.distributed import DataParallelSimulator

        samples = paip(8, 32)
        patcher = UniformPatcher(8)
        model = ViTSegmenter(patch_size=8, channels=1, dim=16, depth=1,
                             heads=2, max_len=16, rng=np.random.default_rng(3))
        task = TokenSegmentationTask(model, patcher, channels=1)
        sim = DataParallelSimulator(task, nn.AdamW(task.parameters(), lr=3e-3),
                                    world_size=4)
        losses = [sim.step(samples).loss for _ in range(4)]
        assert losses[-1] < losses[0]
        # Simulated timing fields stay sane across steps.
        report = sim.step(samples)
        assert report.simulated_step_seconds > report.simulated_comm_seconds
