"""``repro.models`` — the model zoo of the paper's evaluation.

Every segmentation model consumes either raw images (U-Net, TransUNet, Swin)
or :class:`~repro.patching.PatchSequence` batches (ViT, UNETR) — the latter
work with uniform *and* adaptive patching unchanged, which is the paper's
central compatibility claim.
"""

from .embedding import PatchEmbedding, collate_sequences
from .hipt import HIPTLite
from .scatter import scatter_tokens_to_grid, token_index_map
from .swin import SwinUNETRLite
from .transunet import TransUNetLite
from .unet import UNet
from .unetr import UNETR2D
from .vit import ViTBackbone, ViTClassifier, ViTSegmenter, VolumeViTSegmenter

__all__ = [
    "PatchEmbedding", "collate_sequences",
    "ViTBackbone", "ViTSegmenter", "VolumeViTSegmenter", "ViTClassifier",
    "UNETR2D", "UNet", "TransUNetLite", "SwinUNETRLite", "HIPTLite",
    "scatter_tokens_to_grid", "token_index_map",
]
