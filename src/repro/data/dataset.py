"""Dataset / split / loader plumbing (paper §IV-B training protocol).

Samples are generated lazily and deterministically from per-index seeds, so a
"dataset" is just (kind, resolution, count, base_seed) — no disk needed, and
two processes constructing the same dataset see identical samples (which is
what makes the simulated data-parallel training in ``repro.distributed``
exact).
"""

from __future__ import annotations

from typing import Iterator, Optional, Sequence, Tuple

import numpy as np

from .synthetic_btcv import BTCVSample, generate_ct_slice
from .synthetic_paip import PAIPSample, generate_wsi
from .synthetic_volume import CTVolume, generate_ct_volume

__all__ = ["SyntheticPAIP", "SyntheticBTCV", "SyntheticVolumes", "Subset",
           "train_val_test_split", "DataLoader"]


class SyntheticPAIP:
    """Lazy PAIP-like dataset of ``n`` WSIs at a fixed resolution."""

    def __init__(self, resolution: int, n: int, base_seed: int = 0,
                 organ: Optional[int] = None):
        if n < 1:
            raise ValueError("dataset must contain at least one sample")
        self.resolution = resolution
        self.n = n
        self.base_seed = base_seed
        self.organ = organ

    def __len__(self) -> int:
        return self.n

    def __getitem__(self, i: int) -> PAIPSample:
        if not 0 <= i < self.n:
            raise IndexError(i)
        return generate_wsi(self.resolution, seed=self.base_seed + i,
                            organ=self.organ)


class SyntheticBTCV:
    """Lazy BTCV-like dataset: ``n_subjects`` scans x ``slices_per_subject``."""

    def __init__(self, resolution: int, n_subjects: int,
                 slices_per_subject: int = 1, base_seed: int = 0):
        if n_subjects < 1 or slices_per_subject < 1:
            raise ValueError("dataset must contain at least one sample")
        self.resolution = resolution
        self.n_subjects = n_subjects
        self.slices = slices_per_subject
        self.base_seed = base_seed

    def __len__(self) -> int:
        return self.n_subjects * self.slices

    def __getitem__(self, i: int) -> BTCVSample:
        if not 0 <= i < len(self):
            raise IndexError(i)
        subject, sl = divmod(i, self.slices)
        return generate_ct_slice(self.resolution, seed=self.base_seed + subject,
                                 slice_index=sl - self.slices // 2)


class SyntheticVolumes:
    """Lazy BTCV-like dataset of ``n`` cubic (Z, Z, Z) CT volumes.

    The volumetric analogue of :class:`SyntheticBTCV`: each sample is a
    :class:`~repro.data.synthetic_volume.CTVolume` whose ``image`` is the
    cubic scan the octree patcher consumes.
    """

    def __init__(self, resolution: int, n: int, base_seed: int = 0):
        if n < 1:
            raise ValueError("dataset must contain at least one sample")
        self.resolution = resolution
        self.n = n
        self.base_seed = base_seed

    def __len__(self) -> int:
        return self.n

    def __getitem__(self, i: int) -> CTVolume:
        if not 0 <= i < self.n:
            raise IndexError(i)
        return generate_ct_volume(self.resolution, self.resolution,
                                  seed=self.base_seed + i)


class Subset:
    """An index-remapped view of a dataset."""

    def __init__(self, dataset, indices: Sequence[int]):
        self.dataset = dataset
        self.indices = list(indices)

    def __len__(self) -> int:
        return len(self.indices)

    def __getitem__(self, i: int):
        return self.dataset[self.indices[i]]


def train_val_test_split(dataset, fractions: Tuple[float, float, float] = (0.7, 0.1, 0.2),
                         seed: int = 0) -> Tuple[Subset, Subset, Subset]:
    """Shuffled split per the paper: 0.7 train / 0.1 val / 0.2 test.

    Every sample lands in exactly one split; rounding remainders go to train.
    """
    if abs(sum(fractions) - 1.0) > 1e-9:
        raise ValueError(f"fractions must sum to 1, got {fractions}")
    n = len(dataset)
    order = np.random.default_rng(seed).permutation(n)
    n_val = int(n * fractions[1])
    n_test = int(n * fractions[2])
    n_train = n - n_val - n_test
    return (Subset(dataset, order[:n_train]),
            Subset(dataset, order[n_train:n_train + n_val]),
            Subset(dataset, order[n_train + n_val:]))


class DataLoader:
    """Minimal batching iterator over a dataset of sample objects.

    By default yields lists of samples (collation is model-specific in this
    codebase: the adaptive patcher runs per image before batching tokens).
    With ``pipeline=`` set to a :class:`~repro.pipeline.engine.PatchPipeline`,
    each batch is instead preprocessed + collated in one shot and yielded as
    a :class:`~repro.pipeline.collate.CollatedBatch` — dataset indices serve
    as cache keys, so epoch 2 onwards is nearly free.
    """

    def __init__(self, dataset, batch_size: int = 1, shuffle: bool = False,
                 seed: int = 0, drop_last: bool = False, pipeline=None):
        if batch_size < 1:
            raise ValueError("batch_size must be >= 1")
        self.dataset = dataset
        self.batch_size = batch_size
        self.shuffle = shuffle
        self.seed = seed
        self.drop_last = drop_last
        self.pipeline = pipeline
        self._epoch = 0

    def __len__(self) -> int:
        n = len(self.dataset)
        if self.drop_last:
            return n // self.batch_size
        return (n + self.batch_size - 1) // self.batch_size

    def __iter__(self) -> Iterator:
        n = len(self.dataset)
        epoch = self._epoch
        self._epoch += 1
        if self.shuffle:
            order = np.random.default_rng((self.seed, epoch)).permutation(n)
        else:
            order = np.arange(n)
        for start in range(0, n, self.batch_size):
            idx = order[start:start + self.batch_size]
            if self.drop_last and len(idx) < self.batch_size:
                break
            samples = [self.dataset[int(i)] for i in idx]
            if self.pipeline is None:
                yield samples
            else:
                yield self.pipeline.collate_samples(
                    samples, epoch=epoch, keys=[int(i) for i in idx])
