"""Batched-vs-single volumetric equivalence: the batched octree engine must
reproduce the reference per-volume patcher bit-for-bit, including the random
drop stream — plus the dimension-generic pipeline/loader/trainer pathway."""

import numpy as np
import pytest

from repro import nn
from repro.data import DataLoader, SyntheticVolumes, generate_ct_volume
from repro.models import VolumeViTSegmenter
from repro.patching import VolumeAPFConfig, VolumetricAdaptivePatcher
from repro.pipeline import (BatchedVolumetricPatcher, CollatedBatch,
                            PatchPipeline)
from repro.quadtree import build_octree, build_octree_batch
from repro.train import (Trainer, VolumeSegmentationTask, predict_volume,
                         predict_volume_batched)


def volumes(res, n, start=0):
    return [generate_ct_volume(res, res, seed=start + s).volume
            for s in range(n)]


def assert_vseq_identical(a, b):
    np.testing.assert_array_equal(a.patches, b.patches)
    np.testing.assert_array_equal(a.zs, b.zs)
    np.testing.assert_array_equal(a.ys, b.ys)
    np.testing.assert_array_equal(a.xs, b.xs)
    np.testing.assert_array_equal(a.sizes, b.sizes)
    np.testing.assert_array_equal(a.valid, b.valid)
    assert a.volume_size == b.volume_size
    assert a.patch_size == b.patch_size
    assert a.n_real == b.n_real
    assert a.n_dropped == b.n_dropped


class TestExactKernels:
    def test_detail_map_batch_bit_identical(self):
        vols = volumes(32, 4)
        for overrides in (dict(), dict(blur_sigma=2.0),
                          dict(detail_quantile=0.9),
                          dict(detail_quantile=0.5)):
            cfg = VolumeAPFConfig(**overrides)
            ref = VolumetricAdaptivePatcher(cfg)
            batch = BatchedVolumetricPatcher(cfg).detail_map_batch(vols)
            for i, v in enumerate(vols):
                np.testing.assert_array_equal(batch[i], ref.detail_map(v))

    def test_detail_map_flat_volume(self):
        # A constant volume has zero gradient everywhere: threshold 0 and
        # strict comparison leave the mask empty in both implementations.
        flat = [np.full((16, 16, 16), 0.5)]
        ref = VolumetricAdaptivePatcher().detail_map(flat[0])
        bat = BatchedVolumetricPatcher().detail_map_batch(flat)[0]
        np.testing.assert_array_equal(bat, ref)

    def test_rejects_non_3d(self):
        with pytest.raises(ValueError):
            BatchedVolumetricPatcher().detail_map_batch([np.zeros((8, 8))])

    def test_empty_batch_returns_empty_stack(self):
        out = BatchedVolumetricPatcher().detail_map_batch([])
        assert isinstance(out, np.ndarray)
        assert out.size == 0

    def test_invalid_config_raises_like_reference(self):
        # The batched path must reject exactly what the per-volume
        # reference rejects — not silently diverge.
        vols = volumes(32, 1)
        cfg = VolumeAPFConfig(split_value=-1.0)
        with pytest.raises(ValueError):
            VolumetricAdaptivePatcher(cfg).extract(vols[0])
        with pytest.raises(ValueError):
            BatchedVolumetricPatcher(cfg).extract_batch(vols)


class TestBatchedOctree:
    def test_batch_matches_single_builds(self):
        rng = np.random.default_rng(0)
        details = [(rng.random((16, 16, 16)) > 0.95).astype(float)
                   for _ in range(5)]
        batch = build_octree_batch(details, 2.0, 3, min_size=2)
        for d, t in zip(details, batch):
            ref = build_octree(d, 2.0, 3, min_size=2)
            np.testing.assert_array_equal(t.zs, ref.zs)
            np.testing.assert_array_equal(t.ys, ref.ys)
            np.testing.assert_array_equal(t.xs, ref.xs)
            np.testing.assert_array_equal(t.sizes, ref.sizes)
            np.testing.assert_array_equal(t.depths, ref.depths)
            assert t.nodes_visited == ref.nodes_visited
            assert t.size == ref.size

    def test_empty_batch(self):
        assert build_octree_batch([], 1.0, 3) == []

    def test_rejects_mixed_shapes(self):
        with pytest.raises(ValueError):
            build_octree_batch([np.zeros((8, 8, 8)), np.zeros((16, 16, 16))],
                               1.0, 3)

    def test_rejects_non_pow2(self):
        with pytest.raises(ValueError):
            build_octree_batch([np.zeros((12, 12, 12))], 1.0, 3)


CONFIGS = [
    dict(patch_size=4, split_value=8.0),
    dict(patch_size=4, split_value=2.0, target_length=200),
    dict(patch_size=8, split_value=8.0, target_length=64),
    dict(patch_size=4, split_value=1.0, target_length=150,
         drop_strategy="coarsest-first"),
    dict(patch_size=2, split_value=4.0, max_depth=3),
    dict(patch_size=4, split_value=8.0, blur_sigma=0.5, detail_quantile=0.9),
]


class TestBatchedEquivalence:
    @pytest.mark.parametrize("overrides", CONFIGS)
    def test_byte_identical_to_reference(self, overrides):
        vols = volumes(32, 4)
        cfg = VolumeAPFConfig(seed=7, **overrides)
        # Fresh patchers: both consume their drop RNG in volume order.
        ref = VolumetricAdaptivePatcher(cfg)
        singles = [ref.extract(v) for v in vols]
        batched = BatchedVolumetricPatcher(cfg).extract_batch(vols)
        assert len(batched) == len(vols)
        for a, b in zip(singles, batched):
            assert_vseq_identical(a, b)

    def test_natural_batch_skips_drop(self):
        vols = volumes(32, 3)
        bp = BatchedVolumetricPatcher(patch_size=4, split_value=1.0,
                                      target_length=10)
        nat = bp.extract_natural_batch(vols)
        assert all(s.valid.all() for s in nat)
        assert any(len(s) != 10 for s in nat)

    def test_single_volume_api_unchanged(self):
        v = volumes(32, 1)[0]
        cfg = VolumeAPFConfig(patch_size=4, split_value=8.0)
        assert_vseq_identical(VolumetricAdaptivePatcher(cfg)(v),
                              BatchedVolumetricPatcher(cfg)(v))

    def test_empty_batch(self):
        assert BatchedVolumetricPatcher(patch_size=4).extract_batch([]) == []

    def test_rejects_mixed_shapes(self):
        bp = BatchedVolumetricPatcher(patch_size=4)
        with pytest.raises(ValueError):
            bp.extract_batch([np.zeros((16, 16, 16)), np.zeros((32, 32, 32))])


class TestVolumetricPipeline:
    def test_collate_shapes(self):
        vols = volumes(32, 3)
        pipe = PatchPipeline(VolumeAPFConfig(patch_size=4, split_value=4.0,
                                             target_length=96),
                             cache_items=8)
        batch = pipe.collate(vols)
        assert isinstance(batch, CollatedBatch)
        assert batch.tokens.shape == (3, 96, 64)      # Pm³ = 64
        assert batch.coords.shape == (3, 96, 4)       # (cz, cy, cx, scale)
        assert batch.valid.shape == (3, 96)
        assert np.all(batch.tokens[~batch.valid] == 0.0)

    def test_cache_hits_on_repeat_keys(self):
        vols = volumes(32, 3)
        pipe = PatchPipeline(VolumeAPFConfig(patch_size=4, split_value=4.0),
                             cache_items=8)
        pipe.process(vols, keys=[0, 1, 2])
        pipe.process(vols, keys=[0, 1, 2])
        assert pipe.stats["misses"] == 3
        assert pipe.stats["hits"] == 3

    def test_worker_count_invariant(self):
        vols = volumes(32, 5)
        base = PatchPipeline(VolumeAPFConfig(patch_size=4, split_value=4.0,
                                             target_length=96),
                             cache_items=0)
        for workers in (2, 3):
            pipe = PatchPipeline(VolumeAPFConfig(patch_size=4, split_value=4.0,
                                                 target_length=96),
                                 cache_items=0, workers=workers)
            a = base.collate(vols, epoch=1)
            b = pipe.collate(vols, epoch=1)
            np.testing.assert_array_equal(a.tokens, b.tokens)
            np.testing.assert_array_equal(a.coords, b.coords)
            np.testing.assert_array_equal(a.valid, b.valid)

    def test_channels_rejected(self):
        with pytest.raises(ValueError):
            PatchPipeline(VolumeAPFConfig(), channels=1)

    def test_overrides_rejected_with_config(self):
        with pytest.raises(ValueError):
            PatchPipeline(VolumeAPFConfig(), patch_size=4)

    def test_single_volume_call_applies_target_length(self):
        pipe = PatchPipeline(VolumeAPFConfig(patch_size=4, split_value=4.0,
                                             target_length=64),
                             cache_items=4)
        seq = pipe(volumes(32, 1)[0])
        assert len(seq) == 64


class TestVolumetricTraining:
    def test_loader_yields_collated_batches(self):
        ds = SyntheticVolumes(32, 4)
        pipe = PatchPipeline(VolumeAPFConfig(patch_size=4, split_value=4.0,
                                             target_length=96),
                             cache_items=16)
        loader = DataLoader(ds, batch_size=2, pipeline=pipe)
        batches = list(loader)
        assert len(batches) == 2
        assert all(isinstance(b, CollatedBatch) for b in batches)
        # Second epoch: all patching served from cache.
        misses = pipe.stats["misses"]
        list(loader)
        assert pipe.stats["misses"] == misses

    def test_trainer_fit_loader_volumetric(self):
        ds = SyntheticVolumes(32, 4)
        pipe = PatchPipeline(VolumeAPFConfig(patch_size=4, split_value=4.0,
                                             target_length=96),
                             cache_items=16)
        loader = DataLoader(ds, batch_size=2, shuffle=True, pipeline=pipe)
        model = VolumeViTSegmenter(patch_size=4, dim=16, depth=1, heads=2,
                                   max_len=512)
        task = VolumeSegmentationTask(model, pipe)
        trainer = Trainer(task, nn.SGD(task.parameters(), lr=0.05))
        history = trainer.fit_loader(loader, [ds[0]], epochs=2)
        assert history.epochs == 2
        assert all(np.isfinite(v) for v in history.train_loss)
        # Octree preprocessing ran once per train volume plus once for the
        # val volume — not once per epoch.
        assert pipe.stats["misses"] == 5

    def test_task_non_collated_path_matches_finiteness(self):
        ds = SyntheticVolumes(32, 2)
        pipe = PatchPipeline(VolumeAPFConfig(patch_size=4, split_value=4.0,
                                             target_length=96),
                             cache_items=4)
        model = VolumeViTSegmenter(patch_size=4, dim=16, depth=1, heads=2,
                                   max_len=512)
        task = VolumeSegmentationTask(model, pipe)
        loss = task.batch_loss([ds[0], ds[1]])
        assert np.isfinite(float(loss.data))
        assert 0.0 <= task.evaluate([ds[0]]) <= 100.0

    def test_collated_loss_requires_samples(self):
        pipe = PatchPipeline(VolumeAPFConfig(patch_size=4, split_value=4.0,
                                             target_length=96),
                             cache_items=0)
        model = VolumeViTSegmenter(patch_size=4, dim=16, depth=1, heads=2,
                                   max_len=512)
        task = VolumeSegmentationTask(model, pipe)
        batch = pipe.collate(volumes(32, 2))
        with pytest.raises(ValueError):
            task.batch_loss(batch)


class TestPredictVolumeBatched:
    def test_matches_per_slice_loop(self):
        vol = generate_ct_volume(32, 10, seed=0).volume
        f = lambda s: (s > 0.5).astype(int)
        a = predict_volume(f, vol)
        for bs in (1, 3, 8, 16):
            b = predict_volume_batched(lambda chunk: [f(s) for s in chunk],
                                       vol, batch_size=bs)
            np.testing.assert_array_equal(a, b)

    def test_rejects_bad_inputs(self):
        with pytest.raises(ValueError):
            predict_volume_batched(lambda c: c, np.zeros((4, 4)))
        with pytest.raises(ValueError):
            predict_volume_batched(lambda c: c, np.zeros((4, 4, 4)),
                                   batch_size=0)

    def test_rejects_wrong_prediction_count(self):
        with pytest.raises(ValueError):
            predict_volume_batched(lambda chunk: chunk[:-1],
                                   np.zeros((4, 4, 4)), batch_size=4)
