"""Octree partitioning and 3-D Morton codes — the volumetric APF extension.

UNETR (the paper's carrier model) is natively 3-D, and the paper's related
work cites octree transformers; extending Eq. 6 to volumes is the obvious
future-work direction. The builder mirrors :func:`repro.quadtree.build_quadtree`:
level-synchronous, with an O(1)-per-node 3-D summed-volume table.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, List, Optional, Sequence

import numpy as np

__all__ = ["morton3d_encode", "morton3d_decode", "OctreeLeaves",
           "build_octree", "build_octree_batch", "integral3d_batch",
           "octree_frontier_batch"]

_MAX_BITS = 16


def _part1by2(v: np.ndarray) -> np.ndarray:
    """Insert two zero bits between each bit of ``v`` (16 → 48 bit spread)."""
    v = v.astype(np.uint64)
    v = (v | (v << np.uint64(32))) & np.uint64(0xFFFF00000000FFFF)
    v = (v | (v << np.uint64(16))) & np.uint64(0x00FF0000FF0000FF)
    v = (v | (v << np.uint64(8))) & np.uint64(0xF00F00F00F00F00F)
    v = (v | (v << np.uint64(4))) & np.uint64(0x30C30C30C30C30C3)
    v = (v | (v << np.uint64(2))) & np.uint64(0x9249249249249249)
    return v


def _compact1by2(v: np.ndarray) -> np.ndarray:
    v = v.astype(np.uint64) & np.uint64(0x9249249249249249)
    v = (v | (v >> np.uint64(2))) & np.uint64(0x30C30C30C30C30C3)
    v = (v | (v >> np.uint64(4))) & np.uint64(0xF00F00F00F00F00F)
    v = (v | (v >> np.uint64(8))) & np.uint64(0x00FF0000FF0000FF)
    v = (v | (v >> np.uint64(16))) & np.uint64(0xFFFF00000000FFFF)
    v = (v | (v >> np.uint64(32))) & np.uint64(0x000000000000FFFF)
    return v


def morton3d_encode(z, y, x) -> np.ndarray:
    """Interleave bits of (z, y, x): x in the lowest bit of each triple."""
    z = np.atleast_1d(np.asarray(z, dtype=np.uint64))
    y = np.atleast_1d(np.asarray(y, dtype=np.uint64))
    x = np.atleast_1d(np.asarray(x, dtype=np.uint64))
    for arr in (z, y, x):
        if (arr >= (1 << _MAX_BITS)).any():
            raise ValueError(f"coordinates exceed {_MAX_BITS}-bit range")
    return ((_part1by2(z) << np.uint64(2)) | (_part1by2(y) << np.uint64(1))
            | _part1by2(x))


def morton3d_decode(code):
    c = np.atleast_1d(np.asarray(code, dtype=np.uint64))
    x = _compact1by2(c)
    y = _compact1by2(c >> np.uint64(1))
    z = _compact1by2(c >> np.uint64(2))
    return z.astype(np.int64), y.astype(np.int64), x.astype(np.int64)


@dataclass
class OctreeLeaves:
    """Leaf set of an octree partition of a ``size^3`` volume."""

    zs: np.ndarray
    ys: np.ndarray
    xs: np.ndarray
    sizes: np.ndarray
    depths: np.ndarray
    size: int
    nodes_visited: int = 0
    #: Per-leaf Eq. 6 region detail mass — the summed-volume value that
    #: decided *not* to split this cube. Zero means provably flat content.
    details: Optional[np.ndarray] = None

    def __len__(self) -> int:
        return len(self.zs)

    @property
    def sequence_length(self) -> int:
        return len(self.zs)

    @property
    def mean_patch_size(self) -> float:
        return float(self.sizes.mean()) if len(self) else 0.0

    def size_histogram(self) -> Dict[int, int]:
        vals, counts = np.unique(self.sizes, return_counts=True)
        return {int(v): int(c) for v, c in zip(vals, counts)}

    def morton_order(self) -> np.ndarray:
        return np.argsort(morton3d_encode(self.zs, self.ys, self.xs),
                          kind="stable")

    def sorted_by_morton(self) -> "OctreeLeaves":
        o = self.morton_order()
        return OctreeLeaves(self.zs[o], self.ys[o], self.xs[o], self.sizes[o],
                            self.depths[o], self.size, self.nodes_visited,
                            None if self.details is None else self.details[o])

    def covers_exactly(self) -> bool:
        total = int((self.sizes.astype(np.int64) ** 3).sum())
        if total != self.size ** 3:
            return False
        grid = np.zeros((self.size,) * 3, dtype=np.int16)
        for z, y, x, s in zip(self.zs, self.ys, self.xs, self.sizes):
            grid[z:z + s, y:y + s, x:x + s] += 1
        return bool((grid == 1).all())


def _integral3d(detail: np.ndarray) -> np.ndarray:
    ii = detail.astype(np.float64)
    for ax in range(3):
        ii = np.cumsum(ii, axis=ax)
    return np.pad(ii, ((1, 0), (1, 0), (1, 0)))


def _region_sums3d(ii, zs, ys, xs, s):
    z1, y1, x1 = zs + s, ys + s, xs + s
    return (ii[z1, y1, x1] - ii[zs, y1, x1] - ii[z1, ys, x1] - ii[z1, y1, xs]
            + ii[zs, ys, x1] + ii[zs, y1, xs] + ii[z1, ys, xs]
            - ii[zs, ys, xs])


def build_octree(detail: np.ndarray, split_value: float, max_depth: int,
                 min_size: int = 1) -> OctreeLeaves:
    """Eq. 6 generalized to volumes: split a cube while its detail mass
    exceeds ``split_value`` and depth/min-size limits allow."""
    detail = np.asarray(detail)
    if detail.ndim != 3 or len(set(detail.shape)) != 1:
        raise ValueError(f"detail map must be a cube, got {detail.shape}")
    n = detail.shape[0]
    if n & (n - 1):
        raise ValueError(f"volume size must be a power of two, got {n}")
    if min_size < 1 or (min_size & (min_size - 1)):
        raise ValueError(f"min_size must be a positive power of two, got {min_size}")
    if split_value < 0:
        raise ValueError("split_value must be non-negative")

    ii = _integral3d(detail)
    leaves = {k: [] for k in ("z", "y", "x", "s", "d", "m")}
    zs = np.zeros(1, dtype=np.int64)
    ys = np.zeros(1, dtype=np.int64)
    xs = np.zeros(1, dtype=np.int64)
    size, depth, visited = n, 0, 0
    while len(zs):
        visited += len(zs)
        sums = _region_sums3d(ii, zs, ys, xs, size)
        can_split = (depth < max_depth) and (size // 2 >= min_size) and size > 1
        split = (sums > split_value) if can_split else np.zeros(len(zs), bool)
        keep = ~split
        if keep.any():
            leaves["z"].append(zs[keep])
            leaves["y"].append(ys[keep])
            leaves["x"].append(xs[keep])
            leaves["s"].append(np.full(int(keep.sum()), size, dtype=np.int64))
            leaves["d"].append(np.full(int(keep.sum()), depth, dtype=np.int64))
            leaves["m"].append(sums[keep])
        if split.any():
            sz, sy, sx = zs[split], ys[split], xs[split]
            half = size // 2
            offs = [(dz, dy, dx) for dz in (0, half) for dy in (0, half)
                    for dx in (0, half)]
            zs = np.concatenate([sz + dz for dz, _, _ in offs])
            ys = np.concatenate([sy + dy for _, dy, _ in offs])
            xs = np.concatenate([sx + dx for _, _, dx in offs])
            size, depth = half, depth + 1
        else:
            break

    return OctreeLeaves(np.concatenate(leaves["z"]), np.concatenate(leaves["y"]),
                        np.concatenate(leaves["x"]), np.concatenate(leaves["s"]),
                        np.concatenate(leaves["d"]), n, visited,
                        np.concatenate(leaves["m"]))


def _region_sums3d_batch(ii, bs, zs, ys, xs, s):
    """Batched summed-volume lookup: ``ii`` is (B, Z+1, Z+1, Z+1)."""
    z1, y1, x1 = zs + s, ys + s, xs + s
    return (ii[bs, z1, y1, x1] - ii[bs, zs, y1, x1] - ii[bs, z1, ys, x1]
            - ii[bs, z1, y1, xs] + ii[bs, zs, ys, x1] + ii[bs, zs, y1, xs]
            + ii[bs, z1, ys, xs] - ii[bs, zs, ys, xs])


def integral3d_batch(details: Sequence[np.ndarray]) -> np.ndarray:
    """Stacked padded summed-volume tables: (B, Z+1, Z+1, Z+1).

    Each slice equals :func:`_integral3d` of the corresponding detail map
    bit-for-bit; the cumulative sums run in place on the target buffer, so
    no per-volume temporaries are allocated.
    """
    b = len(details)
    n = details[0].shape[0]
    ii = np.zeros((b, n + 1, n + 1, n + 1), dtype=np.float64)
    for i, d in enumerate(details):
        inner = ii[i, 1:, 1:, 1:]
        inner[...] = d
        for ax in range(3):
            np.cumsum(inner, axis=ax, out=inner)
    return ii


def build_octree_batch(details: Sequence[np.ndarray], split_value: float,
                       max_depth: int, min_size: int = 1) -> List[OctreeLeaves]:
    """Level-synchronous octree build over a whole batch of detail volumes.

    The 3-D analogue of :func:`repro.quadtree.tree.build_quadtree_batch`: all
    volumes share one frontier, so every depth issues a *single*
    :func:`_region_sums3d_batch` call over the concatenated per-volume node
    coordinates. Each returned :class:`OctreeLeaves` is **identical** (same
    leaves, same build order, same ``nodes_visited``) to
    ``build_octree(details[b], ...)`` — the child-block concatenation
    preserves every volume's relative node order at each depth.

    Parameters match :func:`build_octree`; all detail volumes must share one
    cubic power-of-two shape.
    """
    if len(details) == 0:
        return []
    maps = [np.asarray(d) for d in details]
    n = maps[0].shape[0]
    for d in maps:
        if d.ndim != 3 or d.shape != (n, n, n):
            raise ValueError("all detail maps must share one cubic 3-D shape")
    if n & (n - 1):
        raise ValueError(f"volume size must be a power of two, got {n}")

    return octree_frontier_batch(integral3d_batch(maps), split_value,
                                 max_depth, min_size)


def octree_frontier_batch(ii: np.ndarray, split_value: float, max_depth: int,
                          min_size: int = 1) -> List[OctreeLeaves]:
    """The shared-frontier traversal over precomputed integral tables.

    ``ii`` is the (B, Z+1, Z+1, Z+1) stack from :func:`integral3d_batch`;
    callers that already hold detail maps should use
    :func:`build_octree_batch` instead. Parameter validation lives here so
    every batched entry point rejects exactly what :func:`build_octree`
    rejects.
    """
    if min_size < 1 or (min_size & (min_size - 1)):
        raise ValueError(f"min_size must be a positive power of two, got {min_size}")
    if split_value < 0:
        raise ValueError("split_value must be non-negative")
    b = ii.shape[0]
    n = ii.shape[1] - 1

    leaves = {k: [] for k in ("b", "z", "y", "x", "s", "d", "m")}
    bs = np.arange(b, dtype=np.int64)
    zs = np.zeros(b, dtype=np.int64)
    ys = np.zeros(b, dtype=np.int64)
    xs = np.zeros(b, dtype=np.int64)
    size, depth = n, 0
    visited = np.zeros(b, dtype=np.int64)
    while len(bs):
        visited += np.bincount(bs, minlength=b)
        sums = _region_sums3d_batch(ii, bs, zs, ys, xs, size)
        can_split = (depth < max_depth) and (size // 2 >= min_size) and size > 1
        split = (sums > split_value) if can_split else np.zeros(len(bs), bool)
        keep = ~split
        if keep.any():
            leaves["b"].append(bs[keep])
            leaves["z"].append(zs[keep])
            leaves["y"].append(ys[keep])
            leaves["x"].append(xs[keep])
            leaves["s"].append(np.full(int(keep.sum()), size, dtype=np.int64))
            leaves["d"].append(np.full(int(keep.sum()), depth, dtype=np.int64))
            leaves["m"].append(sums[keep])
        if split.any():
            sb, sz, sy, sx = bs[split], zs[split], ys[split], xs[split]
            half = size // 2
            # Same child-block order as the single build's ``offs`` loop.
            offs = [(dz, dy, dx) for dz in (0, half) for dy in (0, half)
                    for dx in (0, half)]
            bs = np.concatenate([sb] * 8)
            zs = np.concatenate([sz + dz for dz, _, _ in offs])
            ys = np.concatenate([sy + dy for _, dy, _ in offs])
            xs = np.concatenate([sx + dx for _, _, dx in offs])
            size, depth = half, depth + 1
        else:
            break

    all_bs = np.concatenate(leaves["b"])
    all_zs = np.concatenate(leaves["z"])
    all_ys = np.concatenate(leaves["y"])
    all_xs = np.concatenate(leaves["x"])
    all_sizes = np.concatenate(leaves["s"])
    all_depths = np.concatenate(leaves["d"])
    all_details = np.concatenate(leaves["m"])
    out = []
    for i in range(b):
        idx = np.flatnonzero(all_bs == i)  # preserves level-major build order
        out.append(OctreeLeaves(all_zs[idx], all_ys[idx], all_xs[idx],
                                all_sizes[idx], all_depths[idx], n,
                                int(visited[i]), all_details[idx]))
    return out
