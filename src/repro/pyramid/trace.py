"""Seeded viewer-session traces and the viewer DES driver.

Interactive slide traffic has structure batch traces don't: sessions
**pan** (runs of small correlated viewport shifts), **zoom** (level
changes re-centered on the same world point), **dwell**, and **converge**
— many users end up on the same few hot regions of a slide.
:func:`viewer_trace` generates that shape deterministically from a seed:
every session walks a hotspot-seeded pan/zoom state machine with
exponential think times, so the same call always yields the same event
list on any host.

:func:`run_viewer_load` replays a trace against a
:class:`~repro.pyramid.service.PyramidService` under the same
discrete-event virtual clock as :func:`~repro.serve.loadgen.run_load` —
the engine executes the real model on every batch, only the timeline is
simulated — and additionally stamps **per-tile completion times** so
time-to-first-tile is measurable per viewport event. It drives a single
:class:`~repro.serve.engine.InferenceEngine` or a whole
:class:`~repro.serve.router.FleetRouter` (with
:class:`~repro.serve.loadgen.ReplicaKill` / ``ReplicaDrain`` fault
injection), which is what the kill-mid-pan cleanliness gate in
``BENCH_viewer.json`` runs on.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, List, Optional, Sequence, Tuple

import numpy as np

from ..serve.loadgen import ReplicaDrain, ReplicaKill, SimClock
from .service import PyramidService, TileTask, ViewportReport

__all__ = ["ViewportEvent", "viewer_trace", "run_viewer_load"]


@dataclass(frozen=True)
class ViewportEvent:
    """One viewer action: at ``time``, ``session`` looks at a window."""

    time: float
    session: str
    level: int
    origin: Tuple[int, int]        #: (y0, x0) in level-``level`` pixels
    size: Tuple[int, int]          #: (h, w) in level-``level`` pixels


def _clamp_origin(center: Tuple[float, float], level: int,
                  level_shape: Tuple[int, int],
                  size: Tuple[int, int]) -> Tuple[int, int]:
    """Viewport origin centered on a level-0 world point, kept on-slide."""
    h, w = size
    y0 = int(round(center[0] / (1 << level) - h / 2))
    x0 = int(round(center[1] / (1 << level) - w / 2))
    return (max(0, min(y0, level_shape[0] - h)),
            max(0, min(x0, level_shape[1] - w)))


def viewer_trace(shape: Tuple[int, int], n_levels: int, *,
                 sessions: int = 8, events_per_session: int = 12,
                 viewport: Tuple[int, int] = (512, 512), tile: int = 256,
                 seed: int = 0, start: float = 0.0,
                 think_mean: float = 0.08, hotspots: int = 3,
                 start_level: Optional[int] = None) -> List[ViewportEvent]:
    """Seeded multi-session pan/zoom traces over a ``shape`` scene.

    Each session starts at one of ``hotspots`` shared landmarks (drawn
    once from ``seed``, so sessions overlap there — the shared-cache
    traffic shape) and then walks a state machine per event: continue the
    current pan (55%), zoom a level in or out re-centered on the same
    world point (25%), jump to another hotspot (10%), or dwell (10%).
    Pan steps move half a tile in one of the 8 compass directions, so
    consecutive viewports overlap heavily — the regime prefetch and the
    shared cache are supposed to win in. Think times are exponential
    with mean ``think_mean`` virtual seconds.
    """
    if sessions < 1 or events_per_session < 1:
        raise ValueError("need at least one session and one event")
    if n_levels < 1:
        raise ValueError("need at least one pyramid level")
    h0, w0 = int(shape[0]), int(shape[1])
    if start_level is None:
        start_level = min(2, n_levels - 1)
    if not 0 <= start_level < n_levels:
        raise ValueError(f"start_level {start_level} outside [0, {n_levels})")
    hot_rng = np.random.default_rng([seed, 0xB00])
    hot = [(float(hot_rng.uniform(0.25, 0.75) * h0),
            float(hot_rng.uniform(0.25, 0.75) * w0))
           for _ in range(max(1, hotspots))]
    compass = [(dy, dx) for dy in (-1, 0, 1) for dx in (-1, 0, 1)
               if (dy, dx) != (0, 0)]
    events: List[ViewportEvent] = []
    for s in range(sessions):
        rng = np.random.default_rng([seed, s + 1])
        level = start_level
        center = hot[int(rng.integers(len(hot)))]
        step = tile / 2.0
        dy, dx = compass[int(rng.integers(len(compass)))]
        t = start
        for k in range(events_per_session):
            t += float(rng.exponential(think_mean))
            if k > 0:
                action = rng.random()
                if action < 0.55:              # keep panning
                    scale = float(1 << level)
                    center = (center[0] + dy * step * scale,
                              center[1] + dx * step * scale)
                elif action < 0.80:            # zoom burst, same world point
                    if level == 0:
                        level += 1
                    elif level == n_levels - 1:
                        level -= 1
                    else:
                        level += -1 if rng.random() < 0.6 else 1
                    dy, dx = compass[int(rng.integers(len(compass)))]
                elif action < 0.90:            # jump to another hotspot
                    center = hot[int(rng.integers(len(hot)))]
                    dy, dx = compass[int(rng.integers(len(compass)))]
                # else: dwell (re-request the same viewport)
            center = (min(max(center[0], 0.0), float(h0)),
                      min(max(center[1], 0.0), float(w0)))
            lshape = (h0 >> level, w0 >> level)
            origin = _clamp_origin(center, level, lshape, viewport)
            events.append(ViewportEvent(t, f"s{s:02d}", level, origin,
                                        tuple(viewport)))
    events.sort(key=lambda e: (e.time, e.session))
    return events


def run_viewer_load(service: PyramidService, trace: Sequence[ViewportEvent],
                    clock: SimClock,
                    events: Sequence = ()) -> Dict[str, object]:
    """Replay a viewer trace through a tile service under the virtual clock.

    The service's backend must be a DES-configured
    :class:`~repro.serve.engine.InferenceEngine` or
    :class:`~repro.serve.router.FleetRouter` (constructed with
    ``clock=clock.now`` and a ``service_model``; never ``start()``\\ ed —
    this loop owns dispatch via ``engine.step``). ``events`` interleaves
    :class:`~repro.serve.loadgen.ReplicaKill` /
    :class:`~repro.serve.loadgen.ReplicaDrain` on the virtual timeline
    (fleet backends only).

    Beyond :func:`~repro.serve.loadgen.run_load` semantics, the loop
    stamps every tile task's ``done_t`` with the *virtual completion
    time* of the batch that resolved it (``start + cost``, not the
    dispatch instant), which is what makes per-viewport
    time-to-first-tile well defined inside the simulation.
    """
    if not trace:
        raise ValueError("empty trace")
    backend = service.backend
    replicas = getattr(backend, "replicas", None)
    if replicas is None:
        if events:
            raise ValueError("fault events need a fleet backend")
        pool = [(0, backend)]
        serving = {0: lambda: True}
    else:
        pool = [(r.rank, r.engine) for r in replicas]
        serving = {r.rank: (lambda r=r: r.serving) for r in replicas}
    route_seconds = float(getattr(backend, "route_seconds", 0.0))
    free_at = {rank: clock.now() for rank, _ in pool}
    live: List[TileTask] = []
    live_ids = set()

    def adopt(tasks: Sequence[TileTask]) -> None:
        for task in tasks:
            if task.future is None or id(task) in live_ids:
                continue
            if task.future.done() and not task.cancelled:
                # engine-result-cache hit at submit time: ready immediately
                task.done_t = task.submit_t
                continue
            live.append(task)
            live_ids.add(id(task))

    def stamp(done_at: float) -> None:
        for task in live:
            if (task.done_t is None and not task.cancelled
                    and task.future.done() and not task.future.cancelled()):
                task.done_t = done_at
        live[:] = [t for t in live
                   if t.done_t is None and not t.cancelled
                   and not t.future.cancelled()]
        live_ids.clear()
        live_ids.update(id(t) for t in live)

    def pump(limit: float) -> None:
        while True:
            best = None
            for rank, engine in pool:
                if not serving[rank]():
                    continue
                due = engine.next_flush_at(max(free_at[rank], clock.now()))
                if due is None:
                    continue
                start_t = max(free_at[rank], due)
                if best is None or (start_t, rank) < (best[0], best[2]):
                    best = (start_t, engine, rank)
            if best is None or best[0] >= limit:
                return
            start_t, engine, rank = best
            clock.set(start_t)
            report = engine.step(start_t)
            if report is None:      # pragma: no cover - policy safety net
                return
            free_at[rank] = start_t + report.cost
            stamp(start_t + report.cost)

    stream = sorted([(ev.time, 0, ev) for ev in events]
                    + [(ev.time, 1, ev) for ev in trace],
                    key=lambda entry: entry[:2])
    reports: List[ViewportReport] = []
    for _, tag, ev in stream:
        if tag == 0:
            pump(ev.time)
            clock.set(ev.time)
            tracer = getattr(backend, "tracer", None)
            if isinstance(ev, ReplicaKill):
                if tracer is not None:
                    tracer.instant("fault.kill", "loadgen", ev.time,
                                   args={"rank": ev.rank})
                backend.kill(ev.rank)
            elif isinstance(ev, ReplicaDrain):
                if tracer is not None:
                    tracer.instant("fault.drain", "loadgen", ev.time,
                                   args={"rank": ev.rank})
                backend.drain(ev.rank)
            else:
                raise TypeError(f"unknown fleet event {ev!r}")
            continue
        submit_at = ev.time + route_seconds
        pump(submit_at)
        clock.set(submit_at)
        report = service.request_viewport(ev.session, ev.level, ev.origin,
                                          ev.size, now=submit_at)
        adopt(report.tasks)
        adopt(report.prefetched)
        reports.append(report)
    pump(float("inf"))
    stamp(clock.now())
    clock.set(max([clock.now()] + [free_at[rank] for rank, _ in pool
                                   if serving[rank]()]))

    # -- integrity: nothing leaked, nothing failed -------------------------
    seen: Dict[int, TileTask] = {}
    for report in reports:
        for task in list(report.tasks) + list(report.prefetched):
            seen[id(task)] = task
    leaked = failed = cancelled = 0
    for task in seen.values():
        if task.future is None:
            continue
        if task.cancelled or task.future.cancelled():
            cancelled += 1
            continue
        if not task.future.done():
            leaked += 1
        elif task.future.exception() is not None:
            failed += 1

    ttfts = [report.time_to_first_tile() for report in reports]
    landed = np.asarray([t for t in ttfts if t is not None])
    makespan = max(clock.now() - trace[0].time, 1e-12)

    def total(attr: str) -> int:
        return sum(getattr(report, attr) for report in reports)

    return {
        "viewports": len(reports),
        "sessions": len({report.session for report in reports}),
        "tiles_visible": sum(len(report.tasks) for report in reports),
        "cache_hits": total("cache_hits"),
        "joined": total("joined"),
        "submitted": total("submitted"),
        "rejected": total("rejected"),
        "cancelled_stale": total("cancelled_stale"),
        "prefetch_submitted": total("prefetch_submitted"),
        "prefetch_rejected": total("prefetch_rejected"),
        "starved_viewports": int(sum(1 for t in ttfts if t is None)),
        "ttft": {
            "count": int(landed.size),
            "p50": float(np.percentile(landed, 50)) if landed.size else None,
            "p95": float(np.percentile(landed, 95)) if landed.size else None,
            "p99": float(np.percentile(landed, 99)) if landed.size else None,
            "mean": float(landed.mean()) if landed.size else None,
        },
        "failed": failed,
        "leaked": leaked,
        "cancelled_tasks": cancelled,
        "outstanding": service.outstanding,
        "makespan": makespan,
        "service": service.stats(),
        "backend": backend.stats(),
        "reports": reports,
    }
