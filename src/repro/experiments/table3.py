"""Table III: segmentation-quality improvement across models and patch sizes.

The paper's finding: at each resolution, APF lets UNETR use much smaller
patches at similar cost, improving dice by 3.3-7.1% (avg 5.5%) over the best
uniform-patch baseline, with TransUNet and U-Net further behind. This runner
trains the full model column at laptop scale: APF-UNETR at several patch
sizes, uniform UNETR, TransUNet-lite, and U-Net, reporting dice, sequence
length, and sec/image per row.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import List, Optional

import numpy as np

from ..models import TransUNetLite, UNet
from ..train import ImageSegmentationTask
from .common import (ExperimentScale, format_table, make_trainer,
                     make_unetr_task, make_vit_token_task, paip_splits)

__all__ = ["Table3Row", "Table3Result", "run_table3"]


@dataclass
class Table3Row:
    model: str
    patch: Optional[int]
    seq_len: Optional[float]
    sec_per_image: float
    dice: float


@dataclass
class Table3Result:
    rows_: List[Table3Row] = field(default_factory=list)

    def best(self, prefix: str) -> Table3Row:
        cand = [r for r in self.rows_ if r.model.startswith(prefix)]
        if not cand:
            raise ValueError(f"no rows for {prefix!r}")
        return max(cand, key=lambda r: r.dice)

    @property
    def dice_improvement(self) -> float:
        """Best APF dice minus best non-APF dice (paper's right column)."""
        apf = self.best("APF").dice
        baselines = [r.dice for r in self.rows_ if not r.model.startswith("APF")]
        return apf - max(baselines)

    @property
    def transformer_improvement(self) -> float:
        """Best APF dice minus best *uniform transformer* dice — the paper's
        core comparison isolated from the convolutional baselines."""
        apf = self.best("APF").dice
        uni = [r.dice for r in self.rows_
               if not r.model.startswith("APF") and r.patch is not None]
        if not uni:
            raise ValueError("no uniform transformer rows")
        return apf - max(uni)

    def equal_cost_pairs(self):
        """(APF row, uniform row) pairs with comparable sequence length —
        the paper's same-compute-budget comparison."""
        apf_rows = [r for r in self.rows_ if r.model.startswith("APF")]
        uni_rows = [r for r in self.rows_
                    if not r.model.startswith("APF") and r.seq_len]
        pairs = []
        for a in apf_rows:
            if not a.seq_len:
                continue
            best = min(uni_rows,
                       key=lambda u: abs(np.log(u.seq_len / a.seq_len)))
            pairs.append((a, best))
        return pairs

    def rows(self) -> str:
        return format_table(
            ["model", "patch", "seq len", "sec/image", "dice %"],
            [[r.model, r.patch if r.patch else "-",
              f"{r.seq_len:.0f}" if r.seq_len else "-",
              f"{r.sec_per_image:.4f}", f"{r.dice:.2f}"] for r in self.rows_])


def _mean_seq_len(task, samples) -> float:
    from ..train.tasks import _patcher_image
    return float(np.mean([len(task.patcher(_patcher_image(s.image, task.channels)))
                          for s in samples]))


def run_table3(scale: Optional[ExperimentScale] = None,
               apf_patches=(2, 4), uniform_patches=(4, 8),
               split_value: float = 2.0, carrier: str = "vit") -> Table3Result:
    """Train every model row of one Table III resolution block.

    ``carrier`` picks the transformer the patching feeds ("vit" default:
    encoder-bound, where the patch-size effect is visible at laptop scale;
    "unetr" adds the conv decoder whose stem skip masks patching effects at
    tiny resolutions — see EXPERIMENTS.md).
    """
    scale = scale or ExperimentScale(resolution=64, n_samples=10, epochs=8,
                                     dim=32, depth=3)
    train, val, test = paip_splits(scale)
    result = Table3Result()
    make = make_vit_token_task if carrier == "vit" else make_unetr_task
    label = "ViT" if carrier == "vit" else "UNETR"

    def run(task, name, patch, seq_len):
        tr = make_trainer(task, scale)
        hist = tr.fit(train, val, epochs=scale.epochs)
        dice = task.evaluate(test) if test else hist.best_metric
        spi = float(np.mean(hist.epoch_seconds)) / len(train)
        result.rows_.append(Table3Row(name, patch, seq_len, spi, dice))

    for p in apf_patches:
        task = make(scale, p, adaptive=True, split_value=split_value)
        run(task, f"APF(+{label})-{p}", p, _mean_seq_len(task, train))
    for p in uniform_patches:
        task = make(scale, p, adaptive=False)
        run(task, f"{label}-{p}", p, (scale.resolution // p) ** 2)

    tu = ImageSegmentationTask(
        TransUNetLite(channels=1, stem_ch=8, dim=scale.dim, depth=1,
                      heads=scale.heads,
                      max_hw=max((scale.resolution // 4) ** 2, 16),
                      rng=np.random.default_rng(scale.seed)),
        channels=1)
    run(tu, "TransUNet", None, None)

    un = ImageSegmentationTask(
        UNet(channels=1, widths=(8, 16), rng=np.random.default_rng(scale.seed)),
        channels=1)
    run(un, "U-Net", None, None)
    return result
