"""Tests for the serving metrics registry (counters + streaming histograms)."""

import threading

import numpy as np
import pytest

from repro.serve import Counter, Gauge, Histogram, MetricsRegistry


class TestCounter:
    def test_inc_and_value(self):
        c = Counter("x")
        c.inc()
        c.inc(4)
        assert c.value == 5

    def test_negative_rejected(self):
        with pytest.raises(ValueError):
            Counter("x").inc(-1)


class TestHistogram:
    def test_quantiles_track_numpy_percentile(self):
        rng = np.random.default_rng(0)
        samples = rng.lognormal(mean=-3.0, sigma=1.0, size=5000)
        h = Histogram("lat")
        for s in samples:
            h.observe(float(s))
        for p in (50, 95, 99):
            exact = np.percentile(samples, p)
            approx = h.percentile(p)
            # log-bucketed: relative error bounded by the growth factor
            assert abs(approx - exact) / exact < 0.15, (p, approx, exact)

    def test_extremes_are_exact(self):
        h = Histogram("lat")
        for x in (0.5, 0.001, 2.0, 0.25):
            h.observe(x)
        assert h.min == 0.001
        assert h.max == 2.0
        assert h.count == 4
        assert h.mean == pytest.approx((0.5 + 0.001 + 2.0 + 0.25) / 4)
        # quantiles clamp into [min, max]
        assert h.percentile(0) >= h.min
        assert h.percentile(100) <= h.max

    def test_zero_and_tiny_observations(self):
        h = Histogram("lat")
        h.observe(0.0)
        h.observe(1e-12)       # below lo -> first bucket
        assert h.count == 2
        assert h.percentile(99) <= 1e-6 + 1e-12

    def test_empty_and_validation(self):
        h = Histogram("lat")
        # NaN sentinel: empty is distinguishable from observed-zero latency
        assert np.isnan(h.percentile(0))
        assert np.isnan(h.percentile(99))
        assert np.isnan(h.percentile(100))
        # ... but the JSON-facing summary stays finite and all-zero
        summ = h.summary()
        assert summ["count"] == 0
        assert all(v == 0.0 for v in summ.values())
        with pytest.raises(ValueError):
            h.observe(-1.0)
        with pytest.raises(ValueError):
            h.percentile(101)
        with pytest.raises(ValueError):
            Histogram("bad", lo=1.0, hi=0.5)
        with pytest.raises(ValueError):
            Histogram("bad", growth=1.0)

    def test_summary_keys(self):
        h = Histogram("lat")
        h.observe(0.1)
        assert set(h.summary()) == {"count", "mean", "min", "max",
                                    "p50", "p95", "p99"}

    def test_overflow_clamps_to_last_bucket(self):
        h = Histogram("lat", hi=1.0)
        h.observe(50.0)
        assert h.max == 50.0
        assert h.percentile(99) == 50.0   # clamped to tracked max


class TestRegistry:
    def test_idempotent_names_and_snapshot(self):
        reg = MetricsRegistry()
        assert reg.counter("a") is reg.counter("a")
        assert reg.histogram("h") is reg.histogram("h")
        reg.inc("a", 2)
        reg.observe("h", 0.5)
        snap = reg.snapshot()
        assert snap["a"] == 2
        assert snap["h"]["count"] == 1
        assert list(reg.names()) == ["a", "h"]

    def test_concurrent_recording(self):
        reg = MetricsRegistry()
        n, threads = 500, 8

        def work(k):
            for i in range(n):
                reg.inc("total")
                reg.observe("lat", 0.001 * (k + 1))

        ts = [threading.Thread(target=work, args=(k,)) for k in range(threads)]
        for t in ts:
            t.start()
        for t in ts:
            t.join()
        assert reg.counter("total").value == n * threads
        assert reg.histogram("lat").count == n * threads


class TestGauge:
    def test_value_and_peak(self):
        g = Gauge("depth")
        assert g.value == 0 and g.peak == 0
        g.set(5)
        g.set(2)
        assert g.value == 2
        assert g.peak == 5
        assert g.summary() == {"value": 2, "peak": 5}

    def test_registry_integration(self):
        reg = MetricsRegistry()
        assert reg.gauge("depth") is reg.gauge("depth")
        reg.gauge("depth").set(7)
        reg.gauge("depth").set(3)
        snap = reg.snapshot()
        assert snap["depth"] == {"value": 3, "peak": 7}
        assert "depth" in reg.names()

    def test_concurrent_sets_keep_true_peak(self):
        g = MetricsRegistry().gauge("depth")

        def work(k):
            for i in range(300):
                g.set(k * 1000 + i)

        ts = [threading.Thread(target=work, args=(k,)) for k in range(4)]
        for t in ts:
            t.start()
        for t in ts:
            t.join()
        assert g.peak == 3299


class TestMerge:
    def test_counter_merge_adds(self):
        a, b = Counter("x"), Counter("x")
        a.inc(3)
        b.inc(4)
        a.merge(b)
        assert a.value == 7
        assert b.value == 4          # source untouched

    def test_gauge_merge_sums_values_and_peaks(self):
        a, b = Gauge("depth"), Gauge("depth")
        a.set(5)
        a.set(2)
        b.set(10)
        b.set(1)
        a.merge(b)
        assert a.value == 3          # 2 + 1: fleet depth is the sum
        assert a.peak == 15          # 5 + 10: upper bound, peaks need not align

    def test_histogram_merge_equals_single_stream(self):
        """Merged per-replica halves must answer quantiles exactly like one
        histogram that saw every sample — the fleet-percentile contract."""
        rng = np.random.default_rng(3)
        samples = rng.lognormal(mean=-3.0, sigma=1.0, size=2000)
        whole = Histogram("lat")
        left, right = Histogram("lat"), Histogram("lat")
        for i, s in enumerate(samples):
            whole.observe(float(s))
            (left if i % 2 == 0 else right).observe(float(s))
        left.merge(right)
        assert left.count == whole.count
        assert left.total == pytest.approx(whole.total)
        assert left.min == whole.min
        assert left.max == whole.max
        for p in (50, 95, 99):
            assert left.percentile(p) == whole.percentile(p)

    def test_histogram_merge_empty_sides(self):
        a, b = Histogram("lat"), Histogram("lat")
        b.observe(0.5)
        a.merge(b)                    # empty <- nonempty
        assert a.count == 1 and a.min == 0.5
        c = Histogram("lat")
        a.merge(c)                    # nonempty <- empty
        assert a.count == 1 and a.max == 0.5

    def test_histogram_merge_empty_is_identity(self):
        """Merging an empty histogram into a populated one changes nothing
        — not the moments, not the extremes, not any quantile."""
        rng = np.random.default_rng(7)
        h = Histogram("lat")
        for s in rng.lognormal(mean=-3.0, sigma=1.0, size=500):
            h.observe(float(s))
        before = (h.count, h.total, h.min, h.max,
                  [h.percentile(p) for p in (0, 50, 95, 99, 100)])
        h.merge(Histogram("lat"))
        after = (h.count, h.total, h.min, h.max,
                 [h.percentile(p) for p in (0, 50, 95, 99, 100)])
        assert after == before

    def test_histogram_merge_empty_into_empty_stays_empty(self):
        a = Histogram("lat")
        a.merge(Histogram("lat"))
        assert a.count == 0 and a.min is None and a.max is None
        assert np.isnan(a.percentile(50))

    def test_histogram_grid_mismatch_rejected(self):
        a = Histogram("lat", growth=1.12)
        b = Histogram("lat", growth=1.5)
        with pytest.raises(ValueError):
            a.merge(b)
        assert not a.compatible(b)

    def test_histogram_like_clones_grid(self):
        src = Histogram("lat", lo=1e-4, hi=10.0, growth=1.3)
        clone = Histogram.like("copy", src)
        assert clone.name == "copy"
        assert clone.count == 0
        assert clone.compatible(src)
        src.observe(0.2)
        clone.merge(src)              # always compatible by construction
        assert clone.count == 1

    def test_registry_merge_creates_missing_metrics(self):
        fleet, replica = MetricsRegistry(), MetricsRegistry()
        replica.inc("completed", 5)
        replica.gauge("queue_depth").set(3)
        replica.observe("lat", 0.25)
        fleet.merge(replica)
        assert fleet.counter("completed").value == 5
        assert fleet.gauge("queue_depth").value == 3
        assert fleet.histogram("lat").count == 1
        # cloned histograms inherit the source grid
        assert fleet.histogram("lat").compatible(replica.histogram("lat"))

    def test_registry_merge_chains(self):
        fleet = MetricsRegistry()
        for k in range(3):
            rep = MetricsRegistry()
            rep.inc("completed", k + 1)
            rep.observe("lat", 0.1 * (k + 1))
            assert fleet.merge(rep) is fleet
        assert fleet.counter("completed").value == 6
        assert fleet.histogram("lat").count == 3
