"""Tests for the simulated collectives: exactness of the ring algorithm and
traffic accounting."""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.distributed import SimCluster


class TestRingAllReduce:
    def test_sum_exact(self):
        rng = np.random.default_rng(0)
        w = 4
        bufs = [rng.normal(size=(3, 5)) for _ in range(w)]
        out, stats = SimCluster(w).ring_all_reduce(bufs)
        expected = np.sum(bufs, axis=0)
        for o in out:
            np.testing.assert_allclose(o, expected, rtol=1e-12)

    def test_single_rank_identity(self):
        buf = np.arange(6.0).reshape(2, 3)
        out, stats = SimCluster(1).ring_all_reduce([buf])
        np.testing.assert_array_equal(out[0], buf)
        assert stats.bytes_sent_per_rank == 0

    def test_step_count_is_2w_minus_2(self):
        w = 8
        bufs = [np.ones(16) for _ in range(w)]
        _, stats = SimCluster(w).ring_all_reduce(bufs)
        assert stats.steps == 2 * (w - 1)

    def test_traffic_matches_ring_formula(self):
        # Ring all-reduce sends 2*(W-1)/W * nbytes per rank.
        w, n = 4, 64
        bufs = [np.ones(n) for _ in range(w)]
        _, stats = SimCluster(w).ring_all_reduce(bufs)
        expected = 2 * (w - 1) / w * n * 8
        assert stats.bytes_sent_per_rank == pytest.approx(expected, rel=0.01)

    def test_buffer_count_mismatch(self):
        with pytest.raises(ValueError):
            SimCluster(3).ring_all_reduce([np.ones(4)] * 2)

    def test_shape_mismatch(self):
        with pytest.raises(ValueError):
            SimCluster(2).ring_all_reduce([np.ones(4), np.ones(5)])

    def test_odd_world_and_small_buffer(self):
        # n < w exercises empty chunks.
        w = 5
        bufs = [np.full(3, float(r)) for r in range(w)]
        out, _ = SimCluster(w).ring_all_reduce(bufs)
        np.testing.assert_allclose(out[0], np.full(3, sum(range(w))))

    @given(st.integers(2, 8), st.integers(1, 40), st.integers(0, 10 ** 6))
    @settings(max_examples=30, deadline=None)
    def test_property_matches_numpy_sum(self, w, n, seed):
        rng = np.random.default_rng(seed)
        bufs = [rng.normal(size=n) for _ in range(w)]
        out, _ = SimCluster(w).ring_all_reduce(bufs)
        for o in out:
            np.testing.assert_allclose(o, np.sum(bufs, axis=0), rtol=1e-10,
                                       atol=1e-12)


class TestOtherCollectives:
    def test_all_gather(self):
        w = 3
        bufs = [np.full(2, float(r)) for r in range(w)]
        out, stats = SimCluster(w).all_gather(bufs)
        np.testing.assert_array_equal(out[0], [0, 0, 1, 1, 2, 2])
        assert len(out) == w
        assert stats.bytes_sent_per_rank > 0

    def test_broadcast(self):
        out, stats = SimCluster(4).broadcast(np.arange(3.0))
        assert len(out) == 4
        for o in out:
            np.testing.assert_array_equal(o, [0, 1, 2])

    def test_shard_indices_cover_all(self):
        c = SimCluster(3)
        all_idx = np.concatenate([c.shard_indices(10, r) for r in range(3)])
        np.testing.assert_array_equal(np.sort(all_idx), np.arange(10))

    def test_shard_rank_validation(self):
        with pytest.raises(ValueError):
            SimCluster(2).shard_indices(10, 2)

    def test_world_size_validation(self):
        with pytest.raises(ValueError):
            SimCluster(0)


class TestDeterminism:
    """The fleet bench leans on these collectives for topology accounting —
    pin that identical inputs give bit-identical outputs, run after run."""

    def test_ring_all_reduce_bit_identical_across_runs(self):
        rng = np.random.default_rng(42)
        bufs = [rng.normal(size=(4, 7)) for _ in range(4)]
        out1, stats1 = SimCluster(4).ring_all_reduce(bufs)
        out2, stats2 = SimCluster(4).ring_all_reduce(bufs)
        for a, b in zip(out1, out2):
            np.testing.assert_array_equal(a, b)       # bitwise, not approx
        assert stats1.bytes_sent_per_rank == stats2.bytes_sent_per_rank
        assert stats1.steps == stats2.steps

    def test_all_ranks_agree_bitwise(self):
        rng = np.random.default_rng(7)
        bufs = [rng.normal(size=33) for _ in range(5)]
        out, _ = SimCluster(5).ring_all_reduce(bufs)
        for o in out[1:]:
            np.testing.assert_array_equal(o, out[0])


class TestRoundTrips:
    def test_shard_then_all_gather_reconstructs(self):
        # scatter a vector by shard_indices, all_gather it back — every
        # rank ends with the original, in order
        w, n = 3, 11
        cluster = SimCluster(w)
        data = np.arange(n, dtype=float) * 1.5
        shards = [data[cluster.shard_indices(n, r)] for r in range(w)]
        gathered, stats = cluster.all_gather(shards)
        for g in gathered:
            np.testing.assert_array_equal(g, data)
        assert stats.steps == w - 1

    def test_all_to_all_is_an_involution(self):
        # exchanging twice restores every rank's original buffer
        w = 4
        rng = np.random.default_rng(3)
        bufs = [rng.normal(size=(w * 2, 3)) for _ in range(w)]
        once, _ = SimCluster(w).all_to_all(bufs)
        twice, _ = SimCluster(w).all_to_all(once)
        for a, b in zip(twice, bufs):
            np.testing.assert_array_equal(a, b)

    def test_all_to_all_reduce_gather_equivalence(self):
        # summing each rank's all_to_all output chunk-wise equals the
        # corresponding shard of a full all-reduce (Ulysses accounting)
        w = 2
        bufs = [np.arange(4.0) + 10 * r for r in range(w)]
        exchanged, _ = SimCluster(w).all_to_all(bufs)
        reduced, _ = SimCluster(w).ring_all_reduce(bufs)
        for r in range(w):
            shard = np.split(reduced[r], w)[r]
            np.testing.assert_allclose(exchanged[r].reshape(w, -1).sum(0),
                                       shard)

    def test_all_to_all_validation(self):
        with pytest.raises(ValueError):
            SimCluster(3).all_to_all([np.ones((4, 2))] * 3)   # 4 % 3 != 0
        with pytest.raises(ValueError):
            SimCluster(3).all_to_all([np.ones((3, 2))] * 2)

    def test_all_gather_count_mismatch(self):
        with pytest.raises(ValueError):
            SimCluster(2).all_gather([np.ones(2)])


class TestCommStats:
    def test_merge_accumulates(self):
        from repro.distributed import CommStats
        total = CommStats()
        total.merge(CommStats(100.0, 3))
        total.merge(CommStats(50.0, 2))
        assert total.bytes_sent_per_rank == 150.0
        assert total.steps == 5

    def test_broadcast_tree_steps(self):
        for w, steps in ((1, 0), (2, 1), (4, 2), (5, 3)):
            _, stats = SimCluster(w).broadcast(np.ones(4))
            assert stats.steps == steps
