"""``repro.train`` — Algorithm 1's training loop, task adapters, history,
checkpointing, and the §IV-F2 volumetric inference protocol."""

from .checkpoint import load_checkpoint, save_checkpoint
from .history import TrainingHistory
from .tasks import (ImageClassificationTask, ImageSegmentationTask,
                    SequenceClassificationTask, TokenSegmentationTask,
                    UNETRTask, VolumeSegmentationTask, prepare_image)
from .trainer import Trainer
from .volumetric import (predict_volume, predict_volume_batched,
                         slices_to_volume_task, volume_dice)

__all__ = ["Trainer", "TrainingHistory", "TokenSegmentationTask",
           "VolumeSegmentationTask",
           "ImageSegmentationTask", "UNETRTask", "SequenceClassificationTask",
           "ImageClassificationTask", "prepare_image",
           "save_checkpoint", "load_checkpoint",
           "predict_volume", "predict_volume_batched", "volume_dice",
           "slices_to_volume_task"]
