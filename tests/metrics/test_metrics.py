"""Tests for dice / IoU / accuracy metrics."""

import numpy as np
import pytest

from repro.metrics import (dice_score, iou_score, per_class_dice,
                           pixel_accuracy, top1_accuracy)


class TestDice:
    def test_perfect_match(self):
        m = np.zeros((8, 8), bool)
        m[2:5, 2:5] = True
        assert dice_score(m, m, threshold=None) == 100.0

    def test_no_overlap(self):
        a = np.zeros((8, 8), bool)
        b = np.zeros((8, 8), bool)
        a[0, 0] = True
        b[7, 7] = True
        assert dice_score(a, b, threshold=None) == 0.0

    def test_both_empty_is_perfect(self):
        assert dice_score(np.zeros((4, 4)), np.zeros((4, 4))) == 100.0

    def test_half_overlap_value(self):
        # |X|=2, |Y|=2, |X∩Y|=1 → dice = 2*1/4 = 50%.
        a = np.array([1, 1, 0, 0], bool)
        b = np.array([1, 0, 1, 0], bool)
        assert dice_score(a, b, threshold=None) == pytest.approx(50.0)

    def test_probability_threshold(self):
        p = np.array([0.9, 0.2])
        t = np.array([1.0, 0.0])
        assert dice_score(p, t, threshold=0.5) == 100.0

    def test_shape_mismatch(self):
        with pytest.raises(ValueError):
            dice_score(np.zeros(3), np.zeros(4))

    def test_symmetric(self):
        rng = np.random.default_rng(0)
        a, b = rng.random(50) > 0.5, rng.random(50) > 0.5
        assert dice_score(a, b, None) == dice_score(b, a, None)


class TestPerClassDice:
    def test_perfect_all_classes(self):
        m = np.arange(16).reshape(4, 4) % 4
        d = per_class_dice(m, m, num_classes=4)
        np.testing.assert_allclose(d, 100.0)

    def test_absent_class_is_nan(self):
        t = np.zeros((4, 4), int)
        p = np.zeros((4, 4), int)
        d = per_class_dice(p, t, num_classes=3)
        assert np.isnan(d).all()  # classes 1, 2 absent from both

    def test_background_skipped(self):
        t = np.zeros((4, 4), int)
        t[0, 0] = 1
        p = t.copy()
        d = per_class_dice(p, t, num_classes=2)
        assert d.shape == (1,)
        assert d[0] == 100.0

    def test_btcv_convention_13_values(self):
        t = np.random.default_rng(0).integers(0, 14, (32, 32))
        d = per_class_dice(t, t, num_classes=14)
        assert d.shape == (13,)
        assert np.nanmean(d) == 100.0


class TestIoU:
    def test_relation_to_dice(self):
        # dice = 2*iou / (1 + iou)
        rng = np.random.default_rng(1)
        a, b = rng.random(100) > 0.4, rng.random(100) > 0.6
        iou = iou_score(a, b, None) / 100
        dice = dice_score(a, b, None) / 100
        assert dice == pytest.approx(2 * iou / (1 + iou), rel=1e-9)

    def test_empty_perfect(self):
        assert iou_score(np.zeros(4), np.zeros(4)) == 100.0


class TestPixelAccuracy:
    def test_values(self):
        p = np.array([[0, 1], [2, 3]])
        t = np.array([[0, 1], [2, 0]])
        assert pixel_accuracy(p, t) == 75.0

    def test_shape_mismatch(self):
        with pytest.raises(ValueError):
            pixel_accuracy(np.zeros(3), np.zeros(4))


class TestTop1:
    def test_basic(self):
        assert top1_accuracy([0, 1, 2, 3], [0, 1, 2, 0]) == 75.0

    def test_empty_raises(self):
        with pytest.raises(ValueError):
            top1_accuracy([], [])

    def test_shape_mismatch(self):
        with pytest.raises(ValueError):
            top1_accuracy([0, 1], [0])
