"""Edge-case coverage for the vectorized stitchers, pinned against the
reference per-leaf scatter loops: single-patch sequences, fully-padded
rows, mixed up/down-scale leaves, and multi-channel flat broadcasts."""

import numpy as np
import pytest

from repro.patching import (AdaptivePatcher, APFConfig, VolumeAPFConfig,
                            VolumetricAdaptivePatcher)
from repro.patching.sequence import PatchSequence
from repro.patching.volumetric import VolumeSequence
from repro.serve import stitch_image, stitch_volume


def _image_seq(sizes, ys, xs, valid, image_size, pm, rng):
    sizes = np.asarray(sizes, dtype=np.int64)
    return PatchSequence(
        patches=rng.normal(size=(len(sizes), 1, pm, pm)),
        ys=np.asarray(ys, dtype=np.int64), xs=np.asarray(xs, dtype=np.int64),
        sizes=sizes, valid=np.asarray(valid, dtype=bool),
        image_size=image_size, patch_size=pm, n_real=int(np.sum(valid)))


class TestImageEdgeCases:
    def test_single_patch_covers_whole_image(self):
        # one leaf the size of the image: a single upsampled paint
        rng = np.random.default_rng(0)
        seq = _image_seq([32], [0], [0], [True], 32, 8, rng)
        tm = rng.normal(size=(1, 3, 8, 8))
        np.testing.assert_array_equal(seq.scatter_to_image(tm, fill=-2.0),
                                      stitch_image(seq, tm, fill=-2.0))

    def test_single_patch_from_real_patcher(self):
        # a flat image collapses the quadtree to its root leaf
        patcher = AdaptivePatcher(APFConfig(patch_size=4, split_value=8.0))
        seq = patcher.extract_natural(np.full((32, 32, 1), 0.5))
        assert len(seq) == 1 and int(seq.sizes[0]) == 32
        tm = np.random.default_rng(1).normal(size=(1, 2, 4, 4))
        np.testing.assert_array_equal(seq.scatter_to_image(tm),
                                      stitch_image(seq, tm))

    def test_all_padded_row_paints_only_fill(self):
        rng = np.random.default_rng(2)
        seq = _image_seq([0, 0, 0], [0, 0, 0], [0, 0, 0],
                         [False, False, False], 16, 4, rng)
        tm = rng.normal(size=(3, 2, 4, 4))
        got = stitch_image(seq, tm, fill=0.125)
        np.testing.assert_array_equal(got, np.full((2, 16, 16), 0.125))
        np.testing.assert_array_equal(got,
                                      seq.scatter_to_image(tm, fill=0.125))

    def test_mixed_up_and_downscale_leaves(self):
        # leaves both larger (16, 8) and smaller (2) than the model patch
        # exercise nearest-upsample and average-pool downsample together
        rng = np.random.default_rng(3)
        pm = 4
        sizes = [16, 8, 8, 8, 8, 2, 2, 2, 2]
        ys = [0, 16, 16, 24, 24, 0, 0, 2, 2]
        xs = [16, 0, 8, 0, 8, 0, 2, 0, 2]
        # remaining area intentionally uncovered (drop semantics)
        seq = _image_seq(sizes, ys, xs, [True] * 9, 32, pm, rng)
        tm = rng.normal(size=(9, 2, pm, pm))
        np.testing.assert_array_equal(seq.scatter_to_image(tm, fill=0.5),
                                      stitch_image(seq, tm, fill=0.5))

    def test_flat_vector_broadcast_multichannel(self):
        rng = np.random.default_rng(4)
        seq = _image_seq([8, 8, 4], [0, 8, 0], [0, 0, 8],
                         [True, True, False], 16, 4, rng)
        flat = rng.normal(size=(3, 5))
        np.testing.assert_array_equal(seq.scatter_to_image(flat),
                                      stitch_image(seq, flat))

    def test_shape_mismatch_raises(self):
        rng = np.random.default_rng(5)
        seq = _image_seq([4], [0], [0], [True], 16, 4, rng)
        with pytest.raises(ValueError):
            stitch_image(seq, rng.normal(size=(2, 1, 4, 4)))
        with pytest.raises(ValueError):
            stitch_image(seq, rng.normal(size=(1, 1, 4)))


def _volume_seq(sizes, zs, ys, xs, valid, n, pm, rng):
    sizes = np.asarray(sizes, dtype=np.int64)
    return VolumeSequence(
        patches=rng.normal(size=(len(sizes), pm, pm, pm)),
        zs=np.asarray(zs, dtype=np.int64), ys=np.asarray(ys, dtype=np.int64),
        xs=np.asarray(xs, dtype=np.int64), sizes=sizes,
        volume_size=n, patch_size=pm,
        valid=np.asarray(valid, dtype=bool), n_real=int(np.sum(valid)))


class TestVolumeEdgeCases:
    def test_single_cube_covers_whole_volume(self):
        rng = np.random.default_rng(6)
        seq = _volume_seq([16], [0], [0], [0], [True], 16, 4, rng)
        tv = rng.normal(size=(1, 4, 4, 4))
        np.testing.assert_array_equal(seq.scatter_to_volume(tv, fill=1.5),
                                      stitch_volume(seq, tv, fill=1.5))

    def test_single_cube_from_real_patcher(self):
        patcher = VolumetricAdaptivePatcher(
            VolumeAPFConfig(patch_size=4, split_value=8.0))
        seq = patcher.extract_natural(np.full((16, 16, 16), 0.25))
        assert len(seq) == 1 and int(seq.sizes[0]) == 16
        tv = np.random.default_rng(7).normal(size=(1, 4, 4, 4))
        np.testing.assert_array_equal(seq.scatter_to_volume(tv),
                                      stitch_volume(seq, tv))

    def test_all_padded_volume_row(self):
        rng = np.random.default_rng(8)
        seq = _volume_seq([0, 0], [0, 0], [0, 0], [0, 0], [False, False],
                         8, 4, rng)
        tv = rng.normal(size=(2, 4, 4, 4))
        got = stitch_volume(seq, tv, fill=-3.0)
        np.testing.assert_array_equal(got, np.full((8, 8, 8), -3.0))
        np.testing.assert_array_equal(got,
                                      seq.scatter_to_volume(tv, fill=-3.0))

    def test_scalar_broadcast_with_padding(self):
        rng = np.random.default_rng(9)
        seq = _volume_seq([8, 4, 4], [0, 8, 8], [0, 0, 4], [0, 0, 0],
                         [True, True, False], 16, 4, rng)
        scalars = rng.normal(size=3)
        np.testing.assert_array_equal(seq.scatter_to_volume(scalars),
                                      stitch_volume(seq, scalars))
