"""The sparsity runtime: wires chooser, tables and plans into the scheduler.

One :class:`SparseRuntime` hangs off a
:class:`~repro.serve.predictor.Predictor` (``sparsity=SparsityConfig(...)``)
and the shared :class:`~repro.serve.scheduler.WorkGraphScheduler` consults
it at two points:

* :meth:`prepare` — when a natural sequence becomes a graph node: replay
  it from the memo if its exact bytes were served before, otherwise ask
  the cost-model chooser for a plan and, for sparse plans, swap the
  node's sequence for the reduced one (the bucket, the micro-batch and
  the compiled signature all shrink with it).
* :meth:`reconstruct` — when the reduced forward returns: expand the
  logits back to the full token layout (kept rows from the model, merged
  rows from their representative, short-circuited rows from the table
  copies taken at plan time), then seed the table with the in-context
  rows of first-seen background digests, so the stitch sees a
  full-length sequence and outputs stay shape-identical.

The table is warmed **by serving, never by extra forwards**: a probe
forward per distinct digest would cost about as much per token-row as
just running the token (the forward is MLP-dominated, linear in rows),
so cold content stays in the sequence as its digest group's
representative and only *repeat* sightings are skipped. Dense-plan
sequences seed the table too — warm-up does not depend on the chooser's
verdict.

All decisions and cache traffic are counted in :attr:`stats`, which the
Predictor exposes as ``stats["sparsity"]`` — visible through
``engine.stats()`` in every front-end.
"""

from __future__ import annotations

import numpy as np

from .chooser import PlanChooser
from .config import SparsityConfig
from .digest import sequence_digest, token_digests
from .plans import background_mask, merge_plan, shortcircuit_plan
from .table import BackgroundTable, SequenceMemo

__all__ = ["SparseRuntime"]


class SparseRuntime:
    """Per-predictor sparsity state: chooser, background table, memo."""

    def __init__(self, predictor, config: SparsityConfig):
        self.predictor = predictor
        self.config = config
        self.chooser = PlanChooser(predictor.model, config)
        self.table = BackgroundTable(config.table_items)
        self.memo = SequenceMemo(config.memo_items)
        self.stats = {
            "mode": config.mode,
            "plans": {"dense": 0, "shortcircuit": 0, "merge": 0},
            "memo_hits": 0, "memo_misses": 0,
            "table_hits": 0, "table_misses": 0, "table_seeds": 0,
            "tokens_total": 0, "tokens_skipped": 0, "tokens_merged": 0,
            "last_decision": None,
        }

    # -- node preparation --------------------------------------------------
    def prepare(self, node) -> None:
        """Memo-replay or plan one sequence node (possibly reducing it)."""
        seq = node.seq
        key = sequence_digest(seq)
        hit = self.memo.get(key)
        if hit is not None:
            self.stats["memo_hits"] += 1
            node.result = hit
            node.done = True
            return
        self.stats["memo_misses"] += 1
        node.memo_key = key

        choice, plan, seeds = self._plan(seq)
        self.stats["plans"][choice.plan] += 1
        self.stats["tokens_total"] += choice.n_tokens
        self.stats["last_decision"] = {
            "plan": choice.plan, "n_tokens": choice.n_tokens,
            "n_background": choice.n_background, "n_merged": choice.n_merged,
            "est_seconds": dict(choice.est_seconds),
            "deltas": dict(choice.deltas),
        }
        if plan is not None:
            self.stats["tokens_skipped"] += plan.n_skipped
            self.stats["tokens_merged"] += plan.n_merged
            node.sparse = plan
            node.seq = plan.reduced_seq
        elif seeds:
            # Dense verdict, but the sequence still carries first-seen
            # background digests — their forward rows warm the table.
            node.seed_keys = seeds

    def _plan(self, seq):
        """Rank candidates for one sequence.

        Returns ``(choice, plan-or-None, seed-keys-or-None)`` — the seed
        keys only when the dense plan won but background digests should
        still be harvested from its forward.
        """
        cfg = self.config
        sched = self.predictor.scheduler
        n = len(seq)
        dense = (lambda c, seeds=None: (c, None, seeds))

        # Sparse plans need the full natural layout: every row real, and
        # detail metadata present so background claims are grounded.
        if n == 0 or not bool(seq.valid.all()):
            return dense(self.chooser.choose(n, 0, 0.0, 0.0, 0,
                                             sched.bucket_length))
        digests = token_digests(seq.tokens(), cfg.quantize)
        bg = background_mask(seq, cfg.detail_threshold)
        splan, seeds = None, None
        n_sc, sc_mass, total_mass = 0, 0.0, 0.0
        if bg is not None and int(bg.sum()) >= cfg.min_background:
            if bg.all():
                # An all-background sequence still anchors one token in the
                # model path so the reduced forward is never empty.
                bg[0] = False
            scene = getattr(seq, "image_size", None) or seq.volume_size
            cached: dict = {}
            known = np.zeros(n, dtype=bool)
            for i in np.flatnonzero(bg):
                row = self.table.get(BackgroundTable.key(
                    digests[i], seq.sizes[i], scene))
                if row is not None:
                    cached[int(i)] = row
                    known[i] = True
            self.stats["table_hits"] = self.table.hits
            self.stats["table_misses"] = self.table.misses
            splan = shortcircuit_plan(seq, digests, bg, known)
            splan.cached = cached
            seeds = [(BackgroundTable.key(digests[i], seq.sizes[i], scene),
                      int(i)) for i in splan.seeds]
            # Cost side: tokens the plan actually removes from the forward
            # (table-known skips + duplicates of a first-seen digest).
            # Quality side: the removed tokens' share of the detail mass —
            # representatives stay in-context, so their mass is exact.
            n_sc = n - len(splan.reduced_seq)
            total_mass = float(seq.details.sum())
            sc_mass = (float(seq.details[bg].sum())
                       - float(seq.details[splan.seeds].sum()))

        mplan = None
        if cfg.mode == "merge" or (cfg.mode == "auto" and cfg.epsilon > 0):
            mplan = merge_plan(seq, digests, seq.sizes, cfg.min_run)
        n_merged = 0 if mplan is None else mplan.n_merged

        choice = self.chooser.choose(n, n_sc, sc_mass, total_mass, n_merged,
                                     sched.bucket_length)
        if choice.plan == "shortcircuit":
            plan = splan
        elif choice.plan == "merge":
            plan = mplan
        else:
            return dense(choice, seeds)
        # A reduced sequence that would still overflow the positional table
        # gets randomly dropped by the fitter, destroying the row map — run
        # those (rare, maximally detailed) sequences dense instead.
        if sched.bucket_length(len(plan.reduced_seq)) < len(plan.reduced_seq):
            choice.plan = "dense"
            return dense(choice, seeds)
        return choice, plan, None

    # -- post-forward reconstruction ---------------------------------------
    def reconstruct(self, node, logits: np.ndarray) -> np.ndarray:
        """Expand reduced logits (padded length, D) to the full layout.

        Short-circuited rows come from the table copies taken at plan
        time (eviction-proof), then the representatives' in-context rows
        seed the table for future sequences.
        """
        plan = node.sparse
        full = plan.full_seq
        out = np.empty((len(full), logits.shape[-1]), dtype=logits.dtype)
        kept = plan.rows >= 0
        out[kept] = logits[plan.rows[kept]]
        if plan.cached:
            for i, row in plan.cached.items():
                out[i] = row
        if plan.seeds is not None and len(plan.seeds):
            scene = getattr(full, "image_size", None)
            if scene is None:
                scene = full.volume_size
            for i in plan.seeds:
                self.table.put(BackgroundTable.key(
                    plan.digests[i], full.sizes[i], scene), out[i])
            self.stats["table_seeds"] += len(plan.seeds)
        return out

    def seed_dense(self, node, logits_row: np.ndarray) -> None:
        """Harvest background rows from a dense-plan forward.

        ``logits_row`` is the node's (padded length, D) slice of the
        micro-batch output; row ``i`` is token ``i`` because padding only
        appends. A sequence the fitter had to *drop-fit* is skipped — its
        row map is unreliable (and `_plan` never forms sparse plans for
        those either).
        """
        keys = getattr(node, "seed_keys", None)
        if not keys or logits_row.shape[0] < len(node.seq):
            return
        for key, i in keys:
            self.table.put(key, logits_row[i])
        self.stats["table_seeds"] += len(keys)

    # -- memo population ---------------------------------------------------
    def finish(self, node, result: np.ndarray) -> None:
        """Store a freshly stitched result under the node's memo key."""
        if getattr(node, "memo_key", None) is not None:
            self.memo.put(node.memo_key, result)
