"""Tests for the Algorithm-1 patch precomputation cache."""

import numpy as np
import pytest

from repro.data import generate_wsi
from repro.patching import (AdaptivePatcher, CachingPatcher, PatchCache,
                            UniformPatcher)


def img(seed=0):
    return generate_wsi(64, seed=seed).image.mean(axis=2)


class TestPatchCache:
    def test_hit_miss_accounting(self):
        cache = PatchCache()
        p = AdaptivePatcher(patch_size=4, split_value=2.0)
        build = lambda: p(img())
        cache.get_or_build("a", build)
        cache.get_or_build("a", build)
        cache.get_or_build("b", lambda: p(img(1)))
        assert cache.hits == 1 and cache.misses == 2
        assert cache.hit_rate == pytest.approx(1 / 3)
        assert len(cache) == 2

    def test_max_items_cap(self):
        cache = PatchCache(max_items=1)
        p = AdaptivePatcher(patch_size=4, split_value=2.0)
        cache.get_or_build("a", lambda: p(img()))
        cache.get_or_build("b", lambda: p(img(1)))
        assert len(cache) == 1  # second entry not stored

    def test_invalid_cap(self):
        with pytest.raises(ValueError):
            PatchCache(max_items=0)

    def test_clear(self):
        cache = PatchCache()
        cache.get_or_build("a", lambda: AdaptivePatcher(patch_size=4)(img()))
        cache.clear()
        assert len(cache) == 0


class TestCachingPatcher:
    def test_wraps_adaptive_only(self):
        with pytest.raises(TypeError):
            CachingPatcher(UniformPatcher(4))

    def test_same_geometry_as_uncached(self):
        plain = AdaptivePatcher(patch_size=4, split_value=2.0)
        cached = CachingPatcher(AdaptivePatcher(patch_size=4, split_value=2.0))
        a = plain(img())
        b = cached(img())
        np.testing.assert_array_equal(a.ys, b.ys)
        np.testing.assert_array_equal(a.patches, b.patches)

    def test_second_call_hits_cache(self):
        cached = CachingPatcher(AdaptivePatcher(patch_size=4, split_value=2.0))
        cached(img(), key="x")
        cached(img(), key="x")
        assert cached.cache.hits == 1
        assert cached.cache.build_seconds > 0

    def test_content_keying_without_explicit_key(self):
        cached = CachingPatcher(AdaptivePatcher(patch_size=4, split_value=2.0))
        cached(img())
        cached(img())
        cached(img(1))
        assert cached.cache.hits == 1 and cached.cache.misses == 2

    def test_drops_still_random_after_cache(self):
        # The cached natural sequence is shared but the drop step must stay
        # stochastic across calls (training-time augmentation).
        p = AdaptivePatcher(patch_size=2, split_value=0.5, target_length=10)
        cached = CachingPatcher(p)
        s1 = cached(img(), key="k")
        s2 = cached(img(), key="k")
        assert cached.cache.misses == 1
        assert len(s1) == len(s2) == 10
        # Different drops almost surely pick different leaves.
        assert not np.array_equal(s1.ys, s2.ys) or not np.array_equal(s1.xs, s2.xs)

    def test_extract_natural_cached(self):
        cached = CachingPatcher(AdaptivePatcher(patch_size=4, split_value=2.0,
                                                target_length=32))
        nat = cached.extract_natural(img(), key="k")
        again = cached.extract_natural(img(), key="k")
        assert nat is again  # same cached object

    def test_works_in_token_task(self):
        from repro.models import ViTSegmenter
        from repro.train import TokenSegmentationTask

        sample = generate_wsi(64, seed=0)
        cached = CachingPatcher(AdaptivePatcher(patch_size=4, split_value=2.0,
                                                target_length=128))
        model = ViTSegmenter(patch_size=4, channels=1, dim=16, depth=1,
                             heads=2, max_len=256)
        task = TokenSegmentationTask(model, cached, channels=1)
        loss1 = task.val_loss([sample])
        loss2 = task.val_loss([sample])
        assert np.isfinite(loss1) and np.isfinite(loss2)
        assert cached.cache.hits >= 1
        # Evaluation path must use the natural (no-drop) sequence.
        probs = task.predict_probs(sample)
        assert probs.shape == (1, 64, 64)


class TestTrainerNanGuard:
    def test_nonfinite_loss_raises(self):
        from repro import nn
        from repro.train import Trainer

        class BadTask:
            def __init__(self):
                self.w = nn.Parameter(np.ones(1))

            def parameters(self):
                return [self.w]

            def batch_loss(self, batch):
                return (self.w * np.nan).sum()

            def val_loss(self, batch):
                return 0.0

            def evaluate(self, batch):
                return 0.0

        task = BadTask()
        tr = Trainer(task, nn.SGD(task.parameters(), lr=0.1), batch_size=1)
        with pytest.raises(FloatingPointError):
            tr.train_epoch([0])
