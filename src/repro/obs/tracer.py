"""Request tracing — zero-cost-when-disabled spans over any clock.

The serving stack's flight recorder. A :class:`Tracer` collects timeline
events (spans, instants, async request intervals) from every layer of the
request lifecycle — ``InferenceEngine.submit`` → queue wait → micro-batch
formation → plan-cache → compiled-graph execution → stitch → completion —
and :mod:`repro.obs.export` turns them into Chrome trace-event JSON,
a text flame summary, and per-request critical-path breakdowns.

Design rules (the ones that keep the hot path honest):

**Zero cost when disabled.** Components normalize their tracer reference
at construction: ``self.tracer = tracer if (tracer is not None and
tracer.enabled) else None`` — so every instrumentation site is a single
``if self.tracer is not None`` check against a plain attribute, and the
disabled path is byte-identical to an uninstrumented build (the
``BENCH_obs`` gate pins ≤1% wall-clock overhead and bit-identical
outputs).

**Explicit context, no thread-locals.** Spans are opened and closed with
explicit timestamps and identifiers; request correlation rides an integer
``rid`` drawn from :meth:`Tracer.next_id` and carried on the
:class:`~repro.serve.queueing.Request` itself — through collapse chains,
eviction, and adoption by another replica — so parentage survives fleet
re-homing without any ambient state.

**The clock comes from the caller.** Wall time (``time.monotonic``) by
default; pass a DES :class:`~repro.serve.loadgen.SimClock`'s ``now`` and
every event is stamped in *virtual* seconds — two same-seed simulated
runs then export byte-identical traces (gated in CI). Per-kernel
profiling (:class:`KernelProfile`) is the one deliberate exception: it
measures real ``perf_counter`` seconds per executor step and aggregates
them *outside* the event timeline, so enabling it never perturbs trace
determinism.
"""

from __future__ import annotations

import itertools
import threading
import time
from typing import Callable, Dict, List, Optional

__all__ = ["Tracer", "Span", "KernelProfile"]


class KernelProfile:
    """Per-kernel aggregate of executor-step timings joined with FLOP/byte
    estimates (:func:`repro.perf.flops.kernel_cost`).

    The compiled :class:`~repro.runtime.compile.ExecutionPlan` calls
    :meth:`hook` once per step when profiling is on; :meth:`summary`
    reports calls, seconds, and *achieved* GFLOP/s / GB/s per kernel —
    the number that says whether ``sdpa`` or ``linear_gelu`` is actually
    running at the speed the cost model assumes.
    """

    def __init__(self) -> None:
        self._ops: Dict[str, List[float]] = {}   # op -> [calls, s, flops, bytes]
        self._lock = threading.Lock()

    def record(self, op: str, seconds: float, flops: float = 0.0,
               bytes: float = 0.0) -> None:
        with self._lock:
            agg = self._ops.get(op)
            if agg is None:
                self._ops[op] = [1, seconds, flops, bytes]
            else:
                agg[0] += 1
                agg[1] += seconds
                agg[2] += flops
                agg[3] += bytes

    def hook(self, name: str, seconds: float,
             meta: Optional[dict] = None) -> None:
        """The :attr:`ExecutionPlan.profile_hook` signature."""
        meta = meta or {}
        self.record(name, seconds, meta.get("flops", 0.0),
                    meta.get("bytes", 0.0))

    def summary(self) -> Dict[str, Dict[str, float]]:
        """Per-op totals plus achieved throughput, heaviest ops first."""
        with self._lock:
            items = [(op, list(agg)) for op, agg in self._ops.items()]
        items.sort(key=lambda kv: (-kv[1][1], kv[0]))
        out: Dict[str, Dict[str, float]] = {}
        for op, (calls, seconds, flops, nbytes) in items:
            out[op] = {
                "calls": int(calls),
                "seconds": seconds,
                "gflops": flops / 1e9,
                "gbytes": nbytes / 1e9,
                "gflop_per_s": flops / 1e9 / seconds if seconds > 0 else 0.0,
                "gb_per_s": nbytes / 1e9 / seconds if seconds > 0 else 0.0,
            }
        return out


class Span:
    """An open interval on one tracer track; close with :meth:`end` (or use
    as a context manager — the common wall-clock idiom)."""

    __slots__ = ("_tracer", "name", "track", "tid", "start", "args")

    def __init__(self, tracer: Optional["Tracer"], name: str, track: str,
                 tid: str, start: float, args: Optional[dict]):
        self._tracer = tracer
        self.name = name
        self.track = track
        self.tid = tid
        self.start = start
        self.args = args

    def end(self, t: Optional[float] = None,
            args: Optional[dict] = None) -> None:
        tr = self._tracer
        if tr is None:
            return
        self._tracer = None          # idempotent: a span closes once
        if args:
            merged = dict(self.args or {})
            merged.update(args)
        else:
            merged = self.args
        tr.complete(self.name, self.track,
                    self.start, tr.clock() if t is None else t,
                    tid=self.tid, args=merged)

    def __enter__(self) -> "Span":
        return self

    def __exit__(self, exc_type, exc, tb) -> None:
        self.end()


class Tracer:
    """Event collector for one serving run (engine, fleet, or viewer).

    Parameters
    ----------
    clock:
        Time source for events recorded without an explicit timestamp,
        and for :class:`Span` context managers. Pass the engine's clock —
        ``time.monotonic`` in threaded mode, a
        :class:`~repro.serve.loadgen.SimClock`'s ``now`` under the DES —
        so spans land on the same timeline the engine schedules on.
    enabled:
        ``False`` builds a dead tracer: components normalize it away at
        construction, so nothing is ever recorded and nothing is paid.
    profile_kernels:
        Attach a :class:`KernelProfile` (exposed as :attr:`kernels`) that
        the compiled executor feeds per-step wall timings. Off by default
        — and left off in DES runs, where real timings would be noise
        (the aggregate lives outside the event list either way, so traces
        stay deterministic even when it is on).

    Events accumulate in :attr:`events` as plain dicts on the internal
    schema (seconds-valued ``ts``); :mod:`repro.obs.export` renders them.
    Recording is a single locked list append — cheap enough for per-request
    instrumentation, and thread-safe for threaded engine mode.
    """

    def __init__(self, *, clock: Callable[[], float] = time.monotonic,
                 enabled: bool = True, profile_kernels: bool = False):
        self.enabled = bool(enabled)
        self.clock = clock
        self.events: List[dict] = []
        self.kernels: Optional[KernelProfile] = \
            KernelProfile() if profile_kernels else None
        self._ids = itertools.count(1)
        self._tracks: Dict[str, int] = {}
        self._lock = threading.Lock()

    # -- identity ----------------------------------------------------------
    def next_id(self) -> int:
        """A run-unique request id (``rid``) — deterministic under the DES
        (single-threaded allocation order) and unique across a whole fleet
        because the tracer is shared by every replica."""
        return next(self._ids)

    @property
    def tracks(self) -> Dict[str, int]:
        """Track name -> pid (1-based, first-seen order)."""
        with self._lock:
            return dict(self._tracks)

    # -- recording ---------------------------------------------------------
    def _emit(self, ev: dict) -> None:
        with self._lock:
            track = ev["track"]
            if track not in self._tracks:
                self._tracks[track] = len(self._tracks) + 1
            self.events.append(ev)

    def complete(self, name: str, track: str, start: float, end: float, *,
                 tid: str = "main", args: Optional[dict] = None) -> None:
        """One closed span (Chrome ``ph="X"``) on ``track``/``tid``."""
        if not self.enabled:
            return
        self._emit({"ph": "X", "name": name, "track": track, "tid": tid,
                    "ts": start, "dur": max(end - start, 0.0), "args": args})

    def instant(self, name: str, track: str, t: Optional[float] = None, *,
                tid: str = "main", args: Optional[dict] = None) -> None:
        """A point event (Chrome ``ph="i"``) — rejections, evictions, faults."""
        if not self.enabled:
            return
        self._emit({"ph": "i", "name": name, "track": track, "tid": tid,
                    "ts": self.clock() if t is None else t, "args": args})

    def async_begin(self, name: str, track: str, t: float, uid: int, *,
                    tid: str = "main", args: Optional[dict] = None) -> None:
        """Open an async interval (Chrome ``ph="b"``), matched by ``uid``.

        Request lifetimes are async events, not nested spans: queue waits
        of co-batched requests overlap arbitrarily, which would break
        strict span nesting on a shared thread — async intervals carry
        their own identity (``cat="request", id=rid``) instead.
        """
        if not self.enabled:
            return
        self._emit({"ph": "b", "name": name, "track": track, "tid": tid,
                    "ts": t, "cat": name, "id": uid, "args": args})

    def async_end(self, name: str, track: str, t: float, uid: int, *,
                  tid: str = "main", args: Optional[dict] = None) -> None:
        """Close the async interval opened with the same ``uid``."""
        if not self.enabled:
            return
        self._emit({"ph": "e", "name": name, "track": track, "tid": tid,
                    "ts": t, "cat": name, "id": uid, "args": args})

    def begin(self, name: str, track: str, *, tid: str = "main",
              t: Optional[float] = None,
              args: Optional[dict] = None) -> Span:
        """Open a :class:`Span` (wall-clock convenience; DES call sites
        prefer explicit :meth:`complete` stamps)."""
        if not self.enabled:
            return Span(None, name, track, tid, 0.0, None)
        return Span(self, name, track, tid,
                    self.clock() if t is None else t, args)
