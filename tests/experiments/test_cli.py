"""Tests for the ``python -m repro.experiments`` CLI."""

import pytest

from repro.experiments.__main__ import _RUNNERS, main


class TestCli:
    def test_runner_registry_covers_all_artifacts(self):
        assert {"fig1", "fig2", "fig3", "fig4-models", "fig4-patches",
                "table2", "table2-projection", "table3", "table4", "table5",
                "overhead"} == set(_RUNNERS)

    def test_fig1_runs(self, capsys):
        rc = main(["fig1", "--resolution", "64"])
        assert rc == 0
        out = capsys.readouterr().out
        assert "sequence reduction" in out

    def test_table2_projection_runs(self, capsys):
        rc = main(["table2-projection"])
        assert rc == 0
        assert "model x" in capsys.readouterr().out

    def test_invalid_experiment_rejected(self):
        with pytest.raises(SystemExit):
            main(["table99"])

    def test_scale_flags_forwarded(self, capsys):
        rc = main(["table2", "--resolution", "32", "--samples", "6",
                   "--epochs", "2", "--dim", "16", "--depth", "1"])
        assert rc == 0
        assert "speedup" in capsys.readouterr().out
