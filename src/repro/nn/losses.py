"""Segmentation and classification losses.

Implements the paper's Eq. (7)-(9): a weighted sum of binary cross-entropy
and dice loss with weight ``w = 0.5`` and smoothing ``eps = 1.0``, plus
multi-class cross-entropy / dice used by the BTCV (Table IV) experiments.
"""

from __future__ import annotations


import numpy as np

from . import functional as F
from .tensor import Tensor

__all__ = [
    "bce_loss",
    "dice_loss",
    "combined_bce_dice",
    "cross_entropy",
    "multiclass_dice_loss",
]


def _as_tensor(y) -> Tensor:
    return y if isinstance(y, Tensor) else Tensor(np.asarray(y))


def bce_loss(pred_logits: Tensor, target, eps: float = 1e-7) -> Tensor:
    """Binary cross-entropy on logits (stable formulation).

    ``BCE = mean( max(x,0) - x*y + log(1+exp(-|x|)) )`` which equals
    ``-mean(y log p + (1-y) log(1-p))`` for ``p = sigmoid(x)`` but never
    overflows.
    """
    target = _as_tensor(target)
    x = pred_logits
    # log(1+exp(-|x|)) via composition of stable primitives:
    abs_x = x.abs()
    softplus_negabs = ((-abs_x).exp() + 1.0).log()
    loss = x.relu() - x * target + softplus_negabs
    return loss.mean()


def dice_loss(pred_logits: Tensor, target, eps: float = 1.0) -> Tensor:
    """Soft dice loss ``1 - (2*sum(p*y)+eps)/(sum(p)+sum(y)+eps)`` (paper Eq. 9).

    ``eps`` is the paper's smoothing term, kept at 1.0 in all experiments.
    """
    target = _as_tensor(target)
    p = pred_logits.sigmoid()
    inter = (p * target).sum()
    denom = p.sum() + target.sum()
    return 1.0 - (inter * 2.0 + eps) / (denom + eps)


def combined_bce_dice(pred_logits: Tensor, target, w: float = 0.5,
                      eps: float = 1.0) -> Tensor:
    """Paper Eq. (7): ``w * BCE + (1-w) * dice`` with ``w = 0.5``."""
    return bce_loss(pred_logits, target) * w + dice_loss(pred_logits, target, eps=eps) * (1.0 - w)


def cross_entropy(logits: Tensor, target_idx: np.ndarray) -> Tensor:
    """Multi-class cross-entropy.

    ``logits``: (..., C); ``target_idx``: integer array matching the leading
    shape of ``logits``.
    """
    logp = F.log_softmax(logits, axis=-1)
    idx = np.asarray(target_idx)
    flat_logp = logp.reshape(-1, logits.shape[-1])
    flat_idx = idx.reshape(-1)
    picked = flat_logp[np.arange(flat_idx.size), flat_idx]
    return -picked.mean()


def multiclass_dice_loss(logits: Tensor, target_onehot, eps: float = 1.0) -> Tensor:
    """Mean soft dice over classes. ``logits``/``target_onehot``: (N, C, ...)."""
    target_onehot = _as_tensor(target_onehot)
    p = F.softmax(logits, axis=1)
    ndim = len(logits.shape)
    reduce_axes = (0,) + tuple(range(2, ndim))
    inter = (p * target_onehot).sum(axis=reduce_axes)
    denom = p.sum(axis=reduce_axes) + target_onehot.sum(axis=reduce_axes)
    dice_per_class = (inter * 2.0 + eps) / (denom + eps)
    return 1.0 - dice_per_class.mean()
