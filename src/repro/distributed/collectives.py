"""Simulated MPI-style collectives on in-process buffers.

The Frontier runs of the paper use data parallelism over up to 2,048 GPUs.
Offline we cannot launch ranks, but the *algorithms* are real: ring
all-reduce is implemented step-by-step over per-rank NumPy buffers (chunked
reduce-scatter + all-gather), so numerical results are bit-identical to what
a real ring would produce, and per-step traffic is accounted for the cost
model.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Sequence

import numpy as np

__all__ = ["CommStats", "SimCluster"]


@dataclass
class CommStats:
    """Traffic accounting for one collective."""

    bytes_sent_per_rank: float = 0.0
    steps: int = 0

    def merge(self, other: "CommStats") -> None:
        self.bytes_sent_per_rank += other.bytes_sent_per_rank
        self.steps += other.steps


class SimCluster:
    """A fixed-size group of simulated ranks."""

    def __init__(self, world_size: int):
        if world_size < 1:
            raise ValueError("world_size must be >= 1")
        self.world_size = world_size

    # ------------------------------------------------------------------
    def shard_indices(self, n: int, rank: int) -> np.ndarray:
        """Contiguous near-even split of ``range(n)`` for ``rank``."""
        if not 0 <= rank < self.world_size:
            raise ValueError(f"rank {rank} out of range")
        bounds = np.linspace(0, n, self.world_size + 1).astype(int)
        return np.arange(bounds[rank], bounds[rank + 1])

    # ------------------------------------------------------------------
    def ring_all_reduce(self, rank_buffers: Sequence[np.ndarray]):
        """Ring all-reduce (sum) over one buffer per rank.

        Returns ``(list_of_reduced_buffers, CommStats)``. The reduction is
        performed with the actual two-phase ring schedule: W-1 reduce-scatter
        steps followed by W-1 all-gather steps over W chunks.
        """
        w = self.world_size
        if len(rank_buffers) != w:
            raise ValueError(f"expected {w} buffers, got {len(rank_buffers)}")
        shapes = {b.shape for b in rank_buffers}
        if len(shapes) != 1:
            raise ValueError(f"buffers must share a shape, got {shapes}")
        stats = CommStats()
        if w == 1:
            return [rank_buffers[0].copy()], stats

        flat = [np.array(b, dtype=np.float64).ravel() for b in rank_buffers]
        n = flat[0].size
        chunk_bounds = np.linspace(0, n, w + 1).astype(int)

        def chunk(r: int, c: int) -> slice:
            return slice(chunk_bounds[c], chunk_bounds[c + 1])

        bufs = [f.copy() for f in flat]
        # Phase 1: reduce-scatter. After step s, rank r owns the running sum
        # of chunk (r - s) mod w.
        for step in range(w - 1):
            transfers = []
            for r in range(w):
                c = (r - step) % w
                dst = (r + 1) % w
                transfers.append((dst, c, bufs[r][chunk(r, c)].copy()))
                stats.bytes_sent_per_rank += (chunk_bounds[c + 1] - chunk_bounds[c]) * 8 / w
            for dst, c, payload in transfers:
                bufs[dst][chunk(dst, c)] += payload
            stats.steps += 1
        # Phase 2: all-gather the reduced chunks around the ring.
        for step in range(w - 1):
            transfers = []
            for r in range(w):
                c = (r + 1 - step) % w
                dst = (r + 1) % w
                transfers.append((dst, c, bufs[r][chunk(r, c)].copy()))
                stats.bytes_sent_per_rank += (chunk_bounds[c + 1] - chunk_bounds[c]) * 8 / w
            for dst, c, payload in transfers:
                bufs[dst][chunk(dst, c)] = payload
            stats.steps += 1

        shape = rank_buffers[0].shape
        return [b.reshape(shape) for b in bufs], stats

    # ------------------------------------------------------------------
    def all_gather(self, rank_buffers: Sequence[np.ndarray]):
        """Every rank receives the concatenation of all rank buffers."""
        w = self.world_size
        if len(rank_buffers) != w:
            raise ValueError(f"expected {w} buffers, got {len(rank_buffers)}")
        gathered = np.concatenate([np.asarray(b).ravel() for b in rank_buffers])
        per_rank = sum(np.asarray(b).nbytes for b in rank_buffers) * (w - 1) / w
        return [gathered.copy() for _ in range(w)], CommStats(per_rank, w - 1)

    def all_to_all(self, rank_buffers: Sequence[np.ndarray]):
        """All-to-all (the Ulysses primitive): rank r sends chunk c of its
        buffer to rank c and receives chunk r from everyone.

        Each rank's buffer is split into ``world_size`` chunks along axis 0;
        rank r's output is the concatenation of chunk r from every rank.
        """
        w = self.world_size
        if len(rank_buffers) != w:
            raise ValueError(f"expected {w} buffers, got {len(rank_buffers)}")
        bufs = [np.asarray(b) for b in rank_buffers]
        for b in bufs:
            if b.shape[0] % w:
                raise ValueError(f"axis 0 ({b.shape[0]}) must divide by "
                                 f"world size {w}")
        chunked = [np.split(b, w, axis=0) for b in bufs]
        out = [np.concatenate([chunked[src][dst] for src in range(w)], axis=0)
               for dst in range(w)]
        per_rank = sum(b.nbytes for b in bufs) / w * (w - 1) / w
        return out, CommStats(per_rank, 1)

    def broadcast(self, buffer: np.ndarray):
        """Root sends ``buffer`` to all ranks (tree schedule accounting)."""
        w = self.world_size
        steps = int(np.ceil(np.log2(w))) if w > 1 else 0
        return ([np.asarray(buffer).copy() for _ in range(w)],
                CommStats(float(np.asarray(buffer).nbytes) * steps / max(w, 1), steps))
