"""Fig. 4 regeneration: training stability across models and patch sizes.

Paper: APF-UNETR converges better than uniform UNETR at the same budget
(top panel); smaller uniform patches converge more stably (bottom panel).
"""


def test_fig4_model_panel(once):
    from repro.experiments import ExperimentScale, run_fig4_models

    scale = ExperimentScale(resolution=64, n_samples=10, epochs=6, dim=24,
                            depth=2)
    r = once(run_fig4_models, scale)
    print("\n" + r.rows())
    # APF with the smaller patch matches or beats uniform UNETR at the large
    # patch (few-epoch runs carry noise; require within-10% or better).
    assert r.histories["APF-UNETR-2"].best_metric >= \
        r.histories["UNETR-8"].best_metric * 0.9
    # All three runs converge (loss decreasing overall).
    for name, h in r.histories.items():
        assert h.train_loss[-1] < h.train_loss[0], name


def test_fig4_patch_size_sweep(once):
    from repro.experiments import ExperimentScale, run_fig4_patch_sweep

    scale = ExperimentScale(resolution=64, n_samples=10, epochs=6, dim=24,
                            depth=2)
    r = once(run_fig4_patch_sweep, scale, patches=(2, 4, 8))
    print("\n" + r.rows())
    # Paper's bottom panel: the smallest patch beats the largest in quality,
    # and smaller patches train at least as stably (val-loss tail std).
    assert r.histories["UNETR-2"].best_metric >= \
        r.histories["UNETR-8"].best_metric
    assert min(r.stability("UNETR-2"), r.stability("UNETR-4")) <= \
        r.stability("UNETR-8") * 1.5
