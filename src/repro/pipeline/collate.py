"""Model-ready batch collation for patch sequences — 2-D or 3-D.

A :class:`CollatedBatch` is the hand-off point between preprocessing and the
models in :mod:`repro.models`: a dense token tensor — ``(B, L, C·Pm²)`` for
image sequences, ``(B, L, Pm³)`` for volume sequences — plus the validity
mask and geometry features the embedding layer consumes. The trainer and
task adapters accept it directly, so a
:class:`~repro.pipeline.engine.PatchPipeline` (or anything else producing
equal-length sequences) can feed training without per-step re-patching.

Collation is duck-typed over ``tokens()`` / ``coords()`` / ``valid``, so
:class:`~repro.patching.sequence.PatchSequence` and
:class:`~repro.patching.volumetric.VolumeSequence` flow through identically
(their coordinate features differ in width: 3 for images, 4 for volumes).
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import List, Optional, Sequence, Union

import numpy as np

from ..models.embedding import collate_sequences
from ..patching.sequence import PatchSequence
from ..patching.volumetric import VolumeSequence

__all__ = ["CollatedBatch", "collate_batch"]

#: Anything the collator accepts: same-length sequences with geometry.
AnySequence = Union[PatchSequence, VolumeSequence]


@dataclass
class CollatedBatch:
    """A batch of equal-length patch sequences, stacked for the model.

    Attributes
    ----------
    tokens:
        (B, L, C·Pm·Pm) — or (B, L, Pm³) for volumes — float64 flattened
        patches, zero at padded slots.
    coords:
        (B, L, 3) float64 — normalized (cy, cx, log2 size) per token — or
        (B, L, 4) with (cz, cy, cx, log2 size) for volumes.
    valid:
        (B, L) bool — False marks padding.
    sequences:
        The per-item :class:`PatchSequence` / :class:`VolumeSequence`
        objects (geometry for scatter).
    samples:
        Optional originating dataset samples (for supervision targets).
    """

    tokens: np.ndarray
    coords: np.ndarray
    valid: np.ndarray
    sequences: List[AnySequence]
    samples: Optional[list] = None

    def __len__(self) -> int:
        return len(self.sequences)

    @property
    def batch_size(self) -> int:
        return self.tokens.shape[0]

    @property
    def length(self) -> int:
        return self.tokens.shape[1]


def collate_batch(seqs: Sequence[AnySequence],
                  samples: Optional[list] = None) -> CollatedBatch:
    """Stack equal-length sequences into one :class:`CollatedBatch`."""
    tokens, coords, valid = collate_sequences(seqs)
    return CollatedBatch(tokens=tokens, coords=coords, valid=valid,
                         sequences=list(seqs), samples=samples)
