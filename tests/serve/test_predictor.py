"""Tests for the micro-batching Predictor and the vectorized stitchers."""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.data import SyntheticPAIP, generate_ct_volume
from repro.models.vit import ViTSegmenter, VolumeViTSegmenter
from repro.patching import (AdaptivePatcher, APFConfig, VolumeAPFConfig,
                            VolumetricAdaptivePatcher)
from repro.pipeline import PatchPipeline
from repro.serve import Predictor, predict_image, stitch_image, stitch_volume
from repro.train.tasks import prepare_image
from repro.train.volumetric import predict_volume

settings.register_profile("serve", max_examples=15, deadline=None)
settings.load_profile("serve")


def _model(**kw):
    args = dict(patch_size=4, channels=1, dim=16, depth=2, heads=2,
                max_len=256, rng=np.random.default_rng(1))
    args.update(kw)
    return ViTSegmenter(**args)


def _pipe(**kw):
    args = dict(patch_size=4, split_value=8.0, channels=1, cache_items=32)
    args.update(kw)
    return PatchPipeline(**args)


def _images(n, res=64):
    ds = SyntheticPAIP(res, n)
    return [ds[i].image for i in range(n)]


class TestStitchEquivalence:
    """The grouped block-view stitchers must reproduce the reference
    per-leaf scatter loops bit for bit."""

    @given(st.integers(0, 10 ** 6), st.integers(1, 3), st.booleans())
    def test_stitch_image_matches_scatter(self, seed, k, pad):
        rng = np.random.default_rng(seed)
        img = prepare_image(_images(1)[0], 1).transpose(1, 2, 0)
        patcher = AdaptivePatcher(APFConfig(patch_size=4, split_value=8.0))
        seq = patcher.extract_natural(img)
        if pad:
            seq = patcher.fit_length(seq, len(seq) + 7)
        tm = rng.normal(size=(len(seq), k, 4, 4))
        np.testing.assert_array_equal(seq.scatter_to_image(tm, fill=0.25),
                                      stitch_image(seq, tm, fill=0.25))
        flat = rng.normal(size=(len(seq), k))
        np.testing.assert_array_equal(seq.scatter_to_image(flat),
                                      stitch_image(seq, flat))

    @given(st.integers(0, 10 ** 6), st.booleans())
    def test_stitch_volume_matches_scatter(self, seed, pad):
        rng = np.random.default_rng(seed)
        vol = generate_ct_volume(32, 32, seed=seed % 7).volume
        patcher = VolumetricAdaptivePatcher(
            VolumeAPFConfig(patch_size=4, split_value=8.0))
        seq = patcher.extract_natural(vol)
        if pad:
            seq = patcher.fit_length(seq, len(seq) + 9)
        tv = rng.normal(size=(len(seq), 4, 4, 4))
        np.testing.assert_array_equal(seq.scatter_to_volume(tv, fill=-1.0),
                                      stitch_volume(seq, tv, fill=-1.0))
        np.testing.assert_array_equal(seq.scatter_to_volume(tv[:, 0, 0, 0]),
                                      stitch_volume(seq, tv[:, 0, 0, 0]))

    def test_downscale_leaves_smaller_than_patch(self):
        # Hand-built sequence with a leaf *smaller* than the model patch
        # (scatter must average-pool 8x8 token maps down to 4x4 leaves).
        from repro.patching.sequence import PatchSequence
        rng = np.random.default_rng(0)
        pm = 8
        sizes = np.array([16, 8, 4, 4], dtype=np.int64)
        seq = PatchSequence(
            patches=rng.normal(size=(4, 1, pm, pm)),
            ys=np.array([0, 16, 16, 20], dtype=np.int64),
            xs=np.array([0, 0, 8, 8], dtype=np.int64),
            sizes=sizes, valid=np.ones(4, dtype=bool),
            image_size=32, patch_size=pm, n_real=4)
        tm = rng.normal(size=(len(seq), 2, pm, pm))
        np.testing.assert_array_equal(seq.scatter_to_image(tm),
                                      stitch_image(seq, tm))


class TestPredictor:
    def test_compiled_matches_eager_mode_bitwise(self):
        imgs = _images(5)
        model = _model()
        compiled = Predictor(model, _pipe(), max_batch=2, bucket=16)
        eager = Predictor(model, _pipe(), max_batch=2, bucket=16,
                          compiled=False)
        a = compiled.predict_batch(imgs, keys=list(range(5)))
        b = eager.predict_batch(imgs, keys=list(range(5)))
        for x, y in zip(a, b):
            np.testing.assert_array_equal(x, y)

    def test_results_keep_input_order_across_buckets(self):
        imgs = _images(6)
        model = _model()
        server = Predictor(model, _pipe(), max_batch=3, bucket=8)
        seqs = server._naturals(imgs, list(range(6)))
        assert len({server.bucket_length(len(s)) for s in seqs}) > 1, \
            "workload no longer spans multiple buckets"
        got = server.predict_sequences(seqs)
        # Per-sequence singleton predictions must agree with their batch slot.
        solo = Predictor(model, _pipe(), max_batch=1, bucket=8)
        for seq, batch_out in zip(seqs, got):
            np.testing.assert_array_equal(
                batch_out.shape, solo.predict_sequences([seq])[0].shape)
            assert batch_out.shape == (1, 64, 64)

    def test_predict_image_close_to_reference_predict_mask(self):
        img = _images(1)[0]
        model = _model()
        server = Predictor(model, _pipe(), max_batch=1, bucket=16)
        got = server.predict_image(img)
        patcher = AdaptivePatcher(APFConfig(patch_size=4, split_value=8.0))
        seq = patcher.extract_natural(
            prepare_image(img, 1).transpose(1, 2, 0))
        ref = model.predict_mask(seq)
        assert got.shape == ref.shape
        # Bucket padding perturbs batch BLAS slightly; agreement is tight
        # but not bitwise (predict_mask runs the unpadded length).
        np.testing.assert_allclose(got, ref, atol=1e-5)

    def test_plan_cache_bounded_by_signatures(self):
        imgs = _images(6)
        server = Predictor(_model(), _pipe(), max_batch=2, bucket=64)
        server.predict_batch(imgs, keys=list(range(6)))
        n_plans = server.stats["plans"]
        server.predict_batch(imgs, keys=list(range(6)))
        assert server.stats["plans"] == n_plans   # steady state: no growth
        assert server.stats["batches"] > 0

    def test_overlong_sequences_drop_deterministically(self):
        model = _model(max_len=32)
        server = Predictor(model, _pipe(), max_batch=1, bucket=16)
        img = _images(1)[0]
        a = server.predict_image(img)
        b = server.predict_image(img)
        np.testing.assert_array_equal(a, b)

    def test_volumetric_predictor_compiled_matches_eager(self):
        vols = [generate_ct_volume(32, 32, seed=s).volume for s in range(3)]
        model = VolumeViTSegmenter(patch_size=4, dim=16, depth=1, heads=2,
                                   max_len=512, rng=np.random.default_rng(2))
        mk = lambda: PatchPipeline(VolumeAPFConfig(patch_size=4,
                                                   split_value=8.0))
        a = Predictor(model, mk(), max_batch=2,
                      bucket=32).predict_batch(vols, keys=[0, 1, 2])
        b = Predictor(model, mk(), max_batch=2, bucket=32,
                      compiled=False).predict_batch(vols, keys=[0, 1, 2])
        for x, y in zip(a, b):
            assert x.shape == (32, 32, 32)
            np.testing.assert_array_equal(x, y)

    def test_predict_volume_matches_per_slice_protocol(self):
        imgs = _images(4)
        model = _model()
        server = Predictor(model, _pipe(), max_batch=2, bucket=16)
        volume = np.stack([prepare_image(im, 1)[0] for im in imgs])
        got = server.predict_volume(volume, batch_size=2)
        ref = predict_volume(
            lambda s: server.predict_class_slices([s])[0], volume)
        np.testing.assert_array_equal(got, ref)
        assert got.shape == volume.shape

    def test_raw_patcher_accepted_in_place_of_pipeline(self):
        model = _model()
        patcher = AdaptivePatcher(APFConfig(patch_size=4, split_value=8.0))
        img = prepare_image(_images(1)[0], 1).transpose(1, 2, 0)
        probs = predict_image(model, patcher, img, bucket=16)
        assert probs.shape == (1, 64, 64)
        assert np.isfinite(probs).all()

    def test_validation_errors(self):
        with pytest.raises(ValueError):
            Predictor(_model(), _pipe(), max_batch=0)
        with pytest.raises(ValueError):
            Predictor(_model(), _pipe(), bucket=0)


class TestDeprecatedFreeFunction:
    """The free ``predict_image`` is a pure shim (ISSUE 8 satellite)."""

    def _call(self):
        import warnings
        img = prepare_image(_images(1)[0], 1).transpose(1, 2, 0)
        with warnings.catch_warnings(record=True) as caught:
            warnings.simplefilter("always")
            probs = predict_image(_model(), _pipe(), img, bucket=16)
        return probs, [w for w in caught
                       if issubclass(w.category, DeprecationWarning)]

    def test_deprecation_warning_fires_exactly_once(self):
        probs, warns = self._call()
        assert len(warns) == 1
        assert "deprecated" in str(warns[0].message)
        assert "Predictor" in str(warns[0].message)
        # stacklevel=2: the warning points at the caller, not the shim.
        assert warns[0].filename == __file__
        assert probs.shape[0] == 1

    def test_shim_matches_the_method(self):
        import warnings
        img = prepare_image(_images(1)[0], 1).transpose(1, 2, 0)
        with warnings.catch_warnings():
            warnings.simplefilter("ignore", DeprecationWarning)
            a = predict_image(_model(), _pipe(), img, bucket=16)
        b = Predictor(_model(), _pipe(), bucket=16).predict_image(img)
        np.testing.assert_array_equal(a, b)
