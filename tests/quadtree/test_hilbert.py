"""Tests for the Hilbert curve (ordering ablation vs the paper's Morton)."""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.quadtree import (build_quadtree, hilbert_decode, hilbert_encode,
                            hilbert_sort_order, morton_sort_order)


class TestHilbertCodes:
    def test_unit_steps_along_curve(self):
        # The defining Hilbert property: consecutive indices are grid
        # neighbours (manhattan distance exactly 1) — Morton lacks this.
        y, x = hilbert_decode(np.arange(256), bits=4)
        steps = np.abs(np.diff(y)) + np.abs(np.diff(x))
        assert (steps == 1).all()

    def test_roundtrip_random(self):
        rng = np.random.default_rng(0)
        y = rng.integers(0, 2 ** 12, 500)
        x = rng.integers(0, 2 ** 12, 500)
        yd, xd = hilbert_decode(hilbert_encode(y, x))
        np.testing.assert_array_equal(yd, y)
        np.testing.assert_array_equal(xd, x)

    def test_bijective_on_full_grid(self):
        ys, xs = np.mgrid[0:16, 0:16]
        codes = hilbert_encode(ys.ravel(), xs.ravel(), bits=4)
        assert len(np.unique(codes)) == 256
        assert codes.min() == 0 and codes.max() == 255

    def test_out_of_range_rejected(self):
        with pytest.raises(ValueError):
            hilbert_encode(2 ** 25, 0)
        with pytest.raises(ValueError):
            hilbert_encode(-1, 0)

    @given(st.integers(0, 2 ** 16 - 1), st.integers(0, 2 ** 16 - 1))
    @settings(max_examples=100, deadline=None)
    def test_property_roundtrip(self, y, x):
        yd, xd = hilbert_decode(hilbert_encode(y, x))
        assert yd[0] == y and xd[0] == x

    def test_locality_beats_morton(self):
        # Hilbert's raison d'être: mean successive distance strictly better
        # than Morton on a full grid (Morton has diagonal quadrant jumps).
        n = 32
        ys, xs = np.mgrid[0:n, 0:n]
        ys, xs = ys.ravel(), xs.ravel()

        def mean_step(order):
            return np.hypot(np.diff(ys[order].astype(float)),
                            np.diff(xs[order].astype(float))).mean()

        assert mean_step(hilbert_sort_order(ys, xs)) < \
            mean_step(morton_sort_order(ys, xs))

    def test_quadtree_hilbert_order(self):
        d = np.zeros((32, 32))
        d[10:20, 10:20] = 1.0
        leaves = build_quadtree(d, 2.0, 5)
        h = leaves.sorted_by_hilbert()
        assert len(h) == len(leaves)
        assert sorted(zip(h.ys, h.xs)) == sorted(zip(leaves.ys, leaves.xs))


class TestPatcherHilbertOrder:
    def test_order_option(self):
        from repro.data import generate_wsi
        from repro.patching import AdaptivePatcher

        img = generate_wsi(64, seed=0).image.mean(axis=2)
        seq_h = AdaptivePatcher(patch_size=4, split_value=2.0,
                                order="hilbert")(img)
        seq_m = AdaptivePatcher(patch_size=4, split_value=2.0)(img)
        assert len(seq_h) == len(seq_m)
        # Same leaves, different arrangement (almost surely).
        assert sorted(zip(seq_h.ys, seq_h.xs)) == sorted(zip(seq_m.ys, seq_m.xs))


class TestHilbertProperties:
    """Property/round-trip coverage for the full hilbert API surface."""

    @given(st.lists(st.tuples(st.integers(0, 2 ** 10 - 1),
                              st.integers(0, 2 ** 10 - 1)),
                    min_size=1, max_size=64))
    @settings(max_examples=50, deadline=None)
    def test_decode_encode_roundtrip_vector(self, points):
        ys = np.array([p[0] for p in points])
        xs = np.array([p[1] for p in points])
        codes = hilbert_encode(ys, xs, bits=10)
        yd, xd = hilbert_decode(codes, bits=10)
        np.testing.assert_array_equal(yd, ys)
        np.testing.assert_array_equal(xd, xs)

    @given(st.lists(st.integers(0, 4 ** 6 - 1), min_size=1, max_size=64))
    @settings(max_examples=50, deadline=None)
    def test_encode_decode_roundtrip_codes(self, codes):
        d = np.asarray(codes, dtype=np.uint64)
        ys, xs = hilbert_decode(d, bits=6)
        np.testing.assert_array_equal(hilbert_encode(ys, xs, bits=6), d)

    @given(st.lists(st.tuples(st.integers(0, 255), st.integers(0, 255)),
                    min_size=2, max_size=64))
    @settings(max_examples=50, deadline=None)
    def test_sort_order_is_permutation_with_monotone_codes(self, points):
        ys = np.array([p[0] for p in points])
        xs = np.array([p[1] for p in points])
        order = hilbert_sort_order(ys, xs)
        assert sorted(order) == list(range(len(points)))
        codes = hilbert_encode(ys, xs)[order]
        assert (np.diff(codes.astype(np.int64)) >= 0).all()

    def test_sort_order_stable_on_duplicates(self):
        ys = np.array([3, 3, 1, 3])
        xs = np.array([5, 5, 0, 5])
        order = hilbert_sort_order(ys, xs)
        dupes = [i for i in order if (ys[i], xs[i]) == (3, 5)]
        assert dupes == sorted(dupes)       # kind="stable" preserved ties

    def test_quadtree_hilbert_order_matches_sort_order(self):
        d = np.zeros((64, 64))
        d[8:40, 16:48] = np.linspace(0, 1, 32)[None, :]
        leaves = build_quadtree(d, 1.5, 6)
        order = leaves.hilbert_order()
        assert sorted(order) == list(range(len(leaves)))
        np.testing.assert_array_equal(
            order, hilbert_sort_order(leaves.ys, leaves.xs))
        reordered = leaves.sorted_by_hilbert()
        codes = hilbert_encode(reordered.ys, reordered.xs)
        assert (np.diff(codes.astype(np.int64)) >= 0).all()
