"""Model zoo tests: shapes, gradient flow, APF/uniform interchangeability,
and single-batch overfit sanity for each architecture."""

import numpy as np
import pytest

from repro import nn
from repro.data import generate_wsi
from repro.models import (HIPTLite, SwinUNETRLite, TransUNetLite, UNet,
                          UNETR2D, ViTClassifier, ViTSegmenter,
                          collate_sequences)
from repro.patching import AdaptivePatcher, UniformPatcher


def gray_image(z=32, seed=0):
    s = generate_wsi(z, seed=seed)
    return s.image.mean(axis=2), s.mask


def all_params_touched(model, loss):
    loss.backward()
    missing = [n for n, p in model.named_parameters() if p.grad is None]
    return missing


class TestViTSegmenter:
    def _setup(self, patcher):
        img, mask = gray_image()
        seq = patcher(img)
        model = ViTSegmenter(patch_size=4, channels=1, dim=16, depth=2,
                             heads=2, max_len=128)
        return model, seq, mask

    def test_uniform_forward_shape(self):
        model, seq, _ = self._setup(UniformPatcher(4))
        logits = model.forward_sequences([seq])
        assert logits.shape == (1, len(seq), 16)

    def test_adaptive_forward_shape(self):
        model, seq, _ = self._setup(AdaptivePatcher(patch_size=4, split_value=4.0))
        logits = model.forward_sequences([seq])
        assert logits.shape == (1, len(seq), 16)

    def test_same_model_both_patchings(self):
        # The paper's compatibility claim: identical weights, either patcher.
        img, _ = gray_image()
        model = ViTSegmenter(patch_size=4, channels=1, dim=16, depth=1,
                             heads=2, max_len=128)
        for patcher in (UniformPatcher(4),
                        AdaptivePatcher(patch_size=4, split_value=4.0)):
            out = model.forward_sequences([patcher(img)])
            assert np.isfinite(out.data).all()

    def test_all_parameters_receive_grad(self):
        model, seq, mask = self._setup(AdaptivePatcher(patch_size=4, split_value=4.0))
        patcher = AdaptivePatcher(patch_size=4, split_value=4.0)
        targets = patcher.patchify_labels(mask, seq)
        logits = model.forward_sequences([seq])
        t = targets.reshape(1, len(seq), -1)
        loss = nn.combined_bce_dice(logits, t)
        missing = all_params_touched(model, loss)
        assert missing == []

    def test_predict_mask_full_resolution(self):
        model, seq, _ = self._setup(AdaptivePatcher(patch_size=4, split_value=4.0))
        probs = model.predict_mask(seq)
        assert probs.shape == (1, 32, 32)
        assert (probs >= 0).all() and (probs <= 1).all()

    def test_overfits_single_image(self):
        img, mask = gray_image()
        patcher = AdaptivePatcher(patch_size=4, split_value=4.0)
        seq = patcher(img)
        targets = patcher.patchify_labels(mask, seq).reshape(1, len(seq), -1)
        model = ViTSegmenter(patch_size=4, channels=1, dim=32, depth=2,
                             heads=2, max_len=128, rng=np.random.default_rng(1))
        opt = nn.AdamW(model.parameters(), lr=3e-3)
        first = None
        for _ in range(30):
            opt.zero_grad()
            loss = nn.combined_bce_dice(model.forward_sequences([seq]), targets)
            loss.backward()
            opt.step()
            first = first if first is not None else float(loss.data)
        assert float(loss.data) < first * 0.7


class TestViTClassifier:
    def test_forward_and_grad(self):
        img, _ = gray_image()
        seq = AdaptivePatcher(patch_size=4, split_value=4.0, target_length=32)(img)
        model = ViTClassifier(patch_size=4, channels=1, dim=16, depth=1,
                              heads=2, max_len=64, num_classes=6)
        logits = model.forward_sequences([seq, seq])
        assert logits.shape == (2, 6)
        loss = nn.cross_entropy(logits, np.array([0, 3]))
        assert all_params_touched(model, loss) == []

    def test_padding_does_not_change_prediction(self):
        # Masked mean pooling must ignore padded tokens.
        img, _ = gray_image()
        p1 = AdaptivePatcher(patch_size=4, split_value=4.0)
        seq = p1(img)
        padded = p1.fit_length(seq, len(seq) + 16)
        model = ViTClassifier(patch_size=4, channels=1, dim=16, depth=1,
                              heads=2, max_len=128, num_classes=6)
        with nn.no_grad():
            a = model.forward_sequences([seq]).data
            b = model.forward_sequences([padded]).data
        # Padding shifts positional tables but zeroed tokens + masked pooling
        # keep logits close.
        assert np.abs(a - b).max() < 0.15

    def test_predict_returns_class(self):
        img, _ = gray_image()
        seq = UniformPatcher(8)(img)
        model = ViTClassifier(patch_size=8, channels=1, dim=16, depth=1,
                              heads=2, max_len=64, num_classes=4)
        assert 0 <= model.predict(seq) < 4


class TestUNETR:
    def _make(self, pm=4, dim=16):
        return UNETR2D(patch_size=pm, channels=1, dim=dim, depth=2, heads=2,
                       max_len=128, decoder_ch=8)

    def test_uniform_full_res_output(self):
        img, _ = gray_image()
        seq = UniformPatcher(4)(img)
        model = self._make()
        out = model.forward_sequences([seq], img[None, None])
        assert out.shape == (1, 1, 32, 32)

    def test_adaptive_full_res_output(self):
        img, _ = gray_image()
        seq = AdaptivePatcher(patch_size=4, split_value=4.0)(img)
        out = self._make().forward_sequences([seq], img[None, None])
        assert out.shape == (1, 1, 32, 32)

    def test_patch2_single_stage(self):
        img, _ = gray_image()
        seq = AdaptivePatcher(patch_size=2, split_value=4.0)(img)
        model = self._make(pm=2)
        out = model.forward_sequences([seq], img[None, None])
        assert out.shape == (1, 1, 32, 32)

    def test_patch8_three_stages(self):
        img, _ = gray_image()
        seq = UniformPatcher(8)(img)
        model = self._make(pm=8)
        out = model.forward_sequences([seq], img[None, None])
        assert out.shape == (1, 1, 32, 32)

    def test_all_parameters_receive_grad(self):
        img, mask = gray_image()
        seq = AdaptivePatcher(patch_size=4, split_value=4.0)(img)
        model = self._make()
        out = model.forward_sequences([seq], img[None, None])
        loss = nn.combined_bce_dice(out, mask[None, None])
        assert all_params_touched(model, loss) == []

    def test_rejects_patch_size_one(self):
        with pytest.raises(ValueError):
            UNETR2D(patch_size=1)

    def test_predict_mask(self):
        img, _ = gray_image()
        seq = AdaptivePatcher(patch_size=4, split_value=4.0)(img)
        probs = self._make().predict_mask(seq, img[None])
        assert probs.shape == (1, 32, 32)
        assert (probs >= 0).all() and (probs <= 1).all()

    def test_overfits_single_image(self):
        img, mask = gray_image()
        seq = AdaptivePatcher(patch_size=4, split_value=4.0)(img)
        model = UNETR2D(patch_size=4, channels=1, dim=24, depth=2, heads=2,
                        max_len=128, decoder_ch=8, rng=np.random.default_rng(3))
        opt = nn.AdamW(model.parameters(), lr=3e-3)
        losses = []
        for _ in range(20):
            opt.zero_grad()
            out = model.forward_sequences([seq], img[None, None])
            loss = nn.combined_bce_dice(out, mask[None, None])
            loss.backward()
            opt.step()
            losses.append(float(loss.data))
        assert losses[-1] < losses[0] * 0.85


class TestUNet:
    def test_forward_shape(self):
        model = UNet(channels=1, out_channels=1, widths=(8, 16))
        out = model(np.zeros((2, 1, 32, 32)))
        assert out.shape == (2, 1, 32, 32)

    def test_multiclass_output(self):
        model = UNet(channels=1, out_channels=14, widths=(8, 16))
        assert model(np.zeros((1, 1, 32, 32))).shape == (1, 14, 32, 32)

    def test_needs_two_levels(self):
        with pytest.raises(ValueError):
            UNet(widths=(8,))

    def test_all_parameters_receive_grad(self):
        model = UNet(channels=1, out_channels=1, widths=(8, 16))
        img, mask = gray_image()
        loss = nn.combined_bce_dice(model(img[None, None]), mask[None, None])
        assert all_params_touched(model, loss) == []

    def test_predict_mask(self):
        img, _ = gray_image()
        probs = UNet(channels=1, widths=(8, 16)).predict_mask(img[None])
        assert probs.shape == (1, 32, 32)


class TestTransUNet:
    def test_forward_shape(self):
        model = TransUNetLite(channels=1, stem_ch=8, dim=16, depth=1, heads=2)
        assert model(np.zeros((1, 1, 32, 32))).shape == (1, 1, 32, 32)

    def test_all_parameters_receive_grad(self):
        model = TransUNetLite(channels=1, stem_ch=8, dim=16, depth=1, heads=2)
        img, mask = gray_image()
        loss = nn.combined_bce_dice(model(img[None, None]), mask[None, None])
        assert all_params_touched(model, loss) == []

    def test_grid_size_guard(self):
        model = TransUNetLite(channels=1, stem_ch=8, dim=16, depth=1, heads=2,
                              max_hw=16)
        with pytest.raises(ValueError):
            model(np.zeros((1, 1, 64, 64)))


class TestSwin:
    def test_forward_shape(self):
        model = SwinUNETRLite(channels=1, patch_size=2, dim=8, heads=2, window=4)
        assert model(np.zeros((1, 1, 32, 32))).shape == (1, 1, 32, 32)

    def test_all_parameters_receive_grad(self):
        model = SwinUNETRLite(channels=1, patch_size=2, dim=8, heads=2, window=4)
        img, mask = gray_image()
        loss = nn.combined_bce_dice(model(img[None, None]), mask[None, None])
        assert all_params_touched(model, loss) == []

    def test_window_divisibility_enforced(self):
        model = SwinUNETRLite(channels=1, patch_size=2, dim=8, heads=2, window=5)
        with pytest.raises(ValueError):
            model(np.zeros((1, 1, 32, 32)))

    def test_shifted_block_changes_output(self):
        # Shift must mix windows: compare stage outputs with/without content
        # far from window boundaries.
        model = SwinUNETRLite(channels=1, patch_size=2, dim=8, heads=2, window=4)
        x = np.zeros((1, 1, 32, 32), dtype=np.float32)
        x[0, 0, 0, 0] = 1.0
        out = model(x)
        assert np.isfinite(out.data).all()


class TestHIPT:
    def test_forward_shape(self):
        model = HIPTLite(image_size=32, channels=1, region_size=16,
                         patch_size=4, dim=16, num_classes=6)
        assert model(np.zeros((2, 1, 32, 32))).shape == (2, 6)

    def test_all_parameters_receive_grad(self):
        model = HIPTLite(image_size=32, channels=1, region_size=16,
                         patch_size=4, dim=16, num_classes=6)
        logits = model(np.random.default_rng(0).random((1, 1, 32, 32)))
        loss = nn.cross_entropy(logits, np.array([2]))
        assert all_params_touched(model, loss) == []

    def test_size_validation(self):
        with pytest.raises(ValueError):
            HIPTLite(image_size=30, region_size=16)
        with pytest.raises(ValueError):
            HIPTLite(image_size=32, region_size=16, patch_size=5)

    def test_wrong_input_size_raises(self):
        model = HIPTLite(image_size=32, channels=1, region_size=16, patch_size=4)
        with pytest.raises(ValueError):
            model(np.zeros((1, 1, 64, 64)))

    def test_tokenize_geometry(self):
        model = HIPTLite(image_size=32, channels=1, region_size=16, patch_size=4)
        imgs = np.arange(32 * 32, dtype=np.float32).reshape(1, 1, 32, 32)
        tok = model._tokenize(imgs)
        assert tok.shape == (4, 16, 16)
        # First region's first patch = image[0:4, 0:4].
        np.testing.assert_array_equal(tok[0, 0], imgs[0, 0, :4, :4].ravel())

    def test_predict(self):
        model = HIPTLite(image_size=32, channels=1, region_size=16, patch_size=4,
                         num_classes=3)
        assert 0 <= model.predict(np.zeros((1, 32, 32), dtype=np.float32)) < 3


class TestCollate:
    def test_mixed_lengths_rejected(self):
        img, _ = gray_image()
        s1 = UniformPatcher(4)(img)
        s2 = UniformPatcher(8)(img)
        with pytest.raises(ValueError):
            collate_sequences([s1, s2])

    def test_batch_shapes(self):
        img, _ = gray_image()
        seqs = [UniformPatcher(4)(img) for _ in range(3)]
        tokens, coords, valid = collate_sequences(seqs)
        assert tokens.shape == (3, 64, 16)
        assert coords.shape == (3, 64, 3)
        assert valid.shape == (3, 64)
