"""Adaptive Patching for High-resolution Image Segmentation with Transformers.

Reproduction of Zhang et al., SC 2024 (arXiv:2404.09707). The public API is
organized by subsystem:

* :mod:`repro.patching` — the Adaptive Patch Framework (the contribution)
* :mod:`repro.pipeline` — batched/parallel/cached APF preprocessing engine
* :mod:`repro.nn` — NumPy autograd + transformer/conv layers
* :mod:`repro.imaging` — Gaussian blur, Canny, resizing
* :mod:`repro.quadtree` — quadtree/octree + Morton/Hilbert curves
* :mod:`repro.data` — synthetic PAIP/BTCV/volume generators
* :mod:`repro.models` — ViT, UNETR, U-Net, TransUNet, Swin, HIPT
* :mod:`repro.train` — trainer, tasks, checkpointing, volumetric inference
* :mod:`repro.metrics` — dice, IoU, accuracy
* :mod:`repro.distributed` — simulated collectives + data parallelism
* :mod:`repro.serve` — compiled micro-batching Predictor + async engine
* :mod:`repro.stream` — out-of-core streaming inference (gigapixel scenes)
* :mod:`repro.pyramid` — interactive slide viewing (tile pyramid serving)
* :mod:`repro.obs` — request tracing + kernel profiling (Chrome traces)
* :mod:`repro.perf` — FLOP/memory/cost models, memory tracking
* :mod:`repro.experiments` — per-table/figure runners (also a CLI:
  ``python -m repro.experiments <artifact>``)

Quick start::

    from repro.data import generate_wsi
    from repro.patching import AdaptivePatcher

    sample = generate_wsi(resolution=64, seed=0)
    seq = AdaptivePatcher(patch_size=4, split_value=2.0)(sample.image)
"""

__version__ = "1.0.0"

from . import (data, distributed, imaging, metrics, models, nn, patching,
               perf, pipeline, quadtree, train)

__all__ = ["nn", "imaging", "quadtree", "patching", "pipeline", "data",
           "models", "train", "metrics", "distributed", "perf", "serve",
           "stream", "obs", "__version__"]


def __getattr__(name):
    # serve/stream import runtime/serve machinery; lazy so `import repro`
    # stays light for pure-preprocessing users.
    if name in ("serve", "stream", "obs"):
        import importlib
        return importlib.import_module(f".{name}", __name__)
    raise AttributeError(f"module {__name__!r} has no attribute {name!r}")
