"""``repro.quadtree`` — tree-based AMR-style image partitioning (paper §II-A, §III-A).

* :mod:`repro.quadtree.tree` — Eq. 6 quadtree builder + 2:1 balance
* :mod:`repro.quadtree.morton` — z-order curve codes and leaf ordering
"""

from .hilbert import hilbert_decode, hilbert_encode, hilbert_sort_order
from .morton import morton_decode, morton_encode, morton_sort_order
from .octree import (OctreeLeaves, build_octree, build_octree_batch,
                     morton3d_decode, morton3d_encode)
from .tree import (QuadtreeLeaves, balance_2to1, build_quadtree,
                   build_quadtree_batch, max_depth_for)

__all__ = [
    "morton_encode", "morton_decode", "morton_sort_order",
    "hilbert_encode", "hilbert_decode", "hilbert_sort_order",
    "morton3d_encode", "morton3d_decode", "OctreeLeaves", "build_octree",
    "build_octree_batch",
    "QuadtreeLeaves", "build_quadtree", "build_quadtree_batch",
    "balance_2to1", "max_depth_for",
]
