"""``repro.perf`` — FLOP/memory models, α–β cost model, equal-cost analysis,
serving capacity planning, process-memory tracking, and crash-safe benchmark
artifact I/O."""

from .artifacts import write_json_atomic
from .costmodel import ClusterSpec, CostModel
from .equivalence import (apf_length_curve, equal_cost_patch_size,
                          equivalent_sequence_gain)
from .flops import (TransformerConfig, activation_bytes, attention_flops,
                    attention_memory_bytes, encoder_flops, inference_flops,
                    kernel_cost, training_flops)
from .memory import TracedMemory, current_rss_bytes, peak_rss_bytes
from .serving import (batching_speedup_bound, engine_capacity,
                      fleet_capacity, fleet_scaling_bound, replicas_for_rate,
                      routing_imbalance, serial_capacity, utilization)

__all__ = [
    "TransformerConfig", "attention_flops", "encoder_flops", "training_flops",
    "inference_flops", "activation_bytes", "attention_memory_bytes",
    "kernel_cost",
    "ClusterSpec", "CostModel",
    "apf_length_curve", "equal_cost_patch_size", "equivalent_sequence_gain",
    "write_json_atomic",
    "engine_capacity", "serial_capacity", "batching_speedup_bound",
    "utilization", "fleet_capacity", "fleet_scaling_bound",
    "replicas_for_rate", "routing_imbalance",
    "TracedMemory", "current_rss_bytes", "peak_rss_bytes",
]
