"""Request queueing for the inference engine — lanes, fairness, backpressure.

:class:`FairQueue` is the admission-controlled waiting room between
``InferenceEngine.submit`` and the continuous batcher. It implements three
policies the engine composes:

**Length-bucket coalescing.** Requests carry the padded bucket length the
:class:`~repro.serve.predictor.Predictor` assigned them; a batch only ever
contains one bucket, so every flush maps to exactly one compiled-plan
signature.

**Weighted fair lanes (start-time fair queueing).** Each lane (e.g.
``interactive`` vs ``bulk``) has a weight; a request's virtual timestamp is
``max(lane_vfinish, vclock) + 1/weight``, and dispatch prefers smaller
timestamps. Under backlog, lanes receive service proportional to their
weights; a lane that was idle re-enters at the current virtual clock so it
can neither starve nor monopolize. With a single lane the timestamps are
strictly increasing in arrival order, so dispatch is plain FIFO — the
property the engine's bit-identity guarantee against
``Predictor.predict_batch`` rests on.

**Bounded depth.** ``push`` beyond ``max_depth`` raises
:class:`EngineOverloaded` (HTTP-429 semantics); the engine attaches a
``retry_after`` hint from its service-rate estimate. ``push_all`` reserves
capacity for a whole job (a decomposed volume) atomically, so a partial
volume is never admitted.

Flush policy (evaluated by :meth:`collect`): once any request has waited
``deadline`` seconds, the *oldest* request's bucket flushes (latency-
bounded partial batch — this takes precedence, so a continuously full
bucket cannot starve requests parked in a sparse one); otherwise a bucket
holding ``max_batch`` waiting requests flushes immediately. Light load
therefore never waits for a full batch, and heavy load runs full plans.

The queue does **no internal locking** — the engine serializes access
(condition variable in threaded mode, single-threaded event loop under the
simulated clock).
"""

from __future__ import annotations

import itertools
import math
from concurrent.futures import Future
from dataclasses import dataclass, field
from typing import Dict, Hashable, List, Mapping, Optional, Sequence

__all__ = ["EngineOverloaded", "Request", "FairQueue", "DEFAULT_LANES"]

#: Default lane weights: interactive requests get 4x the service share of
#: bulk (volume) jobs under contention.
DEFAULT_LANES: Mapping[str, float] = {"interactive": 4.0, "bulk": 1.0}


class EngineOverloaded(RuntimeError):
    """Admission control rejected a submission (queue at capacity).

    Attributes
    ----------
    retry_after:
        Seconds (wall or virtual, matching the engine clock) after which
        capacity is expected to free up — a hint, not a guarantee.
    """

    def __init__(self, message: str, retry_after: float = 0.0):
        super().__init__(message)
        self.retry_after = float(retry_after)


@dataclass
class Request:
    """One queued unit of inference work (a single image or volume slice)."""

    seq: object                       #: natural (pre-drop) patch sequence
    bucket: int                       #: padded length assigned by the Predictor
    lane: str
    submit_t: float                   #: engine-clock time of submission
    future: Future = field(default_factory=Future)
    key: Optional[Hashable] = None    #: result-cache digest (None = uncached)
    vtime: float = 0.0                #: fair-queueing virtual timestamp
    seqno: int = 0                    #: arrival tiebreak (monotonic)
    rid: int = 0                      #: trace request id (0 = untraced)


class FairQueue:
    """Bounded multi-lane queue with weighted fair, bucket-coalesced dispatch."""

    def __init__(self, lanes: Optional[Mapping[str, float]] = None,
                 max_depth: int = 64):
        lanes = dict(DEFAULT_LANES if lanes is None else lanes)
        if not lanes:
            raise ValueError("need at least one lane")
        if any(w <= 0 for w in lanes.values()):
            raise ValueError("lane weights must be positive")
        if max_depth < 1:
            raise ValueError("max_depth must be >= 1")
        self.lanes = lanes
        self.max_depth = max_depth
        self._vclock = 0.0
        self._vfinish: Dict[str, float] = {lane: 0.0 for lane in lanes}
        self._buckets: Dict[int, List[Request]] = {}
        self._count = 0
        self._seqno = itertools.count()

    # -- admission --------------------------------------------------------
    def __len__(self) -> int:
        return self._count

    @property
    def capacity_left(self) -> int:
        return self.max_depth - self._count

    def _stamp(self, req: Request) -> None:
        if req.lane not in self.lanes:
            raise ValueError(f"unknown lane {req.lane!r}; "
                             f"configured: {sorted(self.lanes)}")
        vstart = max(self._vfinish[req.lane], self._vclock)
        self._vfinish[req.lane] = vstart + 1.0 / self.lanes[req.lane]
        req.vtime = self._vfinish[req.lane]
        req.seqno = next(self._seqno)

    def push(self, req: Request, retry_after: float = 0.0) -> None:
        """Admit one request, or raise :class:`EngineOverloaded`."""
        self.push_all([req], retry_after)

    def push_all(self, reqs: Sequence[Request], retry_after: float = 0.0) -> None:
        """Admit all requests or none (atomic capacity reservation)."""
        if len(reqs) > self.max_depth - self._count:
            raise EngineOverloaded(
                f"queue full ({self._count}/{self.max_depth} waiting, "
                f"{len(reqs)} offered)", retry_after=retry_after)
        for req in reqs:
            self._stamp(req)
            self._buckets.setdefault(req.bucket, []).append(req)
            self._count += 1

    # -- flush policy -----------------------------------------------------
    def _full_bucket(self, max_batch: int) -> Optional[int]:
        """Bucket holding a full batch, preferring the min-vtime request."""
        best = None
        for length, reqs in self._buckets.items():
            if len(reqs) >= max_batch:
                head = min(reqs, key=lambda r: (r.vtime, r.seqno))
                if best is None or (head.vtime, head.seqno) < best[0]:
                    best = ((head.vtime, head.seqno), length)
        return best[1] if best else None

    def _oldest(self) -> Optional[Request]:
        oldest = None
        for reqs in self._buckets.values():
            for r in reqs:
                if oldest is None or (r.submit_t, r.seqno) < (oldest.submit_t,
                                                              oldest.seqno):
                    oldest = r
        return oldest

    def next_flush_at(self, now: float, max_batch: int,
                      deadline: float) -> Optional[float]:
        """Earliest absolute time a batch becomes dispatchable; None if empty."""
        if self._count == 0:
            return None
        if self._full_bucket(max_batch) is not None:
            return now
        oldest = self._oldest().submit_t
        due = oldest + deadline
        # float guard: (t + d) - t can round below d, so a step() at
        # exactly the advertised due time would collect nothing and stall
        # a DES driver that trusts this value; nudge up by ulps until the
        # deadline test in collect() is guaranteed to pass
        while due - oldest < deadline:
            due = math.nextafter(due, math.inf)
        return due

    def collect(self, now: float, max_batch: int, deadline: float,
                force: bool = False) -> Optional[List[Request]]:
        """Pop the next batch to run at time ``now`` (or None if none is due).

        ``force=True`` ignores the deadline (used to drain the queue).
        The latency bound beats batch occupancy: a deadline-expired request
        dispatches its bucket even while another bucket holds full batches,
        so sustained traffic in one length bucket can never starve a sparse
        one. Requests within the chosen bucket dispatch in virtual-time
        order — FIFO for a single lane, weight-interleaved across lanes.
        """
        if self._count == 0:
            return None
        oldest = self._oldest()
        if force or now - oldest.submit_t >= deadline:
            length = oldest.bucket
        else:
            length = self._full_bucket(max_batch)
            if length is None:
                return None
        reqs = self._buckets[length]
        reqs.sort(key=lambda r: (r.vtime, r.seqno))
        batch, rest = reqs[:max_batch], reqs[max_batch:]
        if rest:
            self._buckets[length] = rest
        else:
            del self._buckets[length]
        self._count -= len(batch)
        self._vclock = max(self._vclock, batch[0].vtime)
        return batch

    def find(self, future: Future) -> Optional[Request]:
        """The waiting request that owns ``future`` (None once dispatched).

        Linear in queue depth, which admission control bounds at
        ``max_depth`` — cheap enough for the cancellation path.
        """
        for reqs in self._buckets.values():
            for r in reqs:
                if r.future is future:
                    return r
        return None

    def remove(self, future: Future) -> Optional[Request]:
        """Retire the waiting request that owns ``future`` (or None).

        The cancellation primitive under
        :meth:`~repro.serve.engine.InferenceEngine.cancel`: only *waiting*
        requests are removable — once :meth:`collect` has dispatched a
        request it is the batcher's.
        """
        for length, reqs in self._buckets.items():
            for i, r in enumerate(reqs):
                if r.future is future:
                    del reqs[i]
                    if not reqs:
                        del self._buckets[length]
                    self._count -= 1
                    return r
        return None

    def pop_all(self) -> List[Request]:
        """Remove and return every waiting request in virtual-time order.

        Used by the fleet router to evict the backlog of a killed replica
        so it can be re-hashed onto the surviving ones — dispatch order on
        the adoptive replica is re-stamped at admission, so fairness
        accounting starts fresh there.
        """
        reqs = [r for bucket in self._buckets.values() for r in bucket]
        reqs.sort(key=lambda r: (r.vtime, r.seqno))
        self._buckets.clear()
        self._count = 0
        return reqs

    # -- introspection ----------------------------------------------------
    def depths(self) -> Dict[str, object]:
        """Waiting-request counts, total / per lane / per bucket."""
        per_lane = {lane: 0 for lane in self.lanes}
        for reqs in self._buckets.values():
            for r in reqs:
                per_lane[r.lane] += 1
        return {"total": self._count, "per_lane": per_lane,
                "per_bucket": {length: len(reqs) for length, reqs
                               in sorted(self._buckets.items())}}
