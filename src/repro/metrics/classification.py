"""Classification metrics (paper Table V reports top-1 accuracy)."""

from __future__ import annotations

import numpy as np

__all__ = ["top1_accuracy"]


def top1_accuracy(pred_labels, true_labels) -> float:
    """Top-1 accuracy in percent."""
    p = np.asarray(pred_labels)
    t = np.asarray(true_labels)
    if p.shape != t.shape:
        raise ValueError(f"shape mismatch: {p.shape} vs {t.shape}")
    if p.size == 0:
        raise ValueError("empty prediction array")
    return float(100.0 * (p == t).mean())
