"""Graph capture: run a Tensor function once, record its op tape.

:func:`trace` arms the kernel table's thread-local trace hook
(:func:`repro.nn.kernels.set_tracer`), feeds the function placeholder
Tensors, and turns the stream of ``(op, params, inputs, out)`` events into a
static :class:`Graph`: one :class:`Node` per executed kernel, plus ``input``
nodes for the placeholders and ``const`` nodes for every foreign array the
tape touched (weights, folded masks, coerced scalars).

The recorded order *is* a topological order — ops were appended as they
executed — which the compiler exploits directly.

Const nodes hold **references** (no copies) to the arrays they saw, so a
plan compiled from the graph observes in-place parameter updates (the
in-place optimizers in :mod:`repro.nn.optim`) but must be re-traced if a
parameter array object is *rebound* (``load_state_dict`` copies into fresh
arrays).
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List, Optional, Tuple

import numpy as np

from ..nn import kernels as K
from ..nn.tensor import Tensor, no_grad

__all__ = ["Node", "Graph", "trace"]

#: Ops whose output is (attempted as) a NumPy view of their input.
VIEW_OPS = frozenset({"reshape", "transpose", "getitem"})


@dataclass
class Node:
    """One vertex of a traced graph.

    ``op`` is a kernel name from :data:`repro.nn.kernels.KERNELS`, or the
    pseudo-ops ``"input"`` (placeholder fed at run time) / ``"const"``
    (array captured by reference at trace time).
    """

    idx: int
    op: str
    params: tuple = ()
    inputs: Tuple[int, ...] = ()
    shape: Tuple[int, ...] = ()
    dtype: Optional[np.dtype] = None
    array: Optional[np.ndarray] = None      # const nodes only
    name: str = ""                          # input nodes only


@dataclass
class Graph:
    """A static op graph captured by :func:`trace`."""

    nodes: List[Node] = field(default_factory=list)
    inputs: Dict[str, int] = field(default_factory=dict)
    output: int = -1

    def node(self, idx: int) -> Node:
        return self.nodes[idx]

    @property
    def signature(self) -> tuple:
        """(name, shape, dtype) triple per input — the plan-cache key."""
        return tuple((name, self.nodes[i].shape, str(self.nodes[i].dtype))
                     for name, i in sorted(self.inputs.items()))

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        ops = sum(1 for n in self.nodes if n.op not in ("input", "const"))
        return (f"Graph({ops} ops, {len(self.inputs)} inputs, "
                f"{len(self.nodes) - ops - len(self.inputs)} consts)")


class _Tracer:
    """Receives op events from the kernel table's trace hook."""

    def __init__(self) -> None:
        self.nodes: List[Node] = []
        self._node_of: Dict[int, int] = {}   # id(tensor) -> node idx
        # Strong refs to every Tensor seen: keeps id()s stable for the
        # duration of the trace (CPython reuses addresses after GC).
        self._keepalive: List[Tensor] = []

    def _add(self, node: Node, tensor: Optional[Tensor]) -> int:
        node.idx = len(self.nodes)
        self.nodes.append(node)
        if tensor is not None:
            self._node_of[id(tensor)] = node.idx
            self._keepalive.append(tensor)
        return node.idx

    def add_input(self, name: str, tensor: Tensor) -> int:
        return self._add(Node(-1, "input", shape=tensor.shape,
                              dtype=tensor.dtype, name=name), tensor)

    def _ensure(self, tensor: Tensor) -> int:
        idx = self._node_of.get(id(tensor))
        if idx is None:
            idx = self._add(Node(-1, "const", shape=tensor.shape,
                                 dtype=tensor.dtype, array=tensor.data),
                            tensor)
        return idx

    def record(self, op: str, params, inputs, out: Tensor) -> None:
        in_idx = tuple(self._ensure(t) for t in inputs)
        self._add(Node(-1, op, params=tuple(params), inputs=in_idx,
                       shape=out.shape, dtype=out.dtype), out)

    def lookup(self, tensor: Tensor) -> Optional[int]:
        return self._node_of.get(id(tensor))


def trace(fn, feeds: Dict[str, np.ndarray]) -> Graph:
    """Trace ``fn(**tensors)`` into a :class:`Graph`.

    Parameters
    ----------
    fn:
        A function of keyword Tensor arguments returning a single Tensor —
        typically a model's ``forward_core``. It must be *shape-stable*:
        no data-dependent branching, no randomness (stochastic dropout
        raises), one op stream per input signature.
    feeds:
        Example input arrays, keyed by ``fn``'s argument names. Their
        shapes and dtypes define the signature the compiled plan serves.

    The trace runs under ``no_grad`` (no tape closures are built) and arms
    the tracer for the current thread only, so concurrent eager work in
    other threads is unaffected.
    """
    tracer = _Tracer()
    tensors: Dict[str, Tensor] = {}
    for name, arr in feeds.items():
        t = Tensor(arr)
        tracer.add_input(name, t)
        tensors[name] = t

    prev = K.set_tracer(tracer)
    try:
        with no_grad():
            out = fn(**tensors)
    finally:
        K.set_tracer(prev)

    if not isinstance(out, Tensor):
        raise TypeError(f"traced function must return a Tensor, got "
                        f"{type(out).__name__}")
    out_idx = tracer.lookup(out)
    if out_idx is None:
        raise RuntimeError("traced function's output was not produced by a "
                           "recorded op (did it bypass the kernel table?)")
    graph = Graph(nodes=tracer.nodes,
                  inputs={name: tracer.lookup(t) for name, t in tensors.items()},
                  output=out_idx)
    return graph
