"""Model-ready batch collation for patch sequences.

A :class:`CollatedBatch` is the hand-off point between preprocessing and the
models in :mod:`repro.models`: a dense ``(B, L, C·Pm²)`` token tensor plus
the validity mask and geometry features the embedding layer consumes. The
trainer and task adapters accept it directly, so a
:class:`~repro.pipeline.engine.PatchPipeline` (or anything else producing
equal-length sequences) can feed training without per-step re-patching.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import List, Optional, Sequence

import numpy as np

from ..models.embedding import collate_sequences
from ..patching.sequence import PatchSequence

__all__ = ["CollatedBatch", "collate_batch"]


@dataclass
class CollatedBatch:
    """A batch of equal-length patch sequences, stacked for the model.

    Attributes
    ----------
    tokens:
        (B, L, C·Pm·Pm) float64 — flattened patches, zero at padded slots.
    coords:
        (B, L, 3) float64 — normalized (cy, cx, log2 size) per token.
    valid:
        (B, L) bool — False marks padding.
    sequences:
        The per-image :class:`PatchSequence` objects (geometry for scatter).
    samples:
        Optional originating dataset samples (for supervision targets).
    """

    tokens: np.ndarray
    coords: np.ndarray
    valid: np.ndarray
    sequences: List[PatchSequence]
    samples: Optional[list] = None

    def __len__(self) -> int:
        return len(self.sequences)

    @property
    def batch_size(self) -> int:
        return self.tokens.shape[0]

    @property
    def length(self) -> int:
        return self.tokens.shape[1]


def collate_batch(seqs: Sequence[PatchSequence],
                  samples: Optional[list] = None) -> CollatedBatch:
    """Stack equal-length sequences into one :class:`CollatedBatch`."""
    tokens, coords, valid = collate_sequences(seqs)
    return CollatedBatch(tokens=tokens, coords=coords, valid=valid,
                         sequences=list(seqs), samples=samples)
