"""The work-graph scheduler — one truth for inference orchestration.

Every inference request, whichever front door it arrived through, reduces
to the same four-stage work graph:

    tiles ────────► sequences ───────► micro-batches ────► stitch
    (macro-tile     (natural APF       (single-signature   (vectorized
     regions, CT     sequences from     (B, L) plan         scatter back
     slabs, plain    the pipeline's     executions over      to maps +
     images)         LRU cache)         the plan cache)      tile reduce)

Before this module existed, three separately maintained front-ends —
``Predictor.predict_batch``, ``InferenceEngine.step`` and the streaming
runner — each re-implemented parts of length bucketing, micro-batch
formation and stitch scatter, and every change to one was a bit-identity
bug waiting to surface in the others. :class:`WorkGraphScheduler` now owns
all stage transitions, and the front-ends are thin adapters over it:

* :class:`~repro.serve.predictor.Predictor` — a **synchronous drain**:
  build sequence nodes, :meth:`drain`, return results in request order.
* :class:`~repro.serve.engine.InferenceEngine` — a **pump**: admission
  control, fair lanes and the result cache decide *when* a flush happens;
  the flushed requests execute through :meth:`execute`, so engine
  micro-batches carry exactly the signatures ``predict_batch`` would
  produce and the per-signature plan cache is shared, never split.
* :class:`~repro.stream.runner.StreamingRunner` — a **bounded feed**:
  macro-tile plans expand to :class:`TileNode`\\ s (one sequence per
  image tile, one per slice of a volume slab) with at most
  ``max_inflight`` tiles resident.
* :class:`~repro.serve.router.FleetRouter` — **N pumps**: each replica's
  engine pumps its own scheduler over its own plan cache.

Bit-identity contract
---------------------
:meth:`plan` groups nodes by padded bucket length (buckets ascending,
FIFO within a bucket) and chunks each group at ``predictor.max_batch`` —
byte for byte the grouping the pre-refactor ``predict_sequences``
produced, which the equivalence matrix in
``tests/serve/test_frontend_equivalence.py`` pins across all four
front-ends.
"""

from __future__ import annotations

import itertools
import time
from dataclasses import dataclass, field
from typing import List, Optional, Sequence, Tuple

import numpy as np

from ..models.embedding import collate_sequences
from ..nn import kernels as K
from ..runtime import compile_model
from .. import nn
from .stitch import stitch_image, stitch_volume

__all__ = ["WorkGraphScheduler", "SequenceNode", "MicroBatch", "TileNode",
           "class_map"]


def class_map(probs: np.ndarray) -> np.ndarray:
    """Probability map -> int64 class map (argmax over channels; 0.5
    threshold for single-channel binary heads). The single definition of
    serving-side post-processing — shared by the Predictor's class-map
    APIs, the engine's volume reassembly, and the streaming tile reduce."""
    if probs.shape[0] == 1:
        return (probs[0] >= 0.5).astype(np.int64)
    return probs.argmax(axis=0)


@dataclass
class SequenceNode:
    """One natural (pre-drop) APF sequence awaiting execution.

    ``bucket`` is the padded length the scheduler assigned; ``order`` is
    a monotonically increasing admission stamp used as the FIFO tiebreak
    inside a bucket. ``result`` holds the stitched probability map once
    the node's micro-batch has run.
    """

    seq: object
    bucket: int
    order: int
    result: Optional[np.ndarray] = None
    done: bool = False
    #: Sparse execution plan (``repro.sparse.SparsePlan``) when the
    #: sparsity runtime reduced this node — ``seq`` is then the *reduced*
    #: sequence and the plan holds the full one plus the row map back.
    sparse: Optional[object] = None
    #: Exact-byte sequence digest for memo population (sparsity only).
    memo_key: Optional[str] = None


@dataclass
class MicroBatch:
    """A single-signature unit of model execution.

    Every node shares ``length`` (the padded bucket), so the batch maps to
    exactly one compiled-plan signature ``(len(nodes), length)``.
    """

    length: int
    nodes: List[SequenceNode]

    @property
    def signature(self) -> Tuple[int, int]:
        """The (batch, padded length) plan-cache key this batch executes."""
        return (len(self.nodes), self.length)


@dataclass
class TileNode:
    """A macro-tile (image tile or volume slab) and its sequence children.

    An image tile expands to one child; a ``(d, Z, Z)`` volume slab to
    ``d`` children (one per slice — the BTCV per-slice protocol). The
    reduction back to the sink value lives in
    :meth:`WorkGraphScheduler.reduce_tile`.
    """

    kind: str                              #: "image" | "volume"
    children: List[SequenceNode] = field(default_factory=list)

    @property
    def done(self) -> bool:
        return all(c.done for c in self.children)


class WorkGraphScheduler:
    """Stage transitions of the inference work graph, in one place.

    The scheduler owns *orchestration* — bucketing, micro-batch formation,
    plan-cache execution, stitching, tile reduction — while the owning
    :class:`~repro.serve.predictor.Predictor` supplies the numeric
    substrate (model, pipeline, compile switches) and keeps its public
    ``stats`` dict, which the scheduler updates exactly as the legacy
    inlined paths did.
    """

    def __init__(self, predictor):
        self.predictor = predictor
        self._order = itertools.count()
        self._plans: dict = {}
        fit = (predictor.pipeline.patcher.fit_length
               if hasattr(predictor.pipeline, "patcher")
               else predictor.pipeline.fit_length)
        self._fit = fit

    def _trace(self):
        """(tracer, track) — the owning front-end's tracer, or (None, "").

        The scheduler has no tracer of its own: whoever pumps it (engine,
        predictor drain, streaming runner) parks one on the predictor, and
        sub-spans land on that owner's track so a fleet's per-replica
        timelines stay separate.
        """
        tr = getattr(self.predictor, "tracer", None)
        if tr is not None and tr.enabled:
            return tr, getattr(self.predictor, "trace_label", "predictor")
        return None, ""

    # -- stage 1 -> 2: bucketing (the single truth) ------------------------
    def bucket_length(self, n: int) -> int:
        """Smallest bucket multiple >= n, capped at the positional table."""
        p = self.predictor
        b = -(-max(n, 1) // p.bucket) * p.bucket
        return min(b, p.max_len)

    def _fit_to(self, seq, length: int):
        if len(seq) == length:
            return seq
        if len(seq) < length:
            return self._fit(seq, length)            # pure zero-pad, no RNG
        rng = np.random.default_rng((self.predictor.drop_seed, len(seq),
                                     length))
        return self._fit(seq, length, rng=rng)       # deterministic drop

    # -- node construction -------------------------------------------------
    def sequence_nodes(self, seqs: Sequence) -> List[SequenceNode]:
        """Wrap natural sequences as graph nodes (bucketed, order-stamped).

        With a sparsity runtime attached, each node is offered to it
        first: a memo replay completes the node outright, and a sparse
        plan swaps in the reduced sequence — so the bucket (and with it
        the micro-batch signature) reflects what actually runs.
        """
        rt = getattr(self.predictor, "sparsity", None)
        nodes = []
        for s in seqs:
            node = SequenceNode(seq=s, bucket=0, order=next(self._order))
            if rt is not None:
                rt.prepare(node)
            if not node.done:
                node.bucket = self.bucket_length(len(node.seq))
            nodes.append(node)
        return nodes

    def tile_node(self, region: np.ndarray, kind: str,
                  keys: Optional[Sequence] = None) -> TileNode:
        """Expand a macro-tile region into its sequence children.

        ``kind="volume"`` decomposes a ``(d, Z, Z)`` slab into per-slice
        children; ``kind="image"`` yields a single child. Preprocessing
        runs through the predictor's pipeline (LRU cache, batch kernels),
        with content-hash keys when the caller has none — the identical
        acquisition path every other front-end uses.
        """
        region = np.asarray(region)
        if kind == "volume":
            images = [region[i] for i in range(region.shape[0])]
        else:
            images = [region]
        seqs = self.predictor._naturals(images, keys)
        return TileNode(kind=kind, children=self.sequence_nodes(seqs))

    # -- stage 2 -> 3: micro-batch formation (the single truth) ------------
    def plan(self, nodes: Sequence[SequenceNode],
             max_batch: Optional[int] = None) -> List[MicroBatch]:
        """Form single-signature micro-batches from sequence nodes.

        Buckets dispatch in ascending length order; within a bucket,
        nodes keep their relative order and chunk at ``max_batch``
        (default: the predictor's). This is the one implementation of the
        grouping rule — every front-end's batches, and therefore every
        plan-cache signature, come from here.
        """
        mb = max_batch if max_batch is not None else self.predictor.max_batch
        groups: dict = {}
        for node in nodes:
            if node.done:                    # memo-replayed: nothing to run
                continue
            groups.setdefault(node.bucket, []).append(node)
        out: List[MicroBatch] = []
        for length, grp in sorted(groups.items()):
            for start in range(0, len(grp), mb):
                out.append(MicroBatch(length, grp[start:start + mb]))
        return out

    # -- stage 3: plan-cache execution -------------------------------------
    def _forward(self, tokens, coords, valid) -> np.ndarray:
        p = self.predictor
        if not p.compiled:
            with nn.no_grad():
                return p.model.forward(tokens, coords, valid).data
        key = (tokens.shape, valid.shape)
        sig = [list(tokens.shape), list(valid.shape)]
        tr, trk = self._trace()
        cm = self._plans.get(key)
        if cm is None:
            tc0 = tr.clock() if tr is not None else 0.0
            t0 = time.perf_counter()
            cm = compile_model(p.model, tokens, coords, valid)
            self._plans[key] = cm
            p.stats["plans"] = len(self._plans)
            p.stats["compile_seconds"] += time.perf_counter() - t0
            if tr is not None:
                # args carry only shape-derived values: real compile seconds
                # would break byte-identical traces across same-seed DES
                # runs (they live in predictor.stats instead)
                tr.complete("plan.compile", trk, tc0, tr.clock(),
                            tid="engine",
                            args={"signature": sig,
                                  "steps": cm.plan.stats["steps"]})
        elif tr is not None:
            tr.instant("plan.hit", trk, tid="engine",
                       args={"signature": sig})
        if tr is not None and tr.kernels is not None \
                and cm.plan.profile_hook is None:
            cm.plan.profile_hook = tr.kernels.hook
        return cm(tokens, coords, valid)

    # -- stage 4: stitch ---------------------------------------------------
    def _stitch(self, seq, logits_row: np.ndarray) -> np.ndarray:
        p = self.predictor
        pm = p.model.patch_size
        k = p.model.out_channels
        if hasattr(seq, "scatter_to_volume"):
            maps = logits_row.reshape(len(seq), k, pm, pm, pm)
            return stitch_volume(seq, K.forward("sigmoid", (), maps[:, 0]))
        maps = logits_row.reshape(len(seq), k, pm, pm)
        return stitch_image(seq, K.forward("sigmoid", (), maps))

    def run(self, micro: MicroBatch) -> MicroBatch:
        """Execute one micro-batch: fit, collate, forward, stitch.

        The exact legacy ``predict_sequences`` inner loop — fit each node
        to the shared bucket length (zero-pad or deterministic drop),
        collate, one plan execution, then a stitch node per row — so the
        results are bit-identical to the pre-refactor paths.
        """
        stats = self.predictor.stats
        rt = getattr(self.predictor, "sparsity", None)
        tr, trk = self._trace()
        t0 = tr.clock() if tr is not None else 0.0
        fitted = [self._fit_to(n.seq, micro.length) for n in micro.nodes]
        stats["real_tokens"] += sum(len(n.seq) for n in micro.nodes)
        stats["padded_tokens"] += len(micro.nodes) * micro.length
        tokens, coords, valid = collate_sequences(fitted)
        t1 = 0.0
        if tr is not None:
            t1 = tr.clock()
            tr.complete("batch.form", trk, t0, t1, tid="engine",
                        args={"size": len(micro.nodes),
                              "length": micro.length})
        logits = self._forward(tokens, coords, valid)
        if tr is not None:
            t2 = tr.clock()
            tr.complete("execute", trk, t1, t2, tid="engine",
                        args={"signature": [len(micro.nodes), micro.length]})
        for j, node in enumerate(micro.nodes):
            if node.sparse is not None:
                maps = rt.reconstruct(node, logits[j])
                node.result = self._stitch(node.sparse.full_seq, maps)
            else:
                node.result = self._stitch(fitted[j], logits[j])
                if rt is not None:
                    rt.seed_dense(node, logits[j])
            if rt is not None:
                rt.finish(node, node.result)
            node.done = True
        if tr is not None:
            tr.complete("stitch", trk, t2, tr.clock(), tid="engine",
                        args={"size": len(micro.nodes)})
        stats["batches"] += 1
        return micro

    # -- drains ------------------------------------------------------------
    def drain(self, nodes: Sequence[SequenceNode]) -> List[np.ndarray]:
        """Run every micro-batch covering ``nodes``; results in node order."""
        for micro in self.plan(nodes):
            self.run(micro)
        self.predictor.stats["images"] += len(nodes)
        return [n.result for n in nodes]

    def execute(self, seqs: Sequence) -> List[np.ndarray]:
        """Sequences -> probability maps (node build + drain in one call)."""
        return self.drain(self.sequence_nodes(seqs))

    def reduce_tile(self, tile: TileNode) -> np.ndarray:
        """Reduce a drained tile to its sink value (int64 class maps)."""
        if tile.kind == "volume":
            return np.stack([class_map(c.result) for c in tile.children])
        return class_map(tile.children[0].result)
