"""End-to-end tracing over the deterministic fleet DES.

The contracts the ISSUE's CI gate pins: two same-seed simulated runs
export byte-identical Chrome traces; a kill-mid-run trace carries the
eviction/adoption markers with correct request parentage; every opened
request interval closes; and per-request critical paths decompose into
queue / batch-form / plan / execute / stitch.
"""

import json

import numpy as np

from repro.data import SyntheticPAIP
from repro.models.vit import ViTSegmenter
from repro.obs import (Tracer, chrome_trace, critical_paths, flame_text,
                       validate_trace)
from repro.pipeline import PatchPipeline
from repro.serve import (InferenceEngine, Predictor, ReplicaKill,
                         ServiceModel, SimClock, build_fleet, merge_traces,
                         poisson_trace, run_fleet_load, run_load)

N_IMGS = 6


def _model():
    return ViTSegmenter(patch_size=4, channels=1, dim=16, depth=1, heads=2,
                        max_len=256, rng=np.random.default_rng(1))


def _images(n=N_IMGS):
    ds = SyntheticPAIP(64, n)
    return [ds[i].image for i in range(n)]


def _factory(model):
    def factory(rank):
        pipe = PatchPipeline(patch_size=4, split_value=8.0, channels=1,
                             cache_items=32)
        return Predictor(model, pipe, max_batch=4, bucket=16)
    return factory


def _traced_fleet(replicas=3, **opts):
    clock = SimClock()
    tracer = Tracer(clock=clock.now)
    args = dict(service_model=ServiceModel(), flush_deadline=0.02,
                result_cache_items=16)
    args.update(opts)
    router = build_fleet(_factory(_model()), replicas=replicas,
                         clock=clock.now, tracer=tracer, **args)
    return router, clock, tracer


def _canonical(tracer):
    return json.dumps(chrome_trace(tracer), sort_keys=True,
                      separators=(",", ":")).encode()


def _arrivals():
    return merge_traces(*[poisson_trace(30.0, 10, seed=40 + c,
                                        n_items=N_IMGS) for c in range(3)])


class TestDeterminism:
    def test_same_seed_runs_export_identical_bytes(self):
        blobs = []
        for _ in range(2):
            router, clock, tracer = _traced_fleet()
            imgs = _images()
            run_fleet_load(router, _arrivals(), imgs, clock)
            blobs.append(_canonical(tracer))
        assert blobs[0] == blobs[1]

    def test_trace_validates_and_every_request_closes(self):
        router, clock, tracer = _traced_fleet()
        imgs = _images()
        report = run_fleet_load(router, _arrivals(), imgs, clock)
        trace = chrome_trace(tracer)
        assert validate_trace(trace) == []
        begins = [e for e in trace["traceEvents"]
                  if e["ph"] == "b" and e.get("cat") == "request"]
        ends = [e for e in trace["traceEvents"]
                if e["ph"] == "e" and e.get("cat") == "request"]
        # one interval per accepted submission (rejects never open one),
        # and all of them closed with an outcome
        assert len(begins) == report["offered"] \
            - report["rejected_submissions"]
        assert {e["id"] for e in ends} == {b["id"] for b in begins}
        outcomes = {(e.get("args") or {}).get("outcome") for e in ends}
        assert outcomes <= {"done", "cache_hit", "collapsed", "failed",
                            "cancelled"}
        names = {e["name"] for e in trace["traceEvents"]}
        assert {"batch", "batch.form", "execute", "stitch",
                "route"} <= names

    def test_kill_mid_run_traces_eviction_and_adoption(self):
        # slow service -> a real backlog exists on the victim at kill time
        router, clock, tracer = _traced_fleet(
            service_model=ServiceModel(batch_seconds=0.2))
        imgs = _images()
        trace_in = poisson_trace(200.0, 40, seed=9, n_items=N_IMGS)
        kill_t = trace_in[len(trace_in) // 2].time
        report = run_fleet_load(router, trace_in, imgs, clock,
                                events=[ReplicaKill(kill_t, 1)])
        assert report["kills"] == 1 and report["failed"] == 0
        exported = chrome_trace(tracer)
        assert validate_trace(exported) == []
        by_name = {}
        for ev in tracer.events:
            by_name.setdefault(ev["name"], []).append(ev)
        assert any(ev["track"] == "loadgen" for ev in by_name["fault.kill"])
        assert any(ev["track"] == "router" for ev in by_name["kill"])
        # the victim's backlog left as evictions and landed as adoptions
        # under the SAME rids — parentage survives re-homing
        evicted = {ev["args"]["rid"] for ev in by_name.get("req.evict", [])}
        adopted = {ev["args"]["rid"] for ev in by_name.get("req.adopt", [])}
        rerouted = {ev["args"]["rid"] for ev in by_name.get("reroute", [])}
        assert evicted and evicted == adopted == rerouted
        assert all(ev["track"] == "replica1"
                   for ev in by_name["req.evict"])
        assert all(ev["track"] != "replica1"
                   for ev in by_name["req.adopt"])
        # every evicted request still closed (on the adopting replica)
        closed = {ev["id"] for ev in tracer.events
                  if ev["ph"] == "e" and ev.get("cat") == "request"}
        assert evicted <= closed

    def test_disabled_tracer_is_report_invisible(self):
        reports = []
        for tracer in (None, Tracer(enabled=False)):
            clock = SimClock()
            router = build_fleet(_factory(_model()), replicas=3,
                                 clock=clock.now, tracer=tracer,
                                 service_model=ServiceModel(),
                                 flush_deadline=0.02, result_cache_items=16)
            reports.append(run_fleet_load(router, _arrivals(), _images(),
                                          clock))
        assert reports[0] == reports[1]


class TestSingleEngineTrace:
    def _engine(self):
        clock = SimClock()
        tracer = Tracer(clock=clock.now)
        pred = _factory(_model())(0)
        engine = InferenceEngine(pred, clock=clock.now,
                                 service_model=ServiceModel(),
                                 flush_deadline=0.02, tracer=tracer)
        return engine, clock, tracer

    def test_critical_paths_decompose_latency(self):
        engine, clock, tracer = self._engine()
        imgs = _images()
        trace_in = poisson_trace(30.0, 12, seed=5, n_items=N_IMGS)
        run_load(engine, trace_in, imgs, clock)
        paths = critical_paths(tracer)
        assert paths
        batched = [p for p in paths.values() if "queue" in p]
        assert batched
        for row in batched:
            assert row["outcome"] == "done"
            assert row["queue"] >= 0.0
            assert row["execute"] >= 0.0
            assert row["total"] >= row["queue"]
        # flame renders without error and shows the span hierarchy
        flame = flame_text(tracer)
        assert "batch" in flame and "execute" in flame

    def test_cancel_marks_outcome(self):
        engine, clock, tracer = self._engine()
        img = _images(1)[0]
        fut = engine.submit(img)
        assert engine.cancel(fut)
        ends = [e for e in tracer.events
                if e["ph"] == "e" and e.get("cat") == "request"]
        assert [e["args"]["outcome"] for e in ends] == ["cancelled"]
        assert any(e["name"] == "req.cancel" for e in tracer.events)
        assert validate_trace(chrome_trace(tracer)) == []


class TestKernelProfiling:
    def test_wall_mode_profile_joins_time_with_flops(self):
        tracer = Tracer(profile_kernels=True)
        pred = Predictor(_model(),
                         PatchPipeline(patch_size=4, split_value=8.0,
                                       channels=1, cache_items=32),
                         max_batch=4, bucket=16, tracer=tracer)
        img = _images(1)[0]
        pred.predict_image(img)
        summ = tracer.kernels.summary()
        assert summ, "profiled run must record per-op timings"
        assert all(v["calls"] >= 1 and v["seconds"] > 0.0
                   for v in summ.values())
        # the matmul-bearing kernels carry nonzero cost-model estimates,
        # so achieved GFLOP/s is computable
        heavy = [v for k, v in summ.items()
                 if k in ("matmul", "linear", "linear_gelu", "sdpa")]
        assert heavy
        assert all(v["gflops"] > 0.0 and v["gflop_per_s"] > 0.0
                   for v in heavy)

    def test_profile_absent_unless_requested(self):
        pred = Predictor(_model(),
                         PatchPipeline(patch_size=4, split_value=8.0,
                                       channels=1, cache_items=32),
                         max_batch=4, bucket=16, tracer=Tracer())
        pred.predict_image(_images(1)[0])
        assert pred.scheduler._plans
        for cm in pred.scheduler._plans.values():
            assert cm.plan.profile_hook is None
