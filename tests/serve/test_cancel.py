"""Tests for the cancellation path: FairQueue.find/remove, engine.cancel,
router.cancel — the stale-viewport machinery the pyramid service rides on."""

import numpy as np
import pytest

from repro.data import SyntheticPAIP
from repro.models.vit import ViTSegmenter
from repro.pipeline import PatchPipeline
from repro.serve import (InferenceEngine, Predictor, ServiceModel, SimClock,
                         build_fleet)
from repro.serve.queueing import FairQueue, Request


def _model(**kw):
    args = dict(patch_size=4, channels=1, dim=16, depth=1, heads=2,
                max_len=256, rng=np.random.default_rng(1))
    args.update(kw)
    return ViTSegmenter(**args)


def _predictor(model, **kw):
    args = dict(max_batch=3, bucket=16)
    args.update(kw)
    pipe = PatchPipeline(patch_size=4, split_value=8.0, channels=1,
                         cache_items=64)
    return Predictor(model, pipe, **args)


def _images(n, res=64, offset=0):
    ds = SyntheticPAIP(res, n + offset)
    return [ds[i].image for i in range(offset, n + offset)]


def _sim_engine(pred, **kw):
    clock = SimClock()
    args = dict(clock=clock.now, service_model=ServiceModel())
    args.update(kw)
    return InferenceEngine(pred, **args), clock


class TestFairQueueFindRemove:
    def _req(self, bucket=16, lane="interactive"):
        return Request(seq=None, bucket=bucket, lane=lane, submit_t=0.0)

    def test_find_and_remove(self):
        q = FairQueue()
        reqs = [self._req(bucket=b) for b in (16, 16, 32)]
        q.push_all(reqs)
        assert q.find(reqs[1].future) is reqs[1]
        assert q.remove(reqs[1].future) is reqs[1]
        assert len(q) == 2
        assert q.find(reqs[1].future) is None
        assert q.remove(reqs[1].future) is None

    def test_remove_unknown_future_is_none(self):
        from concurrent.futures import Future
        q = FairQueue()
        q.push(self._req())
        assert q.remove(Future()) is None
        assert len(q) == 1

    def test_remove_clears_empty_bucket(self):
        q = FairQueue()
        r = self._req(bucket=32)
        q.push(r)
        q.remove(r.future)
        assert q.depths()["per_bucket"] == {}
        # capacity actually freed: we can fill the queue again
        q.push_all([self._req() for _ in range(q.max_depth)])

    def test_removed_request_not_dispatched(self):
        q = FairQueue()
        keep, drop = self._req(), self._req()
        q.push_all([keep, drop])
        q.remove(drop.future)
        batch = q.collect(now=100.0, max_batch=4, deadline=0.0)
        assert batch == [keep]
        assert q.collect(now=100.0, max_batch=4, deadline=0.0) is None


class TestEngineCancel:
    def test_cancel_waiting_request(self):
        engine, _ = _sim_engine(_predictor(_model()))
        img = _images(1)[0]
        fut = engine.submit(img)
        assert engine.cancel(fut) is True
        assert fut.cancelled()
        assert engine.pending == 0
        assert engine.stats()["engine"].get("cancelled") == 1

    def test_cancel_resolved_request_is_false(self):
        engine, _ = _sim_engine(_predictor(_model()))
        fut = engine.submit(_images(1)[0])
        engine.drain()
        assert fut.done() and not fut.cancelled()
        assert engine.cancel(fut) is False

    def test_cancel_foreign_future_is_false(self):
        from concurrent.futures import Future
        engine, _ = _sim_engine(_predictor(_model()))
        engine.submit(_images(1)[0])
        assert engine.cancel(Future()) is False
        engine.drain()

    def test_cancel_refuses_collapsed_primary(self):
        # Two identical submissions collapse onto one primary; cancelling
        # the primary would orphan the twin riding on its execution.
        engine, _ = _sim_engine(_predictor(_model()), result_cache_items=8)
        img = _images(1)[0]
        primary = engine.submit(img)
        twin = engine.submit(img)
        assert twin is not primary
        assert engine.cancel(primary) is False
        engine.drain()
        np.testing.assert_array_equal(primary.result(), twin.result())

    def test_cancel_releases_inflight_reservation(self):
        # After cancelling, an identical resubmission must execute fresh
        # (not join a dead reservation) and still match the direct path.
        model = _model()
        engine, _ = _sim_engine(_predictor(model), result_cache_items=8)
        img = _images(1)[0]
        fut = engine.submit(img)
        assert engine.cancel(fut) is True
        fresh = engine.submit(img)
        engine.drain()
        ref = _predictor(model).predict_image(img, key=0)
        np.testing.assert_array_equal(fresh.result(), ref)

    def test_cancel_frees_queue_capacity(self):
        engine, _ = _sim_engine(_predictor(_model()), max_queue=2)
        imgs = _images(3)
        futs = [engine.submit(im) for im in imgs[:2]]
        with pytest.raises(Exception):
            engine.submit(imgs[2])
        assert engine.cancel(futs[0]) is True
        fut = engine.submit(imgs[2])          # slot actually freed
        engine.drain()
        assert fut.done()

    def test_cancelled_request_never_runs(self):
        engine, _ = _sim_engine(_predictor(_model()))
        imgs = _images(2)
        keep = engine.submit(imgs[0])
        drop = engine.submit(imgs[1])
        engine.cancel(drop)
        engine.drain()
        assert keep.done() and not keep.cancelled()
        eng = engine.stats()["engine"]
        assert eng["completed"] == 1

    def test_queue_wait_per_lane_in_stats(self):
        engine, _ = _sim_engine(_predictor(_model()))
        imgs = _images(3)
        engine.submit(imgs[0], lane="interactive")
        engine.submit(imgs[1], lane="bulk")
        engine.submit(imgs[2], lane="bulk")
        engine.drain()
        waits = engine.stats()["queue"]["wait_per_lane"]
        assert set(waits) == {"interactive", "bulk"}
        assert waits["interactive"]["count"] == 1
        assert waits["bulk"]["count"] == 2
        assert all(w["max"] >= 0.0 for w in waits.values())


class TestFleetCancel:
    def _fleet(self, clock, replicas=2, **overrides):
        model = _model()

        def factory(rank):
            return _predictor(model)

        opts = dict(clock=clock.now, service_model=ServiceModel(),
                    result_cache_items=8)
        opts.update(overrides)
        return build_fleet(factory, replicas=replicas, **opts)

    def test_cancel_finds_owning_replica(self):
        clock = SimClock()
        router = self._fleet(clock)
        imgs = _images(4)
        futs = [router.submit(im) for im in imgs]
        assert router.cancel(futs[2]) is True
        assert futs[2].cancelled()
        router.drain_all()
        for i, fut in enumerate(futs):
            assert fut.cancelled() == (i == 2)
        assert router.stats()["router"]["cancelled"] == 1

    def test_cancel_after_drain_is_false(self):
        clock = SimClock()
        router = self._fleet(clock)
        fut = router.submit(_images(1)[0])
        router.drain_all()
        assert router.cancel(fut) is False

    def test_cancel_then_kill_leaves_fleet_clean(self):
        # A cancelled future must not be re-homed by the kill path.
        clock = SimClock()
        router = self._fleet(clock, replicas=2)
        imgs = _images(6)
        futs = [router.submit(im) for im in imgs]
        cancelled = [f for f in futs if router.cancel(f)]
        assert cancelled
        router.kill(0)
        router.drain_all()
        for fut in futs:
            assert fut.done()
            if not fut.cancelled():
                assert fut.exception() is None
