"""Tests for the bounded-memory streaming runner: bit-identity against the
non-streamed paths, checkpoint/resume byte-identity, engine-mode overlap and
backpressure, sinks, and validation."""

import threading
from concurrent.futures import Future

import numpy as np
import pytest

from repro.models.vit import ViTSegmenter
from repro.pipeline import PatchPipeline
from repro.serve import EngineOverloaded, InferenceEngine, Predictor
from repro.serve.predictor import class_map
from repro.stream import (ArraySource, MemorySink, NpyDirectorySink,
                          StreamingRunner, VirtualWSISource, plan_scene,
                          plan_volume)

RES, TILE = 128, 32


def _model():
    return ViTSegmenter(patch_size=4, channels=1, dim=16, depth=1, heads=2,
                        max_len=256, rng=np.random.default_rng(1)).eval()


def _predictor(model=None):
    pipe = PatchPipeline(patch_size=4, split_value=8.0, channels=1,
                         cache_items=32)
    return Predictor(model if model is not None else _model(), pipe,
                     max_batch=3, bucket=16)


def _wsi(**kw):
    args = dict(seed=5, organ=2, tile=TILE)
    args.update(kw)
    return VirtualWSISource(RES, **args)


def _plan():
    return plan_scene((RES, RES, 3), tile=TILE, max_len=256)


class _InterruptedSink:
    """Forwards to a real sink, then dies after ``n`` writes (kill -9 stand-in)."""

    def __init__(self, inner, n):
        self.inner = inner
        self.left = n

    def completed(self, plan):
        return self.inner.completed(plan)

    def write(self, tile, arr):
        if self.left == 0:
            raise KeyboardInterrupt("killed mid-run")
        self.inner.write(tile, arr)
        self.left -= 1


class TestPredictorMode:
    def test_bit_identical_to_per_tile_predict_image(self):
        src, plan = _wsi(), _plan()
        sink = MemorySink()
        report = StreamingRunner(_predictor()).run(src, plan, sink)
        assert report.tiles_run == len(plan.tiles)
        assert report.peak_inflight == 1
        reference = _predictor()          # fresh predictor, fresh caches
        for tile in plan.tiles:
            region = src.read_region(tile.origin, tile.size)
            expected = class_map(reference.predict_image(region))
            np.testing.assert_array_equal(sink.read(tile), expected)

    def test_report_accounting(self):
        src, plan = _wsi(), _plan()
        report = StreamingRunner(_predictor(), track_memory=True).run(
            src, plan, MemorySink())
        assert report.bytes_read == RES * RES * 3 * 8
        assert report.working_set_bytes == plan.working_set_bytes()
        assert report.scene_bytes == plan.scene_bytes
        assert report.peak_traced_bytes is not None
        # bounded by the planner's per-tile model, not by the scene (the
        # scene-dominance claim only bites at gigapixel scale — the bench
        # gates it there)
        assert 0 < report.peak_traced_bytes < 4 * plan.working_set_bytes()
        assert report.seconds > 0

    def test_memory_and_directory_sinks_agree(self, tmp_path):
        src, plan = _wsi(), _plan()
        model = _model()
        mem, disk = MemorySink(), NpyDirectorySink(tmp_path, dtype=np.uint8)
        StreamingRunner(_predictor(model)).run(src, plan, mem)
        StreamingRunner(_predictor(model)).run(src, plan, disk)
        np.testing.assert_array_equal(mem.assemble(plan), disk.assemble(plan))
        import json
        manifest = json.loads((tmp_path / "manifest.json").read_text())
        assert manifest["digest"] == disk.digest(plan)
        assert len(manifest["tiles"]) == len(plan.tiles)

    def test_lossy_dtype_write_rejected(self, tmp_path):
        sink = NpyDirectorySink(tmp_path, dtype=np.uint8)
        plan = _plan()
        with pytest.raises(ValueError):
            sink.write(plan.tiles[0], np.full((TILE, TILE), 300))


class TestCheckpointResume:
    def test_killed_run_resumes_byte_identical(self, tmp_path):
        src, plan = _wsi(), _plan()
        model = _model()
        straight = NpyDirectorySink(tmp_path / "straight")
        StreamingRunner(_predictor(model)).run(src, plan, straight)

        resumed = NpyDirectorySink(tmp_path / "resumed")
        with pytest.raises(KeyboardInterrupt):
            StreamingRunner(_predictor(model)).run(
                src, plan, _InterruptedSink(resumed, 5))
        assert len(resumed.completed(plan)) == 5
        report = StreamingRunner(_predictor(model)).run(src, plan, resumed)
        assert report.tiles_skipped == 5
        assert report.tiles_run == len(plan.tiles) - 5
        assert resumed.digest(plan) == straight.digest(plan)
        for tile in plan.tiles:       # byte-level, not just value-level
            a = (tmp_path / "straight" / f"{tile.name}.npy").read_bytes()
            b = (tmp_path / "resumed" / f"{tile.name}.npy").read_bytes()
            assert a == b

    def test_resume_false_discards_prior_tiles(self, tmp_path):
        src, plan = _wsi(), _plan()
        sink = NpyDirectorySink(tmp_path)
        runner = StreamingRunner(_predictor())
        runner.run(src, plan, sink)
        report = runner.run(src, plan, sink, resume=False)
        assert report.tiles_skipped == 0
        assert report.tiles_run == len(plan.tiles)

    def test_stale_artifacts_are_recomputed_not_trusted(self, tmp_path):
        src, plan = _wsi(), _plan()
        sink = NpyDirectorySink(tmp_path)
        # stale leftovers: wrong shape under a valid name, plus an orphaned
        # temp file from a hypothetical hard kill mid-write
        np.save(tmp_path / f"{plan.tiles[0].name}.npy",
                np.zeros((TILE // 2, TILE // 2), dtype=np.int64))
        (tmp_path / f"{plan.tiles[1].name}.12345.tmp").write_bytes(b"junk")
        assert sink.completed(plan) == set()
        assert not list(tmp_path.glob("*.tmp"))      # swept
        report = StreamingRunner(_predictor()).run(src, plan, sink)
        assert report.tiles_run == len(plan.tiles)   # stale tile recomputed
        assert sink.read(plan.tiles[0]).shape == (TILE, TILE)

    def test_wrong_dtype_artifact_not_trusted(self, tmp_path):
        plan = _plan()
        sink = NpyDirectorySink(tmp_path, dtype=np.uint8)
        np.save(tmp_path / f"{plan.tiles[0].name}.npy",
                np.zeros((TILE, TILE), dtype=np.int64))
        assert sink.completed(plan) == set()

    def test_completed_run_resumes_as_noop(self, tmp_path):
        src, plan = _wsi(), _plan()
        sink = NpyDirectorySink(tmp_path)
        runner = StreamingRunner(_predictor())
        runner.run(src, plan, sink)
        report = runner.run(src, plan, sink)
        assert report.tiles_run == 0
        assert report.tiles_skipped == len(plan.tiles)


class TestEngineMode:
    def test_matches_predictor_mode_class_maps(self):
        src, plan = _wsi(), _plan()
        model = _model()
        serial = MemorySink()
        StreamingRunner(_predictor(model)).run(src, plan, serial)
        engine = InferenceEngine(_predictor(model), result_cache_items=0)
        overlapped = MemorySink()
        report = StreamingRunner(engine=engine, max_inflight=3).run(
            src, plan, overlapped)
        assert 1 < report.peak_inflight <= 3
        np.testing.assert_array_equal(overlapped.assemble(plan),
                                      serial.assemble(plan))

    def test_backpressure_retires_inflight_work(self):
        src, plan = _wsi(), _plan()
        engine = InferenceEngine(_predictor(), max_queue=1,
                                 result_cache_items=0)
        sink = MemorySink()
        report = StreamingRunner(engine=engine, max_inflight=4).run(
            src, plan, sink)
        assert report.backpressure_waits > 0
        assert report.tiles_run == len(plan.tiles)
        assert engine.stats()["queue"]["peak_depth"] == 1

    def test_threaded_engine_streams(self):
        src, plan = _wsi(), _plan()
        engine = InferenceEngine(_predictor(), flush_deadline=0.001,
                                 result_cache_items=0)
        engine.start(warmup=False)
        try:
            report = StreamingRunner(engine=engine, max_inflight=2).run(
                src, plan, MemorySink())
        finally:
            engine.stop()
        assert report.tiles_run == len(plan.tiles)

    def test_oversized_volume_request_surfaces_overload(self):
        vol = np.random.default_rng(0).random((6, 32, 32))
        engine = InferenceEngine(_predictor(), max_queue=2,
                                 result_cache_items=0)
        runner = StreamingRunner(engine=engine)
        plan = plan_volume(vol.shape, slab=6)    # one slab > queue capacity
        with pytest.raises(EngineOverloaded):
            runner.run(ArraySource(vol, kind="volume"), plan, MemorySink())

    def test_resolve_surfaces_a_stopped_engine_instead_of_hanging(self):
        # a future the batcher will never resolve must not deadlock the run
        engine = InferenceEngine(_predictor(), result_cache_items=0)
        engine.start(warmup=False)
        runner = StreamingRunner(engine=engine, max_inflight=1)
        orphan = Future()
        stopper = threading.Timer(0.3, engine.stop)
        stopper.start()
        try:
            with pytest.raises(RuntimeError, match="still\\s+pending"):
                runner._resolve(orphan)
        finally:
            stopper.join()

    def test_oversized_request_raises_on_started_engine_too(self):
        # a threaded engine must raise, not sleep-retry forever
        vol = np.random.default_rng(0).random((6, 32, 32))
        engine = InferenceEngine(_predictor(), max_queue=2,
                                 result_cache_items=0)
        engine.start(warmup=False)
        try:
            assert engine.is_running
            with pytest.raises(EngineOverloaded):
                StreamingRunner(engine=engine).run(
                    ArraySource(vol, kind="volume"),
                    plan_volume(vol.shape, slab=6), MemorySink())
        finally:
            engine.stop()
        assert not engine.is_running


class _CountingSink:
    """Forwards to a real sink, counting writes per tile index."""

    def __init__(self, inner):
        self.inner = inner
        self.writes = {}

    def completed(self, plan):
        return self.inner.completed(plan)

    def write(self, tile, arr):
        self.writes[tile.index] = self.writes.get(tile.index, 0) + 1
        self.inner.write(tile, arr)


class TestOverloadMidRun:
    """Regressions for the EngineOverloaded retire-then-retry path:
    tiles the engine already accepted must be neither dropped nor
    double-submitted when the overload fires mid-run."""

    def test_unadmittable_slab_retires_inflight_before_raising(self):
        from repro.data import generate_ct_volume
        from repro.stream import MacroTile

        vol = generate_ct_volume(32, 7, seed=3).volume     # (7, 32, 32)
        model = _model()
        plan = plan_volume(vol.shape, slab=2, max_len=256)
        # an admittable 2-slice slab followed by a 5-slice slab that can
        # never fit the queue (max_queue=2)
        plan.tiles = [MacroTile(0, (0,), (2,)), MacroTile(1, (2,), (5,))]
        engine = InferenceEngine(_predictor(model), max_queue=2,
                                 result_cache_items=0)
        sink = MemorySink()
        with pytest.raises(EngineOverloaded):
            StreamingRunner(engine=engine, max_inflight=4).run(
                ArraySource(vol, kind="volume"), plan, sink)
        # the accepted slab was retired into the sink before the raise —
        # its future is not orphaned and its checkpoint is durable
        assert sink.completed(plan) == {0}
        ref = _predictor(model).predict_volume(vol[:2])
        np.testing.assert_array_equal(sink.read(plan.tiles[0]), ref)
        # resume with a deeper queue: only the rejected slab runs
        deeper = InferenceEngine(_predictor(model), max_queue=8,
                                 result_cache_items=0)
        report = StreamingRunner(engine=deeper).run(
            ArraySource(vol, kind="volume"), plan, sink, resume=True)
        assert report.tiles_skipped == 1
        assert report.tiles_run == 1
        full = _predictor(model).predict_volume(vol)
        np.testing.assert_array_equal(sink.assemble(plan), full)

    def test_kill_and_resume_mid_overload(self, tmp_path):
        src, plan = _wsi(), _plan()
        model = _model()
        disk = NpyDirectorySink(tmp_path / "run", dtype=np.uint8)
        counting = _CountingSink(disk)
        # max_queue=1 forces every write through the overload-retire path;
        # kill on the fourth write — mid-overload, with a tile in flight
        engine = InferenceEngine(_predictor(model), max_queue=1,
                                 result_cache_items=0)
        with pytest.raises(KeyboardInterrupt):
            StreamingRunner(engine=engine, max_inflight=4).run(
                src, plan, _InterruptedSink(counting, 3))
        done = counting.completed(plan)
        assert 0 < len(done) < len(plan.tiles)
        # resume under the same overload pressure with a fresh engine
        engine2 = InferenceEngine(_predictor(model), max_queue=1,
                                  result_cache_items=0)
        report = StreamingRunner(engine=engine2, max_inflight=4).run(
            src, plan, counting, resume=True)
        assert report.tiles_skipped == len(done)
        assert report.tiles_run == len(plan.tiles) - len(done)
        assert report.backpressure_waits > 0
        # every tile written exactly once across kill + resume: nothing
        # dropped, nothing double-submitted
        assert set(counting.writes) == {t.index for t in plan.tiles}
        assert all(n == 1 for n in counting.writes.values())
        # and the artifacts are byte-identical to an uninterrupted run
        ref = NpyDirectorySink(tmp_path / "ref", dtype=np.uint8)
        StreamingRunner(_predictor(model)).run(src, plan, ref)
        assert disk.digest(plan) == ref.digest(plan)


class TestVolumeStreaming:
    def test_slab_streaming_matches_per_slab_reference(self):
        vol = np.clip(np.random.default_rng(3).random((7, 32, 32)), 0, 1)
        plan = plan_volume(vol.shape, slab=3)
        model = _model()
        sink = MemorySink()
        StreamingRunner(_predictor(model)).run(
            ArraySource(vol, kind="volume"), plan, sink)
        reference = _predictor(model)
        for tile in plan.tiles:
            z0, d = tile.origin[0], tile.size[0]
            expected = np.stack(reference.predict_class_slices(
                [vol[i] for i in range(z0, z0 + d)]))
            np.testing.assert_array_equal(sink.read(tile), expected)

    def test_engine_volume_mode(self):
        vol = np.clip(np.random.default_rng(4).random((6, 32, 32)), 0, 1)
        plan = plan_volume(vol.shape, slab=3)
        model = _model()
        serial = MemorySink()
        StreamingRunner(_predictor(model)).run(
            ArraySource(vol, kind="volume"), plan, serial)
        engine = InferenceEngine(_predictor(model), result_cache_items=0)
        overlapped = MemorySink()
        StreamingRunner(engine=engine, max_inflight=2).run(
            ArraySource(vol, kind="volume"), plan, overlapped)
        np.testing.assert_array_equal(overlapped.assemble(plan),
                                      serial.assemble(plan))


class TestValidation:
    def test_exactly_one_driver(self):
        with pytest.raises(ValueError):
            StreamingRunner()
        with pytest.raises(ValueError):
            StreamingRunner(_predictor(), engine=object())
        with pytest.raises(ValueError):
            StreamingRunner(_predictor(), max_inflight=0)

    def test_kind_and_shape_mismatches(self):
        runner = StreamingRunner(_predictor())
        image_plan = _plan()
        vol = np.zeros((4, 32, 32))
        with pytest.raises(ValueError):
            runner.run(ArraySource(vol, kind="volume"), image_plan,
                       MemorySink())
        with pytest.raises(ValueError):
            runner.run(_wsi(), plan_scene((64, 64, 3), tile=TILE),
                       MemorySink())
        # volume plans must match in-plane dims too, not just slice count
        with pytest.raises(ValueError):
            runner.run(ArraySource(np.zeros((4, 64, 64)), kind="volume"),
                       plan_volume((4, 32, 32), slab=2), MemorySink())
