"""Tests for the octree / 3-D Morton volumetric extension."""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.quadtree import (build_octree, morton3d_decode, morton3d_encode)


def center_ball(n=16, r=4):
    zz, yy, xx = np.mgrid[0:n, 0:n, 0:n]
    c = n // 2
    return (((zz - c) ** 2 + (yy - c) ** 2 + (xx - c) ** 2) < r * r).astype(float)


class TestMorton3d:
    def test_known_small_values(self):
        # (z,y,x) = (0,0,1) → 1; (0,1,0) → 2; (1,0,0) → 4 — octant order.
        assert morton3d_encode(0, 0, 1)[0] == 1
        assert morton3d_encode(0, 1, 0)[0] == 2
        assert morton3d_encode(1, 0, 0)[0] == 4
        assert morton3d_encode(1, 1, 1)[0] == 7

    def test_roundtrip_random(self):
        rng = np.random.default_rng(0)
        z = rng.integers(0, 2 ** 12, 300)
        y = rng.integers(0, 2 ** 12, 300)
        x = rng.integers(0, 2 ** 12, 300)
        zd, yd, xd = morton3d_decode(morton3d_encode(z, y, x))
        np.testing.assert_array_equal(zd, z)
        np.testing.assert_array_equal(yd, y)
        np.testing.assert_array_equal(xd, x)

    def test_out_of_range_rejected(self):
        with pytest.raises(ValueError):
            morton3d_encode(2 ** 17, 0, 0)

    @given(st.integers(0, 2 ** 12 - 1), st.integers(0, 2 ** 12 - 1),
           st.integers(0, 2 ** 12 - 1))
    @settings(max_examples=60, deadline=None)
    def test_property_roundtrip(self, z, y, x):
        zd, yd, xd = morton3d_decode(morton3d_encode(z, y, x))
        assert (zd[0], yd[0], xd[0]) == (z, y, x)


class TestBuildOctree:
    def test_empty_volume_single_leaf(self):
        leaves = build_octree(np.zeros((8, 8, 8)), 0.0, 3)
        assert len(leaves) == 1
        assert leaves.covers_exactly()

    def test_full_detail_fully_refines(self):
        leaves = build_octree(np.ones((8, 8, 8)), 0.0, 3)
        assert len(leaves) == 512
        assert leaves.covers_exactly()

    def test_ball_refines_boundary(self):
        leaves = build_octree(center_ball(), split_value=4.0, max_depth=4)
        assert leaves.covers_exactly()
        assert len(leaves) < 16 ** 3
        assert len(set(leaves.sizes)) > 1  # mixed refinement

    def test_min_size_respected(self):
        leaves = build_octree(np.ones((16, 16, 16)), 0.0, 10, min_size=4)
        assert leaves.sizes.min() == 4

    def test_split_monotone_in_value(self):
        d = center_ball()
        lens = [build_octree(d, v, 4).sequence_length for v in (1, 8, 64)]
        assert lens == sorted(lens, reverse=True)

    def test_morton_order_sorted(self):
        leaves = build_octree(center_ball(), 4.0, 4).sorted_by_morton()
        codes = morton3d_encode(leaves.zs, leaves.ys, leaves.xs).astype(np.int64)
        assert (np.diff(codes) > 0).all()

    def test_histogram_volume_conserved(self):
        leaves = build_octree(center_ball(), 4.0, 4)
        hist = leaves.size_histogram()
        assert sum(s ** 3 * c for s, c in hist.items()) == 16 ** 3

    def test_validation(self):
        with pytest.raises(ValueError):
            build_octree(np.zeros((8, 8)), 1.0, 2)
        with pytest.raises(ValueError):
            build_octree(np.zeros((8, 8, 4)), 1.0, 2)
        with pytest.raises(ValueError):
            build_octree(np.zeros((12, 12, 12)), 1.0, 2)
        with pytest.raises(ValueError):
            build_octree(np.zeros((8, 8, 8)), -1.0, 2)

    @given(st.integers(0, 10 ** 6), st.integers(1, 3))
    @settings(max_examples=15, deadline=None)
    def test_property_exact_tiling(self, seed, depth):
        rng = np.random.default_rng(seed)
        d = (rng.random((16, 16, 16)) > 0.9).astype(float)
        leaves = build_octree(d, float(rng.random() * 8), depth)
        assert leaves.covers_exactly()
