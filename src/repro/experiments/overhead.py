"""Section IV-G.3: APF preprocessing overhead is negligible.

The paper reports whole-dataset preprocessing times of
[4.2, 7.6, 37.2, 127.4, 286.6] seconds for resolutions
[512, 1K, 4K, 32K, 64K] — hours of training vs seconds of preprocessing.
This runner measures our patcher's per-image preprocessing time across
resolutions and compares it against one measured training epoch.
"""

from __future__ import annotations

import time
from dataclasses import dataclass
from typing import List, Sequence


from .. import nn
from ..data import generate_wsi
from ..patching import AdaptivePatcher
from ..train import Trainer
from .common import ExperimentScale, format_table, make_vit_token_task

__all__ = ["OverheadResult", "run_overhead"]


@dataclass
class OverheadResult:
    resolutions: List[int]
    preprocess_seconds: List[float]       #: per image
    epoch_seconds_per_image: float        #: measured at the smallest resolution
    overhead_fraction: float              #: preprocess / (epochs * epoch time)

    def rows(self) -> str:
        rows = [[z, f"{t:.4f}"] for z, t in zip(self.resolutions,
                                                self.preprocess_seconds)]
        rows.append(["epoch sec/image (train)",
                     f"{self.epoch_seconds_per_image:.4f}"])
        rows.append(["overhead / 200-epoch training",
                     f"{self.overhead_fraction * 100:.3f}%"])
        return format_table(["resolution", "seconds"], rows)


def run_overhead(resolutions: Sequence[int] = (32, 64, 128, 256),
                 n_images: int = 3, seed: int = 0) -> OverheadResult:
    """Measure preprocessing seconds/image per resolution and compare with a
    measured training epoch (the amortization argument)."""
    pre: List[float] = []
    for z in resolutions:
        patcher = AdaptivePatcher(patch_size=4, split_value=8.0, seed=seed)
        images = [generate_wsi(z, seed=seed + i).image for i in range(n_images)]
        t0 = time.perf_counter()
        for img in images:
            patcher(img)
        pre.append((time.perf_counter() - t0) / n_images)

    scale = ExperimentScale(resolution=int(resolutions[0]), n_samples=4,
                            epochs=1, seed=seed)
    task = make_vit_token_task(scale, patch=4, adaptive=True)
    trainer = Trainer(task, nn.AdamW(task.parameters(), lr=scale.lr),
                      batch_size=2, seed=seed)
    samples = [generate_wsi(scale.resolution, seed=seed + i) for i in range(4)]
    spi = trainer.seconds_per_image(samples)
    # Preprocessing runs once; training runs for (paper) 200 epochs.
    overhead = pre[0] / max(200 * spi, 1e-12)
    return OverheadResult(list(resolutions), pre, spi, overhead)
