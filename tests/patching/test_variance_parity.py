"""Criterion parity and golden pins for the variance ablation (ISSUE 8).

``_variance_detail`` is the paper's ablation criterion. Two guarantees:

* **Parity on constant images** — both criteria measure zero detail on
  constant content, so the full pipelines (tree, order, tokens, details)
  must be *identical* there, for any constant and any size. A criterion
  that hallucinated detail on flat content would silently defeat the
  sparsity fast path's background claims.
* **Golden digests** — the variance path's leaf layouts are pinned for
  fixed seeds, exactly like the canny path in ``tests/test_golden.py``,
  so criterion refactors cannot drift it unnoticed.
"""

import hashlib

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.data import generate_wsi
from repro.patching import AdaptivePatcher, APFConfig
from repro.patching.adaptive import _variance_detail


def _digest(*arrays) -> str:
    h = hashlib.blake2b(digest_size=16)
    for a in arrays:
        a = np.ascontiguousarray(a)
        h.update(str(a.shape).encode())
        h.update(a.dtype.str.encode())
        h.update(a.tobytes())
    return h.hexdigest()


#: Morton-sorted leaf layout of the variance-criterion build_tree for
#: generate_wsi(64, seed), APFConfig(patch_size=4, split_value=8.0,
#: criterion="variance"). Regenerate with _digest(ys, xs, sizes, depths).
VARIANCE_GOLDEN = {
    0: "73afd7b98b9bd1698ef2a1c9dc05779a",
    1: "d1f76a50a398fe91f4f3642ad0d86cd8",
    2: "05b7437d8a8b94ec4e1c83c2e4ec9032",
}


def _patcher(criterion):
    return AdaptivePatcher(APFConfig(patch_size=4, split_value=8.0,
                                     criterion=criterion))


class TestConstantImageParity:
    @given(st.floats(0.0, 1.0), st.sampled_from([16, 32, 64]))
    @settings(max_examples=25, deadline=None)
    def test_property_identical_pipelines_on_constant_images(self, c, z):
        img = np.full((z, z), c)
        canny = _patcher("canny")(img)
        var = _patcher("variance")(img)
        assert len(canny) == len(var) == 1          # one root leaf each
        np.testing.assert_array_equal(canny.ys, var.ys)
        np.testing.assert_array_equal(canny.xs, var.xs)
        np.testing.assert_array_equal(canny.sizes, var.sizes)
        np.testing.assert_array_equal(canny.patches, var.patches)
        np.testing.assert_array_equal(canny.details, var.details)
        np.testing.assert_array_equal(canny.details, 0.0)

    def test_both_detail_maps_are_zero_on_constant_content(self):
        img = np.full((32, 32), 0.7)
        np.testing.assert_array_equal(_patcher("canny").detail_map(img), 0.0)
        np.testing.assert_array_equal(
            _patcher("variance").detail_map(img), 0.0)

    def test_variance_detail_is_translation_invariant_on_flat(self):
        np.testing.assert_array_equal(
            _variance_detail(np.full((16, 16), 0.2)),
            _variance_detail(np.full((16, 16), 0.9)))


class TestVarianceGolden:
    def test_leaf_layouts_match_golden(self):
        """Regenerate: _digest(ys, xs, sizes, depths) of the Morton-sorted
        variance-criterion build_tree for generate_wsi(64, seed)."""
        for seed, expected in VARIANCE_GOLDEN.items():
            leaves = _patcher("variance").build_tree(
                generate_wsi(64, seed=seed).image).sorted_by_morton()
            got = _digest(leaves.ys, leaves.xs, leaves.sizes, leaves.depths)
            assert got == expected, (
                f"variance-path quadtree changed for seed {seed} — if "
                f"intentional, update VARIANCE_GOLDEN (new digest {got})")

    def test_variance_path_still_differs_from_canny_on_texture(self):
        # Sanity: the golden pins are not vacuous — on textured content the
        # two criteria genuinely produce different partitions somewhere.
        diff = 0
        for seed in VARIANCE_GOLDEN:
            img = generate_wsi(64, seed=seed).image
            a = _patcher("canny")(img)
            b = _patcher("variance")(img)
            diff += int(len(a) != len(b) or not np.array_equal(a.ys, b.ys))
        assert diff > 0

    def test_variance_details_feed_the_sparsity_mask(self):
        from repro.sparse import background_mask
        img = np.full((64, 64), 0.25)
        img[:8, :8] = np.random.default_rng(0).random((8, 8))
        seq = _patcher("variance")(img)
        bg = background_mask(seq, 0.0)
        assert bg is not None and bg.any()
        for i in np.flatnonzero(bg):
            assert float(np.ptp(seq.patches[i])) == pytest.approx(0.0)
