"""Tests for the cost-model plan chooser (ISSUE 8 decision policy)."""

import numpy as np
import pytest

from repro.models import ViTSegmenter
from repro.perf import CostModel, TransformerConfig
from repro.sparse import PlanChooser, SparsityConfig


def _model():
    return ViTSegmenter(patch_size=4, channels=1, dim=16, depth=1, heads=2,
                        max_len=256, rng=np.random.default_rng(1))


def _bucket(bucket=4, cap=256):
    return lambda n: min(-(-max(n, 1) // bucket) * bucket, cap)


def _chooser(**cfg):
    return PlanChooser(_model(), SparsityConfig(**cfg))


class TestDerivedShape:
    def test_cost_matches_perf_module_directly(self):
        ch = _chooser()
        cfg = TransformerConfig(seq_len=8, dim=16, depth=1, heads=2,
                                mlp_ratio=2.0)        # the model's fc1/dim
        assert ch.seconds_for_length(8, _bucket()) == \
            pytest.approx(CostModel().inference_seconds(cfg))

    def test_bucketed_lengths_cost_the_same(self):
        ch = _chooser()
        b = _bucket(bucket=16)
        assert ch.seconds_for_length(3, b) == ch.seconds_for_length(16, b)
        assert ch.seconds_for_length(17, b) > ch.seconds_for_length(16, b)


class TestAutoPolicy:
    def test_all_detail_sequence_runs_dense(self):
        c = _chooser().choose(40, 0, 0.0, 0.0, 0, _bucket())
        assert c.plan == "dense"
        assert set(c.est_seconds) == {"dense"}

    def test_all_background_sequence_shortcircuits(self):
        # 39 of 40 tokens flat (the anchor token stays): free savings.
        c = _chooser().choose(40, 39, 0.0, 5.0, 0, _bucket())
        assert c.plan == "shortcircuit"
        assert c.deltas["shortcircuit"] == 0.0
        assert c.est_seconds["shortcircuit"] < c.est_seconds["dense"]

    def test_same_bucket_savings_tie_goes_to_dense(self):
        # Removing 2 of 40 tokens lands in the same 64-bucket: no cheaper.
        c = _chooser().choose(40, 2, 0.0, 5.0, 0, _bucket(bucket=64))
        assert c.plan == "dense"

    def test_nonzero_delta_needs_epsilon(self):
        # Skipped tokens carry 10% of the detail mass: blocked at eps=0,
        # admitted once the budget covers it.
        args = (40, 30, 0.5, 5.0, 0)
        assert _chooser().choose(*args, _bucket()).plan == "dense"
        c = _chooser(epsilon=0.2).choose(*args, _bucket())
        assert c.plan == "shortcircuit"
        assert c.deltas["shortcircuit"] == pytest.approx(0.1)

    def test_merge_is_lossy_and_off_by_default(self):
        c = _chooser().choose(40, 0, 0.0, 0.0, 20, _bucket())
        assert c.plan == "dense"
        assert c.deltas["merge"] == pytest.approx(0.5)
        c = _chooser(epsilon=0.5).choose(40, 0, 0.0, 0.0, 20, _bucket())
        assert c.plan == "merge"

    def test_cheapest_in_budget_wins(self):
        # Both candidates free (zero delta not possible for merge — use a
        # big epsilon) — the larger reduction wins.
        c = _chooser(epsilon=1.0).choose(40, 10, 0.0, 5.0, 30, _bucket())
        assert c.plan == "merge"
        c = _chooser(epsilon=1.0).choose(40, 30, 0.0, 5.0, 10, _bucket())
        assert c.plan == "shortcircuit"


class TestForcedModes:
    def test_forced_shortcircuit_degrades_without_background(self):
        assert _chooser(mode="shortcircuit").choose(
            40, 0, 0.0, 0.0, 0, _bucket()).plan == "dense"

    def test_forced_merge_ignores_delta(self):
        assert _chooser(mode="merge").choose(
            40, 0, 0.0, 0.0, 20, _bucket()).plan == "merge"

    def test_forced_dense_ignores_savings(self):
        assert _chooser(mode="dense").choose(
            40, 39, 0.0, 5.0, 0, _bucket()).plan == "dense"


class TestCalibration:
    def test_calibrate_pins_prediction_to_measurement(self):
        ch = _chooser()
        ch.calibrate(40, _bucket(), measured_seconds=0.123)
        assert ch.seconds_for_length(40, _bucket()) == pytest.approx(0.123)
