"""``repro.stream`` — out-of-core streaming inference.

Segments scenes far larger than memory (gigapixel WSIs, long CT volumes)
under a hard memory bound, with outputs matching the non-streamed serving
paths bit for bit:

* :mod:`.source` — :class:`TiledSource` scene addressing
  (:class:`ArraySource`, procedural :class:`VirtualWSISource`);
* :mod:`.planner` — quadtree-aligned macro-tiles / Z-slabs with
  working-set estimates (:func:`plan_scene`, :func:`plan_volume`);
* :mod:`.runner` — the bounded-memory loop over
  :class:`~repro.serve.predictor.Predictor` (serial, bit-exact) or
  :class:`~repro.serve.engine.InferenceEngine` (overlapped,
  backpressure-aware);
* :mod:`.sink` — tile-addressable outputs with atomic checkpoint/resume
  (:class:`MemorySink`, :class:`NpyDirectorySink`).
"""

from .planner import MacroTile, StreamPlan, plan_scene, plan_volume
from .runner import StreamingRunner, StreamReport
from .sink import MemorySink, NpyDirectorySink
from .source import ArraySource, TiledSource, VirtualWSISource

__all__ = [
    "TiledSource", "ArraySource", "VirtualWSISource",
    "MacroTile", "StreamPlan", "plan_scene", "plan_volume",
    "StreamingRunner", "StreamReport",
    "MemorySink", "NpyDirectorySink",
]
