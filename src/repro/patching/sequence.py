"""Patch-sequence container shared by uniform and adaptive patching.

A :class:`PatchSequence` is what gets fed to any transformer model: a fixed
number ``L`` of ``Pm x Pm`` patches plus the geometry metadata needed to
scatter token predictions back onto the image plane.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Optional

import numpy as np

__all__ = ["PatchSequence"]


@dataclass
class PatchSequence:
    """A model-ready sequence of same-size patches with geometry metadata.

    Attributes
    ----------
    patches:
        (L, C, Pm, Pm) float array; padded slots are all-zero.
    ys, xs, sizes:
        (L,) original leaf geometry in pixels. Padded slots have ``sizes == 0``.
    valid:
        (L,) bool; False marks padding.
    image_size:
        Side length Z of the source image.
    patch_size:
        Model patch size Pm (every patch was projected to this size).
    n_real:
        Number of real (non-padded) tokens *before* any random drop.
    n_dropped:
        Tokens dropped to reach length L (0 when padding was applied instead).
    details:
        Optional (L,) per-token detail score — the quadtree's Eq. 6 region
        mass that decided not to split the leaf. Zero marks a provably flat
        patch (the sparsity fast path's short-circuit candidates); padded
        slots are zero. ``None`` when the producing path did not track it.
    """

    patches: np.ndarray
    ys: np.ndarray
    xs: np.ndarray
    sizes: np.ndarray
    valid: np.ndarray
    image_size: int
    patch_size: int
    n_real: int
    n_dropped: int = 0
    details: Optional[np.ndarray] = None

    def __post_init__(self) -> None:
        lengths = {len(self.patches), len(self.ys), len(self.xs),
                   len(self.sizes), len(self.valid)}
        if self.details is not None:
            lengths.add(len(self.details))
        if len(lengths) != 1:
            raise ValueError(f"inconsistent sequence field lengths: {lengths}")

    def __len__(self) -> int:
        return len(self.patches)

    @property
    def channels(self) -> int:
        return self.patches.shape[1]

    def tokens(self) -> np.ndarray:
        """Flatten to (L, C*Pm*Pm) — the linear-embedding input of a ViT."""
        length = len(self.patches)
        return self.patches.reshape(length, -1)

    def coords(self) -> np.ndarray:
        """Normalized geometry features (L, 3): center y/Z, center x/Z, log2 size.

        Padded slots are zeros. Used by the optional coordinate positional
        embedding (an extension over the paper's index embedding).
        """
        z = float(self.image_size)
        out = np.zeros((len(self), 3), dtype=np.float64)
        v = self.valid
        cy = self.ys[v] + self.sizes[v] / 2.0
        cx = self.xs[v] + self.sizes[v] / 2.0
        out[v, 0] = cy / z
        out[v, 1] = cx / z
        out[v, 2] = np.log2(self.sizes[v]) / max(np.log2(z), 1.0)
        return out

    def coverage_fraction(self) -> float:
        """Fraction of image area covered by retained (non-dropped) tokens."""
        area = float((self.sizes[self.valid].astype(np.int64) ** 2).sum())
        return area / float(self.image_size) ** 2

    def scatter_to_image(self, token_maps: np.ndarray,
                         fill: float = 0.0) -> np.ndarray:
        """Paint per-token spatial predictions back onto the image plane.

        Parameters
        ----------
        token_maps:
            (L, K, Pm, Pm) or (L, K) array. Spatial maps are upsampled
            (nearest) from Pm to each token's original leaf size; flat vectors
            are broadcast over the leaf footprint.
        fill:
            Value for pixels not covered by any retained token (dropped leaves).

        Returns
        -------
        (K, Z, Z) array.
        """
        tm = np.asarray(token_maps)
        if tm.ndim == 2:
            tm = np.broadcast_to(tm[:, :, None, None],
                                 tm.shape + (self.patch_size, self.patch_size))
        if tm.ndim != 4 or len(tm) != len(self):
            raise ValueError(f"token_maps shape {np.shape(token_maps)} does not "
                             f"match sequence of length {len(self)}")
        k = tm.shape[1]
        z = self.image_size
        out = np.full((k, z, z), fill, dtype=np.float64)
        pm = self.patch_size
        for i in np.flatnonzero(self.valid):
            s = int(self.sizes[i])
            y, x = int(self.ys[i]), int(self.xs[i])
            patch = tm[i]
            if s == pm:
                up = patch
            elif s > pm:
                factor = s // pm
                up = np.repeat(np.repeat(patch, factor, axis=1), factor, axis=2)
            else:  # leaf smaller than model patch: average-pool down
                factor = pm // s
                up = patch.reshape(k, s, factor, s, factor).mean(axis=(2, 4))
            out[:, y:y + s, x:x + s] = up
        return out

    def scatter_tokens_to_grid(self, features: np.ndarray,
                               grid_cell: Optional[int] = None) -> np.ndarray:
        """Scatter token feature vectors onto a regular grid (decoder input).

        Each token's (D,) feature is broadcast over its leaf footprint on a
        ``Z/grid_cell`` x ``Z/grid_cell`` grid. This converts the irregular
        adaptive layout into the regular spatial map a UNETR-style decoder
        expects, without touching the encoder.
        """
        f = np.asarray(features)
        if f.ndim != 2 or len(f) != len(self):
            raise ValueError("features must be (L, D) matching the sequence")
        cell = grid_cell or self.patch_size
        z = self.image_size
        if z % cell:
            raise ValueError(f"grid_cell {cell} must divide image size {z}")
        g = z // cell
        out = np.zeros((f.shape[1], g, g), dtype=np.float64)
        for i in np.flatnonzero(self.valid):
            s = int(self.sizes[i])
            y0, x0 = int(self.ys[i]) // cell, int(self.xs[i]) // cell
            span = max(s // cell, 1)
            out[:, y0:y0 + span, x0:x0 + span] = f[i][:, None, None]
        return out
