"""Table II: end-to-end training speedup of APF at matched segmentation quality.

Two complementary reproductions:

* **Measured** — real end-to-end training of APF-UNETR vs uniform-UNETR on
  this repository's substrate at laptop scale: seconds/image and
  time-to-convergence speedups, mirroring the two speedup columns.
* **Projected** — the paper's seven resolution rows (512^2 … 65,536^2, 1 to
  2,048 GPUs) evaluated with the calibrated α–β cost model using the paper's
  own sequence lengths. The encoder-FLOP ratio is an *upper bound* on the
  speedup (the paper's measured 2.3-7.6x include linear-cost pipeline stages);
  both bounds and the paper's numbers are reported side by side.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import List, Optional

import numpy as np

from ..perf import CostModel, TransformerConfig
from .common import (ExperimentScale, format_table, geomean, make_trainer,
                     make_unetr_task, make_vit_token_task, paip_splits)

__all__ = ["Table2Row", "Table2Result", "run_table2_measured",
           "run_table2_projection", "PAPER_TABLE2"]

#: Paper Table II: (resolution, GPUs, APF patch, APF seq len, UNETR patch,
#: UNETR seq len, paper speedup sec/img, paper speedup to-convergence).
PAPER_TABLE2 = [
    (512,   1,    4,  1024, 4,   16384, 7.48, 12.71),
    (1024,  8,    8,  1024, 8,   16384, 7.60, 12.92),
    (4096,  128,  16, 2116, 32,  16384, 5.77, 9.80),
    (8192,  256,  16, 2116, 64,  16384, 2.29, 3.89),
    (16384, 512,  32, 1024, 128, 16384, 2.90, 4.93),
    (32768, 1024, 32, 2116, 256, 16384, 3.79, 6.44),
    (65536, 2048, 32, 4096, 512, 16384, 2.30, 3.91),
]


@dataclass
class Table2Row:
    resolution: int
    gpus: int
    apf_seq: int
    unetr_seq: int
    paper_speedup: float
    projected_speedup: float


@dataclass
class Table2Result:
    # Measured section.
    sec_per_image_apf: float = 0.0
    sec_per_image_uniform: float = 0.0
    speedup_sec_per_image: float = 0.0
    speedup_convergence: float = 0.0
    dice_apf: float = 0.0
    dice_uniform: float = 0.0
    # Projected section.
    projection: List[Table2Row] = field(default_factory=list)

    @property
    def projected_geomean(self) -> float:
        return geomean([r.projected_speedup for r in self.projection]) \
            if self.projection else float("nan")

    def rows(self) -> str:
        head = format_table(
            ["quantity", "paper", "measured"],
            [
                ["speedup (sec/image)", "7.48x @512", f"{self.speedup_sec_per_image:.2f}x"],
                ["speedup (to convergence)", "12.71x @512",
                 f"{self.speedup_convergence:.2f}x"],
                ["APF dice", "77.88", f"{self.dice_apf:.2f}"],
                ["UNETR dice", "77.31", f"{self.dice_uniform:.2f}"],
            ])
        if not self.projection:
            return head
        proj = format_table(
            ["res", "GPUs", "APF seq", "UNETR seq", "paper x", "model x (upper bound)"],
            [[r.resolution, r.gpus, r.apf_seq, r.unetr_seq,
              f"{r.paper_speedup:.2f}", f"{r.projected_speedup:.1f}"]
             for r in self.projection])
        return head + "\n\n" + proj


def run_table2_measured(scale: Optional[ExperimentScale] = None,
                        patch: int = 4, split_value: float = 2.0,
                        carrier: str = "vit") -> Table2Result:
    """Train APF vs uniform patching to measure both speedup columns.

    ``carrier`` selects the model the patching feeds: ``"vit"`` (default)
    is encoder-bound — the regime the paper's speedups come from — while
    ``"unetr"`` adds the convolutional decoder, whose NumPy constant factors
    dominate at laptop scale and mask the attention savings (documented
    substitution; see EXPERIMENTS.md).
    """
    scale = scale or ExperimentScale(resolution=64, dim=32, depth=3, epochs=8)
    train, val, _ = paip_splits(scale)
    make = make_vit_token_task if carrier == "vit" else make_unetr_task

    task_apf = make(scale, patch, adaptive=True, split_value=split_value)
    tr_apf = make_trainer(task_apf, scale)
    hist_apf = tr_apf.fit(train, val, epochs=scale.epochs)

    task_uni = make(scale, patch, adaptive=False)
    tr_uni = make_trainer(task_uni, scale)
    hist_uni = tr_uni.fit(train, val, epochs=scale.epochs)

    spi_apf = float(np.mean(hist_apf.epoch_seconds)) / len(train)
    spi_uni = float(np.mean(hist_uni.epoch_seconds)) / len(train)
    # The paper's second column clocks both runs against the *same* dice
    # target (Table II uses the baseline's best); take the common achievable
    # score so plateaued baselines don't trivially "converge" to garbage.
    target = min(hist_apf.best_metric, hist_uni.best_metric) * 0.98
    t_conv_apf = hist_apf.time_to_target(target)
    t_conv_uni = hist_uni.time_to_target(target)
    return Table2Result(
        sec_per_image_apf=spi_apf,
        sec_per_image_uniform=spi_uni,
        speedup_sec_per_image=spi_uni / spi_apf,
        speedup_convergence=t_conv_uni / max(t_conv_apf, 1e-12),
        dice_apf=hist_apf.best_metric,
        dice_uniform=hist_uni.best_metric,
    )


def run_table2_projection(dim: int = 768, depth: int = 12,
                          cost_model: Optional[CostModel] = None) -> Table2Result:
    """Project all seven paper rows with the cost model (encoder upper bound)."""
    cm = cost_model or CostModel()
    out = Table2Result()
    for (res, gpus, p_apf, l_apf, p_uni, l_uni, s_img, s_conv) in PAPER_TABLE2:
        cfg_apf = TransformerConfig(l_apf, dim, depth)
        cfg_uni = TransformerConfig(l_uni, dim, depth)
        speedup = cm.speedup(cfg_uni, cfg_apf, world_base=gpus, world_new=gpus)
        out.projection.append(Table2Row(res, gpus, l_apf, l_uni, s_img, speedup))
    return out
