"""Crash-safe benchmark artifact I/O.

Benchmark runs persist their results (and regression baselines) as JSON
next to the bench files. A plain ``write_text`` can leave a truncated file
behind if the run is interrupted mid-write — which would then poison every
later regression gate that parses the baseline. :func:`write_json_atomic`
writes to a temporary file in the same directory and renames it into place:
``os.replace`` is atomic on POSIX and Windows, so readers only ever observe
the old or the new complete document.
"""

from __future__ import annotations

import json
import os
import tempfile
from pathlib import Path
from typing import Union

__all__ = ["write_json_atomic"]


def write_json_atomic(path: Union[str, Path], payload) -> None:
    """Serialize ``payload`` as JSON to ``path`` via write-temp-then-rename.

    The temporary file lives in the target's directory (renames across
    filesystems are not atomic) and is removed if serialization fails.
    """
    path = Path(path)
    text = json.dumps(payload, indent=2) + "\n"
    fd, tmp = tempfile.mkstemp(dir=path.parent, prefix=path.name + ".",
                               suffix=".tmp")
    try:
        with os.fdopen(fd, "w") as fh:
            fh.write(text)
        os.replace(tmp, path)
    except BaseException:
        try:
            os.unlink(tmp)
        except OSError:
            pass
        raise
