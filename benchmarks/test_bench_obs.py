"""Observability overhead benchmark + CI gate (``BENCH_obs.json``).

The tracing layer's contract is *zero cost when disabled, negligible when
enabled, invisible always*. This bench drives the deterministic fleet DES
(2 replicas, seeded Poisson arrivals, virtual service times) three ways —
untraced, disabled tracer, enabled tracer — and gates:

* **bit-identical reports** — the DES report (throughput, latency
  histograms, per-replica stats) is *equal* across all three variants:
  tracing never perturbs scheduling, virtual time, or results;
* **wall-clock overhead** — min-of-k interleaved timing: the disabled
  tracer costs ≤ 1% (+5 ms absolute slack) over untraced, the enabled
  tracer ≤ 5% (+10 ms);
* **structural invariants** — the exported Chrome trace validates
  (spans nest, async request intervals pair 1:1, ends carry outcomes),
  every accepted submission opens exactly one request interval and every
  interval closes, a cancelled request is marked ``cancelled``;
* **determinism** — two same-seed DES runs export byte-identical JSON;
* **kernel profiling** — a wall-mode profiled run joins real per-step
  seconds with cost-model FLOP/byte estimates (achieved GFLOP/s > 0).

The exported trace is written to ``benchmarks/trace_obs.json`` and
uploaded as a CI artifact next to ``BENCH_obs.json``.
"""

import json
import os
import platform
import time
from pathlib import Path

import numpy as np
import pytest

from repro.data import SyntheticPAIP
from repro.models import ViTSegmenter
from repro.obs import (Tracer, chrome_trace, critical_paths, flame_text,
                       validate_trace)
from repro.perf import write_json_atomic
from repro.pipeline import PatchPipeline
from repro.serve import (InferenceEngine, Predictor, ServiceModel, SimClock,
                         build_fleet, merge_traces, poisson_trace,
                         run_fleet_load)

RES = 64
N_IMAGES = 8
MODEL = dict(patch_size=4, channels=1, dim=16, depth=1, heads=2, max_len=256)
REPLICAS = 2
N_CLIENTS = 4
ARRIVALS_PER_CLIENT = 30
RATE_PER_CLIENT = 40.0
TIMING_ROUNDS = 5

# ISSUE 10 acceptance: disabled ≤ 1% + absolute slack, enabled ≤ 5%
DISABLED_REL, DISABLED_ABS = 1.01, 0.005
ENABLED_REL, ENABLED_ABS = 1.05, 0.010

HERE = Path(__file__).resolve().parent
RESULT_PATH = HERE / "BENCH_obs.json"
TRACE_PATH = HERE / "trace_obs.json"


def _make_model():
    return ViTSegmenter(rng=np.random.default_rng(0), **MODEL).eval()


def _factory(model):
    def make(rank):
        pipe = PatchPipeline(patch_size=4, split_value=8.0, channels=1,
                             cache_items=32)
        return Predictor(model, pipe, max_batch=4, bucket=16)
    return make


def _trace_in():
    return merge_traces(*[
        poisson_trace(RATE_PER_CLIENT, ARRIVALS_PER_CLIENT,
                      seed=9000 + c, n_items=N_IMAGES)
        for c in range(N_CLIENTS)])


def _run(model, imgs, tracer):
    """One full DES replay; returns (report, tracer, wall_seconds)."""
    clock = SimClock()
    if tracer == "enabled":
        tr = Tracer(clock=clock.now)
    elif tracer == "disabled":
        tr = Tracer(clock=clock.now, enabled=False)
    else:
        tr = None
    router = build_fleet(_factory(model), replicas=REPLICAS, clock=clock.now,
                         service_model=ServiceModel(), flush_deadline=0.02,
                         result_cache_items=16, tracer=tr)
    t0 = time.perf_counter()
    report = run_fleet_load(router, _trace_in(), imgs, clock)
    return report, tr, time.perf_counter() - t0


def _comparable(report):
    """The DES-deterministic slice of a fleet report (drop real seconds)."""
    out = dict(report)
    out.pop("real_seconds", None)
    return out


@pytest.mark.bench
def test_obs_overhead_and_invariants_gate():
    wall_t0 = time.perf_counter()
    ds = SyntheticPAIP(RES, N_IMAGES)
    imgs = [ds[i].image for i in range(N_IMAGES)]
    model = _make_model()

    # ------------------------------------------------------------------
    # Bit-identical reports + min-of-k interleaved overhead timing
    # ------------------------------------------------------------------
    walls = {"off": [], "disabled": [], "enabled": []}
    reports = {}
    for _ in range(TIMING_ROUNDS):
        for variant in ("off", "disabled", "enabled"):
            report, tr, wall = _run(model, imgs,
                                    None if variant == "off" else variant)
            walls[variant].append(wall)
            reports.setdefault(variant, _comparable(report))
    assert reports["disabled"] == reports["off"], \
        "a disabled tracer must leave the DES report bit-identical"
    assert reports["enabled"] == reports["off"], \
        "an enabled tracer must not perturb scheduling or results"
    t_off = min(walls["off"])
    t_dis = min(walls["disabled"])
    t_en = min(walls["enabled"])

    # ------------------------------------------------------------------
    # Structural invariants + same-seed byte determinism
    # ------------------------------------------------------------------
    blobs, tracers = [], []
    for _ in range(2):
        report, tr, _ = _run(model, imgs, "enabled")
        trace = chrome_trace(tr)
        blobs.append(json.dumps(trace, sort_keys=True,
                                separators=(",", ":")).encode())
        tracers.append(tr)
    assert blobs[0] == blobs[1], \
        "same-seed DES runs must export byte-identical traces"
    tr = tracers[0]
    trace = chrome_trace(tr)
    errors = validate_trace(trace)
    assert errors == [], f"trace structure violations: {errors[:5]}"
    begins = {e["id"] for e in trace["traceEvents"]
              if e["ph"] == "b" and e.get("cat") == "request"}
    ends = {e["id"] for e in trace["traceEvents"]
            if e["ph"] == "e" and e.get("cat") == "request"}
    accepted = report["offered"] - report["rejected_submissions"]
    assert len(begins) == accepted and begins == ends, \
        "every accepted submission opens one interval and closes it"
    paths = critical_paths(tr)
    batched = [p for p in paths.values() if "queue" in p]
    assert batched, "critical paths must decompose batched requests"
    TRACE_PATH.write_bytes(blobs[0])

    # cancelled requests are marked: submit one and cancel it
    clock = SimClock()
    cancel_tr = Tracer(clock=clock.now)
    engine = InferenceEngine(_factory(model)(0), clock=clock.now,
                             service_model=ServiceModel(),
                             flush_deadline=0.02, tracer=cancel_tr)
    assert engine.cancel(engine.submit(imgs[0]))
    cancel_ends = [e for e in cancel_tr.events
                   if e["ph"] == "e" and e.get("cat") == "request"]
    assert [e["args"]["outcome"] for e in cancel_ends] == ["cancelled"]

    # ------------------------------------------------------------------
    # Wall-mode kernel profiling: seconds joined with FLOP estimates
    # ------------------------------------------------------------------
    prof_tr = Tracer(profile_kernels=True)
    prof_pred = Predictor(model, PatchPipeline(patch_size=4, split_value=8.0,
                                               channels=1, cache_items=32),
                          max_batch=4, bucket=16, tracer=prof_tr)
    prof_pred.predict_image(imgs[0])
    kernels = prof_tr.kernels.summary()
    assert kernels and all(v["seconds"] > 0 for v in kernels.values())
    heavy = {k: v for k, v in kernels.items()
             if k in ("matmul", "linear", "linear_gelu", "sdpa")}
    assert heavy and all(v["gflop_per_s"] > 0 for v in heavy.values())

    # ------------------------------------------------------------------
    # Report + gates
    # ------------------------------------------------------------------
    result = {
        "environment": {"cpus": os.cpu_count() or 1,
                        "machine": platform.machine()},
        "workload": {"images": N_IMAGES, "resolution": RES,
                     "replicas": REPLICAS, "clients": N_CLIENTS,
                     "arrivals_per_client": ARRIVALS_PER_CLIENT,
                     "rate_per_client": RATE_PER_CLIENT,
                     "timing_rounds": TIMING_ROUNDS, **MODEL},
        "overhead": {
            "wall_untraced": round(t_off, 6),
            "wall_disabled": round(t_dis, 6),
            "wall_enabled": round(t_en, 6),
            "disabled_ratio": round(t_dis / t_off, 4),
            "enabled_ratio": round(t_en / t_off, 4),
            "reports_identical": True,
        },
        "trace": {
            "events": len(tr.events),
            "chrome_events": len(trace["traceEvents"]),
            "tracks": list(tr.tracks),
            "request_intervals": len(begins),
            "batched_requests": len(batched),
            "deterministic": True,
            "validation_errors": 0,
            "bytes": len(blobs[0]),
        },
        "kernels": {k: {"calls": v["calls"],
                        "gflops": round(v["gflops"], 4)}
                    for k, v in kernels.items()},
        "flame_lines": len(flame_text(tr).splitlines()),
        "real_seconds": round(time.perf_counter() - wall_t0, 3),
    }
    write_json_atomic(RESULT_PATH, result)
    print("\n" + json.dumps(result, indent=2))

    assert t_dis <= t_off * DISABLED_REL + DISABLED_ABS, (
        f"disabled tracing costs {t_dis:.4f}s vs untraced {t_off:.4f}s "
        f"(> {DISABLED_REL}x + {DISABLED_ABS}s)")
    assert t_en <= t_off * ENABLED_REL + ENABLED_ABS, (
        f"enabled tracing costs {t_en:.4f}s vs untraced {t_off:.4f}s "
        f"(> {ENABLED_REL}x + {ENABLED_ABS}s)")
