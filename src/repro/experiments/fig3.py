"""Figure 3: split value v → patch-size histogram and sequence-length
distribution.

Paper observation: halving v roughly halves the average patch size
([30.73, 20.21, 9.37] for v = [100, 50, 20]) while the average sequence
length grows approximately linearly ([127.5, 286.9, 677.7]) — *not*
quadratically as uniform refinement would.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, List, Sequence

import numpy as np

from ..data import generate_wsi
from ..patching import AdaptivePatcher
from .common import format_table

__all__ = ["Fig3Result", "run_fig3"]


@dataclass
class Fig3Result:
    split_values: List[float]
    avg_patch_size: List[float]
    avg_seq_length: List[float]
    patch_histograms: List[Dict[int, int]]
    seq_length_samples: List[List[int]]

    def linearity_r2(self) -> float:
        """R^2 of sequence length against 1/patch-size — the paper's
        empirically-linear-growth claim."""
        x = 1.0 / np.asarray(self.avg_patch_size)
        y = np.asarray(self.avg_seq_length)
        slope, intercept = np.polyfit(x, y, 1)
        pred = slope * x + intercept
        ss_res = ((y - pred) ** 2).sum()
        ss_tot = ((y - y.mean()) ** 2).sum()
        return float(1.0 - ss_res / ss_tot) if ss_tot > 0 else 1.0

    def rows(self) -> str:
        rows = [[f"v={v:g}", f"{p:.2f}", f"{l:.1f}"]
                for v, p, l in zip(self.split_values, self.avg_patch_size,
                                   self.avg_seq_length)]
        return format_table(["split value", "avg patch size", "avg seq length"],
                            rows)


def run_fig3(resolution: int = 128, n_images: int = 20,
             split_values: Sequence[float] = (20.0, 50.0, 100.0),
             patch_size: int = 4, seed: int = 0) -> Fig3Result:
    """Sweep the quadtree split value over synthetic PAIP images."""
    avg_sizes, avg_lens, hists, raw_lens = [], [], [], []
    images = [generate_wsi(resolution, seed=seed + i).image
              for i in range(n_images)]
    for v in split_values:
        patcher = AdaptivePatcher(patch_size=patch_size, split_value=v, seed=seed)
        sizes: List[float] = []
        lengths: List[int] = []
        hist: Dict[int, int] = {}
        for img in images:
            leaves = patcher.build_tree(img)
            lengths.append(leaves.sequence_length)
            sizes.append(leaves.mean_patch_size)
            for s, c in leaves.size_histogram().items():
                hist[s] = hist.get(s, 0) + c
        avg_sizes.append(float(np.mean(sizes)))
        avg_lens.append(float(np.mean(lengths)))
        hists.append(hist)
        raw_lens.append(lengths)
    return Fig3Result(list(split_values), avg_sizes, avg_lens, hists, raw_lens)
