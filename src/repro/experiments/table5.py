"""Table V: classification — vanilla ViT vs HIPT vs APF-ViT.

The paper divides PAIP into six organ classes and shows that APF-ViT with a
tiny patch size (2^2 at regions of detail) beats both a vanilla ViT limited
to enormous patches (4096^2 at 16K^2 resolution — i.e. very few tokens) and
the hierarchical HIPT (+7%). The mechanism: at a fixed token budget, APF
spends tokens where the detail is.

Laptop-scale mapping: resolution 64^2; "vanilla ViT with huge patches" =
uniform patch 32 (4 tokens); APF-ViT = adaptive patch 4 with the token budget
capped to the same order; HIPT-lite = the two-level hierarchical model.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import List, Optional

import numpy as np

from .. import nn
from ..data import NUM_ORGAN_CLASSES, generate_wsi
from ..models import HIPTLite, ViTClassifier
from ..patching import AdaptivePatcher, UniformPatcher
from ..train import (ImageClassificationTask, SequenceClassificationTask,
                     Trainer)
from .common import ExperimentScale, format_table

__all__ = ["Table5Row", "Table5Result", "run_table5"]


@dataclass
class Table5Row:
    model: str
    patch: str
    accuracy: float


@dataclass
class Table5Result:
    rows_: List[Table5Row] = field(default_factory=list)

    def acc(self, name: str) -> float:
        for r in self.rows_:
            if r.model == name:
                return r.accuracy
        raise KeyError(name)

    def rows(self) -> str:
        return format_table(
            ["model", "patch size", "top-1 %"],
            [[r.model, r.patch, f"{r.accuracy:.1f}"] for r in self.rows_])


def _class_balanced_samples(resolution: int, per_class: int, seed: int):
    out = []
    for organ in range(NUM_ORGAN_CLASSES):
        for i in range(per_class):
            out.append(generate_wsi(resolution, seed=seed + i * 131 + organ,
                                    organ=organ))
    return out


def run_table5(scale: Optional[ExperimentScale] = None,
               per_class_train: int = 12, per_class_test: int = 3,
               big_patch: int = 16, small_patch: int = 4,
               split_value: float = 2.0,
               weight_decay: float = 0.05) -> Table5Result:
    """Train the three Table V classifiers on organ-labelled synthetic PAIP.

    Classification from scratch needs far more optimization than the seg
    tasks (the organ signal lives in fine lesion morphology + stripe
    orientation): the default scale trains 45 epochs at lr 1e-2 with weight
    decay (see EXPERIMENTS.md for the full calibration story).
    """
    scale = scale or ExperimentScale(resolution=64, epochs=45, dim=32,
                                     depth=2, lr=1e-2, batch_size=6)
    z = scale.resolution
    train = _class_balanced_samples(z, per_class_train, seed=scale.seed)
    test = _class_balanced_samples(z, per_class_test, seed=scale.seed + 7919)
    result = Table5Result()
    rng = lambda: np.random.default_rng(scale.seed)
    # APF's token budget: enough headroom that the random-drop step rarely
    # fires (dropping real leaves was measured to stall classification).
    token_budget = 160 if z == 64 else (z // small_patch) ** 2 // 2

    def run(task, name, patch):
        trainer = Trainer(task, nn.AdamW(task.parameters(), lr=scale.lr,
                                         weight_decay=weight_decay),
                          batch_size=scale.batch_size, seed=scale.seed)
        trainer.fit(train, test, epochs=scale.epochs)
        result.rows_.append(Table5Row(name, patch, task.evaluate(test)))

    # Vanilla ViT, forced to huge patches (the 4096^2-at-16K^2 analogue):
    # each big patch is area-projected down to the model patch size, so the
    # fine texture that identifies the organ is destroyed — exactly the
    # memory-forced information loss Table V demonstrates.
    vit = ViTClassifier(patch_size=small_patch, channels=3, dim=scale.dim,
                        depth=scale.depth, heads=scale.heads,
                        max_len=(z // big_patch) ** 2,
                        num_classes=NUM_ORGAN_CLASSES, rng=rng())
    run(SequenceClassificationTask(
        vit, UniformPatcher(big_patch, project_to=small_patch), channels=3),
        "ViT", str(big_patch))

    # HIPT-lite: hierarchical two-level model.
    hipt = HIPTLite(image_size=z, channels=3, region_size=z // 4,
                    patch_size=small_patch, dim=scale.dim,
                    depth1=1, depth2=1, heads=scale.heads,
                    num_classes=NUM_ORGAN_CLASSES, rng=rng())
    run(ImageClassificationTask(hipt, channels=3),
        "HIPT", f"[{small_patch},{z // 4}]")

    # APF-ViT: small patches where detail lives, same token budget order.
    apf_vit = ViTClassifier(patch_size=small_patch, channels=3, dim=scale.dim,
                            depth=scale.depth, heads=scale.heads,
                            max_len=token_budget,
                            num_classes=NUM_ORGAN_CLASSES, rng=rng())
    run(SequenceClassificationTask(
        apf_vit, AdaptivePatcher(patch_size=small_patch,
                                 split_value=split_value,
                                 target_length=token_budget,
                                 seed=scale.seed), channels=3),
        "APF-ViT", str(small_patch))
    return result
