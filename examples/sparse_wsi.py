"""Token-sparsity fast path demo: per-tile sparsity stats on a WSI stream.

The quadtree already measured how much detail every patch carries (the
Eq. 6 edge mass that decided not to split it). ``repro.sparse`` stops
discarding that signal at predict time: provably flat tokens route around
the transformer to a digest-keyed logits table, and a calibrated cost
model picks, per sequence, the cheapest execution plan whose predicted
quality delta fits the budget.

This demo streams the same virtual slide twice — dense, then with the
short-circuit enabled — and prints, per macro-tile, what the chooser did
(plan, tokens skipped, cache traffic) plus the end-to-end speedup and the
dense-vs-sparse class-map agreement.

Run:  PYTHONPATH=src python examples/sparse_wsi.py
"""

import numpy as np

from repro.models import ViTSegmenter
from repro.pipeline import PatchPipeline
from repro.serve import Predictor
from repro.sparse import SparsityConfig
from repro.stream import (MemorySink, StreamingRunner, VirtualWSISource,
                          plan_scene)

RES, TILE = 2048, 512           # 16 macro-tiles; raise RES for real scale


def make_predictor(sparsity=None):
    # A serving-grade model so the transformer forward, not preprocessing,
    # dominates per-tile cost — the regime the fast path targets. (With a
    # small model the quadtree + tile synthesis dominate and Amdahl caps
    # any forward-side saving.)
    model = ViTSegmenter(patch_size=4, channels=1, dim=256, depth=8, heads=4,
                         max_len=1024, rng=np.random.default_rng(0)).eval()
    pipe = PatchPipeline(patch_size=4, split_value=16.0, channels=1,
                         cache_items=4)
    return Predictor(model, pipe, max_batch=4, bucket=32, sparsity=sparsity)


def main():
    source = VirtualWSISource(RES, seed=0, organ=2, tile=TILE)
    plan = plan_scene(source.shape, tile=TILE, order="hilbert",
                      max_len=1024)

    print(f"scene {RES}x{RES}, {len(plan.tiles)} macro-tiles of {TILE}²\n")

    # -- pass 1: dense reference ---------------------------------------
    dense_sink = MemorySink()
    dense = StreamingRunner(make_predictor()).run(source, plan, dense_sink)
    print(f"dense : {dense.seconds:6.2f}s "
          f"({RES * RES / dense.seconds / 1e6:.2f} Mpx/s)")

    # -- pass 2: short-circuit enabled ---------------------------------
    predictor = make_predictor(SparsityConfig(mode="auto"))
    rt = predictor.sparsity
    sparse_sink = MemorySink()
    runner = StreamingRunner(predictor)

    print("\nper-tile sparsity decisions:")
    header = f"{'tile':<22}{'plan':<14}{'tokens':>7}{'removed':>9}{'seeds':>8}"
    print(header + "\n" + "-" * len(header))
    t_total = 0.0
    import time
    for tile in plan.tiles:
        before = {k: v for k, v in rt.stats.items() if isinstance(v, int)}
        t0 = time.perf_counter()
        region = source.read_region(tile.origin, tile.size)
        node = predictor.scheduler.tile_node(region, "image")
        predictor.scheduler.drain(node.children)
        t_total += time.perf_counter() - t0
        sparse_sink.write(tile, predictor.scheduler.reduce_tile(node))
        d = rt.stats["last_decision"]
        plan_name = ("memo-replay" if rt.stats["memo_hits"]
                     > before.get("memo_hits", 0) else d["plan"])
        print(f"{tile.name:<22}{plan_name:<14}"
              f"{d['n_tokens']:>7}{d['n_background']:>9}"
              f"{rt.stats['table_seeds'] - before.get('table_seeds', 0):>8}")

    print(f"\nsparse: {t_total:6.2f}s "
          f"({RES * RES / t_total / 1e6:.2f} Mpx/s)  "
          f"-> {dense.seconds / t_total:.2f}x speedup")

    # -- quality: dense vs sparse class maps ---------------------------
    agree = np.mean([
        float((dense_sink.read(t) == sparse_sink.read(t)).mean())
        for t in plan.tiles])
    s = rt.stats
    print(f"\nclass-map agreement vs dense: {agree:.2%}")
    removed = s["tokens_skipped"] + s["tokens_merged"]
    print(f"tokens: {s['tokens_total']} total, {removed} removed from the "
          f"forward ({removed / max(s['tokens_total'], 1):.0%}: "
          f"{s['tokens_skipped']} table-served, {s['tokens_merged']} deduped)")
    print(f"background table: {s['table_seeds']} seeded, "
          f"{s['table_hits']} hits")
    print(f"plans: {s['plans']}")


if __name__ == "__main__":
    main()
