"""Swin-UNETR-lite: shifted-window transformer encoder + UNETR-style decoder.

Reduced-width reproduction of Swin UNETR (Tang et al., Table IV baseline).
Window attention computes dense self-attention *inside* non-overlapping
``w x w`` windows; alternating blocks shift the grid by ``w/2`` so
information crosses window boundaries. Per the lite simplification, shifted
windows skip the boundary attention mask (wrap-around tokens may attend to
each other); at the window sizes used here the effect is negligible and is
documented in DESIGN.md.

Note: the paper's Swin-UNETR row is also pre-trained on five external
datasets — we train from scratch, so Table IV reproduces the *from-scratch*
ordering (see EXPERIMENTS.md).
"""

from __future__ import annotations

from typing import Optional

import numpy as np

from .. import nn

__all__ = ["SwinUNETRLite"]


def _roll2d(x: nn.Tensor, shift: int, axes=(1, 2)) -> nn.Tensor:
    """torch.roll equivalent for (B, H, W, D) tensors via slice + concat."""
    if shift == 0:
        return x
    for ax in axes:
        n = x.shape[ax]
        s = shift % n
        if s == 0:
            continue
        idx_a = [slice(None)] * len(x.shape)
        idx_b = [slice(None)] * len(x.shape)
        idx_a[ax] = slice(n - s, n)
        idx_b[ax] = slice(0, n - s)
        x = nn.concat([x[tuple(idx_a)], x[tuple(idx_b)]], axis=ax)
    return x


class _SwinBlock(nn.Module):
    """One (optionally shifted) window-attention transformer block."""

    def __init__(self, dim: int, heads: int, window: int, shift: int,
                 rng: np.random.Generator, dtype=np.float32):
        super().__init__()
        self.window = window
        self.shift = shift
        self.norm1 = nn.LayerNorm(dim, dtype=dtype)
        self.attn = nn.MultiHeadAttention(dim, heads, rng=rng, dtype=dtype)
        self.norm2 = nn.LayerNorm(dim, dtype=dtype)
        self.mlp = nn.MLP(dim, dim * 2, rng=rng, dtype=dtype)

    def forward(self, x: nn.Tensor) -> nn.Tensor:
        """x: (B, H, W, D) token grid."""
        b, h, w, d = x.shape
        win = self.window
        if h % win or w % win:
            raise ValueError(f"grid ({h},{w}) not divisible by window {win}")
        shortcut = x
        x = self.norm1(x)
        if self.shift:
            x = _roll2d(x, -self.shift)
        # Partition into windows: (B*nW, win*win, D).
        nh, nw = h // win, w // win
        xw = (x.reshape(b, nh, win, nw, win, d)
              .transpose(0, 1, 3, 2, 4, 5)
              .reshape(b * nh * nw, win * win, d))
        xw = self.attn(xw)
        x = (xw.reshape(b, nh, nw, win, win, d)
             .transpose(0, 1, 3, 2, 4, 5)
             .reshape(b, h, w, d))
        if self.shift:
            x = _roll2d(x, self.shift)
        x = shortcut + x
        return x + self.mlp(self.norm2(x))


class _PatchMerging(nn.Module):
    """2x2 neighbourhood concat + linear reduction: (H,W,D) -> (H/2,W/2,2D)."""

    def __init__(self, dim: int, rng: np.random.Generator, dtype=np.float32):
        super().__init__()
        self.norm = nn.LayerNorm(4 * dim, dtype=dtype)
        self.reduce = nn.Linear(4 * dim, 2 * dim, bias=False, rng=rng, dtype=dtype)

    def forward(self, x: nn.Tensor) -> nn.Tensor:
        b, h, w, d = x.shape
        if h % 2 or w % 2:
            raise ValueError(f"grid ({h},{w}) must be even for merging")
        x = (x.reshape(b, h // 2, 2, w // 2, 2, d)
             .transpose(0, 1, 3, 2, 4, 5)
             .reshape(b, h // 2, w // 2, 4 * d))
        return self.reduce(self.norm(x))


class SwinUNETRLite(nn.Module):
    """Two-stage Swin encoder with a convolutional skip decoder."""

    def __init__(self, channels: int = 1, out_channels: int = 1,
                 patch_size: int = 4, dim: int = 32, heads: int = 4,
                 window: int = 4, rng: Optional[np.random.Generator] = None,
                 dtype=np.float32):
        super().__init__()
        rng = rng or np.random.default_rng(0)
        self.patch_size = patch_size
        self.embed = nn.Conv2d(channels, dim, kernel=patch_size,
                               stride=patch_size, rng=rng, dtype=dtype)
        self.stage1 = nn.ModuleList([
            _SwinBlock(dim, heads, window, 0, rng, dtype),
            _SwinBlock(dim, heads, window, window // 2, rng, dtype),
        ])
        self.merge = _PatchMerging(dim, rng, dtype)
        self.stage2 = nn.ModuleList([
            _SwinBlock(dim * 2, heads, window, 0, rng, dtype),
            _SwinBlock(dim * 2, heads, window, window // 2, rng, dtype),
        ])
        # Decoder: stage2 (Z/2p) -> up -> +stage1 (Z/p) -> up x log2(p) -> Z.
        self.up1 = nn.ConvTranspose2d(dim * 2, dim, kernel=2, stride=2,
                                      rng=rng, dtype=dtype)
        self.fuse1 = nn.Conv2d(dim * 2, dim, kernel=3, padding=1, rng=rng, dtype=dtype)
        self.gn1 = nn.GroupNorm(4 if dim % 4 == 0 else 1, dim, dtype=dtype)
        ups = []
        for _ in range(int(np.log2(patch_size))):
            ups.append(nn.ConvTranspose2d(dim, dim, kernel=2, stride=2,
                                          rng=rng, dtype=dtype))
        self.ups = nn.ModuleList(ups)
        self.stem = nn.Conv2d(channels, dim, kernel=3, padding=1, rng=rng, dtype=dtype)
        self.fuse0 = nn.Conv2d(dim * 2, dim, kernel=3, padding=1, rng=rng, dtype=dtype)
        self.gn0 = nn.GroupNorm(4 if dim % 4 == 0 else 1, dim, dtype=dtype)
        self.out_conv = nn.Conv2d(dim, out_channels, kernel=1, rng=rng, dtype=dtype)
        self.dtype = dtype

    def forward(self, images) -> nn.Tensor:
        """(B, C, Z, Z) -> (B, out_channels, Z, Z) logits."""
        x = images if isinstance(images, nn.Tensor) else nn.Tensor(
            np.asarray(images, dtype=self.dtype))
        g = self.embed(x)                              # (B, D, G, G)
        b, d, gh, gw = g.shape
        t = g.reshape(b, d, gh * gw).transpose(0, 2, 1).reshape(b, gh, gw, d)
        for blk in self.stage1:
            t = blk(t)
        s1 = t
        t = self.merge(t)
        for blk in self.stage2:
            t = blk(t)
        # Back to NCHW.
        f2 = t.transpose(0, 3, 1, 2)
        f1 = s1.transpose(0, 3, 1, 2)
        y = self.up1(f2)
        y = self.gn1(self.fuse1(nn.concat([y, f1], axis=1))).relu()
        for up in self.ups:
            y = up(y)
        stem = self.stem(x)
        y = self.gn0(self.fuse0(nn.concat([y, stem], axis=1))).relu()
        return self.out_conv(y)

    def predict_mask(self, image: np.ndarray) -> np.ndarray:
        with nn.no_grad():
            logits = self.forward(image[None])
        return 1.0 / (1.0 + np.exp(-logits.data[0]))
