"""Hypothesis property tests for the autograd engine.

Algebraic identities that must hold for arbitrary well-conditioned inputs:
values match NumPy references, gradients obey linearity/symmetry, softmax is
shift-invariant, layer norm is affine-invariant in the right ways.
"""

import numpy as np
from hypothesis import given, settings
from hypothesis import strategies as st

from repro import nn
from repro.nn import functional as F

settings.register_profile("props", max_examples=40, deadline=None)
settings.load_profile("props")


def arrays(shape_strategy=st.tuples(st.integers(1, 4), st.integers(1, 5))):
    return shape_strategy.flatmap(
        lambda shape: st.integers(0, 10 ** 6).map(
            lambda seed: np.random.default_rng(seed).normal(
                size=shape).astype(np.float64)))


class TestValueIdentities:
    @given(arrays())
    def test_forward_matches_numpy(self, a):
        t = nn.Tensor(a)
        np.testing.assert_allclose((t * 2 + 1).data, a * 2 + 1)
        np.testing.assert_allclose(t.exp().data, np.exp(a))
        np.testing.assert_allclose(t.tanh().data, np.tanh(a))
        np.testing.assert_allclose(t.sum(axis=1).data, a.sum(axis=1))

    @given(arrays())
    def test_sigmoid_symmetry(self, a):
        # sigmoid(-x) == 1 - sigmoid(x)
        t = nn.Tensor(a)
        np.testing.assert_allclose((-t).sigmoid().data,
                                   1.0 - t.sigmoid().data, atol=1e-12)

    @given(arrays())
    def test_softmax_shift_invariance(self, a):
        t = nn.Tensor(a)
        shifted = nn.Tensor(a + 100.0)
        np.testing.assert_allclose(F.softmax(t, axis=-1).data,
                                   F.softmax(shifted, axis=-1).data,
                                   atol=1e-9)

    @given(arrays())
    def test_softmax_rows_are_distributions(self, a):
        s = F.softmax(nn.Tensor(a), axis=-1).data
        assert (s >= 0).all()
        np.testing.assert_allclose(s.sum(axis=-1), 1.0, rtol=1e-9)

    @given(arrays())
    def test_log_softmax_consistent_with_softmax(self, a):
        t = nn.Tensor(a)
        np.testing.assert_allclose(F.log_softmax(t, axis=-1).data,
                                   np.log(F.softmax(t, axis=-1).data),
                                   atol=1e-9)

    @given(arrays())
    def test_relu_plus_negrelu_is_identity(self, a):
        t = nn.Tensor(a)
        np.testing.assert_allclose((t.relu() - (-t).relu()).data, a,
                                   atol=1e-12)


class TestGradientIdentities:
    @given(arrays())
    def test_grad_of_sum_is_ones(self, a):
        t = nn.Tensor(a, requires_grad=True)
        t.sum().backward()
        np.testing.assert_array_equal(t.grad, np.ones_like(a))

    @given(arrays())
    def test_grad_linearity(self, a):
        # d/dx sum(3x) == 3 * d/dx sum(x)
        t1 = nn.Tensor(a.copy(), requires_grad=True)
        (t1 * 3).sum().backward()
        np.testing.assert_allclose(t1.grad, 3.0)

    @given(arrays())
    def test_grad_of_product_rule(self, a):
        # y = x*x → dy/dx = 2x
        t = nn.Tensor(a, requires_grad=True)
        (t * t).sum().backward()
        np.testing.assert_allclose(t.grad, 2 * a, rtol=1e-12)

    @given(arrays())
    def test_backward_twice_via_fresh_graph(self, a):
        # Gradients accumulate across separate graphs.
        t = nn.Tensor(a, requires_grad=True)
        t.sum().backward()
        (t * 0 + t).sum().backward()
        np.testing.assert_allclose(t.grad, 2.0)

    @given(st.integers(0, 10 ** 6))
    def test_matmul_trace_symmetry(self, seed):
        # d/dA tr(A B) = B^T
        rng = np.random.default_rng(seed)
        a = nn.Tensor(rng.normal(size=(4, 4)), requires_grad=True)
        b = rng.normal(size=(4, 4))
        prod = a @ nn.Tensor(b)
        # trace = sum of diagonal
        tr = prod[np.arange(4), np.arange(4)].sum()
        tr.backward()
        np.testing.assert_allclose(a.grad, b.T, rtol=1e-10)


class TestLayerNormProperties:
    @given(st.integers(0, 10 ** 6), st.integers(2, 6), st.integers(4, 16))
    def test_output_standardized(self, seed, n, d):
        rng = np.random.default_rng(seed)
        x = nn.Tensor(rng.normal(3.0, 5.0, size=(n, d)))
        w = nn.Tensor(np.ones(d))
        b = nn.Tensor(np.zeros(d))
        y = F.layer_norm(x, w, b).data
        np.testing.assert_allclose(y.mean(axis=-1), 0.0, atol=1e-7)
        np.testing.assert_allclose(y.var(axis=-1), 1.0, atol=1e-2)

    @given(st.integers(0, 10 ** 6))
    def test_input_shift_invariance(self, seed):
        rng = np.random.default_rng(seed)
        x = rng.normal(size=(3, 8))
        w = nn.Tensor(np.ones(8))
        b = nn.Tensor(np.zeros(8))
        y1 = F.layer_norm(nn.Tensor(x), w, b).data
        y2 = F.layer_norm(nn.Tensor(x + 42.0), w, b).data
        np.testing.assert_allclose(y1, y2, atol=1e-7)


class TestLossProperties:
    @given(st.integers(0, 10 ** 6))
    def test_dice_loss_bounds(self, seed):
        rng = np.random.default_rng(seed)
        logits = nn.Tensor(rng.normal(size=20))
        target = (rng.random(20) > 0.5).astype(float)
        v = float(nn.dice_loss(logits, target).data)
        assert -1e-9 <= v <= 1.0 + 1e-9

    @given(st.integers(0, 10 ** 6))
    def test_bce_nonnegative(self, seed):
        rng = np.random.default_rng(seed)
        logits = nn.Tensor(rng.normal(size=20))
        target = (rng.random(20) > 0.5).astype(float)
        assert float(nn.bce_loss(logits, target).data) >= 0.0

    @given(st.integers(0, 10 ** 6))
    def test_cross_entropy_lower_bounded_by_zero(self, seed):
        rng = np.random.default_rng(seed)
        logits = nn.Tensor(rng.normal(size=(5, 4)))
        labels = rng.integers(0, 4, size=5)
        assert float(nn.cross_entropy(logits, labels).data) >= 0.0


class TestConvProperties:
    @given(st.integers(0, 10 ** 5))
    def test_conv_linearity_in_input(self, seed):
        rng = np.random.default_rng(seed)
        x = rng.normal(size=(1, 2, 6, 6))
        w = nn.Tensor(rng.normal(size=(3, 2, 3, 3)))
        y1 = F.conv2d(nn.Tensor(x), w, None, padding=1).data
        y2 = F.conv2d(nn.Tensor(2 * x), w, None, padding=1).data
        np.testing.assert_allclose(y2, 2 * y1, rtol=1e-10)

    @given(st.integers(0, 10 ** 5))
    def test_conv_of_zeros_is_bias(self, seed):
        rng = np.random.default_rng(seed)
        w = nn.Tensor(rng.normal(size=(3, 2, 3, 3)))
        b = nn.Tensor(rng.normal(size=3))
        y = F.conv2d(nn.Tensor(np.zeros((1, 2, 5, 5))), w, b, padding=1).data
        for c in range(3):
            np.testing.assert_allclose(y[0, c], b.data[c], atol=1e-12)
