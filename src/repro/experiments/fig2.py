"""Figure 2: qualitative segmentation comparison.

The paper shows predicted masks for TransUNet / UNETR / APF-UNETR at rising
resolutions. Offline we render predictions as PGM images plus compact ASCII
previews; the per-model dice accompanies each panel exactly like the figure
captions.
"""

from __future__ import annotations

import os
from dataclasses import dataclass, field
from typing import Dict, List, Optional

import numpy as np

from ..metrics import dice_score
from ..models import TransUNetLite
from ..train import ImageSegmentationTask
from .common import (ExperimentScale, make_trainer, make_unetr_task,
                     paip_splits)

__all__ = ["Fig2Result", "run_fig2", "ascii_mask", "write_pgm"]


def ascii_mask(mask: np.ndarray, width: int = 32) -> str:
    """Downsample a binary mask to an ASCII block preview."""
    m = np.asarray(mask, dtype=float)
    z = m.shape[0]
    step = max(z // width, 1)
    small = m[::step, ::step]
    chars = np.where(small > 0.5, "#", ".")
    return "\n".join("".join(row) for row in chars)


def write_pgm(path: str, image: np.ndarray) -> None:
    """Write a grayscale image ([0,1] floats) as a binary PGM file."""
    img = np.clip(np.asarray(image, dtype=float), 0, 1)
    data = (img * 255).astype(np.uint8)
    h, w = data.shape
    with open(path, "wb") as f:
        f.write(f"P5\n{w} {h}\n255\n".encode())
        f.write(data.tobytes())


@dataclass
class Fig2Result:
    dice: Dict[str, float] = field(default_factory=dict)
    previews: Dict[str, str] = field(default_factory=dict)
    artifact_paths: List[str] = field(default_factory=list)

    def rows(self) -> str:
        lines = []
        for name, d in self.dice.items():
            lines.append(f"== {name} (dice {d:.2f}%) ==")
            lines.append(self.previews[name])
        return "\n".join(lines)


def run_fig2(scale: Optional[ExperimentScale] = None,
             artifact_dir: Optional[str] = None) -> Fig2Result:
    """Train the Fig. 2 model panel and render predictions for one test image."""
    scale = scale or ExperimentScale(epochs=3)
    train, val, test = paip_splits(scale)
    sample = (test or val)[0]
    out = Fig2Result()

    runs = {}
    task = ImageSegmentationTask(
        TransUNetLite(channels=1, stem_ch=8, dim=scale.dim, depth=1,
                      heads=scale.heads,
                      max_hw=max((scale.resolution // 4) ** 2, 16),
                      rng=np.random.default_rng(scale.seed)), channels=1)
    runs["TransUNet"] = task
    runs["UNETR"] = make_unetr_task(scale, 4, adaptive=False)
    runs["APF-UNETR"] = make_unetr_task(scale, 2, adaptive=True)

    out.previews["GroundTruth"] = ascii_mask(sample.mask)
    out.dice["GroundTruth"] = 100.0
    for name, task in runs.items():
        make_trainer(task, scale).fit(train, val, epochs=scale.epochs)
        probs = task.predict_probs(sample)[0]
        out.dice[name] = dice_score(probs, sample.mask)
        out.previews[name] = ascii_mask(probs > 0.5)
        if artifact_dir:
            os.makedirs(artifact_dir, exist_ok=True)
            path = os.path.join(artifact_dir, f"fig2_{name.lower()}.pgm")
            write_pgm(path, probs)
            out.artifact_paths.append(path)
    return out
