"""Out-of-core streaming benchmark + CI regression gate (ISSUE 5).

Proves the headline claim of the streaming subsystem on real hardware: a
**16K² virtual whole-slide image** (6.4 GB materialized — more than this
CI class has) segments end-to-end through the compiled serving stack with

* peak traced memory bounded by a **few macro-tile working sets** (the
  planner's per-tile estimate; gate at ``MEM_BUDGET_TILES`` multiples) and
  a tiny fraction of the scene,
* streamed class maps **bit-identical** to ``Predictor.predict_image``
  run on the same macro-tiles with a fresh predictor (sampled tiles),
* a **killed-and-resumed** run producing byte-identical artifacts to an
  uninterrupted one (4K² scene so the double run stays cheap),
* CT **Z-slab** streaming matching the per-slab slice protocol exactly.

Memory and identity gates are deterministic (tracemalloc counts bytes,
not time). The throughput floor is the usual >2x-regression rule against
the committed baseline, with slack for host drift.
"""

import json
import os
import platform
import time
from pathlib import Path

import numpy as np
import pytest

from repro.data import generate_ct_volume
from repro.metrics import dice_score
from repro.models import ViTSegmenter
from repro.perf import peak_rss_bytes, write_json_atomic
from repro.pipeline import PatchPipeline
from repro.serve import InferenceEngine, Predictor
from repro.serve.predictor import class_map
from repro.sparse import SparsityConfig
from repro.stream import (ArraySource, MemorySink, NpyDirectorySink,
                          StreamingRunner, VirtualWSISource, plan_scene,
                          plan_volume)

RES = 16384                     # headline scene: 16K² (>= the issue's floor)
TILE = 1024
RESUME_RES = 4096
SPLIT = 16.0
MODEL = dict(patch_size=4, channels=1, dim=32, depth=2, heads=4, max_len=1024)
BUCKET = 256
MAX_BATCH = 4

#: Peak traced memory must stay under this many planner working sets —
#: "a few macro-tiles", asserted (measured ~2.0x: one tile in flight plus
#: compiled-plan buffer pools and preprocessing transients).
MEM_BUDGET_TILES = 3.0
#: ... and under this fraction of materializing the scene (measured ~3.4%).
MEM_SCENE_FRACTION = 0.06
#: Whole-process peak RSS ceiling, as a scene fraction (measured ~5%):
#: coarser than the traced gate (includes interpreter + libraries +
#: allocator slack) but asserts the out-of-core claim at the OS level.
MEM_SCENE_FRACTION_RSS = 0.12

N_IDENTITY_TILES = 10           # sampled bit-identity checks (deterministic)

# -- sparsity fast path (ISSUE 8): 16K² WSI, dense vs short-circuit -------
# A serving-grade model, where the transformer forward (not Canny
# preprocessing) dominates the per-tile cost — the regime the fast path
# targets. The gate is the *ratio* of the two runs on this host, so it is
# host-speed-independent.
SPARSE_MODEL = dict(patch_size=4, channels=1, dim=256, depth=12, heads=4,
                    max_len=1024)
SPARSE_BUCKET = 64
SPARSITY_SPEEDUP_FLOOR = 1.3     #: ISSUE 8 acceptance: >= 1.3x pixels/s
N_SPARSITY_TILES = 10            #: sampled agreement / Dice checks
SPARSITY_AGREEMENT_FLOOR = 0.90  #: dense-vs-sparse class-map agreement
SPARSITY_DICE_MARGIN = 2.0       #: |Dice(dense) - Dice(sparse)| vs truth, pp

VOL_SLICES, VOL_RES, VOL_SLAB = 24, 256, 8

HERE = Path(__file__).resolve().parent
RESULT_PATH = HERE / "BENCH_streaming.json"
BASELINE_PATH = HERE / "BENCH_streaming_baseline.json"


def _make_predictor():
    model = ViTSegmenter(rng=np.random.default_rng(0), **MODEL).eval()
    pipe = PatchPipeline(patch_size=4, split_value=SPLIT, channels=1,
                         cache_items=2)
    return Predictor(model, pipe, max_batch=MAX_BATCH, bucket=BUCKET)


@pytest.mark.bench
def test_streaming_wsi_and_regression_gate(tmp_path):
    wall_t0 = time.perf_counter()
    result = {"environment": {"cpus": os.cpu_count() or 1,
                              "machine": platform.machine()},
              "workload": {"resolution": RES, "tile": TILE, "split": SPLIT,
                           "bucket": BUCKET, "max_batch": MAX_BATCH, **MODEL}}

    # ------------------------------------------------------------------
    # Headline: 16K² virtual WSI, serial predictor mode, memory-tracked
    # ------------------------------------------------------------------
    source = VirtualWSISource(RES, seed=0, organ=2, tile=TILE)
    plan = plan_scene(source.shape, tile=TILE, max_len=MODEL["max_len"])
    sink = NpyDirectorySink(tmp_path / "wsi", dtype=np.uint8)
    runner = StreamingRunner(_make_predictor(), track_memory=True)
    report = runner.run(source, plan, sink)

    ws = plan.working_set_bytes()
    px = RES * RES
    result["plan"] = plan.describe()
    result["headline"] = {
        **report.to_dict(),
        "tile_seconds": round(report.seconds / max(report.tiles_run, 1), 4),
        "pixels_per_second": round(px / report.seconds, 1),
        "peak_over_working_set": round(report.peak_traced_bytes / ws, 3),
        "peak_over_scene": round(report.peak_traced_bytes / plan.scene_bytes, 5),
        "peak_rss_bytes": peak_rss_bytes(),
    }

    # ------------------------------------------------------------------
    # Bit-identity: streamed tiles == fresh per-tile predict_image
    # ------------------------------------------------------------------
    reference = _make_predictor()
    step = max(len(plan.tiles) // N_IDENTITY_TILES, 1)
    checked = 0
    for tile in plan.tiles[::step][:N_IDENTITY_TILES]:
        region = source.read_region(tile.origin, tile.size)
        expected = class_map(reference.predict_image(region))
        np.testing.assert_array_equal(sink.read(tile), expected,
                                      err_msg=f"streamed {tile.name} diverged")
        checked += 1
    result["bit_identity"] = {"tiles_checked": checked,
                              "tiles_total": len(plan.tiles)}

    # ------------------------------------------------------------------
    # Checkpoint/resume: killed run resumes byte-identical (4K² scene)
    # ------------------------------------------------------------------
    rsource = VirtualWSISource(RESUME_RES, seed=1, organ=4, tile=TILE)
    rplan = plan_scene(rsource.shape, tile=TILE, max_len=MODEL["max_len"])
    straight = NpyDirectorySink(tmp_path / "straight", dtype=np.uint8)
    StreamingRunner(_make_predictor()).run(rsource, rplan, straight)

    class _Killed(Exception):
        pass

    class _DieAfter:
        def __init__(self, inner, n):
            self.inner, self.left = inner, n

        def completed(self, p):
            return self.inner.completed(p)

        def write(self, t, arr):
            if self.left == 0:
                raise _Killed
            self.inner.write(t, arr)
            self.left -= 1

    resumed = NpyDirectorySink(tmp_path / "resumed", dtype=np.uint8)
    kill_after = len(rplan.tiles) // 2
    with pytest.raises(_Killed):
        StreamingRunner(_make_predictor()).run(
            rsource, rplan, _DieAfter(resumed, kill_after))
    resume_report = StreamingRunner(_make_predictor()).run(rsource, rplan,
                                                           resumed)
    result["resume"] = {
        "tiles": len(rplan.tiles), "killed_after": kill_after,
        "resumed_skipped": resume_report.tiles_skipped,
        "resumed_ran": resume_report.tiles_run,
        "digest_straight": straight.digest(rplan),
        "digest_resumed": resumed.digest(rplan),
    }

    # ------------------------------------------------------------------
    # CT Z-slabs through the engine (overlap + backpressure observability)
    # ------------------------------------------------------------------
    vol = generate_ct_volume(VOL_RES, VOL_SLICES, seed=0).volume
    vplan = plan_volume(vol.shape, slab=VOL_SLAB, max_len=MODEL["max_len"])
    vref = _make_predictor()
    expected_slabs = {
        t.name: np.stack(vref.predict_class_slices(
            [vol[i] for i in range(t.origin[0], t.origin[0] + t.size[0])]))
        for t in vplan.tiles}
    engine = InferenceEngine(_make_predictor(), max_queue=2 * VOL_SLAB,
                             result_cache_items=16)
    vsink = MemorySink()
    vt0 = time.perf_counter()
    vreport = StreamingRunner(engine=engine, max_inflight=2).run(
        ArraySource(vol, kind="volume"), vplan, vsink)
    v_seconds = time.perf_counter() - vt0
    for t in vplan.tiles:
        np.testing.assert_array_equal(vsink.read(t), expected_slabs[t.name],
                                      err_msg=f"slab {t.name} diverged")
    stats = engine.stats()
    result["volume_slabs"] = {
        **vreport.to_dict(),
        "slices": VOL_SLICES, "slab": VOL_SLAB, "resolution": VOL_RES,
        "slices_per_second": round(VOL_SLICES / v_seconds, 2),
        "peak_queue_depth": stats["queue"]["peak_depth"],
        "result_cache_hit_rate": round(stats["result_cache"]["hit_rate"], 4),
    }

    # ------------------------------------------------------------------
    # Sparsity fast path: same 16K² WSI, serving-grade model, dense vs
    # short-circuit (mode="auto", exact: only zero-detail tokens skip)
    # ------------------------------------------------------------------
    def _sparse_predictor(sparsity=None):
        model = ViTSegmenter(rng=np.random.default_rng(0),
                             **SPARSE_MODEL).eval()
        pipe = PatchPipeline(patch_size=4, split_value=SPLIT, channels=1,
                             cache_items=2)
        return Predictor(model, pipe, max_batch=MAX_BATCH,
                         bucket=SPARSE_BUCKET, sparsity=sparsity)

    splan = plan_scene(source.shape, tile=TILE, order="hilbert",
                       max_len=SPARSE_MODEL["max_len"])
    dense_sink = NpyDirectorySink(tmp_path / "sp_dense", dtype=np.uint8)
    dense_rep = StreamingRunner(_sparse_predictor()).run(
        source, splan, dense_sink)
    sparse_sink = NpyDirectorySink(tmp_path / "sp_sparse", dtype=np.uint8)
    sparse_rep = StreamingRunner(
        _sparse_predictor(SparsityConfig(mode="auto"))).run(
        source, splan, sparse_sink)

    speedup = dense_rep.seconds / sparse_rep.seconds
    agreements, dice_deltas = [], []
    sstep = max(len(splan.tiles) // N_SPARSITY_TILES, 1)
    for tile in splan.tiles[::sstep][:N_SPARSITY_TILES]:
        d, s = dense_sink.read(tile), sparse_sink.read(tile)
        agreements.append(float((d == s).mean()))
        mask = source.read_mask_region(tile.origin, tile.size) >= 0.5
        dice_deltas.append(abs(dice_score(d > 0, mask, threshold=None)
                               - dice_score(s > 0, mask, threshold=None)))
    result["sparsity"] = {
        "model": SPARSE_MODEL, "bucket": SPARSE_BUCKET,
        "dense_seconds": round(dense_rep.seconds, 3),
        "sparse_seconds": round(sparse_rep.seconds, 3),
        "dense_pixels_per_second": round(px / dense_rep.seconds, 1),
        "sparse_pixels_per_second": round(px / sparse_rep.seconds, 1),
        "speedup": round(speedup, 3),
        "min_agreement": round(min(agreements), 4),
        "max_dice_delta": round(max(dice_deltas), 4),
        "counters": sparse_rep.sparsity,
    }

    result["real_seconds"] = round(time.perf_counter() - wall_t0, 3)
    write_json_atomic(RESULT_PATH, result)
    print("\n" + json.dumps(result, indent=2))

    # -- acceptance gates (ISSUE 5) ------------------------------------
    head = result["headline"]
    assert head["tiles_run"] == len(plan.tiles), "headline scene incomplete"
    assert head["peak_traced_bytes"] <= MEM_BUDGET_TILES * ws, (
        f"peak memory {head['peak_traced_bytes'] / 1e6:.0f} MB exceeds "
        f"{MEM_BUDGET_TILES}x the {ws / 1e6:.0f} MB macro-tile working set")
    assert head["peak_traced_bytes"] <= MEM_SCENE_FRACTION * plan.scene_bytes, (
        f"peak memory is {head['peak_over_scene']:.1%} of the scene — "
        "not meaningfully out-of-core")
    if head["peak_rss_bytes"] is not None:
        assert head["peak_rss_bytes"] <= MEM_SCENE_FRACTION_RSS * \
            plan.scene_bytes, (
            f"whole-process peak RSS {head['peak_rss_bytes'] / 1e6:.0f} MB "
            f"exceeds {MEM_SCENE_FRACTION_RSS:.0%} of the scene")
    assert result["resume"]["digest_resumed"] == \
        result["resume"]["digest_straight"], \
        "killed-and-resumed output differs from the uninterrupted run"
    assert result["resume"]["resumed_skipped"] == kill_after
    assert result["volume_slabs"]["peak_queue_depth"] > 0

    # -- sparsity gates (ISSUE 8) --------------------------------------
    sp = result["sparsity"]
    assert sp["speedup"] >= SPARSITY_SPEEDUP_FLOOR, (
        f"short-circuit speedup {sp['speedup']}x on the 16K² WSI is below "
        f"the {SPARSITY_SPEEDUP_FLOOR}x acceptance floor")
    assert sp["counters"]["plans_shortcircuit"] > 0, \
        "the chooser never picked short-circuit on the WSI workload"
    assert sp["counters"]["tokens_skipped"] > 0
    assert sp["min_agreement"] >= SPARSITY_AGREEMENT_FLOOR, (
        f"dense/sparse class maps agree on only {sp['min_agreement']:.1%} "
        "of a sampled tile")
    assert sp["max_dice_delta"] <= SPARSITY_DICE_MARGIN, (
        f"sparse Dice drifts {sp['max_dice_delta']} from dense vs truth")

    # -- regression gate vs committed baseline (>2x slowdown fails) ----
    if BASELINE_PATH.exists():
        baseline = json.loads(BASELINE_PATH.read_text())
        floor = baseline["headline"]["pixels_per_second"] / 2.0
        assert head["pixels_per_second"] >= floor, (
            f"streaming throughput regressed >2x: {head['pixels_per_second']} "
            f"px/s vs baseline {baseline['headline']['pixels_per_second']}")
        mem_ceiling = baseline["headline"]["peak_traced_bytes"] * 2.0
        assert head["peak_traced_bytes"] <= mem_ceiling, (
            f"peak memory regressed >2x: {head['peak_traced_bytes']} vs "
            f"baseline {baseline['headline']['peak_traced_bytes']}")
