"""Fig. 1 regeneration: APF sequence reduction on pathology-like images.

Paper: 512^2 at patch 4 → 4,096 uniform vs ~424 adaptive patches (~9.6x);
attention compute/memory shrinks by roughly the square (~100x).
"""


def test_fig1_sequence_reduction(once):
    from repro.experiments import run_fig1

    r = once(run_fig1, resolution=128, patch_size=4, n_images=5)
    print("\n" + r.rows())
    # Shape assertions: order-of-magnitude agreement with the paper.
    assert r.uniform_patches == 1024
    assert 4.0 < r.sequence_reduction < 40.0
    assert r.attention_reduction > 16.0
    assert r.preprocess_seconds_mean < 1.0
