"""Cross-front-end bit-identity matrix (ISSUE 7 acceptance).

Identical seeded 2-D and 3-D inputs go through all four front doors —
:class:`Predictor` (synchronous drain), :class:`InferenceEngine` drain
(pump), :class:`FleetRouter` drain (N pumps), and the
:class:`StreamingRunner` (bounded macro-tile feed) — and must produce
digest-identical int64 class maps. All four are thin adapters over the
one :class:`~repro.serve.scheduler.WorkGraphScheduler`, so there is no
second implementation of bucketing, micro-batch formation, plan-cache
keying, or stitch scatter left to drift.
"""

import hashlib

import numpy as np

from repro.data import SyntheticPAIP, generate_ct_volume
from repro.models.vit import ViTSegmenter
from repro.pipeline import PatchPipeline
from repro.serve import FleetRouter, InferenceEngine, Predictor, class_map
from repro.stream import (ArraySource, MemorySink, StreamingRunner,
                          plan_scene, plan_volume)

RES = 64
N_IMAGES = 6


def _digest(arr: np.ndarray) -> str:
    a = np.ascontiguousarray(arr)
    return hashlib.blake2b(a.tobytes(), digest_size=16).hexdigest()


def _model():
    return ViTSegmenter(patch_size=4, channels=1, dim=16, depth=1, heads=2,
                        max_len=256, rng=np.random.default_rng(1)).eval()


def _predictor(model):
    pipe = PatchPipeline(patch_size=4, split_value=8.0, channels=1,
                         cache_items=32)
    return Predictor(model, pipe, max_batch=3, bucket=16)


def _engine(model, **kw):
    # result cache off: every request must ride the full scheduler path
    args = dict(result_cache_items=0, max_queue=64)
    args.update(kw)
    return InferenceEngine(_predictor(model), **args)


def _images(n=N_IMAGES):
    ds = SyntheticPAIP(RES, n)
    return [ds[i].image for i in range(n)]


def _volumes():
    return [generate_ct_volume(32, 5, seed=s).volume for s in (1, 2)]


# -- the four front doors, 2-D --------------------------------------------

def via_predictor(model, images):
    return [class_map(p) for p in _predictor(model).predict_batch(images)]


def via_engine_drain(model, images):
    eng = _engine(model)
    futs = [eng.submit(im) for im in images]
    eng.drain()
    return [class_map(f.result()) for f in futs]


def via_router_drain(model, images):
    router = FleetRouter([_engine(model) for _ in range(3)])
    futs = [router.submit(im) for im in images]
    router.drain_all()
    return [class_map(f.result()) for f in futs]


def via_streaming(model, images):
    runner = StreamingRunner(_predictor(model))
    out = []
    for im in images:
        plan = plan_scene(im.shape, tile=RES, max_len=256)
        sink = MemorySink()
        runner.run(ArraySource(im), plan, sink)
        out.append(sink.assemble(plan))
    return out


FRONT_ENDS_2D = {
    "predictor": via_predictor,
    "engine_drain": via_engine_drain,
    "router_drain": via_router_drain,
    "streaming": via_streaming,
}


# -- the four front doors, 3-D --------------------------------------------

def via_predictor_vol(model, vols):
    p = _predictor(model)
    return [p.predict_volume(v) for v in vols]


def via_engine_drain_vol(model, vols):
    eng = _engine(model)
    futs = [eng.submit_volume(v) for v in vols]
    eng.drain()
    return [f.result() for f in futs]


def via_router_drain_vol(model, vols):
    router = FleetRouter([_engine(model) for _ in range(3)])
    futs = [router.submit_volume(v) for v in vols]
    router.drain_all()
    return [f.result() for f in futs]


def via_streaming_vol(model, vols):
    runner = StreamingRunner(_predictor(model))
    out = []
    for v in vols:
        plan = plan_volume(v.shape, slab=2, max_len=256)
        sink = MemorySink()
        runner.run(ArraySource(v), plan, sink)
        out.append(sink.assemble(plan))
    return out


FRONT_ENDS_3D = {
    "predictor": via_predictor_vol,
    "engine_drain": via_engine_drain_vol,
    "router_drain": via_router_drain_vol,
    "streaming": via_streaming_vol,
}


class TestFrontEndMatrix:
    def test_2d_digest_matrix(self):
        model = _model()
        images = _images()
        table = {name: [_digest(m) for m in fn(model, images)]
                 for name, fn in FRONT_ENDS_2D.items()}
        ref = table["predictor"]
        assert len(set(ref)) > 1          # the seeded inputs genuinely differ
        for name, digests in table.items():
            assert digests == ref, f"{name} diverged from predictor"

    def test_3d_digest_matrix(self):
        model = _model()
        vols = _volumes()
        table = {name: [_digest(m) for m in fn(model, vols)]
                 for name, fn in FRONT_ENDS_3D.items()}
        ref = table["predictor"]
        assert len(set(ref)) == len(vols)
        for name, digests in table.items():
            assert digests == ref, f"{name} diverged from predictor"


class TestPlanCacheUnification:
    """Satellite: same inputs -> same micro-batch signatures everywhere,
    so the per-signature plan cache is shared, never split."""

    def test_predict_batch_and_engine_flush_share_signatures(self):
        model = _model()
        images = _images()
        p1 = _predictor(model)
        p1.predict_batch(images)
        eng = _engine(model)
        for im in images:
            eng.submit(im)
        eng.drain()
        assert p1._plans
        assert set(p1._plans) == set(eng.predictor._plans)

    def test_engine_rides_the_predictor_scheduler(self):
        eng = _engine(_model())
        assert eng.scheduler is eng.predictor.scheduler
        assert eng.predictor._plans is eng.scheduler._plans
