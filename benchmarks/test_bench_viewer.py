"""Interactive viewer benchmark + CI regression gate (simulated clock).

Drives the pyramid tile service (`repro.pyramid`) with seeded pan/zoom
session traces over a 16K² virtual WSI, through a DES-configured engine
(and a 2-replica fleet for the fault scenario). Real model executions,
virtual timeline — bit-exact numbers across runs and hosts.

Scenarios, all written to ``BENCH_viewer.json`` (atomic) and gated
against the committed ``BENCH_viewer_baseline.json``:

* **priority vs fifo** — the same 8-session trace served under
  viewport-priority scheduling (center-out dispatch + stale-viewport
  cancellation + hilbert-ordered prefetch) and under the row-major FIFO
  control. Gate: p99 time-to-first-tile strictly better under priority,
  and no session's *final* viewport ever starves (abandoned mid-pan
  viewports may — that is stale cancellation working as intended).
* **shared cache** — the 8 overlapping sessions vs a single session on
  the same event budget. Sharing = digest-cache hits + in-flight joins
  per visible-tile lookup; the multi-session rate must not lose.
* **identity** — every tile the service cached during the priority run
  is digest-checked bit-identical to ``Predictor.predict_image`` on the
  same pixels (the engine runs ``max_batch=1``, so each tile executes
  the same (1, L) plan signature as the direct call).
* **fleet kill-mid-pan** — 2 replicas, fail-stop one mid-trace while
  cancellations are in flight. Gates: failed=0, leaked=0, nothing
  outstanding (the ISSUE 9 cleanliness acceptance).
* **locality** — Morton-vs-Hilbert mean successive tile distance on the
  viewer's working grid (the delta the hilbert prefetch ordering buys).
"""

import json
import os
import platform
import time
from dataclasses import asdict
from pathlib import Path

import numpy as np
import pytest

from repro.models import ViTSegmenter
from repro.perf import write_json_atomic
from repro.pipeline import PatchPipeline
from repro.pyramid import PyramidService, TilePyramid, run_viewer_load, \
    viewer_trace
from repro.quadtree.hilbert import hilbert_sort_order
from repro.quadtree.morton import morton_sort_order
from repro.serve import (InferenceEngine, Predictor, ReplicaKill,
                         ServiceModel, SimClock, build_fleet)
from repro.stream.source import VirtualWSISource

WSI_RES = 16384
TILE = 256
MAX_LEVEL = 3
MODEL = dict(patch_size=4, channels=1, dim=32, depth=2, heads=4, max_len=512)
SPLIT = 8.0
BUCKET = 32
DEADLINE = 0.02
QUEUE = 64

SESSIONS = 8
EVENTS_PER_SESSION = 6
VIEWPORT = (512, 512)
THINK_MEAN = 0.08
SEED = 23
PREFETCH = 4
CACHE_ITEMS = 512

HERE = Path(__file__).resolve().parent
RESULT_PATH = HERE / "BENCH_viewer.json"
BASELINE_PATH = HERE / "BENCH_viewer_baseline.json"


def _make_model():
    return ViTSegmenter(rng=np.random.default_rng(0), **MODEL).eval()


def _predictor(model):
    pipe = PatchPipeline(patch_size=4, split_value=SPLIT, channels=1,
                         cache_items=64)
    # max_batch=1: every tile runs as a (1, L) plan — bit-identical to
    # predict_image on the same pixels, the identity gate's foundation
    return Predictor(model, pipe, max_batch=1, bucket=BUCKET)


def _pyramid():
    # one pyramid is shared by every scenario arm: tile pixels are a pure
    # function of (source, address), so sharing the synthesis LRU and the
    # digest memo across arms only saves wall time, never leaks results
    src = VirtualWSISource(WSI_RES, seed=SEED, tile=TILE, cache_tiles=32)
    return TilePyramid(src, tile=TILE, max_level=MAX_LEVEL, cache_tiles=128)


def _engine_service(model, pyramid, **svc_kw):
    clock = SimClock()
    engine = InferenceEngine(_predictor(model), clock=clock.now,
                             service_model=ServiceModel(),
                             flush_deadline=DEADLINE, max_queue=QUEUE,
                             result_cache_items=64)
    svc = PyramidService(pyramid, engine, clock=clock.now,
                         prefetch_tiles=PREFETCH, cache_items=CACHE_ITEMS,
                         **svc_kw)
    return svc, clock


def _fleet_service(model, pyramid, replicas=2, **svc_kw):
    clock = SimClock()
    router = build_fleet(lambda rank: _predictor(model), replicas=replicas,
                         clock=clock.now, service_model=ServiceModel(),
                         flush_deadline=DEADLINE, max_queue=QUEUE,
                         result_cache_items=64)
    svc = PyramidService(pyramid, router, clock=clock.now,
                         prefetch_tiles=PREFETCH, cache_items=CACHE_ITEMS,
                         **svc_kw)
    return svc, clock


def _trace(sessions=SESSIONS, events=EVENTS_PER_SESSION):
    return viewer_trace((WSI_RES, WSI_RES), MAX_LEVEL + 1, sessions=sessions,
                        events_per_session=events, viewport=VIEWPORT,
                        tile=TILE, seed=SEED, think_mean=THINK_MEAN,
                        hotspots=3)


def _shared_rate(report):
    return (report["cache_hits"] + report["joined"]) \
        / max(report["tiles_visible"], 1)


def _final_starved(report):
    """Starved viewports that were their session's LAST viewport.

    A starved *superseded* viewport is cancellation doing its job — the
    viewer had already panned away, so its tiles were cancelled (or its
    submissions shed) in favor of where the viewer actually is. A starved
    *final* viewport is a user staring at a blank screen: always a defect.
    """
    last = {}
    for view in report["reports"]:
        prev = last.get(view.session)
        if prev is None or view.time > prev.time:
            last[view.session] = view
    return sum(1 for view in report["reports"]
               if view.time_to_first_tile() is None
               and last[view.session] is view)


def _summary(report):
    return {
        "viewports": report["viewports"],
        "tiles_visible": report["tiles_visible"],
        "cache_hits": report["cache_hits"],
        "joined": report["joined"],
        "submitted": report["submitted"],
        "rejected": report["rejected"],
        "cancelled_stale": report["cancelled_stale"],
        "prefetch_submitted": report["prefetch_submitted"],
        "prefetch_rejected": report["prefetch_rejected"],
        "starved_viewports": report["starved_viewports"],
        "final_starved": _final_starved(report),
        "failed": report["failed"],
        "leaked": report["leaked"],
        "shared_rate": round(_shared_rate(report), 4),
        "tile_cache_hit_rate": round(
            report["service"]["tile_cache"]["hit_rate"], 4),
        "makespan": round(report["makespan"], 4),
        "ttft": {k: (round(v, 6) if isinstance(v, float) else v)
                 for k, v in report["ttft"].items()},
    }


def _grid_locality(n):
    """Mean successive Euclidean distance over an n x n tile grid."""
    ys, xs = np.mgrid[0:n, 0:n]
    ys, xs = ys.ravel(), xs.ravel()

    def mean_step(order):
        return float(np.hypot(np.diff(ys[order].astype(float)),
                              np.diff(xs[order].astype(float))).mean())

    return {"hilbert": mean_step(hilbert_sort_order(ys, xs)),
            "morton": mean_step(morton_sort_order(ys, xs))}


@pytest.mark.bench
def test_viewer_load_and_regression_gate():
    model = _make_model()
    pyramid = _pyramid()
    trace = _trace()
    wall_t0 = time.perf_counter()

    # ------------------------------------------------------------------
    # Priority vs FIFO on the same trace
    # ------------------------------------------------------------------
    svc_p, clock = _engine_service(model, pyramid, policy="priority")
    priority = run_viewer_load(svc_p, trace, clock)
    svc_f, clock = _engine_service(model, pyramid, policy="fifo")
    fifo = run_viewer_load(svc_f, trace, clock)

    # ------------------------------------------------------------------
    # Identity: every cached tile == direct single-image prediction
    # ------------------------------------------------------------------
    reference = _predictor(model)
    checked = 0
    for report in priority["reports"]:
        for task in report.tasks:
            value = svc_p._store_peek(task.digest)
            if value is None:
                continue
            ref = reference.predict_image(
                svc_p.pyramid.tile_pixels(task.tile))
            np.testing.assert_array_equal(value, ref)
            checked += 1

    # ------------------------------------------------------------------
    # Shared cache: 8 overlapping sessions vs 1 session, same budget
    # ------------------------------------------------------------------
    svc_s, clock = _engine_service(model, pyramid, policy="priority")
    single = run_viewer_load(
        svc_s, _trace(sessions=1, events=SESSIONS * EVENTS_PER_SESSION),
        clock)

    # ------------------------------------------------------------------
    # Fleet kill mid-pan: cancellations in flight, a replica dies
    # ------------------------------------------------------------------
    kill_t = trace[len(trace) // 2].time
    svc_k, clock = _fleet_service(model, pyramid, policy="priority")
    kill = run_viewer_load(svc_k, trace, clock,
                           events=[ReplicaKill(kill_t, 0)])

    # the viewers' working grid: the level-2 tile grid (start level)
    locality = _grid_locality((WSI_RES >> 2) // TILE)

    result = {
        "environment": {"cpus": os.cpu_count() or 1,
                        "machine": platform.machine()},
        "service_model": asdict(ServiceModel()),
        "workload": {
            "wsi_resolution": WSI_RES, "tile": TILE,
            "pyramid": svc_p.pyramid.describe(),
            "sessions": SESSIONS, "events_per_session": EVENTS_PER_SESSION,
            "viewport": list(VIEWPORT), "think_mean": THINK_MEAN,
            "seed": SEED, "prefetch_tiles": PREFETCH,
            "tile_cache_items": CACHE_ITEMS, "split_value": SPLIT,
            "bucket": BUCKET, "max_batch": 1, "flush_deadline": DEADLINE,
            "max_queue": QUEUE, **MODEL,
        },
        "priority": _summary(priority),
        "fifo": _summary(fifo),
        "comparison": {
            "p99_ttft_priority": round(priority["ttft"]["p99"], 6),
            "p99_ttft_fifo": round(fifo["ttft"]["p99"], 6),
            "p99_improvement": round(
                fifo["ttft"]["p99"] / max(priority["ttft"]["p99"], 1e-9), 4),
        },
        "shared_cache": {
            "multi_session_rate": round(_shared_rate(priority), 4),
            "single_session_rate": round(_shared_rate(single), 4),
            "single_session": _summary(single),
        },
        "identity": {"tiles_checked": checked},
        "fleet_kill": {
            **_summary(kill),
            "kills": kill["backend"]["router"]["kills"],
            "rerouted": kill["backend"]["router"].get("rerouted", 0),
            "outstanding": kill["outstanding"],
        },
        "locality": {
            **{k: round(v, 4) for k, v in locality.items()},
            "morton_over_hilbert": round(
                locality["morton"] / locality["hilbert"], 4),
            "prefetch_order": svc_p.prefetch_order,
        },
        "real_seconds": round(time.perf_counter() - wall_t0, 3),
    }
    write_json_atomic(RESULT_PATH, result)
    print("\n" + json.dumps(result, indent=2))

    # -- acceptance gates (ISSUE 9) ------------------------------------
    comp = result["comparison"]
    assert comp["p99_ttft_priority"] < comp["p99_ttft_fifo"], (
        "viewport priority must strictly beat FIFO on p99 TTFT: "
        f"{comp['p99_ttft_priority']} vs {comp['p99_ttft_fifo']}")
    # Starvation audit: under priority, stale cancellation abandons
    # viewports the session has already panned away from — those starve
    # by design (and their exclusion from the percentile is the benefit,
    # not flattery). What may NEVER starve is a session's final viewport:
    # the user is still looking at it, so a blank screen there is a bug
    # in either arm. A loose ceiling keeps abandonment honest overall.
    for arm in ("priority", "fifo"):
        assert result[arm]["final_starved"] == 0, (
            f"{arm}: a session's final viewport never landed a tile "
            f"({result[arm]['final_starved']} blank screens)")
        assert result[arm]["starved_viewports"] <= \
            result[arm]["viewports"] // 4, \
            f"{arm}: too many starved viewports to trust the percentile"
    assert result["priority"]["cancelled_stale"] > 0, \
        "the trace must actually exercise stale-viewport cancellation"
    assert result["fifo"]["cancelled_stale"] == 0
    for arm in ("priority", "fifo"):
        assert result[arm]["failed"] == 0 and result[arm]["leaked"] == 0

    shared = result["shared_cache"]
    assert shared["multi_session_rate"] >= shared["single_session_rate"], (
        "cross-session sharing must not lose to a single session: "
        f"{shared['multi_session_rate']} < {shared['single_session_rate']}")

    assert result["identity"]["tiles_checked"] > 0, \
        "the identity gate must check a non-trivial tile set"

    fk = result["fleet_kill"]
    assert fk["kills"] == 1
    assert fk["failed"] == 0, "a replica kill must not fail tile futures"
    assert fk["leaked"] == 0 and fk["outstanding"] == 0, \
        "kill-mid-pan must leave no orphaned in-flight tiles"

    loc = result["locality"]
    assert loc["hilbert"] < loc["morton"], \
        "hilbert ordering must improve tile locality over morton"

    # -- regression gate vs committed baseline (>2x fails) -------------
    if BASELINE_PATH.exists():
        baseline = json.loads(BASELINE_PATH.read_text())
        p99_ceiling = baseline["comparison"]["p99_ttft_priority"] * 2.0
        assert comp["p99_ttft_priority"] <= p99_ceiling, (
            f"priority p99 TTFT regressed >2x: {comp['p99_ttft_priority']} "
            f"vs baseline {baseline['comparison']['p99_ttft_priority']}")
        improve_floor = baseline["comparison"]["p99_improvement"] / 2.0
        assert comp["p99_improvement"] >= improve_floor, (
            f"priority-over-FIFO advantage regressed >2x: "
            f"{comp['p99_improvement']} vs baseline "
            f"{baseline['comparison']['p99_improvement']}")
        rate_floor = baseline["shared_cache"]["multi_session_rate"] / 2.0
        assert shared["multi_session_rate"] >= rate_floor, (
            f"shared-cache rate regressed >2x: "
            f"{shared['multi_session_rate']} vs baseline "
            f"{baseline['shared_cache']['multi_session_rate']}")
        makespan_ceiling = baseline["priority"]["makespan"] * 2.0
        assert result["priority"]["makespan"] <= makespan_ceiling, (
            f"viewer makespan regressed >2x: "
            f"{result['priority']['makespan']} vs baseline "
            f"{baseline['priority']['makespan']}")
