"""Segmentation metrics.

The paper's quantitative metric is the dice similarity coefficient
``Dice(X, Y) = 2|X ∩ Y| / (|X| + |Y|)`` reported in percent; Table IV
averages dice over the 13 BTCV organ classes.
"""

from __future__ import annotations

from typing import Optional

import numpy as np

__all__ = ["dice_score", "per_class_dice", "iou_score", "pixel_accuracy"]


def _binarize(pred: np.ndarray, threshold: Optional[float]) -> np.ndarray:
    p = np.asarray(pred)
    if threshold is not None:
        return p > threshold
    return p.astype(bool)


def dice_score(pred: np.ndarray, target: np.ndarray,
               threshold: Optional[float] = 0.5) -> float:
    """Binary dice in percent.

    ``pred`` may be probabilities (thresholded at ``threshold``) or a boolean
    mask (pass ``threshold=None``). Two empty masks score 100.
    """
    p = _binarize(pred, threshold)
    t = np.asarray(target).astype(bool)
    if p.shape != t.shape:
        raise ValueError(f"shape mismatch: {p.shape} vs {t.shape}")
    inter = np.logical_and(p, t).sum()
    denom = p.sum() + t.sum()
    if denom == 0:
        return 100.0
    return float(200.0 * inter / denom)


def per_class_dice(pred_classes: np.ndarray, target_classes: np.ndarray,
                   num_classes: int, skip_background: bool = True) -> np.ndarray:
    """Dice per class from integer class maps; absent classes score NaN.

    Table IV convention: the reported number is ``np.nanmean`` over the 13
    organ classes (background skipped).
    """
    p = np.asarray(pred_classes)
    t = np.asarray(target_classes)
    if p.shape != t.shape:
        raise ValueError(f"shape mismatch: {p.shape} vs {t.shape}")
    start = 1 if skip_background else 0
    out = np.full(num_classes - start, np.nan)
    for k in range(start, num_classes):
        pk, tk = p == k, t == k
        denom = pk.sum() + tk.sum()
        if denom:
            out[k - start] = 200.0 * np.logical_and(pk, tk).sum() / denom
    return out


def iou_score(pred: np.ndarray, target: np.ndarray,
              threshold: Optional[float] = 0.5) -> float:
    """Binary intersection-over-union in percent; empty/empty scores 100."""
    p = _binarize(pred, threshold)
    t = np.asarray(target).astype(bool)
    union = np.logical_or(p, t).sum()
    if union == 0:
        return 100.0
    return float(100.0 * np.logical_and(p, t).sum() / union)


def pixel_accuracy(pred_classes: np.ndarray, target_classes: np.ndarray) -> float:
    """Fraction of pixels with the correct class, in percent."""
    p = np.asarray(pred_classes)
    t = np.asarray(target_classes)
    if p.shape != t.shape:
        raise ValueError(f"shape mismatch: {p.shape} vs {t.shape}")
    return float(100.0 * (p == t).mean())
