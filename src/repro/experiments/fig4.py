"""Figure 4: training stability vs model and patch size.

Top row: U-Net vs UNETR vs APF-UNETR loss curves — APF-UNETR converges to a
better, more stable solution. Bottom row: UNETR with patch sizes
{4, 16, 64} — smaller patches converge more stably. We reproduce both
panels at laptop scale and quantify "stability" as the std-dev of the last
validation losses (:meth:`TrainingHistory.loss_stability`).
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, Optional, Sequence

import numpy as np

from ..models import UNet
from ..train import ImageSegmentationTask, TrainingHistory
from .common import (ExperimentScale, format_table, make_trainer,
                     make_unetr_task, paip_splits)

__all__ = ["Fig4Result", "run_fig4_models", "run_fig4_patch_sweep"]


@dataclass
class Fig4Result:
    histories: Dict[str, TrainingHistory] = field(default_factory=dict)

    def stability(self, name: str, last_k: int = 3) -> float:
        return self.histories[name].loss_stability(last_k)

    def final_val_loss(self, name: str) -> float:
        return self.histories[name].val_loss[-1]

    def rows(self) -> str:
        return format_table(
            ["run", "final val loss", "stability (std)", "best dice"],
            [[name, f"{h.val_loss[-1]:.4f}", f"{h.loss_stability(3):.4f}",
              f"{h.best_metric:.2f}"] for name, h in self.histories.items()])


def run_fig4_models(scale: Optional[ExperimentScale] = None,
                    apf_patch: int = 2, unetr_patch: int = 8) -> Fig4Result:
    """Top panel: U-Net vs UNETR-large-patch vs APF-UNETR-small-patch."""
    scale = scale or ExperimentScale(epochs=5)
    train, val, _ = paip_splits(scale)
    out = Fig4Result()

    task = ImageSegmentationTask(
        UNet(channels=1, widths=(8, 16), rng=np.random.default_rng(scale.seed)),
        channels=1)
    out.histories["U-Net"] = make_trainer(task, scale).fit(
        train, val, epochs=scale.epochs)

    task = make_unetr_task(scale, unetr_patch, adaptive=False)
    out.histories[f"UNETR-{unetr_patch}"] = make_trainer(task, scale).fit(
        train, val, epochs=scale.epochs)

    task = make_unetr_task(scale, apf_patch, adaptive=True)
    out.histories[f"APF-UNETR-{apf_patch}"] = make_trainer(task, scale).fit(
        train, val, epochs=scale.epochs)
    return out


def run_fig4_patch_sweep(scale: Optional[ExperimentScale] = None,
                         patches: Sequence[int] = (2, 4, 8)) -> Fig4Result:
    """Bottom panel: uniform UNETR at increasing patch sizes (stability study)."""
    scale = scale or ExperimentScale(epochs=5)
    train, val, _ = paip_splits(scale)
    out = Fig4Result()
    for p in patches:
        task = make_unetr_task(scale, p, adaptive=False)
        out.histories[f"UNETR-{p}"] = make_trainer(task, scale).fit(
            train, val, epochs=scale.epochs)
    return out
