"""Memory-savings bench (paper: "AFP also brings significant savings in
memory and not just speedup", §IV-F1).

Two views: the analytic attention-memory model at the paper's configurations,
and actually-allocated attention matrices on this substrate.
"""

import numpy as np

from repro.data import generate_wsi
from repro.patching import AdaptivePatcher, UniformPatcher
from repro.perf import TransformerConfig, activation_bytes, attention_memory_bytes


def test_attention_memory_model_paper_rows(once):
    from repro.experiments.table2 import PAPER_TABLE2

    def measure():
        rows = []
        for (res, gpus, p_apf, l_apf, p_uni, l_uni, *_rest) in PAPER_TABLE2:
            apf = attention_memory_bytes(TransformerConfig(l_apf, 768, 12))
            uni = attention_memory_bytes(TransformerConfig(l_uni, 768, 12))
            rows.append((res, l_apf, l_uni, uni / apf))
        return rows

    rows = once(measure)
    print("\nres      APF seq  UNETR seq  attention-memory reduction")
    for res, la, lu, ratio in rows:
        print(f"{res:<8d} {la:<8d} {lu:<10d} {ratio:8.1f}x")
    # Quadratic in L: 16384 vs 1024 → 256x for the 512^2 row.
    assert rows[0][3] == (16384 / 1024) ** 2
    assert all(r[3] > 1 for r in rows)


def test_measured_attention_allocation(once):
    """Instantiate the actual (N,H,L,L) attention arrays both ways and
    compare allocated bytes — the concrete form of the memory claim."""

    def measure():
        img = generate_wsi(128, seed=0).image.mean(axis=2)
        l_apf = len(AdaptivePatcher(patch_size=4, split_value=8.0)(img))
        l_uni = len(UniformPatcher(4)(img))
        heads = 4
        apf_bytes = heads * l_apf ** 2 * 4
        uni_bytes = heads * l_uni ** 2 * 4
        # Allocate for real to keep the bench honest about feasibility.
        a = np.zeros((heads, l_apf, l_apf), dtype=np.float32)
        b = np.zeros((heads, l_uni, l_uni), dtype=np.float32)
        return l_apf, l_uni, apf_bytes, uni_bytes, a.nbytes + b.nbytes

    l_apf, l_uni, apf_bytes, uni_bytes, _ = once(measure)
    print(f"\nAPF L={l_apf}: {apf_bytes / 1e6:.2f} MB per layer; "
          f"uniform L={l_uni}: {uni_bytes / 1e6:.2f} MB per layer "
          f"({uni_bytes / apf_bytes:.0f}x)")
    assert uni_bytes / apf_bytes > 16


def test_activation_budget_allows_smaller_patches(once):
    """Paper Table V observation: at 16K^2 HIPT OOMs below patch 4096 while
    APF reaches patch 2 — reproduce the budget arithmetic with the activation
    model and a fixed per-GPU memory budget."""

    def measure():
        budget = 64e9  # one MI250X GCD's usable HBM
        # Uniform: smallest patch whose activation footprint fits at 16K^2.
        res = 16384
        uni_fit = None
        for p in (4096, 2048, 1024, 512, 256, 128, 64, 32, 16, 8, 4, 2):
            l = (res // p) ** 2
            if activation_bytes(TransformerConfig(l, 768, 12)) <= budget:
                uni_fit = p
            else:
                break
        # APF: sequence stays in the low thousands regardless of min patch.
        apf_len = 4096  # paper's deepest configuration
        apf_fits = activation_bytes(TransformerConfig(apf_len, 768, 12)) <= budget
        return uni_fit, apf_fits

    uni_fit, apf_fits = once(measure)
    print(f"\nsmallest uniform patch fitting 64GB at 16K^2: {uni_fit}; "
          f"APF at L=4096 (patch down to 2) fits: {apf_fits}")
    assert uni_fit is not None and uni_fit >= 64  # uniform stuck at huge patches
    assert apf_fits                               # APF reaches tiny patches
