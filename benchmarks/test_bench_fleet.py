"""Fleet serving benchmark + CI regression gate (simulated clock).

Drives a :class:`~repro.serve.router.FleetRouter` over N engine replicas
with the deterministic fleet DES
(:func:`~repro.serve.loadgen.run_fleet_load`): real model executions,
virtual service times, bit-exact metrics across runs and hosts.

Four scenarios, all written to ``BENCH_fleet.json`` (atomic) and gated
against the committed ``BENCH_fleet_baseline.json``:

* **scaling** — the same saturating open-loop trace against 1 and 4
  replicas (caching off, round-robin balance). Gate: ≥ 2.5x fleet
  throughput at 4 replicas, within the imbalance-adjusted bound from
  :func:`~repro.perf.serving.fleet_scaling_bound`.
* **affinity** — a repeating-payload trace against a 4-replica fleet and
  a single engine with the *same per-replica* cache budget. Rendezvous
  sharding spreads the key space, so the fleet's effective capacity is
  ~N× and its hit rate must be at least the single engine's.
* **kill_drain** — mid-run fail-stop of one replica plus a drain of
  another. Gates: zero lost requests (completed + rejected == offered,
  no failed futures), backlog re-homed, p99 stays bounded through the
  disruption.
* **drain_identity** — a request set submitted through the fleet and
  drained must be **bit-identical** to ``Predictor.predict_batch`` (and
  therefore to a single engine's drain) on the same set.
"""

import json
import os
import platform
import time
from dataclasses import asdict
from pathlib import Path

import numpy as np
import pytest

from repro.data import SyntheticPAIP
from repro.models import ViTSegmenter
from repro.perf import (engine_capacity, fleet_capacity, fleet_scaling_bound,
                        replicas_for_rate, routing_imbalance,
                        write_json_atomic)
from repro.pipeline import PatchPipeline
from repro.serve import (InferenceEngine, Predictor, ReplicaDrain,
                         ReplicaKill, ServiceModel, SimClock, build_fleet,
                         merge_traces, poisson_trace, run_fleet_load,
                         run_load)

RES = 64
N_IMAGES = 12
SPLIT = 8.0
MODEL = dict(patch_size=4, channels=1, dim=32, depth=2, heads=4, max_len=512)
BUCKET = 32
MAX_BATCH = 8
DEADLINE = 0.02
QUEUE = 64
REPLICAS = 4

N_CLIENTS = 8
ARRIVALS_PER_CLIENT = 20
RATE_PER_CLIENT = 100.0   # total 800/s >> 4-replica capacity: service-bound

SCALING_FLOOR = 2.5       # ISSUE 6 acceptance: 4-replica vs 1-replica ratio
CACHE_ITEMS = 4           # < N_IMAGES: a single engine's LRU must thrash
P99_KILL_BOUND = 1.0      # virtual seconds, through the kill + drain run

HERE = Path(__file__).resolve().parent
RESULT_PATH = HERE / "BENCH_fleet.json"
BASELINE_PATH = HERE / "BENCH_fleet_baseline.json"


def _make_model():
    return ViTSegmenter(rng=np.random.default_rng(0), **MODEL).eval()


def _predictor_factory(model):
    def make(rank):
        pipe = PatchPipeline(patch_size=4, split_value=SPLIT, channels=1,
                             cache_items=4 * N_IMAGES)
        return Predictor(model, pipe, max_batch=MAX_BATCH, bucket=BUCKET)
    return make


def _make_fleet(model, clock, replicas, **overrides):
    opts = dict(flush_deadline=DEADLINE, max_queue=QUEUE,
                result_cache_items=0)
    opts.update(overrides)
    return build_fleet(_predictor_factory(model), replicas=replicas,
                       clock=clock.now, service_model=ServiceModel(), **opts)


def _lat(summary):
    return {k: round(summary[k], 6) for k in ("p50", "p95", "p99", "mean",
                                              "max", "count")}


@pytest.mark.bench
def test_fleet_load_and_regression_gate():
    ds = SyntheticPAIP(RES, N_IMAGES)
    imgs = [ds[i].image for i in range(N_IMAGES)]
    model = _make_model()
    sm = ServiceModel()
    wall_t0 = time.perf_counter()

    # ------------------------------------------------------------------
    # Drain identity: fleet drain == predict_batch, bit for bit
    # ------------------------------------------------------------------
    clock = SimClock()
    router = _make_fleet(model, clock, REPLICAS)
    futs = [router.submit(im) for im in imgs]
    router.drain_all()
    reference = _predictor_factory(model)(0).predict_batch(
        imgs, keys=list(range(N_IMAGES)))
    for fut, ref in zip(futs, reference):
        np.testing.assert_array_equal(fut.result(), ref)

    # ------------------------------------------------------------------
    # Scaling: the same saturating trace against 1 and 4 replicas
    # ------------------------------------------------------------------
    trace = merge_traces(*[
        poisson_trace(RATE_PER_CLIENT, ARRIVALS_PER_CLIENT,
                      seed=1000 + c, n_items=N_IMAGES)
        for c in range(N_CLIENTS)])
    scaling = {}
    imbalance = None
    for n in (1, REPLICAS):
        clock = SimClock()
        router = _make_fleet(model, clock, n)
        report = run_fleet_load(router, trace, imgs, clock)
        scaling[n] = report
        if n == REPLICAS:
            routed = [rep["routed"] for rep in report["per_replica"].values()]
            imbalance = routing_imbalance(routed)
    speedup = scaling[REPLICAS]["throughput"] / scaling[1]["throughput"]

    # capacity-planning view of the same numbers (repro.perf.serving)
    pred = _predictor_factory(model)(0)
    lengths = [pred.bucket_length(len(pred._naturals([im], [i])[0]))
               for i, im in enumerate(imgs)]
    typical_len = int(np.median(lengths))
    offered_rate = N_CLIENTS * RATE_PER_CLIENT
    planning = {
        "typical_length": typical_len,
        "engine_capacity": round(engine_capacity(sm, MAX_BATCH, typical_len), 3),
        "fleet_capacity": round(
            fleet_capacity(sm, MAX_BATCH, typical_len, REPLICAS), 3),
        "offered_rate": offered_rate,
        "routing_imbalance": round(imbalance, 4),
        "scaling_bound": round(fleet_scaling_bound(REPLICAS,
                                                   [rep["routed"] for rep in
                                                    scaling[REPLICAS]
                                                    ["per_replica"].values()]),
                               3),
        "replicas_for_offered": replicas_for_rate(offered_rate, sm,
                                                  MAX_BATCH, typical_len),
    }

    # ------------------------------------------------------------------
    # Affinity: sharded caches vs one engine with the same per-replica
    # budget, on a repeating-payload trace
    # ------------------------------------------------------------------
    aff_trace = merge_traces(*[
        poisson_trace(20.0, 30, seed=5000 + c, n_items=N_IMAGES)
        for c in range(4)])
    clock = SimClock()
    aff_router = _make_fleet(model, clock, REPLICAS,
                             result_cache_items=CACHE_ITEMS)
    aff_fleet = run_fleet_load(aff_router, aff_trace, imgs, clock)
    clock = SimClock()
    single = InferenceEngine(_predictor_factory(model)(0), clock=clock.now,
                             service_model=ServiceModel(),
                             flush_deadline=DEADLINE, max_queue=QUEUE,
                             result_cache_items=CACHE_ITEMS)
    aff_single = run_load(single, aff_trace, imgs, clock)
    single_hit_rate = aff_single["stats"]["result_cache"]["hit_rate"]

    # ------------------------------------------------------------------
    # Kill + drain: fail-stop rank 1 mid-run, drain rank 2 later
    # ------------------------------------------------------------------
    # near-capacity offered load, so replicas hold real backlogs when the
    # kill fires and the re-homing path is actually exercised
    kd_trace = merge_traces(*[
        poisson_trace(100.0, 30, seed=7000 + c, n_items=N_IMAGES)
        for c in range(4)])
    ordered = sorted(kd_trace, key=lambda a: (a.time, a.lane, a.item))
    kill_t = ordered[len(ordered) // 3].time
    drain_t = ordered[2 * len(ordered) // 3].time
    clock = SimClock()
    kd_router = _make_fleet(model, clock, REPLICAS,
                            result_cache_items=CACHE_ITEMS)
    kd = run_fleet_load(kd_router, kd_trace, imgs, clock,
                        events=[ReplicaKill(kill_t, 1),
                                ReplicaDrain(drain_t, 2)])

    # ------------------------------------------------------------------
    # Report + gates
    # ------------------------------------------------------------------
    result = {
        "environment": {"cpus": os.cpu_count() or 1,
                        "machine": platform.machine()},
        "service_model": asdict(sm),
        "workload": {"images": N_IMAGES, "resolution": RES,
                     "split_value": SPLIT, "bucket": BUCKET,
                     "max_batch": MAX_BATCH, "flush_deadline": DEADLINE,
                     "max_queue": QUEUE, "replicas": REPLICAS,
                     "clients": N_CLIENTS,
                     "rate_per_client": RATE_PER_CLIENT, **MODEL},
        "capacity_planning": planning,
        "scaling": {
            "throughput_1": round(scaling[1]["throughput"], 3),
            "throughput_n": round(scaling[REPLICAS]["throughput"], 3),
            "speedup": round(speedup, 3),
            "offered": scaling[REPLICAS]["offered"],
            "completed_1": scaling[1]["requests_completed"],
            "completed_n": scaling[REPLICAS]["requests_completed"],
            "rejected_1": scaling[1]["rejected_submissions"],
            "rejected_n": scaling[REPLICAS]["rejected_submissions"],
            "latency_n": _lat(scaling[REPLICAS]["latency"]),
            "routing_imbalance": round(imbalance, 4),
        },
        "affinity": {
            "fleet_hit_rate": round(aff_fleet["cache_hit_rate"], 4),
            "single_hit_rate": round(single_hit_rate, 4),
            "cache_items_per_replica": CACHE_ITEMS,
            "fleet_throughput": round(aff_fleet["throughput"], 3),
            "single_throughput": round(aff_single["throughput"], 3),
            "spilled": aff_fleet["spilled"],
        },
        "kill_drain": {
            "offered": kd["offered"],
            "completed": kd["requests_completed"],
            "rejected": kd["rejected_submissions"],
            "failed": kd["failed"],
            "rerouted": kd["rerouted"],
            "kills": kd["kills"],
            "drains": kd["drains"],
            "throughput": round(kd["throughput"], 3),
            "latency": _lat(kd["latency"]),
            "replica_states": {rank: rep["state"] for rank, rep
                               in kd["per_replica"].items()},
        },
        "real_seconds": round(time.perf_counter() - wall_t0, 3),
    }
    write_json_atomic(RESULT_PATH, result)
    print("\n" + json.dumps(result, indent=2))

    # -- acceptance floors (ISSUE 6) -----------------------------------
    sc = result["scaling"]
    assert sc["speedup"] >= SCALING_FLOOR, (
        f"4-replica fleet is only {sc['speedup']}x a single engine "
        f"({sc['throughput_n']}/s vs {sc['throughput_1']}/s)")
    # the DES cannot beat what the shard balance permits (plus slack for
    # the single engine's queue-bound inefficiency inflating the ratio)
    assert sc["speedup"] <= 1.5 * REPLICAS
    aff = result["affinity"]
    assert aff["fleet_hit_rate"] >= aff["single_hit_rate"], (
        "digest sharding must not lose to one engine with the same "
        f"per-replica cache: {aff['fleet_hit_rate']} < "
        f"{aff['single_hit_rate']}")
    kd_r = result["kill_drain"]
    assert kd_r["failed"] == 0, "a replica kill must not fail futures"
    assert kd_r["completed"] + kd_r["rejected"] == kd_r["offered"], \
        "every offered request must be accounted for through kill + drain"
    assert kd_r["kills"] == 1 and kd_r["drains"] == 1
    assert kd_r["rerouted"] > 0, \
        "the kill must re-home a live backlog, not an empty queue"
    assert kd_r["replica_states"][1] == "down"
    assert kd_r["replica_states"][2] == "draining"
    assert kd_r["latency"]["p99"] <= P99_KILL_BOUND, (
        f"p99 {kd_r['latency']['p99']}s through kill+drain exceeds "
        f"{P99_KILL_BOUND}s")

    # -- regression gate vs committed baseline (>2x slowdown fails) ----
    if BASELINE_PATH.exists():
        baseline = json.loads(BASELINE_PATH.read_text())
        for section, key in [("scaling", "throughput_n"),
                             ("scaling", "speedup"),
                             ("kill_drain", "throughput")]:
            floor = baseline[section][key] / 2.0
            got = result[section][key]
            assert got >= floor, (
                f"{section}.{key} regressed >2x: {got} vs baseline "
                f"{baseline[section][key]} (floor {floor})")
        hit_floor = baseline["affinity"]["fleet_hit_rate"] / 2.0
        assert aff["fleet_hit_rate"] >= hit_floor, (
            f"affinity hit rate regressed >2x: {aff['fleet_hit_rate']} vs "
            f"baseline {baseline['affinity']['fleet_hit_rate']}")
        p99_ceiling = baseline["kill_drain"]["latency"]["p99"] * 2.0
        assert kd_r["latency"]["p99"] <= p99_ceiling, (
            f"kill+drain p99 regressed >2x: {kd_r['latency']['p99']} vs "
            f"baseline {baseline['kill_drain']['latency']['p99']}")
