"""UNETR (Hatamizadeh et al.) in 2-D — the paper's primary baseline/carrier.

Architecture: a ViT encoder whose intermediate hidden states feed a
convolutional decoder through skip connections. The paper swaps UNETR's 3-D
conv/deconv blocks for 2-D ones and changes nothing else; we do the same.

APF integration: token features (both the bottleneck and every tapped hidden
state) are scattered onto a ``Z/Pm`` grid through the quadtree geometry
(:mod:`repro.models.scatter`), after which the decoder is the standard stack
of transposed convolutions. With uniform patching the scatter degenerates to
a reshape, so one code path serves both (paper's "seamless integration").
"""

from __future__ import annotations

import math
from typing import List, Optional, Sequence

import numpy as np

from .. import nn
from ..patching import PatchSequence
from .embedding import PatchEmbedding, collate_sequences
from .scatter import scatter_tokens_to_grid

__all__ = ["UNETR2D"]


class _DecoderBlock(nn.Module):
    """ConvTranspose 2x upsample -> concat skip -> conv -> GN -> ReLU."""

    def __init__(self, in_ch: int, skip_ch: int, out_ch: int,
                 rng: np.random.Generator, dtype=np.float32):
        super().__init__()
        self.up = nn.ConvTranspose2d(in_ch, out_ch, kernel=2, stride=2,
                                     rng=rng, dtype=dtype)
        self.conv = nn.Conv2d(out_ch + skip_ch, out_ch, kernel=3, padding=1,
                              rng=rng, dtype=dtype)
        self.norm = nn.GroupNorm(_groups_for(out_ch), out_ch, dtype=dtype)

    def forward(self, x: nn.Tensor, skip: Optional[nn.Tensor]) -> nn.Tensor:
        x = self.up(x)
        if skip is not None:
            x = nn.concat([x, skip], axis=1)
        return self.norm(self.conv(x)).relu()


def _groups_for(ch: int) -> int:
    for g in (8, 4, 2, 1):
        if ch % g == 0:
            return g
    return 1


class UNETR2D(nn.Module):
    """2-D UNETR that accepts any :class:`PatchSequence` layout.

    Parameters
    ----------
    patch_size:
        Model patch size ``Pm``; the decoder performs ``log2(Pm)`` 2x
        upsampling stages from the token grid back to full resolution.
    channels:
        Input image channels.
    dim, depth, heads:
        ViT encoder configuration. Hidden states are tapped at
        ``depth * i / stages`` for the decoder skips (the 2-D analogue of
        UNETR's z3/z6/z9/z12 taps).
    """

    def __init__(self, patch_size: int, channels: int = 1, dim: int = 64,
                 depth: int = 4, heads: int = 4, max_len: int = 1024,
                 out_channels: int = 1, decoder_ch: int = 32,
                 use_coords: bool = True,
                 rng: Optional[np.random.Generator] = None, dtype=np.float32):
        super().__init__()
        if patch_size < 2 or patch_size & (patch_size - 1):
            raise ValueError(f"patch_size must be a power of two >= 2, got {patch_size}")
        rng = rng or np.random.default_rng(0)
        self.patch_size = patch_size
        self.channels = channels
        self.out_channels = out_channels
        self.stages = int(math.log2(patch_size))
        token_dim = channels * patch_size * patch_size
        self.embed = PatchEmbedding(token_dim, dim, max_len,
                                    use_coords=use_coords, rng=rng, dtype=dtype)
        self.encoder = nn.TransformerEncoder(dim, depth, heads, mlp_ratio=2.0,
                                             rng=rng, dtype=dtype)
        # Tap hidden states evenly: stage i uses layer round(depth*(i+1)/stages).
        self.skip_layers = sorted({max(1, round(depth * (i + 1) / self.stages))
                                   for i in range(self.stages - 1)})
        self.bottleneck = nn.Conv2d(dim, decoder_ch * 2, kernel=3, padding=1,
                                    rng=rng, dtype=dtype)
        self.skip_projs = nn.ModuleList([
            nn.Conv2d(dim, decoder_ch, kernel=1, rng=rng, dtype=dtype)
            for _ in self.skip_layers
        ])
        # Every stage concatenates a decoder_ch-wide skip: intermediate stages
        # use projected ViT taps, the last stage uses the raw-image stem.
        self.blocks = nn.ModuleList([])
        ch = decoder_ch * 2
        for _ in range(self.stages):
            self.blocks.append(_DecoderBlock(ch, decoder_ch, decoder_ch,
                                             rng=rng, dtype=dtype))
            ch = decoder_ch
        self.stem = nn.Conv2d(channels, decoder_ch, kernel=3, padding=1,
                              rng=rng, dtype=dtype)
        self.out_conv = nn.Conv2d(decoder_ch, out_channels, kernel=1,
                                  rng=rng, dtype=dtype)
        self.dtype = dtype

    def forward(self, tokens: np.ndarray, coords: Optional[np.ndarray],
                valid: Optional[np.ndarray], seqs: Sequence[PatchSequence],
                images: np.ndarray) -> nn.Tensor:
        """Full-resolution logits (B, out_channels, Z, Z).

        ``images`` is the raw batch (B, C, Z, Z) used for the stem skip.
        """
        x = self.embed(tokens, coords, valid)
        if self.skip_layers:
            feats, hidden = self.encoder(x, return_hidden=self.skip_layers,
                                         key_mask=valid)
        else:  # patch_size == 2: single decoder stage, stem skip only
            feats, hidden = self.encoder(x, key_mask=valid), []
        cell = self.patch_size
        y = self.bottleneck(scatter_tokens_to_grid(feats, seqs, cell))
        skips: List[nn.Tensor] = [
            proj(scatter_tokens_to_grid(h, seqs, cell))
            for proj, h in zip(self.skip_projs, hidden)
        ]
        img_t = nn.Tensor(np.asarray(images, dtype=self.dtype))
        stem = self.stem(img_t)
        for i, block in enumerate(self.blocks):
            if i == self.stages - 1:
                skip = stem
            else:
                # Skip maps live on the Pm grid; upsample to this stage's res.
                s = skips[len(skips) - 1 - i]
                skip = nn.functional.upsample_nearest2d(s, 2 ** (i + 1))
            y = block(y, skip)
        return self.out_conv(y)

    def forward_sequences(self, seqs: Sequence[PatchSequence],
                          images: np.ndarray) -> nn.Tensor:
        tokens, coords, valid = collate_sequences(seqs)
        return self.forward(tokens, coords, valid, seqs, images)

    def predict_mask(self, seq: PatchSequence, image: np.ndarray) -> np.ndarray:
        """Inference probabilities (out_channels, Z, Z) for one image."""
        with nn.no_grad():
            logits = self.forward_sequences([seq], image[None])
        return 1.0 / (1.0 + np.exp(-logits.data[0]))
