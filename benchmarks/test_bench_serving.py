"""Serving load benchmark + CI regression gate (simulated clock).

Drives the :class:`~repro.serve.engine.InferenceEngine` with seeded
open-loop arrival traces under the deterministic virtual clock
(:mod:`repro.serve.loadgen`): the engine executes the *real* model on
every batch, but service times come from the calibrated
:class:`ServiceModel`, so throughput and tail latency are bit-exact across
runs and hosts — real-time load tests are hopeless on shared 1-CPU CI.

Four scenarios, all written to ``BENCH_serving.json`` (atomic) and gated
against the committed ``BENCH_serving_baseline.json``:

* **continuous_batching** — 8 open-loop clients saturating the engine.
  Gates: throughput ≥ 2x the serial ``predict_image`` baseline on the
  same trace, p99 latency bounded, zero rejections, streamed results
  match ``Predictor.predict_batch`` to float tolerance.
* **drain_identity** — the acceptance contract: a request set submitted
  and drained must be **bit-identical** to ``predict_batch`` on the same
  set (FIFO bucket chunks of ``max_batch`` reproduce its grouping).
* **overload** — 3x-capacity burst against a small queue: admission
  control must shed (rejections > 0, retry-after hints > 0) while p99
  for *admitted* requests stays bounded by queue depth.
* **lanes** — interactive stream + bulk volume jobs: weighted fairness
  must keep interactive p95 at or below bulk p95.

Virtual metrics are deterministic, so the regression guard is the usual
>2x rule with plenty of slack for numpy-version drift in trace RNG.
"""

import json
import os
import platform
import time
from dataclasses import asdict
from pathlib import Path

import numpy as np
import pytest

from repro.data import SyntheticPAIP
from repro.models import ViTSegmenter
from repro.perf import (batching_speedup_bound, engine_capacity,
                        serial_capacity, utilization, write_json_atomic)
from repro.pipeline import PatchPipeline
from repro.serve import (Arrival, InferenceEngine, Predictor, ServiceModel,
                         SimClock, merge_traces, poisson_trace, run_load,
                         serial_baseline)
from repro.train.tasks import prepare_image

RES = 64
N_IMAGES = 12
SPLIT = 8.0
MODEL = dict(patch_size=4, channels=1, dim=32, depth=2, heads=4, max_len=512)
BUCKET = 32
MAX_BATCH = 8
DEADLINE = 0.02
QUEUE = 64

N_CLIENTS = 8
ARRIVALS_PER_CLIENT = 12
RATE_PER_CLIENT = 12.0          # total 96/s ~ engine capacity (see ServiceModel)

P99_BOUND = 1.0                 # virtual seconds, saturated open-loop regime

HERE = Path(__file__).resolve().parent
RESULT_PATH = HERE / "BENCH_serving.json"
BASELINE_PATH = HERE / "BENCH_serving_baseline.json"


def _make_model():
    return ViTSegmenter(rng=np.random.default_rng(0), **MODEL).eval()


def _make_predictor(model):
    pipe = PatchPipeline(patch_size=4, split_value=SPLIT, channels=1,
                         cache_items=4 * N_IMAGES)
    return Predictor(model, pipe, max_batch=MAX_BATCH, bucket=BUCKET)


def _make_engine(predictor, clock, **overrides):
    opts = dict(flush_deadline=DEADLINE, max_queue=QUEUE,
                result_cache_items=0)   # honest throughput: no result reuse
    opts.update(overrides)
    return InferenceEngine(predictor, clock=clock.now,
                           service_model=ServiceModel(), **opts)


def _lat(summary):
    return {k: round(summary[k], 6) for k in ("p50", "p95", "p99", "mean",
                                              "max", "count")}


@pytest.mark.bench
def test_serving_load_and_regression_gate():
    ds = SyntheticPAIP(RES, N_IMAGES)
    imgs = [ds[i].image for i in range(N_IMAGES)]
    model = _make_model()
    sm = ServiceModel()
    wall_t0 = time.perf_counter()

    # ------------------------------------------------------------------
    # Drain identity: engine == predict_batch, bit for bit
    # ------------------------------------------------------------------
    pred = _make_predictor(model)
    clock = SimClock()
    engine = _make_engine(pred, clock)
    warm = engine.warmup()          # pre-compile the bucket ladder
    futs = [engine.submit(im) for im in imgs]
    engine.drain()
    reference = _make_predictor(model).predict_batch(
        imgs, keys=list(range(N_IMAGES)))
    for fut, ref in zip(futs, reference):
        np.testing.assert_array_equal(fut.result(), ref)

    # ------------------------------------------------------------------
    # Continuous batching under 8 open-loop clients
    # ------------------------------------------------------------------
    clock = SimClock()
    pred = _make_predictor(model)
    engine = _make_engine(pred, clock)
    trace = merge_traces(*[
        poisson_trace(RATE_PER_CLIENT, ARRIVALS_PER_CLIENT,
                      seed=1000 + c, n_items=N_IMAGES)
        for c in range(N_CLIENTS)])
    report = run_load(engine, trace, imgs, clock)

    ordered = sorted(trace, key=lambda a: (a.time, a.lane, a.item))
    lengths = [pred.bucket_length(len(pred._naturals([imgs[a.item]],
                                                     [a.item])[0]))
               for a in ordered]
    serial = serial_baseline(trace, lengths, sm)
    speedup = report["throughput"] / serial["throughput"]

    # capacity-planning view of the same numbers (repro.perf.serving)
    typical_len = int(np.median(lengths))
    capacity = engine_capacity(sm, MAX_BATCH, typical_len)
    offered_rate = N_CLIENTS * RATE_PER_CLIENT
    planning = {
        "typical_length": typical_len,
        "engine_capacity": round(capacity, 3),
        "serial_capacity": round(serial_capacity(sm, typical_len), 3),
        "speedup_bound": round(
            batching_speedup_bound(sm, MAX_BATCH, typical_len), 3),
        "offered_rate": offered_rate,
        "utilization": round(utilization(offered_rate, capacity), 3),
    }

    # post-load results still agree with predict_batch to float tolerance
    # (chunk compositions depend on arrival timing; see engine docstring)
    futures = [engine.submit(im) for im in imgs]
    engine.drain()
    for fut, ref in zip(futures, reference):
        np.testing.assert_allclose(fut.result(), ref, atol=1e-5)

    # ------------------------------------------------------------------
    # Overload: 3x capacity into a small queue -> shed, bounded p99
    # ------------------------------------------------------------------
    clock = SimClock()
    pred_over = _make_predictor(model)
    over_engine = _make_engine(pred_over, clock, max_queue=16)
    over_trace = merge_traces(*[
        poisson_trace(3 * RATE_PER_CLIENT, ARRIVALS_PER_CLIENT,
                      seed=2000 + c, n_items=N_IMAGES)
        for c in range(N_CLIENTS)])
    over = run_load(over_engine, over_trace, imgs, clock)

    # ------------------------------------------------------------------
    # Lanes: contended interactive stream + bulk volume jobs, weighted 4:1
    # ------------------------------------------------------------------
    n_vols, n_slices = 4, 8
    volumes = [np.stack([prepare_image(imgs[(k + j) % N_IMAGES], 1)[0]
                         for j in range(n_slices)]) for k in range(n_vols)]
    items = imgs + volumes
    clock = SimClock()
    pred_lane = _make_predictor(model)
    lane_engine = _make_engine(pred_lane, clock)
    lane_trace = merge_traces(
        *[poisson_trace(16.0, ARRIVALS_PER_CLIENT,
                        seed=3000 + c, n_items=N_IMAGES)
          for c in range(6)],
        [Arrival(a.time, N_IMAGES + i, "bulk", "volume")
         for i, a in enumerate(poisson_trace(6.0, n_vols, seed=3999))])
    lanes = run_load(lane_engine, lane_trace, items, clock)

    # ------------------------------------------------------------------
    # Report + gates
    # ------------------------------------------------------------------
    result = {
        "environment": {"cpus": os.cpu_count() or 1,
                        "machine": platform.machine()},
        "service_model": asdict(sm),
        "workload": {"images": N_IMAGES, "resolution": RES,
                     "split_value": SPLIT, "bucket": BUCKET,
                     "max_batch": MAX_BATCH, "flush_deadline": DEADLINE,
                     "max_queue": QUEUE, "clients": N_CLIENTS,
                     "rate_per_client": RATE_PER_CLIENT, **MODEL},
        "warmup": {k: round(v, 3) if isinstance(v, float) else v
                   for k, v in warm.items()},
        "capacity_planning": planning,
        "continuous_batching": {
            "offered": report["offered"],
            "completed": report["requests_completed"],
            "rejected": report["rejected_submissions"],
            "throughput": round(report["throughput"], 3),
            "serial_throughput": round(serial["throughput"], 3),
            "speedup_vs_serial": round(speedup, 3),
            "mean_batch_size": round(report["mean_batch_size"], 3),
            "batches": report["batches"],
            "latency": _lat(report["latency"]),
            "serial_p99": round(serial["p99"], 6),
        },
        "overload": {
            "offered": over["offered"],
            "rejected": over["rejected_submissions"],
            "completed": over["requests_completed"],
            "throughput": round(over["throughput"], 3),
            "mean_retry_after": round(over["mean_retry_after"], 6),
            "latency": _lat(over["latency"]),
        },
        "lanes": {
            "interactive": _lat(lanes["latency_per_lane"]["interactive"]),
            "bulk": _lat(lanes["latency_per_lane"]["bulk"]),
            "volumes": n_vols,
            "slices_per_volume": n_slices,
        },
        "real_seconds": round(time.perf_counter() - wall_t0, 3),
    }
    write_json_atomic(RESULT_PATH, result)
    print("\n" + json.dumps(result, indent=2))

    # -- acceptance floors (ISSUE 4) -----------------------------------
    cb = result["continuous_batching"]
    assert cb["rejected"] == 0, "primary scenario must not shed"
    assert cb["speedup_vs_serial"] >= 2.0, (
        f"engine throughput {cb['throughput']}/s is only "
        f"{cb['speedup_vs_serial']}x the serial predict_image baseline "
        f"({cb['serial_throughput']}/s) at concurrency {N_CLIENTS}")
    assert cb["latency"]["p99"] <= P99_BOUND, (
        f"p99 {cb['latency']['p99']}s exceeds the {P99_BOUND}s bound")
    # the measured speedup can exceed the single-length bound slightly
    # (shorter buckets batch more favorably) but not wildly
    assert cb["speedup_vs_serial"] <= 1.5 * planning["speedup_bound"]
    assert result["overload"]["rejected"] > 0, \
        "overload burst must trigger admission control"
    assert result["overload"]["mean_retry_after"] > 0
    over_p99_bound = (QUEUE / MAX_BATCH + 2) * sm.cost(MAX_BATCH, max(lengths))
    assert result["overload"]["latency"]["p99"] <= over_p99_bound, (
        "admitted-request p99 must stay bounded by queue depth under "
        f"overload: {result['overload']['latency']['p99']} > {over_p99_bound}")
    assert (result["lanes"]["interactive"]["p95"]
            <= result["lanes"]["bulk"]["p95"]), \
        "weighted fairness should protect the interactive lane's tail"

    # -- regression gate vs committed baseline (>2x slowdown fails) ----
    if BASELINE_PATH.exists():
        baseline = json.loads(BASELINE_PATH.read_text())
        for section, key in [("continuous_batching", "throughput"),
                             ("continuous_batching", "speedup_vs_serial"),
                             ("overload", "throughput")]:
            floor = baseline[section][key] / 2.0
            got = result[section][key]
            assert got >= floor, (
                f"{section}.{key} regressed >2x: {got} vs baseline "
                f"{baseline[section][key]} (floor {floor})")
        p99_ceiling = baseline["continuous_batching"]["latency"]["p99"] * 2.0
        assert cb["latency"]["p99"] <= p99_ceiling, (
            f"p99 regressed >2x: {cb['latency']['p99']} vs baseline "
            f"{baseline['continuous_batching']['latency']['p99']}")
