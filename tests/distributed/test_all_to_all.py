"""Tests for the all-to-all collective (Ulysses' primitive)."""

import numpy as np
import pytest

from repro.distributed import SimCluster


class TestAllToAll:
    def test_block_transpose_semantics(self):
        # rank r holds rows [r*2, r*2+2) labelled (src, chunk); after a2a,
        # rank d holds chunk d from every src.
        w = 3
        bufs = [np.array([[r, c] for c in range(w)], dtype=float)
                for r in range(w)]
        out, stats = SimCluster(w).all_to_all(bufs)
        for dst in range(w):
            # Output rows: (src, dst) for src = 0..w-1.
            np.testing.assert_array_equal(
                out[dst], np.array([[src, dst] for src in range(w)], dtype=float))
        assert stats.steps == 1
        assert stats.bytes_sent_per_rank > 0

    def test_involution(self):
        # Applying all-to-all twice restores the original layout.
        w = 4
        rng = np.random.default_rng(0)
        bufs = [rng.normal(size=(8, 5)) for _ in range(w)]
        once, _ = SimCluster(w).all_to_all(bufs)
        twice, _ = SimCluster(w).all_to_all(once)
        for a, b in zip(bufs, twice):
            np.testing.assert_array_equal(a, b)

    def test_validates_divisibility(self):
        with pytest.raises(ValueError):
            SimCluster(3).all_to_all([np.zeros((4, 2))] * 3)

    def test_validates_buffer_count(self):
        with pytest.raises(ValueError):
            SimCluster(2).all_to_all([np.zeros((2, 2))])

    def test_single_rank(self):
        out, stats = SimCluster(1).all_to_all([np.arange(6.0).reshape(3, 2)])
        np.testing.assert_array_equal(out[0], np.arange(6.0).reshape(3, 2))
        assert stats.bytes_sent_per_rank == 0.0
