"""Tests for the simulated-clock load harness (determinism above all)."""

import numpy as np
import pytest

from repro.data import SyntheticPAIP
from repro.models.vit import ViTSegmenter
from repro.pipeline import PatchPipeline
from repro.serve import (Arrival, InferenceEngine, Predictor, ServiceModel,
                         SimClock, merge_traces, poisson_trace, run_load,
                         serial_baseline)


def _setup(n=6, **engine_kw):
    ds = SyntheticPAIP(64, n)
    imgs = [ds[i].image for i in range(n)]
    model = ViTSegmenter(patch_size=4, channels=1, dim=16, depth=1, heads=2,
                         max_len=256, rng=np.random.default_rng(1))
    pipe = PatchPipeline(patch_size=4, split_value=8.0, channels=1,
                         cache_items=32)
    pred = Predictor(model, pipe, max_batch=4, bucket=16)
    clock = SimClock()
    args = dict(clock=clock.now, service_model=ServiceModel(),
                flush_deadline=0.02, result_cache_items=0)
    args.update(engine_kw)
    return imgs, InferenceEngine(pred, **args), clock


class TestTraces:
    def test_poisson_trace_is_seeded_and_sorted(self):
        a = poisson_trace(10.0, 20, seed=7, n_items=4)
        b = poisson_trace(10.0, 20, seed=7, n_items=4)
        assert a == b
        assert a != poisson_trace(10.0, 20, seed=8, n_items=4)
        times = [x.time for x in a]
        assert times == sorted(times)
        assert all(0 <= x.item < 4 for x in a)
        # mean inter-arrival ~ 1/rate
        gaps = np.diff([0.0] + times)
        assert 0.03 < gaps.mean() < 0.3

    def test_merge_traces_orders_by_time(self):
        a = poisson_trace(5.0, 5, seed=1)
        b = poisson_trace(5.0, 5, seed=2, lane="bulk")
        merged = merge_traces(a, b)
        assert len(merged) == 10
        assert [x.time for x in merged] == sorted(x.time for x in merged)

    def test_trace_validation(self):
        with pytest.raises(ValueError):
            poisson_trace(0.0, 5, seed=1)
        with pytest.raises(ValueError):
            poisson_trace(1.0, 0, seed=1)


class TestServiceModel:
    def test_cost_model_shape(self):
        sm = ServiceModel(batch_seconds=0.03, token_seconds=1e-5,
                          item_seconds=0.002)
        assert sm.serial(100) == pytest.approx(0.03 + 0.001 + 0.002)
        assert sm.cost(8, 100) == pytest.approx(0.03 + 8 * 0.003)
        # batching amortizes the fixed term: 8 items cheaper than 8 singles
        assert sm.cost(8, 100) < 8 * sm.serial(100)
        with pytest.raises(ValueError):
            sm.cost(0, 100)


class TestSimClock:
    def test_forward_only(self):
        c = SimClock(5.0)
        c.set(4.0)
        assert c.now() == 5.0
        c.advance(1.5)
        assert c.now() == 6.5
        with pytest.raises(ValueError):
            c.advance(-1.0)


class TestRunLoad:
    def test_deterministic_across_runs(self):
        reports = []
        for _ in range(2):
            imgs, engine, clock = _setup()
            trace = merge_traces(*[poisson_trace(8.0, 6, seed=10 + c,
                                                 n_items=len(imgs))
                                   for c in range(3)])
            reports.append(run_load(engine, trace, imgs, clock))
        a, b = reports
        assert a["throughput"] == b["throughput"]
        assert a["latency"] == b["latency"]
        assert a["batches"] == b["batches"]
        assert a["rejected_submissions"] == b["rejected_submissions"]

    def test_all_accepted_requests_complete(self):
        imgs, engine, clock = _setup()
        trace = poisson_trace(20.0, 15, seed=3, n_items=len(imgs))
        report = run_load(engine, trace, imgs, clock)
        assert report["offered"] == 15
        assert (report["requests_completed"] + report["rejected_submissions"]
                == 15)
        assert report["makespan"] > 0
        assert report["latency"]["count"] == report["requests_completed"]

    def test_overload_sheds_and_hints(self):
        imgs, engine, clock = _setup(max_queue=4)
        trace = poisson_trace(500.0, 40, seed=5, n_items=len(imgs))
        report = run_load(engine, trace, imgs, clock)
        assert report["rejected_submissions"] > 0
        assert report["mean_retry_after"] > 0

    def test_empty_trace_rejected(self):
        imgs, engine, clock = _setup()
        with pytest.raises(ValueError):
            run_load(engine, [], imgs, clock)

    def test_batching_beats_serial_baseline(self):
        imgs, engine, clock = _setup()
        pred = engine.predictor
        trace = merge_traces(*[poisson_trace(15.0, 8, seed=20 + c,
                                             n_items=len(imgs))
                               for c in range(4)])
        report = run_load(engine, trace, imgs, clock)
        ordered = sorted(trace, key=lambda a: (a.time, a.lane, a.item))
        lengths = [pred.bucket_length(len(pred._naturals([imgs[a.item]],
                                                         [a.item])[0]))
                   for a in ordered]
        serial = serial_baseline(trace, lengths, ServiceModel())
        assert report["throughput"] > serial["throughput"]


class TestSerialBaseline:
    def test_fifo_queueing_math(self):
        sm = ServiceModel(batch_seconds=0.03, token_seconds=0.0,
                          item_seconds=0.01)
        trace = [Arrival(0.0, 0), Arrival(0.01, 0), Arrival(10.0, 0)]
        out = serial_baseline(trace, [32, 32, 32], sm)
        # svc = 0.04: req2 queues behind req1; req3 arrives to an idle server
        assert out["p50"] == pytest.approx(0.04)
        assert out["mean"] == pytest.approx((0.04 + 0.07 + 0.04) / 3)
        assert out["makespan"] == pytest.approx(10.04)
        assert out["completed"] == 3

    def test_queue_bound_sheds(self):
        sm = ServiceModel(batch_seconds=1.0, token_seconds=0.0,
                          item_seconds=0.0)
        trace = [Arrival(0.0, 0), Arrival(0.1, 0), Arrival(0.2, 0)]
        out = serial_baseline(trace, [32, 32, 32], sm, queue_bound=1)
        assert out["shed"] == 1
        assert out["completed"] == 2

    def test_length_mismatch(self):
        with pytest.raises(ValueError):
            serial_baseline([Arrival(0.0, 0)], [32, 32], ServiceModel())
