"""``repro.imaging`` — image-processing substrate for APF preprocessing.

Implements the exact pipeline of paper §III-A step 1: Gaussian blur followed
by Canny edge detection, plus the resize kernels APF's patch downscaling
(step 4') uses. Everything is pure vectorized NumPy/SciPy.
"""

from .filters import gaussian_blur, gaussian_kernel1d, sobel_gradients
from .canny import canny_edges
from .resize import (downscale_pow2, pad_to_pow2, resize_area,
                     resize_bilinear, resize_nearest)
from .normalize import normalize01, to_grayscale

__all__ = [
    "gaussian_blur", "gaussian_kernel1d", "sobel_gradients",
    "canny_edges",
    "resize_area", "resize_bilinear", "resize_nearest", "downscale_pow2",
    "pad_to_pow2",
    "normalize01", "to_grayscale",
]
