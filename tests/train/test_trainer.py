"""Tests for the trainer, history bookkeeping, and task adapters."""

import numpy as np
import pytest

from repro import nn
from repro.data import generate_ct_slice, generate_wsi
from repro.models import (HIPTLite, UNet, UNETR2D, ViTClassifier, ViTSegmenter)
from repro.patching import AdaptivePatcher, UniformPatcher
from repro.train import (ImageClassificationTask, ImageSegmentationTask,
                         SequenceClassificationTask, TokenSegmentationTask,
                         Trainer, TrainingHistory, UNETRTask, prepare_image)


def paip_samples(n=4, z=32):
    return [generate_wsi(z, seed=i) for i in range(n)]


class TestHistory:
    def test_record_and_best(self):
        h = TrainingHistory()
        for i, m in enumerate([50.0, 70.0, 65.0]):
            h.record(1.0 - i * 0.1, 1.0, m, 0.5, 1e-4)
        assert h.epochs == 3
        assert h.best_metric == 70.0

    def test_convergence_epoch(self):
        h = TrainingHistory()
        for m in [10, 40, 68, 69, 70, 70]:
            h.record(0, 0, m, 2.0, 1e-4)
        assert h.convergence_epoch(fraction=0.95) == 3  # 68 ≥ 0.95*70

    def test_time_to_convergence(self):
        h = TrainingHistory()
        for m in [10, 70, 70]:
            h.record(0, 0, m, 3.0, 1e-4)
        assert h.time_to_convergence(0.98) == 6.0

    def test_empty_history_raises(self):
        with pytest.raises(ValueError):
            TrainingHistory().best_metric
        with pytest.raises(ValueError):
            TrainingHistory().convergence_epoch()
        with pytest.raises(ValueError):
            TrainingHistory().loss_stability()

    def test_stability(self):
        h = TrainingHistory()
        for v in [1.0, 1.0, 1.0]:
            h.record(0, v, 0, 0, 0)
        assert h.loss_stability() == 0.0

    def test_to_dict_roundtrip(self):
        h = TrainingHistory()
        h.record(1, 2, 3, 4, 5)
        d = h.to_dict()
        assert d["train_loss"] == [1.0] and d["lr"] == [5.0]


class TestPrepareImage:
    def test_gray_to_chw(self):
        out = prepare_image(np.zeros((8, 8)), 1)
        assert out.shape == (1, 8, 8)

    def test_rgb_to_gray(self):
        img = np.ones((8, 8, 3)) * np.array([0.2, 0.4, 0.6])
        out = prepare_image(img, 1)
        np.testing.assert_allclose(out, 0.4)

    def test_gray_to_rgb(self):
        assert prepare_image(np.zeros((8, 8)), 3).shape == (3, 8, 8)

    def test_rgb_passthrough(self):
        assert prepare_image(np.zeros((8, 8, 3)), 3).shape == (3, 8, 8)

    def test_impossible_adaptation(self):
        with pytest.raises(ValueError):
            prepare_image(np.zeros((8, 8, 3)), 2)


class TestTrainerCore:
    def _quick_task(self):
        model = ViTSegmenter(patch_size=8, channels=1, dim=16, depth=1,
                             heads=2, max_len=32)
        patcher = UniformPatcher(8)
        return TokenSegmentationTask(model, patcher, channels=1)

    def test_fit_records_history(self):
        task = self._quick_task()
        samples = paip_samples(4)
        tr = Trainer(task, nn.AdamW(task.parameters(), lr=1e-3), batch_size=2)
        hist = tr.fit(samples[:3], samples[3:], epochs=2)
        assert hist.epochs == 2
        assert all(np.isfinite(hist.train_loss))
        assert all(0 <= m <= 100 for m in hist.val_metric)

    def test_scheduler_steps_per_epoch(self):
        task = self._quick_task()
        opt = nn.AdamW(task.parameters(), lr=1e-3)
        sched = nn.MultiStepLR(opt, milestones=[1], gamma=0.1)
        tr = Trainer(task, opt, scheduler=sched, batch_size=2)
        hist = tr.fit(paip_samples(3)[:2], paip_samples(3)[2:], epochs=2)
        assert hist.lr[-1] == pytest.approx(1e-4)

    def test_loss_decreases_on_fixed_data(self):
        task = self._quick_task()
        samples = paip_samples(3)
        tr = Trainer(task, nn.AdamW(task.parameters(), lr=3e-3), batch_size=3,
                     seed=1)
        hist = tr.fit(samples, samples, epochs=6)
        assert hist.train_loss[-1] < hist.train_loss[0]

    def test_validation_args(self):
        task = self._quick_task()
        tr = Trainer(task, nn.AdamW(task.parameters(), lr=1e-3))
        with pytest.raises(ValueError):
            tr.fit([], paip_samples(1), epochs=1)
        with pytest.raises(ValueError):
            tr.fit(paip_samples(1), paip_samples(1), epochs=0)
        with pytest.raises(ValueError):
            Trainer(task, nn.AdamW(task.parameters(), lr=1e-3), batch_size=0)

    def test_seconds_per_image_positive(self):
        task = self._quick_task()
        tr = Trainer(task, nn.AdamW(task.parameters(), lr=1e-3), batch_size=2)
        spi = tr.seconds_per_image(paip_samples(2))
        assert spi > 0


class TestTaskAdapters:
    def test_token_task_uniform_and_adaptive(self):
        samples = paip_samples(2)
        for patcher in (UniformPatcher(8),
                        AdaptivePatcher(patch_size=8, split_value=8.0,
                                        target_length=16)):
            model = ViTSegmenter(patch_size=8, channels=1, dim=16, depth=1,
                                 heads=2, max_len=32)
            task = TokenSegmentationTask(model, patcher, channels=1)
            loss = task.batch_loss(samples)
            assert np.isfinite(float(loss.data))
            assert 0 <= task.evaluate(samples) <= 100

    def test_unetr_task(self):
        samples = paip_samples(2)
        model = UNETR2D(patch_size=8, channels=1, dim=16, depth=2, heads=2,
                        max_len=32, decoder_ch=8)
        task = UNETRTask(model, UniformPatcher(8), channels=1)
        assert np.isfinite(task.val_loss(samples))
        assert 0 <= task.evaluate(samples) <= 100

    def test_image_seg_task_binary(self):
        samples = paip_samples(2)
        task = ImageSegmentationTask(UNet(channels=1, widths=(8, 16)), channels=1)
        assert np.isfinite(task.val_loss(samples))
        assert 0 <= task.evaluate(samples) <= 100

    def test_image_seg_task_multiclass_btcv(self):
        samples = [generate_ct_slice(32, seed=i) for i in range(2)]
        task = ImageSegmentationTask(UNet(channels=1, out_channels=14,
                                          widths=(8, 16)),
                                     channels=1, multiclass=14)
        assert np.isfinite(task.val_loss(samples))
        score = task.evaluate(samples)
        assert 0 <= score <= 100

    def test_sequence_classification_task(self):
        samples = [generate_wsi(32, seed=i, organ=i % 6) for i in range(3)]
        model = ViTClassifier(patch_size=8, channels=3, dim=16, depth=1,
                              heads=2, max_len=32, num_classes=6)
        task = SequenceClassificationTask(
            model, AdaptivePatcher(patch_size=8, split_value=8.0,
                                   target_length=16), channels=3)
        assert np.isfinite(task.val_loss(samples))
        assert 0 <= task.evaluate(samples) <= 100

    def test_image_classification_task_hipt(self):
        samples = [generate_wsi(32, seed=i, organ=i % 6) for i in range(2)]
        model = HIPTLite(image_size=32, channels=3, region_size=16,
                         patch_size=4, dim=16, num_classes=6)
        task = ImageClassificationTask(model, channels=3)
        assert np.isfinite(task.val_loss(samples))
        assert 0 <= task.evaluate(samples) <= 100
