"""Table III regeneration: dice improvement from smaller, adaptive patches.

Paper: at every resolution APF lets the same model use ~8x smaller patches,
improving dice by 3.3-7.1% (avg 5.5%) over uniform patching.
"""


def test_table3_dice_improvement(once):
    from repro.experiments import ExperimentScale, run_table3

    scale = ExperimentScale(resolution=64, n_samples=10, epochs=8, dim=32,
                            depth=3)
    r = once(run_table3, scale)
    print("\n" + r.rows())
    print(f"improvement vs best uniform transformer: "
          f"{r.transformer_improvement:+.2f}%")
    for a, u in r.equal_cost_pairs():
        print(f"equal-cost: {a.model} (L={a.seq_len:.0f}, {a.dice:.1f}%) vs "
              f"{u.model} (L={u.seq_len:.0f}, {u.dice:.1f}%)")
    # The paper's core quality claim: the best APF configuration beats the
    # best uniform-patch transformer (paper: +4.11% at 512^2).
    assert r.transformer_improvement > 0.0
    # And the best APF row uses a smaller patch than the best uniform row.
    best_apf = r.best("APF")
    best_uni = max((row for row in r.rows_
                    if not row.model.startswith("APF") and row.patch),
                   key=lambda row: row.dice)
    assert best_apf.patch <= best_uni.patch
