"""Volumetric adaptive patching: APF for 3-D volumes via an octree.

The natural extension of the paper (its carrier UNETR is natively 3-D): the
same blur→detail→tree→Morton→downscale pipeline, with cubes instead of
squares. Detail is gradient-magnitude density (a 3-D Canny is ill-defined;
gradient energy is the standard surrogate). Tokens are ``Pm^3`` cubes
flattened to ``C*Pm^3`` vectors — consumable by the same ViT backbone.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Optional

import numpy as np
from scipy import ndimage

from ..quadtree.octree import OctreeLeaves, build_octree

__all__ = ["VolumeAPFConfig", "VolumetricAdaptivePatcher", "VolumeSequence"]


@dataclass
class VolumeSequence:
    """Model-ready sequence of same-size cubic patches + geometry."""

    patches: np.ndarray            #: (L, Pm, Pm, Pm)
    zs: np.ndarray
    ys: np.ndarray
    xs: np.ndarray
    sizes: np.ndarray
    volume_size: int
    patch_size: int

    def __len__(self) -> int:
        return len(self.patches)

    def tokens(self) -> np.ndarray:
        return self.patches.reshape(len(self), -1)

    def coords(self) -> np.ndarray:
        """(L, 4): normalized center (z, y, x) + log2 size."""
        n = float(self.volume_size)
        c = np.stack([
            (self.zs + self.sizes / 2) / n,
            (self.ys + self.sizes / 2) / n,
            (self.xs + self.sizes / 2) / n,
            np.log2(np.maximum(self.sizes, 1)) / max(np.log2(n), 1.0),
        ], axis=1)
        return c

    def scatter_to_volume(self, token_values: np.ndarray,
                          fill: float = 0.0) -> np.ndarray:
        """Broadcast per-token scalars (L,) or cubes (L, Pm, Pm, Pm) back
        onto the (Z, Z, Z) volume."""
        tv = np.asarray(token_values)
        n = self.volume_size
        out = np.full((n, n, n), fill, dtype=np.float64)
        pm = self.patch_size
        for i in range(len(self)):
            s = int(self.sizes[i])
            z, y, x = int(self.zs[i]), int(self.ys[i]), int(self.xs[i])
            if tv.ndim == 1:
                out[z:z + s, y:y + s, x:x + s] = tv[i]
            else:
                f = s // pm
                cube = tv[i]
                if f > 1:
                    cube = np.repeat(np.repeat(np.repeat(cube, f, 0), f, 1), f, 2)
                out[z:z + s, y:y + s, x:x + s] = cube
        return out


@dataclass
class VolumeAPFConfig:
    """Hyper-parameters of the volumetric patcher."""

    patch_size: int = 4
    split_value: float = 8.0
    max_depth: Optional[int] = None
    #: Gaussian pre-smoothing sigma for the gradient detail map.
    blur_sigma: float = 1.0
    #: Quantile of gradient magnitude counted as "detail" (edge surrogate).
    detail_quantile: float = 0.97

    def __post_init__(self) -> None:
        p = self.patch_size
        if p < 1 or (p & (p - 1)):
            raise ValueError(f"patch_size must be a positive power of two, got {p}")
        if not 0.0 < self.detail_quantile < 1.0:
            raise ValueError("detail_quantile must be in (0, 1)")


class VolumetricAdaptivePatcher:
    """Octree-based APF for (Z, Z, Z) volumes."""

    def __init__(self, config: Optional[VolumeAPFConfig] = None, **overrides):
        if config is None:
            config = VolumeAPFConfig(**overrides)
        elif overrides:
            raise ValueError("pass either a config object or keyword overrides")
        self.config = config

    def detail_map(self, volume: np.ndarray) -> np.ndarray:
        """Gradient-magnitude detail mask (3-D edge surrogate)."""
        v = np.asarray(volume, dtype=np.float64)
        if v.ndim != 3:
            raise ValueError(f"expected a 3-D volume, got shape {v.shape}")
        smooth = ndimage.gaussian_filter(v, self.config.blur_sigma)
        gz, gy, gx = np.gradient(smooth)
        mag = np.sqrt(gz ** 2 + gy ** 2 + gx ** 2)
        thr = np.quantile(mag, self.config.detail_quantile)
        return (mag > thr).astype(np.float64)

    def build_tree(self, volume: np.ndarray) -> OctreeLeaves:
        detail = self.detail_map(volume)
        n = detail.shape[0]
        cfg = self.config
        depth = (cfg.max_depth if cfg.max_depth is not None
                 else int(np.log2(n // cfg.patch_size)))
        return build_octree(detail, cfg.split_value, depth,
                            min_size=cfg.patch_size)

    def __call__(self, volume: np.ndarray) -> VolumeSequence:
        return self.extract(volume)

    def extract(self, volume: np.ndarray) -> VolumeSequence:
        v = np.asarray(volume, dtype=np.float64)
        leaves = self.build_tree(v).sorted_by_morton()
        pm = self.config.patch_size
        n = len(leaves)
        patches = np.zeros((n, pm, pm, pm), dtype=np.float64)
        for s in np.unique(leaves.sizes):
            s = int(s)
            idx = np.flatnonzero(leaves.sizes == s)
            for i in idx:
                z, y, x = (int(leaves.zs[i]), int(leaves.ys[i]),
                           int(leaves.xs[i]))
                cube = v[z:z + s, y:y + s, x:x + s]
                if s > pm:
                    f = s // pm
                    cube = cube.reshape(pm, f, pm, f, pm, f).mean(axis=(1, 3, 5))
                patches[i] = cube
        return VolumeSequence(patches, leaves.zs.copy(), leaves.ys.copy(),
                              leaves.xs.copy(), leaves.sizes.copy(),
                              v.shape[0], pm)
