"""Setuptools shim so `pip install -e .` works with older toolchains
(the offline environment lacks the `wheel` package needed for PEP 517
editable installs)."""

from setuptools import find_packages, setup

setup(
    name="repro",
    version="1.0.0",
    description=("Adaptive Patching for High-resolution Image Segmentation "
                 "with Transformers (SC'24) - full reproduction"),
    package_dir={"": "src"},
    packages=find_packages(where="src"),
    python_requires=">=3.9",
    install_requires=["numpy>=1.22", "scipy>=1.8"],
)
