"""Streaming schedule planner — macro-tiles, Z-slabs, working-set estimates.

Decomposes a scene into the units the bounded-memory runner streams:

* **Images** split into *quadtree-aligned* macro-tiles: the tile side is a
  power of two and every origin is a multiple of it, so each macro-tile is
  exactly one cell of the virtual global quadtree over the slide — the APF
  partition of a tile is the subtree that the whole-slide quadtree would
  grow below that cell. Tiles are scheduled along the Morton curve by
  default, matching the paper's token ordering at the macro level (and
  keeping successive tiles spatially adjacent, which is what makes a
  small synthesis/IO cache effective).
* **Volumes** split into Z-slabs of whole slices (the paper's BTCV slice
  protocol has no inter-slice coupling, so any slab depth is exact).

The plan also carries a per-tile **working-set estimate** — the bytes the
runner holds while one macro-tile is in flight (input pixels, edge-detection
planes, token buffers, probability/class maps). The streaming bench gates
its measured peak against a small multiple of this estimate, which is what
turns "bounded memory" from a slogan into an assertion.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List, Optional, Tuple

import numpy as np

from ..quadtree.hilbert import hilbert_sort_order
from ..quadtree.morton import morton_sort_order

__all__ = ["MacroTile", "StreamPlan", "plan_scene", "plan_volume"]

#: Upper bound on float64 working planes Canny-based APF preprocessing holds
#: at once (gray, blurred, gx, gy, magnitude, angle, NMS, label map).
_PREPROC_PLANES = 8


@dataclass(frozen=True)
class MacroTile:
    """One schedulable unit: a 2-D macro-tile or a 1-D Z-slab.

    ``origin``/``size`` address the scene through
    :meth:`TiledSource.read_region`; ``index`` is the tile's position in
    the plan's schedule. ``name`` is *origin-derived* (not index-derived),
    so checkpoint artifacts stay valid if the schedule order changes.
    """

    index: int
    origin: Tuple[int, ...]
    size: Tuple[int, ...]

    @property
    def name(self) -> str:
        if len(self.origin) == 1:
            return f"slab_z{self.origin[0]:06d}_d{self.size[0]:04d}"
        return f"tile_y{self.origin[0]:06d}_x{self.origin[1]:06d}"

    @property
    def npixels(self) -> int:
        return int(np.prod(self.size))

    def slices(self) -> Tuple[slice, ...]:
        return tuple(slice(o, o + s) for o, s in zip(self.origin, self.size))


@dataclass
class StreamPlan:
    """A deterministic streaming schedule plus its memory model.

    ``working_set`` is a per-component byte estimate for one in-flight
    macro-tile; :meth:`working_set_bytes` is its total. ``scene_bytes`` is
    what materializing the whole scene as float64 would cost — the number
    streaming exists to avoid.
    """

    kind: str
    scene_shape: Tuple[int, ...]
    tile: int
    order: str
    tiles: List[MacroTile]
    channels: int = 1
    out_channels: int = 1
    working_set: Dict[str, int] = field(default_factory=dict)

    def working_set_bytes(self) -> int:
        """Estimated resident bytes while one macro-tile is in flight."""
        return int(sum(self.working_set.values()))

    @property
    def scene_bytes(self) -> int:
        """Bytes to materialize the full scene as float64 (the avoided cost)."""
        return int(np.prod(self.scene_shape)) * 8

    def describe(self) -> dict:
        """JSON-able summary for benchmark artifacts and logs."""
        return {
            "kind": self.kind,
            "scene_shape": list(self.scene_shape),
            "tile": self.tile,
            "order": self.order,
            "n_tiles": len(self.tiles),
            "channels": self.channels,
            "out_channels": self.out_channels,
            "working_set": dict(self.working_set),
            "working_set_bytes": self.working_set_bytes(),
            "scene_bytes": self.scene_bytes,
        }


def _image_working_set(tile: int, channels: int, out_channels: int,
                       max_len: Optional[int]) -> Dict[str, int]:
    px = tile * tile
    tokens = 0
    if max_len:
        # patches (L, C, Pm, Pm) plus flattened tokens/coords — Pm² ≤ 64
        # covers every model config in the repo; dwarfed by the planes.
        tokens = max_len * channels * 64 * 8 * 2
    return {
        "input": px * channels * 8,
        "preprocess": px * _PREPROC_PLANES * 8,
        "tokens": tokens,
        "probabilities": px * out_channels * 8,
        "class_map": px * 8,
    }


def plan_scene(shape: Tuple[int, ...], tile: int = 1024, *,
               order: str = "morton", out_channels: int = 1,
               max_len: Optional[int] = None) -> StreamPlan:
    """Plan a 2-D scene ``(H, W)`` or ``(H, W, C)`` into macro-tiles.

    ``tile`` must be a power of two dividing both H and W — the quadtree
    alignment that makes each macro-tile a cell of the virtual global
    quadtree. ``order`` is ``"morton"`` (default), ``"hilbert"`` (strictly
    better tile-to-tile locality — no diagonal quadrant jumps — which also
    improves merge-run locality for the token-sparsity pass) or
    ``"rowmajor"``. ``max_len`` (the serving model's positional capacity)
    refines the token term of the working-set estimate.
    """
    if len(shape) not in (2, 3):
        raise ValueError(f"expected (H, W) or (H, W, C), got {shape}")
    h, w = int(shape[0]), int(shape[1])
    channels = int(shape[2]) if len(shape) == 3 else 1
    if tile < 1 or tile & (tile - 1):
        raise ValueError(f"tile must be a positive power of two, got {tile}")
    if h < 1 or w < 1 or h % tile or w % tile:
        raise ValueError(f"tile {tile} must divide scene dims {(h, w)} "
                         "(quadtree alignment)")
    if order not in ("morton", "hilbert", "rowmajor"):
        raise ValueError(f"unknown order {order!r}")
    ny, nx = h // tile, w // tile
    tys, txs = np.divmod(np.arange(ny * nx), nx)
    if order == "morton":
        perm = morton_sort_order(tys, txs)
        tys, txs = tys[perm], txs[perm]
    elif order == "hilbert":
        perm = hilbert_sort_order(tys, txs)
        tys, txs = tys[perm], txs[perm]
    tiles = [MacroTile(i, (int(ty) * tile, int(tx) * tile), (tile, tile))
             for i, (ty, tx) in enumerate(zip(tys, txs))]
    return StreamPlan(kind="image", scene_shape=tuple(int(s) for s in shape),
                      tile=tile, order=order, tiles=tiles, channels=channels,
                      out_channels=out_channels,
                      working_set=_image_working_set(tile, channels,
                                                     out_channels, max_len))


def plan_volume(shape: Tuple[int, int, int], slab: int = 8, *,
                out_channels: int = 1,
                max_len: Optional[int] = None) -> StreamPlan:
    """Plan a ``(S, Z, Z)`` volume into Z-slabs of ``slab`` slices.

    The last slab may be ragged — slices are independent under the BTCV
    protocol, so any slab decomposition reproduces the per-slice reference
    exactly. Slabs are scheduled in Z order.
    """
    if len(shape) != 3:
        raise ValueError(f"expected a (S, Z, Z) volume shape, got {shape}")
    s, z1, z2 = (int(d) for d in shape)
    if min(s, z1, z2) < 1:
        raise ValueError(f"volume dims must be positive, got {shape}")
    if not 1 <= slab <= s:
        raise ValueError(f"slab depth must be in [1, {s}], got {slab}")
    tiles = [MacroTile(i, (z0,), (min(slab, s - z0),))
             for i, z0 in enumerate(range(0, s, slab))]
    px = slab * z1 * z2
    tokens = max_len * 64 * 8 * 2 * slab if max_len else 0
    working_set = {
        "input": px * 8,
        "preprocess": z1 * z2 * _PREPROC_PLANES * 8,   # one slice at a time
        "tokens": tokens,
        "probabilities": px * out_channels * 8,
        "class_map": px * 8,
    }
    return StreamPlan(kind="volume", scene_shape=(s, z1, z2), tile=slab,
                      order="zorder", tiles=tiles, channels=1,
                      out_channels=out_channels, working_set=working_set)
