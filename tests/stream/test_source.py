"""Tests for tiled scene sources: the array adapter and the procedural
virtual WSI (determinism, assembly, masks, validation, caching)."""

import numpy as np
import pytest

from repro.stream import ArraySource, VirtualWSISource


class TestArraySource:
    def test_image_kind_inferred(self):
        assert ArraySource(np.zeros((8, 8))).kind == "image"
        assert ArraySource(np.zeros((8, 8, 3))).kind == "image"
        assert ArraySource(np.zeros((8, 8, 1))).kind == "image"

    def test_volume_kind_inferred(self):
        assert ArraySource(np.zeros((6, 32, 32))).kind == "volume"

    def test_explicit_kind_wins(self):
        src = ArraySource(np.zeros((6, 32, 32)), kind="volume")
        assert src.kind == "volume"

    def test_read_region_matches_slicing(self):
        rng = np.random.default_rng(0)
        arr = rng.random((16, 24, 3))
        src = ArraySource(arr)
        np.testing.assert_array_equal(src.read_region((4, 8), (8, 16)),
                                      arr[4:12, 8:24])

    def test_volume_slab_read(self):
        vol = np.arange(5 * 4 * 4, dtype=float).reshape(5, 4, 4)
        src = ArraySource(vol, kind="volume")
        np.testing.assert_array_equal(src.read_region((2,), (2,)), vol[2:4])

    def test_validation(self):
        with pytest.raises(ValueError):
            ArraySource(np.zeros(4))                       # 1-D scene
        with pytest.raises(ValueError):
            ArraySource(np.zeros((8, 8)), kind="volume")   # 2-D volume
        with pytest.raises(ValueError):
            ArraySource(np.zeros((8, 8)), kind="plenoptic")
        src = ArraySource(np.zeros((8, 8)))
        with pytest.raises(ValueError):
            src.read_region((4, 4), (8, 8))                # out of bounds
        with pytest.raises(ValueError):
            src.read_region((0, 0), (0, 4))                # empty region
        with pytest.raises(ValueError):
            src.read_region((0,), (4,))                    # wrong arity


class TestVirtualWSI:
    def test_deterministic_across_instances(self):
        a = VirtualWSISource(128, seed=3, organ=1, tile=32)
        b = VirtualWSISource(128, seed=3, organ=1, tile=32)
        np.testing.assert_array_equal(a.read_region((32, 64), (32, 32)),
                                      b.read_region((32, 64), (32, 32)))

    def test_deterministic_across_access_order(self):
        a = VirtualWSISource(128, seed=3, organ=1, tile=32, cache_tiles=1)
        b = VirtualWSISource(128, seed=3, organ=1, tile=32, cache_tiles=1)
        first = a.read_region((0, 0), (32, 32))
        a.read_region((96, 96), (32, 32))        # evicts (0, 0) from cache
        b.read_region((96, 96), (32, 32))        # other instance, other order
        np.testing.assert_array_equal(first, a.read_region((0, 0), (32, 32)))
        np.testing.assert_array_equal(first, b.read_region((0, 0), (32, 32)))

    def test_seeds_and_organs_differ(self):
        base = VirtualWSISource(128, seed=0, organ=0, tile=32)
        other_seed = VirtualWSISource(128, seed=1, organ=0, tile=32)
        other_organ = VirtualWSISource(128, seed=0, organ=5, tile=32)
        t = ((0, 0), (32, 32))
        assert not np.array_equal(base.read_region(*t),
                                  other_seed.read_region(*t))
        assert not np.array_equal(base.read_region(*t),
                                  other_organ.read_region(*t))

    def test_unaligned_read_assembles_tiles(self):
        src = VirtualWSISource(128, seed=7, organ=2, tile=32)
        ref = VirtualWSISource(128, seed=7, organ=2, tile=32, cache_tiles=16)
        full = np.concatenate(
            [np.concatenate([ref.read_region((ty * 32, tx * 32), (32, 32))
                             for tx in range(4)], axis=1)
             for ty in range(4)], axis=0)
        region = src.read_region((16, 24), (96, 80))
        np.testing.assert_array_equal(region, full[16:112, 24:104])

    def test_image_and_mask_agree(self):
        src = VirtualWSISource(64, seed=2, organ=4, tile=32)
        sample = src.tile_sample(1, 0)
        assert sample.image.shape == (32, 32, 3)
        assert sample.mask.shape == (32, 32)
        assert sample.organ == 4
        assert set(np.unique(sample.mask)).issubset({0.0, 1.0})
        np.testing.assert_array_equal(
            sample.mask, src.read_mask_region((32, 0), (32, 32)))
        assert 0.0 <= sample.image.min() and sample.image.max() <= 1.0

    def test_organ_drawn_deterministically_when_none(self):
        a = VirtualWSISource(128, seed=11, tile=32)
        b = VirtualWSISource(128, seed=11, tile=32)
        assert a.organ == b.organ
        assert 0 <= a.organ < 6

    def test_aligned_reads_are_frozen(self):
        src = VirtualWSISource(64, seed=0, organ=0, tile=32)
        tile = src.read_region((0, 0), (32, 32))
        assert not tile.flags.writeable

    def test_validation(self):
        with pytest.raises(ValueError):
            VirtualWSISource(128, tile=48)            # not a power of two
        with pytest.raises(ValueError):
            VirtualWSISource(100, tile=32)            # not a multiple
        with pytest.raises(ValueError):
            VirtualWSISource(128, tile=32, organ=6)   # organ out of range
        with pytest.raises(ValueError):
            VirtualWSISource(128, tile=32, cache_tiles=0)
        src = VirtualWSISource(128, tile=32)
        with pytest.raises(ValueError):
            src.read_region((0, 0), (256, 256))       # beyond the slide
