"""The batched APF serving/training front-end.

:class:`PatchPipeline` wraps the batched patchers with the three things a
real workload needs on top of raw batch kernels:

* an **LRU sequence cache** (:class:`~repro.patching.cache.LRUPatchCache`)
  keyed on caller ids or image content hashes — the natural (pre-drop)
  sequence is cached, so every epoch after the first costs a dictionary
  lookup per image while the drop stage stays fresh (Algorithm 1's
  amortization, same contract as :class:`~repro.patching.cache.CachingPatcher`);
* a **worker pool** (``workers=N``, thread- or process-based) that shards
  cache misses into sub-batches — workers only compute deterministic natural
  sequences, so results are identical for any worker count;
* **collation** to a fixed length ``L`` with per-item seeded drop/pad,
  producing the ``(B, L, C·Pm²)`` tensor + validity mask the models consume.

The pipeline is **dimension-generic**: construct it with an
:class:`~repro.patching.adaptive.APFConfig` for 2-D images (quadtree APF) or
a :class:`~repro.patching.volumetric.VolumeAPFConfig` for 3-D volumes
(octree APF) — cache, workers, and collation behave identically, and
volumetric batches collate to ``(B, L, Pm³)`` tokens with (z, y, x, scale)
coordinates.
"""

from __future__ import annotations

import hashlib
import threading
import time
from concurrent.futures import ProcessPoolExecutor, ThreadPoolExecutor
from typing import Hashable, List, Optional, Sequence, Union

import numpy as np

from ..patching.adaptive import APFConfig
from ..patching.cache import LRUPatchCache
from ..patching.sequence import PatchSequence
from ..patching.volumetric import VolumeAPFConfig
from ..train.tasks import prepare_image
from .batched import BatchedAdaptivePatcher
from .collate import CollatedBatch, collate_batch
from .volumetric import BatchedVolumetricPatcher

__all__ = ["PatchPipeline", "content_key"]


def _key_seed(key: Hashable) -> int:
    """Stable non-negative int for RNG seeding from an arbitrary cache key.

    Plain ints pass through; everything else is hashed with blake2b so the
    seed survives process boundaries (built-in ``hash`` is salted per run).
    """
    if isinstance(key, (int, np.integer)) and not isinstance(key, bool):
        return abs(int(key))
    digest = hashlib.blake2b(repr(key).encode(), digest_size=8).digest()
    return int.from_bytes(digest, "little")


def content_key(image: np.ndarray) -> Hashable:
    """Stable content hash of an image (used when the caller has no ids).

    The one digest shared by every cache layer: the pipeline's sequence
    LRU, the engine's result cache, and the fleet router's rendezvous
    affinity all key on this value, so no two layers can ever disagree
    about what "the same image" is.
    """
    a = np.ascontiguousarray(image)
    return (a.shape, a.dtype.str,
            hashlib.blake2b(a.tobytes(), digest_size=16).hexdigest())


#: Backwards-compatible alias — ``content_key`` predates its public name.
_content_key = content_key


def _extract_shard(config: Union[APFConfig, VolumeAPFConfig],
                   images: List[np.ndarray]) -> List[PatchSequence]:
    """Worker entry point: natural sequences for one shard (picklable)."""
    cls = (BatchedVolumetricPatcher if isinstance(config, VolumeAPFConfig)
           else BatchedAdaptivePatcher)
    return cls(config).extract_natural_batch(images)


class PatchPipeline:
    """Batched, cached, optionally parallel APF preprocessing.

    Parameters
    ----------
    config:
        The :class:`APFConfig` (2-D quadtree APF) or :class:`VolumeAPFConfig`
        (3-D octree APF) shared by all workers; keyword overrides construct
        an :class:`APFConfig`.
    workers:
        0 runs in-process; ``N > 0`` shards cache misses over ``N`` workers.
    executor:
        ``"thread"`` (default — NumPy/SciPy release the GIL in the hot loops)
        or ``"process"`` (true parallelism; images are pickled to workers).
    cache_items:
        LRU capacity in sequences; ``0`` disables caching entirely.
    channels:
        If set, images are channel-adapted (grayscale/replicate) before
        patching — matches what the task adapters feed their models.
        2-D only: volumes are single-channel by construction.

    Examples
    --------
    >>> pipe = PatchPipeline(patch_size=4, split_value=8.0, target_length=256)
    >>> batch = pipe.collate([s.image for s in samples])   # CollatedBatch
    >>> logits = model.forward(batch.tokens, batch.coords, batch.valid)

    >>> vpipe = PatchPipeline(VolumeAPFConfig(target_length=256))
    >>> vbatch = vpipe.collate(volumes)        # tokens (B, 256, Pm³)
    """

    def __init__(self, config: Optional[Union[APFConfig, VolumeAPFConfig]] = None,
                 *, workers: int = 0, executor: str = "thread",
                 cache_items: int = 1024, channels: Optional[int] = None,
                 **overrides):
        if workers < 0:
            raise ValueError("workers must be >= 0")
        if executor not in ("thread", "process"):
            raise ValueError(f"unknown executor {executor!r}")
        self.volumetric = isinstance(config, VolumeAPFConfig)
        if self.volumetric:
            if overrides:
                raise ValueError("pass either a config object or keyword "
                                 "overrides")
            if channels is not None:
                raise ValueError("channels= does not apply to volumetric "
                                 "pipelines (volumes are single-channel)")
            self.patcher = BatchedVolumetricPatcher(config)
        else:
            self.patcher = BatchedAdaptivePatcher(config, **overrides)
        self.workers = workers
        self.executor = executor
        self.cache = LRUPatchCache(cache_items) if cache_items else None
        self.channels = channels
        # One pipeline is shared by engine submit threads and the batcher:
        # the LRU's OrderedDict reordering is not atomic, so all cache
        # access goes through this lock (extraction itself runs outside it).
        self._cache_lock = threading.Lock()

    @property
    def config(self) -> Union[APFConfig, VolumeAPFConfig]:
        return self.patcher.config

    # -- core ------------------------------------------------------------
    def _adapt(self, image: np.ndarray) -> np.ndarray:
        if self.channels is None:
            return np.asarray(image)
        return prepare_image(image, self.channels).transpose(1, 2, 0)

    def _compute_natural(self, images: List[np.ndarray]) -> List[PatchSequence]:
        if self.workers <= 1 or len(images) < 2:
            return self.patcher.extract_natural_batch(images)
        size = -(-len(images) // self.workers)   # ceil division
        shards = [images[i:i + size] for i in range(0, len(images), size)]
        pool_cls = (ThreadPoolExecutor if self.executor == "thread"
                    else ProcessPoolExecutor)
        with pool_cls(max_workers=len(shards)) as pool:
            parts = list(pool.map(_extract_shard,
                                  [self.config] * len(shards), shards))
        return [seq for part in parts for seq in part]

    def process(self, images: Sequence[np.ndarray],
                keys: Optional[Sequence[Hashable]] = None
                ) -> List[PatchSequence]:
        """Natural (no drop/pad) sequences for a batch, cache-aware.

        ``keys`` are stable per-image cache ids (e.g. dataset indices);
        omitted keys fall back to content hashing.
        """
        images = [self._adapt(im) for im in images]
        if self.cache is None:
            return self._compute_natural(images)
        if keys is None:
            keys = [content_key(im) for im in images]
        out: List[Optional[PatchSequence]] = [None] * len(images)
        miss_idx = []
        with self._cache_lock:
            for i, key in enumerate(keys):
                seq = self.cache.get(key)
                if seq is None:
                    miss_idx.append(i)
                else:
                    out[i] = seq
        if miss_idx:
            # Concurrent misses on the same key may both compute; sequences
            # are deterministic, so the duplicate put is a harmless refresh.
            t0 = time.perf_counter()
            computed = self._compute_natural([images[i] for i in miss_idx])
            build_s = time.perf_counter() - t0
            with self._cache_lock:
                self.cache.build_seconds += build_s
                for i, seq in zip(miss_idx, computed):
                    self.cache.put(keys[i], seq)
                    out[i] = seq
        return out  # type: ignore[return-value]

    def __call__(self, images, keys: Optional[Sequence[Hashable]] = None):
        """Batch call → list of sequences; a single array — (Z, Z[, C]) for
        images, (Z, Z, Z) for volumes — → one sequence with drop/pad applied
        (drop-in for the task adapters, same contract as
        :class:`~repro.patching.cache.CachingPatcher`)."""
        single_ndim = (3,) if self.volumetric else (2, 3)
        if isinstance(images, np.ndarray) and images.ndim in single_ndim:
            return self.extract(images, key=keys)
        return self.process(images, keys)

    def extract(self, image: np.ndarray,
                key: Optional[Hashable] = None) -> PatchSequence:
        """Single-image pathway: cached natural sequence + fresh drop/pad."""
        seq = self.process([image], None if key is None else [key])[0]
        target = self.config.target_length
        if target is None:
            return seq
        return self.patcher.fit_length(seq, target)

    # -- collation -------------------------------------------------------
    def collate(self, images: Sequence[np.ndarray],
                keys: Optional[Sequence[Hashable]] = None,
                length: Optional[int] = None, epoch: int = 0,
                samples: Optional[list] = None) -> CollatedBatch:
        """Process + drop/pad to ``length`` + stack into a model-ready batch.

        The drop RNG is seeded per image from ``(config.seed, epoch, id)``
        where ``id`` is the image's stable ``key`` when ``keys`` are given
        (deterministic for any worker count, batch size, or shuffle order)
        and its batch position otherwise. Every epoch still sees fresh drops
        (training augmentation).
        """
        length = length if length is not None else self.config.target_length
        if length is None:
            raise ValueError("set target_length (or pass length=) to collate")
        naturals = self.process(images, keys)
        seed = self.config.seed
        ids = ([_key_seed(k) for k in keys] if keys is not None
               else range(len(naturals)))
        fitted = [
            self.patcher.fit_length(
                seq, length, rng=np.random.default_rng((seed, epoch, i)))
            for i, seq in zip(ids, naturals)
        ]
        return collate_batch(fitted, samples=samples)

    def collate_samples(self, samples: Sequence, length: Optional[int] = None,
                        epoch: int = 0,
                        keys: Optional[Sequence[Hashable]] = None
                        ) -> CollatedBatch:
        """Collate dataset samples (objects with ``.image``) for training."""
        return self.collate([s.image for s in samples], keys=keys,
                            length=length, epoch=epoch, samples=list(samples))

    # -- task-adapter compatibility --------------------------------------
    def extract_natural(self, image: np.ndarray) -> PatchSequence:
        """Single-image natural sequence through the cache (inference path)."""
        return self.process([image])[0]

    def patchify_labels(self, mask: np.ndarray, seq: PatchSequence) -> np.ndarray:
        return self.patcher.patchify_labels(mask, seq)

    @property
    def stats(self) -> dict:
        """Cache counters (empty dict when caching is disabled)."""
        if self.cache is None:
            return {}
        with self._cache_lock:
            return {"hits": self.cache.hits, "misses": self.cache.misses,
                    "evictions": self.cache.evictions,
                    "hit_rate": self.cache.hit_rate,
                    "build_seconds": self.cache.build_seconds,
                    "items": len(self.cache)}

    def warm(self, dataset, batch_size: int = 32) -> dict:
        """Precompute the whole dataset into the cache (Algorithm 1 line 2-7:
        build ``Dp`` once before the epoch loop). Returns :attr:`stats`."""
        for start in range(0, len(dataset), batch_size):
            idx = range(start, min(start + batch_size, len(dataset)))
            samples = [dataset[i] for i in idx]
            self.process([s.image for s in samples], keys=list(idx))
        return self.stats
