"""Analytic FLOP and memory models for transformer training.

These formulas drive the cost model that projects measured laptop-scale runs
to the paper's Frontier scales (Table II/III sec/image columns). They are the
standard dense-transformer counts; the important structural fact is the
``4 L^2 D`` attention term — quadratic in sequence length — which is exactly
what APF's sequence reduction attacks.
"""

from __future__ import annotations

from dataclasses import dataclass
from math import prod
from typing import Optional, Sequence, Tuple

__all__ = ["TransformerConfig", "encoder_flops", "attention_flops",
           "training_flops", "inference_flops", "activation_bytes",
           "attention_memory_bytes", "kernel_cost"]


@dataclass(frozen=True)
class TransformerConfig:
    """Shape of a ViT-style encoder."""

    seq_len: int
    dim: int
    depth: int
    heads: int = 8
    mlp_ratio: float = 4.0

    def __post_init__(self) -> None:
        if min(self.seq_len, self.dim, self.depth, self.heads) < 1:
            raise ValueError("all transformer dimensions must be >= 1")


def attention_flops(seq_len: int, dim: int) -> float:
    """One attention block forward: QKV+output projections and the two
    ``L x L`` matmuls: ``8 L D^2 + 4 L^2 D``."""
    return 8.0 * seq_len * dim ** 2 + 4.0 * seq_len ** 2 * dim


def encoder_flops(cfg: TransformerConfig) -> float:
    """Forward FLOPs of the full encoder (attention + MLP per layer)."""
    mlp = 4.0 * cfg.mlp_ratio * cfg.seq_len * cfg.dim ** 2
    return cfg.depth * (attention_flops(cfg.seq_len, cfg.dim) + mlp)


def training_flops(cfg: TransformerConfig) -> float:
    """Training step ≈ 3x forward (forward + 2x backward)."""
    return 3.0 * encoder_flops(cfg)


def inference_flops(cfg: TransformerConfig) -> float:
    """Forward-only FLOPs for one sequence — the unit the sparsity plan
    chooser compares: dense vs. short-circuit vs. merged plans differ only
    in the effective ``seq_len`` this is evaluated at."""
    return encoder_flops(cfg)


def attention_memory_bytes(cfg: TransformerConfig, bytes_per_el: int = 4) -> float:
    """Attention matrices that must be materialized for the backward pass:
    ``depth * heads * L^2`` elements — the paper's memory wall."""
    return float(cfg.depth) * cfg.heads * cfg.seq_len ** 2 * bytes_per_el


def activation_bytes(cfg: TransformerConfig, bytes_per_el: int = 4) -> float:
    """Per-sample activation footprint: token activations + attention maps."""
    token_acts = cfg.depth * cfg.seq_len * cfg.dim * (4 + 2 * cfg.mlp_ratio)
    return token_acts * bytes_per_el + attention_memory_bytes(cfg, bytes_per_el)


def kernel_cost(op: str, in_shapes: Sequence[Tuple[int, ...]],
                out_shape: Optional[Tuple[int, ...]],
                itemsize: int = 8) -> Tuple[float, float]:
    """Analytic ``(flops, bytes_moved)`` for one compiled-executor step.

    This is the per-kernel counterpart of :func:`encoder_flops`: the
    compiler stamps each :class:`~repro.runtime.compile.ExecutionPlan`
    step with its estimate at compile time (shapes are static), and the
    kernel profiler divides measured seconds into it to report *achieved*
    GFLOP/s and GB/s per kernel — the roofline view of a plan.

    ``op`` is the plan step name (``sdpa``, ``linear_gelu``, ``matmul``,
    ``softmax``, ``reshape_copy``, …); ``in_shapes`` the operand shapes in
    step order; ``out_shape`` the output shape. Bytes are the naive
    streaming traffic (read every input once, write the output once) at
    ``itemsize`` bytes per element — fused kernels deliberately *don't*
    count their internal round trips, so achieved GB/s above the STREAM
    number is the fusion showing up. Counts follow the usual convention:
    a multiply-accumulate is 2 FLOPs, elementwise/normalization ops get
    small constant factors; unknown ops fall back to one FLOP per output
    element. Estimates, not measurements — good to the leading term.
    """
    out_n = float(prod(out_shape)) if out_shape else 0.0

    if op in ("matmul", "linear", "linear_gelu"):
        # out[..., M, N] = in0[..., M, K] @ in1[..., K, N]: 2*K per output.
        k = float(in_shapes[0][-1]) if in_shapes and in_shapes[0] else 0.0
        flops = 2.0 * out_n * k
        if op != "matmul":
            flops += out_n              # bias add
        if op == "linear_gelu":
            flops += 8.0 * out_n        # tanh-GELU polynomial + tanh
    elif op == "sdpa":
        # in_shapes = (q, kT, v [, bias]): scores S = q @ kT is the big
        # intermediate; softmax over S, then S @ v.
        q, kT = in_shapes[0], in_shapes[1]
        d_k = float(q[-1])
        s_n = float(prod(q[:-1])) * float(kT[-1])
        flops = 2.0 * s_n * d_k         # q @ kT
        flops += s_n                    # scale
        if len(in_shapes) > 3:
            flops += s_n                # bias add
        flops += 5.0 * s_n              # max/sub/exp/sum/div softmax
        flops += 2.0 * out_n * float(kT[-1])   # S @ v
    elif op == "softmax":
        flops = 5.0 * out_n
    elif op == "layer_norm":
        flops = 8.0 * out_n
    elif op.endswith("_copy"):
        flops = 0.0                     # pure data movement
    else:
        flops = out_n                   # elementwise default

    in_n = sum(float(prod(s)) for s in in_shapes if s is not None)
    nbytes = float(itemsize) * (in_n + out_n)
    return flops, nbytes
