"""Tests for the §IV-F2 per-slice-to-3D inference protocol."""

import numpy as np
import pytest

from repro.data import SyntheticBTCV
from repro.train import predict_volume, volume_dice
from repro.train.volumetric import slices_to_volume_task


class TestPredictVolume:
    def test_slicewise_application(self):
        vol = np.stack([np.full((4, 4), i, dtype=float) for i in range(3)])
        out = predict_volume(lambda s: (s > 0.5).astype(int), vol)
        assert out.shape == (3, 4, 4)
        assert out[0].sum() == 0 and out[2].sum() == 16

    def test_rejects_non_3d(self):
        with pytest.raises(ValueError):
            predict_volume(lambda s: s, np.zeros((4, 4)))


class TestVolumeDice:
    def test_perfect(self):
        v = np.random.default_rng(0).integers(0, 4, (3, 8, 8))
        assert volume_dice(v, v, 4) == 100.0

    def test_pooled_across_slices(self):
        # A class present in only one slice still counts once, volumetrically.
        t = np.zeros((2, 4, 4), dtype=int)
        t[0, 0, 0] = 1
        p = np.zeros_like(t)
        p[1, 0, 0] = 1  # predicted in the wrong slice → zero overlap
        assert volume_dice(p, t, 2) == 0.0

    def test_shape_mismatch(self):
        with pytest.raises(ValueError):
            volume_dice(np.zeros((2, 4, 4)), np.zeros((3, 4, 4)), 2)


class TestSlicesToVolume:
    def test_with_unet_task(self):
        from repro.models import UNet
        from repro.train import ImageSegmentationTask

        ds = SyntheticBTCV(32, n_subjects=1, slices_per_subject=3)
        samples = [ds[i] for i in range(3)]
        task = ImageSegmentationTask(
            UNet(channels=1, out_channels=14, widths=(8, 16)),
            channels=1, multiclass=14)
        score = slices_to_volume_task(task, samples)
        assert 0.0 <= score <= 100.0
