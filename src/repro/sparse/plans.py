"""Sparse execution plans: which tokens run, which ride a shortcut.

A :class:`SparsePlan` pairs the original natural sequence with a reduced
one and a row map reconnecting them:

* ``rows[i] >= 0`` — full-sequence token ``i`` reads its logits from row
  ``rows[i]`` of the reduced forward's output (its own row for kept
  tokens, the representative's row for merged/deduplicated tokens).
* ``rows[i] == -1`` — token ``i`` was short-circuited around the model
  entirely; its logits were copied out of the background table when the
  plan was formed (``cached``).

The table is warmed *by serving*, never by extra forwards: background
tokens whose digest the table hasn't seen stay in the reduced sequence —
one representative per distinct digest (``seeds``) — and their in-context
logits rows are inserted into the table after the forward, so the same
content short-circuits from the next sequence on.

Outputs therefore stay shape-identical to the dense path: the runtime
expands the reduced logits back to the full length before the one stitch.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Optional

import numpy as np

__all__ = ["SparsePlan", "background_mask", "take_tokens",
           "shortcircuit_plan", "merge_plan"]


@dataclass
class SparsePlan:
    """One chosen sparse execution of one natural sequence."""

    kind: str                        #: "shortcircuit" | "merge"
    full_seq: object                 #: the original natural sequence
    reduced_seq: object              #: what actually runs through the model
    rows: np.ndarray                 #: (L_full,) -> reduced row, or -1
    digests: Optional[np.ndarray]    #: (L_full,) token digests (shortcircuit)
    n_skipped: int = 0               #: tokens routed to the table
    n_merged: int = 0                #: tokens collapsed onto a representative
    seeds: Optional[np.ndarray] = None   #: full idx of first-seen bg digests
    cached: Optional[dict] = None    #: full idx -> logits row (table copies)


def background_mask(seq, threshold: float) -> Optional[np.ndarray]:
    """(L,) bool — tokens whose Eq. 6 detail mass is ``<= threshold``.

    ``None`` when the sequence carries no detail metadata (a producer
    outside the quadtree path, or post-``balance_2to1``) — no sparsity
    claims can be made without the scores.
    """
    details = getattr(seq, "details", None)
    if details is None:
        return None
    return (details <= threshold) & seq.valid


def take_tokens(seq, idx: np.ndarray):
    """Row-subset a :class:`PatchSequence`/:class:`VolumeSequence`.

    Geometry, validity and detail metadata all follow the same index, so
    the result is a well-formed natural sequence of the kept tokens.
    """
    details = None if seq.details is None else seq.details[idx]
    if hasattr(seq, "zs"):                       # volumetric
        return type(seq)(
            patches=seq.patches[idx], zs=seq.zs[idx], ys=seq.ys[idx],
            xs=seq.xs[idx], sizes=seq.sizes[idx],
            volume_size=seq.volume_size, patch_size=seq.patch_size,
            valid=seq.valid[idx], n_real=int(seq.valid[idx].sum()),
            details=details)
    return type(seq)(
        patches=seq.patches[idx], ys=seq.ys[idx], xs=seq.xs[idx],
        sizes=seq.sizes[idx], valid=seq.valid[idx],
        image_size=seq.image_size, patch_size=seq.patch_size,
        n_real=int(seq.valid[idx].sum()), details=details)


def shortcircuit_plan(seq, digests: np.ndarray, bg: np.ndarray,
                      known: np.ndarray) -> SparsePlan:
    """Route ``bg & known`` tokens around the model; dedup the rest.

    ``known`` marks background tokens whose digest the table already
    holds — those leave the forward entirely. Unknown-digest background
    tokens collapse onto one in-sequence representative per distinct
    (digest, leaf size): the first occurrence stays (listed in ``seeds``,
    its in-context row later seeds the table), later occurrences read the
    representative's row.
    """
    n = len(seq)
    skip = bg & known
    keep_mask = ~skip
    rep = np.arange(n)
    first: dict = {}
    seeds = []
    for i in np.flatnonzero(bg & ~known):
        gk = (digests[i].tobytes(), int(seq.sizes[i]))
        j = first.setdefault(gk, int(i))
        if j == i:
            seeds.append(int(i))
        else:
            keep_mask[i] = False
            rep[i] = j
    kept_pos = np.cumsum(keep_mask) - 1       # reduced row of each kept token
    rows = np.where(skip, -1, kept_pos[rep])
    n_skipped = int(skip.sum())
    return SparsePlan(kind="shortcircuit", full_seq=seq,
                      reduced_seq=take_tokens(seq, np.flatnonzero(keep_mask)),
                      rows=rows, digests=digests, n_skipped=n_skipped,
                      n_merged=int(n - keep_mask.sum()) - n_skipped,
                      seeds=np.asarray(seeds, dtype=np.int64))


def merge_plan(seq, digests: np.ndarray, sizes: np.ndarray,
               min_run: int) -> Optional[SparsePlan]:
    """Collapse runs of identical-digest, same-size tokens onto their
    first member. Returns ``None`` when nothing merges."""
    n = len(digests)
    same = (digests[1:] == digests[:-1]) & (sizes[1:] == sizes[:-1])
    starts = np.flatnonzero(np.r_[True, ~same])
    lengths = np.diff(np.r_[starts, n])
    rep = np.arange(n)
    keep_mask = np.ones(n, dtype=bool)
    for s, ln in zip(starts[lengths >= min_run], lengths[lengths >= min_run]):
        keep_mask[s + 1:s + ln] = False
        rep[s:s + ln] = s
    n_merged = int(n - keep_mask.sum())
    if n_merged == 0:
        return None
    kept_pos = np.cumsum(keep_mask) - 1       # reduced row of each kept token
    rows = kept_pos[rep]
    keep = np.flatnonzero(keep_mask)
    return SparsePlan(kind="merge", full_seq=seq,
                      reduced_seq=take_tokens(seq, keep), rows=rows,
                      digests=None, n_merged=n_merged)
