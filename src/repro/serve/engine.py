"""Async inference engine — continuous batching over the compiled Predictor.

The :class:`~repro.serve.predictor.Predictor` is synchronous: callers hand
it a fully-formed batch and block. :class:`InferenceEngine` turns it into a
shared service: clients ``submit(image)`` and get a
:class:`~concurrent.futures.Future`; a continuous batcher coalesces the
queue into length-bucketed micro-batches (flushing on ``max_batch`` *or* a
latency deadline, so light load never waits for a full batch), executes
them through the Predictor's per-signature plan cache, and resolves the
futures.

Bit-identity contract
---------------------
Batches always contain a single length bucket and dispatch FIFO within a
lane; every flush executes through the shared
:class:`~repro.serve.scheduler.WorkGraphScheduler`, whose micro-batch
formation (chunks of exactly ``predictor.max_batch``) is the same single
implementation ``Predictor.predict_batch`` drains. Submitting a request
set and draining the queue therefore yields **bit-identical** arrays to
calling ``predict_batch`` on the same set (the property suite pins this
across seeds and shapes), and both front-ends produce the same
``(batch, length)`` signatures — one shared plan cache, never a split
one. Under streaming arrivals the chunk *composition* depends on timing;
each chunk still runs the exact scheduler path, but BLAS blocking varies
with batch shape, so cross-composition agreement is tight (~1e-7) rather
than bitwise — the same caveat as any batched server.

Beyond batching, the engine layers on what a front-end needs:

* **priority lanes** with weighted fairness (``interactive`` vs ``bulk``;
  see :class:`~repro.serve.queueing.FairQueue`), and ``submit_volume``
  which decomposes a (S, Z, Z) volume into per-slice bulk jobs and
  reassembles the stacked class map (the paper's BTCV slice protocol);
* **admission control**: a bounded queue; overflow raises
  :class:`~repro.serve.queueing.EngineOverloaded` with a ``retry_after``
  hint derived from the observed service rate;
* a **digest-keyed LRU result cache** (identical payloads — e.g. repeated
  or padded CT slices — are served without inference) plus **in-flight
  request collapsing** (concurrent duplicates share one execution);
* a **metrics registry** (:mod:`.metrics`) exported via :meth:`stats`.

Drive modes: :meth:`start` spawns a daemon batcher thread against the real
clock; alternatively a *simulated* clock plus a
:class:`~repro.serve.loadgen.ServiceModel` lets :mod:`.loadgen` drive
:meth:`step` deterministically for load tests (no threads, virtual time).
"""

from __future__ import annotations

import math
import threading
import time
from collections import OrderedDict
from concurrent.futures import Future
from dataclasses import dataclass, field, replace
from typing import Callable, Dict, Hashable, List, Mapping, Optional, Sequence

import numpy as np

# The engine keys its result cache with the same content digest the
# pipeline uses for its sequence cache, so one hash serves both layers
# (and the two caches can never disagree about what "the same image" is).
from ..pipeline.engine import content_key as _digest
from .metrics import MetricsRegistry
from .predictor import class_map
from .queueing import DEFAULT_LANES, EngineOverloaded, FairQueue, Request

__all__ = ["EngineConfig", "InferenceEngine", "BatchReport"]


def _trace_digest(key) -> Optional[str]:
    """Short printable form of a content key for trace args."""
    if key is None:
        return None
    if isinstance(key, tuple) and len(key) == 3:
        return str(key[2])[:12]
    return str(key)[:12]


@dataclass
class EngineConfig:
    """Tuning knobs of the engine (see README "Serving architecture").

    ``max_batch=None`` inherits ``predictor.max_batch`` — required for the
    bit-identity guarantee against ``predict_batch``; set it lower only to
    trade throughput for latency knowingly.
    """

    max_batch: Optional[int] = None
    #: Longest a request may wait for co-batching before a partial flush (s).
    flush_deadline: float = 0.02
    #: Admission-control bound on waiting requests.
    max_queue: int = 64
    #: Lane name -> fair-share weight.
    lanes: Mapping[str, float] = field(default_factory=lambda: dict(DEFAULT_LANES))
    #: LRU capacity of the digest-keyed result cache (0 disables).
    result_cache_items: int = 256
    #: Padded lengths to pre-compile at :meth:`InferenceEngine.start`
    #: (None -> first two bucket multiples).
    warmup_lengths: Optional[Sequence[int]] = None


@dataclass
class BatchReport:
    """What one batcher flush did (returned by :meth:`InferenceEngine.step`)."""

    size: int
    length: int
    lanes: Dict[str, int]
    started: float
    cost: float          #: virtual service seconds (or measured wall seconds)
    real_seconds: float


class InferenceEngine:
    """Queue-driven, continuously-batched front-end over a Predictor.

    Parameters
    ----------
    predictor:
        The micro-batching :class:`~repro.serve.predictor.Predictor` the
        engine owns (the engine is its only driver once started).
    config:
        :class:`EngineConfig`; individual fields may also be passed as
        keyword overrides.
    clock:
        Time source. Defaults to ``time.monotonic``; pass a
        :class:`~repro.serve.loadgen.SimClock`'s ``now`` for deterministic
        simulated-time operation.
    service_model:
        Optional :class:`~repro.serve.loadgen.ServiceModel`. When set,
        batch completions are stamped ``started + model.cost(B, L)``
        virtual seconds (deterministic); when None, real elapsed time.

    Examples
    --------
    >>> engine = InferenceEngine(Predictor(model, pipe), flush_deadline=0.01)
    >>> engine.start()                        # warms plans, spawns batcher
    >>> fut = engine.submit(image)            # -> Future
    >>> probs = fut.result(timeout=5)
    >>> engine.stop()
    """

    def __init__(self, predictor, config: Optional[EngineConfig] = None,
                 *, clock: Callable[[], float] = time.monotonic,
                 service_model=None, tracer=None, **overrides):
        # copy: the engine resolves fields in place (max_batch inheritance,
        # overrides), which must not leak into a caller-shared config
        cfg = replace(config) if config is not None else EngineConfig()
        cfg.lanes = dict(cfg.lanes)
        for name, value in overrides.items():
            if not hasattr(cfg, name):
                raise TypeError(f"unknown engine option {name!r}")
            setattr(cfg, name, value)
        if cfg.max_batch is None:
            cfg.max_batch = predictor.max_batch
        if cfg.max_batch < 1 or cfg.flush_deadline < 0:
            raise ValueError("max_batch >= 1 and flush_deadline >= 0 required")
        self.predictor = predictor
        # The engine is a *pump* over the predictor's work-graph scheduler:
        # admission/lanes/caching decide when a flush happens, the scheduler
        # decides (and owns) how it buckets, batches, and stitches.
        self.scheduler = predictor.scheduler
        self.config = cfg
        self.clock = clock
        self.service_model = service_model
        self.metrics = MetricsRegistry()
        self._queue = FairQueue(cfg.lanes, max_depth=cfg.max_queue)
        self._cond = threading.Condition()
        self._results: "OrderedDict[Hashable, np.ndarray]" = OrderedDict()
        self._inflight: Dict[Hashable, Request] = {}
        self._collapsed: Dict[int, List] = {}     # id(req) -> [(submit_t, fut)]
        self._ewma_batch_s: Optional[float] = None
        self._thread: Optional[threading.Thread] = None
        self._running = False
        # Tracing (repro.obs): normalized to None when absent or disabled,
        # so every hot-path site is one attribute test. The tracer is
        # pushed down to the predictor so the shared work-graph scheduler
        # emits its sub-spans on this engine's track.
        tr = tracer if tracer is not None else getattr(predictor, "tracer",
                                                       None)
        self.tracer = tr if (tr is not None and tr.enabled) else None
        self.trace_label = getattr(predictor, "trace_label", "engine")
        if self.tracer is not None:
            self.set_trace_label(self.trace_label)

    def set_trace_label(self, label: str) -> None:
        """Name this engine's trace track (fleets use ``replica<rank>``)."""
        self.trace_label = label
        self.predictor.tracer = self.tracer
        self.predictor.trace_label = label

    # -- submission --------------------------------------------------------
    def _cache_get(self, digest: Hashable) -> Optional[np.ndarray]:
        if self.config.result_cache_items <= 0:
            return None
        hit = self._results.get(digest)
        if hit is not None:
            self._results.move_to_end(digest)
        return hit

    def _cache_put(self, digest: Hashable, value: np.ndarray) -> None:
        if self.config.result_cache_items <= 0 or digest is None:
            return
        # Freeze a private copy: the caller's array stays writable
        # (predict_batch parity), while the cached one — shared by every
        # future cache hit — cannot be poisoned in place.
        frozen = value.copy()
        frozen.setflags(write=False)
        self._results[digest] = frozen
        while len(self._results) > self.config.result_cache_items:
            self._results.popitem(last=False)
            self.metrics.inc("result_cache_evictions")

    def retry_after_hint(self) -> float:
        """Seconds until capacity is likely free (admission-reject hint)."""
        per_batch = self._ewma_batch_s or self.config.flush_deadline
        batches_ahead = math.ceil((len(self._queue) + 1) / self.config.max_batch)
        return batches_ahead * per_batch

    def _admit(self, images: Sequence[np.ndarray], lane: str) -> List[Future]:
        """Cache-check, preprocess, and atomically enqueue a group of images.

        Fresh requests are registered in the in-flight table as
        *reservations* before preprocessing starts, so a concurrent
        duplicate submission (or a repeated payload later in this very
        group) collapses onto them instead of racing to a second
        execution. APF preprocessing itself runs on the *caller's* thread
        (through the pipeline's lock-protected LRU), keeping the batcher
        thread on the model hot path only. Admission is all-or-nothing: on
        overflow every reservation, collapse registration, and metric of
        this call is rolled back and any twin futures chained onto the
        rejected reservations fail with the same :class:`EngineOverloaded`.
        """
        if lane not in self.config.lanes:    # validate even on cache hits
            raise ValueError(f"unknown lane {lane!r}; "
                             f"configured: {sorted(self.config.lanes)}")
        now = self.clock()
        futures: List[Future] = []
        fresh: List[Request] = []
        fresh_images: List[np.ndarray] = []
        hits: Dict[int, np.ndarray] = {}
        chained: List[tuple] = []    # (id(primary), entry) made by THIS call
        cache_on = self.config.result_cache_items > 0
        # hash outside the lock: digests depend only on the payloads, and
        # holding the condition while hashing S slices would stall the
        # batcher thread for the whole volume
        digests = [_digest(image) if cache_on else None for image in images]
        tracer = self.tracer
        track = self.trace_label
        with self._cond:
            for i, image in enumerate(images):
                digest = digests[i]
                cached = self._cache_get(digest) if digest is not None else None
                if cached is not None:
                    hits[i] = cached
                    futures.append(Future())
                    continue
                primary = (self._inflight.get(digest)
                           if digest is not None else None)
                if primary is not None:            # collapse onto in-flight twin
                    fut = Future()
                    rid = 0
                    if tracer is not None:
                        rid = tracer.next_id()
                        tracer.async_begin(
                            "request", track, now, rid, tid=lane,
                            args={"rid": rid, "lane": lane,
                                  "digest": _trace_digest(digest),
                                  "kind": "collapsed"})
                    entry = (now, lane, fut, rid)
                    self._collapsed.setdefault(id(primary), []).append(entry)
                    chained.append((id(primary), entry))
                    futures.append(fut)
                    continue
                req = Request(seq=None, bucket=-1, lane=lane, submit_t=now,
                              key=digest)
                if tracer is not None:
                    req.rid = tracer.next_id()
                    tracer.async_begin(
                        "request", track, now, req.rid, tid=lane,
                        args={"rid": req.rid, "lane": lane,
                              "digest": _trace_digest(digest),
                              "kind": "fresh"})
                if digest is not None:
                    self._inflight[digest] = req   # reservation for twins
                fresh.append(req)
                fresh_images.append(image)
                futures.append(req.future)
        # preprocessing outside the engine lock (pipeline has its own), in
        # ONE batched call so the pipeline's batch kernels/workers apply;
        # any failure must tear down the reservations, or later identical
        # submissions would chain onto a dead primary and hang forever
        try:
            if fresh:
                keys = [req.key if req.key is not None else _digest(image)
                        for req, image in zip(fresh, fresh_images)]
                seqs = self.predictor._naturals(fresh_images, keys)
                for req, seq in zip(fresh, seqs):
                    req.seq = seq
                    req.bucket = self.scheduler.bucket_length(len(seq))
        except BaseException as exc:
            with self._cond:
                self._rollback(fresh, exc, chained)
            raise
        with self._cond:
            try:
                self._queue.push_all(fresh, retry_after=self.retry_after_hint())
            except EngineOverloaded as exc:
                rejected = self._rollback(fresh, exc, chained)
                self.metrics.inc("rejected", rejected)
                if tracer is not None:
                    tracer.instant("req.reject", track, now, tid=lane,
                                   args={"count": rejected, "lane": lane})
                raise
            self.metrics.inc("submitted", len(images))
            self.metrics.inc("cache_hits", len(hits))
            self.metrics.inc("collapsed", len(chained))
            self.metrics.gauge("queue_depth").set(len(self._queue))
            self._cond.notify_all()
        for i, value in hits.items():
            self.metrics.observe("latency", 0.0)
            self.metrics.observe(f"latency.{lane}", 0.0)
            if tracer is not None:
                rid = tracer.next_id()
                tracer.async_begin("request", track, now, rid, tid=lane,
                                   args={"rid": rid, "lane": lane,
                                         "digest": _trace_digest(digests[i]),
                                         "kind": "cache_hit"})
                tracer.async_end("request", track, now, rid, tid=lane,
                                 args={"outcome": "cache_hit"})
            # writable private copy, same contract as fresh results and
            # collapsed twins (the frozen original stays in the cache)
            futures[i].set_result(value.copy())
        return futures

    def _rollback(self, fresh: List[Request], exc: BaseException,
                  chained: Sequence[tuple] = ()) -> int:
        """Undo reservations for a failed admission (caller holds the lock);
        twin futures chained onto them fail with ``exc``. Returns the number
        of requests torn down.

        ``chained`` lists the ``(id(primary), entry)`` collapse
        registrations *this* admission made, including those riding
        primaries submitted by earlier calls. Admission is all-or-nothing,
        so these must be unchained too — otherwise a rejected volume
        leaves phantom twin futures on a foreign in-flight request, which
        later resolve into thin air (double-counted latency, wasted result
        copies, and an accounting drift the streaming runner's
        retry-on-overload loop compounds every retry).
        """
        n = len(fresh)
        tracer = self.tracer
        now = self.clock() if tracer is not None else 0.0
        for req in fresh:
            if req.key is not None and self._inflight.get(req.key) is req:
                del self._inflight[req.key]
            if tracer is not None and req.rid:
                tracer.async_end("request", self.trace_label, now, req.rid,
                                 tid=req.lane, args={"outcome": "failed"})
            for _, twin_lane, fut, rid in self._collapsed.pop(id(req), []):
                fut.set_exception(exc)
                if tracer is not None and rid:
                    tracer.async_end("request", self.trace_label, now, rid,
                                     tid=twin_lane,
                                     args={"outcome": "failed"})
                n += 1
        for primary_id, entry in chained:
            entries = self._collapsed.get(primary_id)
            if entries is None or entry not in entries:
                continue           # already torn down with a fresh primary
            entries.remove(entry)
            if not entries:
                del self._collapsed[primary_id]
            entry[2].set_exception(exc)
            if tracer is not None and entry[3]:
                tracer.async_end("request", self.trace_label, now, entry[3],
                                 tid=entry[1], args={"outcome": "failed"})
            n += 1
        return n

    def submit(self, image: np.ndarray, *, lane: str = "interactive") -> Future:
        """Enqueue one image/volume-slice; resolves to its probability map.

        Raises :class:`EngineOverloaded` (with ``.retry_after``) when the
        queue is at capacity.
        """
        return self._admit([np.asarray(image)], lane)[0]

    def submit_volume(self, volume: np.ndarray, *,
                      lane: str = "bulk") -> Future:
        """Decompose a (S, Z, Z) volume into per-slice jobs; reassemble.

        The returned future resolves to the stacked (S, Z, Z) int64 class
        map — the same post-processing as ``Predictor.predict_volume``
        (argmax over channels, 0.5 threshold for binary heads). Admission is
        atomic: either every slice is accepted or the whole volume is
        rejected with :class:`EngineOverloaded`.
        """
        v = np.asarray(volume)
        if v.ndim != 3 or v.shape[0] == 0:
            raise ValueError(f"expected a non-empty (slices, Z, Z) volume, "
                             f"got {v.shape}")
        slice_futs = self._admit([v[i] for i in range(v.shape[0])], lane)
        self.metrics.inc("volumes")
        agg: Future = Future()
        parts: List[Optional[np.ndarray]] = [None] * len(slice_futs)
        pending = [len(slice_futs)]
        lock = threading.Lock()

        def finish(i: int, fut: Future) -> None:
            try:
                parts[i] = class_map(fut.result())
            except BaseException as exc:   # propagate the first slice failure
                if not agg.done():
                    agg.set_exception(exc)
                return
            with lock:
                pending[0] -= 1
                done = pending[0] == 0
            if done and not agg.done():
                agg.set_result(np.stack(parts))

        for i, fut in enumerate(slice_futs):
            fut.add_done_callback(lambda f, i=i: finish(i, f))
        return agg

    # -- execution ---------------------------------------------------------
    def _run(self, batch: List[Request], started: float) -> BatchReport:
        t0 = time.perf_counter()
        # Pump the shared work-graph scheduler: the exact predict_batch
        # grouping and fit/collate/forward/stitch, one implementation.
        maps = self.scheduler.execute([r.seq for r in batch])
        real_s = time.perf_counter() - t0
        length = batch[0].bucket
        cost = (self.service_model.cost(len(batch), length)
                if self.service_model is not None else real_s)
        done_at = started + cost if self.service_model is not None \
            else self.clock()
        with self._cond:
            chains = [self._collapsed.pop(id(r), []) for r in batch]
            for r in batch:
                if r.key is not None and self._inflight.get(r.key) is r:
                    del self._inflight[r.key]
            for r, m in zip(batch, maps):
                self._cache_put(r.key, m)
            ewma = self._ewma_batch_s
            self._ewma_batch_s = cost if ewma is None else 0.8 * ewma + 0.2 * cost
        if self.tracer is not None:
            self.tracer.complete(
                "batch", self.trace_label, started, done_at, tid="engine",
                args={"size": len(batch), "length": length,
                      "signature": [len(batch), length],
                      "rids": [r.rid for r in batch]})
        tracer = self.tracer
        lanes: Dict[str, int] = {}
        for r, m, chain in zip(batch, maps, chains):
            r.future.set_result(m)
            self.metrics.observe("latency", done_at - r.submit_t)
            self.metrics.observe(f"latency.{r.lane}", done_at - r.submit_t)
            # Queue wait = dispatch minus submission: the scheduling-policy
            # share of latency (service time excluded), per lane — the
            # number that shows viewport-priority actually beating FIFO.
            self.metrics.observe("queue_wait", started - r.submit_t)
            self.metrics.observe(f"queue_wait.{r.lane}", started - r.submit_t)
            lanes[r.lane] = lanes.get(r.lane, 0) + 1
            if tracer is not None and r.rid:
                tracer.async_end("request", self.trace_label, done_at, r.rid,
                                 tid=r.lane, args={"outcome": "done"})
            for sub_t, chain_lane, fut, rid in chain:
                # private copy: twins belong to independent clients who may
                # post-process in place (same poisoning rule as the cache)
                fut.set_result(m.copy())
                self.metrics.observe("latency", done_at - sub_t)
                self.metrics.observe(f"latency.{chain_lane}", done_at - sub_t)
                if tracer is not None and rid:
                    tracer.async_end("request", self.trace_label, done_at,
                                     rid, tid=chain_lane,
                                     args={"outcome": "done"})
        self.metrics.inc("completed", len(batch))
        self.metrics.inc("batches")
        self.metrics.observe("batch_size", len(batch))
        self.metrics.observe("service_seconds", cost)
        return BatchReport(size=len(batch), length=length, lanes=lanes,
                           started=started, cost=cost, real_seconds=real_s)

    def step(self, now: Optional[float] = None,
             force: bool = False) -> Optional[BatchReport]:
        """Flush and run at most one due batch at time ``now``.

        The single-threaded drive mode: the load harness (or any event
        loop) calls this instead of :meth:`start`. ``force=True`` flushes
        regardless of the deadline (drain semantics).
        """
        if now is None:
            now = self.clock()
        with self._cond:
            batch = self._queue.collect(now, self.config.max_batch,
                                        self.config.flush_deadline, force)
            self.metrics.gauge("queue_depth").set(len(self._queue))
        if batch is None:
            return None
        return self._run(batch, now)

    def drain(self) -> List[BatchReport]:
        """Synchronously run everything queued (ignoring deadlines)."""
        reports = []
        while True:
            rep = self.step(force=True)
            if rep is None:
                return reports
            reports.append(rep)

    def next_flush_at(self, now: float) -> Optional[float]:
        """Earliest absolute time a batch becomes due (None if queue empty)."""
        with self._cond:
            return self._queue.next_flush_at(now, self.config.max_batch,
                                             self.config.flush_deadline)

    # -- cancellation ------------------------------------------------------
    def cancel(self, future: Future) -> bool:
        """Retire a still-waiting submission; returns True when cancelled.

        The stale-viewport path for interactive front-ends (the pyramid
        tile service): a viewer that panned away no longer needs tiles it
        requested, and cancelling them frees queue capacity and server
        time for the tiles it needs *now*. Only waiting work is
        cancellable — a request already dispatched to the model, already
        resolved, or one serving as the **primary of collapsed
        duplicates** (other clients ride on its execution) is left alone
        and the call returns False.

        On success the queue slot is released, the in-flight reservation
        is torn down (a later identical submission executes fresh — the
        result cache is never populated from a cancelled request, so no
        cache can be poisoned), and ``future`` is cancelled
        (``Future.cancel``; waiters see :class:`~concurrent.futures.CancelledError`).
        """
        with self._cond:
            waiting = self._queue.find(future)
            if waiting is None:
                return False
            # refuse while twins ride on this primary: cancelling would
            # orphan their futures (they resolve from the primary's run)
            if self._collapsed.get(id(waiting)):
                return False
            req = self._queue.remove(future)
            if req.key is not None and self._inflight.get(req.key) is req:
                del self._inflight[req.key]
            self.metrics.inc("cancelled")
            self.metrics.gauge("queue_depth").set(len(self._queue))
        if self.tracer is not None and req.rid:
            now = self.clock()
            self.tracer.instant("req.cancel", self.trace_label, now,
                                tid=req.lane, args={"rid": req.rid})
            self.tracer.async_end("request", self.trace_label, now, req.rid,
                                  tid=req.lane,
                                  args={"outcome": "cancelled"})
        cancelled = future.cancel()
        if not cancelled:   # pragma: no cover - engine never starts futures
            future.set_exception(EngineOverloaded("request cancelled"))
        return True

    # -- fleet membership --------------------------------------------------
    def evict_pending(self):
        """Remove every waiting (not yet dispatched) request for re-routing.

        Returns ``(requests, chains)`` where ``chains`` maps ``id(request)``
        to the collapsed twin futures riding on it. Reservations in the
        in-flight table are torn down; the futures stay *unresolved* — the
        fleet router hands both to a surviving replica's :meth:`adopt`, so
        clients of a killed replica never observe the failure. Batches
        already dispatched are unaffected (fail-stop between batches).
        """
        with self._cond:
            reqs = self._queue.pop_all()
            chains = {id(r): self._collapsed.pop(id(r), []) for r in reqs}
            for r in reqs:
                if r.key is not None and self._inflight.get(r.key) is r:
                    del self._inflight[r.key]
            self.metrics.inc("evicted", len(reqs))
            self.metrics.gauge("queue_depth").set(len(self._queue))
        if self.tracer is not None:
            now = self.clock()
            for r in reqs:
                if r.rid:
                    self.tracer.instant("req.evict", self.trace_label, now,
                                        tid=r.lane, args={"rid": r.rid})
        return reqs, chains

    def adopt(self, requests: Sequence[Request],
              chains: Optional[Mapping[int, List]] = None) -> None:
        """Enqueue already-preprocessed requests evicted from a peer replica.

        Admission is atomic (all or :class:`EngineOverloaded`, like
        :meth:`submit`); the foreign requests keep their original futures
        and ``submit_t`` — latency accounting therefore *includes* the
        disruption of the migration. Collapsed twin chains transfer with
        their primary. In-flight reservations are re-registered here unless
        this engine already has a primary for the same digest (the existing
        one wins; both executions resolve their own futures and agree on
        the cached value).
        """
        if not requests:
            return
        with self._cond:
            self._queue.push_all(list(requests),
                                 retry_after=self.retry_after_hint())
            for r in requests:
                if r.key is not None:
                    self._inflight.setdefault(r.key, r)
                chain = (chains or {}).get(id(r))
                if chain:
                    self._collapsed.setdefault(id(r), []).extend(chain)
            self.metrics.inc("adopted", len(requests))
            self.metrics.gauge("queue_depth").set(len(self._queue))
            self._cond.notify_all()
        if self.tracer is not None:
            now = self.clock()
            for r in requests:
                if r.rid:
                    self.tracer.instant("req.adopt", self.trace_label, now,
                                        tid=r.lane, args={"rid": r.rid})

    @property
    def pending(self) -> int:
        """Waiting (undispatched) request count — the drain/health probe."""
        with self._cond:
            return len(self._queue)

    # -- threaded mode -----------------------------------------------------
    def warmup(self) -> dict:
        """Pre-compile plans for the configured bucket ladder (see
        :meth:`Predictor.warmup`); returns the compile report."""
        lengths = self.config.warmup_lengths
        if lengths is None:
            b = self.predictor.bucket
            lengths = [b, min(2 * b, self.predictor.max_len)]
        return self.predictor.warmup(lengths=lengths,
                                     batch_sizes=(1, self.config.max_batch))

    def start(self, warmup: bool = True) -> "InferenceEngine":
        """Warm the plan cache and spawn the daemon batcher thread."""
        if self._thread is not None:
            raise RuntimeError("engine already started")
        if warmup:
            self.warmup()
        self._running = True
        self._thread = threading.Thread(target=self._loop,
                                        name="repro-engine-batcher",
                                        daemon=True)
        self._thread.start()
        return self

    def stop(self) -> None:
        """Stop the batcher, draining queued requests first."""
        if self._thread is None:
            return
        with self._cond:
            self._running = False
            self._cond.notify_all()
        self._thread.join()
        self._thread = None
        # a submit racing stop() can slip its request in after the batcher
        # loop's final empty-queue check; resolve any such straggler now so
        # no accepted future is ever orphaned
        self.drain()

    def _loop(self) -> None:
        mb, deadline = self.config.max_batch, self.config.flush_deadline
        while True:
            with self._cond:
                if not self._running and len(self._queue) == 0:
                    return
                now = self.clock()
                due_at = self._queue.next_flush_at(now, mb, deadline)
                if due_at is None:
                    self._cond.wait()
                    continue
                if due_at > now and self._running:
                    self._cond.wait(timeout=due_at - now)
                    continue
                batch = self._queue.collect(now, mb, deadline,
                                            force=not self._running)
                self.metrics.gauge("queue_depth").set(len(self._queue))
            if batch:
                self._run(batch, now)

    # -- introspection -----------------------------------------------------
    @property
    def is_running(self) -> bool:
        """True while the daemon batcher thread is alive (threaded mode).

        Checks liveness, not just :meth:`start` having been called: if the
        batcher died from an uncaught error, callers (e.g. the streaming
        runner) must fall back to driving :meth:`step` themselves instead
        of waiting on futures the dead thread will never resolve.
        """
        return self._thread is not None and self._thread.is_alive()

    def stats(self) -> dict:
        """Counters, latency/batch histograms, queue depths, cache state."""
        with self._cond:
            queue = self._queue.depths()
            cache = {"items": len(self._results),
                     "capacity": self.config.result_cache_items,
                     "inflight": len(self._inflight)}
        # Observability for streaming backpressure: how deep the waiting
        # room got, and how much traffic the result cache absorbed.
        queue["peak_depth"] = self.metrics.gauge("queue_depth").peak
        hits = self.metrics.counter("cache_hits").value
        submitted = self.metrics.counter("submitted").value
        cache["hits"] = hits
        cache["hit_rate"] = hits / submitted if submitted else 0.0
        pipeline = self.predictor.pipeline
        snap = self.metrics.snapshot()
        # Per-lane queue-wait histograms, pulled up from the flat snapshot:
        # the scheduling-policy share of latency, interactive vs bulk —
        # what proves priority lanes (and viewport priority) beat FIFO.
        queue["wait_per_lane"] = {lane: snap[f"queue_wait.{lane}"]
                                  for lane in self.config.lanes
                                  if f"queue_wait.{lane}" in snap}
        return {"engine": snap,
                "queue": queue,
                "result_cache": cache,
                "predictor": dict(self.predictor.stats),
                "pipeline": dict(getattr(pipeline, "stats", {}) or {})}
