"""Inference/serving throughput benchmark + CI regression gate.

Measures end-to-end **predict** throughput (APF preprocessing -> model
forward -> full-resolution probability map) for the compiled serving stack
against the pre-runtime eager path, on the two workloads the repository
reproduces:

* **2-D single-image** — ViTSegmenter on 256² synthetic PAIP images
  (split 4.0 -> natural lengths ~500-740, heads=8: the attention-heavy
  regime where the eager tape's per-op allocations hurt most). Gate:
  ``Predictor(max_batch=1)`` ≥ **2x** the eager path.
* **3-D micro-batched** — VolumeViTSegmenter on 64³ synthetic CT volumes
  (split 160 -> natural lengths ~160-210: the octree-coarse regime where
  per-request APF preprocessing dominates the eager path and micro-batching
  amortizes everything else). Gate: ``Predictor(max_batch=4)`` ≥ **3x**
  the eager path.

The *eager path* is the pre-``repro.serve`` flow (what the task adapters'
``predict_probs`` / ``evaluate`` did): re-extract the natural sequence and
run the tape-based ``predict_mask`` / ``predict_volume_probs`` per request,
every epoch. The serving side measures **steady state**: plans compiled and
the pipeline LRU warm (a server amortizes both across its lifetime), with
cold-start cost reported separately as ``warm_seconds`` /
``compile_seconds``. Each timed round is EPOCHS passes over the working
set; medians over ROUNDS absorb the noisy-neighbour swings of shared CI
hosts.

Results go to ``BENCH_inference.json`` (atomic write); the committed
``BENCH_inference_baseline.json`` gates regressions. The run fails if

* compiled predictions are not **bit-identical** to the eager-mode
  Predictor on identical collated batches (2-D and 3-D),
* either serving speedup drops below its floor (2x single / 3x batched),
* or a hardware-portable speedup ratio regresses >2x vs the baseline.
"""

import json
import os
import platform
import time
from pathlib import Path

import numpy as np
import pytest

from repro.data import SyntheticPAIP, generate_ct_volume
from repro.models import ViTSegmenter, VolumeViTSegmenter
from repro.patching import (AdaptivePatcher, VolumeAPFConfig,
                            VolumetricAdaptivePatcher)
from repro.perf import write_json_atomic
from repro.pipeline import PatchPipeline
from repro.serve import Predictor
from repro.train.tasks import prepare_image

EPOCHS = 3
ROUNDS = 3          # median-of-N: noisy/shared hosts swing single runs 3-5x

# -- 2-D single-image workload ------------------------------------------
IMG_RES = 256
N_IMAGES = 8
IMG_SPLIT = 4.0
IMG_MODEL = dict(patch_size=4, channels=1, dim=64, depth=4, heads=8,
                 max_len=1024)
IMG_BUCKET = 64

# -- 3-D micro-batched workload -----------------------------------------
VOL_RES = 64
N_VOLUMES = 6
VOL_SPLIT = 160.0
VOL_MODEL = dict(patch_size=4, dim=64, depth=4, heads=4, max_len=1024)
VOL_BUCKET = 32
VOL_BATCH = 4

HERE = Path(__file__).resolve().parent
RESULT_PATH = HERE / "BENCH_inference.json"
BASELINE_PATH = HERE / "BENCH_inference_baseline.json"


def _median_seconds(fn):
    times = []
    for _ in range(ROUNDS):
        t0 = time.perf_counter()
        fn()
        times.append(time.perf_counter() - t0)
    return float(np.median(times))


def _plan_totals(predictor):
    stats = [cm.plan.stats for cm in predictor._plans.values()]
    return {
        "plans": len(stats),
        "fused_linear": sum(s["fused_linear"] for s in stats),
        "fused_sdpa": sum(s["fused_sdpa"] for s in stats),
        "inplace": sum(s["inplace"] for s in stats),
        "buffer_reuse": sum(s["buffer_reuse"] for s in stats),
    }


def _assert_compiled_matches_eager(model, pipeline_factory, inputs, keys,
                                   max_batch, bucket):
    """Bit-identity guard: compiled and eager Predictors on the same
    bucketed/collated batches must agree exactly."""
    pipe = pipeline_factory()
    seqs = pipe.process(inputs, keys)
    compiled = Predictor(model, pipe, max_batch=max_batch, bucket=bucket)
    eager = Predictor(model, pipeline_factory(), max_batch=max_batch,
                      bucket=bucket, compiled=False)
    for a, b in zip(compiled.predict_sequences(seqs),
                    eager.predict_sequences(seqs)):
        np.testing.assert_array_equal(a, b)


@pytest.mark.bench
def test_inference_throughput_and_regression_gate():
    # ------------------------------------------------------------------
    # Part A: 2-D single-image serving
    # ------------------------------------------------------------------
    ds = SyntheticPAIP(IMG_RES, N_IMAGES)
    imgs = [ds[i].image for i in range(N_IMAGES)]
    keys = list(range(N_IMAGES))
    img_model = ViTSegmenter(rng=np.random.default_rng(0), **IMG_MODEL).eval()

    def img_pipe():
        return PatchPipeline(patch_size=4, split_value=IMG_SPLIT,
                             cache_items=2 * N_IMAGES, channels=1)

    def img_eager_round():
        patcher = AdaptivePatcher(patch_size=4, split_value=IMG_SPLIT)
        for _ in range(EPOCHS):
            for im in imgs:
                gray = prepare_image(im, 1).transpose(1, 2, 0)
                img_model.predict_mask(patcher.extract_natural(gray))

    img_eager_s = _median_seconds(img_eager_round)

    single = Predictor(img_model, img_pipe(), max_batch=1, bucket=IMG_BUCKET)
    t0 = time.perf_counter()
    single.predict_batch(imgs, keys=keys)        # warm cache + plans
    img_warm_s = time.perf_counter() - t0

    def img_single_round():
        for _ in range(EPOCHS):
            for i, im in enumerate(imgs):
                single.predict_image(im, key=i)

    img_single_s = _median_seconds(img_single_round)
    _assert_compiled_matches_eager(img_model, img_pipe, imgs[:4], keys[:4],
                                   max_batch=4, bucket=IMG_BUCKET)

    # ------------------------------------------------------------------
    # Part B: 3-D micro-batched serving
    # ------------------------------------------------------------------
    vols = [generate_ct_volume(VOL_RES, VOL_RES, seed=s).volume
            for s in range(N_VOLUMES)]
    vkeys = list(range(N_VOLUMES))
    vol_model = VolumeViTSegmenter(rng=np.random.default_rng(0),
                                   **VOL_MODEL).eval()

    def vol_pipe():
        return PatchPipeline(VolumeAPFConfig(patch_size=4,
                                             split_value=VOL_SPLIT),
                             cache_items=2 * N_VOLUMES)

    def vol_eager_round():
        patcher = VolumetricAdaptivePatcher(
            VolumeAPFConfig(patch_size=4, split_value=VOL_SPLIT))
        for _ in range(EPOCHS):
            for v in vols:
                vol_model.predict_volume_probs(patcher.extract_natural(v))

    vol_eager_s = _median_seconds(vol_eager_round)

    batched = Predictor(vol_model, vol_pipe(), max_batch=VOL_BATCH,
                        bucket=VOL_BUCKET)
    t0 = time.perf_counter()
    batched.predict_batch(vols, keys=vkeys)      # warm cache + plans
    vol_warm_s = time.perf_counter() - t0

    def vol_batched_round():
        for _ in range(EPOCHS):
            batched.predict_batch(vols, keys=vkeys)

    vol_batched_s = _median_seconds(vol_batched_round)
    _assert_compiled_matches_eager(vol_model, vol_pipe, vols[:4], vkeys[:4],
                                   max_batch=VOL_BATCH, bucket=VOL_BUCKET)

    # ------------------------------------------------------------------
    # Report + gates
    # ------------------------------------------------------------------
    n_img = N_IMAGES * EPOCHS
    n_vol = N_VOLUMES * EPOCHS
    result = {
        "environment": {"cpus": os.cpu_count() or 1,
                        "machine": platform.machine()},
        "single_image_2d": {
            "workload": {"images": N_IMAGES, "resolution": IMG_RES,
                         "epochs": EPOCHS, "split_value": IMG_SPLIT,
                         "bucket": IMG_BUCKET, **IMG_MODEL},
            "eager_ips": round(n_img / img_eager_s, 3),
            "compiled_ips": round(n_img / img_single_s, 3),
            "speedup_single": round(img_eager_s / img_single_s, 3),
            "warm_seconds": round(img_warm_s, 3),
            "compile_seconds": round(single.stats["compile_seconds"], 3),
            **_plan_totals(single),
        },
        "micro_batched_3d": {
            "workload": {"volumes": N_VOLUMES, "resolution": VOL_RES,
                         "epochs": EPOCHS, "split_value": VOL_SPLIT,
                         "bucket": VOL_BUCKET, "max_batch": VOL_BATCH,
                         **VOL_MODEL},
            "eager_vps": round(n_vol / vol_eager_s, 3),
            "compiled_vps": round(n_vol / vol_batched_s, 3),
            "speedup_batched": round(vol_eager_s / vol_batched_s, 3),
            "warm_seconds": round(vol_warm_s, 3),
            "compile_seconds": round(batched.stats["compile_seconds"], 3),
            **_plan_totals(batched),
        },
    }
    write_json_atomic(RESULT_PATH, result)
    print("\n" + json.dumps(result, indent=2))

    # -- acceptance floors (ISSUE 3) --------------------------------------
    sp1 = result["single_image_2d"]["speedup_single"]
    sp8 = result["micro_batched_3d"]["speedup_batched"]
    assert sp1 >= 2.0, (
        f"single-image serving speedup {sp1}x fell below the 2x floor "
        f"(eager {result['single_image_2d']['eager_ips']} img/s, compiled "
        f"{result['single_image_2d']['compiled_ips']} img/s)")
    assert sp8 >= 3.0, (
        f"micro-batched serving speedup {sp8}x fell below the 3x floor "
        f"(eager {result['micro_batched_3d']['eager_vps']} vol/s, compiled "
        f"{result['micro_batched_3d']['compiled_vps']} vol/s)")

    # -- regression gate vs committed baseline (>2x slowdown fails) -------
    # Absolute throughput only compares across identical hardware; elsewhere
    # gate on the hardware-portable speedup ratios.
    if BASELINE_PATH.exists():
        baseline = json.loads(BASELINE_PATH.read_text())
        same_host = baseline.get("environment") == result["environment"]
        checks = ([("single_image_2d", "eager_ips"),
                   ("single_image_2d", "compiled_ips"),
                   ("micro_batched_3d", "eager_vps"),
                   ("micro_batched_3d", "compiled_vps")] if same_host
                  else [("single_image_2d", "speedup_single"),
                        ("micro_batched_3d", "speedup_batched")])
        for section, key in checks:
            floor = baseline[section][key] / 2.0
            got = result[section][key]
            assert got >= floor, (
                f"{section}.{key} regressed >2x: {got} vs baseline "
                f"{baseline[section][key]} (floor {floor})")
