"""Tests for the serving capacity-planning helpers (repro.perf.serving)."""

import pytest

from repro.perf import (batching_speedup_bound, engine_capacity,
                        serial_capacity, utilization)
from repro.serve import ServiceModel


SM = ServiceModel(batch_seconds=0.04, token_seconds=1e-5, item_seconds=0.002)


class TestCapacity:
    def test_engine_capacity_amortizes_fixed_overhead(self):
        # per item at B=8: 0.04/8 + 0.003 = 0.008 -> 125 req/s
        assert engine_capacity(SM, 8, 100) == pytest.approx(8 / 0.064)
        assert serial_capacity(SM, 100) == pytest.approx(1 / 0.043)
        assert engine_capacity(SM, 1, 100) == serial_capacity(SM, 100)

    def test_capacity_monotone_in_batch(self):
        caps = [engine_capacity(SM, b, 128) for b in (1, 2, 4, 8, 16)]
        assert caps == sorted(caps)

    def test_speedup_bound_shape(self):
        # bound = (a + s) / (a/B + s); grows with B, approaches (a + s)/s
        bound8 = batching_speedup_bound(SM, 8, 100)
        assert bound8 == pytest.approx(0.043 / (0.04 / 8 + 0.003))
        assert 1.0 < batching_speedup_bound(SM, 2, 100) < bound8
        assert bound8 < batching_speedup_bound(SM, 64, 100)
        assert batching_speedup_bound(SM, 1, 100) == pytest.approx(1.0)

    def test_long_sequences_blunt_batching(self):
        # per-item work dominates at long L -> less overhead to amortize
        assert (batching_speedup_bound(SM, 8, 2000)
                < batching_speedup_bound(SM, 8, 50))

    def test_utilization(self):
        assert utilization(50.0, 100.0) == pytest.approx(0.5)
        assert utilization(150.0, 100.0) > 1.0
        with pytest.raises(ValueError):
            utilization(-1.0, 100.0)
        with pytest.raises(ValueError):
            utilization(10.0, 0.0)

    def test_validation(self):
        with pytest.raises(ValueError):
            engine_capacity(SM, 0, 100)
