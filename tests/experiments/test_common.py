"""Tests for shared experiment utilities."""


from repro.experiments import ExperimentScale, format_table
from repro.experiments.common import (ensure_nonempty_splits,
                                      natural_target_length)


class TestFormatTable:
    def test_alignment_and_rows(self):
        out = format_table(["a", "bb"], [[1, 22], [333, 4]])
        lines = out.splitlines()
        assert len(lines) == 4  # header, rule, 2 rows
        assert lines[0].startswith("a")
        # Columns align: every line same length when padded.
        assert len(set(len(l.rstrip()) <= len(lines[1]) for l in lines)) == 1

    def test_empty_rows(self):
        out = format_table(["x"], [])
        assert "x" in out


class TestEnsureNonemptySplits:
    def test_borrows_from_train(self):
        train, val, test = ensure_nonempty_splits([1, 2, 3, 4], [], [])
        assert len(train) == 2 and len(val) == 1 and len(test) == 1

    def test_leaves_full_splits_alone(self):
        train, val, test = ensure_nonempty_splits([1, 2], [3], [4])
        assert (train, val, test) == ([1, 2], [3], [4])

    def test_tiny_dataset_reuses_val_as_test(self):
        train, val, test = ensure_nonempty_splits([1, 2], [], [])
        assert val and test  # test falls back to val's sample
        assert test == val

    def test_all_samples_preserved(self):
        train, val, test = ensure_nonempty_splits([1, 2, 3], [], [4])
        assert sorted(train + val + test) == [1, 2, 3, 4]


class TestNaturalTargetLength:
    def test_headroom_above_natural(self):
        scale = ExperimentScale(resolution=64, seed=0)
        t = natural_target_length(scale, patch=4, split_value=2.0)
        # Must be at least the probe images' natural lengths.
        from repro.data import generate_wsi
        from repro.patching import AdaptivePatcher
        p = AdaptivePatcher(patch_size=4, split_value=2.0)
        nat = max(len(p.extract_natural(
            generate_wsi(64, seed=i).image.mean(axis=2))) for i in range(3))
        assert nat <= t
        assert t <= (64 // 4) ** 2  # capped at the uniform budget

    def test_floor_of_eight(self):
        scale = ExperimentScale(resolution=32, seed=0)
        t = natural_target_length(scale, patch=8, split_value=1e9)
        assert t >= 8
