"""Tests for the Ulysses sequence-parallel attention reference."""

import numpy as np
import pytest

from repro.distributed import ulysses_attention
from repro.distributed.sequence_parallel import _dense_attention


def qkv(h=4, n=16, dh=8, seed=0):
    rng = np.random.default_rng(seed)
    return (rng.normal(size=(h, n, dh)), rng.normal(size=(h, n, dh)),
            rng.normal(size=(h, n, dh)))


class TestUlysses:
    def test_equals_dense_attention(self):
        q, k, v = qkv()
        for w in (1, 2, 4):
            out, _ = ulysses_attention(q, k, v, w)
            np.testing.assert_allclose(out, _dense_attention(q, k, v),
                                       rtol=1e-12)

    def test_flops_conserved_across_ranks(self):
        # Total FLOPs = dense FLOPs: sequence parallelism does NOT reduce work
        # (the paper's core argument for APF).
        q, k, v = qkv()
        _, r1 = ulysses_attention(q, k, v, 1)
        _, r4 = ulysses_attention(q, k, v, 4)
        assert r4.flops_per_rank * 4 == pytest.approx(r1.flops_per_rank)

    def test_traffic_grows_with_world(self):
        q, k, v = qkv(h=8, n=32)
        _, r2 = ulysses_attention(q, k, v, 2)
        _, r8 = ulysses_attention(q, k, v, 8)
        assert r8.all_to_all_bytes_per_rank > 0
        assert r2.all_to_all_bytes_per_rank > 0

    def test_divisibility_validation(self):
        q, k, v = qkv(h=4, n=16)
        with pytest.raises(ValueError):
            ulysses_attention(q, k, v, 3)
        with pytest.raises(ValueError):
            ulysses_attention(q, k, v, 0)

    def test_world1_zero_traffic(self):
        q, k, v = qkv()
        _, r = ulysses_attention(q, k, v, 1)
        assert r.all_to_all_bytes_per_rank == 0.0
