"""Interactive slide-viewer demo: pan/zoom sessions over a 16K² WSI.

Walks the pyramid subsystem end to end:
1. open a 16K² ``VirtualWSISource`` and lift it into a ``TilePyramid`` —
   a power-of-two downsample ladder with content-addressed 256² tiles,
2. stand up a ``PyramidService`` over a DES-configured
   ``InferenceEngine``: viewport requests dispatch center-out on the
   interactive lane, speculative neighbors go to the bulk lane in
   Hilbert order, and stale tiles are cancelled when the viewer moves,
3. replay a scripted pan → zoom-in → pan session plus a second viewer
   converging on the same region, under the deterministic virtual clock,
4. print per-viewport time-to-first-tile and the shared-cache evidence
   (digest hits + in-flight joins) the second viewer rides on.

The slide is procedural and synthesized tile by tile — the 16K² scene
never exists in memory, and only the handful of tiles the viewports
touch are ever materialized or segmented.

Run:  PYTHONPATH=src python examples/viewer_demo.py
"""

import numpy as np

from repro.models import ViTSegmenter
from repro.pipeline import PatchPipeline
from repro.pyramid import (PyramidService, TilePyramid, ViewportEvent,
                           run_viewer_load)
from repro.serve import InferenceEngine, Predictor, ServiceModel, SimClock
from repro.stream import VirtualWSISource

RES, TILE = 16384, 256


def make_service(clock):
    model = ViTSegmenter(patch_size=4, channels=1, dim=32, depth=2, heads=4,
                         max_len=512, rng=np.random.default_rng(0)).eval()
    pipe = PatchPipeline(patch_size=4, split_value=8.0, channels=1,
                         cache_items=32)
    predictor = Predictor(model, pipe, max_batch=1, bucket=32)
    engine = InferenceEngine(predictor, clock=clock.now,
                             service_model=ServiceModel(), max_queue=64,
                             result_cache_items=64)
    source = VirtualWSISource(RES, seed=5, tile=TILE, cache_tiles=16)
    pyramid = TilePyramid(source, tile=TILE, max_level=3, cache_tiles=64)
    return PyramidService(pyramid, engine, policy="priority",
                          prefetch_tiles=4, prefetch_order="hilbert",
                          clock=clock.now)


def scripted_session():
    """One viewer pans at the overview level, zooms in, keeps panning —
    and a second viewer lands on the same region moments later."""
    view = (512, 512)
    a = [  # level-3 overview pan, then a zoom burst into level 2
        ViewportEvent(0.00, "alice", 3, (512, 512), view),
        ViewportEvent(0.15, "alice", 3, (512, 640), view),
        ViewportEvent(0.30, "alice", 3, (512, 768), view),
        ViewportEvent(0.50, "alice", 2, (1536, 1792), view),
        ViewportEvent(0.70, "alice", 2, (1536, 1920), view),
    ]
    b = [  # bob follows alice into the hot region: joins + cache hits
        ViewportEvent(0.40, "bob", 3, (512, 768), view),
        ViewportEvent(0.80, "bob", 2, (1536, 1792), view),
    ]
    return sorted(a + b, key=lambda e: (e.time, e.session))


def main():
    clock = SimClock()
    service = make_service(clock)
    print(f"pyramid over a {RES}x{RES} virtual WSI: "
          f"{service.pyramid.n_levels} levels, "
          f"{service.pyramid.describe()['total_tiles']} addressable tiles")

    report = run_viewer_load(service, scripted_session(), clock)

    print(f"\n{'viewer':<8} {'t':>5} {'lvl':>3} {'tiles':>5} {'cached':>6} "
          f"{'joined':>6} {'ttft(ms)':>9}")
    for view in report["reports"]:
        ttft = view.time_to_first_tile()
        print(f"{view.session:<8} {view.time:>5.2f} {view.level:>3} "
              f"{len(view.tasks):>5} {view.cache_hits:>6} {view.joined:>6} "
              f"{'--' if ttft is None else f'{1e3 * ttft:9.1f}'}")

    ttft = report["ttft"]
    print(f"\nviewports: {report['viewports']}  "
          f"submitted: {report['submitted']}  "
          f"cache hits: {report['cache_hits']}  joined: {report['joined']}  "
          f"stale-cancelled: {report['cancelled_stale']}")
    print(f"prefetched: {report['prefetch_submitted']} tiles "
          f"(hilbert-ordered, bulk lane)")
    print(f"time-to-first-tile p50/p99: "
          f"{1e3 * ttft['p50']:.1f} / {1e3 * ttft['p99']:.1f} ms (virtual)")
    print(f"failed: {report['failed']}  leaked: {report['leaked']}  "
          f"outstanding after drain: {report['outstanding']}")
    assert report["failed"] == 0 and report["leaked"] == 0
    print("\nviewer session complete; engine state clean.")


if __name__ == "__main__":
    main()
