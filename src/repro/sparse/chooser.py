"""The cost-model-driven plan chooser.

For each natural sequence the scheduler asks: run it dense, short-circuit
its background tokens, or merge its uniform runs? The chooser ranks the
candidates by *predicted* forward seconds — the calibrated
:class:`~repro.perf.costmodel.CostModel` evaluated at each plan's padded
bucket length — and picks the cheapest whose predicted quality delta fits
the configured budget:

* dense: delta 0 by definition;
* short-circuit: the routed-around detail mass as a fraction of the
  sequence's total detail mass — exactly 0 when every skipped token is
  provably flat (zero Eq. 6 edge mass), which is all the default
  ``detail_threshold = 0`` admits;
* merge: the merged-token fraction — never 0, so lossy merging needs an
  explicit ``epsilon > 0`` or a forced ``mode="merge"``.

Ties go to the earlier entry of (dense, short-circuit, merge): a plan
must be *strictly* cheaper than dense to displace it, so an all-detail
sequence (no background, no savings) always runs dense.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Callable, Dict, Optional

from ..perf.costmodel import CostModel
from ..perf.flops import TransformerConfig
from .config import SparsityConfig

__all__ = ["PlanChoice", "PlanChooser"]


@dataclass
class PlanChoice:
    """The chooser's verdict for one sequence (logged in stats)."""

    plan: str                       #: "dense" | "shortcircuit" | "merge"
    est_seconds: Dict[str, float]   #: predicted seconds per candidate
    deltas: Dict[str, float]        #: predicted quality delta per candidate
    n_tokens: int
    n_background: int
    n_merged: int


class PlanChooser:
    """Ranks dense / short-circuit / merge plans for one model shape."""

    def __init__(self, model, config: SparsityConfig,
                 cost_model: Optional[CostModel] = None):
        self.config = config
        self.cost_model = cost_model or CostModel()
        backbone = model.backbone
        layer = next(iter(backbone.encoder.layers))
        self._dim = backbone.dim
        self._depth = backbone.depth
        self._heads = int(layer.attn.heads)
        self._mlp_ratio = layer.mlp.fc1.out_features / backbone.dim

    def seconds_for_length(self, n_tokens: int,
                           bucket_length: Callable[[int], int]) -> float:
        """Predicted forward seconds at ``n_tokens``' padded bucket.

        Buckets, not raw lengths: two plans whose reduced lengths land in
        the same bucket execute the same compiled signature, and the
        chooser must see them as equal cost.
        """
        cfg = TransformerConfig(bucket_length(n_tokens), self._dim,
                                self._depth, heads=int(self._heads),
                                mlp_ratio=self._mlp_ratio)
        return self.cost_model.inference_seconds(cfg)

    def calibrate(self, n_tokens: int, bucket_length: Callable[[int], int],
                  measured_seconds: float) -> float:
        """Fit the cost model to one measured forward at ``n_tokens``."""
        cfg = TransformerConfig(bucket_length(n_tokens), self._dim,
                                self._depth, heads=int(self._heads),
                                mlp_ratio=self._mlp_ratio)
        return self.cost_model.calibrate_inference(cfg, measured_seconds)

    def choose(self, n_tokens: int, n_background: int, bg_detail_mass: float,
               total_detail_mass: float, n_merged: int,
               bucket_length: Callable[[int], int]) -> PlanChoice:
        """Pick the execution plan for one sequence.

        Parameters describe the candidates' effects: ``n_background``
        tokens would leave the sequence under short-circuit (carrying
        ``bg_detail_mass`` of the sequence's ``total_detail_mass``), and
        ``n_merged`` tokens would collapse onto representatives under
        merge. Forced modes bypass the ranking but still degrade to dense
        when their plan offers no reduction.
        """
        est = {"dense": self.seconds_for_length(n_tokens, bucket_length)}
        deltas = {"dense": 0.0}
        if n_background > 0:
            est["shortcircuit"] = self.seconds_for_length(
                n_tokens - n_background, bucket_length)
            deltas["shortcircuit"] = (bg_detail_mass / total_detail_mass
                                      if total_detail_mass > 0 else 0.0)
        if n_merged > 0:
            est["merge"] = self.seconds_for_length(
                n_tokens - n_merged, bucket_length)
            deltas["merge"] = n_merged / max(n_tokens, 1)

        mode = self.config.mode
        if mode in ("dense", "shortcircuit", "merge"):
            plan = mode if mode in est else "dense"
        else:                                      # auto: cheapest in budget
            plan = "dense"
            for cand in ("shortcircuit", "merge"):
                if cand not in est or deltas[cand] > self.config.epsilon:
                    continue
                if est[cand] < est[plan]:
                    plan = cand
        return PlanChoice(plan=plan, est_seconds=est, deltas=deltas,
                          n_tokens=n_tokens, n_background=n_background,
                          n_merged=n_merged)
