"""Tile-addressable output sinks — bounded assembly, checkpoint, resume.

A 16K² int64 class map is 2 GB; the streaming runner therefore never
assembles its output. A sink receives one finished macro-tile at a time
and owns durability:

* :class:`MemorySink` — per-tile dict for tests and small scenes.
* :class:`NpyDirectorySink` — one ``.npy`` per macro-tile, written via
  write-temp-then-``os.replace``. **The tile files are the checkpoint**:
  a file exists iff its tile completed (the atomic rename can't leave a
  torn file), so :meth:`completed` needs no side manifest and a killed
  run resumes by skipping exactly the files on disk. Filenames derive
  from tile *origins*, so artifacts survive schedule-order changes.

Both sinks share digest/assemble helpers; the bench proves byte-identity
of a killed-and-resumed run by comparing :meth:`digest` values.
"""

from __future__ import annotations

import hashlib
import os
import tempfile
from pathlib import Path
from typing import Dict, Optional, Set, Union

import numpy as np

from ..perf import write_json_atomic
from .planner import MacroTile, StreamPlan

__all__ = ["MemorySink", "NpyDirectorySink"]

#: Refuse whole-scene assembly above this many elements (it defeats the
#: point of streaming); tests and demos stay far below.
_ASSEMBLE_LIMIT = 1 << 27


def _out_shape(plan: StreamPlan) -> tuple:
    if plan.kind == "volume":
        return plan.scene_shape
    return plan.scene_shape[:2]


def _assemble(plan: StreamPlan, fetch, dtype) -> np.ndarray:
    total = int(np.prod(_out_shape(plan)))
    if total > _ASSEMBLE_LIMIT:
        raise ValueError(
            f"refusing to assemble {total} elements (> {_ASSEMBLE_LIMIT}); "
            "consume tiles individually instead")
    out = np.zeros(_out_shape(plan), dtype=dtype)
    for t in plan.tiles:
        out[t.slices()] = fetch(t)
    return out


def _digest(plan: StreamPlan, fetch) -> str:
    """Order-independent content digest: tiles hashed in origin order."""
    h = hashlib.blake2b(digest_size=16)
    for t in sorted(plan.tiles, key=lambda t: t.origin):
        arr = np.ascontiguousarray(fetch(t))
        h.update(t.name.encode())
        h.update(str(arr.dtype).encode())
        h.update(arr.tobytes())
    return h.hexdigest()


class MemorySink:
    """Hold finished tiles in a dict keyed by tile name (small scenes only)."""

    def __init__(self) -> None:
        self.tiles: Dict[str, np.ndarray] = {}

    def completed(self, plan: StreamPlan) -> Set[int]:
        return {t.index for t in plan.tiles if t.name in self.tiles}

    def write(self, tile: MacroTile, class_map: np.ndarray) -> None:
        self.tiles[tile.name] = np.asarray(class_map)

    def read(self, tile: MacroTile) -> np.ndarray:
        return self.tiles[tile.name]

    def assemble(self, plan: StreamPlan, dtype=np.int64) -> np.ndarray:
        return _assemble(plan, self.read, dtype)

    def digest(self, plan: StreamPlan) -> str:
        return _digest(plan, self.read)


class NpyDirectorySink:
    """Out-of-core sink: one atomically-written ``.npy`` per macro-tile.

    Parameters
    ----------
    root:
        Output directory (created if missing).
    dtype:
        Optional storage dtype (e.g. ``np.uint8`` shrinks a class map 8x).
        The cast must be value-exact; lossy writes raise instead of
        silently corrupting the bit-identity contract.
    """

    def __init__(self, root: Union[str, Path], dtype=None):
        self.root = Path(root)
        self.root.mkdir(parents=True, exist_ok=True)
        self.dtype = np.dtype(dtype) if dtype is not None else None

    def _path(self, tile: MacroTile) -> Path:
        return self.root / f"{tile.name}.npy"

    def _expected_shape(self, plan: StreamPlan, tile: MacroTile) -> tuple:
        if plan.kind == "volume":
            return tile.size + plan.scene_shape[1:]
        return tile.size

    def completed(self, plan: StreamPlan) -> Set[int]:
        """Tiles already durable on disk (atomic writes ⇒ presence = done).

        An artifact only counts when its header matches the plan (shape,
        and dtype when the sink pins one), so stale files from a run with
        a different tile size or storage dtype are recomputed rather than
        silently accepted. Resume still assumes the same model/config —
        tile *values* are not re-derived. Orphaned ``.tmp`` files from a
        hard kill are swept here.
        """
        for orphan in self.root.glob("*.tmp"):
            orphan.unlink()
        done = set()
        for t in plan.tiles:
            path = self._path(t)
            if not path.exists():
                continue
            try:
                arr = np.load(path, mmap_mode="r")   # header only, no data
            except (OSError, ValueError):
                continue
            if arr.shape != self._expected_shape(plan, t):
                continue
            if self.dtype is not None and arr.dtype != self.dtype:
                continue
            done.add(t.index)
        return done

    def discard(self) -> None:
        """Delete every tile artifact, including orphaned temp files."""
        for p in (*self.root.glob("*.npy"), *self.root.glob("*.tmp")):
            p.unlink()

    def write(self, tile: MacroTile, class_map: np.ndarray) -> None:
        arr = np.asarray(class_map)
        if self.dtype is not None and arr.dtype != self.dtype:
            cast = arr.astype(self.dtype)
            if not np.array_equal(cast.astype(arr.dtype), arr):
                raise ValueError(
                    f"values of {tile.name} do not fit dtype {self.dtype}")
            arr = cast
        fd, tmp = tempfile.mkstemp(dir=self.root, prefix=tile.name + ".",
                                   suffix=".tmp")
        try:
            with os.fdopen(fd, "wb") as fh:
                np.save(fh, arr)
            os.replace(tmp, self._path(tile))
        except BaseException:
            try:
                os.unlink(tmp)
            except OSError:
                pass
            raise

    def read(self, tile: MacroTile) -> np.ndarray:
        return np.load(self._path(tile))

    def assemble(self, plan: StreamPlan, dtype=np.int64) -> np.ndarray:
        return _assemble(plan, self.read, dtype)

    def digest(self, plan: StreamPlan) -> str:
        return _digest(plan, self.read)

    def finalize(self, plan: StreamPlan, report: Optional[dict] = None) -> None:
        """Write ``manifest.json`` (scene metadata + per-tile digests).

        One pass over the artifacts: the combined digest accumulates the
        same ``(name, dtype, bytes)`` stream :func:`_digest` hashes, so
        tiles are loaded once, not twice.
        """
        tiles = {}
        combined = hashlib.blake2b(digest_size=16)
        for t in sorted(plan.tiles, key=lambda t: t.origin):
            arr = np.ascontiguousarray(self.read(t))
            data = arr.tobytes()
            tiles[t.name] = hashlib.blake2b(data, digest_size=16).hexdigest()
            combined.update(t.name.encode())
            combined.update(str(arr.dtype).encode())
            combined.update(data)
        manifest = {"plan": plan.describe(), "tiles": tiles,
                    "digest": combined.hexdigest()}
        if report is not None:
            manifest["report"] = report
        write_json_atomic(self.root / "manifest.json", manifest)
