"""Serving metrics — counters and streaming latency histograms.

The engine needs tail-latency numbers (p50/p95/p99) over an unbounded
request stream without retaining per-request samples. :class:`Histogram`
is a log-bucketed (HDR-style) streaming histogram: observations land in
geometrically spaced buckets, so memory is O(#buckets) and any quantile is
answered by walking the cumulative counts with linear interpolation inside
the hit bucket. Relative error is bounded by the bucket growth factor
(default 1.12 → ≤ ~6% per quantile), which is far below the run-to-run
noise of any real latency measurement — and exact zeros/minima/maxima are
tracked separately so summaries stay honest at the edges.

Everything is lock-protected: client threads record submissions while the
batcher thread records completions. With the simulated clock
(:mod:`.loadgen`) the same histograms accumulate *virtual* seconds, which
keeps the CI gate on tail latency deterministic.

Every metric is **mergeable**: counters add, gauges sum (peaks combine to
a safe upper bound), and histograms with the same bucket grid add their
bucket counts — so the fleet router publishes fleet-wide p50/p95/p99 by
merging per-replica registries (:meth:`MetricsRegistry.merge`) without
ever re-bucketing raw samples.
"""

from __future__ import annotations

import math
import threading
from typing import Dict, Iterable, Optional

__all__ = ["Counter", "Gauge", "Histogram", "MetricsRegistry"]


class Counter:
    """Monotonic named counter (thread-safe)."""

    def __init__(self, name: str):
        self.name = name
        self._value = 0
        self._lock = threading.Lock()

    def inc(self, n: int = 1) -> None:
        if n < 0:
            raise ValueError("counters only increase")
        with self._lock:
            self._value += n

    @property
    def value(self) -> int:
        return self._value

    def merge(self, other: "Counter") -> None:
        """Fold another counter in (fleet aggregation: counts add)."""
        self.inc(other.value)

    def __repr__(self) -> str:  # pragma: no cover - debug aid
        return f"Counter({self.name}={self._value})"


class Gauge:
    """Point-in-time value with a peak high-water mark (thread-safe).

    Counters only go up and histograms aggregate; a gauge answers "what is
    it *now* and how bad did it *get*" — queue depth, in-flight tiles,
    resident bytes. The peak is what backpressure tuning reads: a peak
    queue depth pinned at capacity means the producer outruns the batcher.
    """

    def __init__(self, name: str):
        self.name = name
        self._value = 0.0
        self._peak = 0.0
        self._lock = threading.Lock()

    def set(self, value: float) -> None:
        with self._lock:
            self._value = value
            self._peak = max(self._peak, value)

    @property
    def value(self) -> float:
        return self._value

    @property
    def peak(self) -> float:
        return self._peak

    def summary(self) -> Dict[str, float]:
        with self._lock:
            return {"value": self._value, "peak": self._peak}

    def merge(self, other: "Gauge") -> None:
        """Fold another gauge in: values sum (fleet queue depth is the sum
        of replica depths); peaks also sum, which is an *upper bound* — the
        replicas need not have peaked at the same instant."""
        value, peak = other.value, other.peak
        with self._lock:
            self._value += value
            self._peak += peak

    def __repr__(self) -> str:  # pragma: no cover - debug aid
        return f"Gauge({self.name}={self._value}, peak={self._peak})"


class Histogram:
    """Streaming log-bucketed histogram with quantile queries.

    Parameters
    ----------
    lo, hi:
        Smallest/largest resolvable positive value; observations below
        ``lo`` count as the first bucket, above ``hi`` as the last.
    growth:
        Geometric bucket growth factor (> 1). Quantile relative error is
        at most ``growth - 1`` inside one bucket.
    """

    def __init__(self, name: str, *, lo: float = 1e-6, hi: float = 1e5,
                 growth: float = 1.12):
        if not (0 < lo < hi) or growth <= 1.0:
            raise ValueError("need 0 < lo < hi and growth > 1")
        self.name = name
        self._lo = lo
        self._log_lo = math.log(lo)
        self._log_growth = math.log(growth)
        self._n_buckets = int(math.ceil((math.log(hi) - self._log_lo)
                                        / self._log_growth)) + 1
        self._counts = [0] * self._n_buckets
        self.count = 0
        self.total = 0.0
        self.min: Optional[float] = None
        self.max: Optional[float] = None
        self._lock = threading.Lock()

    @classmethod
    def like(cls, name: str, other: "Histogram") -> "Histogram":
        """Empty histogram sharing ``other``'s exact bucket grid (so a
        subsequent :meth:`merge` from ``other`` is always compatible)."""
        h = cls.__new__(cls)
        h.name = name
        h._lo = other._lo
        h._log_lo = other._log_lo
        h._log_growth = other._log_growth
        h._n_buckets = other._n_buckets
        h._counts = [0] * other._n_buckets
        h.count = 0
        h.total = 0.0
        h.min = None
        h.max = None
        h._lock = threading.Lock()
        return h

    # -- recording --------------------------------------------------------
    def _bucket(self, x: float) -> int:
        if x <= self._lo:
            return 0
        i = int((math.log(x) - self._log_lo) / self._log_growth)
        return min(i, self._n_buckets - 1)

    def observe(self, x: float) -> None:
        if x < 0:
            raise ValueError(f"negative observation {x} in {self.name!r}")
        with self._lock:
            self._counts[self._bucket(x)] += 1
            self.count += 1
            self.total += x
            self.min = x if self.min is None else min(self.min, x)
            self.max = x if self.max is None else max(self.max, x)

    # -- queries ----------------------------------------------------------
    def _edges(self, i: int):
        lo = 0.0 if i == 0 else self._lo * math.exp(i * self._log_growth)
        hi = self._lo * math.exp((i + 1) * self._log_growth)
        return lo, hi

    def percentile(self, p: float) -> float:
        """Approximate p-th percentile (p in [0, 100]); NaN when empty.

        NaN (not 0.0) is the empty sentinel: a histogram of genuine zero
        latencies must stay distinguishable from one that saw nothing.
        :meth:`summary` maps the empty case to all-zero fields so JSON
        snapshots stay finite.
        """
        if not 0 <= p <= 100:
            raise ValueError("percentile wants p in [0, 100]")
        with self._lock:
            if self.count == 0:
                return float("nan")
            rank = p / 100.0 * self.count
            seen = 0
            for i, c in enumerate(self._counts):
                if c == 0:
                    continue
                if seen + c >= rank:
                    lo, hi = self._edges(i)
                    frac = (rank - seen) / c
                    # clamp to the exactly-tracked extremes
                    est = lo + frac * (hi - lo)
                    return float(min(max(est, self.min), self.max))
                seen += c
            return float(self.max)  # pragma: no cover - rank <= count

    def compatible(self, other: "Histogram") -> bool:
        """True when both histograms share the exact bucket grid."""
        return (self._lo == other._lo
                and self._log_growth == other._log_growth
                and self._n_buckets == other._n_buckets)

    def merge(self, other: "Histogram") -> None:
        """Fold another histogram in by adding bucket counts.

        Requires an identical bucket grid (``lo``/``hi``/``growth``), so
        merged quantiles carry exactly the same error bound as each input
        — no re-bucketing, no sample retention. This is how the fleet
        router publishes fleet-wide latency percentiles from per-replica
        engine histograms.
        """
        if not self.compatible(other):
            raise ValueError(
                f"cannot merge {other.name!r} into {self.name!r}: "
                f"bucket grids differ")
        with other._lock:
            counts = list(other._counts)
            count, total = other.count, other.total
            omin, omax = other.min, other.max
        with self._lock:
            for i, c in enumerate(counts):
                self._counts[i] += c
            self.count += count
            self.total += total
            if omin is not None:
                self.min = omin if self.min is None else min(self.min, omin)
            if omax is not None:
                self.max = omax if self.max is None else max(self.max, omax)

    @property
    def mean(self) -> float:
        return self.total / self.count if self.count else 0.0

    def summary(self) -> Dict[str, float]:
        if self.count == 0:
            # all-zero, not NaN: summaries feed JSON snapshots and
            # report-equality bench gates, where NaN breaks both
            return {"count": 0, "mean": 0.0, "min": 0.0, "max": 0.0,
                    "p50": 0.0, "p95": 0.0, "p99": 0.0}
        return {"count": self.count, "mean": self.mean,
                "min": self.min if self.min is not None else 0.0,
                "max": self.max if self.max is not None else 0.0,
                "p50": self.percentile(50), "p95": self.percentile(95),
                "p99": self.percentile(99)}


class MetricsRegistry:
    """Named counters + histograms with one-call snapshotting."""

    def __init__(self):
        self._counters: Dict[str, Counter] = {}
        self._gauges: Dict[str, Gauge] = {}
        self._histograms: Dict[str, Histogram] = {}
        self._lock = threading.Lock()

    def counter(self, name: str) -> Counter:
        with self._lock:
            if name not in self._counters:
                self._counters[name] = Counter(name)
            return self._counters[name]

    def gauge(self, name: str) -> Gauge:
        with self._lock:
            if name not in self._gauges:
                self._gauges[name] = Gauge(name)
            return self._gauges[name]

    def histogram(self, name: str, **kwargs) -> Histogram:
        with self._lock:
            if name not in self._histograms:
                self._histograms[name] = Histogram(name, **kwargs)
            return self._histograms[name]

    def inc(self, name: str, n: int = 1) -> None:
        self.counter(name).inc(n)

    def observe(self, name: str, x: float) -> None:
        self.histogram(name).observe(x)

    def merge(self, other: "MetricsRegistry") -> "MetricsRegistry":
        """Fold every metric of ``other`` into this registry (by name).

        Missing metrics are created on first sight — histograms cloned
        with the source's bucket grid so quantile error bounds survive the
        merge. Returns ``self`` so per-replica registries chain:
        ``fleet = MetricsRegistry(); [fleet.merge(r.metrics) for r in reps]``.
        """
        with other._lock:
            counters = list(other._counters.items())
            gauges = list(other._gauges.items())
            hists = list(other._histograms.items())
        for name, c in counters:
            self.counter(name).merge(c)
        for name, g in gauges:
            self.gauge(name).merge(g)
        for name, h in hists:
            with self._lock:
                if name not in self._histograms:
                    self._histograms[name] = Histogram.like(name, h)
                mine = self._histograms[name]
            mine.merge(h)
        return self

    def snapshot(self) -> Dict[str, object]:
        """Plain-dict view: counters as ints, gauges/histograms as summaries."""
        with self._lock:
            counters = list(self._counters.values())
            gauges = list(self._gauges.values())
            hists = list(self._histograms.values())
        out: Dict[str, object] = {c.name: c.value for c in counters}
        out.update({g.name: g.summary() for g in gauges})
        out.update({h.name: h.summary() for h in hists})
        return out

    def names(self) -> Iterable[str]:
        with self._lock:
            return sorted(set(self._counters) | set(self._gauges)
                          | set(self._histograms))
