"""Tiled scene sources — address gigapixel scenes without materializing them.

Every inference path in the repo so far takes a fully-materialized ndarray;
a 64K² RGB slide is ~100 GB as float64, which no single host holds. A
:class:`TiledSource` decouples *addressing* a scene from *storing* it: the
streaming planner asks only for ``shape``/``kind``, and the runner reads one
macro-tile region at a time, so peak memory is set by the tile size, never
the scene size.

Two concrete sources:

* :class:`ArraySource` — adapter over an in-memory array (the degenerate
  case; lets every streaming test compare against the non-streamed paths
  on identical pixels).
* :class:`VirtualWSISource` — a *procedural* whole-slide image in the
  style of :mod:`repro.data.synthetic_paip`: each aligned tile is
  synthesized on demand from a per-tile seeded RNG, so a 16K²–64K² slide
  is fully addressable, deterministic down to the bit, and never exists
  in memory as a whole. Morphology scales (tissue blobs, per-organ lesion
  granularity, stripe orientation) follow the same per-organ ladder as
  ``generate_wsi``; smooth fields are synthesized on a coarse grid and
  bilinearly upsampled, so a tile costs milliseconds instead of the
  seconds full-resolution Gaussian filtering would take.
"""

from __future__ import annotations

from collections import OrderedDict
from typing import Optional, Protocol, Tuple

import numpy as np
from scipy import ndimage

from ..data.synthetic_paip import _ORGAN_PARAMS, NUM_ORGAN_CLASSES, PAIPSample

__all__ = ["TiledSource", "ArraySource", "VirtualWSISource"]


class TiledSource(Protocol):
    """What the streaming planner/runner need from a scene.

    ``kind`` is ``"image"`` (shape ``(H, W)`` or ``(H, W, C)``; regions are
    2-D ``(y, x)`` rectangles) or ``"volume"`` (shape ``(S, Z, Z)``;
    regions are 1-D ``(z,)`` slabs of whole slices).
    """

    shape: Tuple[int, ...]
    kind: str

    def read_region(self, origin: Tuple[int, ...],
                    size: Tuple[int, ...]) -> np.ndarray:
        """Materialize one region; the only way pixels leave the source."""
        ...  # pragma: no cover - protocol


def _check_region(shape: Tuple[int, ...], kind: str, origin, size) -> None:
    ndims = 1 if kind == "volume" else 2
    if len(origin) != ndims or len(size) != ndims:
        raise ValueError(f"{kind} regions take {ndims}-D origin/size, got "
                         f"origin={tuple(origin)} size={tuple(size)}")
    for d, (o, s) in enumerate(zip(origin, size)):
        if s < 1 or o < 0 or o + s > shape[d]:
            raise ValueError(f"region origin={tuple(origin)} size={tuple(size)} "
                             f"out of bounds for scene shape {shape}")


class ArraySource:
    """In-memory adapter: the whole scene is already an ndarray.

    Exists so every streaming path can be bit-compared against the
    non-streamed reference on identical pixels — and so moderate scenes
    can use the streaming API (bounded *output* assembly, resume) even
    when the input fits in RAM. Regions are views, not copies; treat them
    as read-only.
    """

    def __init__(self, array: np.ndarray, kind: Optional[str] = None):
        array = np.asarray(array)
        if array.ndim == 2:
            inferred = "image"
        elif array.ndim == 3:
            # (H, W, C) image planes are thin; (S, Z, Z) volumes are not.
            inferred = "image" if array.shape[2] in (1, 3, 4) else "volume"
        else:
            raise ValueError(f"expected a 2-D/3-D scene, got shape {array.shape}")
        self.kind = kind if kind is not None else inferred
        if self.kind not in ("image", "volume"):
            raise ValueError(f"unknown scene kind {self.kind!r}")
        if self.kind == "volume" and array.ndim != 3:
            raise ValueError(f"volume sources need (S, Z, Z), got {array.shape}")
        self.array = array
        self.shape = array.shape

    def read_region(self, origin, size) -> np.ndarray:
        _check_region(self.shape, self.kind, origin, size)
        if self.kind == "volume":
            return self.array[origin[0]:origin[0] + size[0]]
        return self.array[origin[0]:origin[0] + size[0],
                          origin[1]:origin[1] + size[1]]


#: Smooth fields are synthesized on a ``tile/GRID_FACTOR`` grid and
#: bilinearly upsampled — correlation lengths match full-resolution
#: filtering while costing (GRID_FACTOR²)x less.
_GRID_FACTOR = 8


def _smooth_field(rng: np.random.Generator, n: int, sigma: float) -> np.ndarray:
    """Gaussian-filtered white noise on the coarse grid (unnormalized)."""
    return ndimage.gaussian_filter(rng.standard_normal((n, n)), sigma,
                                   mode="reflect")


def _bilerp_up(field: np.ndarray, out: int) -> np.ndarray:
    """Bilinear upsample of a square coarse field to ``out``² (unit range).

    Samples the coarse field at fine-pixel centers with edge clamping —
    deterministic pure-NumPy, no scipy spline state.
    """
    n = field.shape[0]
    g = out // n
    pos = (np.arange(out) + 0.5) / g - 0.5
    lo = np.floor(pos).astype(np.int64)
    frac = pos - lo
    i0 = np.clip(lo, 0, n - 1)
    i1 = np.clip(lo + 1, 0, n - 1)
    f00 = field[np.ix_(i0, i0)]
    f01 = field[np.ix_(i0, i1)]
    f10 = field[np.ix_(i1, i0)]
    f11 = field[np.ix_(i1, i1)]
    wy = frac[:, None]
    wx = frac[None, :]
    up = (f00 * (1 - wy) * (1 - wx) + f01 * (1 - wy) * wx
          + f10 * wy * (1 - wx) + f11 * wy * wx)
    lo_v, hi_v = up.min(), up.max()
    return (up - lo_v) / (hi_v - lo_v + 1e-12)


class VirtualWSISource:
    """A procedural gigapixel WSI addressable tile by tile.

    Deterministic per ``(resolution, seed, organ, tile)``: tile ``(ty, tx)``
    is a pure function of those values, so any access order — streaming,
    resumed, or random — observes identical pixels. Stripe phase uses
    absolute slide coordinates, so the intralesional architecture is
    continuous across tile boundaries.

    Parameters
    ----------
    resolution:
        Slide side length; must be a multiple of ``tile``.
    tile:
        Synthesis granularity (power of two ≥ 32). Reads of any aligned or
        unaligned region are assembled from these tiles.
    organ:
        Class in ``[0, 6)`` controlling lesion morphology (None: drawn
        deterministically from the seed).
    cache_tiles:
        Small LRU over synthesized tiles, serving repeated/overlapping
        reads. Memory is bounded by ``cache_tiles`` tile payloads.
    """

    kind = "image"

    def __init__(self, resolution: int, *, seed: int = 0,
                 organ: Optional[int] = None, tile: int = 1024,
                 cache_tiles: int = 2):
        if tile < 32 or tile & (tile - 1):
            raise ValueError(f"tile must be a power of two >= 32, got {tile}")
        if resolution < tile or resolution % tile:
            raise ValueError(f"resolution {resolution} must be a positive "
                             f"multiple of tile {tile}")
        if cache_tiles < 1:
            raise ValueError("cache_tiles must be >= 1")
        if organ is None:
            root = np.random.default_rng(
                np.random.SeedSequence([resolution, seed, 0xA1]))
            organ = int(root.integers(0, NUM_ORGAN_CLASSES))
        if not 0 <= organ < NUM_ORGAN_CLASSES:
            raise ValueError(f"organ must be in [0, {NUM_ORGAN_CLASSES}), "
                             f"got {organ}")
        self.resolution = resolution
        self.seed = seed
        self.organ = organ
        self.tile = tile
        self.shape = (resolution, resolution, 3)
        self._cache: "OrderedDict[Tuple[int, int], Tuple[np.ndarray, np.ndarray]]" \
            = OrderedDict()
        self._cache_tiles = cache_tiles

    @property
    def grid(self) -> Tuple[int, int]:
        """Tile-grid shape ``(ny, nx)``."""
        return (self.resolution // self.tile, self.resolution // self.tile)

    # -- per-tile synthesis ------------------------------------------------
    def _synth(self, ty: int, tx: int) -> Tuple[np.ndarray, np.ndarray]:
        """Synthesize tile ``(ty, tx)`` → (image (T, T, 3), mask (T, T))."""
        ny, nx = self.grid
        if not (0 <= ty < ny and 0 <= tx < nx):
            raise ValueError(f"tile ({ty}, {tx}) outside grid {self.grid}")
        hit = self._cache.get((ty, tx))
        if hit is not None:
            self._cache.move_to_end((ty, tx))
            return hit
        rng = np.random.default_rng(np.random.SeedSequence(
            [self.resolution, self.seed, self.organ, self.tile, ty, tx, 0xF1]))
        tint, lesion_div, prevalence = _ORGAN_PARAMS[self.organ]
        t = self.tile
        n = t // _GRID_FACTOR

        # Same construction as generate_wsi at z = tile, on the coarse grid:
        # tissue silhouette, class-irrelevant texture, organ-scaled lesions.
        tissue_field = _bilerp_up(_smooth_field(rng, n, n / 6.0), t)
        tissue = tissue_field > np.quantile(tissue_field, 0.45)
        tex = _bilerp_up(_smooth_field(rng, n, max(n / 16.0, 1.0)), t)
        lesion_field = _bilerp_up(
            _smooth_field(rng, n, max(n / lesion_div, 0.6)), t)
        if tissue.any():
            thr = np.quantile(lesion_field[tissue], 1.0 - 0.22 * prevalence)
        else:  # pragma: no cover - tissue quantile always keeps 55%
            thr = 1.1
        lesion = (lesion_field > thr) & tissue

        # Stripe phase in absolute slide coordinates: continuous across tiles.
        theta = self.organ * np.pi / NUM_ORGAN_CLASSES
        yy = (ty * t + np.arange(t))[:, None]
        xx = (tx * t + np.arange(t))[None, :]
        stripes = 0.5 + 0.5 * np.sin(
            2 * np.pi * (xx * np.cos(theta) + yy * np.sin(theta)) / 4.0)

        img = np.full((t, t, 3), 0.93)
        for c in range(3):
            channel = img[:, :, c]
            channel[tissue] = tint[c] * (0.55 + 0.45 * tex[tissue])
            channel[lesion] = tint[c] * (0.15 + 0.25 * tex[lesion]
                                         + 0.30 * stripes[lesion])
        img += 0.004 * rng.standard_normal((t, t, 3))
        img = np.clip(img, 0.0, 1.0)
        mask = lesion.astype(np.float64)
        # Cached tiles are shared across reads — freeze them.
        img.setflags(write=False)
        mask.setflags(write=False)
        self._cache[(ty, tx)] = (img, mask)
        while len(self._cache) > self._cache_tiles:
            self._cache.popitem(last=False)
        return img, mask

    def tile_sample(self, ty: int, tx: int) -> PAIPSample:
        """One synthesized tile as a :class:`~repro.data.synthetic_paip.PAIPSample`."""
        img, mask = self._synth(ty, tx)
        return PAIPSample(image=img, mask=mask, organ=self.organ)

    # -- region reads ------------------------------------------------------
    def _assemble(self, origin, size, plane: int) -> np.ndarray:
        """Gather region pixels from overlapping tiles (0: image, 1: mask)."""
        y0, x0 = origin
        h, w = size
        t = self.tile
        if (h, w) == (t, t) and y0 % t == 0 and x0 % t == 0:
            return self._synth(y0 // t, x0 // t)[plane]   # aligned fast path
        shape = (h, w, 3) if plane == 0 else (h, w)
        out = np.empty(shape)
        for ty in range(y0 // t, (y0 + h - 1) // t + 1):
            for tx in range(x0 // t, (x0 + w - 1) // t + 1):
                data = self._synth(ty, tx)[plane]
                ya, yb = max(y0, ty * t), min(y0 + h, (ty + 1) * t)
                xa, xb = max(x0, tx * t), min(x0 + w, (tx + 1) * t)
                out[ya - y0:yb - y0, xa - x0:xb - x0] = \
                    data[ya - ty * t:yb - ty * t, xa - tx * t:xb - tx * t]
        return out

    def read_region(self, origin, size) -> np.ndarray:
        """(h, w, 3) image pixels of the region (read-only when aligned)."""
        _check_region(self.shape, self.kind, origin, size)
        return self._assemble(origin, size, 0)

    def read_mask_region(self, origin, size) -> np.ndarray:
        """(h, w) ground-truth lesion mask of the region."""
        _check_region(self.shape, self.kind, origin, size)
        return self._assemble(origin, size, 1)
