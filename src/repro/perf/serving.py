"""Serving capacity planning — batch-server throughput/utilization math.

Companion to the α–β training cost model (:mod:`.costmodel`), but for the
inference engine: given a service-time model with the batch-server shape
``cost(B, L) = a + B * (L*b + c)`` (fixed per-dispatch overhead plus
per-item work — :class:`repro.serve.loadgen.ServiceModel` or anything
duck-typed like it), these helpers answer the questions an operator sizes
an engine with: what is the saturated throughput at a given batch size,
how much of it does an offered load consume, and what does batching buy
over serial dispatch. The load benchmark records them next to its measured
numbers so the JSON is self-interpreting.
"""

from __future__ import annotations

import math
from typing import Sequence

__all__ = ["engine_capacity", "serial_capacity", "batching_speedup_bound",
           "utilization", "fleet_capacity", "replicas_for_rate",
           "routing_imbalance", "fleet_scaling_bound"]


def engine_capacity(service_model, max_batch: int, length: int) -> float:
    """Saturated throughput (requests/s) of a batch server running full
    ``max_batch`` flushes of ``length``-token requests back to back."""
    if max_batch < 1:
        raise ValueError("max_batch must be >= 1")
    return max_batch / service_model.cost(max_batch, length)


def serial_capacity(service_model, length: int) -> float:
    """Saturated throughput of the unbatched one-at-a-time baseline."""
    return 1.0 / service_model.cost(1, length)


def batching_speedup_bound(service_model, max_batch: int,
                           length: int) -> float:
    """Upper bound on the engine/serial throughput ratio at saturation:
    ``(a + s) / (a/B + s)`` with per-item seconds ``s`` — what amortizing
    the fixed dispatch overhead ``a`` over ``B`` requests can buy."""
    return (engine_capacity(service_model, max_batch, length)
            / serial_capacity(service_model, length))


def utilization(offered_rate: float, capacity: float) -> float:
    """Offered load as a fraction of capacity (>1 means overload)."""
    if offered_rate < 0 or capacity <= 0:
        raise ValueError("need offered_rate >= 0 and capacity > 0")
    return offered_rate / capacity


# -- fleet (N replicas behind the router) -----------------------------------

def fleet_capacity(service_model, max_batch: int, length: int,
                   replicas: int) -> float:
    """Saturated throughput of ``replicas`` independent batch servers.

    Replicas share nothing on the hot path (each owns its Predictor and
    queue), so fleet capacity is linear in the replica count; what eats
    the linearity in practice is routing *imbalance* — digest-affinity
    hashing shards keys near-evenly but not exactly, and the busiest
    replica sets the makespan. :func:`routing_imbalance` quantifies that
    gap from observed per-replica request counts.
    """
    if replicas < 1:
        raise ValueError("replicas must be >= 1")
    return replicas * engine_capacity(service_model, max_batch, length)


def routing_imbalance(per_replica_counts: Sequence[int]) -> float:
    """Busiest replica's load relative to perfect balance (>= 1.0).

    ``max(counts) / mean(counts)`` — 1.0 is a perfectly even shard; the
    achievable fleet speedup over one replica is roughly
    ``replicas / imbalance`` (the busiest replica is the critical path).
    """
    counts = list(per_replica_counts)
    if not counts or any(c < 0 for c in counts):
        raise ValueError("need non-negative per-replica counts")
    total = sum(counts)
    if total == 0:
        return 1.0
    return max(counts) * len(counts) / total


def fleet_scaling_bound(replicas: int,
                        per_replica_counts: Sequence[int]) -> float:
    """Upper bound on the N-replica/1-replica throughput ratio given the
    observed shard balance: ``replicas / routing_imbalance(counts)``."""
    if replicas < 1:
        raise ValueError("replicas must be >= 1")
    return replicas / routing_imbalance(per_replica_counts)


def replicas_for_rate(offered_rate: float, service_model, max_batch: int,
                      length: int, *, headroom: float = 0.7) -> int:
    """Smallest fleet size keeping utilization at or below ``headroom``.

    The capacity-planning inverse: how many replicas does an offered load
    need so each runs at no more than ``headroom`` of its saturated
    throughput (tail latency explodes as utilization -> 1, so plan with
    slack).
    """
    if offered_rate < 0:
        raise ValueError("offered_rate must be >= 0")
    if not 0 < headroom <= 1:
        raise ValueError("headroom must be in (0, 1]")
    per_replica = engine_capacity(service_model, max_batch, length) * headroom
    return max(1, math.ceil(offered_rate / per_replica))
