"""Tests for the uniform-grid baseline patcher."""

import numpy as np
import pytest

from repro.patching import UniformPatcher, uniform_sequence_length


class TestSequenceLength:
    def test_paper_example(self):
        # §III-A: Z=512, P=8 → N=4096.
        assert uniform_sequence_length(512, 8) == 4096

    def test_indivisible_raises(self):
        with pytest.raises(ValueError):
            uniform_sequence_length(512, 7)


class TestUniformPatcher:
    def test_patch_count(self):
        seq = UniformPatcher(4)(np.zeros((16, 16)))
        assert len(seq) == 16
        assert seq.n_real == 16
        assert seq.valid.all()

    def test_patch_content_exact(self):
        img = np.arange(64, dtype=float).reshape(8, 8)
        seq = UniformPatcher(4).extract(img)
        np.testing.assert_array_equal(seq.patches[0, 0], img[:4, :4])
        np.testing.assert_array_equal(seq.patches[1, 0], img[:4, 4:])
        np.testing.assert_array_equal(seq.patches[3, 0], img[4:, 4:])

    def test_channels_preserved(self):
        img = np.random.default_rng(0).random((8, 8, 3))
        seq = UniformPatcher(2).extract(img)
        assert seq.patches.shape == (16, 3, 2, 2)

    def test_reconstruct_roundtrip(self):
        img = np.random.default_rng(0).random((16, 16, 2))
        patcher = UniformPatcher(4)
        seq = patcher.extract(img)
        rec = patcher.reconstruct(seq)
        np.testing.assert_allclose(rec, img.transpose(2, 0, 1))

    def test_rejects_nonsquare(self):
        with pytest.raises(ValueError):
            UniformPatcher(4).extract(np.zeros((8, 16)))

    def test_rejects_indivisible(self):
        with pytest.raises(ValueError):
            UniformPatcher(3).extract(np.zeros((8, 8)))

    def test_geometry_row_major(self):
        seq = UniformPatcher(4).extract(np.zeros((8, 8)))
        np.testing.assert_array_equal(seq.ys, [0, 0, 4, 4])
        np.testing.assert_array_equal(seq.xs, [0, 4, 0, 4])

    def test_tokens_flatten(self):
        seq = UniformPatcher(4).extract(np.zeros((8, 8, 3)))
        assert seq.tokens().shape == (4, 3 * 16)
