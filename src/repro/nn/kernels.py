"""The kernel dispatch table — one source of numerical truth.

Every forward computation in the autograd engine (:mod:`repro.nn.tensor`,
:mod:`repro.nn.functional`) routes through the kernels registered here, and
the compiled executor (:mod:`repro.runtime`) replays the *same* kernel
functions over a static graph. Because both paths call identical NumPy
expressions on identical values, compiled inference is bit-identical to the
eager ``no_grad`` forward by construction — the same discipline the batched
patchers use against their per-image references.

Each :class:`Kernel` carries up to two implementations:

``fn(params, *inputs)``
    The allocating reference forward. This is what eager mode calls.
``fn_out(params, out, scratch, *inputs)``
    An optional destination-passing variant used by the compiled executor:
    it writes the result into a preallocated ``out`` buffer (``scratch`` is a
    shape-keyed pool for large intermediates). Implementations must replay
    the exact ufunc arithmetic of ``fn`` — NumPy ufuncs produce identical
    bits with and without ``out=`` — so buffer reuse never changes a value.

Kernels flagged ``view=True`` return NumPy views (reshape / transpose /
basic slicing); the planner resolves them statically instead of scheduling
work.

The module also hosts the **trace hook**: a thread-local tracer that, when
armed by :func:`repro.runtime.trace`, is notified of every op the tape
executes. Keeping the hook here (dependency-free) lets ``tensor.py`` and
``runtime`` share it without circular imports.
"""

from __future__ import annotations

import threading
from typing import Callable, Dict, Optional

import numpy as np

__all__ = ["Kernel", "KERNELS", "register", "forward", "record",
           "set_tracer", "tracing"]


class Kernel:
    """A named forward computation with an optional ``out=`` variant."""

    __slots__ = ("name", "fn", "fn_out", "view")

    def __init__(self, name: str, fn: Callable,
                 fn_out: Optional[Callable] = None, view: bool = False):
        self.name = name
        self.fn = fn
        self.fn_out = fn_out
        self.view = view

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return f"Kernel({self.name!r}, out={self.fn_out is not None})"


#: The dispatch table. Op name -> Kernel.
KERNELS: Dict[str, Kernel] = {}


def register(name: str, fn: Callable, fn_out: Optional[Callable] = None,
             view: bool = False) -> Kernel:
    """Register a kernel under ``name`` (last registration wins)."""
    k = Kernel(name, fn, fn_out, view)
    KERNELS[name] = k
    return k


def forward(name: str, params, *inputs) -> np.ndarray:
    """Run the reference (allocating) forward of kernel ``name``."""
    return KERNELS[name].fn(params, *inputs)


# ----------------------------------------------------------------------
# trace hook
# ----------------------------------------------------------------------

class _TraceState(threading.local):
    tracer = None


_trace_state = _TraceState()


def set_tracer(tracer):
    """Arm (or disarm, with ``None``) the op tracer for this thread.

    Returns the previously armed tracer so callers can restore it.
    """
    prev = _trace_state.tracer
    _trace_state.tracer = tracer
    return prev


def tracing() -> bool:
    """True when a tracer is armed in this thread."""
    return _trace_state.tracer is not None


def record(name: str, params, inputs, out) -> None:
    """Notify the armed tracer (if any) that an op just executed.

    ``inputs`` are the operand Tensors (post-coercion), ``out`` the result
    Tensor. No-op when tracing is off — the hot-path cost is one attribute
    load and a falsy check.
    """
    tracer = _trace_state.tracer
    if tracer is not None:
        tracer.record(name, params, inputs, out)


# ----------------------------------------------------------------------
# elementwise arithmetic
# ----------------------------------------------------------------------

register("add", lambda p, a, b: a + b,
         lambda p, out, sc, a, b: np.add(a, b, out=out))
register("sub", lambda p, a, b: a - b,
         lambda p, out, sc, a, b: np.subtract(a, b, out=out))
register("neg", lambda p, a: -a,
         lambda p, out, sc, a: np.negative(a, out=out))
register("mul", lambda p, a, b: a * b,
         lambda p, out, sc, a, b: np.multiply(a, b, out=out))
register("div", lambda p, a, b: a / b,
         lambda p, out, sc, a, b: np.divide(a, b, out=out))
# ndarray.__pow__ special-cases small scalar exponents (2 -> square, 0.5 ->
# sqrt, ...); keep the operator expression so bits match eager exactly.
register("pow", lambda p, a: a ** p[0])
register("abs", lambda p, a: np.abs(a),
         lambda p, out, sc, a: np.abs(a, out=out))
register("clip", lambda p, a: np.clip(a, p[0], p[1]),
         lambda p, out, sc, a: np.clip(a, p[0], p[1], out=out))


# ----------------------------------------------------------------------
# transcendental / nonlinearities
# ----------------------------------------------------------------------

register("exp", lambda p, a: np.exp(a),
         lambda p, out, sc, a: np.exp(a, out=out))
register("log", lambda p, a: np.log(a),
         lambda p, out, sc, a: np.log(a, out=out))
register("sqrt", lambda p, a: np.sqrt(a),
         lambda p, out, sc, a: np.sqrt(a, out=out))
register("tanh", lambda p, a: np.tanh(a),
         lambda p, out, sc, a: np.tanh(a, out=out))


def _sigmoid(p, x):
    """Numerically stable logistic (moved verbatim from ``Tensor.sigmoid``)."""
    val = np.where(x >= 0, 1.0 / (1.0 + np.exp(-np.clip(x, None, 88.0))),
                   np.exp(np.clip(x, -88.0, None))
                   / (1.0 + np.exp(np.clip(x, -88.0, None))))
    return val.astype(x.dtype, copy=False)


register("sigmoid", _sigmoid)


def _relu(p, x):
    return x * (x > 0)


def _relu_out(p, out, sc, x):
    return np.multiply(x, x > 0, out=out)


register("relu", _relu, _relu_out)


def _gelu_constants(x: np.ndarray):
    """(c, t) pieces shared by the gelu forward and its tape backward.

    The cube is ``x * x * x`` — ``x ** 3`` falls through numpy's scalar-power
    fast paths into a per-element libm ``pow`` an order of magnitude slower.
    """
    c = x.dtype.type(np.sqrt(2.0 / np.pi))
    t = np.tanh(c * (x + 0.044715 * (x * x * x)))
    return c, t


def _gelu(p, x):
    _, t = _gelu_constants(x)
    return (0.5 * x * (1.0 + t)).astype(x.dtype, copy=False)


def _gelu_out(p, out, sc, x):
    """In-buffer GELU replaying the reference expression term by term.

    Reference: ``t = tanh(c * (x + 0.044715 * x**3)); 0.5 * x * (1 + t)``.
    Every step below is the same ufunc on the same values, so the result is
    bit-identical; ``s`` holds the tanh argument / (1 + t) chain.
    """
    c = x.dtype.type(np.sqrt(2.0 / np.pi))
    s = sc(x.shape, x.dtype)
    np.multiply(x, x, out=s)
    np.multiply(s, x, out=s)
    np.multiply(s, x.dtype.type(0.044715), out=s)
    np.add(x, s, out=s)
    np.multiply(s, c, out=s)
    np.tanh(s, out=s)
    np.add(s, x.dtype.type(1.0), out=s)
    np.multiply(x, x.dtype.type(0.5), out=out)
    np.multiply(out, s, out=out)
    return out


register("gelu", _gelu, _gelu_out)


# ----------------------------------------------------------------------
# reductions
# ----------------------------------------------------------------------

register("sum", lambda p, a: a.sum(axis=p[0], keepdims=p[1]),
         lambda p, out, sc, a: np.sum(a, axis=p[0], keepdims=p[1], out=out))


def _max(p, a):
    axis, keepdims = p
    val = a.max(axis=axis, keepdims=True)
    if keepdims:
        return val
    return (np.squeeze(val, axis=axis) if axis is not None
            else val.reshape(()))


register("max", _max)


# ----------------------------------------------------------------------
# shape ops (views)
# ----------------------------------------------------------------------

register("reshape", lambda p, a: a.reshape(p[0]), view=True)
register("transpose", lambda p, a: a.transpose(p[0]), view=True)
register("getitem", lambda p, a: a[p[0]], view=True)
register("astype", lambda p, a: a.astype(p[0]))


# ----------------------------------------------------------------------
# linear algebra / combinators
# ----------------------------------------------------------------------

register("matmul", lambda p, a, b: a @ b,
         lambda p, out, sc, a, b: np.matmul(a, b, out=out))
register("concat", lambda p, *xs: np.concatenate(xs, axis=p[0]))
register("stack", lambda p, *xs: np.stack(xs, axis=p[0]))


# ----------------------------------------------------------------------
# structured NN ops
# ----------------------------------------------------------------------

def _softmax(p, x):
    shifted = x - x.max(axis=p[0], keepdims=True)
    e = np.exp(shifted)
    return e / e.sum(axis=p[0], keepdims=True)


def _softmax_out(p, out, sc, x):
    """Softmax into ``out`` (which may alias ``x``): subtract-max, exp and
    normalize are the reference ufuncs with destinations supplied."""
    axis = p[0]
    m = x.max(axis=axis, keepdims=True)
    np.subtract(x, m, out=out)
    np.exp(out, out=out)
    s = out.sum(axis=axis, keepdims=True)
    np.divide(out, s, out=out)
    return out


register("softmax", _softmax, _softmax_out)


def _log_softmax(p, x):
    shifted = x - x.max(axis=p[0], keepdims=True)
    lse = np.log(np.exp(shifted).sum(axis=p[0], keepdims=True))
    return shifted - lse


register("log_softmax", _log_softmax)


def _layer_norm_stats(x: np.ndarray, eps: float):
    """(xhat, inv) shared by the forward value and the tape backward."""
    mu = x.mean(axis=-1, keepdims=True)
    xc = x - mu
    var = (xc * xc).mean(axis=-1, keepdims=True)
    inv = 1.0 / np.sqrt(var + eps)
    return xc * inv, inv


def _layer_norm(p, x, w, b):
    xhat, _ = _layer_norm_stats(x, p[0])
    return xhat * w + b


def _layer_norm_out(p, out, sc, x, w, b):
    """LayerNorm into ``out`` with one full-size scratch for the xc² pass.

    Per-row statistics (mu/var/inv) are tiny and allocated normally; only
    the two (B, L, D) temporaries are buffered. Same ufuncs, same order.
    """
    eps = p[0]
    mu = x.mean(axis=-1, keepdims=True)
    np.subtract(x, mu, out=out)             # xc
    s = sc(x.shape, out.dtype)
    np.multiply(out, out, out=s)            # xc * xc
    var = s.mean(axis=-1, keepdims=True)
    inv = 1.0 / np.sqrt(var + eps)
    np.multiply(out, inv, out=out)          # xhat
    np.multiply(out, w, out=out)
    np.add(out, b, out=out)
    return out


register("layer_norm", _layer_norm, _layer_norm_out)
