"""Tests for the module system: registration, state dicts, shapes, and modes."""

import numpy as np
import pytest

from repro import nn


class TestModuleSystem:
    def test_parameter_discovery_nested(self):
        m = nn.Sequential(nn.Linear(4, 8), nn.Sequential(nn.Linear(8, 2)))
        names = [n for n, _ in m.named_parameters()]
        assert len(names) == 4  # 2 weights + 2 biases
        assert any("layers.0.weight" in n for n in names)

    def test_parameters_deduplicated(self):
        lin = nn.Linear(3, 3)

        class Shared(nn.Module):
            def __init__(self):
                super().__init__()
                self.a = lin
                self.b = lin

        assert len(Shared().parameters()) == 2

    def test_modulelist_registration(self):
        ml = nn.ModuleList([nn.Linear(2, 2) for _ in range(3)])
        assert len(list(ml.named_parameters())) == 6
        assert len(ml) == 3

    def test_train_eval_propagates(self):
        m = nn.Sequential(nn.Linear(2, 2), nn.Dropout(0.5))
        m.eval()
        assert all(not sub.training for sub in m.modules())
        m.train()
        assert all(sub.training for sub in m.modules())

    def test_state_dict_roundtrip(self):
        rng = np.random.default_rng(0)
        m1 = nn.Linear(4, 4, rng=np.random.default_rng(1))
        m2 = nn.Linear(4, 4, rng=np.random.default_rng(2))
        assert not np.allclose(m1.weight.data, m2.weight.data)
        m2.load_state_dict(m1.state_dict())
        np.testing.assert_array_equal(m1.weight.data, m2.weight.data)

    def test_state_dict_missing_key_raises(self):
        m = nn.Linear(2, 2)
        sd = m.state_dict()
        del sd["bias"]
        with pytest.raises(KeyError):
            m.load_state_dict(sd)

    def test_state_dict_shape_mismatch_raises(self):
        m = nn.Linear(2, 2)
        sd = m.state_dict()
        sd["weight"] = np.zeros((3, 3))
        with pytest.raises(ValueError):
            m.load_state_dict(sd)

    def test_num_parameters(self):
        m = nn.Linear(10, 5)
        assert m.num_parameters() == 10 * 5 + 5

    def test_zero_grad(self):
        m = nn.Linear(3, 1, dtype=np.float64)
        x = nn.Tensor(np.ones((2, 3)))
        m(x).sum().backward()
        assert m.weight.grad is not None
        m.zero_grad()
        assert m.weight.grad is None


class TestShapes:
    def test_linear_shapes(self):
        m = nn.Linear(7, 3)
        assert m(nn.Tensor(np.zeros((2, 5, 7), dtype=np.float32))).shape == (2, 5, 3)

    def test_conv_output_size(self):
        m = nn.Conv2d(3, 8, kernel=3, stride=1, padding=1)
        assert m(nn.Tensor(np.zeros((1, 3, 16, 16), dtype=np.float32))).shape == (1, 8, 16, 16)

    def test_conv_stride2(self):
        m = nn.Conv2d(3, 8, kernel=2, stride=2)
        assert m(nn.Tensor(np.zeros((1, 3, 16, 16), dtype=np.float32))).shape == (1, 8, 8, 8)

    def test_conv_channel_mismatch_raises(self):
        m = nn.Conv2d(3, 8, kernel=3)
        with pytest.raises(ValueError):
            m(nn.Tensor(np.zeros((1, 4, 8, 8), dtype=np.float32)))

    def test_convtranspose_doubles(self):
        m = nn.ConvTranspose2d(8, 4, kernel=2, stride=2)
        assert m(nn.Tensor(np.zeros((1, 8, 5, 5), dtype=np.float32))).shape == (1, 4, 10, 10)

    def test_convtranspose_inverts_conv_geometry(self):
        x = nn.Tensor(np.zeros((1, 4, 16, 16), dtype=np.float32))
        down = nn.Conv2d(4, 6, kernel=2, stride=2)(x)
        up = nn.ConvTranspose2d(6, 4, kernel=2, stride=2)(down)
        assert up.shape == x.shape

    def test_mha_preserves_shape(self):
        m = nn.MultiHeadAttention(16, 4)
        assert m(nn.Tensor(np.zeros((2, 9, 16), dtype=np.float32))).shape == (2, 9, 16)

    def test_mha_dim_heads_mismatch_raises(self):
        with pytest.raises(ValueError):
            nn.MultiHeadAttention(10, 3)

    def test_transformer_encoder_hidden_states(self):
        enc = nn.TransformerEncoder(8, depth=4, heads=2)
        x = nn.Tensor(np.zeros((1, 5, 8), dtype=np.float32))
        out, hidden = enc(x, return_hidden=(2, 4))
        assert out.shape == (1, 5, 8)
        assert len(hidden) == 2

    def test_groupnorm_validates_divisibility(self):
        with pytest.raises(ValueError):
            nn.GroupNorm(3, 8)

    def test_identity(self):
        x = nn.Tensor(np.ones(3))
        assert nn.Identity()(x) is x


class TestBehaviour:
    def test_dropout_eval_is_identity(self):
        d = nn.Dropout(0.9)
        d.eval()
        x = nn.Tensor(np.ones((4, 4)))
        np.testing.assert_array_equal(d(x).data, x.data)

    def test_dropout_train_scales(self):
        d = nn.Dropout(0.5, rng=np.random.default_rng(0))
        x = nn.Tensor(np.ones((100, 100)))
        y = d(x).data
        # Inverted dropout: surviving entries are 1/keep = 2.0.
        assert set(np.unique(y)).issubset({0.0, 2.0})
        assert abs(y.mean() - 1.0) < 0.05

    def test_layernorm_normalizes(self):
        ln = nn.LayerNorm(64)
        x = nn.Tensor(np.random.default_rng(0).normal(5.0, 3.0, size=(4, 64)).astype(np.float32))
        y = ln(x).data
        np.testing.assert_allclose(y.mean(axis=-1), 0, atol=1e-4)
        np.testing.assert_allclose(y.std(axis=-1), 1, atol=1e-2)

    def test_batchnorm_running_stats_update(self):
        bn = nn.BatchNorm2d(2)
        x = nn.Tensor(np.random.default_rng(0).normal(3.0, 2.0, size=(8, 2, 4, 4)).astype(np.float32))
        bn(x)
        assert not np.allclose(bn.running_mean, 0)
        bn.eval()
        y1 = bn(x).data
        y2 = bn(x).data
        np.testing.assert_array_equal(y1, y2)  # eval mode is deterministic

    def test_mha_attention_rows_sum_to_one(self):
        m = nn.MultiHeadAttention(8, 2)
        x = nn.Tensor(np.random.default_rng(0).normal(size=(1, 6, 8)).astype(np.float32))
        attn = m.attention_map(x)
        assert attn.shape == (1, 2, 6, 6)
        np.testing.assert_allclose(attn.sum(axis=-1), 1.0, rtol=1e-5)

    def test_sequential_iteration(self):
        s = nn.Sequential(nn.Identity(), nn.Identity())
        assert len(s) == 2
        assert len(list(iter(s))) == 2


class TestOptim:
    def _quadratic_problem(self, opt_cls, **kw):
        # Minimize ||Wx - y||^2 for fixed x, y.
        rng = np.random.default_rng(0)
        w = nn.Parameter(rng.normal(size=(3, 3)))
        x = nn.Tensor(rng.normal(size=(3,)))
        y = nn.Tensor(rng.normal(size=(3,)))
        opt = opt_cls([w], **kw)
        losses = []
        for _ in range(200):
            opt.zero_grad()
            diff = w @ x - y
            loss = (diff * diff).sum()
            loss.backward()
            opt.step()
            losses.append(float(loss.data))
        return losses

    def test_sgd_converges(self):
        losses = self._quadratic_problem(nn.SGD, lr=0.05)
        assert losses[-1] < 1e-4 * max(losses[0], 1.0)

    def test_sgd_momentum_converges(self):
        losses = self._quadratic_problem(nn.SGD, lr=0.02, momentum=0.9)
        assert losses[-1] < 1e-4

    def test_adam_converges(self):
        losses = self._quadratic_problem(nn.Adam, lr=0.1)
        assert losses[-1] < 1e-4

    def test_adamw_converges(self):
        losses = self._quadratic_problem(nn.AdamW, lr=0.1)
        assert losses[-1] < 1e-4

    def test_adamw_decay_shrinks_weights(self):
        w = nn.Parameter(np.ones((4, 4)))
        opt = nn.AdamW([w], lr=0.01, weight_decay=0.5)
        for _ in range(10):
            opt.zero_grad()
            (w * 0.0).sum().backward()
            opt.step()
        assert np.abs(w.data).max() < 1.0

    def test_empty_params_raises(self):
        with pytest.raises(ValueError):
            nn.SGD([], lr=0.1)

    def test_multistep_schedule_matches_paper(self):
        w = nn.Parameter(np.ones(1))
        opt = nn.AdamW([w], lr=1e-4)
        sched = nn.MultiStepLR(opt, milestones=[500, 750, 875], gamma=0.1)
        lrs = {}
        for epoch in range(1, 1001):
            sched.step()
            lrs[epoch] = opt.lr
        assert lrs[499] == pytest.approx(1e-4)
        assert lrs[500] == pytest.approx(1e-5)
        assert lrs[750] == pytest.approx(1e-6)
        assert lrs[875] == pytest.approx(1e-7)

    def test_cosine_schedule_endpoints(self):
        w = nn.Parameter(np.ones(1))
        opt = nn.SGD([w], lr=1.0)
        sched = nn.CosineLR(opt, total_epochs=100, min_lr=0.1)
        for _ in range(100):
            sched.step()
        assert opt.lr == pytest.approx(0.1, abs=1e-6)

    def test_cosine_warmup_ramps(self):
        w = nn.Parameter(np.ones(1))
        opt = nn.SGD([w], lr=1.0)
        sched = nn.CosineLR(opt, total_epochs=100, warmup=10)
        sched.step()
        assert opt.lr == pytest.approx(0.1)

    def test_clip_grad_norm(self):
        w = nn.Parameter(np.ones(4))
        w.grad = np.full(4, 10.0)
        pre = nn.clip_grad_norm([w], max_norm=1.0)
        assert pre == pytest.approx(20.0)
        assert np.linalg.norm(w.grad) == pytest.approx(1.0)
