"""Out-of-core streaming inference demo: a virtual gigapixel-style WSI.

Walks the streaming subsystem end to end:
1. open a ``VirtualWSISource`` — a procedural PAIP-style slide that is
   addressable tile by tile and never materialized in memory,
2. plan it into quadtree-aligned macro-tiles scheduled along the Morton
   curve (``plan_scene``), with per-tile working-set estimates,
3. stream it through the compiled ``Predictor`` with a hard memory bound
   (``StreamingRunner`` + ``TracedMemory``), checkpointing each finished
   macro-tile to an ``NpyDirectorySink``,
4. kill the run halfway, resume it, and verify the resumed output is
   byte-identical to an uninterrupted run.

Scale the same three lines to a real 64K² slide by raising ``RES`` —
peak memory stays a few macro-tiles regardless.

Run:  PYTHONPATH=src python examples/streaming_wsi.py
"""

import json
import shutil
import tempfile
from pathlib import Path

import numpy as np

from repro.models import ViTSegmenter
from repro.pipeline import PatchPipeline
from repro.serve import Predictor
from repro.stream import (NpyDirectorySink, StreamingRunner, VirtualWSISource,
                          plan_scene)

RES, TILE = 2048, 512           # 16 macro-tiles; raise RES for real scale


def make_predictor():
    model = ViTSegmenter(patch_size=4, channels=1, dim=32, depth=2, heads=4,
                         max_len=512, rng=np.random.default_rng(0)).eval()
    pipe = PatchPipeline(patch_size=4, split_value=16.0, channels=1,
                         cache_items=4)
    return Predictor(model, pipe, max_batch=4, bucket=64)


class DieAfter:
    """Sink wrapper that kills the process stand-in after ``n`` tiles."""

    def __init__(self, inner, n):
        self.inner, self.left = inner, n

    def completed(self, plan):
        return self.inner.completed(plan)

    def write(self, tile, arr):
        if self.left == 0:
            raise KeyboardInterrupt
        self.inner.write(tile, arr)
        self.left -= 1


def main():
    out = Path(tempfile.mkdtemp(prefix="streaming_wsi_"))
    source = VirtualWSISource(RES, seed=0, organ=2, tile=TILE)
    plan = plan_scene(source.shape, tile=TILE, max_len=512)
    print("— plan —")
    print(json.dumps(plan.describe(), indent=2))
    print(f"scene would cost {plan.scene_bytes / 1e9:.2f} GB materialized; "
          f"working set is {plan.working_set_bytes() / 1e6:.0f} MB/tile")

    # 1) stream straight through, memory-tracked
    sink = NpyDirectorySink(out / "straight", dtype=np.uint8)
    report = StreamingRunner(make_predictor(), track_memory=True).run(
        source, plan, sink)
    print("\n— streamed —")
    print(json.dumps(report.to_dict(), indent=2))
    print(f"peak traced memory: {report.peak_traced_bytes / 1e6:.0f} MB "
          f"({report.peak_traced_bytes / plan.scene_bytes:.1%} of the scene)")

    # 2) kill halfway, then resume: byte-identical artifacts
    resumed = NpyDirectorySink(out / "resumed", dtype=np.uint8)
    try:
        StreamingRunner(make_predictor()).run(
            source, plan, DieAfter(resumed, len(plan.tiles) // 2))
    except KeyboardInterrupt:
        print(f"\nkilled after {len(resumed.completed(plan))} tiles; resuming…")
    resume_report = StreamingRunner(make_predictor()).run(source, plan, resumed)
    print(f"resume skipped {resume_report.tiles_skipped}, "
          f"ran {resume_report.tiles_run}")
    assert resumed.digest(plan) == sink.digest(plan)
    print("resumed output is byte-identical to the uninterrupted run ✓")

    shutil.rmtree(out)


if __name__ == "__main__":
    main()
