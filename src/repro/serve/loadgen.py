"""Deterministic simulated-clock load harness for the inference engine.

Real-time load tests are hopeless on shared 1-CPU CI: wall-clock arrival
jitter swamps the quantities under test. This module replaces wall time
with a **virtual clock** driven by a discrete-event loop: seeded open-loop
arrival traces (:func:`poisson_trace`) are replayed against an
:class:`~repro.serve.engine.InferenceEngine` whose service times come from
a calibrated :class:`ServiceModel` instead of measurements. The engine
still executes the *real* model on every batch — results are real, only
the timeline is simulated — so one run yields bit-exact outputs **and**
bit-exact virtual latency/throughput numbers, on any host, every time.
That is what lets ``benchmarks/BENCH_serving.json`` gate tail latency in
CI without flakes.

Open-loop semantics: arrivals fire at their trace times regardless of
completions (the production-realistic regime — clients do not politely
wait). When the engine's admission control rejects an arrival it is
counted and dropped, exactly like a load balancer shedding to a 429.

The serial baseline (:func:`serial_baseline`) models the pre-engine
deployment — one blocking ``predict_image`` worker serving the same trace
FIFO — using the same :class:`ServiceModel`, so the speedup ratio isolates
what continuous batching buys (fixed per-dispatch overhead amortized over
``max_batch`` requests) from constants both paths share.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, List, Optional, Sequence

import numpy as np

from .queueing import EngineOverloaded

__all__ = ["Arrival", "SimClock", "ServiceModel", "poisson_trace",
           "merge_traces", "run_load", "serial_baseline",
           "ReplicaKill", "ReplicaDrain", "run_fleet_load"]


@dataclass(frozen=True)
class Arrival:
    """One trace event: at ``time``, submit ``items[item]`` on ``lane``."""

    time: float
    item: int
    lane: str = "interactive"
    kind: str = "image"            #: "image" -> submit, "volume" -> submit_volume


class SimClock:
    """Forward-only virtual clock; pass ``clock.now`` to the engine."""

    def __init__(self, t0: float = 0.0):
        self._t = float(t0)

    def now(self) -> float:
        return self._t

    def set(self, t: float) -> None:
        """Advance to ``t`` (never moves backwards)."""
        self._t = max(self._t, float(t))

    def advance(self, dt: float) -> None:
        if dt < 0:
            raise ValueError("cannot advance backwards")
        self._t += dt


@dataclass
class ServiceModel:
    """Virtual service-time model: ``cost(B, L) = a + B * (L*b + c)``.

    Defaults are calibrated against ``BENCH_inference.json`` on the 1-CPU
    reference host: a compiled plan dispatch costs a roughly constant
    ``batch_seconds`` of Python/kernel overhead (the quantity batching
    amortizes), plus per-item work linear in padded sequence length
    (``token_seconds``) and a stitch/postprocess term (``item_seconds``).
    Absolute values matter less than their *ratio* — it determines the
    achievable batching speedup — and the defaults are deliberately
    conservative versus the measured single-image overhead share.
    """

    batch_seconds: float = 0.030
    token_seconds: float = 2.0e-5
    item_seconds: float = 0.003

    def cost(self, batch: int, length: int) -> float:
        """Virtual seconds to run one (batch, length) plan execution."""
        if batch < 1 or length < 1:
            raise ValueError("batch and length must be >= 1")
        return self.batch_seconds + batch * (length * self.token_seconds
                                             + self.item_seconds)

    def serial(self, length: int) -> float:
        """Virtual seconds for an unbatched single-request execution."""
        return self.cost(1, length)


def poisson_trace(rate: float, n: int, *, seed: int, n_items: int = 1,
                  lane: str = "interactive", kind: str = "image",
                  start: float = 0.0) -> List[Arrival]:
    """Seeded open-loop Poisson arrivals (one client stream).

    ``n`` arrivals at ``rate``/s from ``start``; each references a
    uniformly drawn item index in ``[0, n_items)``. Everything flows from
    ``seed`` — the same call always yields the same trace.
    """
    if rate <= 0 or n < 1 or n_items < 1:
        raise ValueError("need rate > 0, n >= 1, n_items >= 1")
    rng = np.random.default_rng(seed)
    times = start + np.cumsum(rng.exponential(1.0 / rate, size=n))
    items = rng.integers(0, n_items, size=n)
    return [Arrival(float(t), int(i), lane, kind)
            for t, i in zip(times, items)]


def merge_traces(*traces: Sequence[Arrival]) -> List[Arrival]:
    """Interleave client streams into one time-ordered trace."""
    merged = [a for trace in traces for a in trace]
    merged.sort(key=lambda a: (a.time, a.lane, a.item))
    return merged


def run_load(engine, trace: Sequence[Arrival], items: Sequence[np.ndarray],
             clock: SimClock) -> Dict[str, object]:
    """Replay an arrival trace through the engine under the virtual clock.

    The engine must have been constructed with ``clock=clock.now`` and a
    ``service_model`` (deterministic completions); :meth:`start` must NOT
    have been called — this loop owns dispatch via ``engine.step``.

    Discrete-event loop: between consecutive arrivals, run every batch
    whose flush time (full bucket, or oldest-request deadline) and the
    single server's availability both fall before the next arrival;
    submissions are stamped at their exact trace times. Returns a report
    with virtual throughput/latency plus the engine's own stats snapshot.
    """
    arrivals = sorted(trace, key=lambda a: (a.time, a.lane, a.item))
    if not arrivals:
        raise ValueError("empty trace")
    t_begin = arrivals[0].time
    free_at = clock.now()
    futures = []
    rejected = 0
    retry_hints: List[float] = []

    def pump(limit: float) -> None:
        """Run all batches that can start strictly before ``limit``."""
        nonlocal free_at
        while True:
            due = engine.next_flush_at(max(free_at, clock.now()))
            if due is None:
                return
            start_t = max(free_at, due)
            if start_t >= limit:
                return
            clock.set(start_t)
            report = engine.step(start_t)
            if report is None:      # pragma: no cover - policy safety net
                return
            free_at = start_t + report.cost

    for arrival in arrivals:
        pump(arrival.time)
        clock.set(arrival.time)
        payload = items[arrival.item]
        try:
            if arrival.kind == "volume":
                futures.append(engine.submit_volume(payload,
                                                    lane=arrival.lane))
            else:
                futures.append(engine.submit(payload, lane=arrival.lane))
        except EngineOverloaded as exc:
            rejected += 1
            retry_hints.append(exc.retry_after)
    pump(float("inf"))
    clock.set(free_at)

    unresolved = sum(1 for f in futures if not f.done())
    if unresolved:
        raise RuntimeError(f"{unresolved} accepted futures never resolved")
    snap = engine.stats()
    eng = snap["engine"]
    # collapsed duplicates are accepted submissions served by their twin's
    # execution — they count toward delivered throughput like cache hits
    completed = (eng.get("completed", 0) + eng.get("cache_hits", 0)
                 + eng.get("collapsed", 0))
    makespan = max(clock.now() - t_begin, 1e-12)
    batches = eng.get("batches", 0)
    return {
        "offered": len(arrivals),
        "accepted": len(futures),
        "rejected_submissions": rejected,
        "mean_retry_after": (float(np.mean(retry_hints))
                             if retry_hints else 0.0),
        "requests_completed": completed,
        "makespan": makespan,
        "throughput": completed / makespan,
        "batches": batches,
        "mean_batch_size": (eng["batch_size"]["mean"] if batches else 0.0),
        "latency": eng.get("latency"),
        "latency_per_lane": {lane: eng[f"latency.{lane}"]
                             for lane in engine.config.lanes
                             if f"latency.{lane}" in eng},
        "stats": snap,
    }


@dataclass(frozen=True)
class ReplicaKill:
    """Fault-injection event: fail-stop replica ``rank`` at virtual ``time``.

    Results computed before ``time`` stand; the replica's waiting queue is
    re-hashed onto the survivors (see :meth:`FleetRouter.kill`) with the
    original futures and submit times intact — the disruption shows up as
    latency, never as loss.
    """

    time: float
    rank: int


@dataclass(frozen=True)
class ReplicaDrain:
    """Lifecycle event: stop admitting to ``rank`` at virtual ``time``;
    its queued work retires through the normal batcher path."""

    time: float
    rank: int


def run_fleet_load(router, trace: Sequence[Arrival],
                   items: Sequence[np.ndarray], clock: SimClock,
                   events: Sequence = ()) -> Dict[str, object]:
    """Replay an arrival trace through a :class:`FleetRouter` fleet.

    The multi-server extension of :func:`run_load`: every replica engine
    keeps its own virtual availability horizon, and the discrete-event
    loop always dispatches the earliest-starting due batch across the
    whole fleet (ties break by rank, so the schedule is deterministic).
    All engines must share ``clock`` (``clock=clock.now``) and carry
    :class:`ServiceModel`\\ s — heterogeneous per-replica models are fine;
    :func:`~repro.serve.fleet.build_fleet` sets this up.

    ``events`` interleaves :class:`ReplicaKill` / :class:`ReplicaDrain`
    with the arrivals on the virtual timeline (events at an arrival's
    exact time fire first, so a same-instant arrival already routes
    around the dead replica). ``router.route_seconds`` models the routing
    hop: each submission is stamped that much after its arrival.

    Returns the :func:`run_load`-shaped report plus fleet extras:
    per-replica breakdowns, rerouting/spill/drop counters, and the
    fleet-wide merged latency histograms (bucket-wise sums — true fleet
    percentiles, not averages of per-replica percentiles).
    """
    arrivals = sorted(trace, key=lambda a: (a.time, a.lane, a.item))
    if not arrivals:
        raise ValueError("empty trace")
    t_begin = arrivals[0].time
    free_at = {r.rank: clock.now() for r in router.replicas}
    futures = []
    rejected = 0
    retry_hints: List[float] = []

    def pump(limit: float) -> None:
        """Dispatch every fleet batch that can start strictly before
        ``limit``, earliest start first (rank breaks ties)."""
        while True:
            best = None
            for replica in router.replicas:
                if not replica.serving:
                    continue
                due = replica.engine.next_flush_at(
                    max(free_at[replica.rank], clock.now()))
                if due is None:
                    continue
                start_t = max(free_at[replica.rank], due)
                if best is None or start_t < best[0]:
                    best = (start_t, replica)
            if best is None or best[0] >= limit:
                return
            start_t, replica = best
            clock.set(start_t)
            report = replica.engine.step(start_t)
            if report is None:      # pragma: no cover - policy safety net
                return
            free_at[replica.rank] = start_t + report.cost

    stream = sorted(
        [(ev.time, 0, ev) for ev in events]
        + [(a.time, 1, a) for a in arrivals],
        key=lambda entry: entry[:2])
    for _, tag, ev in stream:
        if tag == 0:
            pump(ev.time)
            clock.set(ev.time)
            tracer = getattr(router, "tracer", None)
            if isinstance(ev, ReplicaKill):
                if tracer is not None:
                    tracer.instant("fault.kill", "loadgen", ev.time,
                                   args={"rank": ev.rank})
                router.kill(ev.rank)
            elif isinstance(ev, ReplicaDrain):
                if tracer is not None:
                    tracer.instant("fault.drain", "loadgen", ev.time,
                                   args={"rank": ev.rank})
                router.drain(ev.rank)
            else:
                raise TypeError(f"unknown fleet event {ev!r}")
            continue
        # the routing hop delays *admission*: the request reaches its
        # replica at arrival + hop, so everything the fleet can do
        # strictly before that instant happens first — pumping only to
        # ev.time would let a batch dispatch inside the hop window and
        # scoop a request stamped after its own start (negative latency)
        submit_at = ev.time + router.route_seconds
        pump(submit_at)
        clock.set(submit_at)
        payload = items[ev.item]
        try:
            if ev.kind == "volume":
                futures.append(router.submit_volume(payload, lane=ev.lane))
            else:
                futures.append(router.submit(payload, lane=ev.lane))
        except EngineOverloaded as exc:
            rejected += 1
            retry_hints.append(exc.retry_after)
    pump(float("inf"))
    clock.set(max([clock.now()] + [free_at[r.rank] for r in router.replicas
                                   if r.serving]))

    unresolved = sum(1 for f in futures if not f.done())
    if unresolved:
        raise RuntimeError(f"{unresolved} accepted futures never resolved")
    failed = sum(1 for f in futures if f.exception() is not None)
    snap = router.stats()
    fleet = snap["fleet"]
    completed = (fleet.get("completed", 0) + fleet.get("cache_hits", 0)
                 + fleet.get("collapsed", 0))
    makespan = max(clock.now() - t_begin, 1e-12)
    batches = fleet.get("batches", 0)
    lane_names = sorted({lane for r in router.replicas
                         for lane in r.engine.config.lanes})
    return {
        "offered": len(arrivals),
        "accepted": len(futures),
        "rejected_submissions": rejected,
        "mean_retry_after": (float(np.mean(retry_hints))
                             if retry_hints else 0.0),
        "requests_completed": completed,
        "failed": failed,
        "makespan": makespan,
        "throughput": completed / makespan,
        "batches": batches,
        "mean_batch_size": (fleet["batch_size"]["mean"] if batches else 0.0),
        "latency": fleet.get("latency"),
        "latency_per_lane": {lane: fleet[f"latency.{lane}"]
                             for lane in lane_names
                             if f"latency.{lane}" in fleet},
        "rerouted": snap["router"].get("rerouted", 0),
        "spilled": snap["router"].get("spilled", 0),
        "kills": snap["router"].get("kills", 0),
        "drains": snap["router"].get("drains", 0),
        "cache_hit_rate": snap["result_cache"]["hit_rate"],
        "per_replica": snap["replicas"],
        "stats": snap,
    }


def serial_baseline(trace: Sequence[Arrival], lengths: Sequence[int],
                    model: ServiceModel,
                    queue_bound: Optional[int] = None) -> Dict[str, object]:
    """The pre-engine deployment: one FIFO ``predict_image`` worker.

    ``lengths[k]`` is the padded bucket length of the k-th (time-ordered)
    arrival. ``queue_bound`` optionally sheds arrivals that would find
    more than that many requests waiting (matching the engine's admission
    control); shed arrivals are excluded from latency but counted.
    """
    arrivals = sorted(trace, key=lambda a: (a.time, a.lane, a.item))
    if len(arrivals) != len(lengths):
        raise ValueError("need one length per arrival")
    free_at: Optional[float] = None
    done_times: List[float] = []
    latencies: List[float] = []
    shed = 0
    for arrival, length in zip(arrivals, lengths):
        if queue_bound is not None and free_at is not None:
            waiting = sum(1 for t in done_times if t > arrival.time)
            if waiting > queue_bound:
                shed += 1
                continue
        start = arrival.time if free_at is None else max(free_at, arrival.time)
        free_at = start + model.serial(int(length))
        done_times.append(free_at)
        latencies.append(free_at - arrival.time)
    if not latencies:
        raise ValueError("every arrival was shed")
    makespan = max(done_times[-1] - arrivals[0].time, 1e-12)
    lat = np.asarray(latencies)
    return {
        "offered": len(arrivals),
        "completed": len(latencies),
        "shed": shed,
        "makespan": makespan,
        "throughput": len(latencies) / makespan,
        "p50": float(np.percentile(lat, 50)),
        "p95": float(np.percentile(lat, 95)),
        "p99": float(np.percentile(lat, 99)),
        "mean": float(lat.mean()),
    }
