"""Interactive slide-viewer subsystem: tile pyramids served on demand.

The viewer-shaped workload layer over the serving stack (ROADMAP item 4):
:mod:`~repro.pyramid.levels` turns any tiled source into a power-of-two
downsample pyramid with content-addressed tiles,
:mod:`~repro.pyramid.service` serves viewports over an engine or fleet
with viewport-distance priority, a cross-session shared tile cache,
speculative prefetch and stale-viewport cancellation, and
:mod:`~repro.pyramid.trace` generates seeded pan/zoom session traces and
replays them under the deterministic virtual clock.
"""

from .levels import PyramidTile, TilePyramid
from .service import PyramidService, TileCache, TileTask, ViewportReport
from .trace import ViewportEvent, run_viewer_load, viewer_trace

__all__ = [
    "PyramidTile", "TilePyramid",
    "PyramidService", "TileCache", "TileTask", "ViewportReport",
    "ViewportEvent", "viewer_trace", "run_viewer_load",
]
