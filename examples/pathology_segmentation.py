#!/usr/bin/env python
"""High-resolution pathology segmentation with APF-UNETR (paper Tables II/III).

Full workflow on the synthetic PAIP-like dataset: 0.7/0.1/0.2 splits, train
APF-UNETR and uniform UNETR at the same model budget, compare dice and
seconds/image, and dump qualitative PGM masks.

Run:  python examples/pathology_segmentation.py [--resolution 64] [--epochs 6]
"""

import argparse
import os

import numpy as np

from repro.experiments import ExperimentScale, write_pgm
from repro.experiments.common import (make_trainer, make_unetr_task,
                                      paip_splits)


def main() -> None:
    ap = argparse.ArgumentParser(description=__doc__)
    ap.add_argument("--resolution", type=int, default=64)
    ap.add_argument("--epochs", type=int, default=6)
    ap.add_argument("--out", default="artifacts")
    args = ap.parse_args()

    scale = ExperimentScale(resolution=args.resolution, n_samples=10,
                            epochs=args.epochs, dim=32, depth=2)
    train, val, test = paip_splits(scale)
    print(f"dataset: {len(train)} train / {len(val)} val / {len(test)} test "
          f"at {scale.resolution}^2")

    results = {}
    for name, adaptive, patch in [("APF-UNETR-2", True, 2),
                                  ("UNETR-4", False, 4)]:
        task = make_unetr_task(scale, patch, adaptive=adaptive)
        trainer = make_trainer(task, scale)
        hist = trainer.fit(train, val, epochs=scale.epochs, verbose=True)
        dice = task.evaluate(test)
        spi = float(np.mean(hist.epoch_seconds)) / len(train)
        results[name] = (dice, spi, task)
        print(f"{name}: test dice {dice:.2f}%  sec/image {spi:.4f}\n")

    os.makedirs(args.out, exist_ok=True)
    sample = test[0]
    write_pgm(os.path.join(args.out, "input.pgm"), sample.image.mean(axis=2))
    write_pgm(os.path.join(args.out, "ground_truth.pgm"), sample.mask)
    for name, (dice, spi, task) in results.items():
        probs = task.predict_probs(sample)[0]
        write_pgm(os.path.join(args.out, f"{name.lower()}.pgm"), probs)
    print(f"qualitative masks written to {args.out}/")

    apf_dice, apf_spi, _ = results["APF-UNETR-2"]
    uni_dice, uni_spi, _ = results["UNETR-4"]
    print(f"\nsummary: APF dice {apf_dice:.2f} vs uniform {uni_dice:.2f}; "
          f"APF uses patch 2 where detail lives at comparable cost "
          f"({apf_spi / uni_spi:.2f}x relative sec/image)")


if __name__ == "__main__":
    main()
