"""Unit tests for the tracer core: events, spans, ids, kernel profile."""

import threading

import pytest

from repro.obs import KernelProfile, Span, Tracer


class FakeClock:
    """Deterministic settable clock for span/default-timestamp tests."""

    def __init__(self, t=0.0):
        self.t = t

    def __call__(self):
        return self.t


class TestTracerRecording:
    def test_complete_records_x_event(self):
        tr = Tracer(clock=FakeClock())
        tr.complete("op", "engine", 1.0, 1.5, tid="lane", args={"k": 1})
        (ev,) = tr.events
        assert ev == {"ph": "X", "name": "op", "track": "engine",
                      "tid": "lane", "ts": 1.0, "dur": 0.5, "args": {"k": 1}}

    def test_negative_duration_clamps_to_zero(self):
        tr = Tracer()
        tr.complete("op", "t", 2.0, 1.0)
        assert tr.events[0]["dur"] == 0.0

    def test_instant_uses_clock_when_t_omitted(self):
        clock = FakeClock(7.25)
        tr = Tracer(clock=clock)
        tr.instant("mark", "t")
        tr.instant("mark2", "t", 9.0)
        assert tr.events[0]["ts"] == 7.25
        assert tr.events[1]["ts"] == 9.0

    def test_async_pair_carries_cat_and_id(self):
        tr = Tracer()
        tr.async_begin("request", "engine", 0.0, 42, tid="interactive",
                       args={"rid": 42})
        tr.async_end("request", "engine", 1.0, 42, tid="interactive",
                     args={"outcome": "done"})
        b, e = tr.events
        assert b["ph"] == "b" and e["ph"] == "e"
        assert b["cat"] == e["cat"] == "request"
        assert b["id"] == e["id"] == 42

    def test_next_id_is_sequential_from_one(self):
        tr = Tracer()
        assert [tr.next_id() for _ in range(3)] == [1, 2, 3]

    def test_tracks_assigned_in_first_seen_order(self):
        tr = Tracer()
        tr.instant("a", "router", 0.0)
        tr.instant("b", "replica0", 0.0)
        tr.instant("c", "router", 0.0)
        assert tr.tracks == {"router": 1, "replica0": 2}

    def test_thread_safe_appends(self):
        tr = Tracer()

        def work(k):
            for i in range(200):
                tr.instant("e", f"track{k}", float(i))

        ts = [threading.Thread(target=work, args=(k,)) for k in range(4)]
        for t in ts:
            t.start()
        for t in ts:
            t.join()
        assert len(tr.events) == 800
        assert sorted(tr.tracks.values()) == [1, 2, 3, 4]


class TestDisabledTracer:
    def test_records_nothing(self):
        tr = Tracer(enabled=False)
        tr.complete("op", "t", 0.0, 1.0)
        tr.instant("i", "t", 0.0)
        tr.async_begin("request", "t", 0.0, 1)
        tr.async_end("request", "t", 1.0, 1)
        assert tr.events == []
        assert tr.tracks == {}

    def test_begin_returns_dead_span(self):
        tr = Tracer(enabled=False)
        with tr.begin("op", "t") as span:
            assert isinstance(span, Span)
        span.end()          # second close is also a no-op
        assert tr.events == []

    def test_components_normalize_disabled_to_none(self):
        # the contract every instrumented component relies on
        tracer = Tracer(enabled=False)
        normalized = tracer if (tracer is not None and tracer.enabled) \
            else None
        assert normalized is None


class TestSpan:
    def test_context_manager_records_clock_interval(self):
        clock = FakeClock(1.0)
        tr = Tracer(clock=clock)
        with tr.begin("work", "engine", tid="w", args={"a": 1}):
            clock.t = 3.0
        (ev,) = tr.events
        assert (ev["ts"], ev["dur"]) == (1.0, 2.0)
        assert ev["args"] == {"a": 1}

    def test_end_is_idempotent(self):
        tr = Tracer(clock=FakeClock())
        span = tr.begin("work", "t")
        span.end(1.0)
        span.end(5.0)
        assert len(tr.events) == 1

    def test_end_merges_args(self):
        tr = Tracer(clock=FakeClock())
        span = tr.begin("work", "t", args={"a": 1, "b": 2})
        span.end(1.0, args={"b": 3, "c": 4})
        assert tr.events[0]["args"] == {"a": 1, "b": 3, "c": 4}

    def test_explicit_timestamps_beat_clock(self):
        tr = Tracer(clock=FakeClock(99.0))
        span = tr.begin("work", "t", t=2.0)
        span.end(3.5)
        assert (tr.events[0]["ts"], tr.events[0]["dur"]) == (2.0, 1.5)


class TestKernelProfile:
    def test_record_aggregates_per_op(self):
        kp = KernelProfile()
        kp.record("matmul", 0.5, flops=1e9, bytes=2e9)
        kp.record("matmul", 0.5, flops=1e9, bytes=2e9)
        kp.record("softmax", 0.1, flops=1e6, bytes=1e6)
        summ = kp.summary()
        assert summ["matmul"]["calls"] == 2
        assert summ["matmul"]["seconds"] == pytest.approx(1.0)
        assert summ["matmul"]["gflop_per_s"] == pytest.approx(2.0)
        assert summ["matmul"]["gb_per_s"] == pytest.approx(4.0)

    def test_summary_orders_heaviest_first(self):
        kp = KernelProfile()
        kp.record("cheap", 0.01)
        kp.record("heavy", 1.0)
        assert list(kp.summary()) == ["heavy", "cheap"]

    def test_hook_matches_profile_hook_signature(self):
        kp = KernelProfile()
        kp.hook("sdpa", 0.25, {"flops": 4e9, "bytes": 1e9})
        kp.hook("sdpa", 0.25, None)       # meta-less steps still count
        summ = kp.summary()
        assert summ["sdpa"]["calls"] == 2
        assert summ["sdpa"]["gflops"] == pytest.approx(4.0)

    def test_zero_seconds_reports_zero_throughput(self):
        kp = KernelProfile()
        kp.record("noop", 0.0, flops=1e9)
        assert kp.summary()["noop"]["gflop_per_s"] == 0.0

    def test_tracer_attaches_profile_on_request(self):
        assert Tracer().kernels is None
        assert isinstance(Tracer(profile_kernels=True).kernels, KernelProfile)
