"""Table V regeneration: classification — ViT (huge patches) vs HIPT vs
APF-ViT (small patches).

Paper (PAIP at 16K^2, 6 organ classes): APF-ViT-2 79.73% > HIPT 72.69% >
ViT-4096 68.97% — smaller patches matter more than model sophistication.
"""


def test_table5_classification(once):
    from repro.experiments import run_table5

    r = once(run_table5)
    print("\n" + r.rows())
    apf, hipt, vit = r.acc("APF-ViT"), r.acc("HIPT"), r.acc("ViT")
    chance = 100.0 / 6
    # Who wins: APF-ViT, by a clear margin over both baselines.
    assert apf >= hipt
    assert apf >= vit
    assert apf > chance * 1.5  # genuinely above chance, not a tie of failures
