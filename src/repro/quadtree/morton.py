"""Morton (z-order) space-filling curve codes.

Paper §III-A steps 4-5: after the quadtree is built, leaves are arranged
along a Morton Z-order curve, which keeps geometrically affine patches close
in the 1-D token sequence. Codes interleave the bits of (y, x) cell
coordinates; sorting leaves by ``(code at finest level)`` yields the z-order
traversal of the tree.
"""

from __future__ import annotations

import numpy as np

__all__ = ["morton_encode", "morton_decode", "morton_sort_order"]

_MAX_BITS = 24  # supports coordinates up to 16M — far beyond 64K images


def _part1by1(v: np.ndarray) -> np.ndarray:
    """Insert a zero bit between each bit of ``v`` (16→32 bit spread)."""
    v = v.astype(np.uint64)
    v = (v | (v << np.uint64(16))) & np.uint64(0x0000FFFF0000FFFF)
    v = (v | (v << np.uint64(8))) & np.uint64(0x00FF00FF00FF00FF)
    v = (v | (v << np.uint64(4))) & np.uint64(0x0F0F0F0F0F0F0F0F)
    v = (v | (v << np.uint64(2))) & np.uint64(0x3333333333333333)
    v = (v | (v << np.uint64(1))) & np.uint64(0x5555555555555555)
    return v


def _compact1by1(v: np.ndarray) -> np.ndarray:
    """Inverse of :func:`_part1by1`."""
    v = v.astype(np.uint64) & np.uint64(0x5555555555555555)
    v = (v | (v >> np.uint64(1))) & np.uint64(0x3333333333333333)
    v = (v | (v >> np.uint64(2))) & np.uint64(0x0F0F0F0F0F0F0F0F)
    v = (v | (v >> np.uint64(4))) & np.uint64(0x00FF00FF00FF00FF)
    v = (v | (v >> np.uint64(8))) & np.uint64(0x0000FFFF0000FFFF)
    v = (v | (v >> np.uint64(16))) & np.uint64(0x00000000FFFFFFFF)
    return v


def morton_encode(y, x) -> np.ndarray:
    """Interleave bits of coordinate arrays: code = x0 y0 x1 y1 ... (x in even bits).

    Accepts scalars or arrays; vectorized over inputs.
    """
    y = np.atleast_1d(np.asarray(y, dtype=np.uint64))
    x = np.atleast_1d(np.asarray(x, dtype=np.uint64))
    if (y >= (1 << _MAX_BITS)).any() or (x >= (1 << _MAX_BITS)).any():
        raise ValueError(f"coordinates exceed {_MAX_BITS}-bit Morton range")
    code = (_part1by1(y) << np.uint64(1)) | _part1by1(x)
    return code if code.size > 1 else code  # always an array


def morton_decode(code) -> tuple:
    """Inverse of :func:`morton_encode`: returns ``(y, x)`` arrays."""
    c = np.atleast_1d(np.asarray(code, dtype=np.uint64))
    x = _compact1by1(c)
    y = _compact1by1(c >> np.uint64(1))
    return y.astype(np.int64), x.astype(np.int64)


def morton_sort_order(ys, xs) -> np.ndarray:
    """Argsort indices arranging points (ys, xs) along the z-order curve.

    Ties are impossible for distinct points; ``np.argsort`` with stable kind
    keeps input order for identical coordinates.
    """
    codes = morton_encode(ys, xs)
    return np.argsort(codes, kind="stable")
