"""Unit tests for the tracer and the plan compiler.

The property suite (test_equivalence_properties.py) covers end-to-end
bit-identity over randomized inputs; these tests pin the *mechanics*: graph
capture, constant folding, fusion detection, buffer reuse, view handling,
and the failure modes (stochastic dropout, non-Tensor outputs).
"""

import numpy as np
import pytest

from repro import nn, runtime
from repro.nn import functional as F
from repro.nn import kernels as K
from repro.runtime.compile import compile_graph
from repro.runtime.trace import trace


def small_fn(x, y):
    return (x @ y).gelu() + 1.0


class TestTrace:
    def test_graph_captures_ops_inputs_and_consts(self):
        x = np.ones((3, 4), np.float32)
        y = np.ones((4, 2), np.float32)
        g = trace(small_fn, {"x": x, "y": y})
        ops = [n.op for n in g.nodes if n.op not in ("input", "const")]
        assert ops == ["matmul", "gelu", "add"]
        assert set(g.inputs) == {"x", "y"}
        # The coerced scalar 1.0 appears as a const node.
        consts = [n for n in g.nodes if n.op == "const"]
        assert len(consts) == 1 and consts[0].array.shape == ()
        assert g.node(g.output).op == "add"

    def test_trace_is_thread_local_and_restores_hook(self):
        assert not K.tracing()
        trace(small_fn, {"x": np.ones((2, 2), np.float32),
                         "y": np.ones((2, 2), np.float32)})
        assert not K.tracing()

    def test_trace_runs_under_no_grad(self):
        seen = {}

        def fn(x):
            seen["grad"] = nn.is_grad_enabled()
            return x * 2.0

        trace(fn, {"x": np.ones(3, np.float32)})
        assert seen["grad"] is False
        assert nn.is_grad_enabled()

    def test_stochastic_dropout_refuses_to_trace(self):
        drop = nn.Dropout(0.5)

        def fn(x):
            return drop(x)

        with pytest.raises(RuntimeError, match="dropout"):
            trace(fn, {"x": np.ones((2, 2), np.float32)})

    def test_non_tensor_output_rejected(self):
        with pytest.raises(TypeError):
            trace(lambda x: x.data, {"x": np.ones(2, np.float32)})


class TestCompile:
    def test_constant_folding_keeps_weight_views(self):
        w = nn.Parameter(np.arange(6, dtype=np.float32).reshape(2, 3))

        def fn(x):
            return x @ w.transpose()

        g = trace(fn, {"x": np.ones((1, 3), np.float32)})
        plan = compile_graph(g)
        out1 = plan.run({"x": np.ones((1, 3), np.float32)}).copy()
        # In-place weight update must be visible without recompiling.
        w.data *= 2.0
        out2 = plan.run({"x": np.ones((1, 3), np.float32)})
        np.testing.assert_array_equal(out2, 2.0 * out1)

    def test_linear_gelu_and_sdpa_fusion_detected(self):
        mha = nn.MultiHeadAttention(dim=8, heads=2,
                                    rng=np.random.default_rng(0))
        mlp = nn.MLP(8, 16, rng=np.random.default_rng(1))

        def fn(x):
            return mlp(mha(x))

        g = trace(fn, {"x": np.ones((1, 5, 8), np.float32)})
        plan = compile_graph(g)
        assert plan.stats["fused_sdpa"] == 1
        assert plan.stats["fused_linear"] >= 5    # q,k,v,o + fc1(gelu) + fc2
        assert plan.stats["buffer_reuse"] > 0

    def test_plan_buffers_are_reused_across_runs(self):
        lin = nn.Linear(6, 6, rng=np.random.default_rng(0))

        def fn(x):
            return lin(x).relu() + lin(x)

        feeds = {"x": np.ones((2, 6), np.float32)}
        g = trace(fn, feeds)
        plan = compile_graph(g)
        a = plan.run(feeds)
        with nn.no_grad():
            expect = fn(nn.Tensor(feeds["x"])).data
        np.testing.assert_array_equal(a, expect)
        # The output array is plan-owned: a second run overwrites it.
        first = a.copy()
        plan.run({"x": 2 * np.ones((2, 6), np.float32)})
        assert not np.array_equal(a, first)

    def test_feed_shape_mismatch_raises(self):
        g = trace(lambda x: x * 2.0, {"x": np.ones((2, 3), np.float32)})
        plan = compile_graph(g)
        with pytest.raises(ValueError):
            plan.run({"x": np.ones((2, 3), np.float32), "y": np.ones(1)})
        with pytest.raises(ValueError):
            plan.run({"x": np.ones((3, 2), np.float32)})

    def test_profile_hook_times_every_step_with_cost_meta(self):
        mha = nn.MultiHeadAttention(dim=8, heads=2,
                                    rng=np.random.default_rng(0))
        mlp = nn.MLP(8, 16, rng=np.random.default_rng(1))
        feeds = {"x": np.ones((1, 5, 8), np.float32)}
        g = trace(lambda x: mlp(mha(x)), feeds)
        plan = compile_graph(g)
        baseline = plan.run(feeds).copy()

        calls = []
        plan.profile_hook = lambda name, s, meta: calls.append((name, s,
                                                                meta))
        hooked = plan.run(feeds)
        np.testing.assert_array_equal(hooked, baseline)   # timing-only
        assert len(calls) == plan.stats["steps"]
        assert all(s >= 0.0 for _, s, _ in calls)
        metas = [m for _, _, m in calls if m is not None]
        assert metas, "compiled steps must carry cost-model metadata"
        fused = [m for (n, _, m) in calls
                 if m and n in ("sdpa", "linear", "linear_gelu", "matmul")]
        assert fused
        assert all(m["flops"] > 0 and m["bytes"] > 0 for m in fused)

        plan.profile_hook = None                          # detach restores
        np.testing.assert_array_equal(plan.run(feeds), baseline)

    def test_noncontiguous_reshape_becomes_runtime_copy(self):
        def fn(x):
            return x.transpose(0, 2, 1).reshape(2, 12) * 1.0

        feeds = {"x": np.arange(24, dtype=np.float32).reshape(2, 3, 4)}
        g = trace(fn, feeds)
        plan = compile_graph(g)
        with nn.no_grad():
            expect = fn(nn.Tensor(feeds["x"])).data
        np.testing.assert_array_equal(plan.run(feeds), expect)
        # Fresh values on the second run (the copy must not be baked in).
        feeds2 = {"x": feeds["x"][:, ::1, :] + 5.0}
        with nn.no_grad():
            expect2 = fn(nn.Tensor(feeds2["x"])).data
        np.testing.assert_array_equal(plan.run(feeds2), expect2)

    def test_structured_ops_execute_via_reference_kernels(self):
        conv = nn.Conv2d(2, 3, kernel=3, padding=1,
                         rng=np.random.default_rng(0))

        def fn(x):
            return F.max_pool2d(conv(x).relu(), 2)

        feeds = {"x": np.random.default_rng(1).normal(
            size=(1, 2, 8, 8)).astype(np.float32)}
        g = trace(fn, feeds)
        plan = compile_graph(g)
        with nn.no_grad():
            expect = fn(nn.Tensor(feeds["x"])).data
        np.testing.assert_array_equal(plan.run(feeds), expect)


class TestCompileModel:
    def test_compiled_model_bit_identical_and_signature(self):
        from repro.models.vit import ViTSegmenter
        model = ViTSegmenter(patch_size=2, channels=1, dim=16, depth=2,
                             heads=2, max_len=64,
                             rng=np.random.default_rng(3)).eval()
        rng = np.random.default_rng(0)
        tokens = rng.normal(size=(2, 12, 4))
        coords = rng.normal(size=(2, 12, 3))
        valid = rng.random((2, 12)) > 0.3
        cm = runtime.compile_model(model, tokens, coords, valid)
        with nn.no_grad():
            expect = model.forward(tokens, coords, valid).data
        np.testing.assert_array_equal(cm(tokens, coords, valid), expect)
        assert len(cm.graph.signature) == 4   # tokens, coords, validf, bias
