"""Observability: request tracing, kernel profiling, trace exporters.

Quick start::

    from repro.obs import Tracer, write_chrome_trace

    tracer = Tracer()                      # wall clock
    engine = InferenceEngine(predictor, tracer=tracer)
    ... serve ...
    write_chrome_trace(tracer, "trace.json")   # open in Perfetto

Under the DES load harnesses, pass the virtual clock
(``Tracer(clock=clock.now)`` with the same :class:`SimClock` the engine
uses) and same-seed runs export byte-identical traces.
"""

from .tracer import KernelProfile, Span, Tracer
from .export import (chrome_trace, critical_paths, flame_text,
                     validate_trace, write_chrome_trace)

__all__ = [
    "Tracer",
    "Span",
    "KernelProfile",
    "chrome_trace",
    "write_chrome_trace",
    "validate_trace",
    "flame_text",
    "critical_paths",
]
