"""Shared benchmark configuration.

Table/figure regeneration benches run the experiment exactly once (they train
models; statistical repetition comes from the fixed seeds, not re-running)
and print the regenerated table so `pytest benchmarks/ --benchmark-only -s`
reproduces the paper's artifacts on the terminal.
"""

import pytest


def run_once(benchmark, fn, *args, **kwargs):
    """Benchmark a whole-experiment function with a single round."""
    return benchmark.pedantic(fn, args=args, kwargs=kwargs, rounds=1,
                              iterations=1, warmup_rounds=0)


@pytest.fixture
def once(benchmark):
    def _run(fn, *args, **kwargs):
        return run_once(benchmark, fn, *args, **kwargs)

    return _run
