"""Property-based equivalence: randomized sizes/configs/seeds asserting the
batched engines reproduce the per-item reference patchers byte-for-byte —
patches, coordinates, sizes, validity, and the random drop stream.

These are the harness that makes hot-path refactors safe: any future change
to the batched kernels that drifts from the reference by even one ulp fails
here before it can silently alter training inputs.
"""

import numpy as np
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.data import generate_ct_volume, generate_wsi
from repro.patching import (AdaptivePatcher, APFConfig, VolumeAPFConfig,
                            VolumetricAdaptivePatcher)
from repro.pipeline import BatchedAdaptivePatcher, BatchedVolumetricPatcher

# Small search spaces keep examples fast on 1-CPU hosts while still mixing
# resolutions, tree shapes, drop pressure, and RNG seeds.
image_configs = st.fixed_dictionaries({
    "resolution": st.sampled_from([32, 64]),
    "patch_size": st.sampled_from([2, 4, 8]),
    "split_value": st.sampled_from([0.5, 2.0, 8.0]),
    "target_length": st.sampled_from([None, 24, 64]),
    "drop_strategy": st.sampled_from(["random", "coarsest-first"]),
    "criterion": st.sampled_from(["canny", "variance"]),
    "seed": st.integers(0, 2 ** 16),
    "n_images": st.integers(1, 4),
    "data_seed": st.integers(0, 100),
})

volume_configs = st.fixed_dictionaries({
    "resolution": st.sampled_from([16, 32]),
    "patch_size": st.sampled_from([2, 4]),
    "split_value": st.sampled_from([1.0, 8.0]),
    "target_length": st.sampled_from([None, 40, 150]),
    "drop_strategy": st.sampled_from(["random", "coarsest-first"]),
    "detail_quantile": st.sampled_from([0.9, 0.97]),
    "seed": st.integers(0, 2 ** 16),
    "n_volumes": st.integers(1, 3),
    "data_seed": st.integers(0, 100),
})


def assert_image_seq_identical(a, b):
    np.testing.assert_array_equal(a.patches, b.patches)
    np.testing.assert_array_equal(a.ys, b.ys)
    np.testing.assert_array_equal(a.xs, b.xs)
    np.testing.assert_array_equal(a.sizes, b.sizes)
    np.testing.assert_array_equal(a.valid, b.valid)
    assert (a.image_size, a.patch_size, a.n_real, a.n_dropped) == \
        (b.image_size, b.patch_size, b.n_real, b.n_dropped)


def assert_volume_seq_identical(a, b):
    np.testing.assert_array_equal(a.patches, b.patches)
    np.testing.assert_array_equal(a.zs, b.zs)
    np.testing.assert_array_equal(a.ys, b.ys)
    np.testing.assert_array_equal(a.xs, b.xs)
    np.testing.assert_array_equal(a.sizes, b.sizes)
    np.testing.assert_array_equal(a.valid, b.valid)
    assert (a.volume_size, a.patch_size, a.n_real, a.n_dropped) == \
        (b.volume_size, b.patch_size, b.n_real, b.n_dropped)


class TestImageEquivalenceProperty:
    @given(cfg=image_configs)
    @settings(max_examples=12, deadline=None)
    def test_batched_equals_reference(self, cfg):
        imgs = [generate_wsi(cfg["resolution"],
                             seed=cfg["data_seed"] + i).image
                for i in range(cfg["n_images"])]
        apf = APFConfig(patch_size=cfg["patch_size"],
                        split_value=cfg["split_value"],
                        target_length=cfg["target_length"],
                        drop_strategy=cfg["drop_strategy"],
                        criterion=cfg["criterion"], seed=cfg["seed"])
        # Fresh patchers: both consume the drop RNG in image order.
        ref = AdaptivePatcher(apf)
        singles = [ref.extract(im) for im in imgs]
        batched = BatchedAdaptivePatcher(apf).extract_batch(imgs)
        for a, b in zip(singles, batched):
            assert_image_seq_identical(a, b)

    @given(cfg=image_configs)
    @settings(max_examples=6, deadline=None)
    def test_natural_batch_equals_reference(self, cfg):
        imgs = [generate_wsi(cfg["resolution"],
                             seed=cfg["data_seed"] + i).image
                for i in range(cfg["n_images"])]
        apf = APFConfig(patch_size=cfg["patch_size"],
                        split_value=cfg["split_value"],
                        target_length=cfg["target_length"],
                        criterion=cfg["criterion"], seed=cfg["seed"])
        ref = AdaptivePatcher(apf)
        singles = [ref.extract_natural(im) for im in imgs]
        batched = BatchedAdaptivePatcher(apf).extract_natural_batch(imgs)
        for a, b in zip(singles, batched):
            assert_image_seq_identical(a, b)


def _random_volumes(resolution, n, data_seed):
    """Seeded random volumes: a CT-like one plus raw-noise ones, so the
    kernels face both structured and adversarially unstructured data."""
    rng = np.random.default_rng(data_seed)
    vols = [rng.random((resolution, resolution, resolution))
            for _ in range(n)]
    if resolution >= 32:  # the CT generator's minimum resolution
        vols[0] = generate_ct_volume(resolution, resolution,
                                     seed=data_seed).volume
    return vols


class TestVolumeEquivalenceProperty:
    @given(cfg=volume_configs)
    @settings(max_examples=10, deadline=None)
    def test_batched_equals_reference(self, cfg):
        vols = _random_volumes(cfg["resolution"], cfg["n_volumes"],
                               cfg["data_seed"])
        vapf = VolumeAPFConfig(patch_size=cfg["patch_size"],
                               split_value=cfg["split_value"],
                               target_length=cfg["target_length"],
                               drop_strategy=cfg["drop_strategy"],
                               detail_quantile=cfg["detail_quantile"],
                               seed=cfg["seed"])
        ref = VolumetricAdaptivePatcher(vapf)
        singles = [ref.extract(v) for v in vols]
        batched = BatchedVolumetricPatcher(vapf).extract_batch(vols)
        for a, b in zip(singles, batched):
            assert_volume_seq_identical(a, b)

    @given(cfg=volume_configs)
    @settings(max_examples=6, deadline=None)
    def test_detail_masks_equal(self, cfg):
        vols = _random_volumes(cfg["resolution"], cfg["n_volumes"],
                               cfg["data_seed"])
        vapf = VolumeAPFConfig(patch_size=cfg["patch_size"],
                               detail_quantile=cfg["detail_quantile"])
        ref = VolumetricAdaptivePatcher(vapf)
        stack = BatchedVolumetricPatcher(vapf).detail_map_batch(vols)
        for i, v in enumerate(vols):
            np.testing.assert_array_equal(stack[i], ref.detail_map(v))
