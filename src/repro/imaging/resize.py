"""Image resizing kernels used by APF patch downscaling (paper step 4').

APF projects variable-size quadtree patches (powers of two) down to a common
minimum patch size ``Pm``. Power-of-two area reduction is the common case and
has a dedicated exact fast path (:func:`downscale_pow2`); generic area and
bilinear resampling are provided for dataset preparation.
"""

from __future__ import annotations

import numpy as np

__all__ = ["downscale_pow2", "resize_area", "resize_bilinear",
           "resize_nearest", "pad_to_pow2"]


def pad_to_pow2(img: np.ndarray, mode: str = "edge"):
    """Pad an arbitrary (H, W[, C]) image to the next power-of-two square.

    The quadtree (and therefore :class:`~repro.patching.AdaptivePatcher`)
    requires power-of-two squares, matching the paper's preprocessed dataset;
    this helper adapts arbitrary inputs. Returns ``(padded, (H, W))`` so
    predictions can be cropped back with ``pred[:H, :W]``.
    """
    a = np.asarray(img)
    if a.ndim not in (2, 3):
        raise ValueError(f"expected 2-D or 3-D image, got shape {a.shape}")
    h, w = a.shape[:2]
    side = 1 << max(int(np.ceil(np.log2(max(h, w, 1)))), 0)
    pad = [(0, side - h), (0, side - w)] + [(0, 0)] * (a.ndim - 2)
    return np.pad(a, pad, mode=mode), (h, w)


def downscale_pow2(img: np.ndarray, factor: int) -> np.ndarray:
    """Exact area downscale by an integer ``factor`` dividing both dims.

    Works on (H, W) or (H, W, C) or a leading-batched (..., H, W) layout where
    the two trailing axes are spatial only when ``img.ndim == 2``; for channel
    images pass (H, W, C).
    """
    if factor == 1:
        return np.asarray(img, dtype=np.float64).copy()
    a = np.asarray(img, dtype=np.float64)
    if a.ndim == 2:
        h, w = a.shape
        if h % factor or w % factor:
            raise ValueError(f"dims {a.shape} not divisible by {factor}")
        return a.reshape(h // factor, factor, w // factor, factor).mean(axis=(1, 3))
    if a.ndim == 3:
        h, w, c = a.shape
        if h % factor or w % factor:
            raise ValueError(f"dims {a.shape} not divisible by {factor}")
        return a.reshape(h // factor, factor, w // factor, factor, c).mean(axis=(1, 3))
    raise ValueError(f"expected 2-D or 3-D image, got shape {a.shape}")


def resize_area(img: np.ndarray, out_h: int, out_w: int) -> np.ndarray:
    """Area (box) resampling for arbitrary integer shrink ratios.

    Falls back to bilinear when upscaling is requested in either dimension.
    """
    a = np.asarray(img, dtype=np.float64)
    h, w = a.shape[:2]
    if out_h > h or out_w > w:
        return resize_bilinear(a, out_h, out_w)
    if h % out_h == 0 and w % out_w == 0 and h // out_h == w // out_w:
        return downscale_pow2(a, h // out_h)
    # General box filter: average over fractional source boxes via cumsum.
    ys = np.linspace(0, h, out_h + 1)
    xs = np.linspace(0, w, out_w + 1)
    ci = np.cumsum(np.cumsum(a, axis=0), axis=1)
    ci = np.pad(ci, [(1, 0), (1, 0)] + [(0, 0)] * (a.ndim - 2))

    def box_sum(y0, y1, x0, x1):
        # Integral-image lookup with bilinear interpolation at fractional coords.
        def at(yy, xx):
            y0i = np.clip(np.floor(yy).astype(int), 0, h)
            x0i = np.clip(np.floor(xx).astype(int), 0, w)
            y1i = np.clip(y0i + 1, 0, h)
            x1i = np.clip(x0i + 1, 0, w)
            fy = (yy - y0i).reshape(-1, 1, *([1] * (a.ndim - 2)))
            fx = (xx - x0i).reshape(1, -1, *([1] * (a.ndim - 2)))
            v00 = ci[np.ix_(y0i, x0i)]
            v01 = ci[np.ix_(y0i, x1i)]
            v10 = ci[np.ix_(y1i, x0i)]
            v11 = ci[np.ix_(y1i, x1i)]
            return (v00 * (1 - fy) * (1 - fx) + v01 * (1 - fy) * fx
                    + v10 * fy * (1 - fx) + v11 * fy * fx)

        return at(y1, x1) - at(y0, x1) - at(y1, x0) + at(y0, x0)

    sums = box_sum(ys[:-1], ys[1:], xs[:-1], xs[1:])
    areas = np.outer(np.diff(ys), np.diff(xs)).reshape(
        out_h, out_w, *([1] * (a.ndim - 2)))
    return sums / areas


def resize_bilinear(img: np.ndarray, out_h: int, out_w: int) -> np.ndarray:
    """Bilinear resampling with half-pixel centers (align_corners=False)."""
    a = np.asarray(img, dtype=np.float64)
    h, w = a.shape[:2]
    ys = (np.arange(out_h) + 0.5) * h / out_h - 0.5
    xs = (np.arange(out_w) + 0.5) * w / out_w - 0.5
    y0 = np.clip(np.floor(ys).astype(int), 0, h - 1)
    x0 = np.clip(np.floor(xs).astype(int), 0, w - 1)
    y1 = np.clip(y0 + 1, 0, h - 1)
    x1 = np.clip(x0 + 1, 0, w - 1)
    fy = np.clip(ys - y0, 0, 1).reshape(-1, 1, *([1] * (a.ndim - 2)))
    fx = np.clip(xs - x0, 0, 1).reshape(1, -1, *([1] * (a.ndim - 2)))
    v00 = a[np.ix_(y0, x0)]
    v01 = a[np.ix_(y0, x1)]
    v10 = a[np.ix_(y1, x0)]
    v11 = a[np.ix_(y1, x1)]
    return (v00 * (1 - fy) * (1 - fx) + v01 * (1 - fy) * fx
            + v10 * fy * (1 - fx) + v11 * fy * fx)


def resize_nearest(img: np.ndarray, out_h: int, out_w: int) -> np.ndarray:
    """Nearest-neighbour resampling (used for label masks, which must stay
    categorical)."""
    a = np.asarray(img)
    h, w = a.shape[:2]
    ys = np.clip(((np.arange(out_h) + 0.5) * h / out_h).astype(int), 0, h - 1)
    xs = np.clip(((np.arange(out_w) + 0.5) * w / out_w).astype(int), 0, w - 1)
    return a[np.ix_(ys, xs)]
