"""Fig. 3 regeneration: split value vs patch-size / sequence-length stats.

Paper: halving v roughly halves the average patch size, while the average
sequence length grows ~linearly (not quadratically) — avg sizes
[30.73, 20.21, 9.37] and lengths [127.5, 286.9, 677.7] for v=[100, 50, 20].
"""

import numpy as np


def test_fig3_split_value_scaling(once):
    from repro.experiments import run_fig3

    r = once(run_fig3, resolution=128, n_images=12,
             split_values=(4.0, 8.0, 16.0, 32.0, 64.0))
    print("\n" + r.rows())
    print(f"seq-length vs 1/patch-size linearity R^2 = {r.linearity_r2():.3f}")
    # Monotone shape: larger v → larger patches, shorter sequences.
    assert r.avg_patch_size == sorted(r.avg_patch_size)
    assert r.avg_seq_length == sorted(r.avg_seq_length, reverse=True)
    # Empirically-linear growth claim: R^2 of length ~ 1/patch-size is high.
    assert r.linearity_r2() > 0.9
    # Quadratic growth would give length ratios ~ (size ratio)^2; measure the
    # exponent and require it closer to linear than quadratic.
    sizes = np.array(r.avg_patch_size)
    lens = np.array(r.avg_seq_length)
    exponent = np.polyfit(np.log(1 / sizes), np.log(lens), 1)[0]
    print(f"log-log growth exponent = {exponent:.2f} "
          f"(1.0 = linear, 2.0 = uniform-grid quadratic)")
    assert exponent < 1.9  # clearly sub-quadratic across a wide v range
