"""Content digests for tokens and sequences.

Two granularities:

* **Token digests** quantize each token's content to an integer grid and
  view the rows as opaque fixed-width byte strings — equal digests mean
  "near-identical content" at the configured quantization. These key the
  background logits table and define merge runs.
* **Sequence digests** hash the *exact* bytes of everything that
  determines a sequence's model output (tokens, coords, validity, leaf
  geometry). Equal digests mean bitwise-identical inputs, so the memo
  built on them replays outputs without any approximation.
"""

from __future__ import annotations

import hashlib

import numpy as np

__all__ = ["quantize_tokens", "token_digests", "sequence_digest"]


def quantize_tokens(tokens: np.ndarray, quantize: int) -> np.ndarray:
    """Quantize (L, D) token content to ``quantize`` integer levels.

    Inputs live in [0, 1] (image intensities); values outside are clipped
    by the cast only in the sense of rounding — the grid is uniform with
    step ``1/quantize``. ``quantize = 0`` returns the exact float view
    (digests then collapse only bitwise-identical tokens).
    """
    t = np.asarray(tokens, dtype=np.float64)
    if quantize <= 0:
        return t
    return np.rint(t * quantize).astype(np.int32)


def token_digests(tokens: np.ndarray, quantize: int) -> np.ndarray:
    """(L,) array of fixed-width byte strings, one per token row.

    Rows with equal digests have identical quantized content. The void
    view makes whole-row equality a single vectorized comparison, and
    ``digests[i].tobytes()`` is a stable dict key.
    """
    q = np.ascontiguousarray(quantize_tokens(tokens, quantize))
    return q.view((np.void, q.dtype.itemsize * q.shape[1]))[:, 0]


def sequence_digest(seq) -> str:
    """Hex blake2b over the exact bytes of a sequence's model inputs.

    Covers token content, normalized coords, the validity mask and leaf
    sizes — everything the forward pass and the stitch consume — plus the
    geometry scalars, so two sequences share a digest only when the model
    would see bitwise-identical inputs and scatter to identical planes.
    """
    h = hashlib.blake2b(digest_size=16)
    size = getattr(seq, "image_size", None)
    if size is None:
        size = seq.volume_size
    h.update(np.int64([size, seq.patch_size, len(seq)]).tobytes())
    for arr in (seq.tokens(), seq.coords(), seq.valid, seq.sizes):
        a = np.ascontiguousarray(arr)
        h.update(str(a.dtype).encode())
        h.update(a.tobytes())
    return h.hexdigest()
