"""Token-sparsity benchmark + CI regression gate (ISSUE 8).

Pins the three contracts of ``repro.sparse`` on a serving-grade model:

* **Exactness** — dense-vs-sparse *digest equivalence*: with sparsity
  attached but the dense plan chosen (forced, or auto on an all-detail
  image), outputs are byte-identical to a predictor without the
  subsystem; memo replays are byte-identical to their first computation.
* **Decisions** — the cost-model chooser picks dense on all-detail
  content and short-circuit on background-heavy content, and logs every
  decision (costs, deltas, counters) in ``stats["sparsity"]``.
* **Speed** — a 4K² virtual-WSI stream segments ≥ ``SPEEDUP_FLOOR``x
  faster with the short-circuit than dense, at bounded class-map
  disagreement. The gate is a same-host ratio (host-speed-independent);
  the committed baseline additionally applies the standard >2x rule to
  absolute throughput.

Artifacts: ``BENCH_sparsity.json`` vs ``BENCH_sparsity_baseline.json``.
"""

import hashlib
import json
import os
import platform
import time
from pathlib import Path

import numpy as np
import pytest

from repro.models import ViTSegmenter
from repro.perf import write_json_atomic
from repro.pipeline import PatchPipeline
from repro.serve import Predictor
from repro.sparse import SparsityConfig
from repro.stream import (NpyDirectorySink, StreamingRunner,
                          VirtualWSISource, plan_scene)

RES = 4096                       # mini-WSI: 16 macro-tiles of 1024²
TILE = 1024
SPLIT = 16.0
MODEL = dict(patch_size=4, channels=1, dim=256, depth=8, heads=4,
             max_len=1024)
BUCKET = 64
MAX_BATCH = 4

SPEEDUP_FLOOR = 1.2              #: dense/sparse wall-clock ratio, same host
AGREEMENT_FLOOR = 0.90           #: dense-vs-sparse class-map agreement
N_EQUIVALENCE_IMAGES = 3

HERE = Path(__file__).resolve().parent
RESULT_PATH = HERE / "BENCH_sparsity.json"
BASELINE_PATH = HERE / "BENCH_sparsity_baseline.json"


def _digest(arr: np.ndarray) -> str:
    a = np.ascontiguousarray(arr)
    h = hashlib.blake2b(digest_size=16)
    h.update(str(a.shape).encode())
    h.update(a.dtype.str.encode())
    h.update(a.tobytes())
    return h.hexdigest()


def _predictor(sparsity=None, bucket=BUCKET, **model_overrides):
    cfg = dict(MODEL)
    cfg.update(model_overrides)
    model = ViTSegmenter(rng=np.random.default_rng(0), **cfg).eval()
    pipe = PatchPipeline(patch_size=4, split_value=SPLIT, channels=1,
                         cache_items=4)
    return Predictor(model, pipe, max_batch=MAX_BATCH, bucket=bucket,
                     sparsity=sparsity)


def _corner_image(z=256, seed=0):
    img = np.full((z, z), 0.25)
    img[:32, :32] = np.random.default_rng(seed).random((32, 32))
    return img


@pytest.mark.bench
def test_sparsity_bench_and_regression_gate(tmp_path):
    wall_t0 = time.perf_counter()
    result = {"environment": {"cpus": os.cpu_count() or 1,
                              "machine": platform.machine()},
              "workload": {"resolution": RES, "tile": TILE, "split": SPLIT,
                           "bucket": BUCKET, "max_batch": MAX_BATCH,
                           **MODEL}}

    # ------------------------------------------------------------------
    # Digest equivalence: exact modes are byte-identical to no-sparsity
    # ------------------------------------------------------------------
    source = VirtualWSISource(RES, seed=0, organ=2, tile=TILE)
    tiles = [source.read_region((0, i * TILE), (TILE, TILE))
             for i in range(N_EQUIVALENCE_IMAGES)]
    base = _predictor()
    forced_dense = _predictor(SparsityConfig(mode="dense"))
    equivalence = []
    for i, img in enumerate(tiles):
        a = _digest(base.predict_image(img))
        b = _digest(forced_dense.predict_image(img))
        equivalence.append({"tile": i, "dense": a, "sparse_dense_plan": b,
                            "equal": a == b})
    # Memo replay: byte-identical second serving of the same content.
    memo_pred = _predictor(SparsityConfig(mode="auto"))
    first = _digest(memo_pred.predict_image(tiles[0]))
    second = _digest(memo_pred.predict_image(tiles[0]))
    result["equivalence"] = {
        "dense_plan": equivalence,
        "memo_replay": {"first": first, "second": second,
                        "equal": first == second,
                        "memo_hits": memo_pred.stats["sparsity"]["memo_hits"]},
    }

    # ------------------------------------------------------------------
    # Chooser decisions (small model so the section stays cheap)
    # ------------------------------------------------------------------
    # A fine bucket (4) makes any token reduction visible as a cheaper
    # compiled signature, so the decisions depend only on content.
    small = dict(dim=32, depth=2, heads=4)
    detail_pred = _predictor(SparsityConfig(mode="auto"), bucket=4, **small)
    detail_img = np.random.default_rng(4).random((32, 32))
    detail_pred.predict_image(detail_img)
    detail_decision = detail_pred.stats["sparsity"]["last_decision"]

    bg_pred = _predictor(SparsityConfig(mode="auto"), bucket=4, **small)
    bg_pred.predict_image(_corner_image())
    bg_decision = bg_pred.stats["sparsity"]["last_decision"]
    result["chooser"] = {"all_detail": detail_decision,
                         "background_heavy": bg_decision}

    # ------------------------------------------------------------------
    # Merge mode: shape-identical outputs, counted reductions
    # ------------------------------------------------------------------
    merge_pred = _predictor(SparsityConfig(mode="merge"), bucket=4, **small)
    dense_small = _predictor(bucket=4, **small)
    img = _corner_image()
    m_out = merge_pred.predict_image(img)
    d_out = dense_small.predict_image(img)
    ms = merge_pred.stats["sparsity"]
    result["merge"] = {
        "tokens_total": ms["tokens_total"],
        "tokens_merged": ms["tokens_merged"],
        "shape_identical": m_out.shape == d_out.shape,
        "max_abs_diff": round(float(np.abs(m_out - d_out).max()), 4),
    }

    # ------------------------------------------------------------------
    # Headline: 4K² mini-WSI stream, dense vs short-circuit
    # ------------------------------------------------------------------
    plan = plan_scene(source.shape, tile=TILE, order="hilbert",
                      max_len=MODEL["max_len"])
    dense_sink = NpyDirectorySink(tmp_path / "dense", dtype=np.uint8)
    dense_rep = StreamingRunner(_predictor()).run(source, plan, dense_sink)
    sparse_sink = NpyDirectorySink(tmp_path / "sparse", dtype=np.uint8)
    sparse_rep = StreamingRunner(
        _predictor(SparsityConfig(mode="auto"))).run(source, plan,
                                                     sparse_sink)
    px = RES * RES
    agreements = [float((dense_sink.read(t) == sparse_sink.read(t)).mean())
                  for t in plan.tiles]
    result["headline"] = {
        "dense_seconds": round(dense_rep.seconds, 3),
        "sparse_seconds": round(sparse_rep.seconds, 3),
        "dense_pixels_per_second": round(px / dense_rep.seconds, 1),
        "sparse_pixels_per_second": round(px / sparse_rep.seconds, 1),
        "speedup": round(dense_rep.seconds / sparse_rep.seconds, 3),
        "min_agreement": round(min(agreements), 4),
        "mean_agreement": round(float(np.mean(agreements)), 4),
        "counters": sparse_rep.sparsity,
    }

    result["real_seconds"] = round(time.perf_counter() - wall_t0, 3)
    write_json_atomic(RESULT_PATH, result)
    print("\n" + json.dumps(result, indent=2))

    # -- acceptance gates (ISSUE 8) ------------------------------------
    for row in result["equivalence"]["dense_plan"]:
        assert row["equal"], (
            f"dense-plan output diverged from no-sparsity on tile "
            f"{row['tile']} — the exact mode is not exact")
    assert result["equivalence"]["memo_replay"]["equal"]
    assert result["equivalence"]["memo_replay"]["memo_hits"] == 1

    assert result["chooser"]["all_detail"]["plan"] == "dense"
    assert result["chooser"]["background_heavy"]["plan"] == "shortcircuit"
    assert result["chooser"]["background_heavy"]["deltas"]["shortcircuit"] \
        == 0.0

    assert result["merge"]["tokens_merged"] > 0
    assert result["merge"]["shape_identical"]

    head = result["headline"]
    assert head["speedup"] >= SPEEDUP_FLOOR, (
        f"short-circuit speedup {head['speedup']}x below the "
        f"{SPEEDUP_FLOOR}x floor on the mini-WSI")
    assert head["counters"]["plans_shortcircuit"] > 0
    assert head["counters"]["tokens_skipped"] > 0
    assert head["min_agreement"] >= AGREEMENT_FLOOR

    # -- regression gate vs committed baseline (>2x rule) ---------------
    if BASELINE_PATH.exists():
        baseline = json.loads(BASELINE_PATH.read_text())
        floor = baseline["headline"]["sparse_pixels_per_second"] / 2.0
        assert head["sparse_pixels_per_second"] >= floor, (
            f"sparse throughput regressed >2x: "
            f"{head['sparse_pixels_per_second']} px/s vs baseline "
            f"{baseline['headline']['sparse_pixels_per_second']}")
        ratio_floor = baseline["headline"]["speedup"] / 2.0
        assert head["speedup"] >= ratio_floor, (
            f"sparsity speedup regressed >2x: {head['speedup']}x vs "
            f"baseline {baseline['headline']['speedup']}x")
