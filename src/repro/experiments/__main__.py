"""Command-line experiment runner: regenerate any paper table/figure.

Usage::

    python -m repro.experiments fig1
    python -m repro.experiments table2 --resolution 64 --epochs 8
    python -m repro.experiments all

Each run prints the regenerated table in the paper's row layout.
"""

from __future__ import annotations

import argparse
import sys
import time

from . import (ExperimentScale, run_fig1, run_fig2, run_fig3,
               run_fig4_models, run_fig4_patch_sweep, run_overhead,
               run_table2_measured, run_table2_projection, run_table3,
               run_table4, run_table5)

_RUNNERS = {
    "fig1": lambda scale: run_fig1(resolution=max(scale.resolution, 128)),
    "fig2": lambda scale: run_fig2(scale),
    "fig3": lambda scale: run_fig3(resolution=max(scale.resolution, 128)),
    "fig4-models": lambda scale: run_fig4_models(scale),
    "fig4-patches": lambda scale: run_fig4_patch_sweep(scale),
    "table2": lambda scale: run_table2_measured(scale),
    "table2-projection": lambda scale: run_table2_projection(),
    "table3": lambda scale: run_table3(scale),
    "table4": lambda scale: run_table4(scale),
    "table5": lambda scale: run_table5(),
    "overhead": lambda scale: run_overhead(),
}


def main(argv=None) -> int:
    ap = argparse.ArgumentParser(
        prog="python -m repro.experiments",
        description="Regenerate the paper's tables and figures.")
    ap.add_argument("experiment", choices=sorted(_RUNNERS) + ["all"],
                    help="which artifact to regenerate")
    ap.add_argument("--resolution", type=int, default=64)
    ap.add_argument("--samples", type=int, default=10)
    ap.add_argument("--epochs", type=int, default=8)
    ap.add_argument("--dim", type=int, default=32)
    ap.add_argument("--depth", type=int, default=3)
    ap.add_argument("--seed", type=int, default=0)
    args = ap.parse_args(argv)

    scale = ExperimentScale(resolution=args.resolution, n_samples=args.samples,
                            epochs=args.epochs, dim=args.dim,
                            depth=args.depth, seed=args.seed)
    names = sorted(_RUNNERS) if args.experiment == "all" else [args.experiment]
    for name in names:
        print(f"\n=== {name} ===")
        t0 = time.perf_counter()
        result = _RUNNERS[name](scale)
        print(result.rows())
        print(f"[{time.perf_counter() - t0:.1f}s]")
    return 0


if __name__ == "__main__":
    sys.exit(main())
