"""Batched map stitching — vectorized scatter of token predictions.

The reference scatter methods (:meth:`PatchSequence.scatter_to_image`,
:meth:`VolumeSequence.scatter_to_volume`) loop Python over leaves — fine
for a notebook, but at serving rates the loop costs as much as the model.
These stitchers group leaves by size and paint each group with one
assignment into a block view of the output: quadtree/octree leaves are
aligned to their own size (``y % s == 0``), so a size-``s`` group indexes
the ``(Z/s, s, Z/s, s)`` view with g-length index arrays instead of
g·s²-element coordinate maps. Leaves of a partition never overlap, so
write order is irrelevant and the result is **bit-identical** to the
reference loop (same upsample/downsample arithmetic per leaf, same
float64 output), which the test suite asserts.

These stitchers are stage 4 of the inference work graph: the
:class:`~repro.serve.scheduler.WorkGraphScheduler` calls them once per
drained sequence node, so every front-end (Predictor drain, engine pump,
fleet replicas, streaming tiles) scatters through this one implementation.
"""

from __future__ import annotations

import numpy as np

__all__ = ["stitch_image", "stitch_volume"]


def stitch_image(seq, token_maps: np.ndarray, fill: float = 0.0) -> np.ndarray:
    """Vectorized equivalent of ``seq.scatter_to_image(token_maps, fill)``.

    ``token_maps``: (L, K, Pm, Pm) spatial maps or (L, K) flat vectors.
    Returns (K, Z, Z) float64.
    """
    tm = np.asarray(token_maps)
    pm = seq.patch_size
    if tm.ndim == 2:
        # zero-copy broadcast view, not a multiply by ones: the per-group
        # fancy indexing below materializes only the rows it paints, so the
        # L·K·Pm² temporary never exists (bitwise-identical values).
        tm = np.broadcast_to(tm[:, :, None, None], tm.shape + (pm, pm))
    if tm.ndim != 4 or len(tm) != len(seq):
        raise ValueError(f"token_maps shape {np.shape(token_maps)} does not "
                         f"match sequence of length {len(seq)}")
    k = tm.shape[1]
    z = seq.image_size
    out = np.full((k, z, z), fill, dtype=np.float64)
    valid_idx = np.flatnonzero(seq.valid)
    sizes = seq.sizes[valid_idx]
    for s in np.unique(sizes):
        s = int(s)
        grp = valid_idx[sizes == s]
        patches = tm[grp]                                   # (g, K, Pm, Pm)
        if s == pm:
            up = patches
        elif s > pm:
            f = s // pm
            up = np.repeat(np.repeat(patches, f, axis=2), f, axis=3)
        else:
            f = pm // s
            up = patches.reshape(len(grp), k, s, f, s, f).mean(axis=(3, 5))
        gz = z // s
        view = out.reshape(k, gz, s, gz, s)
        # Separated advanced indices put the group axis first: (g, K, s, s).
        view[:, seq.ys[grp] // s, :, seq.xs[grp] // s, :] = up
    return out


def stitch_volume(seq, token_values: np.ndarray, fill: float = 0.0) -> np.ndarray:
    """Vectorized equivalent of ``seq.scatter_to_volume(token_values, fill)``.

    ``token_values``: (L,) scalars or (L, Pm, Pm, Pm) cubes.
    Returns (Z, Z, Z) float64.
    """
    tv = np.asarray(token_values)
    n = seq.volume_size
    pm = seq.patch_size
    out = np.full((n, n, n), fill, dtype=np.float64)
    valid_idx = np.flatnonzero(seq.valid)
    sizes = seq.sizes[valid_idx]
    for s in np.unique(sizes):
        s = int(s)
        grp = valid_idx[sizes == s]
        if tv.ndim == 1:
            cubes = np.broadcast_to(tv[grp][:, None, None, None],
                                    (len(grp), s, s, s))
        else:
            cubes = tv[grp]
            f = s // pm
            if f > 1:
                cubes = np.repeat(np.repeat(np.repeat(cubes, f, 1), f, 2), f, 3)
        gz = n // s
        view = out.reshape(gz, s, gz, s, gz, s)
        view[seq.zs[grp] // s, :, seq.ys[grp] // s, :, seq.xs[grp] // s, :] \
            = cubes
    return out
