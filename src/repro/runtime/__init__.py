"""``repro.runtime`` — the compiled inference runtime.

Trace a model's shape-stable ``forward_core`` once into a static op graph
(:mod:`.trace`), then compile it into an execution plan with constant
folding, fused transformer kernels, and liveness-planned buffer reuse
(:mod:`.compile`). Compiled plans replay the exact kernels of the eager
tape (:mod:`repro.nn.kernels`), so their outputs are bit-identical to the
eager ``no_grad`` forward — verified property-style in the test suite and
on every benchmark run.

Typical use::

    model.eval()
    cm = runtime.compile_model(model, tokens, coords, valid)
    logits = cm(tokens, coords, valid)          # plan-owned array

For serving (micro-batching, length bucketing, plan caching) use
:class:`repro.serve.Predictor`, which manages one compiled plan per input
signature.
"""

from .compile import CompiledModel, ExecutionPlan, compile_graph, compile_model
from .trace import Graph, Node, trace

__all__ = ["Graph", "Node", "trace", "ExecutionPlan", "CompiledModel",
           "compile_graph", "compile_model"]
