"""Hilbert space-filling curve codes — the classic alternative to Morton.

The paper uses Morton z-order (step 5); AMR practice often prefers the
Hilbert curve because it has strictly better locality (no long diagonal
jumps between quadrants). We provide it as an ordering ablation
(``APFConfig.order = "hilbert"``) and benchmark the locality difference.

The encoding is the standard iterative rotate-and-flip construction
(Hamilton's compact algorithm specialized to 2-D), vectorized over
coordinate arrays.
"""

from __future__ import annotations

import numpy as np

__all__ = ["hilbert_encode", "hilbert_decode", "hilbert_sort_order"]

_MAX_BITS = 24


def hilbert_encode(y, x, bits: int = _MAX_BITS) -> np.ndarray:
    """Hilbert curve index d of points (y, x) on a ``2^bits`` grid.

    Vectorized translation of the classic xy→d loop: walk square sizes from
    the top level down, accumulating the quadrant offset and applying the
    rotation/reflection that keeps the curve continuous.
    """
    y = np.atleast_1d(np.asarray(y, dtype=np.int64)).copy()
    x = np.atleast_1d(np.asarray(x, dtype=np.int64)).copy()
    if (y < 0).any() or (x < 0).any():
        raise ValueError("coordinates must be non-negative")
    if (y >= (1 << bits)).any() or (x >= (1 << bits)).any():
        raise ValueError(f"coordinates exceed {bits}-bit Hilbert range")
    d = np.zeros_like(x, dtype=np.uint64)
    s = np.int64(1) << (bits - 1)
    while s > 0:
        rx = ((x & s) > 0).astype(np.int64)
        ry = ((y & s) > 0).astype(np.int64)
        d += np.uint64(s) * np.uint64(s) * ((3 * rx) ^ ry).astype(np.uint64)
        # Rotate the quadrant so the sub-curve is oriented consistently.
        swap = ry == 0
        flip = swap & (rx == 1)
        x_f, y_f = x.copy(), y.copy()
        x_f[flip] = s - 1 - x[flip]
        y_f[flip] = s - 1 - y[flip]
        x[swap], y[swap] = y_f[swap], x_f[swap]
        s >>= 1
    return d


def hilbert_decode(d, bits: int = _MAX_BITS):
    """Inverse of :func:`hilbert_encode`: returns ``(y, x)`` arrays."""
    d = np.atleast_1d(np.asarray(d, dtype=np.uint64)).copy()
    x = np.zeros_like(d, dtype=np.int64)
    y = np.zeros_like(d, dtype=np.int64)
    t = d.astype(np.int64)
    s = np.int64(1)
    while s < (np.int64(1) << bits):
        rx = 1 & (t // 2)
        ry = 1 & (t ^ rx)
        # Rotate back.
        swap = ry == 0
        flip = swap & (rx == 1)
        x_f, y_f = x.copy(), y.copy()
        x_f[flip] = s - 1 - x[flip]
        y_f[flip] = s - 1 - y[flip]
        x[swap], y[swap] = y_f[swap], x_f[swap]
        x += s * rx
        y += s * ry
        t //= 4
        s <<= 1
    return y, x


def hilbert_sort_order(ys, xs, bits: int = _MAX_BITS) -> np.ndarray:
    """Argsort indices arranging points along the Hilbert curve."""
    return np.argsort(hilbert_encode(ys, xs, bits), kind="stable")
