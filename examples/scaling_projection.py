#!/usr/bin/env python
"""Frontier-scale projection + distributed-training simulation (Table II).

1. Measures a real single-process training run of this repository's ViT.
2. Calibrates the α–β cost model on that measurement.
3. Projects the paper's seven Table II rows (512^2 ... 65,536^2 on up to
   2,048 GPUs) and prints paper vs model speedups.
4. Demonstrates the exact data-parallel simulation: a 4-rank step whose
   gradients flow through a real ring all-reduce.

Run:  python examples/scaling_projection.py
"""


from repro import nn
from repro.distributed import DataParallelSimulator
from repro.experiments import run_table2_projection
from repro.experiments.common import (ExperimentScale, make_trainer,
                                      make_vit_token_task, paip_splits)
from repro.perf import CostModel, TransformerConfig, training_flops


def main() -> None:
    # --- 1. measure --------------------------------------------------------
    scale = ExperimentScale(resolution=64, n_samples=8, epochs=2, dim=32,
                            depth=3)
    train, val, _ = paip_splits(scale)
    task = make_vit_token_task(scale, patch=4, adaptive=False)
    trainer = make_trainer(task, scale)
    spi = trainer.seconds_per_image(train)
    seq_len = (scale.resolution // 4) ** 2
    print(f"measured: {spi:.4f} s/image at L={seq_len}, dim={scale.dim}, "
          f"depth={scale.depth}")

    # --- 2. calibrate ------------------------------------------------------
    cm = CostModel()
    cfg = TransformerConfig(seq_len, scale.dim, scale.depth)
    achieved = cm.calibrate(cfg, spi)
    print(f"calibrated achieved throughput: {achieved:.3e} FLOP/s "
          f"({training_flops(cfg):.3e} FLOPs per image)")

    # --- 3. project the paper's Table II -----------------------------------
    proj = run_table2_projection(cost_model=cm)
    print("\n" + proj.rows())
    print(f"\nprojected geomean (encoder-FLOP upper bound): "
          f"{proj.projected_geomean:.1f}x — paper's measured geomean: 4.1x "
          f"(per-epoch) / 6.9x (to convergence)")

    # --- 4. simulated data-parallel step ------------------------------------
    print("\n--- 4-rank data-parallel simulation (exact ring all-reduce) ---")
    task_dp = make_vit_token_task(scale, patch=4, adaptive=True)
    sim = DataParallelSimulator(task_dp, nn.AdamW(task_dp.parameters(),
                                                  lr=1e-3), world_size=4)
    report = sim.step(train[:4])
    print(f"loss {report.loss:.4f}")
    print(f"compute (critical path) {report.measured_compute_seconds:.3f}s  "
          f"+ modeled all-reduce {report.simulated_comm_seconds * 1e3:.3f}ms  "
          f"({report.comm_bytes_per_rank / 1e6:.2f} MB/rank)")


if __name__ == "__main__":
    main()
