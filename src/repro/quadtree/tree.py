"""Quadtree construction over image detail maps (paper Eq. 6).

A node ``Q^h`` covering a square region is subdivided into its NW/NE/SW/SE
children when the detail mass inside it exceeds the split value ``v`` and the
node is above the maximum depth ``H``:

    Q^{h+1} = Q^h                          if sum_i D_i <= v or h = H
            = {Q^h_NW, Q^h_NE, Q^h_SW, Q^h_SE}  otherwise

The builder is *level-synchronous and fully vectorized*: all nodes of a depth
are processed as coordinate arrays, with region sums evaluated in O(1) each
via a summed-area table — the whole build is O(Z^2) for the integral image
plus O(#nodes) for the traversal, which is the "negligible overhead" the
paper claims (§IV-G.3).
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, List, Optional, Sequence

import numpy as np

from .morton import morton_sort_order

__all__ = ["QuadtreeLeaves", "build_quadtree", "build_quadtree_batch",
           "balance_2to1", "max_depth_for"]


def max_depth_for(resolution: int, min_patch: int) -> int:
    """Depth H at which leaves reach ``min_patch`` pixels: ``log2(Z/min_patch)``.

    Matches the paper's table — e.g. resolution 512 with H=8 reaches 2x2
    patches (512 / 2**8 = 2).
    """
    if resolution % min_patch:
        raise ValueError(f"min_patch {min_patch} must divide resolution {resolution}")
    ratio = resolution // min_patch
    if ratio & (ratio - 1):
        raise ValueError("resolution / min_patch must be a power of two")
    return int(ratio).bit_length() - 1


@dataclass
class QuadtreeLeaves:
    """The leaf set of a quadtree partition of a ``size`` x ``size`` image.

    Attributes
    ----------
    ys, xs:
        Top-left corners of each leaf, in pixels.
    sizes:
        Side length of each leaf (always a power of two).
    depths:
        Tree depth of each leaf (root = 0).
    size:
        Image side length the tree partitions.
    nodes_visited:
        Total nodes examined during the build (leaves + interior).
    details:
        Per-leaf detail mass (the Eq. 6 region sum that decided *not* to
        split the leaf). Zero means the leaf is provably flat under the
        detail criterion — the signal the token-sparsity fast path keys
        on. ``None`` when the producer did not retain the sums (e.g.
        after :func:`balance_2to1`, which splits leaves without access
        to the detail map).
    """

    ys: np.ndarray
    xs: np.ndarray
    sizes: np.ndarray
    depths: np.ndarray
    size: int
    nodes_visited: int = 0
    details: Optional[np.ndarray] = None

    def __len__(self) -> int:
        return len(self.ys)

    @property
    def sequence_length(self) -> int:
        """Number of patches this partition produces (paper's N for APF)."""
        return len(self.ys)

    @property
    def mean_patch_size(self) -> float:
        return float(self.sizes.mean()) if len(self) else 0.0

    def size_histogram(self) -> Dict[int, int]:
        """Map patch side length -> count (Fig. 3 top row)."""
        vals, counts = np.unique(self.sizes, return_counts=True)
        return {int(v): int(c) for v, c in zip(vals, counts)}

    def morton_order(self) -> np.ndarray:
        """Indices arranging leaves along the Morton z-curve (paper step 5)."""
        return morton_sort_order(self.ys, self.xs)

    def hilbert_order(self) -> np.ndarray:
        """Indices arranging leaves along the Hilbert curve (AMR-style
        ablation of the paper's Morton choice — strictly better locality)."""
        from .hilbert import hilbert_sort_order
        return hilbert_sort_order(self.ys, self.xs)

    def reordered(self, order: np.ndarray) -> "QuadtreeLeaves":
        return QuadtreeLeaves(self.ys[order], self.xs[order], self.sizes[order],
                              self.depths[order], self.size, self.nodes_visited,
                              None if self.details is None
                              else self.details[order])

    def sorted_by_morton(self) -> "QuadtreeLeaves":
        return self.reordered(self.morton_order())

    def sorted_by_hilbert(self) -> "QuadtreeLeaves":
        return self.reordered(self.hilbert_order())

    def covers_exactly(self) -> bool:
        """True iff leaves tile the image: disjoint and area-complete."""
        total = int((self.sizes.astype(np.int64) ** 2).sum())
        if total != self.size * self.size:
            return False
        # Paint each leaf id; overlap would overwrite and break the area check
        # only if areas also mismatched, so double-check with a counter grid.
        grid = np.zeros((self.size, self.size), dtype=np.int32)
        for y, x, s in zip(self.ys, self.xs, self.sizes):
            grid[y:y + s, x:x + s] += 1
        return bool((grid == 1).all())


def _integral(detail: np.ndarray) -> np.ndarray:
    ii = np.cumsum(np.cumsum(detail.astype(np.float64), axis=0), axis=1)
    return np.pad(ii, ((1, 0), (1, 0)))


def _region_sums(ii: np.ndarray, ys: np.ndarray, xs: np.ndarray,
                 size: int) -> np.ndarray:
    y1, x1 = ys + size, xs + size
    return ii[y1, x1] - ii[ys, x1] - ii[y1, xs] + ii[ys, xs]


def build_quadtree(detail: np.ndarray, split_value: float, max_depth: int,
                   min_size: int = 1) -> QuadtreeLeaves:
    """Build the adaptive partition of Eq. 6 over a square detail map.

    Parameters
    ----------
    detail:
        (Z, Z) non-negative detail map — in APF this is the Canny edge mask
        (booleans count edge pixels), but any density works (ablation:
        local variance).
    split_value:
        The paper's ``v``: a region is split while its detail mass exceeds v.
    max_depth:
        The paper's ``H``: maximum subdivision depth (root = depth 0).
    min_size:
        Do not produce leaves smaller than this side length (the minimum
        patch size ``Pm``); overrides ``max_depth`` when reached first.

    Returns
    -------
    :class:`QuadtreeLeaves` in level-major build order (call
    ``sorted_by_morton()`` for the z-curve sequence).
    """
    detail = np.asarray(detail)
    if detail.ndim != 2 or detail.shape[0] != detail.shape[1]:
        raise ValueError(f"detail map must be square 2-D, got {detail.shape}")
    z = detail.shape[0]
    if z & (z - 1):
        raise ValueError(f"image size must be a power of two, got {z}")
    if min_size < 1 or (min_size & (min_size - 1)):
        raise ValueError(f"min_size must be a positive power of two, got {min_size}")
    if split_value < 0:
        raise ValueError("split_value must be non-negative")

    ii = _integral(detail)
    leaf_ys, leaf_xs, leaf_sizes, leaf_depths, leaf_details = [], [], [], [], []
    ys = np.zeros(1, dtype=np.int64)
    xs = np.zeros(1, dtype=np.int64)
    size = z
    depth = 0
    visited = 0
    while len(ys):
        visited += len(ys)
        sums = _region_sums(ii, ys, xs, size)
        can_split = (depth < max_depth) and (size // 2 >= min_size) and size > 1
        split = (sums > split_value) if can_split else np.zeros(len(ys), dtype=bool)
        keep = ~split
        if keep.any():
            leaf_ys.append(ys[keep])
            leaf_xs.append(xs[keep])
            leaf_sizes.append(np.full(int(keep.sum()), size, dtype=np.int64))
            leaf_depths.append(np.full(int(keep.sum()), depth, dtype=np.int64))
            leaf_details.append(sums[keep])
        if split.any():
            sy, sx = ys[split], xs[split]
            half = size // 2
            # Child order NW, NE, SW, SE (paper Eq. 6).
            ys = np.concatenate([sy, sy, sy + half, sy + half])
            xs = np.concatenate([sx, sx + half, sx, sx + half])
            size = half
            depth += 1
        else:
            break

    if leaf_ys:
        out = QuadtreeLeaves(np.concatenate(leaf_ys), np.concatenate(leaf_xs),
                             np.concatenate(leaf_sizes), np.concatenate(leaf_depths),
                             z, visited, np.concatenate(leaf_details))
    else:  # pragma: no cover - unreachable: loop always emits leaves
        out = QuadtreeLeaves(np.zeros(0, dtype=np.int64), np.zeros(0, dtype=np.int64),
                             np.zeros(0, dtype=np.int64), np.zeros(0, dtype=np.int64),
                             z, visited, np.zeros(0, dtype=np.float64))
    return out


def _region_sums_batch(ii: np.ndarray, bs: np.ndarray, ys: np.ndarray,
                       xs: np.ndarray, size: int) -> np.ndarray:
    """Batched summed-area lookup: ``ii`` is (B, Z+1, Z+1), one row per image."""
    y1, x1 = ys + size, xs + size
    return ii[bs, y1, x1] - ii[bs, ys, x1] - ii[bs, y1, xs] + ii[bs, ys, xs]


def build_quadtree_batch(details: Sequence[np.ndarray], split_value: float,
                         max_depth: int, min_size: int = 1) -> List[QuadtreeLeaves]:
    """Level-synchronous quadtree build over a whole batch of detail maps.

    All images of the batch share one frontier: every depth issues a *single*
    :func:`_region_sums_batch` call over the concatenated per-image node
    coordinates, so the per-level Python/NumPy dispatch overhead is amortized
    across the batch instead of paid per image. Each returned
    :class:`QuadtreeLeaves` is **identical** (same leaves, same build order,
    same ``nodes_visited``) to ``build_quadtree(details[b], ...)`` — the
    child-block concatenation ``[NW, NE, SW, SE]`` preserves every image's
    relative node order at each depth.

    Parameters match :func:`build_quadtree`; all detail maps must share one
    square power-of-two shape.
    """
    if len(details) == 0:
        return []
    maps = [np.asarray(d) for d in details]
    z = maps[0].shape[0]
    for d in maps:
        if d.ndim != 2 or d.shape != (z, z):
            raise ValueError("all detail maps must share one square 2-D shape")
    if z & (z - 1):
        raise ValueError(f"image size must be a power of two, got {z}")
    if min_size < 1 or (min_size & (min_size - 1)):
        raise ValueError(f"min_size must be a positive power of two, got {min_size}")
    if split_value < 0:
        raise ValueError("split_value must be non-negative")

    b = len(maps)
    # Per-image integral images (cache-friendly), stacked for batched lookup.
    ii = np.empty((b, z + 1, z + 1), dtype=np.float64)
    for i, d in enumerate(maps):
        ii[i] = _integral(d)

    leaf_bs, leaf_ys, leaf_xs, leaf_sizes, leaf_depths, leaf_details = \
        [], [], [], [], [], []
    bs = np.arange(b, dtype=np.int64)
    ys = np.zeros(b, dtype=np.int64)
    xs = np.zeros(b, dtype=np.int64)
    size = z
    depth = 0
    visited = np.zeros(b, dtype=np.int64)
    while len(bs):
        visited += np.bincount(bs, minlength=b)
        sums = _region_sums_batch(ii, bs, ys, xs, size)
        can_split = (depth < max_depth) and (size // 2 >= min_size) and size > 1
        split = (sums > split_value) if can_split else np.zeros(len(bs), dtype=bool)
        keep = ~split
        if keep.any():
            leaf_bs.append(bs[keep])
            leaf_ys.append(ys[keep])
            leaf_xs.append(xs[keep])
            leaf_sizes.append(np.full(int(keep.sum()), size, dtype=np.int64))
            leaf_depths.append(np.full(int(keep.sum()), depth, dtype=np.int64))
            leaf_details.append(sums[keep])
        if split.any():
            sb, sy, sx = bs[split], ys[split], xs[split]
            half = size // 2
            # Child order NW, NE, SW, SE — same blocks as the single build.
            bs = np.concatenate([sb, sb, sb, sb])
            ys = np.concatenate([sy, sy, sy + half, sy + half])
            xs = np.concatenate([sx, sx + half, sx, sx + half])
            size = half
            depth += 1
        else:
            break

    all_bs = np.concatenate(leaf_bs)
    all_ys = np.concatenate(leaf_ys)
    all_xs = np.concatenate(leaf_xs)
    all_sizes = np.concatenate(leaf_sizes)
    all_depths = np.concatenate(leaf_depths)
    all_details = np.concatenate(leaf_details)
    out = []
    for i in range(b):
        idx = np.flatnonzero(all_bs == i)  # preserves level-major build order
        out.append(QuadtreeLeaves(all_ys[idx], all_xs[idx], all_sizes[idx],
                                  all_depths[idx], z, int(visited[i]),
                                  all_details[idx]))
    return out


def balance_2to1(leaves: QuadtreeLeaves) -> QuadtreeLeaves:
    """Enforce the AMR 2:1 balance constraint (paper §II-A).

    Any leaf more than one refinement level coarser than an edge-adjacent
    neighbour is split until the constraint holds. Returns a new leaf set;
    ``nodes_visited`` is carried over plus the extra splits.
    """
    z = leaves.size
    ys = list(leaves.ys)
    xs = list(leaves.xs)
    sizes = list(leaves.sizes)
    depths = list(leaves.depths)
    extra = 0

    changed = True
    while changed:
        changed = False
        # Rasterize current leaf sizes onto the pixel grid.
        size_map = np.zeros((z, z), dtype=np.int64)
        for y, x, s in zip(ys, xs, sizes):
            size_map[y:y + s, x:x + s] = s
        new_ys, new_xs, new_sizes, new_depths = [], [], [], []
        for y, x, s, d in zip(ys, xs, sizes, depths):
            must_split = False
            if s > 1:
                # Check the four edge-adjacent strips for leaves < s/2.
                strips = []
                if y > 0:
                    strips.append(size_map[y - 1, x:x + s])
                if y + s < z:
                    strips.append(size_map[y + s, x:x + s])
                if x > 0:
                    strips.append(size_map[y:y + s, x - 1])
                if x + s < z:
                    strips.append(size_map[y:y + s, x + s])
                for strip in strips:
                    if strip.size and strip.min() < s // 2:
                        must_split = True
                        break
            if must_split:
                half = s // 2
                for dy in (0, half):
                    for dx in (0, half):
                        new_ys.append(y + dy)
                        new_xs.append(x + dx)
                        new_sizes.append(half)
                        new_depths.append(d + 1)
                extra += 4
                changed = True
            else:
                new_ys.append(y)
                new_xs.append(x)
                new_sizes.append(s)
                new_depths.append(d)
        ys, xs, sizes, depths = new_ys, new_xs, new_sizes, new_depths

    return QuadtreeLeaves(np.asarray(ys, dtype=np.int64), np.asarray(xs, dtype=np.int64),
                          np.asarray(sizes, dtype=np.int64), np.asarray(depths, dtype=np.int64),
                          z, leaves.nodes_visited + extra)
