"""Tests for the async InferenceEngine — bit-identity, caching, lanes,
admission control, warmup, and the threaded batcher."""

import threading
import time

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.data import SyntheticPAIP, generate_ct_volume
from repro.models.vit import ViTSegmenter, VolumeViTSegmenter
from repro.patching import VolumeAPFConfig
from repro.pipeline import PatchPipeline
from repro.serve import (EngineOverloaded, InferenceEngine, Predictor,
                         ServiceModel, SimClock)
from repro.train.tasks import prepare_image

settings.register_profile("engine", max_examples=8, deadline=None)
settings.load_profile("engine")


def _model(**kw):
    args = dict(patch_size=4, channels=1, dim=16, depth=1, heads=2,
                max_len=256, rng=np.random.default_rng(1))
    args.update(kw)
    return ViTSegmenter(**args)


def _predictor(model, **kw):
    args = dict(max_batch=3, bucket=16)
    args.update(kw)
    pipe = PatchPipeline(patch_size=4, split_value=8.0, channels=1,
                         cache_items=64)
    return Predictor(model, pipe, **args)


def _images(n, res=64, offset=0):
    ds = SyntheticPAIP(res, n + offset)
    return [ds[i].image for i in range(offset, n + offset)]


def _sim_engine(pred, **kw):
    clock = SimClock()
    args = dict(clock=clock.now, service_model=ServiceModel())
    args.update(kw)
    return InferenceEngine(pred, **args), clock


class TestDrainBitIdentity:
    """Acceptance: submit a request set, drain -> bit-identical to
    Predictor.predict_batch on the same set (same FIFO bucket chunks)."""

    @given(st.integers(0, 10 ** 6), st.integers(1, 6),
           st.sampled_from([1, 2, 3]), st.sampled_from([8, 16, 32]))
    def test_engine_matches_predict_batch_2d(self, seed, n, max_batch,
                                             bucket):
        rng = np.random.default_rng(seed)
        imgs = _images(n, offset=int(rng.integers(0, 4)))
        model = _model()
        engine, _ = _sim_engine(
            _predictor(model, max_batch=max_batch, bucket=bucket))
        futs = [engine.submit(im) for im in imgs]
        engine.drain()
        ref = _predictor(model, max_batch=max_batch,
                         bucket=bucket).predict_batch(imgs,
                                                      keys=list(range(n)))
        for fut, expected in zip(futs, ref):
            np.testing.assert_array_equal(fut.result(), expected)

    @given(st.integers(0, 100))
    @settings(max_examples=3, deadline=None)
    def test_engine_matches_predict_batch_3d(self, seed):
        vols = [generate_ct_volume(32, 32, seed=seed + s).volume
                for s in range(3)]
        model = VolumeViTSegmenter(patch_size=4, dim=16, depth=1, heads=2,
                                   max_len=512, rng=np.random.default_rng(2))

        def mk():
            return Predictor(model, PatchPipeline(
                VolumeAPFConfig(patch_size=4, split_value=8.0)),
                max_batch=2, bucket=32)

        engine, _ = _sim_engine(mk())
        futs = [engine.submit(v) for v in vols]
        engine.drain()
        for fut, expected in zip(futs, mk().predict_batch(vols,
                                                          keys=[0, 1, 2])):
            np.testing.assert_array_equal(fut.result(), expected)


class TestResultCache:
    def test_identical_payload_served_from_cache(self):
        imgs = _images(1)
        engine, _ = _sim_engine(_predictor(_model()))
        first = engine.submit(imgs[0])
        engine.drain()
        again = engine.submit(imgs[0])
        assert again.done()                 # no inference, resolved at submit
        np.testing.assert_array_equal(first.result(), again.result())
        s = engine.stats()
        assert s["engine"]["cache_hits"] == 1
        assert s["engine"]["completed"] == 1
        assert s["result_cache"]["items"] == 1

    def test_all_results_writable_and_cache_unpoisonable(self):
        img = _images(1)[0]
        engine, _ = _sim_engine(_predictor(_model()))
        fut = engine.submit(img)
        engine.drain()
        fresh = fut.result()
        fresh[0, 0, 0] = 99.0               # predict_batch parity: writable
        hit1 = engine.submit(img).result()  # private copy of the cache entry
        assert hit1[0, 0, 0] != 99.0        # caller mutation didn't poison it
        hit1[0, 0, 0] = 77.0                # hits are writable too
        hit2 = engine.submit(img).result()
        assert hit2[0, 0, 0] != 77.0        # and can't poison later hits

    def test_inflight_duplicates_collapse_onto_one_execution(self):
        imgs = _images(1)
        engine, _ = _sim_engine(_predictor(_model()))
        a = engine.submit(imgs[0])
        b = engine.submit(imgs[0])          # queued twin -> collapsed
        engine.drain()
        np.testing.assert_array_equal(a.result(), b.result())
        # twins get private copies: mutating one cannot corrupt the other
        assert a.result() is not b.result()
        b.result()[0, 0, 0] = -1.0
        assert a.result()[0, 0, 0] != -1.0
        s = engine.stats()
        assert s["engine"]["collapsed"] == 1
        assert s["engine"]["completed"] == 1
        # twins contribute to the per-lane latency histogram too
        assert s["engine"]["latency.interactive"]["count"] == 2

    def test_preprocessing_failure_clears_reservation(self):
        imgs = _images(1)
        engine, _ = _sim_engine(_predictor(_model()))
        with pytest.raises(Exception):
            engine.submit(np.zeros((7, 7, 7, 7)))   # pipeline rejects 4-D
        assert engine.stats()["result_cache"]["inflight"] == 0
        # the same engine still serves clean traffic afterwards
        fut = engine.submit(imgs[0])
        engine.drain()
        assert fut.result().shape == (1, 64, 64)

    def test_cache_disabled(self):
        imgs = _images(1)
        engine, _ = _sim_engine(_predictor(_model()), result_cache_items=0)
        engine.submit(imgs[0])
        engine.drain()
        engine.submit(imgs[0])
        engine.drain()
        s = engine.stats()
        assert s["engine"].get("cache_hits", 0) == 0
        assert s["engine"]["completed"] == 2

    def test_lru_eviction(self):
        imgs = _images(3)
        engine, _ = _sim_engine(_predictor(_model()), result_cache_items=2)
        for im in imgs:
            engine.submit(im)
        engine.drain()
        s = engine.stats()
        assert s["result_cache"]["items"] == 2
        assert s["engine"]["result_cache_evictions"] == 1


class TestAdmissionControl:
    def test_overflow_rejects_with_retry_hint(self):
        imgs = _images(3)
        engine, _ = _sim_engine(_predictor(_model()), max_queue=2)
        engine.submit(imgs[0])
        engine.submit(imgs[1])
        with pytest.raises(EngineOverloaded) as exc:
            engine.submit(imgs[2])
        assert exc.value.retry_after > 0
        assert engine.stats()["engine"]["rejected"] == 1
        engine.drain()                      # admitted work still completes
        assert engine.stats()["engine"]["completed"] == 2

    def test_volume_admission_is_atomic(self):
        imgs = _images(4)
        vol = np.stack([prepare_image(im, 1)[0] for im in imgs])
        engine, _ = _sim_engine(_predictor(_model()), max_queue=3)
        with pytest.raises(EngineOverloaded):
            engine.submit_volume(vol)       # 4 slices > 3 slots: all-or-none
        assert engine.stats()["queue"]["total"] == 0

    def test_rejected_volume_rolls_back_all_bookkeeping(self):
        imgs = _images(4)
        slices = [prepare_image(im, 1)[0] for im in imgs]
        engine, _ = _sim_engine(_predictor(_model()), max_queue=2)
        engine.submit(slices[0])
        engine.drain()                      # slice 0 now in the result cache
        with pytest.raises(EngineOverloaded):
            engine.submit_volume(np.stack(slices))   # 3 fresh > 2 slots
        s = engine.stats()
        # the partial hit/collapse accounting of the rejected call is undone
        assert s["engine"].get("cache_hits", 0) == 0
        assert s["engine"].get("collapsed", 0) == 0
        assert s["engine"]["rejected"] == 3
        assert s["result_cache"]["inflight"] == 0
        assert s["queue"]["total"] == 0

    def test_rejected_volume_unchains_twins_from_foreign_primaries(self):
        # Regression: a rejected volume used to roll back only its *own*
        # reservations — a slice that collapsed onto an in-flight primary
        # from an EARLIER submission left a phantom twin future chained
        # there, which later resolved into thin air (latency observed for
        # a request that was never admitted). All-or-nothing admission
        # must unchain those too.
        imgs = _images(4)
        slices = [prepare_image(im, 1)[0] for im in imgs]
        engine, _ = _sim_engine(_predictor(_model()), max_queue=3)
        primary = engine.submit(slices[0])       # queued, in flight
        with pytest.raises(EngineOverloaded):
            # duplicate of slices[0] chains onto the queued primary; the
            # 3 fresh slices then overflow (1 occupied + 3 > 3 slots)
            engine.submit_volume(np.stack([slices[0], slices[1],
                                           slices[2], slices[3]]))
        assert not engine._collapsed             # no phantom twins left
        s = engine.stats()
        assert s["engine"]["rejected"] == 4      # 3 fresh + 1 chained twin
        assert s["engine"].get("collapsed", 0) == 0
        engine.drain()                           # the foreign primary is
        assert primary.result() is not None      # untouched and completes
        assert engine.stats()["engine"]["completed"] == 1


class TestVolumePath:
    def test_submit_volume_matches_predict_volume(self):
        imgs = _images(5)
        model = _model()
        # one bucket for every slice -> chunking matches predict_volume's
        pred = _predictor(model, max_batch=2, bucket=256)
        engine, _ = _sim_engine(pred)
        vol = np.stack([prepare_image(im, 1)[0] for im in imgs])
        fut = engine.submit_volume(vol)
        engine.drain()
        got = fut.result()
        ref = _predictor(model, max_batch=2,
                         bucket=256).predict_volume(vol, batch_size=2)
        np.testing.assert_array_equal(got, ref)
        assert got.shape == vol.shape
        assert engine.stats()["engine"]["volumes"] == 1

    def test_repeated_slices_collapse_within_one_volume(self):
        imgs = _images(3)
        slices = [prepare_image(im, 1)[0] for im in imgs]
        vol = np.stack([slices[0], slices[1], slices[0], slices[2]])
        engine, _ = _sim_engine(_predictor(_model()))
        fut = engine.submit_volume(vol)
        engine.drain()
        assert fut.result().shape == vol.shape
        s = engine.stats()
        assert s["engine"]["completed"] == 3      # 3 unique slices executed
        assert s["engine"]["collapsed"] == 1      # duplicate rode along

    def test_volume_validation(self):
        engine, _ = _sim_engine(_predictor(_model()))
        with pytest.raises(ValueError):
            engine.submit_volume(np.zeros((8, 8)))
        with pytest.raises(ValueError):
            engine.submit_volume(np.empty((0, 8, 8)))   # would never resolve

    def test_unknown_lane_rejected_even_on_cache_hit(self):
        img = _images(1)[0]
        engine, _ = _sim_engine(_predictor(_model()))
        engine.submit(img)
        engine.drain()                      # img now in the result cache
        with pytest.raises(ValueError):
            engine.submit(img, lane="vip")  # must not bypass validation


class TestContinuousBatching:
    def test_deadline_flush_serves_partial_batches(self):
        imgs = _images(2)
        pred = _predictor(_model(), max_batch=8)
        engine, clock = _sim_engine(pred, flush_deadline=0.05)
        engine.submit(imgs[0])
        assert engine.step(now=0.01) is None        # under deadline: wait
        clock.set(0.06)
        report = engine.step()                       # deadline expired
        assert report is not None and report.size == 1
        assert report.cost == ServiceModel().cost(1, report.length)

    def test_full_batch_flushes_before_deadline(self):
        imgs = _images(3)
        pred = _predictor(_model(), max_batch=3, bucket=256)
        engine, _ = _sim_engine(pred, flush_deadline=100.0)
        for im in imgs:
            engine.submit(im)
        report = engine.step(now=0.0)               # full: no deadline wait
        assert report.size == 3

    def test_latency_metrics_use_virtual_time(self):
        imgs = _images(1)
        engine, clock = _sim_engine(_predictor(_model()),
                                    flush_deadline=0.5)
        clock.set(10.0)
        engine.submit(imgs[0])
        report = engine.step(now=10.5)
        lat = engine.stats()["engine"]["latency"]
        assert lat["count"] == 1
        assert lat["max"] == pytest.approx(0.5 + report.cost)

    def test_stats_shape(self):
        engine, _ = _sim_engine(_predictor(_model()))
        s = engine.stats()
        assert set(s) == {"engine", "queue", "result_cache", "predictor",
                          "pipeline"}
        assert s["queue"]["total"] == 0

    def test_config_validation(self):
        pred = _predictor(_model())
        with pytest.raises(TypeError):
            InferenceEngine(pred, frobnicate=1)
        with pytest.raises(ValueError):
            InferenceEngine(pred, max_batch=0)
        with pytest.raises(ValueError):
            InferenceEngine(pred, lanes={"a": -1.0})

    def test_shared_config_not_mutated(self):
        from repro.serve import EngineConfig
        cfg = EngineConfig()
        a = InferenceEngine(_predictor(_model(), max_batch=3), cfg,
                            clock=SimClock().now,
                            service_model=ServiceModel())
        b = InferenceEngine(_predictor(_model(), max_batch=2), cfg,
                            clock=SimClock().now,
                            service_model=ServiceModel())
        assert cfg.max_batch is None            # caller's object untouched
        assert a.config.max_batch == 3
        assert b.config.max_batch == 2          # inherits its own predictor
        a.config.lanes["extra"] = 1.0
        assert "extra" not in b.config.lanes    # lane dicts not shared


class TestWarmup:
    def test_warmup_precompiles_bucket_ladder(self):
        pred = _predictor(_model(), max_batch=2, bucket=16)
        report = pred.warmup(lengths=(16, 32), batch_sizes=(1, 2))
        assert report["compiled"] == 4
        assert pred.stats["plans"] == 4
        # warming again is a no-op
        assert pred.warmup(lengths=(16, 32), batch_sizes=(1, 2))["compiled"] == 0

    def test_warmup_normalizes_to_bucket_grid(self):
        pred = _predictor(_model(), max_batch=2, bucket=16)
        pred.warmup(lengths=(17, 30), batch_sizes=(1,))   # both -> 32
        assert pred.stats["plans"] == 1

    def test_first_request_hits_warm_plan(self):
        imgs = _images(1)
        pred = _predictor(_model(), max_batch=1, bucket=16)
        seq = pred._naturals(imgs, [0])[0]
        pred.warmup(lengths=(len(seq),), batch_sizes=(1,))
        plans = pred.stats["plans"]
        pred.predict_batch(imgs, keys=[0])
        assert pred.stats["plans"] == plans     # no compile on first request

    def test_warmup_noop_in_eager_mode(self):
        pred = _predictor(_model(), compiled=False)
        assert pred.warmup()["compiled"] == 0

    def test_warmup_validation(self):
        with pytest.raises(ValueError):
            _predictor(_model()).warmup(lengths=(0,))

    def test_engine_start_warms_configured_lengths(self):
        pred = _predictor(_model(), max_batch=2, bucket=16)
        engine, _ = _sim_engine(pred, warmup_lengths=(16,))
        assert engine.warmup()["compiled"] == 2       # batch sizes 1 and 2
        assert pred.stats["plans"] == 2


class TestThreadedEngine:
    def test_start_submit_stop_real_clock(self):
        imgs = _images(4)
        model = _model()
        pred = _predictor(model, max_batch=2, bucket=16)
        engine = InferenceEngine(pred, flush_deadline=0.005, max_queue=32,
                                 warmup_lengths=(16,))
        engine.start(warmup=True)
        try:
            futs = [engine.submit(im) for im in imgs]
            maps = [f.result(timeout=60) for f in futs]
        finally:
            engine.stop()
        ref = _predictor(model, max_batch=2,
                         bucket=16).predict_batch(imgs, keys=list(range(4)))
        for got, expected in zip(maps, ref):
            assert got.shape == expected.shape
            np.testing.assert_allclose(got, expected, atol=1e-5)
        assert engine.stats()["engine"]["completed"] == 4
        with pytest.raises(RuntimeError):
            engine._thread = threading.Thread(target=lambda: None)
            engine.start()

    def test_stop_drains_pending_requests(self):
        imgs = _images(2)
        pred = _predictor(_model(), max_batch=8)
        engine = InferenceEngine(pred, flush_deadline=120.0)  # never flushes
        engine.start(warmup=False)
        futs = [engine.submit(im) for im in imgs]
        time.sleep(0.05)
        assert not any(f.done() for f in futs)      # waiting on the deadline
        engine.stop()                               # force-drains
        assert all(f.done() for f in futs)

    def test_concurrent_submitters(self):
        imgs = _images(6)
        pred = _predictor(_model(), max_batch=4, bucket=16)
        engine = InferenceEngine(pred, flush_deadline=0.005, max_queue=64)
        engine.start(warmup=False)
        results = [None] * len(imgs)

        def client(i):
            results[i] = engine.submit(imgs[i]).result(timeout=60)

        threads = [threading.Thread(target=client, args=(i,))
                   for i in range(len(imgs))]
        try:
            for t in threads:
                t.start()
            for t in threads:
                t.join()
        finally:
            engine.stop()
        assert all(r is not None and r.shape == (1, 64, 64) for r in results)
        assert engine.stats()["engine"]["completed"] + \
            engine.stats()["engine"].get("cache_hits", 0) == len(imgs)


class TestObservabilityGauges:
    """ISSUE 5 satellite: result-cache hit rate + peak queue depth in stats()."""

    def test_peak_queue_depth_tracks_high_water_mark(self):
        engine, _ = _sim_engine(_predictor(_model()), result_cache_items=0)
        for im in _images(5):
            engine.submit(im)
        assert engine.stats()["queue"]["peak_depth"] == 5
        engine.drain()
        stats = engine.stats()
        assert stats["queue"]["total"] == 0
        assert stats["queue"]["peak_depth"] == 5     # peak survives the drain
        assert stats["engine"]["queue_depth"]["value"] == 0

    def test_result_cache_hit_rate(self):
        engine, _ = _sim_engine(_predictor(_model()), result_cache_items=8)
        img = _images(1)[0]
        engine.submit(img)
        engine.drain()
        engine.submit(img)                           # served from the cache
        engine.drain()
        stats = engine.stats()
        assert stats["result_cache"]["hits"] == 1
        assert stats["result_cache"]["hit_rate"] == pytest.approx(0.5)

    def test_hit_rate_zero_without_traffic(self):
        engine, _ = _sim_engine(_predictor(_model()))
        assert engine.stats()["result_cache"]["hit_rate"] == 0.0

    def test_is_running_reflects_thread_liveness(self):
        engine = InferenceEngine(_predictor(_model()))
        assert not engine.is_running
        engine.start(warmup=False)
        assert engine.is_running
        engine.stop()
        assert not engine.is_running
        # a crashed batcher must read as not-running, not merely started
        dead = threading.Thread(target=lambda: None)
        dead.start()
        dead.join()
        engine._thread = dead
        assert not engine.is_running
        engine._thread = None


class TestEvictAdopt:
    """Fleet-membership primitives: evicting a backlog and adopting it on a
    peer engine (what FleetRouter.kill is built from)."""

    def test_evict_returns_backlog_and_clears_queue(self):
        engine, _ = _sim_engine(_predictor(_model()), result_cache_items=8)
        imgs = _images(4)
        futs = [engine.submit(im) for im in imgs]
        reqs, chains = engine.evict_pending()
        assert len(reqs) == 4
        assert engine.pending == 0
        assert all(not f.done() for f in futs)          # unresolved, not failed
        assert engine.metrics.counter("evicted").value == 4
        assert all(chains[id(r)] == [] for r in reqs)
        # reservations are gone: resubmitting the payload starts fresh
        assert engine.stats()["result_cache"]["inflight"] == 0

    def test_adopt_runs_foreign_requests_to_completion(self):
        model = _model()
        src, _ = _sim_engine(_predictor(model), result_cache_items=8)
        dst, _ = _sim_engine(_predictor(model), result_cache_items=8)
        imgs = _images(3)
        futs = [src.submit(im) for im in imgs]
        reqs, chains = src.evict_pending()
        dst.adopt(reqs, chains)
        assert dst.pending == 3
        assert dst.metrics.counter("adopted").value == 3
        dst.drain()
        ref = _predictor(model).predict_batch(imgs)
        for fut, r in zip(futs, ref):
            np.testing.assert_array_equal(fut.result(), r)

    def test_adopt_transfers_collapsed_twins(self):
        model = _model()
        src, _ = _sim_engine(_predictor(model), result_cache_items=8)
        dst, _ = _sim_engine(_predictor(model), result_cache_items=8)
        img = _images(1)[0]
        first = src.submit(img)
        twin = src.submit(img)             # collapses onto first, not queued
        reqs, chains = src.evict_pending()
        assert len(reqs) == 1
        assert len(chains[id(reqs[0])]) == 1
        dst.adopt(reqs, chains)
        dst.drain()
        np.testing.assert_array_equal(first.result(), twin.result())
        # a later duplicate on the adoptive engine hits its cache
        third = dst.submit(img)
        assert third.done()
        assert dst.metrics.counter("cache_hits").value == 1

    def test_adopt_is_atomic_on_overflow(self):
        model = _model()
        src, _ = _sim_engine(_predictor(model))
        dst, _ = _sim_engine(_predictor(model), max_queue=2)
        for im in _images(4):
            src.submit(im)
        reqs, chains = src.evict_pending()
        with pytest.raises(EngineOverloaded):
            dst.adopt(reqs, chains)
        assert dst.pending == 0            # nothing partially admitted
        assert all(not r.future.done() for r in reqs)

    def test_adopt_nothing_is_noop(self):
        engine, _ = _sim_engine(_predictor(_model()))
        engine.adopt([])
        assert engine.pending == 0

    def test_pending_tracks_queue_depth(self):
        engine, _ = _sim_engine(_predictor(_model()), result_cache_items=0)
        assert engine.pending == 0
        for im in _images(3):
            engine.submit(im)
        assert engine.pending == 3
        engine.drain()
        assert engine.pending == 0
