"""Tests for the Adaptive Patch Framework: pipeline stages, invariants,
round trips, and the paper's headline sequence-length reduction."""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.patching import AdaptivePatcher, APFConfig, UniformPatcher


def blob_image(z=64, seed=0, n_blobs=3):
    """Sparse-detail image: smooth background + a few sharp blobs."""
    rng = np.random.default_rng(seed)
    img = np.full((z, z), 0.3)
    yy, xx = np.mgrid[0:z, 0:z]
    for _ in range(n_blobs):
        cy, cx = rng.integers(z // 4, 3 * z // 4, 2)
        r = rng.integers(3, max(4, z // 10))
        img[(yy - cy) ** 2 + (xx - cx) ** 2 < r * r] = 0.9
    return img


class TestConfig:
    def test_rejects_non_pow2_patch(self):
        with pytest.raises(ValueError):
            APFConfig(patch_size=3)

    def test_rejects_unknown_criterion(self):
        with pytest.raises(ValueError):
            APFConfig(criterion="entropy")

    def test_rejects_unknown_order(self):
        with pytest.raises(ValueError):
            APFConfig(order="zigzag")

    def test_config_or_kwargs_not_both(self):
        with pytest.raises(ValueError):
            AdaptivePatcher(APFConfig(), patch_size=8)

    def test_kwargs_constructor(self):
        p = AdaptivePatcher(patch_size=8, split_value=4.0)
        assert p.config.patch_size == 8


class TestPipeline:
    def test_detail_map_is_edge_mask(self):
        p = AdaptivePatcher(patch_size=4)
        d = p.detail_map(blob_image())
        assert d.shape == (64, 64)
        assert set(np.unique(d)).issubset({0.0, 1.0})
        assert d.sum() > 0  # blobs produce edges

    def test_flat_image_one_token(self):
        p = AdaptivePatcher(patch_size=4, split_value=0.0)
        seq = p(np.full((32, 32), 0.5))
        assert len(seq) == 1
        assert seq.sizes[0] == 32

    def test_leaves_not_below_patch_size(self):
        p = AdaptivePatcher(patch_size=4, split_value=1.0)
        seq = p(blob_image())
        assert seq.sizes[seq.valid].min() >= 4

    def test_sequence_shorter_than_uniform(self):
        # Fig. 1's headline: ~10x fewer patches on detail-sparse images.
        img = blob_image(128)
        apf = AdaptivePatcher(patch_size=4, split_value=8.0)
        uni = UniformPatcher(4)
        assert len(apf(img)) < len(uni(img)) / 4

    def test_patches_same_size_after_projection(self):
        seq = AdaptivePatcher(patch_size=4, split_value=4.0)(blob_image())
        assert seq.patches.shape[1:] == (1, 4, 4)

    def test_large_leaf_content_is_area_mean(self):
        # A flat image has one 32x32 leaf; its 4x4 patch must equal the mean.
        img = np.full((32, 32), 0.7)
        seq = AdaptivePatcher(patch_size=4, split_value=0.0)(img)
        np.testing.assert_allclose(seq.patches[0, 0], 0.7)

    def test_morton_order_applied(self):
        from repro.quadtree import morton_encode
        seq = AdaptivePatcher(patch_size=4, split_value=2.0)(blob_image())
        codes = morton_encode(seq.ys, seq.xs).astype(np.int64)
        assert (np.diff(codes) > 0).all()

    def test_rowmajor_order_ablation(self):
        seq = AdaptivePatcher(patch_size=4, split_value=2.0, order="rowmajor")(
            blob_image())
        # Row-major build order: ys nondecreasing within each size level is not
        # guaranteed, but the sequence must be a permutation of the morton one.
        seq_m = AdaptivePatcher(patch_size=4, split_value=2.0)(blob_image())
        assert len(seq) == len(seq_m)
        assert sorted(zip(seq.ys, seq.xs)) == sorted(zip(seq_m.ys, seq_m.xs))

    def test_variance_criterion_ablation(self):
        seq = AdaptivePatcher(patch_size=4, split_value=2.0,
                              criterion="variance")(blob_image())
        assert len(seq) >= 1
        assert seq.coverage_fraction() == pytest.approx(1.0)

    def test_balance_flag(self):
        cfg = APFConfig(patch_size=2, split_value=1.0, balance=True)
        seq = AdaptivePatcher(cfg)(blob_image())
        assert seq.coverage_fraction() == pytest.approx(1.0)

    def test_rejects_nonsquare(self):
        with pytest.raises(ValueError):
            AdaptivePatcher(patch_size=4)(np.zeros((16, 32)))


class TestFitLength:
    def test_pad_short_sequence(self):
        p = AdaptivePatcher(patch_size=4, split_value=0.0, target_length=16)
        seq = p(np.full((32, 32), 0.5))
        assert len(seq) == 16
        assert seq.valid.sum() == 1
        assert seq.n_real == 1
        np.testing.assert_array_equal(seq.patches[1:], 0.0)

    def test_drop_long_sequence(self):
        img = blob_image(64, n_blobs=8)
        p = AdaptivePatcher(patch_size=2, split_value=0.5, target_length=10)
        seq = p(img)
        assert len(seq) == 10
        assert seq.n_dropped > 0
        assert seq.coverage_fraction() < 1.0

    def test_drop_is_deterministic_per_seed(self):
        img = blob_image(64, n_blobs=8)
        s1 = AdaptivePatcher(patch_size=2, split_value=0.5, target_length=10, seed=7)(img)
        s2 = AdaptivePatcher(patch_size=2, split_value=0.5, target_length=10, seed=7)(img)
        np.testing.assert_array_equal(s1.ys, s2.ys)

    def test_exact_length_noop(self):
        p = AdaptivePatcher(patch_size=4, split_value=0.0)
        seq = p(np.full((32, 32), 0.5))
        assert len(p.fit_length(seq, 1)) == 1


class TestRoundTrip:
    def test_scatter_reconstructs_at_leaf_granularity(self):
        img = blob_image(64)
        p = AdaptivePatcher(patch_size=4, split_value=4.0)
        seq = p(img)
        rec = seq.scatter_to_image(seq.patches)[0]
        # Reconstruction is exact on Pm-sized leaves and an area-mean
        # approximation on larger ones → bounded error, identical means.
        assert rec.shape == (64, 64)
        assert rec.mean() == pytest.approx(img.mean(), rel=1e-6)
        fine = seq.sizes[seq.valid] == 4
        for i in np.flatnonzero(seq.valid)[:10]:
            if seq.sizes[i] == 4:
                y, x = seq.ys[i], seq.xs[i]
                np.testing.assert_allclose(rec[y:y + 4, x:x + 4], img[y:y + 4, x:x + 4])

    def test_label_patchify_alignment(self):
        img = blob_image(64)
        mask = (img > 0.5).astype(float)
        p = AdaptivePatcher(patch_size=4, split_value=4.0)
        seq = p(img)
        targets = p.patchify_labels(mask, seq)
        assert targets.shape == (len(seq), 1, 4, 4)
        # Scattering targets back must reproduce mask at leaf granularity.
        rec = seq.scatter_to_image(targets)[0]
        assert rec.mean() == pytest.approx(mask.mean(), rel=1e-6)
        assert np.abs(rec - mask).mean() < 0.2

    def test_scatter_grid_features(self):
        img = blob_image(64)
        seq = AdaptivePatcher(patch_size=4, split_value=4.0)(img)
        feats = np.ones((len(seq), 8))
        grid = seq.scatter_tokens_to_grid(feats)
        assert grid.shape == (8, 16, 16)
        np.testing.assert_allclose(grid, 1.0)  # full coverage → all cells filled

    def test_scatter_shape_validation(self):
        seq = AdaptivePatcher(patch_size=4, split_value=4.0)(blob_image())
        with pytest.raises(ValueError):
            seq.scatter_to_image(np.zeros((len(seq) + 1, 1, 4, 4)))
        with pytest.raises(ValueError):
            seq.scatter_tokens_to_grid(np.zeros((len(seq) + 1, 8)))

    def test_coords_normalized(self):
        seq = AdaptivePatcher(patch_size=4, split_value=4.0)(blob_image())
        c = seq.coords()
        assert c.shape == (len(seq), 3)
        assert (c >= 0).all() and (c <= 1.0 + 1e-9).all()


class TestProperties:
    @given(st.integers(0, 10 ** 6), st.sampled_from([2, 4, 8]),
           st.floats(0.0, 64.0))
    @settings(max_examples=25, deadline=None)
    def test_property_full_coverage_without_drop(self, seed, pm, v):
        img = blob_image(64, seed=seed)
        seq = AdaptivePatcher(patch_size=pm, split_value=v)(img)
        assert seq.coverage_fraction() == pytest.approx(1.0)
        # Leaf geometry stays inside the image.
        assert (seq.ys + seq.sizes <= 64).all()
        assert (seq.xs + seq.sizes <= 64).all()

    @given(st.integers(0, 10 ** 6))
    @settings(max_examples=15, deadline=None)
    def test_property_token_count_vs_uniform_bound(self, seed):
        # APF sequence is never longer than uniform at the same patch size.
        img = blob_image(64, seed=seed)
        apf = AdaptivePatcher(patch_size=4, split_value=0.0)(img)
        assert len(apf) <= (64 // 4) ** 2
