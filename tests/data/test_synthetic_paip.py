"""Satellite coverage for ``synthetic_paip.generate_wsi`` (ISSUE 5): seed
determinism across resolutions/organs, image/mask shape agreement, and the
per-organ lesion-morphology invariant the Table V classification task rests
on — total lesion area matched across organs, with morphology (component
count / scale) ordered by the organ's lesion-scale divisor."""

import numpy as np
import pytest
from scipy import ndimage

from repro.data import NUM_ORGAN_CLASSES, generate_wsi

EIGHT = np.ones((3, 3))      # 8-connectivity for lesion components


def _morphology(resolution, seed):
    """Per-organ (area, n_components, mean_component_size) at fixed seed."""
    stats = []
    for organ in range(NUM_ORGAN_CLASSES):
        mask = generate_wsi(resolution, seed, organ=organ).mask
        _, n = ndimage.label(mask, structure=EIGHT)
        area = float(mask.sum())
        stats.append((area, n, area / max(n, 1)))
    return stats


class TestDeterminism:
    @pytest.mark.parametrize("resolution", [32, 64, 128])
    def test_same_seed_bitwise_identical(self, resolution):
        a = generate_wsi(resolution, seed=9)
        b = generate_wsi(resolution, seed=9)
        np.testing.assert_array_equal(a.image, b.image)
        np.testing.assert_array_equal(a.mask, b.mask)
        assert a.organ == b.organ

    def test_organ_override_keeps_determinism(self):
        a = generate_wsi(64, seed=4, organ=3)
        b = generate_wsi(64, seed=4, organ=3)
        np.testing.assert_array_equal(a.image, b.image)

    def test_resolution_enters_the_seed(self):
        a = generate_wsi(64, seed=4)
        b = generate_wsi(128, seed=4)
        assert not np.array_equal(a.image[:64, :64], b.image[:64, :64])


class TestShapeAgreement:
    @pytest.mark.parametrize("resolution", [32, 64, 128])
    def test_mask_matches_image_plane(self, resolution):
        s = generate_wsi(resolution, seed=0)
        assert s.image.shape == (resolution, resolution, 3)
        assert s.mask.shape == s.image.shape[:2]
        assert s.image.dtype == np.float64 and s.mask.dtype == np.float64

    def test_mask_is_binary_and_inside_tissue(self):
        s = generate_wsi(128, seed=1, organ=0)
        assert set(np.unique(s.mask)).issubset({0.0, 1.0})
        # lesion pixels are darker than the glass background by construction
        lesioned = s.image[s.mask.astype(bool)]
        if lesioned.size:
            assert lesioned.mean() < 0.93


class TestMorphologyInvariant:
    """Organ classes differ in lesion *morphology*, not lesion *amount*."""

    @pytest.mark.parametrize("seed", [0, 7])
    def test_total_lesion_area_matched_across_organs(self, seed):
        stats = _morphology(256, seed)
        areas = [area for area, _, _ in stats]
        # same tissue silhouette + same quantile threshold -> the area is
        # matched essentially exactly; only the morphology differs
        assert max(areas) - min(areas) <= 2.0
        assert min(areas) > 0

    @pytest.mark.parametrize("seed", [0, 7])
    def test_scale_ordering_follows_organ_ladder(self, seed):
        stats = _morphology(256, seed)
        counts = [n for _, n, _ in stats]
        mean_sizes = [m for _, _, m in stats]
        # organ 0 grows a few large lesions, organ 5 many tiny specks
        assert counts == sorted(counts), \
            f"component count must be monotone in the organ index: {counts}"
        assert counts[-1] >= 3 * max(counts[0], 1)
        assert mean_sizes == sorted(mean_sizes, reverse=True), \
            f"mean lesion size must shrink with the organ index: {mean_sizes}"
        assert mean_sizes[0] >= 3 * mean_sizes[-1]
