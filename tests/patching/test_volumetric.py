"""Tests for the volumetric (octree) adaptive patcher extension."""

import numpy as np
import pytest

from repro.data.synthetic_volume import generate_ct_volume
from repro.patching import (VolumeAPFConfig, VolumetricAdaptivePatcher)


@pytest.fixture(scope="module")
def ct():
    return generate_ct_volume(32, 32, seed=0)


class TestConfig:
    def test_bad_patch(self):
        with pytest.raises(ValueError):
            VolumeAPFConfig(patch_size=3)

    def test_bad_quantile(self):
        with pytest.raises(ValueError):
            VolumeAPFConfig(detail_quantile=1.5)

    def test_config_or_kwargs(self):
        with pytest.raises(ValueError):
            VolumetricAdaptivePatcher(VolumeAPFConfig(), patch_size=2)


class TestVolumeGenerator:
    def test_shapes(self, ct):
        assert ct.volume.shape == (32, 32, 32)
        assert ct.mask.shape == (32, 32, 32)

    def test_deterministic(self, ct):
        again = generate_ct_volume(32, 32, seed=0)
        np.testing.assert_array_equal(ct.volume, again.volume)

    def test_organs_shrink_toward_edges(self, ct):
        center = (ct.mask[16] > 0).sum()
        edge = (ct.mask[0] > 0).sum()
        assert edge < center

    def test_validation(self):
        with pytest.raises(ValueError):
            generate_ct_volume(32, 0, seed=0)


class TestVolumetricPatcher:
    def test_detail_map_sparsity(self, ct):
        p = VolumetricAdaptivePatcher(patch_size=4, split_value=8.0)
        d = p.detail_map(ct.volume)
        assert d.shape == ct.volume.shape
        assert 0.0 < d.mean() < 0.06  # ~3% of voxels at quantile 0.97

    def test_sequence_shorter_than_uniform(self, ct):
        p = VolumetricAdaptivePatcher(patch_size=4, split_value=8.0)
        seq = p(ct.volume)
        uniform = (32 // 4) ** 3
        assert len(seq) < uniform
        assert seq.patches.shape[1:] == (4, 4, 4)

    def test_morton_ordering(self, ct):
        from repro.quadtree import morton3d_encode
        seq = VolumetricAdaptivePatcher(patch_size=4, split_value=8.0)(ct.volume)
        codes = morton3d_encode(seq.zs, seq.ys, seq.xs).astype(np.int64)
        assert (np.diff(codes) > 0).all()

    def test_scatter_roundtrip_mean(self, ct):
        seq = VolumetricAdaptivePatcher(patch_size=4, split_value=8.0)(ct.volume)
        rec = seq.scatter_to_volume(seq.patches)
        assert rec.shape == (32, 32, 32)
        assert rec.mean() == pytest.approx(ct.volume.mean(), rel=1e-9)

    def test_scatter_scalars(self, ct):
        seq = VolumetricAdaptivePatcher(patch_size=4, split_value=8.0)(ct.volume)
        rec = seq.scatter_to_volume(np.ones(len(seq)))
        np.testing.assert_allclose(rec, 1.0)  # full coverage

    def test_tokens_and_coords(self, ct):
        seq = VolumetricAdaptivePatcher(patch_size=4, split_value=8.0)(ct.volume)
        assert seq.tokens().shape == (len(seq), 64)
        c = seq.coords()
        assert c.shape == (len(seq), 4)
        assert (c >= 0).all() and (c <= 1 + 1e-9).all()

    def test_rejects_2d(self):
        with pytest.raises(ValueError):
            VolumetricAdaptivePatcher(patch_size=4)(np.zeros((8, 8)))

    def test_tokens_feed_vit(self, ct):
        # The volumetric tokens slot straight into the 2-D-agnostic backbone.
        from repro.models import ViTBackbone
        seq = VolumetricAdaptivePatcher(patch_size=4, split_value=8.0)(ct.volume)
        model = ViTBackbone(token_dim=64, dim=16, depth=1, heads=2,
                            max_len=len(seq), use_coords=False)
        out = model(seq.tokens()[None].astype(np.float32))
        assert out.shape == (1, len(seq), 16)


class TestFitLength:
    def test_drop_to_target(self, ct):
        p = VolumetricAdaptivePatcher(patch_size=4, split_value=8.0,
                                      target_length=20)
        seq = p(ct.volume)
        assert len(seq) == 20
        assert seq.valid.all()
        assert seq.n_dropped == seq.n_real - 20
        assert seq.coverage_fraction() < 1.0

    def test_pad_to_target(self, ct):
        p = VolumetricAdaptivePatcher(patch_size=4, split_value=8.0,
                                      target_length=4096)
        seq = p(ct.volume)
        assert len(seq) == 4096
        assert not seq.valid.all()
        assert seq.n_dropped == 0
        # Padded slots: zero patches, zero sizes, zero coords.
        pad = ~seq.valid
        assert np.all(seq.patches[pad] == 0.0)
        assert np.all(seq.sizes[pad] == 0)
        assert np.all(seq.coords()[pad] == 0.0)

    def test_extract_natural_skips_drop(self, ct):
        p = VolumetricAdaptivePatcher(patch_size=4, split_value=8.0,
                                      target_length=20)
        nat = p.extract_natural(ct.volume)
        assert len(nat) != 20
        assert nat.valid.all()
        assert p.config.target_length == 20   # shared config untouched

    def test_coarsest_first_drops_large_cubes(self, ct):
        p = VolumetricAdaptivePatcher(patch_size=4, split_value=8.0,
                                      drop_strategy="coarsest-first")
        nat = p.extract_natural(ct.volume)
        target = len(nat) - 5
        fitted = p.fit_length(nat, target)
        # The retained set keeps the smallest (most detailed) cubes.
        assert fitted.sizes.max() <= nat.sizes.max()
        assert sorted(fitted.sizes)[:target] == sorted(nat.sizes)[:target]

    def test_explicit_rng_overrides_stream(self, ct):
        p = VolumetricAdaptivePatcher(patch_size=4, split_value=8.0)
        nat = p.extract_natural(ct.volume)
        a = p.fit_length(nat, 20, rng=np.random.default_rng(3))
        b = p.fit_length(nat, 20, rng=np.random.default_rng(3))
        np.testing.assert_array_equal(a.zs, b.zs)

    def test_bad_drop_strategy(self):
        with pytest.raises(ValueError):
            VolumeAPFConfig(drop_strategy="mystery")


class TestPatchifyLabels:
    def test_shapes_and_alignment(self, ct):
        p = VolumetricAdaptivePatcher(patch_size=4, split_value=8.0)
        seq = p(ct.volume)
        targets = p.patchify_labels((ct.mask > 0).astype(float), seq)
        assert targets.shape == (len(seq), 1, 4, 4, 4)
        assert targets.min() >= 0.0 and targets.max() <= 1.0
        # Scattering the targets back reconstructs the mask's mean exactly
        # at leaf granularity.
        rec = seq.scatter_to_volume(targets[:, 0])
        assert rec.mean() == pytest.approx((ct.mask > 0).mean(), rel=1e-9)

    def test_padded_slots_zero(self, ct):
        p = VolumetricAdaptivePatcher(patch_size=4, split_value=8.0,
                                      target_length=2048)
        seq = p(ct.volume)
        targets = p.patchify_labels((ct.mask > 0).astype(float), seq)
        assert np.all(targets[~seq.valid] == 0.0)

    def test_rejects_2d_mask(self, ct):
        p = VolumetricAdaptivePatcher(patch_size=4, split_value=8.0)
        seq = p(ct.volume)
        with pytest.raises(ValueError):
            p.patchify_labels(np.zeros((32, 32)), seq)
