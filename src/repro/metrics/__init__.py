"""``repro.metrics`` — evaluation metrics (paper §IV-E)."""

from .segmentation import (dice_score, iou_score, per_class_dice,
                           pixel_accuracy)
from .classification import top1_accuracy

__all__ = ["dice_score", "per_class_dice", "iou_score", "pixel_accuracy",
           "top1_accuracy"]
