"""Layer/module system built on the autograd engine.

Mirrors the subset of ``torch.nn`` the APF model zoo requires: parameter
registration with recursive discovery, train/eval modes, and the standard
transformer + convolutional building blocks.
"""

from __future__ import annotations

import math
from typing import Dict, Iterable, Iterator, List, Optional, Sequence, Tuple

import numpy as np

from . import functional as F
from .tensor import Tensor

__all__ = [
    "attention_bias",
    "Parameter",
    "Module",
    "Sequential",
    "ModuleList",
    "Identity",
    "Linear",
    "Dropout",
    "LayerNorm",
    "Conv2d",
    "ConvTranspose2d",
    "BatchNorm2d",
    "GroupNorm",
    "MultiHeadAttention",
    "MLP",
    "TransformerEncoderLayer",
    "TransformerEncoder",
]


class Parameter(Tensor):
    """A :class:`Tensor` flagged as trainable."""

    def __init__(self, data):
        super().__init__(data, requires_grad=True)


class Module:
    """Base class with recursive parameter/submodule discovery."""

    def __init__(self) -> None:
        self.training = True

    # -- registration by attribute assignment (torch-style) -------------
    def parameters(self) -> List[Parameter]:
        out: List[Parameter] = []
        seen = set()
        for _, p in self.named_parameters():
            if id(p) not in seen:
                seen.add(id(p))
                out.append(p)
        return out

    def named_parameters(self, prefix: str = "") -> Iterator[Tuple[str, Parameter]]:
        for name, val in vars(self).items():
            full = f"{prefix}{name}"
            if isinstance(val, Parameter):
                yield full, val
            elif isinstance(val, Module):
                yield from val.named_parameters(prefix=f"{full}.")
            elif isinstance(val, (list, tuple)):
                for i, item in enumerate(val):
                    if isinstance(item, Parameter):
                        yield f"{full}.{i}", item
                    elif isinstance(item, Module):
                        yield from item.named_parameters(prefix=f"{full}.{i}.")

    def modules(self) -> Iterator["Module"]:
        yield self
        for val in vars(self).values():
            if isinstance(val, Module):
                yield from val.modules()
            elif isinstance(val, (list, tuple)):
                for item in val:
                    if isinstance(item, Module):
                        yield from item.modules()

    def train(self, mode: bool = True) -> "Module":
        for m in self.modules():
            m.training = mode
        return self

    def eval(self) -> "Module":
        return self.train(False)

    def zero_grad(self) -> None:
        for p in self.parameters():
            p.grad = None

    def num_parameters(self) -> int:
        return sum(p.size for p in self.parameters())

    # -- state dict ------------------------------------------------------
    def state_dict(self) -> Dict[str, np.ndarray]:
        return {name: p.data.copy() for name, p in self.named_parameters()}

    def load_state_dict(self, state: Dict[str, np.ndarray]) -> None:
        params = dict(self.named_parameters())
        missing = set(params) - set(state)
        if missing:
            raise KeyError(f"missing keys in state dict: {sorted(missing)}")
        for name, arr in state.items():
            if name not in params:
                raise KeyError(f"unexpected key in state dict: {name}")
            if params[name].data.shape != arr.shape:
                raise ValueError(
                    f"shape mismatch for {name}: {params[name].data.shape} vs {arr.shape}")
            params[name].data = arr.copy()

    def __call__(self, *args, **kwargs):
        return self.forward(*args, **kwargs)

    def forward(self, *args, **kwargs):  # pragma: no cover - abstract
        raise NotImplementedError


class Sequential(Module):
    """Apply submodules in order."""

    def __init__(self, *layers: Module):
        super().__init__()
        self.layers = list(layers)

    def forward(self, x: Tensor) -> Tensor:
        for layer in self.layers:
            x = layer(x)
        return x

    def __iter__(self) -> Iterator[Module]:
        return iter(self.layers)

    def __len__(self) -> int:
        return len(self.layers)


class ModuleList(Module):
    """A registered list of submodules."""

    def __init__(self, modules: Optional[Iterable[Module]] = None):
        super().__init__()
        self.items = list(modules) if modules is not None else []

    def append(self, m: Module) -> None:
        self.items.append(m)

    def __iter__(self) -> Iterator[Module]:
        return iter(self.items)

    def __getitem__(self, i: int) -> Module:
        return self.items[i]

    def __len__(self) -> int:
        return len(self.items)

    def forward(self, *a, **k):  # pragma: no cover
        raise RuntimeError("ModuleList is a container; call items explicitly")


class Identity(Module):
    def forward(self, x: Tensor) -> Tensor:
        return x


def _kaiming_uniform(rng: np.random.Generator, shape: Tuple[int, ...],
                     fan_in: int, dtype=np.float32) -> np.ndarray:
    bound = math.sqrt(1.0 / max(fan_in, 1))
    return rng.uniform(-bound, bound, size=shape).astype(dtype)


class Linear(Module):
    """Affine map ``y = x W^T + b`` over the last axis."""

    def __init__(self, in_features: int, out_features: int, bias: bool = True,
                 rng: Optional[np.random.Generator] = None, dtype=np.float32):
        super().__init__()
        rng = rng or np.random.default_rng(0)
        self.in_features = in_features
        self.out_features = out_features
        self.weight = Parameter(_kaiming_uniform(rng, (out_features, in_features),
                                                 in_features, dtype))
        self.bias = Parameter(np.zeros(out_features, dtype=dtype)) if bias else None

    def forward(self, x: Tensor) -> Tensor:
        y = x @ self.weight.transpose()
        if self.bias is not None:
            y = y + self.bias
        return y


class Dropout(Module):
    def __init__(self, p: float = 0.0, rng: Optional[np.random.Generator] = None):
        super().__init__()
        self.p = p
        self.rng = rng or np.random.default_rng(0)

    def forward(self, x: Tensor) -> Tensor:
        return F.dropout(x, self.p, self.rng, training=self.training)


class LayerNorm(Module):
    def __init__(self, dim: int, eps: float = 1e-5, dtype=np.float32):
        super().__init__()
        self.eps = eps
        self.weight = Parameter(np.ones(dim, dtype=dtype))
        self.bias = Parameter(np.zeros(dim, dtype=dtype))

    def forward(self, x: Tensor) -> Tensor:
        return F.layer_norm(x, self.weight, self.bias, eps=self.eps)


class Conv2d(Module):
    def __init__(self, in_ch: int, out_ch: int, kernel: int, stride: int = 1,
                 padding: int = 0, bias: bool = True,
                 rng: Optional[np.random.Generator] = None, dtype=np.float32):
        super().__init__()
        rng = rng or np.random.default_rng(0)
        fan_in = in_ch * kernel * kernel
        self.stride, self.padding = stride, padding
        self.weight = Parameter(_kaiming_uniform(rng, (out_ch, in_ch, kernel, kernel),
                                                 fan_in, dtype))
        self.bias = Parameter(np.zeros(out_ch, dtype=dtype)) if bias else None

    def forward(self, x: Tensor) -> Tensor:
        return F.conv2d(x, self.weight, self.bias, stride=self.stride,
                        padding=self.padding)


class ConvTranspose2d(Module):
    def __init__(self, in_ch: int, out_ch: int, kernel: int, stride: int = 1,
                 padding: int = 0, bias: bool = True,
                 rng: Optional[np.random.Generator] = None, dtype=np.float32):
        super().__init__()
        rng = rng or np.random.default_rng(0)
        fan_in = in_ch * kernel * kernel
        self.stride, self.padding = stride, padding
        self.weight = Parameter(_kaiming_uniform(rng, (in_ch, out_ch, kernel, kernel),
                                                 fan_in, dtype))
        self.bias = Parameter(np.zeros(out_ch, dtype=dtype)) if bias else None

    def forward(self, x: Tensor) -> Tensor:
        return F.conv_transpose2d(x, self.weight, self.bias, stride=self.stride,
                                  padding=self.padding)


class BatchNorm2d(Module):
    """Batch normalization over (N,H,W) per channel, with running stats."""

    def __init__(self, channels: int, eps: float = 1e-5, momentum: float = 0.1,
                 dtype=np.float32):
        super().__init__()
        self.eps, self.momentum = eps, momentum
        self.weight = Parameter(np.ones(channels, dtype=dtype))
        self.bias = Parameter(np.zeros(channels, dtype=dtype))
        self.running_mean = np.zeros(channels, dtype=dtype)
        self.running_var = np.ones(channels, dtype=dtype)

    def forward(self, x: Tensor) -> Tensor:
        if self.training:
            mu = x.data.mean(axis=(0, 2, 3))
            var = x.data.var(axis=(0, 2, 3))
            self.running_mean = ((1 - self.momentum) * self.running_mean
                                 + self.momentum * mu).astype(self.running_mean.dtype)
            self.running_var = ((1 - self.momentum) * self.running_var
                                + self.momentum * var).astype(self.running_var.dtype)
        else:
            mu, var = self.running_mean, self.running_var
        inv = (1.0 / np.sqrt(var + self.eps)).reshape(1, -1, 1, 1)
        mu_t = Tensor(mu.reshape(1, -1, 1, 1))
        xhat = (x - mu_t) * Tensor(inv)
        return xhat * self.weight.reshape(1, -1, 1, 1) + self.bias.reshape(1, -1, 1, 1)


class GroupNorm(Module):
    """Group normalization (batch-size independent; default for small batches)."""

    def __init__(self, groups: int, channels: int, eps: float = 1e-5, dtype=np.float32):
        super().__init__()
        if channels % groups:
            raise ValueError(f"channels ({channels}) must divide by groups ({groups})")
        self.groups, self.eps = groups, eps
        self.weight = Parameter(np.ones(channels, dtype=dtype))
        self.bias = Parameter(np.zeros(channels, dtype=dtype))

    def forward(self, x: Tensor) -> Tensor:
        n, c, h, w = x.shape
        g = self.groups
        xg = x.reshape(n, g, c // g * h * w)
        mu = xg.mean(axis=2, keepdims=True)
        var = xg.var(axis=2, keepdims=True)
        xhat = (xg - mu) * ((var + self.eps) ** -0.5)
        xhat = xhat.reshape(n, c, h, w)
        return xhat * self.weight.reshape(1, -1, 1, 1) + self.bias.reshape(1, -1, 1, 1)


def attention_bias(key_mask: np.ndarray, dtype) -> np.ndarray:
    """Additive attention bias from a (N, L) boolean key mask.

    False marks padding keys that must receive (numerically) zero attention.
    Shared by the eager forward and
    :meth:`repro.models.vit.ViTBackbone.prepare_inputs` so the compiled
    runtime feeds bit-identical bias values.
    """
    return np.where(key_mask[:, None, None, :], 0.0, -1e9).astype(dtype)


class MultiHeadAttention(Module):
    """Standard dense multi-head self-attention (paper Eq. 2-5), unchanged.

    APF's central claim is that the attention mechanism stays *intact*; this
    module is therefore the vanilla O(N^2) formulation.
    """

    def __init__(self, dim: int, heads: int, rng: Optional[np.random.Generator] = None,
                 dtype=np.float32, attn_dropout: float = 0.0):
        super().__init__()
        if dim % heads:
            raise ValueError(f"dim ({dim}) must divide by heads ({heads})")
        rng = rng or np.random.default_rng(0)
        self.dim, self.heads = dim, heads
        self.head_dim = dim // heads
        self.wq = Linear(dim, dim, rng=rng, dtype=dtype)
        self.wk = Linear(dim, dim, rng=rng, dtype=dtype)
        self.wv = Linear(dim, dim, rng=rng, dtype=dtype)
        self.wo = Linear(dim, dim, rng=rng, dtype=dtype)
        self.attn_drop = Dropout(attn_dropout, rng=rng)

    def _split(self, x: Tensor, n: int, length: int) -> Tensor:
        # (N, L, D) -> (N, H, L, Dh)
        return x.reshape(n, length, self.heads, self.head_dim).transpose(0, 2, 1, 3)

    def _scale(self, dtype) -> Tensor:
        """Dtype-matched 1/sqrt(Dh) so float32 models stay float32 (a python
        scalar would coerce to a float64 0-d array and silently promote the
        whole downstream graph — double the bandwidth on this box)."""
        return Tensor(np.asarray(1.0 / math.sqrt(self.head_dim), dtype=dtype))

    def forward(self, x: Tensor, key_mask: Optional[np.ndarray] = None,
                attn_bias: Optional[Tensor] = None) -> Tensor:
        """``key_mask``: optional (N, L) boolean array; False marks padding
        keys that must receive zero attention (APF's pad-to-length step).
        ``attn_bias``: precomputed additive-bias tensor (see
        :func:`attention_bias`) — the shape-stable form the compiled runtime
        feeds; overrides ``key_mask``."""
        n, length, _ = x.shape
        q = self._split(self.wq(x), n, length)
        k = self._split(self.wk(x), n, length)
        v = self._split(self.wv(x), n, length)
        scores = (q @ k.transpose(0, 1, 3, 2)) * self._scale(x.dtype)  # (N,H,L,L)
        if attn_bias is None and key_mask is not None:
            attn_bias = Tensor(attention_bias(key_mask, scores.dtype))
        if attn_bias is not None:
            scores = scores + attn_bias
        attn = F.softmax(scores, axis=-1)
        attn = self.attn_drop(attn)
        ctx = attn @ v                                           # (N,H,L,Dh)
        ctx = ctx.transpose(0, 2, 1, 3).reshape(n, length, self.dim)
        return self.wo(ctx)

    def attention_map(self, x: Tensor) -> np.ndarray:
        """Return the (N,H,L,L) attention matrix without building a tape."""
        from .tensor import no_grad
        with no_grad():
            n, length, _ = x.shape
            q = self._split(self.wq(x), n, length)
            k = self._split(self.wk(x), n, length)
            scores = (q @ k.transpose(0, 1, 3, 2)) * self._scale(x.dtype)
            return F.softmax(scores, axis=-1).data


class MLP(Module):
    """Transformer feed-forward block: Linear -> GELU -> Linear."""

    def __init__(self, dim: int, hidden: int, rng: Optional[np.random.Generator] = None,
                 dtype=np.float32, drop: float = 0.0):
        super().__init__()
        rng = rng or np.random.default_rng(0)
        self.fc1 = Linear(dim, hidden, rng=rng, dtype=dtype)
        self.fc2 = Linear(hidden, dim, rng=rng, dtype=dtype)
        self.drop = Dropout(drop, rng=rng)

    def forward(self, x: Tensor) -> Tensor:
        return self.drop(self.fc2(self.fc1(x).gelu()))


class TransformerEncoderLayer(Module):
    """Pre-norm transformer block: x + MHA(LN(x)); x + MLP(LN(x))."""

    def __init__(self, dim: int, heads: int, mlp_ratio: float = 4.0,
                 rng: Optional[np.random.Generator] = None, dtype=np.float32,
                 drop: float = 0.0):
        super().__init__()
        rng = rng or np.random.default_rng(0)
        self.norm1 = LayerNorm(dim, dtype=dtype)
        self.attn = MultiHeadAttention(dim, heads, rng=rng, dtype=dtype)
        self.norm2 = LayerNorm(dim, dtype=dtype)
        self.mlp = MLP(dim, int(dim * mlp_ratio), rng=rng, dtype=dtype, drop=drop)

    def forward(self, x: Tensor, key_mask: Optional[np.ndarray] = None,
                attn_bias: Optional[Tensor] = None) -> Tensor:
        x = x + self.attn(self.norm1(x), key_mask=key_mask,
                          attn_bias=attn_bias)
        x = x + self.mlp(self.norm2(x))
        return x


class TransformerEncoder(Module):
    """A stack of encoder layers that can also return intermediate states
    (UNETR taps layers {3,6,9,12} for its skip connections)."""

    def __init__(self, dim: int, depth: int, heads: int, mlp_ratio: float = 4.0,
                 rng: Optional[np.random.Generator] = None, dtype=np.float32,
                 drop: float = 0.0):
        super().__init__()
        rng = rng or np.random.default_rng(0)
        self.layers = ModuleList([
            TransformerEncoderLayer(dim, heads, mlp_ratio, rng=rng, dtype=dtype,
                                    drop=drop)
            for _ in range(depth)
        ])
        self.norm = LayerNorm(dim, dtype=dtype)

    def forward(self, x: Tensor, return_hidden: Sequence[int] = (),
                key_mask: Optional[np.ndarray] = None,
                attn_bias: Optional[Tensor] = None) -> Tensor:
        hidden: List[Tensor] = []
        for i, layer in enumerate(self.layers, start=1):
            x = layer(x, key_mask=key_mask, attn_bias=attn_bias)
            if i in return_hidden:
                hidden.append(x)
        x = self.norm(x)
        if return_hidden:
            return x, hidden
        return x
