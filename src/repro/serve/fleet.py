"""Fleet assembly — N engine replicas behind a :class:`FleetRouter`.

:func:`build_fleet` is the one-call constructor the benchmarks, the demo,
and the fleet DES all share: it stamps out ``replicas`` independent
:class:`~repro.serve.engine.InferenceEngine` instances (each owning its
own Predictor — plan caches and result caches are per-replica, which is
the whole point of digest sharding), addresses them with a
:class:`~repro.distributed.SimCluster` topology, and wires them into a
router.

Replicas may be *heterogeneous*: ``service_model`` accepts either one
model shared by all replicas or a per-rank sequence (e.g. one slow
straggler), which the deterministic fleet DES
(:func:`~repro.serve.loadgen.run_fleet_load`) replays bit-exactly.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Callable, Optional, Sequence

from ..distributed import SimCluster
from .engine import InferenceEngine
from .router import FleetRouter

__all__ = ["FleetConfig", "build_fleet"]


@dataclass
class FleetConfig:
    """Fleet-level knobs (per-engine knobs ride in ``engine_opts``)."""

    replicas: int = 2
    #: Spill overloaded requests down the rendezvous order (fleet-wide
    #: admission control) instead of strict-affinity rejection.
    spill: bool = True
    #: Virtual routing-hop delay applied by the fleet DES per submission.
    route_seconds: float = 0.0


def build_fleet(predictor_factory: Callable[[int], object],
                config: Optional[FleetConfig] = None, *,
                replicas: Optional[int] = None,
                clock: Optional[Callable[[], float]] = None,
                service_model=None,
                cluster: Optional[SimCluster] = None,
                tracer=None,
                **engine_opts) -> FleetRouter:
    """Construct ``replicas`` engines over per-rank Predictors + a router.

    Parameters
    ----------
    predictor_factory:
        ``rank -> Predictor``. Called once per replica; each replica must
        get its *own* Predictor (sharing the underlying model weights is
        fine and normal — they are read-only at inference).
    config / replicas:
        A :class:`FleetConfig`, or just the replica count (other fields
        default). ``replicas=`` overrides the config's count.
    clock:
        Shared time source for every replica (pass a
        :class:`~repro.serve.loadgen.SimClock`'s ``now`` for the DES).
        None -> each engine uses the real monotonic clock.
    service_model:
        One :class:`~repro.serve.loadgen.ServiceModel` shared by all
        replicas, or a per-rank sequence of them (heterogeneous fleet),
        or None for measured wall time.
    cluster:
        Replica addressing topology; defaults to ``SimCluster(replicas)``.
    tracer:
        Optional :class:`~repro.obs.Tracer` shared by the router and
        every replica; replica tracks are labeled ``replica<rank>``.
        Build it over the same ``clock`` as the fleet (the DES virtual
        clock for deterministic traces).
    engine_opts:
        Forwarded to every :class:`InferenceEngine` (``max_queue``,
        ``flush_deadline``, ``result_cache_items``, ...).
    """
    cfg = config if config is not None else FleetConfig()
    n = replicas if replicas is not None else cfg.replicas
    if n < 1:
        raise ValueError("need at least one replica")
    if isinstance(service_model, Sequence):
        if len(service_model) != n:
            raise ValueError(f"got {len(service_model)} service models "
                             f"for {n} replicas")
        models = list(service_model)
    else:
        models = [service_model] * n
    engines = []
    for rank in range(n):
        kwargs = dict(engine_opts)
        if clock is not None:
            kwargs["clock"] = clock
        engine = InferenceEngine(predictor_factory(rank),
                                 service_model=models[rank], tracer=tracer,
                                 **kwargs)
        if engine.tracer is not None:
            engine.set_trace_label(f"replica{rank}")
        engines.append(engine)
    return FleetRouter(engines,
                       cluster=cluster if cluster is not None
                       else SimCluster(n),
                       spill=cfg.spill, route_seconds=cfg.route_seconds,
                       tracer=tracer)
