"""Unit tests for the autograd core: construction, arithmetic, broadcasting,
reductions, shape ops, and the backward pass bookkeeping."""

import numpy as np
import pytest

from repro.nn import Tensor, concat, no_grad, ones, stack, tensor, zeros


class TestConstruction:
    def test_from_list(self):
        t = Tensor([1.0, 2.0, 3.0])
        assert t.shape == (3,)
        assert t.dtype == np.float64 or t.dtype == np.float32

    def test_int_input_promoted_to_float(self):
        t = Tensor(np.arange(4))
        assert t.dtype == np.float32

    def test_float64_preserved(self):
        t = Tensor(np.zeros(3, dtype=np.float64))
        assert t.dtype == np.float64

    def test_requires_grad_flag(self):
        assert Tensor([1.0], requires_grad=True).requires_grad
        assert not Tensor([1.0]).requires_grad

    def test_factories(self):
        assert zeros((2, 3)).shape == (2, 3)
        assert float(ones((2,)).sum().data) == 2.0
        assert tensor([1.0]).shape == (1,)

    def test_item_and_len(self):
        assert Tensor([[3.5]]).item() == 3.5
        assert len(Tensor(np.zeros((4, 2)))) == 4

    def test_detach_breaks_graph(self):
        x = Tensor([2.0], requires_grad=True)
        y = (x * 3).detach()
        assert not y.requires_grad


class TestArithmetic:
    def test_add_backward(self):
        a = Tensor(np.array([1.0, 2.0]), requires_grad=True)
        b = Tensor(np.array([3.0, 4.0]), requires_grad=True)
        (a + b).sum().backward()
        np.testing.assert_allclose(a.grad, [1, 1])
        np.testing.assert_allclose(b.grad, [1, 1])

    def test_broadcast_add_backward(self):
        a = Tensor(np.ones((2, 3)), requires_grad=True)
        b = Tensor(np.ones((3,)), requires_grad=True)
        (a + b).sum().backward()
        np.testing.assert_allclose(b.grad, [2, 2, 2])

    def test_mul_backward(self):
        a = Tensor(np.array([2.0, 3.0]), requires_grad=True)
        b = Tensor(np.array([5.0, 7.0]), requires_grad=True)
        (a * b).sum().backward()
        np.testing.assert_allclose(a.grad, [5, 7])
        np.testing.assert_allclose(b.grad, [2, 3])

    def test_div_backward(self):
        a = Tensor(np.array([6.0]), requires_grad=True)
        b = Tensor(np.array([2.0]), requires_grad=True)
        (a / b).backward()
        np.testing.assert_allclose(a.grad, [0.5])
        np.testing.assert_allclose(b.grad, [-1.5])

    def test_scalar_ops(self):
        a = Tensor(np.array([1.0, 2.0]), requires_grad=True)
        y = 2.0 * a + 1.0 - a / 2.0
        y.sum().backward()
        np.testing.assert_allclose(a.grad, [1.5, 1.5])

    def test_rsub_rdiv(self):
        a = Tensor(np.array([2.0]), requires_grad=True)
        (10.0 - a).backward()
        np.testing.assert_allclose(a.grad, [-1.0])
        a.grad = None
        (10.0 / a).backward()
        np.testing.assert_allclose(a.grad, [-2.5])

    def test_pow_backward(self):
        a = Tensor(np.array([3.0]), requires_grad=True)
        (a ** 2).backward()
        np.testing.assert_allclose(a.grad, [6.0])

    def test_pow_rejects_tensor_exponent(self):
        a = Tensor(np.array([3.0]))
        with pytest.raises(TypeError):
            _ = a ** Tensor([2.0])

    def test_neg(self):
        a = Tensor(np.array([1.0, -2.0]), requires_grad=True)
        (-a).sum().backward()
        np.testing.assert_allclose(a.grad, [-1, -1])

    def test_grad_accumulates_on_reuse(self):
        a = Tensor(np.array([2.0]), requires_grad=True)
        (a * a).backward()  # d/da a^2 = 2a = 4
        np.testing.assert_allclose(a.grad, [4.0])


class TestReductions:
    def test_sum_axis_keepdims(self):
        a = Tensor(np.arange(6, dtype=np.float64).reshape(2, 3), requires_grad=True)
        s = a.sum(axis=1)
        assert s.shape == (2,)
        s.sum().backward()
        np.testing.assert_allclose(a.grad, np.ones((2, 3)))

    def test_mean(self):
        a = Tensor(np.ones((2, 4)), requires_grad=True)
        a.mean().backward()
        np.testing.assert_allclose(a.grad, np.full((2, 4), 1 / 8))

    def test_mean_axis(self):
        a = Tensor(np.ones((2, 4)), requires_grad=True)
        a.mean(axis=0).sum().backward()
        np.testing.assert_allclose(a.grad, np.full((2, 4), 0.5))

    def test_var_matches_numpy(self):
        x = np.random.default_rng(0).normal(size=(3, 5))
        v = Tensor(x).var(axis=1)
        np.testing.assert_allclose(v.data, x.var(axis=1), rtol=1e-6)

    def test_max_backward_routes_to_argmax(self):
        a = Tensor(np.array([[1.0, 5.0, 3.0]]), requires_grad=True)
        a.max(axis=1).sum().backward()
        np.testing.assert_allclose(a.grad, [[0, 1, 0]])

    def test_max_ties_split_gradient(self):
        a = Tensor(np.array([2.0, 2.0]), requires_grad=True)
        a.max().backward()
        np.testing.assert_allclose(a.grad, [0.5, 0.5])


class TestShapeOps:
    def test_reshape_roundtrip(self):
        a = Tensor(np.arange(6, dtype=np.float64), requires_grad=True)
        a.reshape(2, 3).sum().backward()
        np.testing.assert_allclose(a.grad, np.ones(6))

    def test_transpose_backward(self):
        a = Tensor(np.random.default_rng(0).normal(size=(2, 3, 4)), requires_grad=True)
        (a.transpose(2, 0, 1) * 2).sum().backward()
        np.testing.assert_allclose(a.grad, np.full((2, 3, 4), 2.0))

    def test_default_transpose_reverses(self):
        a = Tensor(np.zeros((2, 3, 4)))
        assert a.transpose().shape == (4, 3, 2)

    def test_swapaxes(self):
        a = Tensor(np.zeros((2, 3, 4)))
        assert a.swapaxes(0, 2).shape == (4, 3, 2)

    def test_getitem_backward_scatter(self):
        a = Tensor(np.arange(5, dtype=np.float64), requires_grad=True)
        a[1:3].sum().backward()
        np.testing.assert_allclose(a.grad, [0, 1, 1, 0, 0])

    def test_getitem_fancy_index_accumulates(self):
        a = Tensor(np.zeros(3), requires_grad=True)
        idx = np.array([0, 0, 2])
        a[idx].sum().backward()
        np.testing.assert_allclose(a.grad, [2, 0, 1])

    def test_concat_backward(self):
        a = Tensor(np.ones(2), requires_grad=True)
        b = Tensor(np.ones(3), requires_grad=True)
        c = concat([a, b])
        assert c.shape == (5,)
        (c * Tensor(np.arange(5.0))).sum().backward()
        np.testing.assert_allclose(a.grad, [0, 1])
        np.testing.assert_allclose(b.grad, [2, 3, 4])

    def test_stack_backward(self):
        a = Tensor(np.ones(3), requires_grad=True)
        b = Tensor(np.ones(3), requires_grad=True)
        s = stack([a, b], axis=0)
        assert s.shape == (2, 3)
        (s[0] * 2 + s[1] * 3).sum().backward()
        np.testing.assert_allclose(a.grad, [2, 2, 2])
        np.testing.assert_allclose(b.grad, [3, 3, 3])


class TestMatmul:
    def test_2d(self):
        a = Tensor(np.random.default_rng(0).normal(size=(3, 4)), requires_grad=True)
        b = Tensor(np.random.default_rng(1).normal(size=(4, 5)), requires_grad=True)
        (a @ b).sum().backward()
        np.testing.assert_allclose(a.grad, np.ones((3, 5)) @ b.data.T)
        np.testing.assert_allclose(b.grad, a.data.T @ np.ones((3, 5)))

    def test_batched_broadcast(self):
        a = Tensor(np.random.default_rng(0).normal(size=(2, 6, 3, 4)), requires_grad=True)
        b = Tensor(np.random.default_rng(1).normal(size=(4, 5)), requires_grad=True)
        out = a @ b
        assert out.shape == (2, 6, 3, 5)
        out.sum().backward()
        assert a.grad.shape == a.shape
        assert b.grad.shape == b.shape

    def test_matvec(self):
        a = Tensor(np.eye(3), requires_grad=True)
        v = Tensor(np.array([1.0, 2.0, 3.0]), requires_grad=True)
        (a @ v).sum().backward()
        assert a.grad.shape == (3, 3)
        np.testing.assert_allclose(v.grad, [1, 1, 1])


class TestAutogradMachinery:
    def test_no_grad_context(self):
        a = Tensor(np.ones(2), requires_grad=True)
        with no_grad():
            y = a * 2
        assert not y.requires_grad

    def test_backward_requires_scalar(self):
        a = Tensor(np.ones(3), requires_grad=True)
        with pytest.raises(RuntimeError):
            (a * 2).backward()

    def test_backward_on_nongrad_raises(self):
        with pytest.raises(RuntimeError):
            Tensor(np.ones(1)).backward()

    def test_diamond_graph_accumulates_once_per_path(self):
        # y = x*2 ; z = x*3 ; out = y+z → dout/dx = 5
        x = Tensor(np.array([1.0]), requires_grad=True)
        (x * 2 + x * 3).backward()
        np.testing.assert_allclose(x.grad, [5.0])

    def test_deep_chain_no_recursion_error(self):
        x = Tensor(np.array([1.0]), requires_grad=True)
        y = x
        for _ in range(3000):
            y = y + 0.001
        y.backward()
        np.testing.assert_allclose(x.grad, [1.0])

    def test_zero_grad(self):
        x = Tensor(np.array([1.0]), requires_grad=True)
        (x * 2).backward()
        x.zero_grad()
        assert x.grad is None

    def test_clip_backward_masks(self):
        x = Tensor(np.array([-2.0, 0.5, 2.0]), requires_grad=True)
        x.clip(-1, 1).sum().backward()
        np.testing.assert_allclose(x.grad, [0, 1, 0])

    def test_abs_backward(self):
        x = Tensor(np.array([-2.0, 3.0]), requires_grad=True)
        x.abs().sum().backward()
        np.testing.assert_allclose(x.grad, [-1, 1])

    def test_astype_backward_casts(self):
        x = Tensor(np.ones(2, dtype=np.float64), requires_grad=True)
        y = x.astype(np.float32)
        assert y.dtype == np.float32
        y.sum().backward()
        assert x.grad.dtype == np.float64
