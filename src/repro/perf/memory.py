"""Process-memory observability for the streaming runner and its bench gate.

Two complementary measurements:

* **RSS** (:func:`current_rss_bytes`, :func:`peak_rss_bytes`) — what the
  OS actually charges the process. Honest but noisy: it includes the
  interpreter, imported libraries, allocator fragmentation, and anything
  the kernel has not reclaimed yet, so it only moves *up* in coarse steps
  and differs across hosts.
* **Traced allocation** (:class:`TracedMemory`) — ``tracemalloc`` peaks
  over a scoped region. NumPy routes its data buffers through the traced
  allocator, so the peak measures exactly the array working set a code
  region touches, byte-for-byte reproducibly across runs and hosts. This
  is what the streaming bench gates on: a CI assertion on RSS would flake
  with allocator/version drift, while the traced peak is deterministic.

The two agree on the *headline* question ("does streaming a 16K² scene
stay bounded by a few macro-tiles?") because the scene arrays dwarf every
other allocation by orders of magnitude.
"""

from __future__ import annotations

import os
import sys
import tracemalloc
from typing import Optional

__all__ = ["current_rss_bytes", "peak_rss_bytes", "TracedMemory"]


def current_rss_bytes() -> Optional[int]:
    """Resident-set size of this process in bytes (None if unsupported).

    Reads ``/proc/self/statm`` (Linux); other platforms fall back to None
    rather than guessing — callers treat the value as advisory telemetry.
    """
    try:
        with open("/proc/self/statm") as fh:
            resident_pages = int(fh.read().split()[1])
        return resident_pages * os.sysconf("SC_PAGE_SIZE")
    except (OSError, ValueError, IndexError):
        return None


def peak_rss_bytes() -> Optional[int]:
    """Lifetime peak RSS in bytes via ``getrusage`` (None if unsupported).

    ``ru_maxrss`` is kilobytes on Linux and bytes on macOS; normalized
    here. The value is a process-lifetime high-water mark — it cannot be
    reset, so scoped measurements should use :class:`TracedMemory`.
    """
    try:
        import resource
    except ImportError:  # pragma: no cover - non-POSIX
        return None
    peak = resource.getrusage(resource.RUSAGE_SELF).ru_maxrss
    if sys.platform == "darwin":  # pragma: no cover - not exercised on CI
        return int(peak)
    return int(peak) * 1024


class TracedMemory:
    """Context manager measuring the peak traced-allocation delta.

    Measures ``tracemalloc`` peak minus the baseline at ``__enter__`` —
    i.e. the largest amount of *additional* memory the wrapped region held
    at any instant. Tracing started by the context is stopped on exit;
    tracing that was already active (e.g. an enclosing measurement) is
    left running. Scopes nest: entering an inner scope first folds the
    global peak into every enclosing :class:`TracedMemory` (so nothing
    recorded before the reset is lost), then resets the peak counter so
    the inner scope measures only its own region. Scopes are tracked in a
    module-level stack — nest them on one thread. Caveat: tracing started
    *externally* (a bare ``tracemalloc.start()``) also has its global peak
    counter reset on scope entry — only enclosing :class:`TracedMemory`
    scopes are preserved; read your peak before entering one.

    Attributes
    ----------
    peak_bytes:
        Peak allocation above the entry baseline (0 until exit or
        :meth:`update`).
    baseline_bytes:
        Traced bytes live at entry.
    """

    _active: list = []       # enclosing scopes, innermost last

    def __init__(self) -> None:
        self.peak_bytes = 0
        self.baseline_bytes = 0
        self._started = False

    def __enter__(self) -> "TracedMemory":
        if not tracemalloc.is_tracing():
            tracemalloc.start()
            self._started = True
        else:
            for scope in TracedMemory._active:
                scope.update()           # preserve peaks we are about to reset
            tracemalloc.reset_peak()
        self.baseline_bytes = tracemalloc.get_traced_memory()[0]
        TracedMemory._active.append(self)
        return self

    def update(self) -> int:
        """Fold the current peak into :attr:`peak_bytes` and return it."""
        if tracemalloc.is_tracing():
            _, peak = tracemalloc.get_traced_memory()
            self.peak_bytes = max(self.peak_bytes, peak - self.baseline_bytes)
        return self.peak_bytes

    def __exit__(self, *exc) -> None:
        self.update()
        if self in TracedMemory._active:
            TracedMemory._active.remove(self)
        if self._started:
            tracemalloc.stop()
            self._started = False
