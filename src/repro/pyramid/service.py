"""Interactive tile service — viewports in, prioritized tile plans out.

:class:`PyramidService` is the viewer-facing front end over the serving
stack. A viewport request ``(level, origin, size)`` becomes a set of
:class:`~repro.pyramid.levels.PyramidTile` fetches, resolved in layers:

1. **Shared tile cache** (:class:`TileCache`): digest-keyed LRU of
   finished tile results, shared by every session. A tile any viewer has
   already seen costs nothing — the million-user case is many viewers
   converging on the same hot regions.
2. **In-flight join**: a tile some session is already waiting on is
   *joined*, not resubmitted — the new session rides the same future.
   (The engine would collapse the duplicate anyway; joining here avoids
   even the submission and keeps one task per digest to account against.)
3. **Submission**: remaining tiles go to the backend
   (:class:`~repro.serve.engine.InferenceEngine` or
   :class:`~repro.serve.router.FleetRouter`) on the **interactive** lane,
   ordered center-out from the viewport middle — under ``policy =
   "priority"`` the tiles the user is looking at dispatch first. The
   ``"fifo"`` policy submits in row-major scan order and never cancels:
   the control arm every viewer benchmark compares against.

Around the visible set the service runs **speculative prefetch** into the
bulk lane: pan-direction extrapolation when the session's previous
viewport shows a drift, zoom-adjacent (parent/child) tiles otherwise,
ordered along a space-filling curve (Hilbert by default — see
``prefetch_order``) so speculative work lands cache-coherently. Prefetch
is best-effort: admission rejections are counted, never raised.

When a viewport supersedes one it overlaps, still-queued tiles from the
old viewport are **cancelled** through the backend's ``cancel()`` path
(waiting work only — dispatched or twin-carrying requests stay). The
freed queue slots are what lets priority beat FIFO under backlog rather
than merely reordering the same queue.
"""

from __future__ import annotations

import threading
from collections import OrderedDict
from dataclasses import dataclass, field
from typing import Dict, Hashable, List, Optional, Sequence, Set, Tuple

import numpy as np

from ..quadtree.hilbert import hilbert_sort_order
from ..quadtree.morton import morton_sort_order
from ..serve.metrics import MetricsRegistry
from ..serve.queueing import EngineOverloaded
from .levels import PyramidTile, TilePyramid

__all__ = ["TileCache", "TileTask", "ViewportReport", "PyramidService"]


class TileCache:
    """Cross-session LRU of finished tile results, keyed by content digest.

    Sits *above* the engine's result cache: a hit here skips submission
    entirely (no queueing, no admission risk), and because the key is the
    content digest, identical tiles — background regions repeated across
    a slide, the same region viewed by different users, even coincident
    pixels at different pyramid levels — all collapse to one entry.
    """

    def __init__(self, items: int = 512):
        if items < 1:
            raise ValueError("cache needs at least one slot")
        self.items = items
        self._store: "OrderedDict[Hashable, np.ndarray]" = OrderedDict()
        self.hits = 0
        self.misses = 0
        self.evictions = 0

    def __len__(self) -> int:
        return len(self._store)

    def get(self, digest: Hashable) -> Optional[np.ndarray]:
        value = self._store.get(digest)
        if value is None:
            self.misses += 1
            return None
        self._store.move_to_end(digest)
        self.hits += 1
        return value

    def put(self, digest: Hashable, value: np.ndarray) -> None:
        if digest in self._store:
            self._store.move_to_end(digest)
            return
        frozen = np.asarray(value).copy()
        frozen.setflags(write=False)
        self._store[digest] = frozen
        while len(self._store) > self.items:
            self._store.popitem(last=False)
            self.evictions += 1

    def stats(self) -> dict:
        total = self.hits + self.misses
        return {"items": len(self._store), "capacity": self.items,
                "hits": self.hits, "misses": self.misses,
                "evictions": self.evictions,
                "hit_rate": self.hits / total if total else 0.0}


@dataclass
class TileTask:
    """One unit of tile work and every session riding on it."""

    tile: PyramidTile
    digest: Hashable
    lane: str
    submit_t: float
    future: object = None             #: backend Future (None: cached/rejected)
    sessions: Set[str] = field(default_factory=set)
    prefetch: bool = False
    cached: bool = False              #: served from the shared cache
    joined: bool = False              #: rode an already-in-flight task
    rejected: bool = False            #: admission control said no
    cancelled: bool = False           #: retired by stale-viewport cleanup
    done_t: Optional[float] = None    #: completion stamp (set by the driver)

    @property
    def live(self) -> bool:
        """Still owed a completion (submitted, not yet resolved/retired)."""
        return (self.future is not None and not self.cancelled
                and self.done_t is None and not self.future.done())


@dataclass
class ViewportReport:
    """What one ``request_viewport`` call did, for drivers and benches."""

    session: str
    time: float
    level: int
    origin: Tuple[int, int]
    size: Tuple[int, int]
    tasks: List[TileTask] = field(default_factory=list)      #: visible tiles
    prefetched: List[TileTask] = field(default_factory=list)
    cache_hits: int = 0
    joined: int = 0
    submitted: int = 0
    rejected: int = 0
    cancelled_stale: int = 0
    prefetch_submitted: int = 0
    prefetch_rejected: int = 0

    def time_to_first_tile(self) -> Optional[float]:
        """Seconds from the viewport event until any visible tile is
        available (0.0 on a shared-cache hit; None if nothing landed)."""
        if any(t.cached for t in self.tasks):
            return 0.0
        done = [t.done_t - self.time for t in self.tasks
                if t.done_t is not None]
        return min(done) if done else None


class PyramidService:
    """Viewport-priority tile serving over an engine or fleet backend.

    Parameters
    ----------
    pyramid:
        The :class:`~repro.pyramid.levels.TilePyramid` to serve.
    backend:
        Anything with ``submit(image, lane=...) -> Future`` — an
        :class:`~repro.serve.engine.InferenceEngine` or a
        :class:`~repro.serve.router.FleetRouter`. Cancellation uses the
        backend's ``cancel(future)`` when present.
    policy:
        ``"priority"`` (center-out dispatch + stale cancellation) or
        ``"fifo"`` (row-major, never cancels — the benchmark control).
    prefetch_tiles:
        Speculative-tile budget per viewport event (0 disables prefetch).
    prefetch_order:
        ``"hilbert"`` or ``"morton"`` — the space-filling curve ordering
        of the speculative set (the viewer bench records the locality
        delta between the two).
    clock:
        Callable returning the current time; pass the DES
        :class:`~repro.serve.loadgen.SimClock` so submit stamps live in
        virtual time. Defaults to the backend engine clock semantics via
        explicit ``now=`` arguments.
    """

    def __init__(self, pyramid: TilePyramid, backend, *,
                 policy: str = "priority", prefetch_tiles: int = 4,
                 prefetch_order: str = "hilbert",
                 cache_items: int = 512,
                 lane: str = "interactive", prefetch_lane: str = "bulk",
                 clock=None, tracer=None):
        if policy not in ("priority", "fifo"):
            raise ValueError(f"unknown policy {policy!r}")
        if prefetch_order not in ("hilbert", "morton"):
            raise ValueError(f"unknown prefetch order {prefetch_order!r}")
        if prefetch_tiles < 0:
            raise ValueError("prefetch_tiles must be >= 0")
        self.pyramid = pyramid
        self.backend = backend
        self.policy = policy
        self.prefetch_tiles = prefetch_tiles
        self.prefetch_order = prefetch_order
        self.lane = lane
        self.prefetch_lane = prefetch_lane
        self.clock = clock
        self.cache = TileCache(cache_items)
        self.metrics = MetricsRegistry()
        self._lock = threading.Lock()
        #: digest -> in-flight TileTask (cross-session join point)
        self._outstanding: Dict[Hashable, TileTask] = {}
        #: session -> {tile: task} of its live (cancellable) work
        self._session_tasks: Dict[str, Dict[PyramidTile, TileTask]] = {}
        self._last_viewport: Dict[str, Tuple[int, int, int]] = {}
        # Tracing (repro.obs): cache/join/submit/cancel decisions land on
        # the "viewer" track; inherits the backend's tracer by default so
        # one Tracer covers viewer -> router -> replicas end to end.
        if tracer is None:
            tracer = getattr(backend, "tracer", None)
        self.tracer = tracer if (tracer is not None and tracer.enabled) \
            else None

    # -- ordering ----------------------------------------------------------
    def _visible_order(self, tiles: Sequence[PyramidTile],
                       origin: Tuple[int, int],
                       size: Tuple[int, int]) -> List[PyramidTile]:
        """Dispatch order for visible tiles: the scheduling policy itself.

        Priority mode sorts by squared distance from the viewport center
        (what the user is looking *at* renders first); FIFO keeps the
        row-major scan order as a plain reading-order control.
        """
        if self.policy == "fifo":
            return sorted(tiles, key=lambda t: (t.ty, t.tx))
        s = self.pyramid.tile
        cy = origin[0] + size[0] / 2.0
        cx = origin[1] + size[1] / 2.0
        return sorted(tiles, key=lambda t: (
            ((t.ty + 0.5) * s - cy) ** 2 + ((t.tx + 0.5) * s - cx) ** 2,
            t.ty, t.tx))

    def _curve_order(self, tiles: Sequence[PyramidTile]) -> List[PyramidTile]:
        """Space-filling-curve order (prefetch locality, not priority)."""
        if len(tiles) < 2:
            return list(tiles)
        ys = np.array([t.ty for t in tiles])
        xs = np.array([t.tx for t in tiles])
        sort = (hilbert_sort_order if self.prefetch_order == "hilbert"
                else morton_sort_order)
        return [tiles[i] for i in sort(ys, xs)]

    # -- prefetch target selection ----------------------------------------
    def _prefetch_candidates(self, session: str, level: int,
                             origin: Tuple[int, int], size: Tuple[int, int],
                             visible: Set[PyramidTile]) -> List[PyramidTile]:
        """Speculate where the viewer goes next.

        A session panning (same level, drifting origin) most likely keeps
        panning: extrapolate the last motion vector one step and take the
        newly exposed tiles. A session that just zoomed, jumped, or sat
        still gets zoom-adjacent speculation instead: the parents (zoom
        out is always one click away) and the center tile's children.
        """
        py = self.pyramid
        candidates: List[PyramidTile] = []
        last = self._last_viewport.get(session)
        if last is not None and last[0] == level:
            dy, dx = origin[0] - last[1], origin[1] - last[2]
            if dy or dx:
                shifted = py.viewport_tiles(
                    level, (origin[0] + dy, origin[1] + dx), size)
                candidates.extend(t for t in shifted if t not in visible)
        if not candidates:
            seen: Set[PyramidTile] = set(visible)
            for t in self._visible_order(visible, origin, size):
                parent = py.parent(t)
                if parent is not None and parent not in seen:
                    candidates.append(parent)
                    seen.add(parent)
            center = min(visible, key=lambda t: (
                abs((t.ty + 0.5) * py.tile - origin[0] - size[0] / 2)
                + abs((t.tx + 0.5) * py.tile - origin[1] - size[1] / 2),
                t.ty, t.tx), default=None)
            if center is not None:
                candidates.extend(c for c in py.children(center)
                                  if c not in seen)
        return self._curve_order(candidates)[:self.prefetch_tiles]

    # -- stale-viewport cancellation --------------------------------------
    def _cancel_stale(self, session: str, keep: Set[PyramidTile],
                      now: float = 0.0) -> int:
        """Retire this session's queued tiles that the new viewport obsoleted.

        A tile is only *cancelled at the backend* when no session still
        wants it and the backend confirms it was still waiting (dispatched
        or twin-carrying work completes normally and fills the shared
        cache — never wasted, never orphaned).
        """
        cancel = getattr(self.backend, "cancel", None)
        if cancel is None:
            return 0
        cancelled = 0
        mine = self._session_tasks.get(session, {})
        for tile in [t for t in mine if t not in keep]:
            task = mine.pop(tile)
            task.sessions.discard(session)
            if task.sessions or not task.live:
                continue
            if cancel(task.future):
                task.cancelled = True
                cancelled += 1
                with self._lock:
                    if self._outstanding.get(task.digest) is task:
                        del self._outstanding[task.digest]
                self.metrics.inc("stale_cancelled")
                if self.tracer is not None:
                    self.tracer.instant(
                        "tile.cancel", "viewer", now,
                        args={"session": session,
                              "digest": str(task.digest)[:12]})
        return cancelled

    # -- completion --------------------------------------------------------
    def _on_done(self, task: TileTask, fut) -> None:
        if fut.cancelled():
            return
        exc = fut.exception()
        with self._lock:
            if self._outstanding.get(task.digest) is task:
                del self._outstanding[task.digest]
            if exc is not None:
                self.metrics.inc("failed")
                return
            self.cache.put(task.digest, fut.result())
            self.metrics.inc("completed")

    # -- the front door ----------------------------------------------------
    def request_viewport(self, session: str, level: int,
                         origin: Tuple[int, int], size: Tuple[int, int],
                         now: Optional[float] = None) -> ViewportReport:
        """Resolve one viewport: cache, join, submit, prefetch, cancel.

        Returns a :class:`ViewportReport` carrying one
        :class:`TileTask` per visible tile (cache hits included) plus the
        speculative tasks — the DES driver stamps their completion times.
        """
        if now is None:
            now = self.clock() if self.clock is not None else 0.0
        py = self.pyramid
        report = ViewportReport(session=session, time=now, level=level,
                                origin=tuple(origin), size=tuple(size))
        visible = py.viewport_tiles(level, origin, size)
        visible_set = set(visible)
        prefetch = (self._prefetch_candidates(session, level, origin, size,
                                              visible_set)
                    if self.prefetch_tiles and visible else [])
        if self.tracer is not None:
            self.tracer.instant(
                "viewport", "viewer", now,
                args={"session": session, "level": level,
                      "origin": [int(origin[0]), int(origin[1])],
                      "size": [int(size[0]), int(size[1])],
                      "tiles": len(visible)})
        if self.policy == "priority":
            report.cancelled_stale = self._cancel_stale(
                session, visible_set | set(prefetch), now)
        mine = self._session_tasks.setdefault(session, {})
        for tile in self._visible_order(visible, origin, size):
            task = self._resolve_tile(session, tile, now, report,
                                      prefetch=False)
            report.tasks.append(task)
            if task.live:
                mine[tile] = task
        for tile in prefetch:
            if tile in mine:        # already live for this session
                continue
            task = self._resolve_tile(session, tile, now, report,
                                      prefetch=True)
            if task is not None:
                report.prefetched.append(task)
                if task.live:
                    mine[tile] = task
        self._last_viewport[session] = (level, int(origin[0]),
                                        int(origin[1]))
        self.metrics.inc("viewports")
        return report

    def _resolve_tile(self, session: str, tile: PyramidTile, now: float,
                      report: ViewportReport,
                      prefetch: bool) -> Optional[TileTask]:
        """One tile through the cache / join / submit ladder."""
        digest = self.pyramid.digest(tile)
        lane = self.prefetch_lane if prefetch else self.lane
        tracer = self.tracer
        targs = ({"session": session, "digest": str(digest)[:12],
                  "prefetch": prefetch}
                 if tracer is not None else None)
        with self._lock:
            value = self.cache.get(digest)
            joined = self._outstanding.get(digest) if value is None else None
        if value is not None:
            if prefetch:            # speculating on a cached tile is free
                return None
            report.cache_hits += 1
            self.metrics.inc("tile_cache_hits")
            if tracer is not None:
                tracer.instant("tile.cache_hit", "viewer", now, args=targs)
            return TileTask(tile=tile, digest=digest, lane=lane,
                            submit_t=now, sessions={session},
                            cached=True, done_t=now)
        if joined is not None:
            joined.sessions.add(session)
            joined.joined = True
            if prefetch:
                return None
            report.joined += 1
            self.metrics.inc("tile_joined")
            if tracer is not None:
                tracer.instant("tile.join", "viewer", now, args=targs)
            return joined
        task = TileTask(tile=tile, digest=digest, lane=lane, submit_t=now,
                        sessions={session}, prefetch=prefetch)
        try:
            task.future = self.backend.submit(self.pyramid.tile_pixels(tile),
                                              lane=lane)
        except EngineOverloaded:
            # Visible tiles surface the rejection (the viewer re-requests
            # on its next event); speculative ones just evaporate.
            task.rejected = True
            if tracer is not None:
                tracer.instant("tile.reject", "viewer", now, args=targs)
            if prefetch:
                report.prefetch_rejected += 1
                self.metrics.inc("prefetch_rejected")
                return None
            report.rejected += 1
            self.metrics.inc("tile_rejected")
            return task
        with self._lock:
            self._outstanding[digest] = task
        if tracer is not None:
            tracer.instant("tile.submit", "viewer", now,
                           args=dict(targs, lane=lane))
        task.future.add_done_callback(
            lambda fut, task=task: self._on_done(task, fut))
        if prefetch:
            report.prefetch_submitted += 1
            self.metrics.inc("prefetch_submitted")
        else:
            report.submitted += 1
            self.metrics.inc("tile_submitted")
        return task

    # -- results & introspection ------------------------------------------
    def tile_result(self, task: TileTask) -> np.ndarray:
        """The finished result for a task (cache first, then its future)."""
        value = self._store_peek(task.digest)
        if value is not None:
            return value
        if task.future is None:
            raise LookupError(f"tile {task.tile} has no pending result")
        return task.future.result()

    def _store_peek(self, digest: Hashable) -> Optional[np.ndarray]:
        # peek without perturbing hit accounting (test/bench introspection)
        return self.cache._store.get(digest)

    @property
    def outstanding(self) -> int:
        """In-flight tile count (0 after a drain = nothing leaked)."""
        return len(self._outstanding)

    def stats(self) -> dict:
        snap = self.metrics.snapshot()
        return {"service": snap, "tile_cache": self.cache.stats(),
                "outstanding": self.outstanding,
                "policy": self.policy,
                "prefetch_order": self.prefetch_order}
