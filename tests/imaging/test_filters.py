"""Tests for Gaussian blur, Sobel, and normalization."""

import numpy as np
import pytest

from repro.imaging import (gaussian_blur, gaussian_kernel1d, normalize01,
                           sobel_gradients, to_grayscale)
from repro.imaging.filters import KSIZE_FOR_RESOLUTION, sigma_from_ksize


class TestGaussianKernel:
    def test_normalized(self):
        for k in (3, 5, 7, 9, 11, 13):
            assert gaussian_kernel1d(k).sum() == pytest.approx(1.0)

    def test_symmetric(self):
        k = gaussian_kernel1d(7)
        np.testing.assert_allclose(k, k[::-1])

    def test_peak_at_center(self):
        k = gaussian_kernel1d(9)
        assert np.argmax(k) == 4

    def test_even_ksize_rejected(self):
        with pytest.raises(ValueError):
            gaussian_kernel1d(4)

    def test_opencv_sigma_rule(self):
        # OpenCV: sigma = 0.3*((k-1)*0.5 - 1) + 0.8; for k=3 → 0.8
        assert sigma_from_ksize(3) == pytest.approx(0.8)
        assert sigma_from_ksize(5) == pytest.approx(1.1)

    def test_paper_resolution_table_complete(self):
        # §III-A: kernel [3,3,5,7,9,11,13] for [512 ... 65536]
        assert list(KSIZE_FOR_RESOLUTION.values()) == [3, 3, 5, 7, 9, 11, 13]


class TestGaussianBlur:
    def test_preserves_mean(self):
        rng = np.random.default_rng(0)
        img = rng.random((32, 32))
        out = gaussian_blur(img, 5)
        assert out.mean() == pytest.approx(img.mean(), rel=1e-2)

    def test_reduces_variance(self):
        rng = np.random.default_rng(0)
        img = rng.random((64, 64))
        assert gaussian_blur(img, 7).var() < img.var()

    def test_constant_image_unchanged(self):
        img = np.full((16, 16), 3.5)
        np.testing.assert_allclose(gaussian_blur(img, 5), img)

    def test_multichannel(self):
        img = np.random.default_rng(0).random((16, 16, 3))
        assert gaussian_blur(img, 3).shape == (16, 16, 3)

    def test_larger_kernel_smooths_more(self):
        rng = np.random.default_rng(1)
        img = rng.random((64, 64))
        assert gaussian_blur(img, 13).var() < gaussian_blur(img, 3).var()

    def test_rejects_4d(self):
        with pytest.raises(ValueError):
            gaussian_blur(np.zeros((2, 2, 2, 2)), 3)


class TestSobel:
    def test_vertical_edge_gives_horizontal_gradient(self):
        img = np.zeros((16, 16))
        img[:, 8:] = 1.0
        gx, gy, mag, _ = sobel_gradients(img)
        # Response concentrated at the column boundary, along gx.
        assert np.abs(gx[8, 7:9]).max() > 0
        assert np.abs(gy[4:12, :]).max() == pytest.approx(0.0, abs=1e-12)

    def test_flat_image_no_response(self):
        _, _, mag, _ = sobel_gradients(np.ones((8, 8)))
        np.testing.assert_allclose(mag, 0.0, atol=1e-12)

    def test_rejects_color(self):
        with pytest.raises(ValueError):
            sobel_gradients(np.zeros((4, 4, 3)))


class TestNormalize:
    def test_range(self):
        x = np.array([[-5.0, 10.0], [0.0, 2.5]])
        n = normalize01(x)
        assert n.min() == 0.0 and n.max() == 1.0

    def test_constant_maps_to_zero(self):
        np.testing.assert_array_equal(normalize01(np.full((3, 3), 7.0)), 0.0)

    def test_grayscale_luma(self):
        rgb = np.zeros((2, 2, 3))
        rgb[..., 1] = 1.0  # pure green
        np.testing.assert_allclose(to_grayscale(rgb), 0.587)

    def test_grayscale_passthrough(self):
        x = np.random.default_rng(0).random((4, 4))
        np.testing.assert_array_equal(to_grayscale(x), x)

    def test_grayscale_bad_shape(self):
        with pytest.raises(ValueError):
            to_grayscale(np.zeros((4, 4, 5)))
