"""Multi-level tile pyramids — the map-style address space over a scene.

Interactive viewers do not read scenes the way batch jobs do: they ask for
a small window at whatever *resolution the screen needs*, then pan and
zoom. :class:`TilePyramid` turns any 2-D
:class:`~repro.stream.source.TiledSource` into that address space: a
power-of-two downsample ladder where level 0 is the native scene and each
level above halves both dimensions, cut into fixed-size tiles
(:class:`PyramidTile`). A viewer showing a 512² window of a 16K² slide at
level 3 touches four 256² tiles instead of a 4096² region.

Construction is recursive and lazy: a level-``k`` tile is the 2x2
mean-pool of its four level-``k-1`` children, synthesized on first touch
and held in a small LRU — no level is ever materialized whole, which keeps
the pyramid usable over virtual slides that never exist in memory.

Every tile carries a **content digest** (the same
:func:`~repro.pipeline.engine.content_key` hash every serving cache layer
keys on), memoized per tile address. Identical pixels — across levels,
across viewers, across sessions — therefore map to one digest, which is
what lets the tile service's shared cache, the engine's result cache and
the fleet router's affinity sharding all dedupe the same way.
"""

from __future__ import annotations

from collections import OrderedDict
from dataclasses import dataclass
from typing import Dict, Hashable, List, Optional, Tuple

import numpy as np

from ..pipeline.engine import content_key

__all__ = ["PyramidTile", "TilePyramid"]


@dataclass(frozen=True, order=True)
class PyramidTile:
    """One tile address: ``(level, ty, tx)`` on the level's tile grid."""

    level: int
    ty: int
    tx: int

    @property
    def name(self) -> str:
        return f"L{self.level}_y{self.ty:04d}_x{self.tx:04d}"


class TilePyramid:
    """Power-of-two downsample pyramid over a 2-D tiled source.

    Parameters
    ----------
    source:
        Any ``kind == "image"`` :class:`~repro.stream.source.TiledSource`;
        both spatial dims must be multiples of ``tile``.
    tile:
        Tile side at every level (power of two). Level ``k`` has a
        ``(H >> k) / tile`` x ``(W >> k) / tile`` grid.
    max_level:
        Cap on the ladder; default: every level down to a single-tile
        thumbnail (or until a dimension stops dividing evenly).
    cache_tiles:
        LRU capacity over synthesized tile pixels. Digests are memoized
        separately (a few bytes per tile), so repeat *digest* lookups
        never resynthesize evicted pixels.
    """

    def __init__(self, source, tile: int = 256, *,
                 max_level: Optional[int] = None, cache_tiles: int = 128):
        if getattr(source, "kind", None) != "image":
            raise ValueError("TilePyramid needs a 2-D image source")
        if tile < 32 or tile & (tile - 1):
            raise ValueError(f"tile must be a power of two >= 32, got {tile}")
        if cache_tiles < 4:
            # a level-k tile touches its 4 children during synthesis;
            # anything smaller thrashes pathologically
            raise ValueError("cache_tiles must be >= 4")
        h, w = int(source.shape[0]), int(source.shape[1])
        if h < tile or w < tile or h % tile or w % tile:
            raise ValueError(f"tile {tile} must divide scene dims {(h, w)}")
        self.source = source
        self.tile = tile
        self.base_shape = (h, w)
        levels = 0
        while ((h >> (levels + 1)) << (levels + 1) == h
               and (w >> (levels + 1)) << (levels + 1) == w
               and (h >> (levels + 1)) >= tile
               and (w >> (levels + 1)) >= tile
               and (h >> (levels + 1)) % tile == 0
               and (w >> (levels + 1)) % tile == 0):
            levels += 1
            if max_level is not None and levels >= max_level:
                break
        self.n_levels = levels + 1
        self._pixels: "OrderedDict[PyramidTile, np.ndarray]" = OrderedDict()
        self._digests: Dict[PyramidTile, Hashable] = {}
        self._cache_tiles = cache_tiles
        self.stats = {"synthesized": 0, "downsampled": 0, "cache_hits": 0}

    # -- geometry ----------------------------------------------------------
    def _check_level(self, level: int) -> None:
        if not 0 <= level < self.n_levels:
            raise ValueError(f"level {level} outside [0, {self.n_levels})")

    def level_shape(self, level: int) -> Tuple[int, int]:
        """Pixel dimensions ``(h, w)`` of one full level."""
        self._check_level(level)
        return (self.base_shape[0] >> level, self.base_shape[1] >> level)

    def grid(self, level: int) -> Tuple[int, int]:
        """Tile-grid dimensions ``(ny, nx)`` of one level."""
        h, w = self.level_shape(level)
        return (h // self.tile, w // self.tile)

    def parent(self, t: PyramidTile) -> Optional[PyramidTile]:
        """The tile one level up covering ``t`` (None at the top)."""
        if t.level + 1 >= self.n_levels:
            return None
        return PyramidTile(t.level + 1, t.ty // 2, t.tx // 2)

    def children(self, t: PyramidTile) -> List[PyramidTile]:
        """The four tiles one level down that ``t`` mean-pools (or [])."""
        if t.level == 0:
            return []
        return [PyramidTile(t.level - 1, 2 * t.ty + dy, 2 * t.tx + dx)
                for dy in (0, 1) for dx in (0, 1)]

    def viewport_tiles(self, level: int, origin: Tuple[int, int],
                       size: Tuple[int, int]) -> List[PyramidTile]:
        """Tiles covering a ``(h, w)`` window at ``origin`` (level pixels).

        The window is clamped to the level bounds — a viewer half off the
        slide edge still gets the visible tiles — and returned in row-major
        order (the service applies its own priority ordering).
        """
        self._check_level(level)
        lh, lw = self.level_shape(level)
        y0, x0 = int(origin[0]), int(origin[1])
        h, w = int(size[0]), int(size[1])
        if h < 1 or w < 1:
            raise ValueError(f"viewport size must be positive, got {size}")
        ya, yb = max(y0, 0), min(y0 + h, lh)
        xa, xb = max(x0, 0), min(x0 + w, lw)
        if ya >= yb or xa >= xb:
            return []
        t = self.tile
        return [PyramidTile(level, ty, tx)
                for ty in range(ya // t, (yb - 1) // t + 1)
                for tx in range(xa // t, (xb - 1) // t + 1)]

    # -- pixels ------------------------------------------------------------
    def _cache_put(self, key: PyramidTile, pixels: np.ndarray) -> np.ndarray:
        pixels.setflags(write=False)       # shared by every later read
        self._pixels[key] = pixels
        while len(self._pixels) > self._cache_tiles:
            self._pixels.popitem(last=False)
        return pixels

    def tile_pixels(self, t: PyramidTile) -> np.ndarray:
        """Materialize one tile: source read at level 0, recursive 2x2
        mean-pool of its children above (deterministic pure NumPy)."""
        self._check_level(t.level)
        ny, nx = self.grid(t.level)
        if not (0 <= t.ty < ny and 0 <= t.tx < nx):
            raise ValueError(f"tile {t} outside grid {(ny, nx)}")
        hit = self._pixels.get(t)
        if hit is not None:
            self._pixels.move_to_end(t)
            self.stats["cache_hits"] += 1
            return hit
        s = self.tile
        if t.level == 0:
            pixels = np.asarray(self.source.read_region(
                (t.ty * s, t.tx * s), (s, s)), dtype=np.float64)
            self.stats["synthesized"] += 1
            return self._cache_put(t, pixels.copy())
        kids = [self.tile_pixels(c) for c in self.children(t)]
        block_shape = ((2 * s, 2 * s) if kids[0].ndim == 2
                       else (2 * s, 2 * s, kids[0].shape[2]))
        block = np.empty(block_shape)
        block[:s, :s] = kids[0]
        block[:s, s:] = kids[1]
        block[s:, :s] = kids[2]
        block[s:, s:] = kids[3]
        if block.ndim == 2:
            pixels = block.reshape(s, 2, s, 2).mean(axis=(1, 3))
        else:
            pixels = block.reshape(s, 2, s, 2, -1).mean(axis=(1, 3))
        self.stats["downsampled"] += 1
        return self._cache_put(t, pixels)

    def digest(self, t: PyramidTile) -> Hashable:
        """Content digest of the tile's pixels (memoized per address).

        The same :func:`~repro.pipeline.engine.content_key` value the
        engine's result cache and the fleet router's rendezvous affinity
        compute for these pixels — one digest, every cache layer.
        """
        d = self._digests.get(t)
        if d is None:
            d = content_key(self.tile_pixels(t))
            self._digests[t] = d
        return d

    def describe(self) -> dict:
        """JSON-able summary for benchmark artifacts and logs."""
        return {
            "base_shape": list(self.base_shape),
            "tile": self.tile,
            "n_levels": self.n_levels,
            "grids": {level: list(self.grid(level))
                      for level in range(self.n_levels)},
            "total_tiles": sum(int(np.prod(self.grid(level)))
                               for level in range(self.n_levels)),
            "stats": dict(self.stats),
        }
