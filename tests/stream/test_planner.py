"""Tests for the streaming planner: quadtree alignment, Morton scheduling,
exact partitioning, Z-slabs, and the working-set memory model."""

import json

import numpy as np
import pytest

from repro.quadtree.morton import morton_encode
from repro.stream import plan_scene, plan_volume


class TestScenePlanning:
    def test_partition_is_exact(self):
        plan = plan_scene((256, 128, 3), tile=64)
        assert len(plan.tiles) == (256 // 64) * (128 // 64)
        covered = np.zeros((256, 128), dtype=int)
        for t in plan.tiles:
            covered[t.slices()] += 1
        np.testing.assert_array_equal(covered, 1)

    def test_quadtree_alignment(self):
        plan = plan_scene((256, 256), tile=64)
        for t in plan.tiles:
            assert t.origin[0] % 64 == 0 and t.origin[1] % 64 == 0
            assert t.size == (64, 64)

    def test_morton_schedule(self):
        plan = plan_scene((256, 256), tile=64, order="morton")
        codes = [int(morton_encode(t.origin[0] // 64, t.origin[1] // 64)[0])
                 for t in plan.tiles]
        assert codes == sorted(codes)
        assert plan.tiles[0].origin == (0, 0)

    def test_rowmajor_schedule(self):
        plan = plan_scene((128, 128), tile=64, order="rowmajor")
        assert [t.origin for t in plan.tiles] == \
            [(0, 0), (0, 64), (64, 0), (64, 64)]

    def test_indices_follow_schedule(self):
        plan = plan_scene((256, 256), tile=32)
        assert [t.index for t in plan.tiles] == list(range(len(plan.tiles)))

    def test_names_are_origin_derived(self):
        morton = plan_scene((128, 128), tile=64, order="morton")
        row = plan_scene((128, 128), tile=64, order="rowmajor")
        assert {t.name for t in morton.tiles} == {t.name for t in row.tiles}

    def test_working_set_scales_with_tile_area(self):
        small = plan_scene((1024, 1024, 3), tile=128, max_len=512)
        big = plan_scene((1024, 1024, 3), tile=256, max_len=512)
        assert small.working_set_bytes() > 0
        ratio = (big.working_set["input"] / small.working_set["input"])
        assert ratio == 4.0
        assert big.scene_bytes == small.scene_bytes == 1024 * 1024 * 3 * 8

    def test_working_set_is_a_tiny_fraction_of_scene(self):
        plan = plan_scene((16384, 16384, 3), tile=1024, max_len=1024)
        assert plan.working_set_bytes() < 0.05 * plan.scene_bytes

    def test_describe_is_json_serializable(self):
        plan = plan_scene((128, 128), tile=32, max_len=256)
        text = json.dumps(plan.describe())
        assert "working_set_bytes" in text

    def test_validation(self):
        with pytest.raises(ValueError):
            plan_scene((128, 128), tile=48)      # not a power of two
        with pytest.raises(ValueError):
            plan_scene((100, 128), tile=32)      # tile does not divide H
        with pytest.raises(ValueError):
            plan_scene((128, 128), tile=32, order="spiral")
        with pytest.raises(ValueError):
            plan_scene((128,), tile=32)          # 1-D shape


class TestVolumePlanning:
    def test_ragged_last_slab(self):
        plan = plan_volume((10, 32, 32), slab=4)
        assert [(t.origin[0], t.size[0]) for t in plan.tiles] == \
            [(0, 4), (4, 4), (8, 2)]
        assert plan.kind == "volume"

    def test_slab_partition_covers_every_slice(self):
        plan = plan_volume((7, 16, 16), slab=3)
        covered = np.zeros(7, dtype=int)
        for t in plan.tiles:
            covered[t.slices()[0]] += 1
        np.testing.assert_array_equal(covered, 1)

    def test_working_set_estimate(self):
        plan = plan_volume((64, 256, 256), slab=8, max_len=256)
        assert 0 < plan.working_set_bytes() < plan.scene_bytes

    def test_validation(self):
        with pytest.raises(ValueError):
            plan_volume((10, 32, 32), slab=0)
        with pytest.raises(ValueError):
            plan_volume((10, 32, 32), slab=11)   # deeper than the volume
        with pytest.raises(ValueError):
            plan_volume((10, 32), slab=2)        # not a volume shape


class TestHilbertSchedule:
    """The ``order="hilbert"`` wiring (ISSUE 8 satellite)."""

    def test_hilbert_schedule_is_deterministic(self):
        a = plan_scene((256, 256), tile=64, order="hilbert")
        b = plan_scene((256, 256), tile=64, order="hilbert")
        assert [t.origin for t in a.tiles] == [t.origin for t in b.tiles]
        assert a.order == "hilbert"

    def test_same_tile_set_as_morton(self):
        h = plan_scene((256, 256), tile=64, order="hilbert")
        m = plan_scene((256, 256), tile=64, order="morton")
        assert sorted(t.origin for t in h.tiles) == \
            sorted(t.origin for t in m.tiles)
        assert {t.name for t in h.tiles} == {t.name for t in m.tiles}

    def test_hilbert_codes_are_sorted(self):
        from repro.quadtree import hilbert_encode
        plan = plan_scene((512, 512), tile=64, order="hilbert")
        codes = [int(hilbert_encode(t.origin[0] // 64, t.origin[1] // 64)[0])
                 for t in plan.tiles]
        assert codes == sorted(codes)

    def test_consecutive_tiles_are_grid_neighbours(self):
        # The property Morton lacks: every schedule step moves to an
        # adjacent macro-tile (manhattan distance exactly one tile).
        plan = plan_scene((512, 512), tile=64, order="hilbert")
        ys = np.array([t.origin[0] // 64 for t in plan.tiles])
        xs = np.array([t.origin[1] // 64 for t in plan.tiles])
        steps = np.abs(np.diff(ys)) + np.abs(np.diff(xs))
        assert (steps == 1).all()

    def test_streamed_output_is_order_independent(self):
        # Checkpoint artifacts are origin-named, so hilbert and morton
        # runs of the same scene produce identical sink contents.
        from repro.models import ViTSegmenter
        from repro.pipeline import PatchPipeline
        from repro.serve import Predictor
        from repro.stream import ArraySource, MemorySink, StreamingRunner

        rng = np.random.default_rng(0)
        scene = np.full((128, 128), 0.25)
        scene[:16, :16] = rng.random((16, 16))

        def run(order):
            model = ViTSegmenter(patch_size=4, channels=1, dim=16, depth=1,
                                 heads=2, max_len=256,
                                 rng=np.random.default_rng(1))
            pipe = PatchPipeline(patch_size=4, split_value=8.0, channels=1,
                                 cache_items=4)
            plan = plan_scene(scene.shape, tile=64, order=order)
            sink = MemorySink()
            StreamingRunner(Predictor(model, pipe, bucket=16)).run(
                ArraySource(scene), plan, sink)
            return {t.name: sink.read(t) for t in plan.tiles}

        h, m = run("hilbert"), run("morton")
        assert h.keys() == m.keys()
        for name in h:
            np.testing.assert_array_equal(h[name], m[name])


class TestHilbertSchedule:
    def test_hilbert_schedule_is_curve_ordered(self):
        from repro.quadtree.hilbert import hilbert_encode

        plan = plan_scene((256, 256), tile=64, order="hilbert")
        codes = [int(hilbert_encode(t.origin[0] // 64, t.origin[1] // 64)[0])
                 for t in plan.tiles]
        assert codes == sorted(codes)
        assert plan.tiles[0].origin == (0, 0)

    def test_hilbert_visits_same_tiles_as_morton(self):
        h = plan_scene((256, 128, 3), tile=64, order="hilbert")
        m = plan_scene((256, 128, 3), tile=64, order="morton")
        assert {t.origin for t in h.tiles} == {t.origin for t in m.tiles}
        assert {t.name for t in h.tiles} == {t.name for t in m.tiles}

    def test_hilbert_locality_no_worse_than_morton(self):
        # The reason hilbert exists as an option: successive scheduled
        # tiles are closer on average than under Morton's quadrant jumps.
        def mean_step(plan):
            ys = np.array([t.origin[0] for t in plan.tiles], dtype=float)
            xs = np.array([t.origin[1] for t in plan.tiles], dtype=float)
            return np.hypot(np.diff(ys), np.diff(xs)).mean()

        h = mean_step(plan_scene((512, 512), tile=64, order="hilbert"))
        m = mean_step(plan_scene((512, 512), tile=64, order="morton"))
        assert h < m
