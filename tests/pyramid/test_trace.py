"""Tests for viewer traces and the viewer DES driver, including the
kill-mid-pan cleanliness gate (failed=0, leaked=0)."""

import numpy as np
import pytest

from repro.models.vit import ViTSegmenter
from repro.pipeline import PatchPipeline
from repro.pyramid import (PyramidService, TilePyramid, ViewportEvent,
                           run_viewer_load, viewer_trace)
from repro.serve import (InferenceEngine, Predictor, ReplicaKill,
                         ServiceModel, SimClock, build_fleet)
from repro.stream.source import VirtualWSISource

RES = 1024
TILE = 32


def _pyramid():
    src = VirtualWSISource(RES, seed=7, tile=256, cache_tiles=8)
    return TilePyramid(src, tile=TILE, max_level=3)


def _model():
    return ViTSegmenter(patch_size=4, channels=1, dim=16, depth=1, heads=2,
                        max_len=256, rng=np.random.default_rng(1)).eval()


def _predictor(model):
    pipe = PatchPipeline(patch_size=4, split_value=8.0, channels=1,
                         cache_items=64)
    return Predictor(model, pipe, max_batch=1, bucket=16)


def _engine_service(**kw):
    clock = SimClock()
    engine = InferenceEngine(_predictor(_model()), clock=clock.now,
                             service_model=ServiceModel(), max_queue=64,
                             result_cache_items=64)
    svc = PyramidService(_pyramid(), engine, clock=clock.now, **kw)
    return svc, clock


def _fleet_service(replicas=2, **kw):
    clock = SimClock()
    model = _model()
    router = build_fleet(lambda rank: _predictor(model), replicas=replicas,
                         clock=clock.now, service_model=ServiceModel(),
                         max_queue=64, result_cache_items=64)
    svc = PyramidService(_pyramid(), router, clock=clock.now, **kw)
    return svc, clock


def _trace(**kw):
    args = dict(sessions=3, events_per_session=5, viewport=(64, 64),
                tile=TILE, seed=11)
    args.update(kw)
    return viewer_trace((RES, RES), 4, **args)


class TestViewerTrace:
    def test_deterministic(self):
        assert _trace() == _trace()
        assert _trace(seed=12) != _trace()

    def test_shape_and_bounds(self):
        events = _trace(sessions=4, events_per_session=6)
        assert len(events) == 24
        assert len({e.session for e in events}) == 4
        times = [e.time for e in events]
        assert times == sorted(times)
        for e in events:
            assert 0 <= e.level < 4
            lh, lw = RES >> e.level, RES >> e.level
            assert 0 <= e.origin[0] <= lh - e.size[0]
            assert 0 <= e.origin[1] <= lw - e.size[1]

    def test_sessions_overlap_on_hotspots(self):
        # The million-user shape: distinct sessions revisit shared regions.
        events = _trace(sessions=6, events_per_session=8, hotspots=2)
        first = {}
        for e in events:
            first.setdefault(e.session, (e.level, e.origin))
        starts = set(first.values())
        assert len(starts) < 6                  # some sessions collide

    def test_levels_move(self):
        events = _trace(sessions=6, events_per_session=10)
        assert len({e.level for e in events}) > 1

    def test_rejects_bad_args(self):
        with pytest.raises(ValueError):
            _trace(sessions=0)
        with pytest.raises(ValueError):
            _trace(start_level=7)
        with pytest.raises(ValueError):
            viewer_trace((RES, RES), 0)


class TestRunViewerLoad:
    def test_engine_run_clean_and_deterministic(self):
        def run():
            svc, clock = _engine_service(prefetch_tiles=2)
            return run_viewer_load(svc, _trace(), clock)

        one, two = run(), run()
        assert one["failed"] == 0 and one["leaked"] == 0
        assert one["outstanding"] == 0
        assert one["viewports"] == len(_trace())
        for key in ("viewports", "cache_hits", "joined", "submitted",
                    "cancelled_stale", "makespan"):
            assert one[key] == two[key]
        assert one["ttft"] == two["ttft"]

    def test_ttft_measured_per_viewport(self):
        svc, clock = _engine_service(prefetch_tiles=0)
        report = run_viewer_load(svc, _trace(), clock)
        ttft = report["ttft"]
        assert ttft["count"] + report["starved_viewports"] == \
            report["viewports"]
        assert ttft["count"] > 0
        assert 0.0 <= ttft["p50"] <= ttft["p95"] <= ttft["p99"]

    def test_empty_trace_rejected(self):
        svc, clock = _engine_service()
        with pytest.raises(ValueError):
            run_viewer_load(svc, [], clock)

    def test_events_need_fleet(self):
        svc, clock = _engine_service()
        with pytest.raises(ValueError):
            run_viewer_load(svc, _trace(), clock,
                            events=[ReplicaKill(0.1, 0)])

    def test_fleet_run_clean(self):
        svc, clock = _fleet_service(prefetch_tiles=2)
        report = run_viewer_load(svc, _trace(), clock)
        assert report["failed"] == 0 and report["leaked"] == 0
        assert report["outstanding"] == 0

    def test_kill_mid_pan_completes_clean(self):
        # The ISSUE acceptance gate: a replica dies mid-trace while
        # sessions pan (with stale cancellations in flight); the run must
        # finish with zero failed futures and zero leaked tiles.
        trace = _trace(sessions=4, events_per_session=6)
        mid = trace[len(trace) // 2].time
        svc, clock = _fleet_service(replicas=2, prefetch_tiles=2)
        report = run_viewer_load(svc, trace, clock,
                                 events=[ReplicaKill(mid, 0)])
        assert report["backend"]["router"]["kills"] == 1
        assert report["failed"] == 0
        assert report["leaked"] == 0
        assert report["outstanding"] == 0
        assert report["cancelled_stale"] >= 0
        assert report["ttft"]["count"] > 0

    def test_shared_cache_beats_single_session(self):
        # Same event budget: 4 overlapping sessions vs 1 session. Sharing
        # shows up two ways — digest-cache hits AND joins on tiles another
        # session already has in flight — so the gate is on their sum per
        # visible-tile lookup.
        def shared_rate(sessions):
            svc, clock = _engine_service(prefetch_tiles=0)
            trace = _trace(sessions=sessions, events_per_session=24 // sessions,
                           hotspots=1)
            report = run_viewer_load(svc, trace, clock)
            return ((report["cache_hits"] + report["joined"])
                    / report["tiles_visible"])

        assert shared_rate(4) >= shared_rate(1)


class TestViewportEvent:
    def test_frozen(self):
        ev = ViewportEvent(0.0, "s", 0, (0, 0), (64, 64))
        with pytest.raises(Exception):
            ev.time = 1.0
