"""``repro.experiments`` — one runner per table and figure of the paper.

| Runner | Paper artifact |
|---|---|
| :func:`run_fig1` | Fig. 1 sequence-reduction overview |
| :func:`run_fig2` | Fig. 2 qualitative masks |
| :func:`run_fig3` | Fig. 3 split-value sweep distributions |
| :func:`run_fig4_models` / :func:`run_fig4_patch_sweep` | Fig. 4 loss curves |
| :func:`run_table2_measured` / :func:`run_table2_projection` | Table II speedups |
| :func:`run_table3` | Table III dice improvements |
| :func:`run_table4` | Table IV BTCV multi-organ |
| :func:`run_table5` | Table V classification |
| :func:`run_overhead` | §IV-G.3 preprocessing overhead |
"""

from .common import ExperimentScale, format_table, geomean
from .fig1 import Fig1Result, run_fig1
from .fig2 import Fig2Result, ascii_mask, run_fig2, write_pgm
from .fig3 import Fig3Result, run_fig3
from .fig4 import Fig4Result, run_fig4_models, run_fig4_patch_sweep
from .overhead import OverheadResult, run_overhead
from .table2 import (PAPER_TABLE2, Table2Result, run_table2_measured,
                     run_table2_projection)
from .table3 import Table3Result, run_table3
from .table4 import Table4Result, run_table4
from .table5 import Table5Result, run_table5

__all__ = [
    "ExperimentScale", "format_table", "geomean",
    "run_fig1", "Fig1Result", "run_fig2", "Fig2Result", "ascii_mask",
    "write_pgm", "run_fig3", "Fig3Result", "run_fig4_models",
    "run_fig4_patch_sweep", "Fig4Result", "run_overhead", "OverheadResult",
    "run_table2_measured", "run_table2_projection", "Table2Result",
    "PAPER_TABLE2", "run_table3", "Table3Result", "run_table4", "Table4Result",
    "run_table5", "Table5Result",
]
