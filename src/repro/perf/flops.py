"""Analytic FLOP and memory models for transformer training.

These formulas drive the cost model that projects measured laptop-scale runs
to the paper's Frontier scales (Table II/III sec/image columns). They are the
standard dense-transformer counts; the important structural fact is the
``4 L^2 D`` attention term — quadratic in sequence length — which is exactly
what APF's sequence reduction attacks.
"""

from __future__ import annotations

from dataclasses import dataclass

__all__ = ["TransformerConfig", "encoder_flops", "attention_flops",
           "training_flops", "inference_flops", "activation_bytes",
           "attention_memory_bytes"]


@dataclass(frozen=True)
class TransformerConfig:
    """Shape of a ViT-style encoder."""

    seq_len: int
    dim: int
    depth: int
    heads: int = 8
    mlp_ratio: float = 4.0

    def __post_init__(self) -> None:
        if min(self.seq_len, self.dim, self.depth, self.heads) < 1:
            raise ValueError("all transformer dimensions must be >= 1")


def attention_flops(seq_len: int, dim: int) -> float:
    """One attention block forward: QKV+output projections and the two
    ``L x L`` matmuls: ``8 L D^2 + 4 L^2 D``."""
    return 8.0 * seq_len * dim ** 2 + 4.0 * seq_len ** 2 * dim


def encoder_flops(cfg: TransformerConfig) -> float:
    """Forward FLOPs of the full encoder (attention + MLP per layer)."""
    mlp = 4.0 * cfg.mlp_ratio * cfg.seq_len * cfg.dim ** 2
    return cfg.depth * (attention_flops(cfg.seq_len, cfg.dim) + mlp)


def training_flops(cfg: TransformerConfig) -> float:
    """Training step ≈ 3x forward (forward + 2x backward)."""
    return 3.0 * encoder_flops(cfg)


def inference_flops(cfg: TransformerConfig) -> float:
    """Forward-only FLOPs for one sequence — the unit the sparsity plan
    chooser compares: dense vs. short-circuit vs. merged plans differ only
    in the effective ``seq_len`` this is evaluated at."""
    return encoder_flops(cfg)


def attention_memory_bytes(cfg: TransformerConfig, bytes_per_el: int = 4) -> float:
    """Attention matrices that must be materialized for the backward pass:
    ``depth * heads * L^2`` elements — the paper's memory wall."""
    return float(cfg.depth) * cfg.heads * cfg.seq_len ** 2 * bytes_per_el


def activation_bytes(cfg: TransformerConfig, bytes_per_el: int = 4) -> float:
    """Per-sample activation footprint: token activations + attention maps."""
    token_acts = cfg.depth * cfg.seq_len * cfg.dim * (4 + 2 * cfg.mlp_ratio)
    return token_acts * bytes_per_el + attention_memory_bytes(cfg, bytes_per_el)
