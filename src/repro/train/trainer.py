"""Epoch-driven trainer implementing Algorithm 1 lines 8-15.

Works with any task adapter from :mod:`repro.train.tasks`; records the
:class:`~repro.train.history.TrainingHistory` the Fig. 4 and Table II
analyses consume (loss curves, epoch wall time, convergence epoch).
"""

from __future__ import annotations

import time
from typing import Callable, Sequence

import numpy as np

from .. import nn
from .history import TrainingHistory

__all__ = ["Trainer"]


class Trainer:
    """Minimal but complete training loop.

    Parameters
    ----------
    task:
        Adapter exposing ``batch_loss`` / ``val_loss`` / ``evaluate`` /
        ``parameters``.
    optimizer:
        Any :mod:`repro.nn.optim` optimizer over ``task.parameters()``.
    scheduler:
        Optional LR scheduler stepped once per epoch (paper: MultiStepLR).
    batch_size:
        Samples per gradient step (paper uses 16 at low resolutions).
    grad_clip:
        Global-norm clip; 0 disables.
    """

    def __init__(self, task, optimizer, scheduler=None, batch_size: int = 4,
                 grad_clip: float = 5.0, seed: int = 0,
                 time_fn: Callable[[], float] = time.perf_counter):
        if batch_size < 1:
            raise ValueError("batch_size must be >= 1")
        self.task = task
        self.optimizer = optimizer
        self.scheduler = scheduler
        self.batch_size = batch_size
        self.grad_clip = grad_clip
        self.rng = np.random.default_rng(seed)
        self.time_fn = time_fn

    def train_epoch(self, samples: Sequence) -> float:
        """One pass over ``samples``; returns mean batch loss."""
        order = self.rng.permutation(len(samples))
        losses = []
        for start in range(0, len(samples), self.batch_size):
            batch = [samples[i] for i in order[start:start + self.batch_size]]
            self.optimizer.zero_grad()
            loss = self.task.batch_loss(batch)
            value = float(loss.data)
            if not np.isfinite(value):
                raise FloatingPointError(
                    f"non-finite training loss ({value}) at batch starting "
                    f"index {start}; lower the learning rate or enable "
                    f"gradient clipping")
            loss.backward()
            if self.grad_clip:
                nn.clip_grad_norm(self.optimizer.params, self.grad_clip)
            self.optimizer.step()
            losses.append(value)
        return float(np.mean(losses))

    def train_epoch_loader(self, loader) -> float:
        """One pass over a loader that yields *pre-collated* batches.

        ``loader`` is any iterable of batch objects the task's ``batch_loss``
        accepts — typically a :class:`~repro.data.dataset.DataLoader` with a
        ``pipeline=`` attached (yielding
        :class:`~repro.pipeline.collate.CollatedBatch`), which moves all APF
        preprocessing out of the gradient loop. Shuffling is the loader's
        job; the optimizer/clip/NaN-guard machinery matches
        :meth:`train_epoch`.
        """
        losses = []
        for i, batch in enumerate(loader):
            self.optimizer.zero_grad()
            loss = self.task.batch_loss(batch)
            value = float(loss.data)
            if not np.isfinite(value):
                raise FloatingPointError(
                    f"non-finite training loss ({value}) at batch {i}; lower "
                    f"the learning rate or enable gradient clipping")
            loss.backward()
            if self.grad_clip:
                nn.clip_grad_norm(self.optimizer.params, self.grad_clip)
            self.optimizer.step()
            losses.append(value)
        if not losses:
            raise ValueError("loader yielded no batches")
        return float(np.mean(losses))

    def fit_loader(self, train_loader, val_samples: Sequence, epochs: int,
                   verbose: bool = False) -> TrainingHistory:
        """Like :meth:`fit`, but training batches come from ``train_loader``
        (fresh iteration per epoch, so pipeline caches amortize across
        epochs while drop augmentation stays per-epoch)."""
        if epochs < 1:
            raise ValueError("epochs must be >= 1")
        if not len(val_samples):
            raise ValueError("validation set must be non-empty")
        history = TrainingHistory()
        for _ in range(epochs):
            t0 = self.time_fn()
            train_loss = self.train_epoch_loader(train_loader)
            val_loss = self.task.val_loss(list(val_samples))
            metric = self.task.evaluate(list(val_samples))
            seconds = self.time_fn() - t0
            if self.scheduler is not None:
                self.scheduler.step()
            history.record(train_loss, val_loss, metric, seconds,
                           self.optimizer.lr)
            if verbose:  # pragma: no cover - logging only
                print(f"epoch {len(history.train_loss):4d}  "
                      f"train {train_loss:.4f}  val {val_loss:.4f}  "
                      f"metric {metric:.2f}  {seconds:.2f}s")
        return history

    def fit(self, train_samples: Sequence, val_samples: Sequence,
            epochs: int, verbose: bool = False) -> TrainingHistory:
        """Train for ``epochs``; evaluate on ``val_samples`` each epoch."""
        if epochs < 1:
            raise ValueError("epochs must be >= 1")
        if not len(train_samples) or not len(val_samples):
            raise ValueError("train and validation sets must be non-empty")
        history = TrainingHistory()
        for epoch in range(epochs):
            t0 = self.time_fn()
            train_loss = self.train_epoch(train_samples)
            val_loss = self.task.val_loss(list(val_samples))
            metric = self.task.evaluate(list(val_samples))
            seconds = self.time_fn() - t0
            if self.scheduler is not None:
                self.scheduler.step()
            history.record(train_loss, val_loss, metric, seconds,
                           self.optimizer.lr)
            if verbose:  # pragma: no cover - logging only
                print(f"epoch {epoch + 1:4d}  train {train_loss:.4f}  "
                      f"val {val_loss:.4f}  metric {metric:.2f}  "
                      f"{seconds:.2f}s")
        return history

    def seconds_per_image(self, samples: Sequence, repeats: int = 1) -> float:
        """Measured end-to-end training seconds per image (Table II/III metric):
        forward + backward + optimizer step, averaged over ``repeats`` passes."""
        t0 = self.time_fn()
        for _ in range(repeats):
            self.train_epoch(samples)
        dt = self.time_fn() - t0
        return dt / (repeats * len(samples))
