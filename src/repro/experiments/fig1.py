"""Figure 1: the APF overview numbers.

The paper's flagship example: a 512x512 PAIP image patched at 4x4 yields
4,096 uniform patches but only ~424 adaptive patches (~9.6x sequence
reduction, ~100x attention compute/memory reduction). This runner reproduces
the pipeline end-to-end on synthetic PAIP at any resolution and reports the
same reduction factors.
"""

from __future__ import annotations

import time
from dataclasses import dataclass
from typing import List

import numpy as np

from ..data import generate_wsi
from ..patching import AdaptivePatcher, UniformPatcher
from .common import format_table

__all__ = ["Fig1Result", "run_fig1"]


@dataclass
class Fig1Result:
    resolution: int
    patch_size: int
    uniform_patches: int
    adaptive_patches_mean: float
    sequence_reduction: float       #: paper: ~9.6x at 512/P4
    attention_reduction: float      #: quadratic → paper: ~100x
    preprocess_seconds_mean: float

    def rows(self) -> str:
        return format_table(
            ["quantity", "paper (512^2, P=4)", "measured"],
            [
                ["uniform patches", "4096", self.uniform_patches],
                ["adaptive patches", "424", f"{self.adaptive_patches_mean:.0f}"],
                ["sequence reduction", "9.6x", f"{self.sequence_reduction:.1f}x"],
                ["attention compute/memory reduction", "~100x",
                 f"{self.attention_reduction:.0f}x"],
                ["preprocess seconds/image", "(negligible)",
                 f"{self.preprocess_seconds_mean:.4f}"],
            ])


def run_fig1(resolution: int = 128, patch_size: int = 4, n_images: int = 5,
             split_value: float = 8.0, seed: int = 0) -> Fig1Result:
    """Measure the Fig. 1 reduction on synthetic PAIP images."""
    uniform = UniformPatcher(patch_size)
    adaptive = AdaptivePatcher(patch_size=patch_size, split_value=split_value,
                               seed=seed)
    lengths: List[int] = []
    times: List[float] = []
    n_uniform = None
    for i in range(n_images):
        img = generate_wsi(resolution, seed=seed + i).image
        n_uniform = len(uniform(img))
        t0 = time.perf_counter()
        seq = adaptive(img)
        times.append(time.perf_counter() - t0)
        lengths.append(len(seq))
    mean_len = float(np.mean(lengths))
    reduction = n_uniform / mean_len
    return Fig1Result(
        resolution=resolution,
        patch_size=patch_size,
        uniform_patches=n_uniform,
        adaptive_patches_mean=mean_len,
        sequence_reduction=reduction,
        attention_reduction=reduction ** 2,
        preprocess_seconds_mean=float(np.mean(times)),
    )
