"""Ablation benches for the design choices DESIGN.md §5 calls out:

* Morton vs row-major token order
* Canny vs local-variance split criterion
* 2:1 balance constraint on/off
* coordinate positional embedding on/off
* sequence parallelism (Ulysses) vs APF — work reduction comparison
"""

import numpy as np

from repro.data import generate_wsi
from repro.patching import AdaptivePatcher


class TestOrderAblation:
    def test_morton_vs_rowmajor_locality(self, once):
        """Morton order must keep geometric neighbours closer in sequence —
        the property motivating step 5 of the pipeline."""
        def measure():
            img = generate_wsi(128, seed=0).image
            out = {}
            for order in ("morton", "rowmajor"):
                seq = AdaptivePatcher(patch_size=4, split_value=4.0,
                                      order=order)(img)
                cy = seq.ys + seq.sizes / 2
                cx = seq.xs + seq.sizes / 2
                d = np.hypot(np.diff(cy), np.diff(cx))
                out[order] = float(d.mean())
            return out

        dists = once(measure)
        print(f"\nmean successive-token distance: "
              f"{ {k: round(v, 2) for k, v in dists.items()} }")
        assert dists["morton"] <= dists["rowmajor"]


class TestHilbertAblation:
    def test_hilbert_vs_morton_locality(self, once):
        """Extension ablation: the Hilbert curve (AMR's usual choice) should
        tighten locality beyond the paper's Morton order."""
        def measure():
            img = generate_wsi(128, seed=0).image
            out = {}
            for order in ("hilbert", "morton", "rowmajor"):
                seq = AdaptivePatcher(patch_size=4, split_value=4.0,
                                      order=order)(img)
                cy = seq.ys + seq.sizes / 2
                cx = seq.xs + seq.sizes / 2
                out[order] = float(np.hypot(np.diff(cy), np.diff(cx)).mean())
            return out

        dists = once(measure)
        print(f"\nmean successive-token distance: "
              f"{ {k: round(v, 2) for k, v in dists.items()} }")
        assert dists["hilbert"] <= dists["morton"] <= dists["rowmajor"]


class TestDropStrategyAblation:
    def test_coarsest_first_preserves_detail_tokens(self, once):
        """Extension: dropping the coarsest leaves first keeps every finest
        (detail-bearing) token that random dropping would sacrifice."""
        def measure():
            img = generate_wsi(128, seed=0).image
            nat = AdaptivePatcher(patch_size=2, split_value=2.0).extract_natural(img)
            target = len(nat) // 2
            out = {}
            for strat in ("random", "coarsest-first"):
                seq = AdaptivePatcher(patch_size=2, split_value=2.0,
                                      target_length=target,
                                      drop_strategy=strat)(img)
                fine = int((seq.sizes == nat.sizes.min()).sum())
                out[strat] = (fine, float(seq.coverage_fraction()))
            return out, int((nat.sizes == nat.sizes.min()).sum())

        (out, total_fine) = once(measure)
        print(f"\nfinest tokens retained (of {total_fine}): "
              f"random={out['random'][0]}, "
              f"coarsest-first={out['coarsest-first'][0]}")
        assert out["coarsest-first"][0] >= out["random"][0]


class TestCriterionAblation:
    def test_canny_vs_variance_compression(self, once):
        """Both criteria compress; Canny concentrates refinement on
        boundaries (the paper's choice)."""
        def measure():
            img = generate_wsi(128, seed=0).image
            out = {}
            for crit in ("canny", "variance"):
                seq = AdaptivePatcher(patch_size=4, split_value=4.0,
                                      criterion=crit)(img)
                out[crit] = len(seq)
            return out

        lens = once(measure)
        print(f"\nsequence length by criterion: {lens}")
        uniform = (128 // 4) ** 2
        assert lens["canny"] < uniform
        assert lens["variance"] < uniform


class TestBalanceAblation:
    def test_balance_cost_is_bounded(self, once):
        """2:1 balancing adds leaves; the overhead must stay a small factor."""
        def measure():
            img = generate_wsi(128, seed=0).image
            plain = AdaptivePatcher(patch_size=4, split_value=4.0)(img)
            bal = AdaptivePatcher(patch_size=4, split_value=4.0,
                                  balance=True)(img)
            return len(plain), len(bal)

        n_plain, n_bal = once(measure)
        print(f"\nleaves plain={n_plain} balanced={n_bal}")
        assert n_bal >= n_plain
        assert n_bal <= n_plain * 3.0


class TestCoordEmbeddingAblation:
    def test_coords_embedding_helps_adaptive_layout(self, once):
        """With APF the per-index positional table is inconsistent across
        images; the geometry embedding should not hurt, and usually helps."""
        from repro.experiments.common import (ExperimentScale, make_trainer,
                                              paip_splits)
        from repro.models import ViTSegmenter
        from repro.train import TokenSegmentationTask

        def measure():
            scale = ExperimentScale(resolution=64, n_samples=8, epochs=6,
                                    dim=24, depth=2)
            train, val, _ = paip_splits(scale)
            out = {}
            for use_coords in (True, False):
                model = ViTSegmenter(patch_size=4, channels=1, dim=scale.dim,
                                     depth=scale.depth, heads=2, max_len=256,
                                     use_coords=use_coords,
                                     rng=np.random.default_rng(0))
                patcher = AdaptivePatcher(patch_size=4, split_value=2.0,
                                          target_length=160)
                task = TokenSegmentationTask(model, patcher, channels=1)
                hist = make_trainer(task, scale).fit(train, val,
                                                     epochs=scale.epochs)
                out[use_coords] = hist.best_metric
            return out

        dice = once(measure)
        print(f"\nbest dice with coords={dice[True]:.2f} "
              f"without={dice[False]:.2f}")
        assert dice[True] >= dice[False] - 10.0  # never catastrophically worse


class TestSequenceParallelComparison:
    def test_ulysses_conserves_work_apf_reduces_it(self, once):
        """Table I's punchline: sequence parallelism distributes the same
        quadratic work; APF removes work before the model sees it."""
        from repro.distributed import ulysses_attention
        from repro.perf import attention_flops

        def measure():
            h, n, dh = 8, 256, 16
            rng = np.random.default_rng(0)
            q, k, v = (rng.normal(size=(h, n, dh)) for _ in range(3))
            _, rep1 = ulysses_attention(q, k, v, 1)
            _, rep8 = ulysses_attention(q, k, v, 8)
            img = generate_wsi(128, seed=0).image
            apf_len = len(AdaptivePatcher(patch_size=4, split_value=8.0)(img))
            return rep1.flops_per_rank, rep8.flops_per_rank * 8, apf_len

        total1, total8, apf_len = once(measure)
        uniform_len = (128 // 4) ** 2
        print(f"\nUlysses total FLOPs world=1: {total1:.3g}, world=8: "
              f"{total8:.3g}; APF tokens {apf_len} vs uniform {uniform_len}")
        assert total1 == total8                      # no work reduction
        flop_ratio = (attention_flops(uniform_len, 64)
                      / attention_flops(apf_len, 64))
        assert flop_ratio > 4                        # APF reduces work
